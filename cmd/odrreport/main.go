// Command odrreport regenerates a markdown results report from live
// simulator runs: the §6.6 summary, Table 2, the Figure 9 QoS matrix, the
// efficiency averages, the user-study panel and the ablations — the same
// content as EXPERIMENTS.md, but measured fresh on this machine.
//
// Usage:
//
//	odrreport [-duration 60s] [-seed 1] [-parallel 0] [-cache dir] [-o report.md]
//
// Simulation cells run through the shared deterministic scheduler
// (-parallel workers; 0 = all CPUs, 1 = sequential) with an optional
// content-addressed result cache (-cache dir; empty disables). The report
// content is byte-identical regardless of worker count or cache state.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"odr/internal/experiments"
	"odr/internal/obs"
	"odr/internal/pictor"
	"odr/internal/sched"
)

func main() {
	duration := flag.Duration("duration", 60*time.Second, "simulated duration per configuration")
	seed := flag.Int64("seed", 1, "base RNG seed")
	out := flag.String("o", "", "output file (default stdout)")
	parallel := flag.Int("parallel", 0, "scheduler workers (0 = all CPUs, 1 = sequential)")
	cacheDir := flag.String("cache", "artifacts/cache", "content-addressed result cache directory (empty disables)")
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}

	var cache *sched.Cache
	if *cacheDir != "" {
		c, err := sched.OpenCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		cache = c
	}
	runner := sched.New(sched.Options{Workers: *parallel, Cache: cache, Metrics: obs.NewRegistry()})

	o := experiments.Options{Duration: *duration, Seed: *seed, Runner: runner}
	m := experiments.NewMatrix(o)
	start := time.Now()
	// Fill the whole evaluation matrix up front through the parallel
	// scheduler; the report sections below then read memoized cells.
	m.Prefetch()

	fmt.Fprintf(w, "# ODR reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s; %v simulated per configuration; seed %d.\n\n",
		time.Now().Format(time.RFC1123), *duration, *seed)

	s := experiments.Summary(m)
	fmt.Fprintf(w, "## Headline numbers (§6.6)\n\n")
	fmt.Fprintf(w, "| Metric | Value |\n|---|---|\n")
	fmt.Fprintf(w, "| Average FPS gap, NoReg | %.1f frames |\n", s.NoRegAvgGap)
	fmt.Fprintf(w, "| Average FPS gap, ODR | %.1f frames (max windowed %.1f) |\n", s.ODRAvgGap, s.ODRMaxGap)
	fmt.Fprintf(w, "| Client FPS: ODRMax vs NoReg | %.1f vs %.1f (%+.1f%%) |\n", s.ODRMaxFPS, s.NoRegFPS, 100*(s.ODRMaxFPS/s.NoRegFPS-1))
	fmt.Fprintf(w, "| ODR 30/60 goal attainment | %.3f of target |\n", s.ODRGoalFPSvsTarget)
	fmt.Fprintf(w, "| MtP: ODRMax vs NoReg | %.1f ms vs %.1f ms (%.1f%% faster) |\n", s.ODRMaxLat, s.NoRegLat, 100*(1-s.ODRMaxLat/s.NoRegLat))
	fmt.Fprintf(w, "| Efficiency vs NoReg (720p priv) | IPC %+.1f%%, miss −%.1f%%, read −%.1f%%, power −%.1f%% |\n\n",
		100*s.IPCGain, 100*s.MissRateDrop, 100*s.ReadTimeDrop, 100*s.PowerDrop)

	fmt.Fprintf(w, "## Table 2 — FPS gaps (avg / max, worst benchmark)\n\n")
	fmt.Fprintf(w, "| Config | 720p Priv | 720p GCE | 1080p GCE |\n|---|---|---|---|\n")
	groups := experiments.Table2(m)
	for _, id := range experiments.Table2Policies {
		fmt.Fprintf(w, "| %s |", id)
		for _, g := range groups {
			fmt.Fprintf(w, " %.1f / %.1f (%s) |", g.AvgGap[id], g.MaxGap[id], g.MaxGapB[id])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Figure 9 — client FPS and MtP latency\n\n")
	f9 := experiments.Fig9(m)
	fmt.Fprintf(w, "| Config |")
	for _, g := range f9.Groups {
		fmt.Fprintf(w, " %s |", g)
	}
	fmt.Fprintf(w, "\n|---|")
	for range f9.Groups {
		fmt.Fprintf(w, "---|")
	}
	fmt.Fprintln(w)
	for _, id := range experiments.EvalPolicies {
		fmt.Fprintf(w, "| %s FPS |", id)
		for i := range f9.Groups {
			fmt.Fprintf(w, " %.1f |", f9.ClientFPS[id][i])
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "| %s MtP ms |", id)
		for i := range f9.Groups {
			fmt.Fprintf(w, " %.1f |", f9.LatencyMs[id][i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Figures 12/13 — fleet efficiency averages (720p private)\n\n")
	fmt.Fprintf(w, "| Config | IPC | Miss rate | Read ns | Power W |\n|---|---|---|---|---|\n")
	f12 := experiments.Fig12(m)
	f13 := experiments.Fig13(m)
	watts := map[string]float64{}
	for _, r := range f13 {
		if r.Benchmark == "AVG" {
			watts[r.Config] = r.Watts
		}
	}
	for _, r := range f12 {
		if r.Benchmark != "AVG" {
			continue
		}
		fmt.Fprintf(w, "| %s | %.2f | %.1f%% | %.1f | %.1f |\n",
			r.Config, r.IPC, r.MissRate*100, r.ReadTimeNs, watts[r.Config])
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Figures 14/15 — user-experience panel (modeled)\n\n")
	fmt.Fprintf(w, "| Config | Rating | No lag | No stutter | No tearing |\n|---|---|---|---|---|\n")
	for _, row := range experiments.UserStudy(m) {
		r := row.Result
		fmt.Fprintf(w, "| %s | %.1f | %d/30 | %d/30 | %d/30 |\n",
			row.Config, r.MeanRating, r.Lags.No, r.Stutters.No, r.Tearing.No)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Ablations\n\n")
	fmt.Fprintf(w, "| Variant | Client FPS | Gap | MtP ms |\n|---|---|---|---|\n")
	for _, rows := range [][]experiments.AblationRow{
		experiments.AblationMulBuf2(o),
		experiments.AblationAcceleration(o),
		experiments.AblationPriority(o),
		experiments.AblationContention(o),
	} {
		for _, r := range rows {
			fmt.Fprintf(w, "| %s | %.1f | %.1f | %.1f |\n", r.Variant, r.ClientFPS, r.GapMean, r.MtPMeanMs)
		}
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "## Benchmarks covered\n\n")
	for _, b := range pictor.Benchmarks {
		fmt.Fprintf(w, "- %s — %s\n", b, b.Description())
	}
	run, hits, misses := runner.Stats()
	fmt.Fprintf(os.Stderr, "odrreport: %d cells run, cache %d hits / %d misses (%d workers), %.1fs wall time\n",
		run, hits, misses, runner.Workers(), time.Since(start).Seconds())
	fmt.Fprintf(w, "\n_Report generated in %.1fs wall time._\n", time.Since(start).Seconds())
}
