// Command odrserver runs the real-time streaming server: it listens for a
// client, renders the synthetic 3D application, regulates it with the
// chosen policy, encodes frames and streams them.
//
// Usage:
//
//	odrserver [-addr :7311] [-policy odr|interval|noreg] [-fps 60]
//	          [-width 640] [-height 360] [-once] [-hub]
//
// With -hub, all connected clients share one rendered game (each with its
// own encoder and pacing); without it, each client gets a private session.
package main

import (
	"flag"
	"log"
	"net"
	"time"

	"odr"
)

func main() {
	addr := flag.String("addr", ":7311", "listen address")
	policy := flag.String("policy", "odr", "regulation policy: odr, interval, noreg")
	fps := flag.Float64("fps", 60, "target FPS (0 = maximize)")
	width := flag.Int("width", 640, "frame width")
	height := flag.Int("height", 360, "frame height")
	once := flag.Bool("once", false, "serve a single client, then exit")
	hubMode := flag.Bool("hub", false, "share one game across all clients (spectating)")
	bands := flag.Bool("bands", true, "band-skip delta coding (faster encode on static content)")
	flag.Parse()

	var kind odr.StreamPolicy
	switch *policy {
	case "odr":
		kind = odr.StreamODR
	case "interval", "int":
		kind = odr.StreamInterval
	case "noreg":
		kind = odr.StreamNoReg
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("odrserver: %s policy, target %.0f FPS, %dx%d, listening on %s",
		kind, *fps, *width, *height, ln.Addr())
	if *hubMode {
		hub := odr.NewHub(odr.HubConfig{
			Width: *width, Height: *height, TargetFPS: *fps,
			Codec: odr.CodecOptions{Bands: *bands},
		})
		go hub.Run()
		defer hub.Stop()
		for {
			conn, err := ln.Accept()
			if err != nil {
				log.Fatal(err)
			}
			addr := conn.RemoteAddr()
			log.Printf("hub client connected: %s", addr)
			hub.Attach(conn, 0, func(st odr.SessionStats) {
				log.Printf("hub client %s detached: sent %d, dropped %d", addr, st.Sent, st.Dropped)
			})
		}
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("client connected: %s", conn.RemoteAddr())
		srv := odr.NewStreamServer(conn, odr.StreamServerConfig{
			Width: *width, Height: *height, Policy: kind, TargetFPS: *fps,
			Codec: odr.CodecOptions{Bands: *bands},
		})
		start := time.Now()
		if err := srv.Run(); err != nil {
			log.Printf("session error: %v", err)
		}
		st := srv.Stats().Snapshot()
		secs := time.Since(start).Seconds()
		log.Printf("session done after %.1fs: rendered %d (%.1f/s), sent %d (%.1f/s), dropped %d, priority %d",
			secs, st.Rendered, float64(st.Rendered)/secs, st.Sent, float64(st.Sent)/secs, st.Dropped, st.Priority)
		if *once {
			return
		}
	}
}
