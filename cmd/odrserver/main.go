// Command odrserver runs the real-time streaming server: it listens for a
// client, renders the synthetic 3D application, regulates it with the
// chosen policy, encodes frames and streams them.
//
// Usage:
//
//	odrserver [-addr :7311] [-policy odr|interval|noreg] [-fps 60]
//	          [-width 640] [-height 360] [-once] [-hub]
//	          [-debug-addr :8099]
//
// With -hub, all connected clients share one rendered game: clients at the
// same resolution also share one encoder (each frame is encoded once and
// fanned out; late joiners get spliced catch-up keyframes) while pacing
// stays per-client. Without it, each client gets a private session.
//
// With -debug-addr, the server exposes live observability over HTTP:
// /debug/odr (JSON snapshot of the regulation state and telemetry
// registry), /metrics (Prometheus text exposition of the same registry,
// including the per-session QoE/energy series), /debug/vars (expvar) and
// /debug/pprof/ (profiles).
//
// With -master, the server joins a cluster as a worker: it registers its
// data-plane address with the odrmaster control plane, heartbeats with a
// load report derived from its own /metrics surface (sessions, watts,
// dirty-tile ratio), and obeys drain orders — the hub drains (orderly
// goodbye per session), the worker deregisters, and the process exits while
// clients re-resolve through the master onto surviving workers. -master
// implies -hub. -advertise overrides the data-plane address registered with
// the master when -addr is not dialable from clients (e.g. ":7311").
//
// -metrics-lint validates the full metric surface against the registry
// naming conventions and exits (0 clean, 1 with violations printed); the
// same lint also guards normal startup.
//
// On SIGINT/SIGTERM the server shuts down gracefully and logs a final
// telemetry summary (one line per instrument, sorted by name) before
// exiting.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"odr"
	"odr/internal/cluster"
	"odr/internal/obs"
	"odr/internal/obs/scrape"
	"odr/internal/stream"
)

// active tracks the live private sessions for the /debug/odr snapshot.
type active struct {
	mu   sync.Mutex
	next int
	m    map[int]*odr.StreamServer
}

func (a *active) add(s *odr.StreamServer) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.m == nil {
		a.m = make(map[int]*odr.StreamServer)
	}
	a.next++
	a.m[a.next] = s
	return a.next
}

func (a *active) remove(id int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.m, id)
}

func (a *active) snapshots() []map[string]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]map[string]any, 0, len(a.m))
	for _, s := range a.m {
		out = append(out, s.DebugSnapshot())
	}
	return out
}

// registerAll pre-registers every metric family odrserver can export: the
// shared frame-pipeline instruments and the labeled live-session surface.
func registerAll(reg *odr.MetricsRegistry) {
	obs.NewFrameInstruments(reg)
	stream.RegisterLiveMetrics(reg)
}

// lintMetrics builds the full surface in a scratch registry and reports
// convention violations (-metrics-lint, and the make metrics-check target).
func lintMetrics() int {
	reg := odr.NewMetricsRegistry()
	registerAll(reg)
	errs := obs.Lint(reg)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "metrics-lint: %v\n", err)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "metrics-lint: %d violation(s)\n", len(errs))
		return 1
	}
	fmt.Printf("metrics-lint: %d families clean\n", len(reg.Names()))
	return 0
}

func main() {
	addr := flag.String("addr", ":7311", "listen address")
	policy := flag.String("policy", "odr", "regulation policy: odr, interval, noreg")
	fps := flag.Float64("fps", 60, "target FPS (0 = maximize)")
	width := flag.Int("width", 640, "frame width")
	height := flag.Int("height", 360, "frame height")
	once := flag.Bool("once", false, "serve a single client, then exit")
	hubMode := flag.Bool("hub", false, "share one game across all clients (spectating)")
	master := flag.String("master", "", "join this odrmaster control plane as a cluster worker (implies -hub)")
	workerID := flag.String("worker-id", "", "stable worker ID for -master (default: the advertised address)")
	advertise := flag.String("advertise", "", "data-plane address registered with -master (default: the listen address)")
	bands := flag.Bool("bands", false, "legacy v1 band-skip delta coding (default: the v2 tile codec, which supersedes it)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/odr, /metrics, /debug/vars and /debug/pprof/ on this address")
	metricsLint := flag.Bool("metrics-lint", false, "validate the metric naming conventions and exit")
	flag.Parse()

	if *metricsLint {
		os.Exit(lintMetrics())
	}
	if *master != "" {
		// A cluster worker serves many migrating clients out of one shared
		// game; private sessions cannot be re-placed.
		*hubMode = true
	}

	var kind odr.StreamPolicy
	switch *policy {
	case "odr":
		kind = odr.StreamODR
	case "interval", "int":
		kind = odr.StreamInterval
	case "noreg":
		kind = odr.StreamNoReg
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("odrserver: %s policy, target %.0f FPS, %dx%d, listening on %s",
		kind, *fps, *width, *height, ln.Addr())

	reg := odr.NewMetricsRegistry()
	// Pre-register every family this process can export, then hold startup
	// to the naming conventions — a misnamed instrument is a bug caught
	// here, not a broken dashboard discovered later.
	registerAll(reg)
	obs.MustLint(reg)
	var sessions active
	var hub *odr.Hub
	if *hubMode {
		hub = odr.NewHub(odr.HubConfig{
			Width: *width, Height: *height, TargetFPS: *fps,
			Codec:   odr.CodecOptions{Bands: *bands},
			Metrics: reg,
			Logf:    log.Printf,
		})
		go hub.Run()
	}

	if *debugAddr != "" {
		ds, err := odr.ServeDebugWithMetrics(*debugAddr, reg, func() any {
			snap := map[string]any{"metrics": reg.Snapshot()}
			if hub != nil {
				snap["hub"] = hub.Snapshot()
			} else {
				snap["sessions"] = sessions.snapshots()
			}
			return snap
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		log.Printf("debug endpoint on http://%s/debug/odr (Prometheus at /metrics, pprof at /debug/pprof/)", ds.Addr())
	}

	// Graceful shutdown: close the listener so Accept unblocks, stop the
	// hub if any, then log the final telemetry summary. Both the signal
	// handler and a cluster drain order end up here.
	done := make(chan struct{})
	var shutdownOnce sync.Once
	shutdown := func(reason string) {
		shutdownOnce.Do(func() {
			log.Printf("%s: shutting down", reason)
			close(done)
			ln.Close()
		})
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() { shutdown(fmt.Sprintf("received %v", <-sig)) }()

	if *master != "" {
		masterURL := *master
		if strings.HasPrefix(masterURL, ":") {
			masterURL = "127.0.0.1" + masterURL
		}
		if !strings.Contains(masterURL, "://") {
			masterURL = "http://" + masterURL
		}
		adAddr := *advertise
		if adAddr == "" {
			adAddr = ln.Addr().String()
			// ":7311" listens on every interface but is not dialable; give
			// the master a loopback address unless told otherwise.
			if h, p, err := net.SplitHostPort(adAddr); err == nil && (h == "" || h == "::") {
				adAddr = net.JoinHostPort("127.0.0.1", p)
			}
		}
		id := *workerID
		if id == "" {
			id = adAddr
		}
		agent := odr.NewClusterWorker(odr.ClusterWorkerConfig{
			ID:        id,
			MasterURL: masterURL,
			Addr:      adAddr,
			// The load report is derived from the same /metrics surface
			// operators scrape: live session series, watts, dirty-tile ratio.
			Load: func() cluster.LoadReport {
				var buf bytes.Buffer
				if err := obs.WritePrometheusWith(&buf, reg, false); err != nil {
					return cluster.LoadReport{}
				}
				sc, err := scrape.ParseBytes(buf.Bytes())
				if err != nil {
					return cluster.LoadReport{}
				}
				return cluster.LoadFromScrape(sc)
			},
			OnDrain: func() {
				log.Printf("cluster: drain ordered; draining hub")
				if err := hub.Drain(15 * time.Second); err != nil {
					log.Printf("cluster: hub drain: %v", err)
				}
			},
			Logf: log.Printf,
		})
		defer agent.Stop()
		go func() {
			if err := agent.Run(); err != nil {
				log.Printf("cluster: worker agent: %v", err)
			}
			// The agent only returns on Stop or after a completed drain; in
			// the drain case the hub is empty and the process should exit.
			shutdown("cluster: worker agent exited")
		}()
		log.Printf("cluster worker %s: data plane %s, master %s", id, adAddr, masterURL)
	}
	finish := func() {
		if hub != nil {
			hub.Stop() // logs its own summary via Logf
		}
		// One line per instrument, sorted by canonical name — the same
		// ordering /metrics exports.
		var b strings.Builder
		if err := reg.WriteSummary(&b); err != nil {
			log.Printf("final stats: <unserializable: %v>", err)
			return
		}
		log.Printf("final stats:\n%s", strings.TrimRight(b.String(), "\n"))
	}
	defer finish()

	var connSeq int
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-done:
				return
			default:
			}
			log.Fatal(err)
		}
		if hub != nil {
			remote := conn.RemoteAddr()
			log.Printf("hub client connected: %s", remote)
			hub.Attach(conn, 0, func(st odr.SessionStats) {
				log.Printf("hub client %s detached: sent %d, dropped %d", remote, st.Sent, st.Dropped)
			})
			continue
		}
		log.Printf("client connected: %s", conn.RemoteAddr())
		connSeq++
		srv := odr.NewStreamServer(conn, odr.StreamServerConfig{
			Width: *width, Height: *height, Policy: kind, TargetFPS: *fps,
			Codec:        odr.CodecOptions{Bands: *bands},
			Metrics:      reg,
			SessionLabel: fmt.Sprintf("s%d", connSeq),
		})
		id := sessions.add(srv)
		start := time.Now()
		if err := srv.Run(); err != nil {
			log.Printf("session error: %v", err)
		}
		sessions.remove(id)
		st := srv.Stats().Snapshot()
		secs := time.Since(start).Seconds()
		log.Printf("session done after %.1fs: rendered %d (%.1f/s), sent %d (%.1f/s), dropped %d, priority %d",
			secs, st.Rendered, float64(st.Rendered)/secs, st.Sent, float64(st.Sent)/secs, st.Dropped, st.Priority)
		if *once {
			return
		}
	}
}
