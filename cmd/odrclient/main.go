// Command odrclient connects to an odrserver, plays for a while (decoding
// frames and injecting synthetic user inputs), and reports client-side QoS:
// decode FPS and motion-to-photon latency.
//
// Usage:
//
//	odrclient [-addr localhost:7311] [-duration 10s] [-apm 180] [-view]
//	          [-stats 1s]
//	odrclient -master localhost:7400 [-duration 10s] ...
//
// With -view, decoded frames are drawn live in the terminal as 24-bit ANSI
// half-block art. With -stats, a one-line QoS summary (frames, FPS,
// bitrate, motion-to-photon latency) is logged at the given interval while
// playing.
//
// With -master, the client resolves its endpoint through an odrmaster
// control plane instead of dialing -addr directly: every (re)connect asks
// the master for a placement, so when a worker fails or is drained the
// client redials, lands on a surviving worker, and resumes via the
// keyframe-resync path. The final report then includes reconnects and
// redirects.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"odr"
	"odr/internal/ansi"
)

func main() {
	addr := flag.String("addr", "localhost:7311", "server address")
	master := flag.String("master", "", "resolve the server through this odrmaster control plane instead of -addr")
	duration := flag.Duration("duration", 10*time.Second, "play time")
	apm := flag.Float64("apm", 180, "actions per minute to inject (Poisson)")
	seed := flag.Int64("seed", 1, "input-timing seed")
	view := flag.Bool("view", false, "draw decoded frames in the terminal (ANSI art)")
	stats := flag.Duration("stats", 0, "log a stats line at this interval (0 = off)")
	cols := flag.Int("cols", 80, "terminal columns for -view")
	rows := flag.Int("rows", 22, "terminal rows for -view")
	flag.Parse()

	var cli *odr.StreamClient
	if *master != "" {
		masterURL := *master
		if !strings.Contains(masterURL, "://") {
			masterURL = "http://" + masterURL
		}
		res := odr.NewClusterResolver(masterURL)
		cli = odr.NewReconnectingStreamClient(res.Dial, odr.ReconnectPolicy{
			IdleTimeout: 5 * time.Second,
			// A worker drain says goodbye; re-resolve through the master and
			// resume on whichever worker it places us on next.
			RedialOnBye: true,
			Seed:        *seed,
		})
	} else {
		conn, err := net.Dial("tcp", *addr)
		if err != nil {
			log.Fatal(err)
		}
		cli = odr.NewStreamClient(conn)
	}
	if *view {
		var r *ansi.Renderer
		fmt.Print(ansi.Clear())
		last := time.Now()
		cli.OnFrame(func(seq uint64, pix []byte) {
			// Lazily size the renderer from the first frame (pixels are
			// RGBA, so width*height = len/4; the server default is 16:9).
			if r == nil {
				n := len(pix) / 4
				w := 640
				for ; w > 1; w-- {
					h := n / w
					if w*h == n && w*9 == h*16 {
						break
					}
				}
				if w <= 1 {
					return
				}
				r = ansi.NewRenderer(w, n/w, *cols, *rows)
			}
			// Cap terminal redraws at ~30Hz.
			if time.Since(last) < 33*time.Millisecond {
				return
			}
			last = time.Now()
			fmt.Fprint(os.Stdout, ansi.Home()+r.Frame(pix))
		})
	}
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()

	if *stats > 0 {
		stopStats := make(chan struct{})
		defer close(stopStats)
		go func() {
			t := time.NewTicker(*stats)
			defer t.Stop()
			var lastFrames int64
			var lastBytes int64
			for {
				select {
				case <-stopStats:
					return
				case <-t.C:
				}
				rep := cli.Report()
				frames := rep.Frames - lastFrames
				bytes := rep.Bytes - lastBytes
				lastFrames, lastBytes = rep.Frames, rep.Bytes
				log.Printf("stats: frames %d (+%d)  FPS %.1f  %.2f Mbps  MtP mean %.1f ms p99 %.1f ms",
					rep.Frames, frames, float64(frames)/stats.Seconds(),
					float64(bytes)*8/1e6/stats.Seconds(),
					rep.MeanLatency, rep.P99Latency)
			}
		}()
	}

	rng := rand.New(rand.NewSource(*seed))
	rate := *apm / 60.0
	end := time.Now().Add(*duration)
	for time.Now().Before(end) {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if gap < 50*time.Millisecond {
			gap = 50 * time.Millisecond
		}
		time.Sleep(gap)
		if _, err := cli.SendInput(); err != nil {
			break
		}
	}
	time.Sleep(300 * time.Millisecond)
	rep := cli.Report()
	cli.Stop()
	if err := <-done; err != nil {
		log.Printf("client: %v", err)
	}
	log.Printf("frames %d  FPS %.1f  bitrate %.1f Mbps  MtP mean %.1f ms p99 %.1f ms (%d inputs)",
		rep.Frames, rep.FPS,
		float64(rep.Bytes)*8/1e6/duration.Seconds(),
		rep.MeanLatency, rep.P99Latency, rep.LatencySamples)
	if *master != "" {
		log.Printf("cluster: %d resync(s), %d reconnect(s), %d redirect(s)",
			rep.Resyncs, rep.Reconnects, rep.Redirects)
	}
}
