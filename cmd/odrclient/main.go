// Command odrclient connects to an odrserver, plays for a while (decoding
// frames and injecting synthetic user inputs), and reports client-side QoS:
// decode FPS and motion-to-photon latency.
//
// Usage:
//
//	odrclient [-addr localhost:7311] [-duration 10s] [-apm 180] [-view]
//
// With -view, decoded frames are drawn live in the terminal as 24-bit ANSI
// half-block art.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"time"

	"odr"
	"odr/internal/ansi"
)

func main() {
	addr := flag.String("addr", "localhost:7311", "server address")
	duration := flag.Duration("duration", 10*time.Second, "play time")
	apm := flag.Float64("apm", 180, "actions per minute to inject (Poisson)")
	seed := flag.Int64("seed", 1, "input-timing seed")
	view := flag.Bool("view", false, "draw decoded frames in the terminal (ANSI art)")
	cols := flag.Int("cols", 80, "terminal columns for -view")
	rows := flag.Int("rows", 22, "terminal rows for -view")
	flag.Parse()

	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	cli := odr.NewStreamClient(conn)
	if *view {
		var r *ansi.Renderer
		fmt.Print(ansi.Clear())
		last := time.Now()
		cli.OnFrame(func(seq uint64, pix []byte) {
			// Lazily size the renderer from the first frame (pixels are
			// RGBA, so width*height = len/4; the server default is 16:9).
			if r == nil {
				n := len(pix) / 4
				w := 640
				for ; w > 1; w-- {
					h := n / w
					if w*h == n && w*9 == h*16 {
						break
					}
				}
				if w <= 1 {
					return
				}
				r = ansi.NewRenderer(w, n/w, *cols, *rows)
			}
			// Cap terminal redraws at ~30Hz.
			if time.Since(last) < 33*time.Millisecond {
				return
			}
			last = time.Now()
			fmt.Fprint(os.Stdout, ansi.Home()+r.Frame(pix))
		})
	}
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()

	rng := rand.New(rand.NewSource(*seed))
	rate := *apm / 60.0
	end := time.Now().Add(*duration)
	for time.Now().Before(end) {
		gap := time.Duration(rng.ExpFloat64() / rate * float64(time.Second))
		if gap < 50*time.Millisecond {
			gap = 50 * time.Millisecond
		}
		time.Sleep(gap)
		if _, err := cli.SendInput(); err != nil {
			break
		}
	}
	time.Sleep(300 * time.Millisecond)
	rep := cli.Report()
	cli.Stop()
	if err := <-done; err != nil {
		log.Printf("client: %v", err)
	}
	log.Printf("frames %d  FPS %.1f  bitrate %.1f Mbps  MtP mean %.1f ms p99 %.1f ms (%d inputs)",
		rep.Frames, rep.FPS,
		float64(rep.Bytes)*8/1e6/duration.Seconds(),
		rep.MeanLatency, rep.P99Latency, rep.LatencySamples)
}
