// Command odrsim regenerates the paper's tables and figures from the
// pipeline simulator.
//
// Usage:
//
//	odrsim [-duration 60s] [-seed 1] [-parallel 0] [-cache dir] [experiment ...]
//
// With no arguments it runs every experiment. Experiment names: fig1, fig3,
// fig4, fig5, fig6, fig7, table2, fig9, fig10, fig11, fig12, fig13,
// userstudy (fig14+fig15), summary, ablations.
//
// Cells run through the shared deterministic scheduler: -parallel picks the
// worker count (0 = all CPUs, 1 = sequential) and -cache points at a
// content-addressed result cache reused across runs ("" disables caching).
// Output is byte-identical regardless of worker count or cache state.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"odr/internal/experiments"
	"odr/internal/obs"
	"odr/internal/sched"
)

func main() {
	duration := flag.Duration("duration", 60*time.Second, "simulated duration per configuration")
	seed := flag.Int64("seed", 1, "base RNG seed")
	csvDir := flag.String("csv", "", "also write plot-ready CSV artifacts into this directory")
	parallel := flag.Int("parallel", 0, "scheduler workers (0 = all CPUs, 1 = sequential)")
	cacheDir := flag.String("cache", "artifacts/cache", "content-addressed result cache directory (empty disables)")
	flag.Parse()

	reg := obs.NewRegistry()
	var cache *sched.Cache
	if *cacheDir != "" {
		c, err := sched.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrsim: opening result cache: %v\n", err)
			os.Exit(1)
		}
		cache = c
	}
	runner := sched.New(sched.Options{Workers: *parallel, Cache: cache, Metrics: reg})

	o := experiments.Options{Duration: *duration, Seed: *seed, Out: os.Stdout, Runner: runner}
	m := experiments.NewMatrix(o)

	all := []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "table2",
		"fig9", "fig10", "fig11", "fig12", "fig13", "userstudy", "summary", "ablations",
		"vrr", "consolidation", "sweeps", "seeds", "fidelity"}
	want := flag.Args()
	if len(want) == 0 {
		want = all
	}

	start := time.Now()
	// Prefetch the evaluation matrix only when a matrix-backed experiment is
	// requested, so e.g. `odrsim fig1` stays cheap.
	matrixBacked := map[string]bool{"table2": true, "fig9": true, "fig10": true,
		"fig11": true, "fig12": true, "fig13": true, "userstudy": true,
		"fig14": true, "fig15": true, "summary": true, "fidelity": true}
	needMatrix := *csvDir != ""
	for _, name := range want {
		if matrixBacked[strings.ToLower(name)] {
			needMatrix = true
		}
	}
	if needMatrix {
		m.Prefetch()
	}

	for _, name := range want {
		switch strings.ToLower(name) {
		case "fig1":
			experiments.Fig1(o)
		case "fig3":
			experiments.Fig3(o)
		case "fig4":
			experiments.Fig4(o)
		case "fig5":
			experiments.Fig5(o)
		case "fig6":
			experiments.Fig6(o)
		case "fig7":
			experiments.Fig7(o)
		case "table2":
			experiments.Table2(m)
		case "fig9":
			experiments.Fig9(m)
		case "fig10":
			experiments.Fig10(m)
		case "fig11":
			experiments.Fig11(m)
		case "fig12":
			experiments.Fig12(m)
		case "fig13":
			experiments.Fig13(m)
		case "userstudy", "fig14", "fig15":
			experiments.UserStudy(m)
		case "summary":
			experiments.Summary(m)
		case "ablations":
			experiments.AblationMulBuf2(o)
			experiments.AblationAcceleration(o)
			experiments.AblationPriority(o)
			experiments.AblationRVSFeedback(o)
			experiments.AblationContention(o)
		case "vrr":
			experiments.VRRStudy(o)
		case "consolidation":
			experiments.Consolidation(o)
			experiments.ConsolidationMix(o)
		case "sweeps":
			experiments.SweepAPM(o)
			experiments.SweepBandwidth(o)
			experiments.SweepRVScc(o)
		case "seeds":
			experiments.SummaryCI(o, 5)
		case "fidelity":
			experiments.Fidelity(m)
		default:
			fmt.Fprintf(os.Stderr, "odrsim: unknown experiment %q (known: %s)\n", name, strings.Join(all, ", "))
			os.Exit(2)
		}
		fmt.Println()
	}
	if *csvDir != "" {
		files, err := experiments.WriteCSVArtifacts(m, *csvDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "odrsim: writing CSV artifacts: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d CSV artifacts to %s\n", len(files), *csvDir)
	}
	run, hits, misses := runner.Stats()
	fmt.Printf("scheduler: %d cells run, cache %d hits / %d misses (%d workers)\n",
		run, hits, misses, runner.Workers())
	fmt.Printf("completed in %.1fs wall time\n", time.Since(start).Seconds())
}
