// Command odrsoak churn-tests the streaming stack under deterministic fault
// injection: N reconnecting clients attach to one hub through chaos-wrapped
// connections running a named (or custom) fault schedule, survive the faults
// for the configured duration, and then the run ends with a graceful drain.
//
// Usage:
//
//	odrsoak [-clients 8] [-schedule flaky] [-seed 1] [-duration 10s]
//	        [-fps 240] [-width 64] [-height 36] [-retry 8] [-v]
//	odrsoak -fanout 1000 [-width 48] [-height 27] [-fps 10] ...
//	odrsoak -cluster [-workers 3] [-clients 8] ...
//
// With -fanout N the run switches to the encode-once scale test (see
// fanout.go): N same-resolution viewers share one lane encoder, a slice of
// them churns through chaos-wrapped reconnects, and the invariants assert
// the hub encoded O(frames) — not O(viewers x frames) — while every viewer
// decoded byte-identical pixels.
//
// With -cluster the run switches to the control-plane failover test (see
// cluster.go): an odrmaster-equivalent master places chaos-churned clients
// across -workers in-process workers, one worker is killed and another
// drained mid-run, and the invariants assert zero sessions lost, bounded
// resync gaps, pixel identity across migration and clean cluster accounting.
//
// The run finishes with a pass/fail invariant report and a nonzero exit on
// any failure:
//
//   - liveness: every client loop exits after the drain — no deadlock;
//     a watchdog dumps all goroutine stacks and exits 2 if the process
//     wedges entirely
//   - pixel identity: the codec is run lossless, the game is deterministic
//     and clients send no inputs, so every decoded frame must be
//     byte-identical to an independently rendered reference for its
//     sequence number — corruption must be caught, never displayed
//   - resume or clean detach: fault-hit sessions either reconnect and
//     resume or end with a reported error, never a silent wedge
//   - no goroutine leaks: after the drain, the goroutine count returns to
//     the pre-run baseline
//   - tile accounting: the hub encodes the v2 tile bitstream, so the
//     exported tile counters must agree with the frame counters —
//     tiles_coded is exactly frames_encoded x tiles-per-frame, and
//     tiles_dirty never exceeds tiles_coded
//
// The run also scrapes its own /metrics endpoint (the Prometheus surface
// odrserver exposes) through internal/obs/scrape and asserts metric
// predicates against the parsed samples: frame conservation across the
// pipeline counters, agreement between the Prometheus and /debug/odr JSON
// views of the registry, tile-outcome accounting of the labeled
// odr_tiles_outcome_total series, bounded per-session series cardinality
// with zero label-set evictions, and non-negative per-session energy.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odr"
	"odr/internal/chaos"
	"odr/internal/codec"
	"odr/internal/obs/scrape"
	"odr/internal/stream"
	"odr/internal/testutil"
)

// scrapeMetrics fetches and parses one exposition document from url.
func scrapeMetrics(url string) (*scrape.Scrape, error) {
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return scrape.Parse(resp.Body)
}

// refTable lazily renders the deterministic reference frames and memoizes
// their hashes by render sequence number.
type refTable struct {
	mu     sync.Mutex
	game   *stream.Game
	hashes [][sha256.Size]byte
}

func newRefTable(w, h int) *refTable {
	return &refTable{game: stream.NewGame(w, h)}
}

func (r *refTable) hash(seq uint64) [sha256.Size]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	for uint64(len(r.hashes)) < seq {
		pix := make([]byte, r.game.FrameBytes())
		r.game.Render(pix)
		r.hashes = append(r.hashes, sha256.Sum256(pix))
	}
	return r.hashes[seq-1]
}

// soakClient is one churning viewer and its outcome counters.
type soakClient struct {
	idx        int
	cli        *odr.StreamClient
	runErr     chan error
	sessions   int64
	mismatches int64
	finalErr   error
	hung       bool
}

func main() {
	clients := flag.Int("clients", 8, "number of concurrent reconnecting clients")
	schedule := flag.String("schedule", "flaky", "fault schedule: a named one (clean, flaky, lossy, degraded, partition) or a spec like latency@0:2ms,disc@65536")
	seed := flag.Int64("seed", 1, "base RNG seed (per-client, per-session seeds derive from it)")
	duration := flag.Duration("duration", 10*time.Second, "how long to churn before draining")
	fps := flag.Float64("fps", 240, "hub render FPS")
	width := flag.Int("width", 64, "frame width")
	height := flag.Int("height", 36, "frame height")
	retry := flag.Int("retry", 8, "per-client consecutive reconnect budget")
	fanout := flag.Int("fanout", 0, "fan-out mode: attach this many shared-lane viewers instead of the classic churn run")
	clusterMode := flag.Bool("cluster", false, "cluster mode: master + workers with a mid-run kill and drain (see cluster.go)")
	workers := flag.Int("workers", 3, "worker count for -cluster")
	verbose := flag.Bool("v", false, "log per-client progress")
	faildump := flag.String("faildump", "", "fan-out mode: write a full goroutine dump to this path when invariants fail")
	flag.Parse()

	sched, err := chaos.Named(*schedule)
	if err != nil {
		if sched, err = chaos.Parse(*schedule); err != nil {
			log.Fatalf("odrsoak: %v", err)
		}
	}
	if *fanout > 0 {
		runFanout(*fanout, sched, *seed, *duration, *fps, *width, *height, *retry, *verbose, *faildump)
		return
	}
	if *clusterMode {
		runCluster(*clients, *workers, sched, *seed, *duration, *fps, *width, *height, *retry, *verbose)
		return
	}
	log.Printf("odrsoak: %d clients, schedule %q -> %q, seed %d, %v at %dx%d@%.0ffps",
		*clients, *schedule, sched.String(), *seed, *duration, *width, *height, *fps)

	// Baseline before anything the run owns is spawned.
	base := testutil.Snapshot()

	ref := newRefTable(*width, *height)
	metrics := odr.NewMetricsRegistry()
	hubCfg := odr.HubConfig{
		Width: *width, Height: *height, TargetFPS: *fps,
		// Lossless on purpose: pixel identity against the reference is the
		// corruption-detection invariant.
		Codec:   odr.CodecOptions{QuantShift: 0},
		Metrics: metrics,
	}
	if *verbose {
		hubCfg.Logf = log.Printf
	}
	hub := odr.NewHub(hubCfg)
	go hub.Run()

	// The run scrapes its own Prometheus surface for the metric-predicate
	// invariants — the same endpoint odrserver -debug-addr exposes.
	debug, err := odr.ServeDebugWithMetrics("127.0.0.1:0", metrics, nil)
	if err != nil {
		log.Fatalf("odrsoak: debug listener: %v", err)
	}

	// The watchdog catches a full wedge: if the run (including drain and
	// shutdown) takes 3x its nominal length plus a minute, something is
	// deadlocked — dump every stack and fail hard.
	watchdog := time.AfterFunc(3*(*duration)+time.Minute, func() {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "odrsoak: WATCHDOG: run wedged; goroutine dump:\n%s\n", buf[:n])
		os.Exit(2)
	})

	all := make([]*soakClient, *clients)
	for i := range all {
		sc := &soakClient{idx: i, runErr: make(chan error, 1)}
		all[i] = sc
		dial := func() (net.Conn, error) {
			session := atomic.AddInt64(&sc.sessions, 1)
			hubEnd, clientEnd := net.Pipe()
			// Distinct deterministic seed per (client, session): runs with
			// the same flags replay the same faults everywhere.
			connSeed := *seed + int64(sc.idx)*1009 + session*101
			hub.Attach(odr.WrapChaos(hubEnd, sched, connSeed), 0, nil)
			return clientEnd, nil
		}
		sc.cli = odr.NewReconnectingStreamClient(dial, odr.ReconnectPolicy{
			MaxAttempts: *retry,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			IdleTimeout: 2 * time.Second,
			Seed:        *seed + int64(i),
		})
		sc.cli.OnFrame(func(seq uint64, pix []byte) {
			if seq == 0 {
				return
			}
			if sha256.Sum256(pix) != ref.hash(seq) {
				atomic.AddInt64(&sc.mismatches, 1)
			}
		})
		go func(sc *soakClient) { sc.runErr <- sc.cli.Run() }(sc)
	}

	time.Sleep(*duration)

	// End-of-run churn: half the clients stop abruptly (the user closing the
	// viewer), the rest are seen out gracefully by the hub drain.
	for _, sc := range all[:len(all)/2] {
		sc.cli.Stop()
	}
	drainErr := hub.Drain(15 * time.Second)

	for _, sc := range all {
		select {
		case sc.finalErr = <-sc.runErr:
		case <-time.After(20 * time.Second):
			sc.hung = true
		}
		sc.cli.Stop() // idempotent; frees a hung client's conn if any
	}
	watchdog.Stop()
	// Scrape the Prometheus surface while the counters are final (hub
	// drained), then close the listener so its goroutines are gone before
	// the leak check runs.
	scraped, scrapeErr := scrapeMetrics("http://" + debug.Addr() + "/metrics")
	debug.Close()
	leakErr := base.Check(5 * time.Second)

	// ----- Invariant report -------------------------------------------------
	var frames, resyncs, reconnects, mismatches, errored, hung int64
	for _, sc := range all {
		rep := sc.cli.Report()
		frames += rep.Frames
		resyncs += rep.Resyncs
		reconnects += rep.Reconnects
		mismatches += atomic.LoadInt64(&sc.mismatches)
		if sc.hung {
			hung++
		}
		if sc.finalErr != nil {
			errored++
		}
		if *verbose {
			log.Printf("client %2d: frames=%5d resyncs=%d reconnects=%d sessions=%d mismatches=%d err=%v hung=%v",
				sc.idx, rep.Frames, rep.Resyncs, rep.Reconnects,
				atomic.LoadInt64(&sc.sessions), atomic.LoadInt64(&sc.mismatches), sc.finalErr, sc.hung)
		}
	}
	log.Printf("totals: frames=%d resyncs=%d reconnects=%d evicted=%d detached-with-error=%d",
		frames, resyncs, reconnects, hub.Evicted(), errored)

	fail := 0
	check := func(name string, ok bool, detail string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			fail++
		}
		log.Printf("%s  %-24s %s", verdict, name, detail)
	}
	check("liveness", hung == 0, fmt.Sprintf("%d/%d client loops exited", int64(len(all))-hung, len(all)))
	check("pixel-identity", mismatches == 0, fmt.Sprintf("%d decoded frames, %d mismatched the reference", frames, mismatches))
	check("frames-delivered", frames > 0, fmt.Sprintf("%d frames decoded under schedule %q", frames, *schedule))
	check("graceful-drain", drainErr == nil, fmt.Sprintf("hub.Drain: %v", drainErr))
	leakDetail := "goroutines returned to baseline"
	if leakErr != nil {
		leakDetail = strings.SplitN(leakErr.Error(), "\n", 2)[0]
	}
	check("no-goroutine-leaks", leakErr == nil, leakDetail)

	// Tile accounting: every encoded frame contributes exactly
	// ceil(h/DefaultTileRows) tiles to tiles_coded, and only a subset of
	// them can be dirty. A drift here means the v2 encoder and its
	// telemetry disagree about what was put on the wire.
	snap := metrics.Snapshot()
	encoded, _ := snap["frames_encoded"].(int64)
	tilesCoded, _ := snap["tiles_coded"].(int64)
	tilesDirty, _ := snap["tiles_dirty"].(int64)
	perFrame := int64((*height + codec.DefaultTileRows - 1) / codec.DefaultTileRows)
	check("tile-accounting",
		encoded > 0 && tilesCoded == encoded*perFrame && tilesDirty > 0 && tilesDirty <= tilesCoded,
		fmt.Sprintf("%d frames x %d tiles = %d coded, %d dirty", encoded, perFrame, tilesCoded, tilesDirty))

	// ----- Scrape-driven metric predicates ---------------------------------
	// The same surface a Prometheus server or odrtop would read; the hub is
	// drained, so the counters are final and the two views must agree.
	check("metrics-scrape", scrapeErr == nil, fmt.Sprintf("GET /metrics parsed: %v", scrapeErr))
	if scrapeErr == nil {
		s := scraped
		renderedP := s.Number("odr_frames_rendered_total")
		encodedP := s.Number("odr_frames_encoded_total")
		displayedP := s.Number("odr_frames_displayed_total")
		// The hub encodes each frame once per lane and fans it out, so
		// displayed can exceed encoded (many viewers per encode) — but the
		// encoder must never outrun the renderer.
		check("prom-frame-conservation",
			renderedP > 0 && encodedP > 0 && encodedP <= renderedP && displayedP > 0,
			fmt.Sprintf("rendered=%.0f >= encoded=%.0f (shared), displayed=%.0f", renderedP, encodedP, displayedP))
		check("prom-vs-json",
			int64(encodedP) == encoded && int64(s.Number("odr_tiles_coded_total")) == tilesCoded,
			fmt.Sprintf("/metrics encoded=%.0f tiles=%.0f vs /debug/odr %d/%d",
				encodedP, s.Number("odr_tiles_coded_total"), encoded, tilesCoded))
		dirtyOut := s.Number("odr_tiles_outcome_total", scrape.Label{Name: "tile_outcome", Value: "dirty"})
		cleanOut := s.Number("odr_tiles_outcome_total", scrape.Label{Name: "tile_outcome", Value: "clean"})
		check("prom-tile-outcomes",
			int64(dirtyOut+cleanOut) == tilesCoded && int64(dirtyOut) == tilesDirty,
			fmt.Sprintf("dirty=%.0f + clean=%.0f = %.0f, want %d coded / %d dirty",
				dirtyOut, cleanOut, dirtyOut+cleanOut, tilesCoded, tilesDirty))
		// Tile-cache conservation: every payload tile the encoders coded and
		// every tile a splice included did exactly one cache lookup, so after
		// the drain the cache's hit+miss total must equal dirty tiles plus
		// spliced tiles — a drift means lookups are being double-counted,
		// skipped, or attributed to the wrong path.
		cacheHits := s.Number(odr.NameCodecTileCacheHits)
		cacheMisses := s.Number(odr.NameCodecTileCacheMisses)
		var splicedTiles float64
		for _, sm := range s.Series(odr.NameHubSplicedTiles) {
			splicedTiles += sm.Value
		}
		check("prom-cache-conservation",
			cacheHits+cacheMisses > 0 && cacheHits+cacheMisses == dirtyOut+splicedTiles,
			fmt.Sprintf("hits=%.0f + misses=%.0f = %.0f, want dirty=%.0f + spliced=%.0f = %.0f",
				cacheHits, cacheMisses, cacheHits+cacheMisses,
				dirtyOut, splicedTiles, dirtyOut+splicedTiles))
		sessSeries := s.SeriesCount("odr_session_fps")
		droppedSets := s.Number("obs_dropped_label_sets_total")
		check("prom-session-cardinality",
			sessSeries <= *clients+1 && droppedSets == 0,
			fmt.Sprintf("%d live odr_session_fps series (<= %d viewers + shared), %.0f label sets evicted",
				sessSeries, *clients, droppedSets))
		renderJ := s.Number("odr_session_energy_joules",
			scrape.Label{Name: "session", Value: "shared"}, scrape.Label{Name: "component", Value: "render"})
		negEnergy := 0
		for _, sm := range s.Series("odr_session_energy_joules") {
			if sm.Value < 0 {
				negEnergy++
			}
		}
		check("prom-energy-sane", renderJ > 0 && negEnergy == 0,
			fmt.Sprintf("shared render energy %.2f J, %d negative series", renderJ, negEnergy))
	}

	if fail > 0 {
		log.Printf("odrsoak: FAIL (%d invariant(s) violated)", fail)
		os.Exit(1)
	}
	log.Printf("odrsoak: PASS")
}
