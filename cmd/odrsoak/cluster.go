// Cluster soak (-cluster): master + in-process workers + churning clients,
// with a worker killed and another drained mid-run.
//
// The run stands up an odrmaster-equivalent control plane and N worker
// processes-in-miniature (each a hub behind a real TCP listener plus the
// cluster worker agent, heartbeating load reports scraped from its own
// metrics registry). Clients resolve every (re)connect through the master,
// and their data-plane conns run a chaos schedule on the worker side, so the
// stream churns exactly like the single-hub soak.
//
// At one third of the run the first worker is killed abruptly — control
// transport dead, listener closed, live conns cut, hub stopped — the way a
// machine dies. At two thirds, the last worker is ordered to drain, the way
// a scale-down retires one. Every affected session must migrate: redial
// through the master, land on a survivor, keyframe-resync, keep decoding.
//
// Invariants (nonzero exit on any failure):
//
//   - zero sessions lost: every client loop is still running at the end and
//     exits cleanly on Stop — no client exhausted its retry budget, because
//     a master-issued redirect resets it
//   - post-migration progress: every client decodes frames after the drain,
//     i.e. ends the run streaming from the surviving worker
//   - bounded resync gap: no client ever waits longer than the gap bound
//     between two decoded frames, through kill, drain and chaos alike
//   - pixel identity: all workers render the same deterministic game
//     losslessly, so every decoded frame must hash identically to the
//     reference for its sequence number — across migrations too
//   - cluster accounting: the kill detected as a worker failure and exactly
//     one drain order in the master's odr_cluster_* counters, and exactly
//     one alive worker in the final registry (the killed one dead, the
//     drained one deregistered)
//   - no goroutine leaks: after teardown the count returns to baseline
package main

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odr"
	"odr/internal/cluster"
	"odr/internal/obs"
	"odr/internal/obs/scrape"
	"odr/internal/testutil"
)

// clusterGapBound is the resync-gap invariant: the longest a client may go
// between two decoded frames, covering fault detection (idle timeout),
// master failover (heartbeat deadline) and reconnect backoff.
const clusterGapBound = 10 * time.Second

// killableTransport is the worker agent's control transport; kill() makes
// every subsequent RPC fail the way a dead machine's would, without the
// orderly deregistration a Stop would send.
type killableTransport struct {
	mu    sync.Mutex
	dead  bool
	inner http.RoundTripper
}

func (t *killableTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	t.mu.Lock()
	dead := t.dead
	t.mu.Unlock()
	if dead {
		return nil, errors.New("node killed")
	}
	return t.inner.RoundTrip(r)
}

func (t *killableTransport) kill() {
	t.mu.Lock()
	t.dead = true
	t.mu.Unlock()
}

// soakWorker is one in-process worker node: hub, data listener, agent.
type soakWorker struct {
	idx     int
	id      string
	hub     *odr.Hub
	reg     *odr.MetricsRegistry
	ln      net.Listener
	agent   *odr.ClusterWorker
	kt      *killableTransport
	runDone chan error

	mu      sync.Mutex
	conns   []net.Conn
	accepts int64
	killed  bool
}

// startSoakWorker boots one worker: the accept loop wraps each data conn in
// the chaos schedule with a per-(worker, conn) seed, so runs with the same
// flags replay the same faults.
func startSoakWorker(idx int, masterURL string, sched odr.ChaosSchedule, seed int64,
	fps float64, width, height int, verbose bool) *soakWorker {
	reg := odr.NewMetricsRegistry()
	hubCfg := odr.HubConfig{
		Width: width, Height: height, TargetFPS: fps,
		// Lossless: pixel identity across migration is the invariant.
		Codec:   odr.CodecOptions{QuantShift: 0},
		Metrics: reg,
	}
	if verbose {
		hubCfg.Logf = log.Printf
	}
	hub := odr.NewHub(hubCfg)
	go hub.Run()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("odrsoak: worker listener: %v", err)
	}
	w := &soakWorker{
		idx: idx, id: fmt.Sprintf("w%d", idx), hub: hub, reg: reg, ln: ln,
		kt:      &killableTransport{inner: &http.Transport{DisableKeepAlives: true}},
		runDone: make(chan error, 1),
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			w.mu.Lock()
			if w.killed {
				w.mu.Unlock()
				c.Close()
				continue
			}
			w.conns = append(w.conns, c)
			w.accepts++
			connSeed := seed + int64(idx)*10007 + w.accepts*101
			w.mu.Unlock()
			hub.Attach(odr.WrapChaos(c, sched, connSeed), 0, nil)
		}
	}()
	w.agent = odr.NewClusterWorker(odr.ClusterWorkerConfig{
		ID:        w.id,
		MasterURL: masterURL,
		Addr:      ln.Addr().String(),
		// Load reports come off the worker's own metrics surface, the same
		// way odrserver -master self-scrapes.
		Load: func() cluster.LoadReport {
			var buf strings.Builder
			if err := obs.WritePrometheusWith(&buf, reg, false); err != nil {
				return cluster.LoadReport{}
			}
			sc, err := scrape.ParseBytes([]byte(buf.String()))
			if err != nil {
				return cluster.LoadReport{}
			}
			return cluster.LoadFromScrape(sc)
		},
		OnDrain: func() {
			if err := hub.Drain(10 * time.Second); err != nil {
				log.Printf("odrsoak: worker %s drain: %v", w.id, err)
			}
		},
		HTTPClient: &http.Client{Timeout: 2 * time.Second, Transport: w.kt},
		Logf: func(format string, args ...any) {
			if verbose {
				log.Printf(format, args...)
			}
		},
	})
	go func() { w.runDone <- w.agent.Run() }()
	return w
}

// kill simulates the machine dying: control plane unreachable, data listener
// gone, live conns cut, hub stopped. No goodbye anywhere.
func (w *soakWorker) kill() {
	w.kt.kill()
	w.mu.Lock()
	w.killed = true
	conns := w.conns
	w.mu.Unlock()
	w.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	w.hub.Stop()
}

// shutdown is the orderly end-of-run teardown.
func (w *soakWorker) shutdown() {
	w.agent.Stop()
	select {
	case <-w.runDone:
	case <-time.After(10 * time.Second):
		log.Printf("odrsoak: worker %s agent did not stop", w.id)
	}
	w.ln.Close()
	w.hub.Stop()
}

// clusterClient is one resolving, churning viewer and its outcome state.
type clusterClient struct {
	idx        int
	cli        *odr.StreamClient
	runErr     chan error
	mismatches int64
	finalErr   error
	hung       bool

	mu        sync.Mutex
	lastFrame time.Time
	maxGap    time.Duration
}

// noteFrame updates the inter-frame gap bound tracking.
func (c *clusterClient) noteFrame(now time.Time) {
	c.mu.Lock()
	if !c.lastFrame.IsZero() {
		if gap := now.Sub(c.lastFrame); gap > c.maxGap {
			c.maxGap = gap
		}
	}
	c.lastFrame = now
	c.mu.Unlock()
}

func (c *clusterClient) gap() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.maxGap
}

// runCluster is the -cluster mode entry point.
func runCluster(clients, workers int, sched odr.ChaosSchedule, seed int64,
	duration time.Duration, fps float64, width, height int, retry int, verbose bool) {
	// One worker is killed and one drained, so at least one must survive to
	// host the migrated sessions.
	if workers < 3 {
		log.Fatalf("odrsoak: -cluster needs at least 3 workers (have %d)", workers)
	}
	log.Printf("odrsoak: cluster mode: %d clients over %d workers, schedule %q, seed %d, %v at %dx%d@%.0ffps",
		clients, workers, sched.String(), seed, duration, width, height, fps)

	base := testutil.Snapshot()

	// Control plane: a fast cadence so failover fits a short run, but a full
	// second of deadline so a race-detector or CI scheduler stall does not
	// flap healthy workers dead. Failover still completes well inside one
	// phase: a client redialing a dead worker inflates its pending score with
	// every placement, so the master redirects it to a survivor (resetting
	// the retry budget) long before the deadline even expires.
	clusterReg := odr.NewMetricsRegistry()
	master := odr.NewClusterMaster(odr.ClusterMasterConfig{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatDeadline: time.Second,
		Metrics:           clusterReg,
		Logf:              log.Printf,
	})
	go master.Run()
	ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("odrsoak: control listener: %v", err)
	}
	ctlSrv := &http.Server{Handler: master.Handler()}
	go ctlSrv.Serve(ctlLn)
	masterURL := "http://" + ctlLn.Addr().String()

	watchdog := time.AfterFunc(3*duration+time.Minute, func() {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "odrsoak: WATCHDOG: cluster run wedged; goroutine dump:\n%s\n", buf[:n])
		os.Exit(2)
	})

	fleet := make([]*soakWorker, workers)
	for i := range fleet {
		fleet[i] = startSoakWorker(i, masterURL, sched, seed, fps, width, height, verbose)
	}

	ref := newRefTable(width, height)
	ctlClient := &http.Client{Timeout: 2 * time.Second, Transport: &http.Transport{DisableKeepAlives: true}}
	all := make([]*clusterClient, clients)
	for i := range all {
		cc := &clusterClient{idx: i, runErr: make(chan error, 1)}
		all[i] = cc
		res := odr.NewClusterResolver(masterURL)
		res.HTTPClient = ctlClient
		cc.cli = odr.NewReconnectingStreamClient(res.Dial, odr.ReconnectPolicy{
			MaxAttempts: retry,
			BaseDelay:   5 * time.Millisecond,
			MaxDelay:    100 * time.Millisecond,
			IdleTimeout: 2 * time.Second,
			Seed:        seed + int64(i),
			// A drained worker's goodbye must trigger re-resolution, not a
			// clean client exit — that is the migration path.
			RedialOnBye: true,
		})
		cc.cli.OnFrame(func(seq uint64, pix []byte) {
			cc.noteFrame(time.Now())
			if seq == 0 {
				return
			}
			if sha256.Sum256(pix) != ref.hash(seq) {
				atomic.AddInt64(&cc.mismatches, 1)
			}
		})
		go func(cc *clusterClient) { cc.runErr <- cc.cli.Run() }(cc)
	}

	// Phase 1: steady churn across the full fleet.
	time.Sleep(duration / 3)

	// Phase 2: the first worker dies. Its sessions and its heartbeats stop at
	// the same instant; the master reaps it and clients fail over.
	log.Printf("odrsoak: killing worker %s", fleet[0].id)
	fleet[0].kill()
	time.Sleep(duration / 3)

	// Phase 3: the last worker is retired. Orderly: drain (goodbyes), the
	// agent deregisters, its clients re-resolve onto the survivors.
	drainee := fleet[workers-1]
	log.Printf("odrsoak: draining worker %s", drainee.id)
	if err := master.DrainWorker(drainee.id); err != nil {
		log.Fatalf("odrsoak: drain order: %v", err)
	}
	framesAtDrain := make([]int64, clients)
	for i, cc := range all {
		framesAtDrain[i] = cc.cli.Report().Frames
	}
	time.Sleep(duration - 2*(duration/3))

	// End of run: stop the clients first (they must all still be alive),
	// then the fleet and the control plane.
	finalWorkers := master.Workers()
	for _, cc := range all {
		cc.cli.Stop()
	}
	for _, cc := range all {
		select {
		case cc.finalErr = <-cc.runErr:
		case <-time.After(20 * time.Second):
			cc.hung = true
		}
	}
	for _, w := range fleet {
		w.shutdown()
	}
	ctlSrv.Close()
	master.Stop()
	ctlClient.CloseIdleConnections()
	watchdog.Stop()
	leakErr := base.Check(5 * time.Second)

	// ----- Invariant report -------------------------------------------------
	var frames, resyncs, reconnects, redirects, mismatches, lost, hung, stalled int64
	var maxGap time.Duration
	for i, cc := range all {
		rep := cc.cli.Report()
		frames += rep.Frames
		resyncs += rep.Resyncs
		reconnects += rep.Reconnects
		redirects += rep.Redirects
		mismatches += atomic.LoadInt64(&cc.mismatches)
		if cc.hung {
			hung++
		}
		if cc.finalErr != nil {
			lost++
		}
		if rep.Frames <= framesAtDrain[i] {
			stalled++
		}
		if g := cc.gap(); g > maxGap {
			maxGap = g
		}
		if verbose {
			log.Printf("client %2d: frames=%5d (+%4d post-drain) resyncs=%d reconnects=%d redirects=%d maxgap=%v err=%v hung=%v",
				cc.idx, rep.Frames, rep.Frames-framesAtDrain[i], rep.Resyncs, rep.Reconnects,
				rep.Redirects, cc.gap().Round(time.Millisecond), cc.finalErr, cc.hung)
		}
	}
	log.Printf("totals: frames=%d resyncs=%d reconnects=%d redirects=%d", frames, resyncs, reconnects, redirects)

	fail := 0
	check := func(name string, ok bool, detail string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			fail++
		}
		log.Printf("%s  %-24s %s", verdict, name, detail)
	}
	check("liveness", hung == 0, fmt.Sprintf("%d/%d client loops exited", int64(len(all))-hung, len(all)))
	check("zero-session-loss", lost == 0,
		fmt.Sprintf("%d/%d clients survived kill+drain to the end", int64(len(all))-lost, len(all)))
	check("post-migration-progress", stalled == 0,
		fmt.Sprintf("%d/%d clients decoded frames after the drain", int64(len(all))-stalled, len(all)))
	check("bounded-resync-gap", maxGap < clusterGapBound,
		fmt.Sprintf("max inter-frame gap %v (bound %v)", maxGap.Round(time.Millisecond), clusterGapBound))
	check("pixel-identity", mismatches == 0,
		fmt.Sprintf("%d decoded frames, %d mismatched the reference across migrations", frames, mismatches))
	check("frames-delivered", frames > 0, fmt.Sprintf("%d frames decoded", frames))
	check("migration-exercised", redirects >= 1 && reconnects >= 1,
		fmt.Sprintf("%d redirects, %d reconnects across the fleet", redirects, reconnects))

	// Cluster accounting against the master's own odr_cluster_* instruments
	// and final registry: the kill was detected (at least one failure —
	// scheduler stalls can flap a healthy worker dead and back, which is
	// master working as designed, so the count is a floor), exactly one
	// drain order, and the fleet ends with exactly one alive worker — the
	// killed one dead, the drained one deregistered.
	failures := clusterReg.Counter(cluster.NameClusterWorkerFailures).Value()
	drains := clusterReg.Counter(cluster.NameClusterDrains).Value()
	alive, dead := 0, 0
	for _, wi := range finalWorkers {
		switch wi.State {
		case "alive":
			alive++
		case "dead":
			dead++
		}
	}
	states := make([]string, 0, len(finalWorkers))
	for _, wi := range finalWorkers {
		states = append(states, wi.ID+"="+wi.State)
	}
	check("cluster-accounting",
		failures >= 1 && drains == 1 && alive == workers-2 && dead == 1 && len(finalWorkers) == workers-1,
		fmt.Sprintf("failures=%d drains=%d, final registry: %s", failures, drains, strings.Join(states, " ")))

	leakDetail := "goroutines returned to baseline"
	if leakErr != nil {
		leakDetail = strings.SplitN(leakErr.Error(), "\n", 2)[0]
	}
	check("no-goroutine-leaks", leakErr == nil, leakDetail)

	if fail > 0 {
		log.Printf("odrsoak: FAIL (%d invariant(s) violated)", fail)
		os.Exit(1)
	}
	log.Printf("odrsoak: PASS")
}
