package main

// Fan-out mode (-fanout N): the encode-once scale test. N viewers — far more
// than the classic churn run — attach to one hub at the same resolution, so
// they all share a single lane encoder. A slice of them (every churnEvery-th)
// reconnects through chaos-wrapped connections for the whole run, forcing
// attach/detach churn and mid-stream rejoins that exercise the spliced-
// keyframe path at scale.
//
// The invariants are the ones that define the architecture:
//
//   - encode-once: odr_frames_encoded_total stays bounded by frames rendered
//     (the encoder runs per frame, not per viewer x frame), while
//     odr_frames_displayed_total fans out to many times that
//   - spliced keyframes: late joiners and resyncing churners are served
//     catch-up keyframes spliced from shared encoder state, never by forcing
//     a keyframe into every viewer's stream
//   - pixel identity: splicing is byte-exact — every decoded frame from
//     every viewer must hash-match the deterministic reference render
//   - flat memory: per-viewer heap stays bounded (no per-session encoder
//     state), measured after a forced GC while all viewers are attached
//   - liveness, graceful drain, no goroutine leaks: same bar as the classic
//     run, at 100x the session count

import (
	"crypto/sha256"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"odr"
	"odr/internal/chaos"
	"odr/internal/obs/scrape"
	"odr/internal/testutil"
)

// churnEvery picks which viewers reconnect through chaos: one in every
// churnEvery attaches via a fault-injected, reconnecting client.
const churnEvery = 16

// pacedEvery picks which steady viewers attach with a per-session FPS cap
// (half the hub rate): their every frame rides a timer-wheel pacing deadline,
// so the soak exercises the wheel at session scale, not just the fan-out
// path.
const pacedEvery = 8

// fanoutViewer is one shared-lane viewer and its outcome counters.
type fanoutViewer struct {
	idx        int
	churn      bool
	cli        *odr.StreamClient
	runErr     chan error
	sessions   int64
	mismatches int64
	finalErr   error
	hung       bool
}

// fanoutBytesPerViewer bounds steady-state heap per attached viewer. The
// budget covers both ends of a pipe — decoder state, display buffer and read
// buffer client-side; session bookkeeping, latest-wins buffer and splice
// scratch hub-side — with headroom for allocator slack. What it must NOT
// cover is a per-session encoder: that is the regression this bound exists
// to catch.
const fanoutBytesPerViewer = 256 << 10

func runFanout(viewers int, sched chaos.Schedule, seed int64, duration time.Duration,
	fps float64, width, height, retry int, verbose bool, faildump string) {
	log.Printf("odrsoak: fan-out mode, %d viewers (1 in %d chaos-churned, schedule %q), seed %d, %v at %dx%d@%.0ffps",
		viewers, churnEvery, sched.String(), seed, duration, width, height, fps)

	base := testutil.Snapshot()
	ref := newRefTable(width, height)
	metrics := odr.NewMetricsRegistry()
	hub := odr.NewHub(odr.HubConfig{
		Width: width, Height: height, TargetFPS: fps,
		// Lossless so the pixel-identity invariant holds bit-for-bit.
		Codec:   odr.CodecOptions{QuantShift: 0},
		Metrics: metrics,
	})
	go hub.Run()
	debug, err := odr.ServeDebugWithMetrics("127.0.0.1:0", metrics, nil)
	if err != nil {
		log.Fatalf("odrsoak: debug listener: %v", err)
	}

	watchdog := time.AfterFunc(3*duration+2*time.Minute, func() {
		buf := make([]byte, 1<<21)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "odrsoak: WATCHDOG: fan-out run wedged; goroutine dump:\n%s\n", buf[:n])
		os.Exit(2)
	})

	// Heap baseline before any viewer exists: the per-viewer cost is the
	// delta at steady state divided by the viewer count.
	runtime.GC()
	var heapBase runtime.MemStats
	runtime.ReadMemStats(&heapBase)

	views := make([]*fanoutViewer, viewers)
	for i := range views {
		v := &fanoutViewer{idx: i, churn: i%churnEvery == churnEvery-1, runErr: make(chan error, 1)}
		views[i] = v
		if v.churn {
			dial := func() (net.Conn, error) {
				session := atomic.AddInt64(&v.sessions, 1)
				hubEnd, clientEnd := net.Pipe()
				connSeed := seed + int64(v.idx)*1009 + session*101
				hub.Attach(odr.WrapChaos(hubEnd, sched, connSeed), 0, nil)
				return clientEnd, nil
			}
			v.cli = odr.NewReconnectingStreamClient(dial, odr.ReconnectPolicy{
				MaxAttempts: retry,
				BaseDelay:   5 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
				IdleTimeout: 2 * time.Second,
				Seed:        seed + int64(v.idx),
			})
		} else {
			hubEnd, clientEnd := net.Pipe()
			viewerFPS := 0.0
			if i%pacedEvery == pacedEvery/2 {
				viewerFPS = fps / 2 // paced: every frame schedules a wheel deadline
			}
			hub.Attach(hubEnd, viewerFPS, nil)
			v.sessions = 1
			v.cli = odr.NewStreamClient(clientEnd)
		}
		v.cli.OnFrame(func(seq uint64, pix []byte) {
			if seq == 0 {
				return
			}
			if sha256.Sum256(pix) != ref.hash(seq) {
				atomic.AddInt64(&v.mismatches, 1)
			}
		})
		go func(v *fanoutViewer) { v.runErr <- v.cli.Run() }(v)
		// Stagger attachment across the first frames so a real share of
		// viewers joins mid-stream and must be served a spliced keyframe.
		if i%64 == 63 {
			time.Sleep(20 * time.Millisecond)
		}
	}

	time.Sleep(duration)

	// Steady-state goroutine count, read while every viewer is attached. The
	// harness owns one Run loop per viewer; everything on top must be O(pool)
	// — sender workers, readers, one wheel, one lane, debug server, chaos
	// churn transients — never O(sessions). The old goroutine-per-session
	// hub sat near 4x viewers here.
	goroutinesNow := runtime.NumGoroutine()

	// Steady-state memory, measured while every viewer is still attached.
	runtime.GC()
	var heapNow runtime.MemStats
	runtime.ReadMemStats(&heapNow)
	var perViewer int64
	if heapNow.HeapAlloc > heapBase.HeapAlloc {
		perViewer = int64(heapNow.HeapAlloc-heapBase.HeapAlloc) / int64(viewers)
	}

	drainErr := hub.Drain(60 * time.Second)

	timeout := make(chan struct{})
	time.AfterFunc(60*time.Second, func() { close(timeout) })
	for _, v := range views {
		select {
		case v.finalErr = <-v.runErr:
		case <-timeout:
			v.hung = true
		}
		v.cli.Stop()
	}
	watchdog.Stop()
	scraped, scrapeErr := scrapeMetrics("http://" + debug.Addr() + "/metrics")
	debug.Close()
	leakErr := base.Check(15 * time.Second)

	// ----- Invariant report -------------------------------------------------
	var frames, mismatches, reconnects, hung, errored int64
	for _, v := range views {
		rep := v.cli.Report()
		frames += rep.Frames
		reconnects += rep.Reconnects
		mismatches += atomic.LoadInt64(&v.mismatches)
		if v.hung {
			hung++
		}
		if v.finalErr != nil {
			errored++
		}
		if verbose && v.churn {
			log.Printf("churner %4d: frames=%5d resyncs=%d reconnects=%d sessions=%d err=%v hung=%v",
				v.idx, rep.Frames, rep.Resyncs, rep.Reconnects,
				atomic.LoadInt64(&v.sessions), v.finalErr, v.hung)
		}
	}
	log.Printf("totals: viewers=%d frames=%d reconnects=%d evicted=%d detached-with-error=%d heap/viewer=%dB",
		viewers, frames, reconnects, hub.Evicted(), errored, perViewer)

	fail := 0
	check := func(name string, ok bool, detail string) {
		verdict := "PASS"
		if !ok {
			verdict = "FAIL"
			fail++
		}
		log.Printf("%s  %-24s %s", verdict, name, detail)
	}
	check("liveness", hung == 0, fmt.Sprintf("%d/%d viewer loops exited", int64(viewers)-hung, viewers))
	check("pixel-identity", mismatches == 0,
		fmt.Sprintf("%d decoded frames, %d mismatched the reference", frames, mismatches))
	check("frames-delivered", frames > int64(viewers),
		fmt.Sprintf("%d frames across %d viewers", frames, viewers))
	check("graceful-drain", drainErr == nil, fmt.Sprintf("hub.Drain: %v", drainErr))
	leakDetail := "goroutines returned to baseline"
	if leakErr != nil {
		leakDetail = strings.SplitN(leakErr.Error(), "\n", 2)[0]
	}
	check("no-goroutine-leaks", leakErr == nil, leakDetail)
	check("flat-memory", perViewer < fanoutBytesPerViewer,
		fmt.Sprintf("%d B/viewer steady-state heap (bound %d)", perViewer, fanoutBytesPerViewer))
	goroutineBudget := viewers + 256
	check("goroutine-budget", goroutinesNow <= goroutineBudget,
		fmt.Sprintf("%d goroutines at steady state for %d viewers (bound %d: harness Run loops + O(pool) hub)",
			goroutinesNow, viewers, goroutineBudget))

	check("metrics-scrape", scrapeErr == nil, fmt.Sprintf("GET /metrics parsed: %v", scrapeErr))
	if scrapeErr == nil {
		s := scraped
		rendered := s.Number("odr_frames_rendered_total")
		encoded := s.Number("odr_frames_encoded_total")
		displayed := s.Number("odr_frames_displayed_total")
		sharedEnc := s.Number(odr.NameHubSharedEncodes, scrape.Label{Name: "lane", Value: "1"})
		splicedKeys := s.Number(odr.NameHubSplicedKeyframes, scrape.Label{Name: "lane", Value: "1"})

		// The architectural invariant: encode work is O(frames). One shared
		// encode per encoded frame, bounded by the render count, while
		// deliveries fan out to a large multiple of it.
		check("encode-once",
			encoded > 0 && sharedEnc == encoded && encoded <= rendered,
			fmt.Sprintf("rendered=%.0f >= encoded=%.0f == shared-lane encodes=%.0f",
				rendered, encoded, sharedEnc))
		check("fanout-amplification", displayed >= 10*encoded,
			fmt.Sprintf("displayed=%.0f >= 10x encoded=%.0f across %d viewers",
				displayed, encoded, viewers))
		check("spliced-keyframes", splicedKeys > 0,
			fmt.Sprintf("%.0f catch-up keyframes spliced for joiners/resyncs", splicedKeys))

		// Tile-cache conservation at fan-out scale: payload tiles coded by
		// the shared encoder plus tiles included in spliced catch-up frames
		// each did exactly one cache lookup — the identity survives hundreds
		// of concurrent viewers churning through the splice path.
		cacheHits := s.Number(odr.NameCodecTileCacheHits)
		cacheMisses := s.Number(odr.NameCodecTileCacheMisses)
		dirtyTiles := s.Number("odr_tiles_outcome_total", scrape.Label{Name: "tile_outcome", Value: "dirty"})
		splicedTiles := s.Number(odr.NameHubSplicedTiles, scrape.Label{Name: "lane", Value: "1"})
		check("cache-conservation",
			cacheHits+cacheMisses > 0 && cacheHits+cacheMisses == dirtyTiles+splicedTiles,
			fmt.Sprintf("hits=%.0f + misses=%.0f = %.0f, want dirty=%.0f + spliced=%.0f = %.0f",
				cacheHits, cacheMisses, cacheHits+cacheMisses,
				dirtyTiles, splicedTiles, dirtyTiles+splicedTiles))

		// Event-driven engine metrics. Coalesced writes must accumulate at
		// fan-out scale (many sessions flushing per sender wakeup); the
		// queue-depth and wheel-lag gauges must at least be exported — and
		// with paced viewers in the mix the wheel fired, so its lag gauge
		// carries a real observation (non-negative by construction).
		coalesced := s.Number(odr.NameHubCoalescedWrites)
		check("coalesced-writes", coalesced > 0,
			fmt.Sprintf("%.0f frames flushed in multi-frame sender batches", coalesced))
		depth, depthOK := s.Value(odr.NameHubSenderQueueDepth)
		check("sender-queue-exported", depthOK && depth >= 0,
			fmt.Sprintf("odr_hub_sender_queue_depth=%.0f", depth))
		lag, lagOK := s.Value(odr.NameHubTimerwheelLagUs)
		check("timerwheel-lag-exported", lagOK && lag >= 0,
			fmt.Sprintf("odr_hub_timerwheel_lag_us=%.0f (paced 1-in-%d viewers rode the wheel)", lag, pacedEvery))
	}

	if fail > 0 {
		if faildump != "" {
			buf := make([]byte, 1<<22)
			n := runtime.Stack(buf, true)
			if werr := os.WriteFile(faildump, buf[:n], 0o644); werr != nil {
				log.Printf("odrsoak: could not write goroutine dump to %s: %v", faildump, werr)
			} else {
				log.Printf("odrsoak: goroutine dump written to %s", faildump)
			}
		}
		log.Printf("odrsoak: FAIL (%d invariant(s) violated)", fail)
		os.Exit(1)
	}
	log.Printf("odrsoak: PASS")
}
