// Command odrmaster runs the cluster control plane: it registers odrserver
// workers (started with -master), health-checks them against a heartbeat
// deadline, answers client placement queries with the least-loaded worker,
// and drains or migrates sessions on worker failure or scale-down.
//
// Usage:
//
//	odrmaster [-addr :7400] [-hb 250ms] [-deadline 1s]
//	          [-debug-addr :8098] [-drain worker-id]
//
// The control surface is JSON over HTTP on -addr:
//
//	POST /cluster/register    worker announce (odrserver -master does this)
//	POST /cluster/heartbeat   liveness + load report; piggybacks drain orders
//	POST /cluster/deregister  orderly worker removal
//	POST /cluster/drain       operator scale-down order for one worker
//	GET  /cluster/place       placement query: the worker a client should dial
//	GET  /cluster/workers     registry snapshot (id, state, load, score)
//
// With -drain ID the command acts as an operator client instead: it posts a
// drain order for the named worker to -addr and exits.
//
// With -debug-addr, the master exposes /metrics (the odr_cluster_* families:
// fleet size by state, placements, heartbeats, worker failures, drain
// orders, per-worker load score), /debug/odr (the worker registry as JSON)
// and /debug/pprof/. -metrics-lint validates the metric surface against the
// registry naming conventions and exits; the same lint guards startup.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"odr"
	"odr/internal/cluster"
	"odr/internal/obs"
)

// lintMetrics builds the master's full metric surface in a scratch registry
// and reports naming-convention violations.
func lintMetrics() int {
	reg := odr.NewMetricsRegistry()
	odr.RegisterClusterMetrics(reg)
	errs := obs.Lint(reg)
	for _, err := range errs {
		fmt.Fprintf(os.Stderr, "metrics-lint: %v\n", err)
	}
	if len(errs) > 0 {
		fmt.Fprintf(os.Stderr, "metrics-lint: %d violation(s)\n", len(errs))
		return 1
	}
	fmt.Printf("metrics-lint: %d families clean\n", len(reg.Names()))
	return 0
}

// orderDrain posts an operator drain order to a running master.
func orderDrain(addr, id string) int {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	body, _ := json.Marshal(cluster.DrainRequest{ID: id})
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Post(addr+cluster.PathDrain, "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintf(os.Stderr, "odrmaster: drain: %v\n", err)
		return 1
	}
	defer resp.Body.Close()
	var dr cluster.DrainResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		fmt.Fprintf(os.Stderr, "odrmaster: drain: %v\n", err)
		return 1
	}
	if !dr.OK {
		fmt.Fprintf(os.Stderr, "odrmaster: drain refused: %s\n", dr.Error)
		return 1
	}
	fmt.Printf("drain ordered for worker %s\n", id)
	return 0
}

func main() {
	addr := flag.String("addr", ":7400", "control-plane listen address")
	hb := flag.Duration("hb", 250*time.Millisecond, "heartbeat interval dictated to workers")
	deadline := flag.Duration("deadline", 0, "heartbeat deadline before a worker is declared dead (0 = 4x the interval)")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /debug/odr and /debug/pprof/ on this address")
	drainID := flag.String("drain", "", "act as an operator client: order this worker to drain, then exit")
	metricsLint := flag.Bool("metrics-lint", false, "validate the metric naming conventions and exit")
	flag.Parse()

	if *metricsLint {
		os.Exit(lintMetrics())
	}
	if *drainID != "" {
		os.Exit(orderDrain(*addr, *drainID))
	}

	reg := odr.NewMetricsRegistry()
	// Pre-register the whole cluster surface, then hold startup to the
	// naming conventions — same gate as odrserver.
	odr.RegisterClusterMetrics(reg)
	obs.MustLint(reg)

	m := odr.NewClusterMaster(odr.ClusterMasterConfig{
		HeartbeatInterval: *hb,
		HeartbeatDeadline: *deadline,
		Metrics:           reg,
		Logf:              log.Printf,
	})
	go m.Run()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: m.Handler()}
	log.Printf("odrmaster: control plane on %s (beat every %v)", ln.Addr(), *hb)

	if *debugAddr != "" {
		ds, err := odr.ServeDebugWithMetrics(*debugAddr, reg, func() any {
			return map[string]any{"workers": m.Workers(), "metrics": reg.Snapshot()}
		})
		if err != nil {
			log.Fatal(err)
		}
		defer ds.Close()
		log.Printf("debug endpoint on http://%s/debug/odr (Prometheus at /metrics)", ds.Addr())
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("received %v: shutting down", s)
	case err := <-serveErr:
		log.Printf("control listener: %v", err)
	}
	srv.Close()
	m.Stop()

	var b strings.Builder
	if err := reg.WriteSummary(&b); err != nil {
		log.Printf("final stats: <unserializable: %v>", err)
		return
	}
	log.Printf("final stats:\n%s", strings.TrimRight(b.String(), "\n"))
}
