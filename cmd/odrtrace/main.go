// Command odrtrace exports simulator measurements as CSV for plotting: the
// Fig. 4 CDFs and frame-time traces, and per-window FPS series for any
// configuration.
//
// Usage:
//
//	odrtrace -kind cdf      [-benchmark IM] [-platform priv] [-policy noreg] > cdf.csv
//	odrtrace -kind trace    [-benchmark IM] ...                              > trace.csv
//	odrtrace -kind fps      [-policy odr -fps 60] ...                        > fps.csv
//	odrtrace -kind timeline [-policy odr] -trace-out timeline.json
//
// A trace exported with -kind trace can be replayed as the workload of a
// later run with -replay trace.csv (trace-driven simulation).
//
// -kind timeline records the full frame lifecycle (render, copy, encode, tx,
// decode spans; input, display, MulBuf-drop and PriorityFrame instants) and
// writes it in Chrome trace-event format — open the file in chrome://tracing
// or https://ui.perfetto.dev. With -trace-csv the same events are written as
// CSV instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"odr/internal/obs"
	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
	"odr/internal/trace"
	"odr/internal/workload"
)

func main() {
	kind := flag.String("kind", "cdf", "export kind: cdf, trace, fps, timeline")
	traceOut := flag.String("trace-out", "", "timeline output path (Chrome trace-event JSON; default stdout)")
	traceCSV := flag.Bool("trace-csv", false, "write the timeline as CSV instead of Chrome JSON")
	traceEvents := flag.Int("trace-events", 1<<20, "timeline ring capacity (keeps the most recent events)")
	benchmark := flag.String("benchmark", "IM", "benchmark: STK, 0AD, RE, D2, IM, ITP")
	platform := flag.String("platform", "priv", "platform: priv, gce")
	resolution := flag.String("resolution", "720p", "resolution: 720p, 1080p")
	policy := flag.String("policy", "noreg", "policy: noreg, int, rvs, odr")
	fps := flag.Float64("fps", 0, "target FPS (0 = max; refresh rate for rvs)")
	duration := flag.Duration("duration", 60*time.Second, "simulated duration")
	seed := flag.Int64("seed", 1, "seed")
	replay := flag.String("replay", "", "CSV trace to replay as the workload (from -kind trace)")
	flag.Parse()

	var b pictor.Benchmark
	for _, cand := range pictor.Benchmarks {
		if string(cand) == *benchmark {
			b = cand
		}
	}
	if b == "" {
		log.Fatalf("unknown benchmark %q", *benchmark)
	}
	plat := pictor.PrivateCloud
	if *platform == "gce" {
		plat = pictor.GoogleGCE
	}
	res := pictor.R720p
	if *resolution == "1080p" {
		res = pictor.R1080p
	}
	var factory pipeline.PolicyFactory
	switch *policy {
	case "noreg":
		factory = func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewNoReg(ctx) }
	case "int":
		factory = func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewInterval(ctx, *fps) }
	case "rvs":
		hz := *fps
		if hz == 0 {
			hz = 240
		}
		factory = func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewRVS(ctx, hz, 0) }
	case "odr":
		factory = func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, regulator.ODROptions{TargetFPS: *fps})
		}
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	cfg := pipeline.Config{
		Workload:      b.Params(),
		Scale:         pictor.Scale(plat, res),
		Net:           pictor.Network(plat),
		Policy:        factory,
		Duration:      *duration,
		Seed:          *seed,
		CollectFrames: 200,
	}
	var tl *obs.Tracer
	if *kind == "timeline" {
		tl = obs.NewTracer(*traceEvents)
		cfg.Trace = tl
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			log.Fatal(err)
		}
		rows, err := workload.ParseTraceCSV(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		src, err := workload.NewTraceSampler(rows, b.Params().InputRate, *seed)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Source = src
	}
	r := pipeline.Run(cfg)

	switch *kind {
	case "cdf":
		t := trace.NewTable("step", "time_ms", "cdf")
		emit := func(step string, xs, ps []float64) {
			for i := range xs {
				if err := t.AddRow(step, xs[i], ps[i]); err != nil {
					log.Fatal(err)
				}
			}
		}
		rx, rp := r.RenderTimes.CDF()
		ex, ep := r.EncodeTimes.CDF()
		tx, tp := r.TransTimes.CDF()
		emit("render", rx, rp)
		emit("encode", ex, ep)
		emit("trans", tx, tp)
		fmt.Print(t.String())
	case "trace":
		// Full per-frame cost trace; replayable with -replay.
		t := trace.NewTable("frame", "render_ms", "copy_ms", "encode_ms", "decode_ms", "bytes", "complexity", "trans_ms")
		for i, f := range r.FrameTrace {
			err := t.AddRow(i,
				float64(f.CostRender)/1e6,
				float64(f.CostCopy)/1e6,
				float64(f.CostEncode)/1e6,
				float64(f.CostDecode)/1e6,
				f.Bytes,
				f.Complexity,
				float64(f.SendEnd-f.EncodeEnd)/1e6)
			if err != nil {
				log.Fatal(err)
			}
		}
		fmt.Print(t.String())
	case "fps":
		if err := trace.WriteSeries(os.Stdout, "window", "client_fps", r.ClientRates.Samples()); err != nil {
			log.Fatal(err)
		}
	case "timeline":
		out := os.Stdout
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		var err error
		if *traceCSV {
			err = tl.WriteCSV(out)
		} else {
			err = tl.WriteChromeTrace(out)
		}
		if err != nil {
			log.Fatal(err)
		}
		if n := tl.Dropped(); n > 0 {
			log.Printf("timeline ring wrapped: oldest %d events overwritten (raise -trace-events)", n)
		}
		if *traceOut != "" {
			log.Printf("timeline: %d events -> %s (open in chrome://tracing or ui.perfetto.dev)",
				tl.Recorded()-tl.Dropped(), *traceOut)
		}
	default:
		log.Fatalf("unknown kind %q", *kind)
	}
}
