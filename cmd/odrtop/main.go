// Command odrtop is a live terminal dashboard over any ODR /metrics URL:
// it scrapes the Prometheus text exposition the server publishes
// (odrserver -debug-addr), derives per-second rates from consecutive
// scrapes, estimates latency quantiles from the exported histograms, and
// pivots the labeled odr_session_* series into a per-session QoE/energy
// table — top(1) for a streaming fleet, with zero dependencies.
//
// Usage:
//
//	odrtop [-url http://localhost:8099/metrics] [-interval 1s] [-once]
//	curl -s localhost:8099/metrics | odrtop -url -
//
// With -url - (or an empty url) one exposition document is read from
// stdin and rendered once; -once scrapes once and exits without taking
// over the terminal. Otherwise the screen refreshes every interval.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"odr/internal/obs/scrape"
)

func main() {
	url := flag.String("url", "http://localhost:8099/metrics", `metrics URL ("-" reads one document from stdin)`)
	interval := flag.Duration("interval", time.Second, "refresh interval")
	once := flag.Bool("once", false, "render a single frame and exit")
	flag.Parse()
	log.SetFlags(0)

	if *url == "-" || *url == "" {
		doc, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatalf("odrtop: reading stdin: %v", err)
		}
		s, err := scrape.ParseBytes(doc)
		if err != nil {
			log.Fatalf("odrtop: %v", err)
		}
		fmt.Print(render(s, nil, 0, "stdin"))
		return
	}

	var prev *scrape.Scrape
	var prevAt time.Time
	for {
		s, err := fetch(*url)
		now := time.Now()
		if err != nil {
			if *once {
				log.Fatalf("odrtop: %v", err)
			}
			fmt.Printf("\x1b[2J\x1b[Hodrtop — %s\n\nscrape failed: %v\n", *url, err)
		} else {
			var dt time.Duration
			if prev != nil {
				dt = now.Sub(prevAt)
			}
			out := render(s, prev, dt, *url)
			if *once {
				fmt.Print(out)
				return
			}
			fmt.Print("\x1b[2J\x1b[H" + out)
			prev, prevAt = s, now
		}
		time.Sleep(*interval)
	}
}

// fetch scrapes and parses one document.
func fetch(url string) (*scrape.Scrape, error) {
	c := http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return scrape.Parse(resp.Body)
}

// labelString renders a sample's labels as {k="v",...} ("" when unlabeled).
func labelString(sm *scrape.Sample) string {
	if len(sm.Labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range sm.Labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// render formats one dashboard frame. prev (and dt) enable counter rates.
func render(s, prev *scrape.Scrape, dt time.Duration, src string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "odrtop — %s", src)
	if bi := s.Series("odr_build_info"); len(bi) > 0 {
		fmt.Fprintf(&b, "   (%s %s/%s)", bi[0].Label("go_version"), bi[0].Label("goos"), bi[0].Label("goarch"))
	}
	b.WriteString("\n\n")

	names := make([]string, 0, len(s.Families))
	for i := range s.Families {
		names = append(names, s.Families[i].Name)
	}
	sort.Strings(names)

	// Counters: lifetime totals plus the rate since the previous scrape.
	fmt.Fprintf(&b, "%-44s %14s %10s\n", "COUNTERS", "total", "/s")
	for _, name := range names {
		f := s.Family(name)
		if f.Type != "counter" {
			continue
		}
		for i := range f.Samples {
			sm := &f.Samples[i]
			series := sm.Name + labelString(sm)
			rate := "-"
			if prev != nil && dt > 0 {
				if pv, ok := prev.Value(sm.Name, sm.Labels...); ok {
					rate = fmt.Sprintf("%.1f", (sm.Value-pv)/dt.Seconds())
				}
			}
			fmt.Fprintf(&b, "  %-42s %14.0f %10s\n", series, sm.Value, rate)
		}
	}

	// Histograms: count, mean, and scraped-quantile estimates.
	fmt.Fprintf(&b, "\n%-30s %12s %10s %10s %10s %10s\n", "HISTOGRAMS", "count", "mean", "p50", "p95", "p99")
	for _, name := range names {
		f := s.Family(name)
		if f.Type != "histogram" {
			continue
		}
		count := s.Number(name + "_count")
		mean := 0.0
		if count > 0 {
			mean = s.Number(name+"_sum") / count
		}
		p50, _ := s.Quantile(name, 0.50)
		p95, _ := s.Quantile(name, 0.95)
		p99, _ := s.Quantile(name, 0.99)
		fmt.Fprintf(&b, "  %-28s %12.0f %10.1f %10.1f %10.1f %10.1f\n", name, count, mean, p50, p95, p99)
	}

	// Per-session QoE/energy pivot of the labeled live series.
	sessions := s.LabelValues("odr_session_fps", "session")
	if len(sessions) > 0 {
		fmt.Fprintf(&b, "\n%-10s %8s %9s %9s %8s %8s %10s %10s %10s\n",
			"SESSION", "fps", "mtp_ms", "p99_ms", "smooth", "watts", "render_j", "encode_j", "net_j")
		for _, sess := range sessions {
			l := scrape.Label{Name: "session", Value: sess}
			fmt.Fprintf(&b, "%-10s %8.1f %9.1f %9.1f %8.2f %8.1f %10.1f %10.1f %10.1f\n",
				sess,
				s.Number("odr_session_fps", l),
				s.Number("odr_session_mtp_ms", l),
				s.Number("odr_session_mtp_p99_ms", l),
				s.Number("odr_session_smoothness", l),
				s.Number("odr_session_watts", l),
				s.Number("odr_session_energy_joules", l, scrape.Label{Name: "component", Value: "render"}),
				s.Number("odr_session_energy_joules", l, scrape.Label{Name: "component", Value: "encode"}),
				s.Number("odr_session_energy_joules", l, scrape.Label{Name: "component", Value: "network"}))
		}
	}

	// Remaining gauges (the session pivot above already showed the
	// odr_session_* families).
	fmt.Fprintf(&b, "\n%-44s %14s\n", "GAUGES", "value")
	for _, name := range names {
		f := s.Family(name)
		if f.Type != "gauge" || strings.HasPrefix(name, "odr_session_") {
			continue
		}
		for i := range f.Samples {
			sm := &f.Samples[i]
			fmt.Fprintf(&b, "  %-42s %14.2f\n", sm.Name+labelString(sm), sm.Value)
		}
	}
	return b.String()
}
