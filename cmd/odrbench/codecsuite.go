package main

// The tile-codec benchmark suite: encode throughput across content kinds
// (static / scrolling / noise), resolutions (720p / 1080p / 4K) and worker
// counts (the v1 serial coder as baseline, then the v2 tile coder at 1-16
// workers on private pools). Each (content, resolution) group re-checks the
// determinism contract — every worker count must produce the serial
// bitstream byte-for-byte — before any timing runs.
//
// The emitted BENCH_codec.json reports absolute ns/frame for the machine it
// ran on plus speedup_vs_v1 ratios; CI regression checking compares the
// ratios (-codec-check), which transfer across machines, never the
// absolute times.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"odr/internal/codec"
	"odr/internal/wpool"
)

var codecWorkerCounts = []int{1, 2, 4, 8, 16}

type codecCell struct {
	Content       string  `json:"content"`
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	Version       int     `json:"version"`
	Workers       int     `json:"workers"` // 0 for the v1 baseline row
	NsPerFrame    float64 `json:"ns_per_frame"`
	MBPerSec      float64 `json:"mb_per_sec"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	DirtyRatio    float64 `json:"dirty_tile_ratio"`
	SpeedupVsV1   float64 `json:"speedup_vs_v1"`
}

type codecSuiteReport struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	NumCPU      int         `json:"num_cpu"`
	FrameBudget string      `json:"frame_budget_per_cell"`
	Cells       []codecCell `json:"cells"`
}

// contentFrames builds the frame sequence for one content kind. Frame
// count shrinks with resolution so a 4K noise set stays within a few
// hundred MB.
func contentFrames(kind string, w, h int) [][]byte {
	frameBytes := w * h * 4
	n := 8
	if frameBytes > 16<<20 {
		n = 3
	}
	st := uint64(0x9E3779B97F4A7C15) ^ uint64(frameBytes)
	next := func() byte { st ^= st << 13; st ^= st >> 7; st ^= st << 17; return byte(st) }
	base := make([]byte, frameBytes)
	for i := range base {
		base[i] = next()
	}
	frames := make([][]byte, n)
	switch kind {
	case "static":
		// Identical frames: the all-clean fast path. One backing array.
		for f := range frames {
			frames[f] = base
		}
	case "scrolling":
		// A moving ~10% dirty band over a static background: the paper's
		// mostly-static cloud-UI shape.
		for f := range frames {
			fr := make([]byte, frameBytes)
			copy(fr, base)
			start := f * frameBytes / n
			end := min(start+frameBytes/10, frameBytes)
			for i := start; i < end; i++ {
				fr[i] = next()
			}
			frames[f] = fr
		}
	case "noise":
		// Fully-dynamic content: every tile dirty, worst case for skipping.
		for f := range frames {
			fr := make([]byte, frameBytes)
			for i := range fr {
				fr[i] = next()
			}
			frames[f] = fr
		}
	default:
		panic("unknown content kind " + kind)
	}
	return frames
}

// timeEncode drives enc over frames for roughly budget and reports
// per-frame averages.
func timeEncode(enc *codec.Encoder, frames [][]byte, budget time.Duration) (nsPerFrame, bytesPerFrame, dirtyRatio float64) {
	buf := make([]byte, 0, enc.FrameSize()/2)
	var err error
	for _, f := range frames { // warm the scratches
		if buf, err = enc.EncodeAppend(buf[:0], f); err != nil {
			panic(err)
		}
	}
	var n, tileSum, dirtySum int
	var outBytes int64
	start := time.Now()
	for n < 3 || time.Since(start) < budget {
		if buf, err = enc.EncodeAppend(buf[:0], frames[n%len(frames)]); err != nil {
			panic(err)
		}
		outBytes += int64(len(buf))
		tiles, dirty := enc.TileStats()
		tileSum += tiles
		dirtySum += dirty
		n++
	}
	elapsed := time.Since(start)
	nsPerFrame = float64(elapsed.Nanoseconds()) / float64(n)
	bytesPerFrame = float64(outBytes) / float64(n)
	if tileSum > 0 {
		dirtyRatio = float64(dirtySum) / float64(tileSum)
	}
	return nsPerFrame, bytesPerFrame, dirtyRatio
}

// verifyByteIdentity encodes the frame sequence with a serial v2 encoder
// and with one per worker count, failing loudly if any bitstream differs.
func verifyByteIdentity(w, h int, frames [][]byte, pools map[int]*wpool.Pool) error {
	mk := func(workers int) *codec.Encoder {
		return codec.NewEncoder(w, h, codec.Options{
			QuantShift: 2, Workers: workers, Pool: pools[workers],
		})
	}
	serial := mk(1)
	encs := make(map[int]*codec.Encoder, len(codecWorkerCounts))
	for _, k := range codecWorkerCounts[1:] {
		encs[k] = mk(k)
	}
	for i, f := range frames {
		want, err := serial.Encode(f)
		if err != nil {
			return err
		}
		for _, k := range codecWorkerCounts[1:] {
			got, err := encs[k].Encode(f)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, want) {
				return fmt.Errorf("%dx%d frame %d: %d-worker bitstream differs from serial", w, h, i, k)
			}
		}
	}
	return nil
}

// codecSuite runs the full grid and returns the report.
func codecSuite(budget time.Duration) (*codecSuiteReport, error) {
	resolutions := []struct{ w, h int }{{1280, 720}, {1920, 1080}, {3840, 2160}}
	contents := []string{"static", "scrolling", "noise"}

	pools := make(map[int]*wpool.Pool, len(codecWorkerCounts))
	for _, k := range codecWorkerCounts {
		pools[k] = wpool.New(k)
		defer pools[k].Close()
	}

	rep := &codecSuiteReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		FrameBudget: budget.String(),
	}
	for _, res := range resolutions {
		for _, content := range contents {
			frames := contentFrames(content, res.w, res.h)
			if err := verifyByteIdentity(res.w, res.h, frames, pools); err != nil {
				return nil, err
			}
			frameMB := float64(res.w*res.h*4) / 1e6

			v1 := codec.NewEncoder(res.w, res.h, codec.Options{QuantShift: 2, Version: 1})
			ns, bpf, _ := timeEncode(v1, frames, budget)
			v1ns := ns
			rep.Cells = append(rep.Cells, codecCell{
				Content: content, Width: res.w, Height: res.h, Version: 1,
				NsPerFrame: ns, MBPerSec: frameMB / ns * 1e9,
				BytesPerFrame: bpf, SpeedupVsV1: 1,
			})
			for _, k := range codecWorkerCounts {
				enc := codec.NewEncoder(res.w, res.h, codec.Options{
					QuantShift: 2, Workers: k, Pool: pools[k],
				})
				ns, bpf, dirty := timeEncode(enc, frames, budget)
				rep.Cells = append(rep.Cells, codecCell{
					Content: content, Width: res.w, Height: res.h, Version: 2,
					Workers: k, NsPerFrame: ns, MBPerSec: frameMB / ns * 1e9,
					BytesPerFrame: bpf, DirtyRatio: dirty, SpeedupVsV1: v1ns / ns,
				})
			}
			fmt.Fprintf(os.Stderr, "odrbench: codec %dx%d %-9s v1 %7.2fms  v2/1w %.2fx  v2/%dw %.2fx\n",
				res.w, res.h, content, v1ns/1e6,
				rep.Cells[len(rep.Cells)-len(codecWorkerCounts)].SpeedupVsV1,
				codecWorkerCounts[len(codecWorkerCounts)-1],
				rep.Cells[len(rep.Cells)-1].SpeedupVsV1)
		}
	}
	return rep, nil
}

// writeCodecReport writes the suite report as indented JSON.
func writeCodecReport(rep *codecSuiteReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkCodecRegression re-runs the suite and compares its speedup ratios
// against the committed baseline: a v2 cell regresses when its speedup over
// the v1 serial coder drops below (1 - tolerance) of the baseline ratio.
// Ratios, unlike absolute ns, carry across machines.
func checkCodecRegression(baselinePath string, budget time.Duration, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline codecSuiteReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	rep, err := codecSuite(budget)
	if err != nil {
		return err
	}
	current := make(map[string]codecCell, len(rep.Cells))
	key := func(c codecCell) string {
		return fmt.Sprintf("%s/%dx%d/v%d/w%d", c.Content, c.Width, c.Height, c.Version, c.Workers)
	}
	for _, c := range rep.Cells {
		current[key(c)] = c
	}
	var failures int
	for _, b := range baseline.Cells {
		if b.Version != 2 {
			continue
		}
		c, ok := current[key(b)]
		if !ok {
			fmt.Fprintf(os.Stderr, "odrbench: baseline cell %s missing from current run\n", key(b))
			failures++
			continue
		}
		floor := b.SpeedupVsV1 * (1 - tolerance)
		if c.SpeedupVsV1 < floor {
			fmt.Fprintf(os.Stderr, "odrbench: REGRESSION %s: speedup %.2fx < %.2fx (baseline %.2fx - %.0f%%)\n",
				key(b), c.SpeedupVsV1, floor, b.SpeedupVsV1, tolerance*100)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d codec bench cell(s) regressed beyond %.0f%%", failures, tolerance*100)
	}
	fmt.Fprintf(os.Stderr, "odrbench: codec bench ratios within %.0f%% of %s (%d cells)\n",
		tolerance*100, baselinePath, len(baseline.Cells))
	return nil
}
