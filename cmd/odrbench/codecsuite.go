package main

// The tile-codec benchmark suite: encode throughput across content kinds
// (static / scrolling / mixed / noise), resolutions (720p / 1080p / 4K) and
// worker counts (the v1 serial coder as baseline, then the v2 tile coder at
// 1-16 workers on private pools, with keyframe striping and a shared
// encoded-tile cache — the hub's configuration). Each (content, resolution)
// group re-checks the determinism contract — every worker count must produce
// the serial bitstream byte-for-byte, with and without the cache+striping —
// before any timing runs.
//
// The emitted BENCH_codec.json reports absolute ns/frame for the machine it
// ran on plus speedup_vs_v1 ratios, cache hit ratios and p99/median spike
// ratios; CI regression checking (-codec-check) compares the ratios — which
// transfer across machines — and gates the static-mix cache hit ratio and
// keyframe-spike columns absolutely.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"odr/internal/codec"
	"odr/internal/wpool"
)

var codecWorkerCounts = []int{1, 2, 4, 8, 16}

// codecKeyInterval is the stripe cycle length used for every v2 bench row
// (the codec default; spelled out because warm-up spans depend on it).
const codecKeyInterval = 120

type codecCell struct {
	Content       string  `json:"content"`
	Width         int     `json:"width"`
	Height        int     `json:"height"`
	Version       int     `json:"version"`
	Workers       int     `json:"workers"` // 0 for the v1 baseline row
	NsPerFrame    float64 `json:"ns_per_frame"`
	MedianNs      float64 `json:"median_ns_per_frame"`
	P99Ns         float64 `json:"p99_ns_per_frame"`
	SpikeRatio    float64 `json:"p99_spike_ratio"` // p99 / median per-frame encode time
	KeySpikes     int     `json:"keyframe_spikes"` // frames >2x median that coded >= half their tiles
	MBPerSec      float64 `json:"mb_per_sec"`
	BytesPerFrame float64 `json:"bytes_per_frame"`
	DirtyRatio    float64 `json:"dirty_tile_ratio"`
	CacheHitRatio float64 `json:"cache_hit_ratio"` // over the measured window; 0 when no cache
	SpeedupVsV1   float64 `json:"speedup_vs_v1"`
}

type codecSuiteReport struct {
	GeneratedAt string      `json:"generated_at"`
	GoVersion   string      `json:"go_version"`
	NumCPU      int         `json:"num_cpu"`
	FrameBudget string      `json:"frame_budget_per_cell"`
	Cells       []codecCell `json:"cells"`
}

// contentFrames builds the frame sequence for one content kind. Frame
// count shrinks with resolution so a 4K noise set stays within a few
// hundred MB.
func contentFrames(kind string, w, h int) [][]byte {
	frameBytes := w * h * 4
	n := 8
	if frameBytes > 16<<20 {
		n = 3
	}
	st := uint64(0x9E3779B97F4A7C15) ^ uint64(frameBytes)
	next := func() byte { st ^= st << 13; st ^= st >> 7; st ^= st << 17; return byte(st) }
	base := make([]byte, frameBytes)
	for i := range base {
		base[i] = next()
	}
	scrolled := func(f int) []byte {
		fr := make([]byte, frameBytes)
		copy(fr, base)
		start := f * frameBytes / n
		end := min(start+frameBytes/10, frameBytes)
		for i := start; i < end; i++ {
			fr[i] = next()
		}
		return fr
	}
	frames := make([][]byte, n)
	switch kind {
	case "static":
		// Identical frames: the all-clean fast path. One backing array.
		for f := range frames {
			frames[f] = base
		}
	case "scrolling":
		// A moving ~10% dirty band over a static background: the paper's
		// mostly-static cloud-UI shape.
		for f := range frames {
			frames[f] = scrolled(f)
		}
	case "mixed":
		// Alternating hold/scroll: even frames repeat the background
		// verbatim, odd frames move the band — the scene-then-interact
		// rhythm of a real cloud 3D session, and the mix where prediction
		// (clean frames) and the cache (repeating band content) both matter.
		for f := range frames {
			if f%2 == 0 {
				frames[f] = base
			} else {
				frames[f] = scrolled(f / 2)
			}
		}
	case "noise":
		// Fully-dynamic content: every tile dirty, worst case for skipping.
		for f := range frames {
			fr := make([]byte, frameBytes)
			for i := range fr {
				fr[i] = next()
			}
			frames[f] = fr
		}
	default:
		panic("unknown content kind " + kind)
	}
	return frames
}

// contentWarmFrames returns how many warm-up encodes a cell needs before
// timings and cache ratios are steady-state. The doorkeeper admits a tile's
// content on its second sighting, and on static content a tile is only
// looked up when its stripe comes around — once per KeyInterval frames — so
// the static warm-up must span two full stripe cycles before the measured
// window can run at its true hit ratio.
func contentWarmFrames(kind string, cached bool, nFrames int) int {
	if !cached {
		return nFrames
	}
	switch kind {
	case "static":
		return 2*codecKeyInterval + nFrames
	default:
		// Content repeats with period nFrames: sighting, admission, hit.
		// Noise needs this too — otherwise the measured window straddles the
		// doorkeeper's admission transient and the hit ratio (and with it the
		// speedup) depends on where the time budget happens to cut off.
		return 3 * nFrames
	}
}

// contentMinFrames is the measured-window floor. Striped cells need at least
// a full stripe cycle so the median/p99 columns see every per-frame cost the
// stream has; noise stays small (frames are maximally expensive and have no
// periodic structure to cover).
func contentMinFrames(kind string, cached bool) int {
	if cached && kind != "noise" {
		return 150
	}
	return 3
}

// contentCycleFrames returns the alignment quantum for the measured window:
// striped cells measure a whole number of stripe cycles, so bytes/frame
// averages exactly one intra refresh per tile per cycle instead of over- or
// under-weighting stripe-heavy phases by where the budget happened to cut
// off. Noise is exempt (its per-frame cost has no phase structure, and its
// frames are expensive enough that rounding up to a cycle would dominate the
// budget).
func contentCycleFrames(kind string, cached bool) int {
	if cached && kind != "noise" {
		return codecKeyInterval
	}
	return 1
}

// encTiming is one cell's measured window.
type encTiming struct {
	nsPerFrame    float64
	medianNs      float64
	p99Ns         float64
	spikeRatio    float64
	keySpikes     int
	bytesPerFrame float64
	dirtyRatio    float64
	cacheHitRatio float64
}

// timeEncode drives enc over frames for roughly budget (and at least
// minFrames, rounded up to a multiple of cycle) after warm warm-up encodes,
// and reports per-frame statistics. When cache is non-nil the hit ratio is
// computed over the measured window only (warm-up lookups excluded).
func timeEncode(enc *codec.Encoder, frames [][]byte, budget time.Duration, warm, minFrames, cycle int, cache *codec.TileCache) encTiming {
	buf := make([]byte, 0, enc.FrameSize()/2)
	var err error
	for i := 0; i < warm; i++ { // warm the scratches, reference and cache
		if buf, err = enc.EncodeAppend(buf[:0], frames[i%len(frames)]); err != nil {
			panic(err)
		}
	}
	h0, m0 := int64(0), int64(0)
	if cache != nil {
		h0, m0, _ = cache.Stats()
	}
	var n, tileSum, dirtySum int
	var outBytes int64
	samples := make([]float64, 0, 512)
	var frameNs []float64
	var frameFull []bool // frame coded >= half its tiles (keyframe-shaped)
	start := time.Now()
	for n < minFrames || time.Since(start) < budget || (cycle > 1 && n%cycle != 0) {
		f0 := time.Now()
		if buf, err = enc.EncodeAppend(buf[:0], frames[n%len(frames)]); err != nil {
			panic(err)
		}
		ns := float64(time.Since(f0).Nanoseconds())
		samples = append(samples, ns)
		outBytes += int64(len(buf))
		tiles, dirty := enc.TileStats()
		tileSum += tiles
		dirtySum += dirty
		frameNs = append(frameNs, ns)
		frameFull = append(frameFull, tiles > 0 && dirty*2 >= tiles)
		n++
	}
	elapsed := time.Since(start)
	t := encTiming{
		nsPerFrame:    float64(elapsed.Nanoseconds()) / float64(n),
		bytesPerFrame: float64(outBytes) / float64(n),
	}
	if tileSum > 0 {
		t.dirtyRatio = float64(dirtySum) / float64(tileSum)
	}
	sort.Float64s(samples)
	t.medianNs = samples[len(samples)/2]
	p99i := len(samples) * 99 / 100
	if p99i >= len(samples) {
		p99i = len(samples) - 1
	}
	t.p99Ns = samples[p99i]
	if t.medianNs > 0 {
		t.spikeRatio = t.p99Ns / t.medianNs
	}
	// A keyframe spike is structural: a frame that coded at least half its
	// tiles (keys code all of them; striped steady state codes a handful)
	// AND blew past 2x the median. Wall-clock outliers alone are scheduler
	// or GC noise at sub-millisecond medians, so neither signal is gated on
	// by itself.
	for i, ns := range frameNs {
		if frameFull[i] && ns > 2*t.medianNs {
			t.keySpikes++
		}
	}
	if cache != nil {
		h1, m1, _ := cache.Stats()
		if dl := (h1 - h0) + (m1 - m0); dl > 0 {
			t.cacheHitRatio = float64(h1-h0) / float64(dl)
		}
	}
	return t
}

// verifyByteIdentity encodes the frame sequence with a serial v2 encoder and
// with one per worker count, failing loudly if any bitstream differs. Both
// hub-relevant configurations are pinned: the plain keyframed coder, and
// keyframe striping with one cache shared across every worker count (the
// cache must be a pure payload memo — sharing it can never steer bytes).
func verifyByteIdentity(w, h int, frames [][]byte, pools map[int]*wpool.Pool) error {
	configs := []struct {
		name   string
		stripe bool
		cache  *codec.TileCache
	}{
		{name: "plain"},
		{name: "striped+cached", stripe: true, cache: codec.NewTileCache(0)},
	}
	for _, cfg := range configs {
		mk := func(workers int) *codec.Encoder {
			return codec.NewEncoder(w, h, codec.Options{
				QuantShift: 2, Workers: workers, Pool: pools[workers],
				StripeKeyframes: cfg.stripe, Cache: cfg.cache,
			})
		}
		serial := mk(1)
		encs := make(map[int]*codec.Encoder, len(codecWorkerCounts))
		for _, k := range codecWorkerCounts[1:] {
			encs[k] = mk(k)
		}
		for i, f := range frames {
			want, err := serial.Encode(f)
			if err != nil {
				return err
			}
			for _, k := range codecWorkerCounts[1:] {
				got, err := encs[k].Encode(f)
				if err != nil {
					return err
				}
				if !bytes.Equal(got, want) {
					return fmt.Errorf("%dx%d frame %d (%s): %d-worker bitstream differs from serial", w, h, i, cfg.name, k)
				}
			}
		}
	}
	return nil
}

// codecSuite runs the full grid and returns the report.
func codecSuite(budget time.Duration) (*codecSuiteReport, error) {
	resolutions := []struct{ w, h int }{{1280, 720}, {1920, 1080}, {3840, 2160}}
	contents := []string{"static", "scrolling", "mixed", "noise"}

	pools := make(map[int]*wpool.Pool, len(codecWorkerCounts))
	for _, k := range codecWorkerCounts {
		pools[k] = wpool.New(k)
		defer pools[k].Close()
	}

	rep := &codecSuiteReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		FrameBudget: budget.String(),
	}
	for _, res := range resolutions {
		for _, content := range contents {
			frames := contentFrames(content, res.w, res.h)
			if err := verifyByteIdentity(res.w, res.h, frames, pools); err != nil {
				return nil, err
			}
			frameMB := float64(res.w*res.h*4) / 1e6

			v1 := codec.NewEncoder(res.w, res.h, codec.Options{QuantShift: 2, Version: 1})
			t := timeEncode(v1, frames, budget,
				contentWarmFrames(content, false, len(frames)), contentMinFrames(content, false), 1, nil)
			v1ns := t.nsPerFrame
			rep.Cells = append(rep.Cells, codecCell{
				Content: content, Width: res.w, Height: res.h, Version: 1,
				NsPerFrame: t.nsPerFrame, MedianNs: t.medianNs, P99Ns: t.p99Ns,
				SpikeRatio: t.spikeRatio, MBPerSec: frameMB / t.nsPerFrame * 1e9,
				BytesPerFrame: t.bytesPerFrame, SpeedupVsV1: 1,
			})
			for _, k := range codecWorkerCounts {
				// Each row runs the hub's configuration: keyframe striping
				// plus a fresh content-addressed cache (fresh per row so a
				// row measures its own steady state, not a sibling's).
				cache := codec.NewTileCache(0)
				enc := codec.NewEncoder(res.w, res.h, codec.Options{
					QuantShift: 2, Workers: k, Pool: pools[k],
					KeyInterval: codecKeyInterval, StripeKeyframes: true, Cache: cache,
				})
				t := timeEncode(enc, frames, budget,
					contentWarmFrames(content, true, len(frames)), contentMinFrames(content, true),
					contentCycleFrames(content, true), cache)
				rep.Cells = append(rep.Cells, codecCell{
					Content: content, Width: res.w, Height: res.h, Version: 2,
					Workers: k, NsPerFrame: t.nsPerFrame, MedianNs: t.medianNs,
					P99Ns: t.p99Ns, SpikeRatio: t.spikeRatio, KeySpikes: t.keySpikes,
					MBPerSec: frameMB / t.nsPerFrame * 1e9, BytesPerFrame: t.bytesPerFrame,
					DirtyRatio: t.dirtyRatio, CacheHitRatio: t.cacheHitRatio,
					SpeedupVsV1: v1ns / t.nsPerFrame,
				})
			}
			last := rep.Cells[len(rep.Cells)-1]
			fmt.Fprintf(os.Stderr, "odrbench: codec %dx%d %-9s v1 %7.2fms  v2/1w %.2fx  v2/%dw %.2fx  hit %.2f  spike %.2f  keyspikes %d\n",
				res.w, res.h, content, v1ns/1e6,
				rep.Cells[len(rep.Cells)-len(codecWorkerCounts)].SpeedupVsV1,
				codecWorkerCounts[len(codecWorkerCounts)-1],
				last.SpeedupVsV1, last.CacheHitRatio, last.SpikeRatio, last.KeySpikes)
		}
	}
	return rep, nil
}

// writeCodecReport writes the suite report as indented JSON.
func writeCodecReport(rep *codecSuiteReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Absolute gates -codec-check holds every current static-mix v2 cell to,
// independent of the baseline: the cache must essentially always hit on
// static content, striping must have flattened keyframe cost into the frame
// cadence (zero keyframe-shaped frames over 2x the median — the structural
// spike detector in timeEncode, robust to scheduler noise that a raw
// p99/median ratio gate would flake on), and the bitstream must not have
// grown.
const (
	codecMinStaticHitRatio  = 0.9
	codecBytesGrowthAllowed = 1.10
)

// checkCodecRegression re-runs the suite and compares it against the
// committed baseline. The speedup gate works on the *median* speedup-vs-v1
// across the worker counts of each (content, resolution) group: ratios,
// unlike absolute ns, carry across machines, and a real codec regression
// shifts a whole group while single cells on a loaded 1-CPU container swing
// ±25% run to run (the v1 denominator alone varies that much on sub-ms
// cells). A group regresses when its median drops below (1 - tolerance) of
// the baseline median. Bytes/frame — deterministic given the cycle-aligned
// window — stays gated per cell, and static-mix v2 cells additionally face
// the absolute cache-hit-ratio and keyframe-spike gates.
func checkCodecRegression(baselinePath string, budget time.Duration, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var baseline codecSuiteReport
	if err := json.Unmarshal(raw, &baseline); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	rep, err := codecSuite(budget)
	if err != nil {
		return err
	}
	current := make(map[string]codecCell, len(rep.Cells))
	key := func(c codecCell) string {
		return fmt.Sprintf("%s/%dx%d/v%d/w%d", c.Content, c.Width, c.Height, c.Version, c.Workers)
	}
	group := func(c codecCell) string {
		return fmt.Sprintf("%s/%dx%d", c.Content, c.Width, c.Height)
	}
	medianSpeedup := func(cells []codecCell) map[string]float64 {
		byGroup := make(map[string][]float64)
		for _, c := range cells {
			if c.Version == 2 {
				byGroup[group(c)] = append(byGroup[group(c)], c.SpeedupVsV1)
			}
		}
		med := make(map[string]float64, len(byGroup))
		for g, v := range byGroup {
			sort.Float64s(v)
			med[g] = v[len(v)/2]
		}
		return med
	}
	for _, c := range rep.Cells {
		current[key(c)] = c
	}
	var failures int
	baseMed, curMed := medianSpeedup(baseline.Cells), medianSpeedup(rep.Cells)
	baseGroups := make([]string, 0, len(baseMed))
	for g := range baseMed {
		baseGroups = append(baseGroups, g)
	}
	sort.Strings(baseGroups)
	for _, g := range baseGroups {
		cur, ok := curMed[g]
		if !ok {
			fmt.Fprintf(os.Stderr, "odrbench: baseline group %s missing from current run\n", g)
			failures++
			continue
		}
		floor := baseMed[g] * (1 - tolerance)
		if cur < floor {
			fmt.Fprintf(os.Stderr, "odrbench: REGRESSION %s: median speedup %.2fx < %.2fx (baseline %.2fx - %.0f%%)\n",
				g, cur, floor, baseMed[g], tolerance*100)
			failures++
		}
	}
	for _, b := range baseline.Cells {
		if b.Version != 2 {
			continue
		}
		c, ok := current[key(b)]
		if !ok {
			fmt.Fprintf(os.Stderr, "odrbench: baseline cell %s missing from current run\n", key(b))
			failures++
			continue
		}
		if b.BytesPerFrame > 0 && c.BytesPerFrame > b.BytesPerFrame*codecBytesGrowthAllowed {
			fmt.Fprintf(os.Stderr, "odrbench: REGRESSION %s: bytes/frame %.0f > baseline %.0f (+%.0f%% allowed)\n",
				key(b), c.BytesPerFrame, b.BytesPerFrame, (codecBytesGrowthAllowed-1)*100)
			failures++
		}
	}
	for _, c := range rep.Cells {
		if c.Version != 2 || c.Content != "static" {
			continue
		}
		if c.CacheHitRatio < codecMinStaticHitRatio {
			fmt.Fprintf(os.Stderr, "odrbench: GATE %s: static cache hit ratio %.3f < %.2f\n",
				key(c), c.CacheHitRatio, codecMinStaticHitRatio)
			failures++
		}
		if c.KeySpikes > 0 {
			fmt.Fprintf(os.Stderr, "odrbench: GATE %s: %d keyframe spike(s) >2x median (striping not flattening the cadence)\n",
				key(c), c.KeySpikes)
			failures++
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d codec bench cell(s) regressed or failed a gate", failures)
	}
	fmt.Fprintf(os.Stderr, "odrbench: codec bench ratios within %.0f%% of %s and gates clean (%d cells)\n",
		tolerance*100, baselinePath, len(baseline.Cells))
	return nil
}
