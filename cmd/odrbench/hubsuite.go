package main

// The hub fan-out benchmark suite: one hub rendering at an uncapped target
// rate serves 1 through 4096 discard-reader viewers, all at full resolution
// so they share a single lane encoder. Each cell reports the encode rate,
// the delivery rate and their quotient sends_per_encode — the fan-out
// amplification the encode-once architecture buys — plus the event-driven
// engine's shape columns: goroutines and heap bytes per session (both must
// stay flat-to-vanishing as viewers grow) and the coalescing ratio (frames
// flushed per sender-worker wakeup).
//
// The emitted BENCH_hub.json reports absolute rates for the machine it ran
// on plus the sends_per_encode ratios; CI regression checking (-hub-check)
// compares only the ratios, which transfer across machines. A regression
// here means the hub fell back toward per-viewer encoding (ratio collapses
// to ~1) or the shared encoder stalled as viewers were added.

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"runtime"
	"time"

	"odr"
)

var hubViewerCounts = []int{1, 4, 16, 64, 256, 1024, 4096}

// hubBenchRes is the shared stream resolution: small enough that 64 pipes
// on a CI box don't bottleneck on memcpy, big enough to make encoding real
// work.
const hubBenchW, hubBenchH = 128, 72

type hubCell struct {
	Viewers        int     `json:"viewers"`
	Seconds        float64 `json:"seconds"`
	Rendered       int64   `json:"frames_rendered"`
	Encoded        int64   `json:"frames_encoded"`
	Sent           int64   `json:"frames_sent"`
	EncodesPerSec  float64 `json:"encodes_per_sec"`
	SendsPerSec    float64 `json:"frames_sent_per_sec"`
	SendsPerEncode float64 `json:"sends_per_encode"`
	// Event-driven engine columns. GoroutinesPerSession is hub goroutines
	// (total minus the harness's one discard reader per viewer, minus the
	// pre-attach baseline) over viewers: ~3.0 for a goroutine-per-session
	// hub, ~pool/viewers for the engine. HeapBytesPerSession is the steady-
	// state heap growth per attached viewer. CoalescingRatio is frames
	// flushed per sender-worker wakeup (Hub.SenderBatchStats): >1 means
	// cross-session batching is amortizing wakeups.
	GoroutinesPerSession float64 `json:"goroutines_per_session"`
	HeapBytesPerSession  float64 `json:"heap_bytes_per_session"`
	CoalescingRatio      float64 `json:"coalescing_ratio"`
}

type hubSuiteReport struct {
	GeneratedAt string    `json:"generated_at"`
	GoVersion   string    `json:"go_version"`
	NumCPU      int       `json:"num_cpu"`
	Width       int       `json:"width"`
	Height      int       `json:"height"`
	CellSeconds string    `json:"measure_per_cell"`
	Cells       []hubCell `json:"cells"`
}

// discardFrames drains a viewer's end of the pipe without decoding: the
// suite measures hub-side encode and fan-out cost, not client decode.
func discardFrames(conn net.Conn, stop <-chan struct{}) {
	buf := make([]byte, 32<<10)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
		select {
		case <-stop:
			return
		default:
		}
	}
}

// heapInUse forces a GC and returns live heap bytes; the delta across an
// attach storm, divided by viewers, is the per-session footprint.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// hubCellRun measures one viewer count for roughly measure wall time.
func hubCellRun(viewers int, measure time.Duration) (hubCell, error) {
	metrics := odr.NewMetricsRegistry()
	hub := odr.NewHub(odr.HubConfig{
		Width: hubBenchW, Height: hubBenchH,
		TargetFPS: 100000, // uncapped in practice: encode is the limiter
		Codec:     odr.CodecOptions{QuantShift: 2},
		Metrics:   metrics,
	})
	go hub.Run()

	goroutines0 := runtime.NumGoroutine()
	heap0 := heapInUse()
	stop := make(chan struct{})
	conns := make([]net.Conn, viewers)
	for i := 0; i < viewers; i++ {
		hubEnd, clientEnd := net.Pipe()
		conns[i] = clientEnd
		hub.Attach(hubEnd, 0, nil)
		go discardFrames(clientEnd, stop)
	}

	counters := func() (rendered, encoded, sent int64) {
		snap := metrics.Snapshot()
		rendered, _ = snap["frames_rendered"].(int64)
		encoded, _ = snap["frames_encoded"].(int64)
		sent, _ = snap["frames_displayed"].(int64)
		return
	}

	time.Sleep(measure / 4) // warm-up: free lists filled, all viewers streaming
	r0, e0, s0 := counters()
	p0, f0 := hub.SenderBatchStats()
	t0 := time.Now()
	time.Sleep(measure)
	r1, e1, s1 := counters()
	p1, f1 := hub.SenderBatchStats()
	elapsed := time.Since(t0).Seconds()

	// Steady-state footprint, read while all viewers are still attached.
	// The harness owns exactly one discard goroutine per viewer; everything
	// else beyond the pre-attach baseline is hub cost.
	hubGoroutines := runtime.NumGoroutine() - goroutines0 - viewers
	heap1 := heapInUse()

	hub.Stop()
	close(stop)
	for _, c := range conns {
		c.Close()
	}

	cell := hubCell{
		Viewers:  viewers,
		Seconds:  elapsed,
		Rendered: r1 - r0,
		Encoded:  e1 - e0,
		Sent:     s1 - s0,
	}
	if cell.Encoded <= 0 || cell.Sent <= 0 {
		return cell, fmt.Errorf("hub cell %d viewers: no progress (encoded %d, sent %d)", viewers, cell.Encoded, cell.Sent)
	}
	cell.EncodesPerSec = float64(cell.Encoded) / elapsed
	cell.SendsPerSec = float64(cell.Sent) / elapsed
	cell.SendsPerEncode = float64(cell.Sent) / float64(cell.Encoded)
	cell.GoroutinesPerSession = float64(hubGoroutines) / float64(viewers)
	if heap1 > heap0 {
		cell.HeapBytesPerSession = float64(heap1-heap0) / float64(viewers)
	}
	if passes := p1 - p0; passes > 0 {
		cell.CoalescingRatio = float64(f1-f0) / float64(passes)
	}
	return cell, nil
}

func hubSuite(measure time.Duration) (*hubSuiteReport, error) {
	rep := &hubSuiteReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Width:       hubBenchW,
		Height:      hubBenchH,
		CellSeconds: measure.String(),
	}
	for _, v := range hubViewerCounts {
		cell, err := hubCellRun(v, measure)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "odrbench: hub %4d viewers: %.0f encodes/s, %.0f sends/s, %.1f sends/encode, %.3f goroutines/sess, %.0f heapB/sess, %.1f frames/flush\n",
			cell.Viewers, cell.EncodesPerSec, cell.SendsPerSec, cell.SendsPerEncode,
			cell.GoroutinesPerSession, cell.HeapBytesPerSession, cell.CoalescingRatio)
		rep.Cells = append(rep.Cells, cell)
	}
	return rep, nil
}

func writeHubReport(rep *hubSuiteReport, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// checkHubRegression re-runs the hub suite and compares each cell's
// sends_per_encode against the committed baseline. The ratio is machine-
// independent: it collapses toward 1 only if the architecture regresses to
// per-viewer encoding or the shared encoder stalls under fan-out.
func checkHubRegression(baselinePath string, measure time.Duration, tolerance float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base hubSuiteReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	baseByViewers := make(map[int]hubCell, len(base.Cells))
	for _, c := range base.Cells {
		baseByViewers[c.Viewers] = c
	}
	cur, err := hubSuite(measure)
	if err != nil {
		return err
	}
	var regressions int
	for _, c := range cur.Cells {
		b, ok := baseByViewers[c.Viewers]
		if !ok || b.SendsPerEncode <= 0 {
			continue
		}
		floor := b.SendsPerEncode * (1 - tolerance)
		verdict := "ok"
		if c.SendsPerEncode < floor {
			verdict = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "odrbench: hub %4d viewers: sends/encode %.1f vs baseline %.1f (floor %.1f) %s\n",
			c.Viewers, c.SendsPerEncode, b.SendsPerEncode, floor, verdict)

		// Engine-shape gates, machine-independent by construction.
		// Goroutines per session: the event-driven engine spends O(pool)
		// goroutines total, so per-session cost must vanish at scale; 0.25
		// sits far above any pool/viewers quotient and far below the old
		// shape's 3.0.
		if c.Viewers >= 256 && c.GoroutinesPerSession > 0.25 {
			fmt.Fprintf(os.Stderr, "odrbench: hub %4d viewers: %.3f goroutines/session, want <= 0.25 REGRESSION\n",
				c.Viewers, c.GoroutinesPerSession)
			regressions++
		}
		// Heap per session tracks struct layout, not CPU speed: gate against
		// the committed baseline with the same fractional tolerance.
		if c.Viewers >= 256 && b.HeapBytesPerSession > 0 &&
			c.HeapBytesPerSession > b.HeapBytesPerSession*(1+tolerance) {
			fmt.Fprintf(os.Stderr, "odrbench: hub %4d viewers: %.0f heap bytes/session vs baseline %.0f REGRESSION\n",
				c.Viewers, c.HeapBytesPerSession, b.HeapBytesPerSession)
			regressions++
		}
		// A coalescing ratio below 1 means the flush accounting broke (every
		// counted pass flushes at least one frame).
		if c.CoalescingRatio != 0 && c.CoalescingRatio < 1 {
			fmt.Fprintf(os.Stderr, "odrbench: hub %4d viewers: coalescing ratio %.2f < 1 REGRESSION\n",
				c.Viewers, c.CoalescingRatio)
			regressions++
		}
	}
	if regressions > 0 {
		return fmt.Errorf("hub fan-out regressed in %d cell(s) vs %s", regressions, baselinePath)
	}
	return nil
}
