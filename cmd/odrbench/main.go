// Command odrbench measures the performance-critical paths added for the
// parallel experiment scheduler and the zero-alloc frame hot path, and
// writes the evidence to a JSON file (BENCH_sched.json in CI / make bench):
//
//   - codec: ns/op, MB/s and allocs/op for Encode (allocating) vs
//     EncodeAppend (recycled buffer), and for Decode;
//   - pipeline: the cost of one simulation cell (the scheduler's work unit);
//   - scheduler: cells/sec for a fixed batch at 1 worker vs all CPUs, and
//     the resulting speedup;
//   - cache: cold vs warm wall time for the same batch through the
//     content-addressed result cache, and the warm-over-cold speedup.
//
// The tile-codec suite (codecsuite.go) runs separately:
//
//   - `odrbench -codec` sweeps static/scrolling/mixed/noise content at
//     720p/1080p/4K through the v1 serial coder and the v2 tile coder
//     (keyframe striping + shared tile cache, the hub configuration) at
//     1-16 workers, verifies parallel/serial byte identity, and writes
//     BENCH_codec.json;
//   - `odrbench -codec-check BENCH_codec.json` re-runs the sweep and exits
//     nonzero when any group's median speedup-vs-v1 regresses more than
//     -codec-tol below the committed baseline, any cell's bytes/frame grow
//     >10%, a static cell's cache hit ratio falls below 0.9, or a static
//     cell shows a keyframe-shaped latency spike.
//
// The hub fan-out suite (hubsuite.go) measures the encode-once hub:
//
//   - `odrbench -hub` streams to 1/4/16/64/256/1024/4096 same-resolution
//     viewers sharing one lane encoder and writes encode and delivery rates,
//     the sends_per_encode amplification, and the event-driven engine shape
//     (goroutines/session, heap bytes/session, coalescing ratio) to
//     BENCH_hub.json;
//   - `odrbench -hub-check BENCH_hub.json` re-runs the suite and exits
//     nonzero when any cell's sends_per_encode ratio falls more than
//     -hub-tol below the committed baseline (the ratio is machine-portable;
//     it collapses only if the hub regresses toward per-viewer encoding),
//     when a >=256-viewer cell spends more than 0.25 goroutines or grows
//     heap per session beyond the baseline by -hub-tol, or when the
//     coalescing accounting reports a ratio below 1.
//
// Usage:
//
//	odrbench [-o BENCH_sched.json] [-duration 10s] [-cells 24]
//	odrbench -codec [-codec-out BENCH_codec.json] [-codec-budget 250ms]
//	odrbench -codec-check BENCH_codec.json [-codec-tol 0.25]
//	odrbench -hub [-hub-out BENCH_hub.json] [-hub-measure 2s]
//	odrbench -hub-check BENCH_hub.json [-hub-tol 0.35]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"odr/internal/codec"
	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
	"odr/internal/sched"
)

type codecResult struct {
	Name      string  `json:"name"`
	NsPerOp   float64 `json:"ns_per_op"`
	MBPerSec  float64 `json:"mb_per_sec"`
	AllocsOp  int64   `json:"allocs_per_op"`
	BytesOp   int64   `json:"bytes_per_op"`
	Reduction string  `json:"allocs_reduction_vs_encode,omitempty"`
}

type schedResult struct {
	Cells          int     `json:"cells"`
	Workers        int     `json:"workers"`
	SeqSeconds     float64 `json:"sequential_seconds"`
	ParSeconds     float64 `json:"parallel_seconds"`
	SeqCellsPerSec float64 `json:"sequential_cells_per_sec"`
	ParCellsPerSec float64 `json:"parallel_cells_per_sec"`
	Speedup        float64 `json:"speedup"`
}

type cacheResult struct {
	Cells       int     `json:"cells"`
	ColdSeconds float64 `json:"cold_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	Speedup     float64 `json:"speedup"`
	WarmHits    int64   `json:"warm_hits"`
}

type report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	NumCPU      int           `json:"num_cpu"`
	Codec       []codecResult `json:"codec"`
	PipelineUs  float64       `json:"pipeline_cell_us_per_sim_s"`
	Sched       schedResult   `json:"sched"`
	Cache       cacheResult   `json:"cache"`
}

// animatedFrames mirrors the codec benchmark workload: a static background
// with a moving dirty band, approximating game content.
func animatedFrames(w, h, n int) [][]byte {
	base := make([]byte, w*h*4)
	st := uint64(0x9E3779B97F4A7C15)
	next := func() byte { st ^= st << 13; st ^= st >> 7; st ^= st << 17; return byte(st) }
	for i := range base {
		base[i] = next()
	}
	frames := make([][]byte, n)
	for f := 0; f < n; f++ {
		fr := make([]byte, len(base))
		copy(fr, base)
		start := (f * len(fr) / n) % len(fr)
		end := start + len(fr)/10
		if end > len(fr) {
			end = len(fr)
		}
		for i := start; i < end; i++ {
			fr[i] = next()
		}
		frames[f] = fr
	}
	return frames
}

func codecBench() []codecResult {
	const w, h = 1280, 720
	frames := animatedFrames(w, h, 16)
	frameBytes := float64(w * h * 4)

	row := func(name string, r testing.BenchmarkResult) codecResult {
		ns := float64(r.NsPerOp())
		return codecResult{
			Name:     name,
			NsPerOp:  ns,
			MBPerSec: frameBytes / ns * 1e9 / 1e6,
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		}
	}

	enc := codec.NewEncoder(w, h, codec.Options{QuantShift: 2})
	encRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := enc.Encode(frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	encA := codec.NewEncoder(w, h, codec.Options{QuantShift: 2})
	buf := make([]byte, 0, 2*w*h*4)
	appendRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var err error
		for i := 0; i < b.N; i++ {
			if buf, err = encA.EncodeAppend(buf[:0], frames[i%len(frames)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	encD := codec.NewEncoder(w, h, codec.Options{QuantShift: 2})
	var streams [][]byte
	for _, f := range frames {
		bs, err := encD.Encode(f)
		if err != nil {
			panic(err)
		}
		streams = append(streams, bs)
	}
	dec := codec.NewDecoder()
	decRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dec.Decode(streams[i%len(streams)]); err != nil {
				b.Fatal(err)
			}
		}
	})

	out := []codecResult{
		row("Encode720p", encRes),
		row("EncodeAppend720p", appendRes),
		row("Decode720p", decRes),
	}
	if e, a := out[0].AllocsOp, out[1].AllocsOp; e > 0 {
		out[1].Reduction = fmt.Sprintf("%.0f%%", 100*(1-float64(a)/float64(e)))
	}
	return out
}

// benchCells builds a batch of distinct cacheable cells.
func benchCells(n int, dur time.Duration) []sched.Cell {
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	cells := make([]sched.Cell, n)
	for i := range cells {
		cells[i] = sched.Cell{
			PolicyKey: "NoReg",
			Config: pipeline.Config{
				Label:    "NoReg",
				Workload: pictor.IM.Params(),
				Scale:    pictor.Scale(g.Platform, g.Resolution),
				Net:      pictor.Network(g.Platform),
				Policy:   func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewNoReg(ctx) },
				Duration: dur,
				Seed:     int64(i + 1),
			},
		}
	}
	return cells
}

func main() {
	out := flag.String("o", "BENCH_sched.json", "output JSON file")
	dur := flag.Duration("duration", 60*time.Second, "simulated duration per scheduler cell (60s = the experiments' default cell size)")
	nCells := flag.Int("cells", 24, "cells in the scheduler batch")
	codecRun := flag.Bool("codec", false, "run only the tile-codec suite and write -codec-out")
	codecOut := flag.String("codec-out", "BENCH_codec.json", "output file for the tile-codec suite")
	codecCheck := flag.String("codec-check", "", "baseline BENCH_codec.json: re-run the codec suite and fail on ratio regression")
	codecBudget := flag.Duration("codec-budget", 250*time.Millisecond, "minimum measurement time per codec suite cell")
	codecTol := flag.Float64("codec-tol", 0.25, "allowed fractional drop in per-group median speedup_vs_v1 before -codec-check fails")
	hubRun := flag.Bool("hub", false, "run only the hub fan-out suite and write -hub-out")
	hubOut := flag.String("hub-out", "BENCH_hub.json", "output file for the hub fan-out suite")
	hubCheck := flag.String("hub-check", "", "baseline BENCH_hub.json: re-run the hub suite and fail on sends/encode regression")
	hubMeasure := flag.Duration("hub-measure", 2*time.Second, "measurement window per hub suite cell")
	hubTol := flag.Float64("hub-tol", 0.35, "allowed fractional drop in sends_per_encode before -hub-check fails")
	flag.Parse()

	if *hubCheck != "" {
		if err := checkHubRegression(*hubCheck, *hubMeasure, *hubTol); err != nil {
			fmt.Fprintln(os.Stderr, "odrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *hubRun {
		rep, err := hubSuite(*hubMeasure)
		if err == nil {
			err = writeHubReport(rep, *hubOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "odrbench: %d hub cells -> %s\n", len(rep.Cells), *hubOut)
		return
	}
	if *codecCheck != "" {
		if err := checkCodecRegression(*codecCheck, *codecBudget, *codecTol); err != nil {
			fmt.Fprintln(os.Stderr, "odrbench:", err)
			os.Exit(1)
		}
		return
	}
	if *codecRun {
		rep, err := codecSuite(*codecBudget)
		if err == nil {
			err = writeCodecReport(rep, *codecOut)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "odrbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "odrbench: %d codec cells -> %s\n", len(rep.Cells), *codecOut)
		return
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
	}

	fmt.Fprintln(os.Stderr, "odrbench: codec benchmarks...")
	rep.Codec = codecBench()

	fmt.Fprintln(os.Stderr, "odrbench: pipeline cell cost...")
	cell := benchCells(1, *dur)[0]
	cellRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pipeline.Run(cell.Config)
		}
	})
	rep.PipelineUs = float64(cellRes.NsPerOp()) / 1e3 / dur.Seconds()

	fmt.Fprintln(os.Stderr, "odrbench: scheduler scaling...")
	cells := benchCells(*nCells, *dur)
	seqStart := time.Now()
	seqRes := sched.New(sched.Options{Workers: 1}).Run(cells)
	seqSec := time.Since(seqStart).Seconds()
	parStart := time.Now()
	parRes := sched.New(sched.Options{}).Run(cells)
	parSec := time.Since(parStart).Seconds()
	for i := range seqRes {
		if seqRes[i].ClientFPS != parRes[i].ClientFPS {
			fmt.Fprintf(os.Stderr, "odrbench: cell %d differs between sequential and parallel runs\n", i)
			os.Exit(1)
		}
	}
	rep.Sched = schedResult{
		Cells:          *nCells,
		Workers:        runtime.GOMAXPROCS(0),
		SeqSeconds:     seqSec,
		ParSeconds:     parSec,
		SeqCellsPerSec: float64(*nCells) / seqSec,
		ParCellsPerSec: float64(*nCells) / parSec,
		Speedup:        seqSec / parSec,
	}

	fmt.Fprintln(os.Stderr, "odrbench: cache cold vs warm...")
	dir, err := os.MkdirTemp("", "odrbench-cache-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrbench:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	cache, err := sched.OpenCache(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrbench:", err)
		os.Exit(1)
	}
	coldStart := time.Now()
	sched.New(sched.Options{Cache: cache}).Run(cells)
	coldSec := time.Since(coldStart).Seconds()
	warmRunner := sched.New(sched.Options{Cache: cache})
	warmStart := time.Now()
	warmRunner.Run(cells)
	warmSec := time.Since(warmStart).Seconds()
	_, warmHits, _ := warmRunner.Stats()
	rep.Cache = cacheResult{
		Cells:       *nCells,
		ColdSeconds: coldSec,
		WarmSeconds: warmSec,
		Speedup:     coldSec / warmSec,
		WarmHits:    warmHits,
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "odrbench:", err)
		os.Exit(1)
	}
	encJSON := json.NewEncoder(f)
	encJSON.SetIndent("", "  ")
	if err := encJSON.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "odrbench:", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Fprintf(os.Stderr, "odrbench: codec allocs/op %d -> %d, sched speedup %.2fx, cache speedup %.1fx -> %s\n",
		rep.Codec[0].AllocsOp, rep.Codec[1].AllocsOp, rep.Sched.Speedup, rep.Cache.Speedup, *out)
}
