# Common workflows for the ODR reproduction.

GO ?= go

.PHONY: all build test race bench bench-codec bench-codec-check bench-hub bench-hub-check bench-go report artifacts fidelity examples trace soak soak-hub soak-cluster fuzz metrics-check clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos soak: churning reconnecting clients against a hub under the flaky
# fault schedule, with the race detector and a pass/fail invariant report.
soak:
	$(GO) run -race ./cmd/odrsoak -clients 16 -schedule flaky -seed 1 -duration 20s

# Encode-once fan-out soak: 2000 same-resolution viewers share one lane
# encoder, one in 16 churning through chaos reconnects, one in 8 paced at
# half rate through the timer wheel; invariants assert O(frames) encoding,
# spliced catch-up keyframes, byte-identical pixels, flat per-viewer memory
# and an O(pool) goroutine budget. Runs under the race detector; a failure
# leaves a full goroutine dump in soak-hub-goroutines.txt.
soak-hub:
	$(GO) run -race ./cmd/odrsoak -fanout 2000 -width 48 -height 27 -fps 10 -schedule flaky -seed 1 -duration 15s -faildump soak-hub-goroutines.txt

# Cluster failover soak: a master places chaos-churned clients across three
# in-process workers, one worker is killed and another drained mid-run;
# invariants assert zero sessions lost, bounded resync gaps, byte-identical
# pixels across migration, clean odr_cluster_* accounting and no goroutine
# leaks. Runs under the race detector.
soak-cluster:
	$(GO) run -race ./cmd/odrsoak -cluster -workers 3 -clients 8 -schedule flaky -seed 1 -duration 15s

# Fuzz smoke over the wire framing, the chaos schedule parser, the codec
# bitstream decoders (v1 + v2 tile), the content-addressed tile cache, and
# the metrics scrape parser.
fuzz:
	$(GO) test -fuzz=FuzzReadMsg -fuzztime=10s -run '^$$' ./internal/stream
	$(GO) test -fuzz=FuzzFrameRoundTrip -fuzztime=10s -run '^$$' ./internal/stream
	$(GO) test -fuzz=FuzzParseSchedule -fuzztime=10s -run '^$$' ./internal/chaos
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s -run '^$$' ./internal/codec
	$(GO) test -fuzz=FuzzV2RoundTrip -fuzztime=10s -run '^$$' ./internal/codec
	$(GO) test -fuzz=FuzzTileCache -fuzztime=10s -run '^$$' ./internal/codec
	$(GO) test -fuzz=FuzzParse -fuzztime=10s -run '^$$' ./internal/obs/scrape

# Metrics-surface lint: pre-register every family the server and the cluster
# master can export and hold the registries to the
# odr_<subsystem>_<noun>_<unit> naming convention (the same lint gates
# odrserver and odrmaster startup).
metrics-check:
	$(GO) run ./cmd/odrserver -metrics-lint
	$(GO) run ./cmd/odrmaster -metrics-lint
	$(GO) test -run 'TestRegisterLiveMetricsIsLintClean|TestLint|TestClusterMetricsLintClean' ./internal/stream ./internal/obs ./internal/cluster

# Scheduler / cache / codec performance evidence -> BENCH_sched.json
# (cells/sec sequential vs parallel, warm-cache speedup, allocs/op).
bench:
	$(GO) run ./cmd/odrbench -o BENCH_sched.json

# Tile-codec suite -> BENCH_codec.json: static/scrolling/mixed/noise content
# at 720p/1080p/4K through the v1 serial coder and the v2 tile coder (keyframe
# striping + shared tile cache, the hub configuration) at 1-16 workers, with a
# parallel-equals-serial byte-identity check per cell group.
bench-codec:
	$(GO) run ./cmd/odrbench -codec -codec-out BENCH_codec.json

# Regression gate: re-run the suite and fail when any (content, resolution)
# group's median speedup-vs-v1 drops more than 25% below the committed
# BENCH_codec.json baseline, any cell's bytes/frame grow >10%, a static
# cell's cache hit ratio falls below 0.9, or a static cell shows a
# keyframe-shaped latency spike.
bench-codec-check:
	$(GO) run ./cmd/odrbench -codec-check BENCH_codec.json

# Hub fan-out suite -> BENCH_hub.json: 1/4/16/64 viewers sharing one lane
# encoder; reports encode and delivery rates plus sends_per_encode.
bench-hub:
	$(GO) run ./cmd/odrbench -hub -hub-out BENCH_hub.json

# Regression gate: re-run the hub suite and fail when any cell's
# sends_per_encode ratio drops more than 35% below the committed baseline.
bench-hub-check:
	$(GO) run ./cmd/odrbench -hub-check BENCH_hub.json

# The full Go benchmark suite with allocation reporting.
bench-go:
	$(GO) test -bench=. -benchmem ./...

# Full experiment report (every table and figure, 60s per configuration).
report:
	$(GO) run ./cmd/odrsim

# Live-measured markdown results report.
report-md:
	$(GO) run ./cmd/odrreport -o report.md

# Plot-ready CSVs for Table 2 and Figures 9-13.
artifacts:
	$(GO) run ./cmd/odrsim -csv artifacts table2

# Executable paper-anchor suite (33 tolerance-checked anchors).
fidelity:
	$(GO) run ./cmd/odrsim fidelity

# Frame-lifecycle timeline of an ODR run as Chrome trace-event JSON
# (open artifacts/timeline.json in chrome://tracing or ui.perfetto.dev).
trace:
	mkdir -p artifacts
	$(GO) run ./cmd/odrtrace -kind timeline -policy odr -trace-out artifacts/timeline.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/publiccloud
	$(GO) run ./examples/gamestream
	$(GO) run ./examples/spectate

clean:
	rm -rf artifacts report.md
