// Package netsim models the network path between the cloud server proxy and
// the client: propagation delay with jitter, bandwidth-limited transmission,
// cross-traffic drift, and the deep tail-drop buffer whose queueing is
// responsible for the paper's NoReg latency collapse on GCE (§6.4: up to
// 3.2 s average MtP latency caused by FPS-gap-induced congestion).
//
// The package is a pure model (samplers plus a byte-counted queue); the
// pipeline's network process drives it with its own virtual-time sleeps, and
// the real-time stack uses only the real network.
package netsim

import (
	"math"
	"math/rand"
	"time"
)

// Params describes one network path.
type Params struct {
	Name string
	// RTT is the base round-trip time; one-way propagation is RTT/2.
	RTT time.Duration
	// Jitter is the relative jitter applied to propagation and
	// transmission times (standard-deviation fraction).
	Jitter float64
	// Bandwidth is the usable path bandwidth in bytes/second.
	Bandwidth float64
	// BufferBytes is the send-side buffering (socket plus bottleneck
	// queue). Frames beyond it are tail-dropped.
	BufferBytes int
}

// Link is a stateful sampler for one path. It is deterministic for a given
// (Params, seed).
type Link struct {
	p   Params
	rng *rand.Rand

	// bwFactor drifts to model cross traffic on shared paths.
	bwFactor float64

	sentFrames int64
	sentBytes  int64
}

// NewLink returns a link for p seeded with seed.
func NewLink(p Params, seed int64) *Link {
	return &Link{p: p, rng: rand.New(rand.NewSource(seed)), bwFactor: 1}
}

// Params returns the link parameters.
func (l *Link) Params() Params { return l.p }

// jitterMul returns a multiplicative jitter factor >= 0.5.
func (l *Link) jitterMul() float64 {
	f := 1 + l.rng.NormFloat64()*l.p.Jitter
	if f < 0.5 {
		f = 0.5
	}
	return f
}

// stepBandwidth advances the cross-traffic drift (mean-reverting walk in
// [0.85, 1.15]).
func (l *Link) stepBandwidth() {
	l.bwFactor += 0.05*(1-l.bwFactor) + l.rng.NormFloat64()*0.015
	l.bwFactor = math.Max(0.85, math.Min(1.15, l.bwFactor))
}

// TxTime samples the serialization time for a frame of the given size and
// records it as sent. backlogBytes is the sender-side queue depth: when the
// queue holds more than half the path buffer, the transport is in sustained
// congestion and serialization slows by up to 30 % (loss recovery and
// retransmissions stealing goodput — the fate of an unpaced TCP stream on a
// saturated path).
func (l *Link) TxTime(bytes, backlogBytes int) time.Duration {
	l.stepBandwidth()
	bw := l.p.Bandwidth * l.bwFactor
	t := float64(bytes) / bw * l.jitterMul()
	if l.p.BufferBytes > 0 && backlogBytes > l.p.BufferBytes/2 {
		frac := float64(backlogBytes-l.p.BufferBytes/2) / float64(l.p.BufferBytes/2)
		if frac > 1 {
			frac = 1
		}
		t *= 1 + 0.3*frac
	}
	l.sentFrames++
	l.sentBytes += int64(bytes)
	return time.Duration(t * float64(time.Second))
}

// PropDelay samples a one-way propagation delay.
func (l *Link) PropDelay() time.Duration {
	return time.Duration(float64(l.p.RTT) / 2 * l.jitterMul())
}

// SentFrames returns the number of frames transmitted.
func (l *Link) SentFrames() int64 { return l.sentFrames }

// SentBytes returns the number of bytes transmitted.
func (l *Link) SentBytes() int64 { return l.sentBytes }

// ThroughputMbps returns the average offered throughput over the given span.
func (l *Link) ThroughputMbps(span time.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(l.sentBytes) * 8 / 1e6 / span.Seconds()
}

// ByteQueue is a byte-counted tail-drop FIFO: the send buffer in front of
// the bandwidth bottleneck. It stores opaque items with sizes; the pipeline
// stores frames.
type ByteQueue[T any] struct {
	capBytes int
	curBytes int
	items    []byteItem[T]
	drops    int64
	maxBytes int
}

type byteItem[T any] struct {
	v    T
	size int
}

// NewByteQueue returns a queue holding at most capBytes bytes (0 =
// unbounded).
func NewByteQueue[T any](capBytes int) *ByteQueue[T] {
	return &ByteQueue[T]{capBytes: capBytes}
}

// Push enqueues v if it fits; otherwise it is tail-dropped. Reports whether
// v was enqueued.
func (q *ByteQueue[T]) Push(v T, size int) bool {
	if q.capBytes > 0 && q.curBytes+size > q.capBytes {
		q.drops++
		return false
	}
	q.items = append(q.items, byteItem[T]{v: v, size: size})
	q.curBytes += size
	if q.curBytes > q.maxBytes {
		q.maxBytes = q.curBytes
	}
	return true
}

// Pop dequeues the oldest item.
func (q *ByteQueue[T]) Pop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	it := q.items[0]
	q.items[0] = byteItem[T]{}
	q.items = q.items[1:]
	q.curBytes -= it.size
	return it.v, true
}

// Len returns the number of queued items.
func (q *ByteQueue[T]) Len() int { return len(q.items) }

// Bytes returns the queued byte count.
func (q *ByteQueue[T]) Bytes() int { return q.curBytes }

// MaxBytes returns the high-water byte mark.
func (q *ByteQueue[T]) MaxBytes() int { return q.maxBytes }

// Drops returns the number of tail-dropped items.
func (q *ByteQueue[T]) Drops() int64 { return q.drops }
