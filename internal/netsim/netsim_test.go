package netsim

import (
	"testing"
	"testing/quick"
	"time"
)

func testParams() Params {
	return Params{
		Name:        "test",
		RTT:         20 * time.Millisecond,
		Jitter:      0.1,
		Bandwidth:   10e6 / 8, // 10 Mbps
		BufferBytes: 1 << 20,
	}
}

func TestLinkDeterministic(t *testing.T) {
	a, b := NewLink(testParams(), 1), NewLink(testParams(), 1)
	for i := 0; i < 100; i++ {
		if a.TxTime(40<<10, 0) != b.TxTime(40<<10, 0) {
			t.Fatal("same-seed links diverged on TxTime")
		}
		if a.PropDelay() != b.PropDelay() {
			t.Fatal("same-seed links diverged on PropDelay")
		}
	}
}

func TestTxTimeMatchesBandwidth(t *testing.T) {
	l := NewLink(testParams(), 2)
	const bytes = 125 << 10 // 125 KiB at 1.25 MB/s -> ~100ms
	var total time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		total += l.TxTime(bytes, 0)
	}
	meanMs := total.Seconds() * 1000 / float64(n)
	if meanMs < 80 || meanMs > 125 {
		t.Fatalf("mean tx = %.1fms, want ~100ms", meanMs)
	}
	if l.SentFrames() != int64(n) || l.SentBytes() != int64(n*bytes) {
		t.Fatalf("accounting wrong: %d frames, %d bytes", l.SentFrames(), l.SentBytes())
	}
}

func TestTxTimeCongestionPenalty(t *testing.T) {
	clean := NewLink(testParams(), 3)
	congested := NewLink(testParams(), 3)
	var tClean, tCong time.Duration
	for i := 0; i < 1000; i++ {
		tClean += clean.TxTime(40<<10, 0)
		tCong += congested.TxTime(40<<10, testParams().BufferBytes) // fully backed up
	}
	ratio := float64(tCong) / float64(tClean)
	if ratio < 1.2 || ratio > 1.4 {
		t.Fatalf("congestion penalty ratio = %.2f, want ~1.3", ratio)
	}
}

func TestTxTimeNoPenaltyBelowHalfBuffer(t *testing.T) {
	a, b := NewLink(testParams(), 4), NewLink(testParams(), 4)
	for i := 0; i < 100; i++ {
		if a.TxTime(10<<10, 0) != b.TxTime(10<<10, testParams().BufferBytes/2-1) {
			t.Fatal("penalty applied below the half-buffer threshold")
		}
	}
}

func TestPropDelayNearHalfRTT(t *testing.T) {
	l := NewLink(testParams(), 5)
	var total time.Duration
	n := 2000
	for i := 0; i < n; i++ {
		d := l.PropDelay()
		if d <= 0 {
			t.Fatal("non-positive propagation delay")
		}
		total += d
	}
	meanMs := total.Seconds() * 1000 / float64(n)
	if meanMs < 8 || meanMs > 12.5 {
		t.Fatalf("mean one-way = %.2fms, want ~10ms", meanMs)
	}
}

func TestThroughputAccounting(t *testing.T) {
	l := NewLink(testParams(), 6)
	l.TxTime(1_000_000, 0) // 1 MB
	mbps := l.ThroughputMbps(8 * time.Second)
	if mbps < 0.9 || mbps > 1.1 {
		t.Fatalf("ThroughputMbps = %.2f, want ~1 (8Mb over 8s)", mbps)
	}
	if l.ThroughputMbps(0) != 0 {
		t.Fatal("zero span should report 0")
	}
}

func TestByteQueueFIFOAndAccounting(t *testing.T) {
	q := NewByteQueue[string](100)
	if !q.Push("a", 40) || !q.Push("b", 40) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push("c", 40) {
		t.Fatal("push beyond capacity succeeded")
	}
	if q.Drops() != 1 {
		t.Fatalf("Drops = %d", q.Drops())
	}
	if q.Bytes() != 80 || q.Len() != 2 || q.MaxBytes() != 80 {
		t.Fatalf("accounting: bytes=%d len=%d max=%d", q.Bytes(), q.Len(), q.MaxBytes())
	}
	v, ok := q.Pop()
	if !ok || v != "a" {
		t.Fatalf("Pop = %q,%v, want a", v, ok)
	}
	if q.Bytes() != 40 {
		t.Fatalf("bytes after pop = %d", q.Bytes())
	}
	if !q.Push("c", 60) {
		t.Fatal("push after pop should fit")
	}
}

func TestByteQueuePopEmpty(t *testing.T) {
	q := NewByteQueue[int](10)
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue returned ok")
	}
}

func TestByteQueueUnbounded(t *testing.T) {
	q := NewByteQueue[int](0)
	for i := 0; i < 1000; i++ {
		if !q.Push(i, 1<<20) {
			t.Fatal("unbounded queue rejected a push")
		}
	}
	if q.Drops() != 0 {
		t.Fatal("unbounded queue dropped")
	}
}

// Property: bytes accounting is always the sum of queued item sizes, and
// Pop returns items in Push order.
func TestByteQueueInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		q := NewByteQueue[int](4096)
		var model []struct{ v, size int }
		bytes := 0
		next := 0
		for _, op := range ops {
			size := int(op%1024) + 1
			if op%3 == 0 && len(model) > 0 {
				v, ok := q.Pop()
				if !ok || v != model[0].v {
					return false
				}
				bytes -= model[0].size
				model = model[1:]
			} else {
				ok := q.Push(next, size)
				wantOK := bytes+size <= 4096
				if ok != wantOK {
					return false
				}
				if ok {
					model = append(model, struct{ v, size int }{next, size})
					bytes += size
				}
				next++
			}
			if q.Bytes() != bytes || q.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBandwidthDriftBounded(t *testing.T) {
	l := NewLink(testParams(), 8)
	for i := 0; i < 10000; i++ {
		l.TxTime(1000, 0)
		if l.bwFactor < 0.85 || l.bwFactor > 1.15 {
			t.Fatalf("bwFactor %v escaped bounds", l.bwFactor)
		}
	}
}
