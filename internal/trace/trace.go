// Package trace exports simulation measurements as CSV for plotting: time
// series (Fig. 4b-style traces), CDFs (Fig. 4a) and labeled tables.
package trace

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-oriented CSV builder.
type Table struct {
	cols [][]string
	head []string
}

// NewTable returns a table with the given column headers.
func NewTable(headers ...string) *Table {
	t := &Table{head: headers}
	t.cols = make([][]string, len(headers))
	return t
}

// AddRow appends one row; the number of values must match the headers.
func (t *Table) AddRow(values ...any) error {
	if len(values) != len(t.head) {
		return fmt.Errorf("trace: row has %d values, want %d", len(values), len(t.head))
	}
	for i, v := range values {
		t.cols[i] = append(t.cols[i], format(v))
	}
	return nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0])
}

func format(v any) string {
	switch x := v.(type) {
	case string:
		return escape(x)
	// Floats use the shortest representation that parses back to exactly
	// the same value, so a trace exported to CSV and replayed (-replay)
	// reproduces the original costs bit for bit.
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', -1, 32)
	case int:
		return strconv.Itoa(x)
	case int64:
		return strconv.FormatInt(x, 10)
	case bool:
		return strconv.FormatBool(x)
	default:
		return escape(fmt.Sprint(v))
	}
}

func escape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteCSV writes the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Join(t.head, ",")+"\n"); err != nil {
		return err
	}
	for r := 0; r < t.Rows(); r++ {
		row := make([]string, len(t.cols))
		for c := range t.cols {
			row[c] = t.cols[c][r]
		}
		if _, err := io.WriteString(w, strings.Join(row, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table as CSV text.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.WriteCSV(&b)
	return b.String()
}

// WriteCDF writes (value, probability) pairs as a two-column CSV.
func WriteCDF(w io.Writer, name string, values, probs []float64) error {
	t := NewTable(name, "cdf")
	for i := range values {
		if err := t.AddRow(values[i], probs[i]); err != nil {
			return err
		}
	}
	return t.WriteCSV(w)
}

// WriteSeries writes an indexed series as a two-column CSV.
func WriteSeries(w io.Writer, xName, yName string, ys []float64) error {
	t := NewTable(xName, yName)
	for i, y := range ys {
		if err := t.AddRow(i, y); err != nil {
			return err
		}
	}
	return t.WriteCSV(w)
}
