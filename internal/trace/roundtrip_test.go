package trace

import (
	"encoding/csv"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

// TestCSVEscapingRoundTrip checks that strings needing escaping survive a
// real CSV parse (encoding/csv) unchanged.
func TestCSVEscapingRoundTrip(t *testing.T) {
	inputs := []string{
		"plain",
		"comma,inside",
		`quo"ted`,
		"line\nbreak",
		`both,"and` + "\n" + `more`,
		"",
		`""`,
	}
	// Two columns so an empty string doesn't render as a blank line (which
	// encoding/csv would skip entirely).
	tb := NewTable("i", "v")
	for i, s := range inputs {
		if err := tb.AddRow(i, s); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := csv.NewReader(strings.NewReader(tb.String())).ReadAll()
	if err != nil {
		t.Fatalf("exported CSV does not parse: %v", err)
	}
	if len(recs) != len(inputs)+1 {
		t.Fatalf("got %d records, want %d", len(recs), len(inputs)+1)
	}
	for i, s := range inputs {
		if got := recs[i+1][1]; got != s {
			t.Errorf("row %d: %q round-tripped to %q", i, s, got)
		}
	}
}

// TestCSVFloatRoundTrip checks that float64 values written to CSV parse back
// bit for bit — this is what makes -replay reproduce a recorded trace
// exactly.
func TestCSVFloatRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	vals := []float64{0, 1, -1, 0.1, 1.0 / 3.0, math.Pi, 1e-300, 1e300,
		math.SmallestNonzeroFloat64, math.MaxFloat64, 16.666666666666668}
	for i := 0; i < 200; i++ {
		vals = append(vals, rng.NormFloat64()*math.Pow(10, float64(rng.Intn(20)-10)))
	}
	tb := NewTable("v")
	for _, v := range vals {
		if err := tb.AddRow(v); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := csv.NewReader(strings.NewReader(tb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		got, err := strconv.ParseFloat(recs[i+1][0], 64)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if got != v {
			t.Errorf("row %d: %v round-tripped to %v", i, v, got)
		}
	}
}
