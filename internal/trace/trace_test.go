package trace

import (
	"strings"
	"testing"
)

func TestTableBasic(t *testing.T) {
	tb := NewTable("a", "b")
	if err := tb.AddRow(1, 2.5); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("x,y", true); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	got := tb.String()
	want := "a,b\n1,2.5\n\"x,y\",true\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestTableRowLengthMismatch(t *testing.T) {
	tb := NewTable("a", "b")
	if err := tb.AddRow(1); err == nil {
		t.Fatal("expected error for short row")
	}
}

func TestEscaping(t *testing.T) {
	tb := NewTable("v")
	_ = tb.AddRow(`say "hi"`)
	_ = tb.AddRow("line\nbreak")
	out := tb.String()
	if !strings.Contains(out, `"say ""hi"""`) {
		t.Fatalf("quote escaping wrong: %q", out)
	}
	if !strings.Contains(out, "\"line\nbreak\"") {
		t.Fatalf("newline escaping wrong: %q", out)
	}
}

func TestFormatTypes(t *testing.T) {
	tb := NewTable("v")
	_ = tb.AddRow(int64(9))
	_ = tb.AddRow(float32(1.5))
	_ = tb.AddRow(uint(3)) // falls through to fmt.Sprint
	out := tb.String()
	for _, want := range []string{"9", "1.5", "3"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}

func TestEmptyTable(t *testing.T) {
	tb := NewTable()
	if tb.Rows() != 0 {
		t.Fatal("empty table has rows")
	}
	if tb.String() != "\n" {
		t.Fatalf("empty CSV = %q", tb.String())
	}
}

func TestWriteCDF(t *testing.T) {
	var b strings.Builder
	if err := WriteCDF(&b, "ms", []float64{1, 2}, []float64{0.5, 1}); err != nil {
		t.Fatal(err)
	}
	want := "ms,cdf\n1,0.5\n2,1\n"
	if b.String() != want {
		t.Fatalf("CDF CSV = %q", b.String())
	}
}

func TestWriteSeries(t *testing.T) {
	var b strings.Builder
	if err := WriteSeries(&b, "i", "fps", []float64{60, 59.5}); err != nil {
		t.Fatal(err)
	}
	want := "i,fps\n0,60\n1,59.5\n"
	if b.String() != want {
		t.Fatalf("series CSV = %q", b.String())
	}
}
