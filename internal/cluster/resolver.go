package cluster

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
)

// Resolver is the client side of placement: Dial asks the master where to
// connect, dials that worker's data plane, and marks the conn as redirected
// when the master moved the session to a different worker than last time.
// Plug Dial into stream.NewReconnectingClient and every reconnect
// re-resolves — which is exactly how migration reaches the client: the old
// worker's drain says goodbye, the redial lands here, and the master places
// the session on a survivor. The stream client sees Redirected() (via the
// stream.Redirector interface) and resets its retry budget.
type Resolver struct {
	// MasterURL is the master's control endpoint base.
	MasterURL string
	// HTTPClient overrides the control-RPC client (tests); nil uses
	// http.DefaultClient.
	HTTPClient *http.Client
	// DataDial overrides the data-plane dial (tests, chaos wrapping); nil
	// uses net.Dial("tcp", addr).
	DataDial func(addr string) (net.Conn, error)

	mu         sync.Mutex
	lastWorker string
}

// NewResolver returns a resolver against the given master.
func NewResolver(masterURL string) *Resolver {
	return &Resolver{MasterURL: masterURL}
}

// placedConn tags a data-plane conn with its placement outcome.
type placedConn struct {
	net.Conn
	worker     string
	redirected bool
}

// Redirected implements stream.Redirector.
func (p *placedConn) Redirected() bool { return p.redirected }

// Worker returns the ID of the worker this conn was placed on.
func (p *placedConn) Worker() string { return p.worker }

// Dial resolves a placement through the master and dials the chosen worker.
// The returned conn implements stream.Redirector: Redirected reports true
// when this placement moved to a different worker than the previous Dial
// from this resolver.
func (r *Resolver) Dial() (net.Conn, error) {
	client := r.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	hr, err := client.Get(r.MasterURL + PathPlace)
	if err != nil {
		return nil, fmt.Errorf("cluster: place: %w", err)
	}
	defer hr.Body.Close()
	var resp PlaceResponse
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return nil, fmt.Errorf("cluster: place: %w", err)
	}
	if !resp.OK {
		return nil, fmt.Errorf("cluster: place refused: %s", resp.Error)
	}
	dial := r.DataDial
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	conn, err := dial(resp.Addr)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	redirected := r.lastWorker != "" && resp.Worker != r.lastWorker
	r.lastWorker = resp.Worker
	r.mu.Unlock()
	return &placedConn{Conn: conn, worker: resp.Worker, redirected: redirected}, nil
}
