package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"odr/internal/obs"
)

// Placement score weights: live sessions dominate, pending placements count
// as sessions the load report has not caught up with yet, and the energy and
// content-business terms break ties toward the coolest, idlest worker — the
// paper's consolidation argument applied at placement time.
const (
	scoreWattsWeight = 0.1
	scoreDirtyWeight = 2.0
)

// ErrNoWorkers is returned by Place when no alive worker is registered.
var ErrNoWorkers = errors.New("cluster: no alive workers")

// MasterConfig configures a Master.
type MasterConfig struct {
	// HeartbeatInterval is the beat cadence dictated to workers
	// (default 250ms).
	HeartbeatInterval time.Duration
	// HeartbeatDeadline is how stale a worker's last beat may be before it
	// is declared dead (default 4× the interval).
	HeartbeatDeadline time.Duration
	// Metrics, when non-nil, receives the odr_cluster_* families.
	Metrics *obs.Registry
	// Logf, when non-nil, receives control-plane lifecycle logs.
	Logf func(format string, args ...any)
}

// worker state machine: alive -> draining (drain order) -> gone (deregister),
// or alive/draining -> dead (missed deadline) -> alive (re-register).
type workerState int

const (
	workerAlive workerState = iota
	workerDraining
	workerDead
)

func (s workerState) String() string {
	switch s {
	case workerAlive:
		return "alive"
	case workerDraining:
		return "draining"
	default:
		return "dead"
	}
}

// workerRec is the master's record of one worker.
type workerRec struct {
	id       string
	addr     string
	load     LoadReport
	lastBeat time.Time
	state    workerState
	// pending counts placements issued since the last heartbeat: the load
	// report lags behind them, so they are billed into the score directly
	// (and cleared when a fresh report arrives).
	pending int
}

// Master is the cluster coordinator: it owns the worker registry, answers
// placement queries with the lowest-scored alive worker, and enforces the
// heartbeat deadline. Run drives the reaper; Handler serves the control
// RPCs; both are safe concurrently.
type Master struct {
	cfg MasterConfig
	met clusterMetrics

	mu      sync.Mutex
	workers map[string]*workerRec

	stopOnce sync.Once
	stopping chan struct{}
}

// NewMaster returns a master ready to serve; start the deadline reaper with
// go m.Run().
func NewMaster(cfg MasterConfig) *Master {
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 250 * time.Millisecond
	}
	if cfg.HeartbeatDeadline <= 0 {
		cfg.HeartbeatDeadline = 4 * cfg.HeartbeatInterval
	}
	return &Master{
		cfg:      cfg,
		met:      registerClusterMetrics(cfg.Metrics),
		workers:  make(map[string]*workerRec),
		stopping: make(chan struct{}),
	}
}

// Run enforces the heartbeat deadline until Stop: a worker whose last beat
// is older than the deadline is declared dead and stops receiving
// placements. Its clients discover the failure on the data plane, redial
// through the master, and are re-placed on survivors.
func (m *Master) Run() {
	t := time.NewTicker(m.cfg.HeartbeatInterval / 2)
	defer t.Stop()
	for {
		select {
		case <-m.stopping:
			return
		case <-t.C:
			m.reap(time.Now())
		}
	}
}

// Stop ends Run. It does not contact workers; orderly scale-down goes
// through DrainWorker.
func (m *Master) Stop() {
	m.stopOnce.Do(func() { close(m.stopping) })
}

// reap declares every overdue worker dead.
func (m *Master) reap(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, w := range m.workers {
		if w.state == workerDead {
			continue
		}
		if now.Sub(w.lastBeat) > m.cfg.HeartbeatDeadline {
			w.state = workerDead
			m.met.workerFailures.Inc()
			m.logf("cluster: worker %s (%s) missed heartbeat deadline %s: declared dead",
				w.id, w.addr, m.cfg.HeartbeatDeadline)
		}
	}
	m.publishLocked()
}

// score is the placement objective; lower places sooner.
func (w *workerRec) score() float64 {
	return float64(w.load.Sessions+w.pending) +
		scoreWattsWeight*w.load.Watts +
		scoreDirtyWeight*w.load.DirtyRatio
}

// register adds or revives a worker.
func (m *Master) register(req RegisterRequest) RegisterResponse {
	if req.ID == "" || req.Addr == "" {
		return RegisterResponse{Error: "cluster: register needs id and addr"}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[req.ID]
	if w == nil {
		w = &workerRec{id: req.ID}
		m.workers[req.ID] = w
	}
	revived := w.state == workerDead
	w.addr = req.Addr
	w.load = req.Load
	w.lastBeat = time.Now()
	w.state = workerAlive
	w.pending = 0
	m.publishLocked()
	if revived {
		m.logf("cluster: worker %s (%s) re-registered after death", w.id, w.addr)
	} else {
		m.logf("cluster: worker %s registered at %s", w.id, w.addr)
	}
	return RegisterResponse{
		OK:       true,
		Interval: m.cfg.HeartbeatInterval,
		Deadline: m.cfg.HeartbeatDeadline,
	}
}

// heartbeat records a beat. An unknown or already-dead worker gets OK false
// and must re-register: its record (and any drain order it carried) is gone
// or stale, so the handshake restarts from scratch.
func (m *Master) heartbeat(req HeartbeatRequest) HeartbeatResponse {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[req.ID]
	if w == nil || w.state == workerDead {
		return HeartbeatResponse{OK: false}
	}
	w.load = req.Load
	w.lastBeat = time.Now()
	w.pending = 0
	m.met.heartbeats.With1(w.id).Inc()
	m.publishLocked()
	return HeartbeatResponse{OK: true, Drain: w.state == workerDraining}
}

// deregister removes a worker's record entirely.
func (m *Master) deregister(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[id]
	if w == nil {
		return
	}
	delete(m.workers, id)
	m.met.loadScore.Delete(id)
	m.publishLocked()
	m.logf("cluster: worker %s deregistered", id)
}

// Place picks the alive worker with the lowest load score and bills the
// placement against it until its next load report.
func (m *Master) Place() (workerID, addr string, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var best *workerRec
	for _, w := range m.workers {
		if w.state != workerAlive {
			continue
		}
		if best == nil || w.score() < best.score() ||
			(w.score() == best.score() && w.id < best.id) {
			best = w
		}
	}
	if best == nil {
		m.met.placementErrors.Inc()
		return "", "", ErrNoWorkers
	}
	best.pending++
	m.met.placements.With1(best.id).Inc()
	m.publishLocked()
	return best.id, best.addr, nil
}

// DrainWorker orders a worker to drain: it stops receiving placements
// immediately, and its next heartbeat carries the drain command — the
// worker then drains its hub (orderly msgBye per session, whose clients
// redial through the master) and deregisters.
func (m *Master) DrainWorker(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	w := m.workers[id]
	if w == nil {
		return fmt.Errorf("cluster: unknown worker %q", id)
	}
	if w.state == workerDead {
		return fmt.Errorf("cluster: worker %q is dead", id)
	}
	if w.state != workerDraining {
		w.state = workerDraining
		m.met.drains.Inc()
		m.publishLocked()
		m.logf("cluster: drain ordered for worker %s", id)
	}
	return nil
}

// Workers returns the registry snapshot, sorted by ID.
func (m *Master) Workers() []WorkerInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]WorkerInfo, 0, len(m.workers))
	for _, w := range m.workers {
		out = append(out, WorkerInfo{
			ID:       w.id,
			Addr:     w.addr,
			State:    w.state.String(),
			Load:     w.load,
			Score:    w.score(),
			LastBeat: w.lastBeat,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// publishLocked mirrors the registry into the gauges; callers hold m.mu.
func (m *Master) publishLocked() {
	if m.met.workers == nil {
		return
	}
	var counts [3]int
	for _, w := range m.workers {
		counts[w.state]++
		m.met.loadScore.With1(w.id).Set(w.score())
	}
	for s, n := range counts {
		m.met.workers.With1(workerState(s).String()).Set(float64(n))
	}
}

// logf logs through the configured sink.
func (m *Master) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// Handler returns the control-RPC surface: register, heartbeat and
// deregister are POSTs with JSON bodies; place and workers are GETs.
func (m *Master) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, m.register(req))
	})
	mux.HandleFunc(PathHeartbeat, func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeJSON(w, m.heartbeat(req))
	})
	mux.HandleFunc(PathDeregister, func(w http.ResponseWriter, r *http.Request) {
		var req DeregisterRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		m.deregister(req.ID)
		writeJSON(w, struct {
			OK bool `json:"ok"`
		}{true})
	})
	mux.HandleFunc(PathDrain, func(w http.ResponseWriter, r *http.Request) {
		var req DrainRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if err := m.DrainWorker(req.ID); err != nil {
			writeJSON(w, DrainResponse{Error: err.Error()})
			return
		}
		writeJSON(w, DrainResponse{OK: true})
	})
	mux.HandleFunc(PathPlace, func(w http.ResponseWriter, r *http.Request) {
		id, addr, err := m.Place()
		if err != nil {
			writeJSON(w, PlaceResponse{Error: err.Error()})
			return
		}
		writeJSON(w, PlaceResponse{OK: true, Worker: id, Addr: addr})
	})
	mux.HandleFunc(PathWorkers, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, m.Workers())
	})
	return mux
}

// decodeJSON parses a request body, answering 400 on malformed input.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("cluster: bad request: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
