package cluster

import (
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"odr/internal/testutil"
)

// startMaster spins up a master with a fast cadence behind a real HTTP
// server and cleans both up with the test.
func startMaster(t *testing.T) (*Master, *httptest.Server) {
	t.Helper()
	m := NewMaster(MasterConfig{
		HeartbeatInterval: 20 * time.Millisecond,
		Logf:              t.Logf,
	})
	go m.Run()
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Stop()
	})
	return m, srv
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, within time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestWorkerRegistersAndHeartbeats: a worker agent registers, adopts the
// master's cadence, keeps its record fresh with load reports, and Stop
// deregisters it promptly.
func TestWorkerRegistersAndHeartbeats(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m, srv := startMaster(t)

	var sessions atomic.Int64
	sessions.Store(3)
	w := NewWorker(WorkerConfig{
		ID:        "w1",
		MasterURL: srv.URL,
		Addr:      "127.0.0.1:7311",
		Load:      func() LoadReport { return LoadReport{Sessions: int(sessions.Load())} },
		Logf:      t.Logf,
	})
	done := make(chan error, 1)
	go func() { done <- w.Run() }()

	waitFor(t, 5*time.Second, func() bool {
		ws := m.Workers()
		return len(ws) == 1 && ws[0].State == "alive"
	}, "registration")

	// The next heartbeat must carry a fresh load report.
	sessions.Store(5)
	waitFor(t, 5*time.Second, func() bool {
		ws := m.Workers()
		return len(ws) == 1 && ws[0].Load.Sessions == 5
	}, "heartbeat load report")

	w.Stop()
	if err := <-done; err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ws := m.Workers(); len(ws) != 0 {
		t.Fatalf("workers after Stop = %+v, want none (deregistered)", ws)
	}
}

// TestWorkerDrainOrder: DrainWorker reaches the agent on its next beat, the
// OnDrain hook runs, and the worker deregisters and ends Run cleanly.
func TestWorkerDrainOrder(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m, srv := startMaster(t)

	var drained atomic.Bool
	w := NewWorker(WorkerConfig{
		ID:        "w1",
		MasterURL: srv.URL,
		Addr:      "127.0.0.1:7311",
		OnDrain:   func() { drained.Store(true) },
		Logf:      t.Logf,
	})
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	defer w.Stop()

	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 1 }, "registration")
	if err := m.DrainWorker("w1"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not end after drain order")
	}
	if !drained.Load() {
		t.Fatal("OnDrain hook never ran")
	}
	if ws := m.Workers(); len(ws) != 0 {
		t.Fatalf("workers after drain = %+v, want none", ws)
	}
}

// TestWorkerReRegistersAfterDeath: when the master declares a worker dead
// (deadline expiry), the worker's next heartbeat gets OK false and the agent
// re-registers, reviving the record without operator action.
func TestWorkerReRegistersAfterDeath(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m, srv := startMaster(t)

	w := NewWorker(WorkerConfig{
		ID:        "w1",
		MasterURL: srv.URL,
		Addr:      "127.0.0.1:7311",
		Logf:      t.Logf,
	})
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	defer func() {
		w.Stop()
		<-done
	}()

	waitFor(t, 5*time.Second, func() bool { return len(m.Workers()) == 1 }, "registration")

	// Force deadline expiry as if the worker had been partitioned away.
	m.reap(time.Now().Add(time.Hour))
	if ws := m.Workers(); len(ws) != 1 || ws[0].State != "dead" {
		t.Fatalf("workers after forced reap = %+v, want one dead", ws)
	}

	// The agent's next beat is refused, so it re-registers on its own.
	waitFor(t, 5*time.Second, func() bool {
		ws := m.Workers()
		return len(ws) == 1 && ws[0].State == "alive"
	}, "re-registration after death")
}
