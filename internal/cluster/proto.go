// Package cluster is the master/worker control plane: a master process
// registers odrserver workers over JSON-over-HTTP control RPCs, health-checks
// them with heartbeat deadlines, places incoming sessions on the
// least-loaded worker, and drains or migrates sessions on worker failure or
// scale-down.
//
// The data plane is untouched: clients still speak the stream protocol
// straight to a worker's hub over TCP. What the cluster adds is placement
// (the client asks the master where to connect) and migration, which reuses
// machinery the stream layer already has — a handoff is "drain, redirect,
// reconnect, keyreq": the worker's hub drains (orderly msgBye per session),
// each client redials through its Resolver, the master places it on a
// surviving worker, and the keyframe-resync path repairs the stream there.
//
// Everything is stdlib: net/http for the control RPCs, encoding/json for the
// wire types in this file. Load reports are derived from the worker's
// existing /metrics surface (sessions, watts, dirty-tile ratio) via
// LoadFromScrape, so the control plane reads the same telemetry operators do.
package cluster

import (
	"time"

	"odr/internal/obs/scrape"
)

// Control-RPC paths served by Master.Handler.
const (
	PathRegister   = "/cluster/register"
	PathHeartbeat  = "/cluster/heartbeat"
	PathDeregister = "/cluster/deregister"
	PathPlace      = "/cluster/place"
	PathWorkers    = "/cluster/workers"
	PathDrain      = "/cluster/drain"
)

// LoadReport is a worker's self-reported load, the inputs to the master's
// placement score. The fields mirror the worker's /metrics surface: live
// session count, estimated power draw, and the dirty-tile ratio (the share
// of encoder work that is real change rather than excessive rendering — a
// proxy for how busy the content is).
type LoadReport struct {
	Sessions   int     `json:"sessions"`
	Watts      float64 `json:"watts"`
	DirtyRatio float64 `json:"dirty_ratio"`
}

// RegisterRequest announces a worker to the master. Addr is the data-plane
// address clients will dial; ID must be stable across re-registration so a
// worker that lost contact (and was declared dead) revives its record
// instead of duplicating it.
type RegisterRequest struct {
	ID   string     `json:"id"`
	Addr string     `json:"addr"`
	Load LoadReport `json:"load"`
}

// RegisterResponse acknowledges registration and dictates the heartbeat
// contract: beat every Interval; miss Deadline and you are declared dead.
type RegisterResponse struct {
	OK       bool          `json:"ok"`
	Error    string        `json:"error,omitempty"`
	Interval time.Duration `json:"interval"`
	Deadline time.Duration `json:"deadline"`
}

// HeartbeatRequest carries a worker's liveness proof and current load.
type HeartbeatRequest struct {
	ID   string     `json:"id"`
	Load LoadReport `json:"load"`
}

// HeartbeatResponse is the master's piggybacked command channel. OK false
// means the master does not know this worker (it was declared dead, or the
// master restarted) — the worker must re-register. Drain true orders the
// worker to drain its sessions (orderly msgBye each) and deregister; its
// clients re-resolve through the master and land on surviving workers.
type HeartbeatResponse struct {
	OK    bool `json:"ok"`
	Drain bool `json:"drain"`
}

// DeregisterRequest removes a worker on orderly shutdown or after a drain.
type DeregisterRequest struct {
	ID string `json:"id"`
}

// DrainRequest is the operator-facing scale-down order: the named worker
// stops receiving placements immediately and is told to drain on its next
// heartbeat.
type DrainRequest struct {
	ID string `json:"id"`
}

// DrainResponse acknowledges (or refuses) a drain order.
type DrainResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

// PlaceResponse answers a client's placement query with the worker to dial.
type PlaceResponse struct {
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
	Worker string `json:"worker"`
	Addr   string `json:"addr"`
}

// WorkerInfo is the master's view of one worker (the /cluster/workers debug
// surface and the failure-matrix assertions).
type WorkerInfo struct {
	ID       string     `json:"id"`
	Addr     string     `json:"addr"`
	State    string     `json:"state"` // alive, draining, dead
	Load     LoadReport `json:"load"`
	Score    float64    `json:"score"`
	LastBeat time.Time  `json:"last_beat"`
}

// Metric families the worker's load report is derived from. They are spelled
// here (rather than imported from internal/stream) so the control plane
// depends only on the wire surface, exactly like an external scraper.
const (
	sessionFPSFamily   = "odr_session_fps"
	sessionWattsFamily = "odr_session_watts"
	tilesOutcomeFamily = "odr_tiles_outcome_total"
)

// LoadFromScrape derives a LoadReport from a parsed /metrics document:
// sessions is the number of odr_session_fps series (the hub's own
// session="shared" probe excluded), watts sums odr_session_watts across all
// series, and the dirty ratio comes from the odr_tiles_outcome_total
// counters. A worker that has served nothing reports zeros.
func LoadFromScrape(sc *scrape.Scrape) LoadReport {
	var load LoadReport
	if sc == nil {
		return load
	}
	for _, sm := range sc.Series(sessionFPSFamily) {
		if sm.Label("session") != "shared" {
			load.Sessions++
		}
	}
	for _, sm := range sc.Series(sessionWattsFamily) {
		load.Watts += sm.Value
	}
	dirty := sc.Number(tilesOutcomeFamily, scrape.Label{Name: "tile_outcome", Value: "dirty"})
	clean := sc.Number(tilesOutcomeFamily, scrape.Label{Name: "tile_outcome", Value: "clean"})
	if dirty+clean > 0 {
		load.DirtyRatio = dirty / (dirty + clean)
	}
	return load
}
