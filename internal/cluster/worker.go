package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// WorkerConfig configures a worker's control-plane agent.
type WorkerConfig struct {
	// ID names the worker; it must be stable across re-registration.
	ID string
	// MasterURL is the master's control endpoint base, e.g.
	// "http://127.0.0.1:7400".
	MasterURL string
	// Addr is the data-plane address advertised to clients.
	Addr string
	// Load reports the worker's current load on every heartbeat (nil
	// reports zeros). Derive it from the local /metrics surface with
	// LoadFromScrape.
	Load func() LoadReport
	// OnDrain runs (once) when the master orders a drain; it should drain
	// the hub — orderly msgBye per session — and stop accepting clients.
	// After it returns the worker deregisters and Run ends.
	OnDrain func()
	// Interval overrides the master-dictated heartbeat cadence (tests);
	// 0 follows the RegisterResponse.
	Interval time.Duration
	// HTTPClient lets tests inject a chaos-wrapped transport; nil uses a
	// client whose timeout is bounded by the heartbeat deadline.
	HTTPClient *http.Client
	// Logf, when non-nil, receives agent lifecycle logs.
	Logf func(format string, args ...any)
}

// Worker is the agent side of the control plane: it registers with the
// master, heartbeats on the dictated cadence with a fresh load report, and
// obeys the piggybacked commands — OK false re-registers, Drain drains and
// deregisters. Run blocks until Stop or a drain completes.
type Worker struct {
	cfg WorkerConfig

	// mu guards client: register (the Run goroutine) swaps it to adopt the
	// master's deadline while Stop's best-effort deregister may be posting
	// through it from another goroutine.
	mu       sync.Mutex
	client   *http.Client
	interval time.Duration

	stopOnce  sync.Once
	stopping  chan struct{}
	drainOnce sync.Once
}

// NewWorker returns a worker agent; drive it with Run.
func NewWorker(cfg WorkerConfig) *Worker {
	w := &Worker{cfg: cfg, stopping: make(chan struct{})}
	w.client = cfg.HTTPClient
	if w.client == nil {
		w.client = &http.Client{}
	}
	w.interval = cfg.Interval
	return w
}

// httpClient returns the current control-RPC client.
func (w *Worker) httpClient() *http.Client {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.client
}

// Stop ends Run after the in-flight RPC (if any) finishes. It deregisters
// best-effort so the master does not have to wait out the deadline.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		close(w.stopping)
		w.post(PathDeregister, DeregisterRequest{ID: w.cfg.ID}, &struct{}{})
	})
}

// stopped reports whether Stop has been called.
func (w *Worker) stopped() bool {
	select {
	case <-w.stopping:
		return true
	default:
		return false
	}
}

// load returns the current report.
func (w *Worker) load() LoadReport {
	if w.cfg.Load == nil {
		return LoadReport{}
	}
	return w.cfg.Load()
}

// post sends one JSON control RPC.
func (w *Worker) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := w.httpClient().Post(w.cfg.MasterURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: HTTP %d", path, hr.StatusCode)
	}
	return json.NewDecoder(hr.Body).Decode(resp)
}

// register announces the worker, adopting the master's heartbeat cadence
// unless the config pinned one.
func (w *Worker) register() error {
	var resp RegisterResponse
	err := w.post(PathRegister, RegisterRequest{ID: w.cfg.ID, Addr: w.cfg.Addr, Load: w.load()}, &resp)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("cluster: register refused: %s", resp.Error)
	}
	if w.cfg.Interval <= 0 && resp.Interval > 0 {
		w.interval = resp.Interval
		// Bound each control RPC by the deadline: a partitioned or hung
		// master must not wedge the heartbeat loop past the point where the
		// master has already declared us dead anyway. Swap a fresh client
		// rather than mutating one a concurrent Stop may be posting through.
		if w.cfg.HTTPClient == nil && resp.Deadline > 0 {
			w.mu.Lock()
			w.client = &http.Client{Timeout: resp.Deadline}
			w.mu.Unlock()
		}
	}
	if w.interval <= 0 {
		w.interval = 250 * time.Millisecond
	}
	w.logf("cluster: worker %s registered with %s (beat every %s)", w.cfg.ID, w.cfg.MasterURL, w.interval)
	return nil
}

// drain runs the OnDrain hook exactly once.
func (w *Worker) drain() {
	w.drainOnce.Do(func() {
		w.logf("cluster: worker %s draining on master's order", w.cfg.ID)
		if w.cfg.OnDrain != nil {
			w.cfg.OnDrain()
		}
	})
}

// Run registers (retrying until Stop) and then heartbeats until Stop or a
// drain order. Heartbeat failures are retried on the same cadence: the
// master's deadline, not the worker's, decides when lost contact becomes
// death — and a dead worker that reconnects is told OK false and
// re-registers, reviving its record.
func (w *Worker) Run() error {
	for {
		if w.stopped() {
			return nil
		}
		if err := w.register(); err == nil {
			break
		} else {
			w.logf("cluster: worker %s register failed: %v", w.cfg.ID, err)
		}
		if !w.sleep(w.retryInterval()) {
			return nil
		}
	}
	for {
		if !w.sleep(w.interval) {
			return nil
		}
		var resp HeartbeatResponse
		err := w.post(PathHeartbeat, HeartbeatRequest{ID: w.cfg.ID, Load: w.load()}, &resp)
		if err != nil {
			w.logf("cluster: worker %s heartbeat failed: %v", w.cfg.ID, err)
			continue
		}
		if !resp.OK {
			// The master lost our record (deadline expiry or restart):
			// start the handshake over.
			if err := w.register(); err != nil {
				w.logf("cluster: worker %s re-register failed: %v", w.cfg.ID, err)
			}
			continue
		}
		if resp.Drain {
			w.drain()
			w.post(PathDeregister, DeregisterRequest{ID: w.cfg.ID}, &struct{}{})
			w.logf("cluster: worker %s drained and deregistered", w.cfg.ID)
			return nil
		}
	}
}

// retryInterval paces registration retries before the master has dictated a
// cadence.
func (w *Worker) retryInterval() time.Duration {
	if w.interval > 0 {
		return w.interval
	}
	return 100 * time.Millisecond
}

// sleep waits d, returning false when Stop fires first.
func (w *Worker) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.stopping:
		return false
	}
}

// logf logs through the configured sink.
func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
