package cluster

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"odr/internal/obs"
	"odr/internal/obs/scrape"
	"odr/internal/stream"
	"odr/internal/testutil"
)

// register is a test shorthand for a direct (in-process) registration.
func mustRegister(t *testing.T, m *Master, id, addr string, load LoadReport) {
	t.Helper()
	resp := m.register(RegisterRequest{ID: id, Addr: addr, Load: load})
	if !resp.OK {
		t.Fatalf("register %s: %s", id, resp.Error)
	}
}

// TestMasterPlacementByScore: placement always picks the lowest score, the
// score weighs sessions, watts and dirty ratio, pending placements bill
// against the target until its next load report, and score ties break by ID.
func TestMasterPlacementByScore(t *testing.T) {
	m := NewMaster(MasterConfig{})
	mustRegister(t, m, "w1", "a1", LoadReport{Sessions: 2})
	mustRegister(t, m, "w2", "a2", LoadReport{})

	// w2 is idle: the first two placements go there (its pending count rises
	// to parity with w1), the third breaks the 2-2 tie toward w1.
	want := []string{"w2", "w2", "w1"}
	for i, w := range want {
		id, addr, err := m.Place()
		if err != nil {
			t.Fatalf("Place %d: %v", i, err)
		}
		if id != w {
			t.Fatalf("Place %d = %s, want %s", i, id, w)
		}
		if id == "w2" && addr != "a2" {
			t.Fatalf("Place %d addr = %s, want a2", i, addr)
		}
	}

	// A fresh load report clears w2's pending bill; with equal sessions the
	// energy and dirty-ratio terms steer placement to the cooler worker.
	m.heartbeat(HeartbeatRequest{ID: "w2", Load: LoadReport{Sessions: 2, Watts: 40}})
	m.heartbeat(HeartbeatRequest{ID: "w1", Load: LoadReport{Sessions: 2, Watts: 10, DirtyRatio: 0.5}})
	// Scores: w1 = 2 + 1 + 1.0 = 4.0 (one pending from above), w2 = 2 + 4 = 6.
	id, _, err := m.Place()
	if err != nil {
		t.Fatal(err)
	}
	if id != "w1" {
		t.Fatalf("energy-weighted placement = %s, want w1", id)
	}
}

// TestMasterPlaceNoWorkers: an empty (or all-dead) registry refuses
// placement with ErrNoWorkers.
func TestMasterPlaceNoWorkers(t *testing.T) {
	m := NewMaster(MasterConfig{})
	if _, _, err := m.Place(); err != ErrNoWorkers {
		t.Fatalf("Place on empty registry = %v, want ErrNoWorkers", err)
	}
}

// TestMasterHeartbeatUnknownWorker: a heartbeat from a worker the master
// does not know gets OK false — the re-register signal.
func TestMasterHeartbeatUnknownWorker(t *testing.T) {
	m := NewMaster(MasterConfig{})
	if resp := m.heartbeat(HeartbeatRequest{ID: "ghost"}); resp.OK {
		t.Fatal("heartbeat from unknown worker accepted")
	}
}

// TestMasterReapDeclaresDead: a worker that misses the deadline is declared
// dead — no placements, heartbeats answered OK false — and re-registration
// revives it.
func TestMasterReapDeclaresDead(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMaster(MasterConfig{HeartbeatInterval: 10 * time.Millisecond, Metrics: reg})
	mustRegister(t, m, "w1", "a1", LoadReport{})

	// Pretend the deadline has long passed.
	m.reap(time.Now().Add(time.Hour))
	if ws := m.Workers(); len(ws) != 1 || ws[0].State != "dead" {
		t.Fatalf("workers after reap = %+v, want one dead", ws)
	}
	if _, _, err := m.Place(); err != ErrNoWorkers {
		t.Fatalf("Place with only a dead worker = %v, want ErrNoWorkers", err)
	}
	if resp := m.heartbeat(HeartbeatRequest{ID: "w1"}); resp.OK {
		t.Fatal("heartbeat from dead worker accepted; want OK false (re-register)")
	}
	if got := reg.Counter(NameClusterWorkerFailures).Value(); got != 1 {
		t.Fatalf("worker failures counter = %d, want 1", got)
	}

	mustRegister(t, m, "w1", "a1", LoadReport{})
	if ws := m.Workers(); ws[0].State != "alive" {
		t.Fatalf("state after re-register = %s, want alive", ws[0].State)
	}
	if _, _, err := m.Place(); err != nil {
		t.Fatalf("Place after revival: %v", err)
	}
}

// TestMasterDrainWorkflow: a drain order stops placements immediately, rides
// the next heartbeat, and deregistration removes the record.
func TestMasterDrainWorkflow(t *testing.T) {
	m := NewMaster(MasterConfig{})
	mustRegister(t, m, "w1", "a1", LoadReport{})
	if err := m.DrainWorker("w1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Place(); err != ErrNoWorkers {
		t.Fatalf("Place on draining worker = %v, want ErrNoWorkers", err)
	}
	resp := m.heartbeat(HeartbeatRequest{ID: "w1"})
	if !resp.OK || !resp.Drain {
		t.Fatalf("draining heartbeat = %+v, want OK with Drain", resp)
	}
	m.deregister("w1")
	if ws := m.Workers(); len(ws) != 0 {
		t.Fatalf("workers after deregister = %+v, want none", ws)
	}
	if err := m.DrainWorker("nope"); err == nil {
		t.Fatal("drain of unknown worker accepted")
	}
}

// TestMasterHandlerRoundTrip drives the register/place/workers flow over
// real HTTP with JSON bodies — the wire surface the worker agent and the
// resolver speak.
func TestMasterHandlerRoundTrip(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	m := NewMaster(MasterConfig{})
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	body, _ := json.Marshal(RegisterRequest{ID: "w1", Addr: "127.0.0.1:7311"})
	hr, err := http.Post(srv.URL+PathRegister, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(hr.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !rr.OK || rr.Interval <= 0 || rr.Deadline < rr.Interval {
		t.Fatalf("register response %+v", rr)
	}

	hr, err = http.Get(srv.URL + PathPlace)
	if err != nil {
		t.Fatal(err)
	}
	var pr PlaceResponse
	if err := json.NewDecoder(hr.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !pr.OK || pr.Worker != "w1" || pr.Addr != "127.0.0.1:7311" {
		t.Fatalf("place response %+v", pr)
	}

	hr, err = http.Get(srv.URL + PathWorkers)
	if err != nil {
		t.Fatal(err)
	}
	var ws []WorkerInfo
	if err := json.NewDecoder(hr.Body).Decode(&ws); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if len(ws) != 1 || ws[0].ID != "w1" || ws[0].State != "alive" {
		t.Fatalf("workers response %+v", ws)
	}

	body, _ = json.Marshal(DrainRequest{ID: "w1"})
	hr, err = http.Post(srv.URL+PathDrain, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var dr DrainResponse
	if err := json.NewDecoder(hr.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if !dr.OK {
		t.Fatalf("drain response %+v", dr)
	}
	if ws := m.Workers(); ws[0].State != "draining" {
		t.Fatalf("state after drain RPC = %s, want draining", ws[0].State)
	}

	// Malformed JSON is a 400, not a panic or a silent zero-value register.
	hr, err = http.Post(srv.URL+PathRegister, "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed register = HTTP %d, want 400", hr.StatusCode)
	}
	http.DefaultClient.CloseIdleConnections()
}

// TestClusterMetricsLintClean holds the full odr_cluster_* surface — joined
// with the frame-pipeline and live-session families it shares a registry
// with in odrmaster — to the repo's naming conventions.
func TestClusterMetricsLintClean(t *testing.T) {
	reg := obs.NewRegistry()
	obs.NewFrameInstruments(reg)
	stream.RegisterLiveMetrics(reg)
	RegisterClusterMetrics(reg)
	if errs := obs.Lint(reg); len(errs) > 0 {
		t.Fatalf("lint violations: %v", errs)
	}
}

// TestLoadFromScrape derives a load report from a real /metrics document
// rendered by the obs encoder — the exact surface a worker self-scrapes.
func TestLoadFromScrape(t *testing.T) {
	reg := obs.NewRegistry()
	stream.RegisterLiveMetrics(reg)
	fps := reg.GaugeVec("odr_session_fps", "", "session")
	fps.With1("s1").Set(60)
	fps.With1("s2").Set(30)
	fps.With1("shared").Set(60) // the hub's own probe: not a session
	watts := reg.GaugeVec("odr_session_watts", "", "session")
	watts.With1("s1").Set(10)
	watts.With1("s2").Set(5)
	outcome := reg.CounterVec("odr_tiles_outcome_total", "", "tile_outcome")
	outcome.With1("dirty").Add(30)
	outcome.With1("clean").Add(70)

	var buf bytes.Buffer
	if err := obs.WritePrometheusWith(&buf, reg, false); err != nil {
		t.Fatal(err)
	}
	sc, err := scrape.ParseBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	load := LoadFromScrape(sc)
	if load.Sessions != 2 {
		t.Errorf("Sessions = %d, want 2 (shared excluded)", load.Sessions)
	}
	if load.Watts != 15 {
		t.Errorf("Watts = %v, want 15", load.Watts)
	}
	if load.DirtyRatio != 0.3 {
		t.Errorf("DirtyRatio = %v, want 0.3", load.DirtyRatio)
	}
	if got := LoadFromScrape(nil); got != (LoadReport{}) {
		t.Errorf("LoadFromScrape(nil) = %+v, want zeros", got)
	}
}
