package cluster

import "odr/internal/obs"

// Canonical names of the cluster control-plane families. They follow the
// odr_<subsystem>_<noun>_<unit> convention and are held to obs.Lint by the
// master's startup gate (cmd/odrmaster -metrics-lint, make metrics-check).
const (
	// NameClusterWorkers gauges the worker fleet by state (alive, draining,
	// dead).
	NameClusterWorkers = "odr_cluster_workers"
	// NameClusterPlacements counts sessions placed, by worker.
	NameClusterPlacements = "odr_cluster_placements_total"
	// NameClusterPlacementErrors counts placement queries refused because no
	// alive worker was available.
	NameClusterPlacementErrors = "odr_cluster_placement_errors_total"
	// NameClusterHeartbeats counts heartbeats accepted, by worker.
	NameClusterHeartbeats = "odr_cluster_heartbeats_total"
	// NameClusterWorkerFailures counts workers declared dead after missing
	// their heartbeat deadline.
	NameClusterWorkerFailures = "odr_cluster_worker_failures_total"
	// NameClusterDrains counts drain orders issued to workers.
	NameClusterDrains = "odr_cluster_drains_total"
	// NameClusterLoadScore gauges each worker's current placement score
	// (lower places sooner).
	NameClusterLoadScore = "odr_cluster_worker_load_score"
)

// clusterMetrics bundles the master's instrument handles (all nil-safe).
type clusterMetrics struct {
	workers         *obs.GaugeVec
	placements      *obs.CounterVec
	placementErrors *obs.Counter
	heartbeats      *obs.CounterVec
	workerFailures  *obs.Counter
	drains          *obs.Counter
	loadScore       *obs.GaugeVec
}

// registerClusterMetrics idempotently registers every cluster family in reg
// and returns the handles. Nil registry yields nil handles (no-ops).
func registerClusterMetrics(reg *obs.Registry) clusterMetrics {
	if reg == nil {
		return clusterMetrics{}
	}
	reg.SetHelp(NameClusterPlacementErrors,
		"Placement queries refused because no alive worker was available.")
	reg.SetHelp(NameClusterWorkerFailures,
		"Workers declared dead after missing their heartbeat deadline.")
	reg.SetHelp(NameClusterDrains,
		"Drain orders issued to workers (scale-down and migration).")
	return clusterMetrics{
		workers: reg.GaugeVec(NameClusterWorkers,
			"Registered workers by state.", "state"),
		placements: reg.CounterVec(NameClusterPlacements,
			"Sessions placed on each worker by the load-score policy.", "worker"),
		placementErrors: reg.Counter(NameClusterPlacementErrors),
		heartbeats: reg.CounterVec(NameClusterHeartbeats,
			"Heartbeats accepted from each worker.", "worker"),
		workerFailures: reg.Counter(NameClusterWorkerFailures),
		drains:         reg.Counter(NameClusterDrains),
		loadScore: reg.GaugeVec(NameClusterLoadScore,
			"Placement score per worker (sessions + pending + 0.1*watts + 2*dirty_ratio; lower places sooner).", "worker"),
	}
}

// RegisterClusterMetrics pre-registers the full cluster metric surface in
// reg without creating any series, so a startup lint can validate every
// family the master will ever export before the first worker registers.
// Nil-safe.
func RegisterClusterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	registerClusterMetrics(reg)
}
