package cluster

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odr/internal/chaos"
	"odr/internal/obs"
	"odr/internal/stream"
	"odr/internal/testutil"
)

// ---------------------------------------------------------------------------
// Cluster failure matrix: every node-level chaos fault × every control-plane
// operation, with an explicit expected outcome per cell. The faults land on
// the victim worker's control link (the master never misbehaves — worker
// failure is the paper's fault model for consolidation), through the same
// chaos grammar the conn-level matrix uses:
//
//   crash   — the node dies: its next control write fires the chaos node-fault
//             hook, which tears down the data plane too (listener, conns, hub)
//   mpart   — the control link partitions: heartbeats blackhole, the data
//             plane keeps running
//   hbdelay — heartbeats are delayed but delivered inside the deadline
//
// Operations and expected outcomes:
//
//   op          crash               mpart                 hbdelay
//   placement   re-place(survivor)  re-place(survivor)    tolerate(victim)
//   steady      resume(redirect)    tolerate + revive     tolerate
//   drain       evict(dead)         drain-after-heal      tolerate(late drain)
//   migration   resume(redirect)    resume(bye+redirect)  resume(bye+redirect)
// ---------------------------------------------------------------------------

const (
	clusterSeed     = 1
	hbInterval      = 25 * time.Millisecond
	hbDeadline      = 400 * time.Millisecond
	ctlTimeout      = 80 * time.Millisecond
	partitionWindow = 100 * time.Millisecond
	matrixWait      = 10 * time.Second
)

// faultDialer dials control conns for the victim worker, wrapping each one
// with the currently-armed chaos schedule. Keep-alives are disabled on the
// transport, so every control RPC dials fresh and sees the schedule armed at
// that moment.
type faultDialer struct {
	mu    sync.Mutex
	sched *chaos.Schedule
	hook  func() // chaos node-fault hook: tears down the victim's data plane
}

func (d *faultDialer) arm(spec string) {
	sched := chaos.MustParse(spec)
	d.mu.Lock()
	d.sched = &sched
	d.mu.Unlock()
}

func (d *faultDialer) heal() {
	d.mu.Lock()
	d.sched = nil
	d.mu.Unlock()
}

func (d *faultDialer) setHook(fn func()) {
	d.mu.Lock()
	d.hook = fn
	d.mu.Unlock()
}

func (d *faultDialer) DialContext(ctx context.Context, network, addr string) (net.Conn, error) {
	var nd net.Dialer
	c, err := nd.DialContext(ctx, network, addr)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	sched, hook := d.sched, d.hook
	d.mu.Unlock()
	if sched == nil {
		return c, nil
	}
	fc := chaos.Wrap(c, *sched, clusterSeed)
	if hook != nil {
		fc.OnNodeFault(hook)
	}
	return fc, nil
}

// testNode is one worker: a streaming hub behind a real TCP listener plus the
// control-plane agent.
type testNode struct {
	t       *testing.T
	id      string
	hub     *stream.Hub
	ln      net.Listener
	agent   *Worker
	runDone chan error
	drained atomic.Bool

	mu     sync.Mutex
	conns  []net.Conn
	killed bool
}

// startNode boots the hub, the accept loop and the agent. bias inflates the
// node's reported session count so placement prefers its peer.
func startNode(t *testing.T, masterURL, id string, bias int, client *http.Client) *testNode {
	t.Helper()
	hub := stream.NewHub(stream.HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go hub.Run()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &testNode{t: t, id: id, hub: hub, ln: ln, runDone: make(chan error, 1)}
	go n.serve()
	n.agent = NewWorker(WorkerConfig{
		ID:        id,
		MasterURL: masterURL,
		Addr:      ln.Addr().String(),
		Load: func() LoadReport {
			return LoadReport{Sessions: hub.Clients() + bias}
		},
		OnDrain: func() {
			n.drained.Store(true)
			hub.Drain(2 * time.Second)
		},
		HTTPClient: client,
		Logf:       t.Logf,
	})
	go func() { n.runDone <- n.agent.Run() }()
	t.Cleanup(n.stop)
	return n
}

func (n *testNode) serve() {
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.killed {
			n.mu.Unlock()
			c.Close()
			continue
		}
		n.conns = append(n.conns, c)
		n.mu.Unlock()
		n.hub.Attach(c, 0, nil)
	}
}

// killData simulates the node dying: data listener gone, live conns cut, hub
// stopped. It is the chaos crash hook for the victim, and every node's final
// teardown. Idempotent.
func (n *testNode) killData() {
	n.mu.Lock()
	if n.killed {
		n.mu.Unlock()
		return
	}
	n.killed = true
	conns := n.conns
	n.mu.Unlock()
	n.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	n.hub.Stop()
}

func (n *testNode) stop() {
	n.agent.Stop()
	select {
	case <-n.runDone:
	case <-time.After(matrixWait):
		n.t.Errorf("worker %s agent did not stop", n.id)
	}
	n.killData()
}

// harness is one matrix cell's world: a master with a fast heartbeat cadence,
// a victim worker whose control link runs under the armed chaos schedule, and
// a clean survivor that placement avoids (load bias) until the victim fails.
type harness struct {
	t        *testing.T
	reg      *obs.Registry
	master   *Master
	srv      *httptest.Server
	dialer   *faultDialer
	victim   *testNode
	survivor *testNode
	httpc    *http.Client // resolver-side control client
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	reg := obs.NewRegistry()
	m := NewMaster(MasterConfig{
		HeartbeatInterval: hbInterval,
		HeartbeatDeadline: hbDeadline,
		Metrics:           reg,
		Logf:              t.Logf,
	})
	go m.Run()
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(func() {
		srv.Close()
		m.Stop()
	})
	dialer := &faultDialer{}
	victimCtl := &http.Client{
		Timeout:   ctlTimeout,
		Transport: &http.Transport{DialContext: dialer.DialContext, DisableKeepAlives: true},
	}
	survivorCtl := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	httpc := &http.Client{
		Timeout:   2 * time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	h := &harness{t: t, reg: reg, master: m, srv: srv, dialer: dialer, httpc: httpc}
	h.victim = startNode(t, srv.URL, "victim", 0, victimCtl)
	dialer.setHook(h.victim.killData)
	h.survivor = startNode(t, srv.URL, "survivor", 10, survivorCtl)
	h.waitState("victim", "alive")
	h.waitState("survivor", "alive")
	return h
}

// state returns a worker's registry state, or "" when deregistered.
func (h *harness) state(id string) string {
	for _, w := range h.master.Workers() {
		if w.ID == id {
			return w.State
		}
	}
	return ""
}

// waitState polls until the worker reaches the wanted state ("" = gone).
func (h *harness) waitState(id, want string) {
	h.t.Helper()
	deadline := time.Now().Add(matrixWait)
	for time.Now().Before(deadline) {
		if h.state(id) == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.t.Fatalf("worker %s never reached state %q (now %q)", id, want, h.state(id))
}

// placements reads the master's placement counter for one worker.
func (h *harness) placements(id string) int64 {
	return h.master.met.placements.With1(id).Value()
}

// startClient runs a reconnecting stream client whose dial resolves through
// the master — the full redirect-reconnect-keyreq path.
func (h *harness) startClient() (*stream.Client, chan error) {
	h.t.Helper()
	res := NewResolver(h.srv.URL)
	res.HTTPClient = h.httpc
	cli := stream.NewReconnectingClient(res.Dial, stream.ReconnectPolicy{
		MaxAttempts: 20,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		IdleTimeout: time.Second,
		Seed:        clusterSeed,
		RedialOnBye: true,
	})
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()
	h.t.Cleanup(func() {
		cli.Stop()
		select {
		case err := <-done:
			if err != nil {
				h.t.Errorf("client Run: %v", err)
			}
		case <-time.After(matrixWait):
			h.t.Error("client did not stop")
		}
		h.httpc.CloseIdleConnections()
	})
	return cli, done
}

// waitClientFrames polls until the client has decoded at least n frames.
func waitClientFrames(t *testing.T, cli *stream.Client, n int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if cli.Report().Frames >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("client stuck at %d frames, want %d", cli.Report().Frames, n)
}

// --- placement column ------------------------------------------------------

// TestClusterMatrixPlacement: node faults before a session is placed. A dead
// victim means re-placement on the survivor; delayed heartbeats keep the
// victim placeable.
func TestClusterMatrixPlacement(t *testing.T) {
	cells := []struct {
		kind   string
		spec   string
		expect string // re-place | tolerate
	}{
		{"crash", "crash@0", "re-place"},
		{"mpart", "mpart@0", "re-place"},
		{"hbdelay", "hbdelay@0:40ms", "tolerate"},
	}
	for _, cell := range cells {
		t.Run(cell.kind, func(t *testing.T) {
			h := newHarness(t)
			h.dialer.arm(cell.spec)

			switch cell.expect {
			case "re-place":
				// The fault severs the control link: the victim misses its
				// deadline and placement fails over to the loaded survivor.
				h.waitState("victim", "dead")
				if n := h.reg.Counter(NameClusterWorkerFailures).Value(); n != 1 {
					t.Errorf("worker failures = %d, want 1", n)
				}
				cli, _ := h.startClient()
				waitClientFrames(t, cli, 10, matrixWait)
				if got := h.placements("survivor"); got < 1 {
					t.Errorf("survivor placements = %d, want >= 1", got)
				}
				if got := h.placements("victim"); got != 0 {
					t.Errorf("victim placements = %d, want 0 (it is dead)", got)
				}
			case "tolerate":
				// Delayed heartbeats still land inside the deadline: after a
				// full deadline window the victim must remain alive and keep
				// winning placement over the loaded survivor.
				time.Sleep(hbDeadline + 100*time.Millisecond)
				if got := h.state("victim"); got != "alive" {
					t.Fatalf("victim state under hbdelay = %q, want alive", got)
				}
				cli, _ := h.startClient()
				waitClientFrames(t, cli, 10, matrixWait)
				if got := h.placements("victim"); got < 1 {
					t.Errorf("victim placements = %d, want >= 1", got)
				}
			}
		})
	}
}

// --- steady-streaming column ----------------------------------------------

// TestClusterMatrixSteady: node faults under an established stream. A crash
// forces redirect-reconnect-keyreq onto the survivor; a control-plane
// partition must NOT disturb the data plane (the paper's planes are
// independent) and the victim revives by re-registering after the heal.
func TestClusterMatrixSteady(t *testing.T) {
	cells := []struct {
		kind   string
		spec   string
		expect string // resume | tolerate-revive | tolerate
	}{
		{"crash", "crash@0", "resume"},
		{"mpart", "mpart@0", "tolerate-revive"},
		{"hbdelay", "hbdelay@0:40ms", "tolerate"},
	}
	for _, cell := range cells {
		t.Run(cell.kind, func(t *testing.T) {
			h := newHarness(t)
			cli, _ := h.startClient()
			waitClientFrames(t, cli, 10, matrixWait)
			before := cli.Report()
			h.dialer.arm(cell.spec)

			switch cell.expect {
			case "resume":
				// The crash hook kills the data plane: the client's conn dies,
				// it redials through the master and is re-placed.
				h.waitState("victim", "dead")
				waitClientFrames(t, cli, before.Frames+40, matrixWait)
				rep := cli.Report()
				if rep.Redirects < 1 {
					t.Errorf("redirects = %d, want >= 1 (%+v)", rep.Redirects, rep)
				}
				if rep.Reconnects < 1 {
					t.Errorf("reconnects = %d, want >= 1 (%+v)", rep.Reconnects, rep)
				}
				if got := h.placements("survivor"); got < 1 {
					t.Errorf("survivor placements = %d, want >= 1", got)
				}
			case "tolerate-revive":
				// Control partition only: the master declares the victim dead,
				// but the stream keeps flowing untouched...
				h.waitState("victim", "dead")
				waitClientFrames(t, cli, before.Frames+40, matrixWait)
				if rep := cli.Report(); rep.Reconnects != before.Reconnects {
					t.Errorf("control partition disturbed the stream: %+v", rep)
				}
				// ...and after the heal the agent's refused heartbeat makes it
				// re-register on its own.
				h.dialer.heal()
				h.waitState("victim", "alive")
			case "tolerate":
				time.Sleep(hbDeadline + 100*time.Millisecond)
				if got := h.state("victim"); got != "alive" {
					t.Fatalf("victim state under hbdelay = %q, want alive", got)
				}
				waitClientFrames(t, cli, before.Frames+40, matrixWait)
				if rep := cli.Report(); rep.Reconnects != before.Reconnects {
					t.Errorf("hbdelay disturbed the stream: %+v", rep)
				}
			}
		})
	}
}

// --- drain (scale-down) column --------------------------------------------

// TestClusterMatrixDrain: node faults against an in-flight drain order. A
// crashed node can never complete its drain — the deadline evicts it; a
// healed partition and delayed heartbeats both deliver the order late but
// orderly (drain, deregister, agent exit).
func TestClusterMatrixDrain(t *testing.T) {
	cells := []struct {
		kind   string
		spec   string
		expect string // evict | drain
	}{
		{"crash", "crash@0", "evict"},
		{"mpart", "mpart@0", "drain"},
		{"hbdelay", "hbdelay@0:40ms", "drain"},
	}
	for _, cell := range cells {
		t.Run(cell.kind, func(t *testing.T) {
			h := newHarness(t)
			// Arm first so the order can never slip through on a clean beat:
			// the cell is "fault wins the race", deterministically.
			h.dialer.arm(cell.spec)
			if err := h.master.DrainWorker("victim"); err != nil {
				t.Fatal(err)
			}
			if cell.kind == "mpart" {
				time.Sleep(partitionWindow)
				h.dialer.heal()
			}

			switch cell.expect {
			case "evict":
				// The order is undeliverable: the victim is declared dead and
				// keeps its (dead) record — it never drained.
				h.waitState("victim", "dead")
				if h.victim.drained.Load() {
					t.Error("crashed victim ran its drain hook")
				}
				if n := h.reg.Counter(NameClusterWorkerFailures).Value(); n != 1 {
					t.Errorf("worker failures = %d, want 1", n)
				}
			case "drain":
				// The order rides a (late) heartbeat: hub drained, record gone,
				// agent exited cleanly.
				h.waitState("victim", "")
				if !h.victim.drained.Load() {
					t.Error("victim never ran its drain hook")
				}
				select {
				case err := <-h.victim.runDone:
					if err != nil {
						t.Errorf("agent Run after drain: %v", err)
					}
					h.victim.runDone <- nil // keep stop() from blocking
				case <-time.After(matrixWait):
					t.Error("agent did not exit after drain")
				}
			}
			if n := h.reg.Counter(NameClusterDrains).Value(); n != 1 {
				t.Errorf("drain orders = %d, want 1", n)
			}
		})
	}
}

// --- migration column ------------------------------------------------------

// TestClusterMatrixMigration: a live session rides out a scale-down. The
// orderly path is drain → bye → redial-through-master → survivor → keyframe
// resync; a crashed node skips the goodbye but the client still lands on the
// survivor through its retry budget (reset by the redirect).
func TestClusterMatrixMigration(t *testing.T) {
	cells := []struct {
		kind   string
		spec   string
		expect string // resume-crash | resume-bye
	}{
		{"crash", "crash@0", "resume-crash"},
		{"mpart", "mpart@0", "resume-bye"},
		{"hbdelay", "hbdelay@0:40ms", "resume-bye"},
	}
	for _, cell := range cells {
		t.Run(cell.kind, func(t *testing.T) {
			h := newHarness(t)
			cli, _ := h.startClient()
			waitClientFrames(t, cli, 10, matrixWait)
			before := cli.Report()
			h.dialer.arm(cell.spec)
			if err := h.master.DrainWorker("victim"); err != nil {
				t.Fatal(err)
			}
			if cell.kind == "mpart" {
				time.Sleep(partitionWindow)
				h.dialer.heal()
			}

			switch cell.expect {
			case "resume-crash":
				// No goodbye: the conn just dies. The client redials, the
				// master (which evicts the victim) re-places it.
				h.waitState("victim", "dead")
			case "resume-bye":
				// Orderly: the victim drains (msgBye), deregisters, exits.
				h.waitState("victim", "")
				if !h.victim.drained.Load() {
					t.Error("victim never drained")
				}
			}

			// Either way the session must resume on the survivor with zero
			// loss: frames advance and the dial was a redirect.
			waitClientFrames(t, cli, before.Frames+40, matrixWait)
			rep := cli.Report()
			if rep.Redirects < 1 {
				t.Errorf("redirects = %d, want >= 1 (%+v)", rep.Redirects, rep)
			}
			if got := h.placements("survivor"); got < 1 {
				t.Errorf("survivor placements = %d, want >= 1", got)
			}
		})
	}
}
