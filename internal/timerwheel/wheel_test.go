package timerwheel

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable monotonic clock for deterministic wheel tests.
type fakeClock struct{ now atomic.Int64 }

func (c *fakeClock) Now() time.Duration      { return time.Duration(c.now.Load()) }
func (c *fakeClock) Set(d time.Duration)     { c.now.Store(int64(d)) }
func (c *fakeClock) Advance(d time.Duration) { c.now.Add(int64(d)) }

func TestScheduleFiresInOrderAcrossTicks(t *testing.T) {
	clk := &fakeClock{}
	w := newWheel(Config{Slots: 8, Tick: time.Millisecond, Now: clk.Now})
	var fired []int
	mk := func(i int) *Timer {
		tm := &Timer{}
		tm.Fn = func() { fired = append(fired, i) }
		return tm
	}
	t3 := mk(3)
	t1 := mk(1)
	t2 := mk(2)
	w.Schedule(t3, 30*time.Millisecond)
	w.Schedule(t1, 10*time.Millisecond)
	w.Schedule(t2, 20*time.Millisecond)
	if got := w.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	clk.Set(11 * time.Millisecond)
	w.Advance(clk.Now())
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("after 11ms fired = %v, want [1]", fired)
	}
	clk.Set(35 * time.Millisecond)
	w.Advance(clk.Now())
	if len(fired) != 3 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("after 35ms fired = %v, want [1 2 3]", fired)
	}
	if got := w.Len(); got != 0 {
		t.Fatalf("Len after all fired = %d, want 0", got)
	}
}

// A timer whose slot hashes onto a visited tick but whose deadline is a full
// wheel lap away must not fire early.
func TestFarDeadlineSurvivesSlotCollision(t *testing.T) {
	clk := &fakeClock{}
	w := newWheel(Config{Slots: 8, Tick: time.Millisecond, Now: clk.Now})
	var near, far bool
	tn := &Timer{Fn: func() { near = true }}
	tf := &Timer{Fn: func() { far = true }}
	w.Schedule(tn, 2*time.Millisecond)
	// 2ms + 8 slots × 1ms = same slot, one lap later.
	w.Schedule(tf, 10*time.Millisecond)
	clk.Set(3 * time.Millisecond)
	w.Advance(clk.Now())
	if !near || far {
		t.Fatalf("near=%v far=%v after 3ms, want near only", near, far)
	}
	clk.Set(11 * time.Millisecond)
	w.Advance(clk.Now())
	if !far {
		t.Fatal("far timer never fired after its deadline")
	}
}

// A deadline landing mid-tick must fire on the first advance at or past it,
// even when the advance that covers its floor tick runs early in that tick's
// window. Floor bucketing fails this: the cursor passes the slot with the
// timer not yet due, stranding it for a full wheel lap (Slots × Tick late —
// ~512ms at the hub's defaults, which throttled paced viewers to a crawl).
func TestMidTickDeadlineNotStrandedForALap(t *testing.T) {
	clk := &fakeClock{}
	w := newWheel(Config{Slots: 8, Tick: time.Millisecond, Now: clk.Now})
	fired := false
	tm := &Timer{Fn: func() { fired = true }}
	// Due at 2.5ms: floor tick 2, ceil tick 3.
	w.Schedule(tm, 2500*time.Microsecond)
	// Advance early in tick 2's window — before the deadline.
	clk.Set(2100 * time.Microsecond)
	w.Advance(clk.Now())
	if fired {
		t.Fatal("timer fired 400µs before its deadline")
	}
	// First advance past the deadline must fire it, not a lap later.
	clk.Set(3100 * time.Microsecond)
	w.Advance(clk.Now())
	if !fired {
		t.Fatal("mid-tick deadline stranded past its due advance (one-lap stall)")
	}
}

func TestPastDeadlineFiresOnNextAdvance(t *testing.T) {
	clk := &fakeClock{}
	clk.Set(100 * time.Millisecond)
	w := newWheel(Config{Slots: 8, Tick: time.Millisecond, Now: clk.Now})
	fired := false
	tm := &Timer{Fn: func() { fired = true }}
	w.Schedule(tm, -5*time.Millisecond)
	clk.Advance(time.Millisecond)
	w.Advance(clk.Now())
	if !fired {
		t.Fatal("past-deadline timer did not fire on the next advance")
	}
}

func TestCancelUnlinksAndReschedulingMoves(t *testing.T) {
	clk := &fakeClock{}
	w := newWheel(Config{Slots: 16, Tick: time.Millisecond, Now: clk.Now})
	n := 0
	tm := &Timer{Fn: func() { n++ }}
	w.Schedule(tm, 5*time.Millisecond)
	if !w.Cancel(tm) {
		t.Fatal("Cancel of a linked timer returned false")
	}
	if w.Cancel(tm) {
		t.Fatal("second Cancel returned true")
	}
	clk.Set(10 * time.Millisecond)
	w.Advance(clk.Now())
	if n != 0 {
		t.Fatalf("cancelled timer fired %d times", n)
	}
	// Reschedule moves a linked timer instead of double-linking it.
	w.Schedule(tm, 5*time.Millisecond)  // due at 15ms
	w.Schedule(tm, 20*time.Millisecond) // moved to 30ms
	if got := w.Len(); got != 1 {
		t.Fatalf("Len after reschedule = %d, want 1", got)
	}
	clk.Set(16 * time.Millisecond)
	w.Advance(clk.Now())
	if n != 0 {
		t.Fatalf("moved timer fired at its old deadline (n=%d)", n)
	}
	clk.Set(31 * time.Millisecond)
	w.Advance(clk.Now())
	if n != 1 {
		t.Fatalf("moved timer fired %d times, want 1", n)
	}
}

func TestOnFireReportsLag(t *testing.T) {
	clk := &fakeClock{}
	var lag time.Duration
	w := newWheel(Config{Slots: 8, Tick: time.Millisecond, Now: clk.Now,
		OnFire: func(l time.Duration) { lag = l }})
	tm := &Timer{Fn: func() {}}
	w.Schedule(tm, 2*time.Millisecond)
	clk.Set(5 * time.Millisecond)
	w.Advance(clk.Now())
	if lag != 3*time.Millisecond {
		t.Fatalf("lag = %v, want 3ms", lag)
	}
}

// The live wheel (goroutine started, real clock) fires a real deadline.
func TestLiveWheelFires(t *testing.T) {
	w := New(Config{Slots: 64, Tick: time.Millisecond})
	defer w.Stop()
	done := make(chan struct{})
	tm := &Timer{Fn: func() { close(done) }}
	w.Schedule(tm, 5*time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("live wheel never fired a 5ms timer")
	}
}

// Stop drops pending timers and terminates the goroutine.
func TestStopDropsPending(t *testing.T) {
	w := New(Config{Slots: 64, Tick: time.Millisecond})
	var fired atomic.Bool
	tm := &Timer{Fn: func() { fired.Store(true) }}
	w.Schedule(tm, time.Hour)
	w.Stop()
	if fired.Load() {
		t.Fatal("hour-long timer fired during Stop")
	}
}

// Concurrent Schedule against a live wheel must not race or lose timers.
func TestConcurrentScheduleAllFire(t *testing.T) {
	w := New(Config{Slots: 256, Tick: time.Millisecond})
	defer w.Stop()
	const n = 200
	var fired atomic.Int64
	var wg sync.WaitGroup
	timers := make([]Timer, n)
	for i := range timers {
		timers[i].Fn = func() { fired.Add(1) }
	}
	for i := range timers {
		wg.Add(1)
		go func(tm *Timer, i int) {
			defer wg.Done()
			w.Schedule(tm, time.Duration(i%20)*time.Millisecond)
		}(&timers[i], i)
	}
	wg.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for fired.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("fired %d of %d timers", fired.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// The schedule→advance→fire hot path must not allocate: the engine arms one
// pacing deadline per sent frame for every paced viewer, so an allocation
// here is an allocation per frame per session.
func TestScheduleFireHotPathZeroAlloc(t *testing.T) {
	clk := &fakeClock{}
	w := newWheel(Config{Slots: 64, Tick: time.Millisecond, Now: clk.Now})
	tm := &Timer{Fn: func() {}}
	allocs := testing.AllocsPerRun(1000, func() {
		w.Schedule(tm, 2*time.Millisecond)
		clk.Advance(3 * time.Millisecond)
		w.Advance(clk.Now())
	})
	if allocs != 0 {
		t.Fatalf("schedule/fire hot path allocates %.1f per run, want 0", allocs)
	}
}
