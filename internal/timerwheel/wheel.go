// Package timerwheel provides a hashed timer wheel: many timers, one
// goroutine, O(1) schedule and cancel, zero allocations on the hot path.
//
// The hub uses it to schedule every viewer session's ODR pacing deadline.
// The naive shape — one blocked waiter per paced session — costs a goroutine
// (plus a runtime timer) per viewer; the wheel replaces all of them with a
// single ticker goroutine walking an array of intrusive timer lists. Timers
// are caller-owned (embed a Timer, never heap-allocate per schedule), so the
// schedule/fire path performs no allocation at all; see the AllocsPerRun pin
// in wheel_test.go.
//
// Clocks are injected: the wheel reads time exclusively through Config.Now,
// a monotonic duration since some epoch. The hub passes its realrt domain
// clock so wheel deadlines live on the exact same epoch-aligned timeline as
// every other hub component.
package timerwheel

import (
	"sync"
	"time"
)

// Timer is one schedulable deadline, owned by the caller and linked
// intrusively into a wheel slot. The zero value is ready to use once Fn is
// set.
//
// Contract: after a Timer has been handed to Schedule it must not be
// scheduled again until either its Fn has been invoked or Cancel returned
// true. Violating this while the timer sits on a fired-but-not-yet-run chain
// corrupts the wheel's lists.
type Timer struct {
	// Fn runs on the wheel goroutine when the deadline passes. It must not
	// block for long — every timer behind it waits — and it may not call
	// Schedule on its own Timer reentrantly (submit work elsewhere instead).
	Fn func()

	deadline   time.Duration
	next, prev *Timer
	slot       int32 // slot index while linked; -1 when unlinked
	linked     bool
}

// Config configures a Wheel.
type Config struct {
	// Slots is the number of wheel slots, rounded up to a power of two
	// (default 512).
	Slots int
	// Tick is the wheel granularity (default 1ms): a deadline fires at most
	// one tick plus scheduling lag after it is due.
	Tick time.Duration
	// Now returns the current time as a monotonic duration since the
	// caller's epoch (default: process-start wall clock). The hub passes its
	// domain clock here so deadlines share the hub epoch.
	Now func() time.Duration
	// OnFire, when non-nil, observes each fired timer's lag (now − deadline)
	// from the wheel goroutine, before Fn runs.
	OnFire func(lag time.Duration)
}

// Wheel is a hashed timer wheel driven by one goroutine.
type Wheel struct {
	tick   time.Duration
	mask   int64
	now    func() time.Duration
	onFire func(lag time.Duration)

	mu       sync.Mutex
	slots    []*Timer // head of each slot's doubly-linked list
	lastTick int64    // newest tick index already advanced through
	count    int

	kick     chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New starts a wheel and its goroutine. Stop it with Stop.
func New(cfg Config) *Wheel {
	w := newWheel(cfg)
	w.wg.Add(1)
	go w.run()
	return w
}

// newWheel builds a wheel without starting its goroutine; unit tests drive
// it deterministically through Advance.
func newWheel(cfg Config) *Wheel {
	n := cfg.Slots
	if n <= 0 {
		n = 512
	}
	// Round up to a power of two so slot hashing is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	tick := cfg.Tick
	if tick <= 0 {
		tick = time.Millisecond
	}
	now := cfg.Now
	if now == nil {
		epoch := time.Now()
		now = func() time.Duration { return time.Since(epoch) }
	}
	w := &Wheel{
		tick:   tick,
		mask:   int64(p - 1),
		now:    now,
		onFire: cfg.OnFire,
		slots:  make([]*Timer, p),
		kick:   make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	w.lastTick = int64(now() / tick)
	return w
}

// Len returns the number of scheduled timers.
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.count
}

// Schedule arms t to fire delay from now (a delay ≤ 0 fires on the next
// advance). Rescheduling a still-linked timer moves it. O(1), no allocation.
func (w *Wheel) Schedule(t *Timer, delay time.Duration) {
	deadline := w.now() + delay
	w.mu.Lock()
	if t.linked {
		w.unlinkLocked(t)
	}
	t.deadline = deadline
	// Ceiling bucketing: hash into the first tick whose boundary is at or
	// past the deadline. By the time the advance cursor reaches that tick,
	// now >= tick boundary >= deadline, so the timer is guaranteed due on
	// the first visit. Floor bucketing would strand a mid-tick deadline for
	// a full lap whenever the advance lands early in its tick window.
	tk := int64((deadline + w.tick - 1) / w.tick)
	if tk <= w.lastTick {
		// Already-due (or past) deadline: hash into the next tick so the
		// advance loop visits it; the deadline check fires it immediately.
		tk = w.lastTick + 1
	}
	w.linkLocked(t, int32(tk&w.mask))
	wasIdle := w.count == 1
	w.mu.Unlock()
	if wasIdle {
		select {
		case w.kick <- struct{}{}:
		default:
		}
	}
}

// Cancel unlinks t if it is still scheduled; it returns false when t was not
// linked (never scheduled, already fired, or sitting on a fired chain about
// to run).
func (w *Wheel) Cancel(t *Timer) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !t.linked {
		return false
	}
	w.unlinkLocked(t)
	return true
}

// Stop halts the wheel goroutine. Pending timers are dropped without firing.
func (w *Wheel) Stop() {
	w.stopOnce.Do(func() { close(w.stopCh) })
	w.wg.Wait()
}

func (w *Wheel) linkLocked(t *Timer, slot int32) {
	head := w.slots[slot]
	t.slot = slot
	t.prev = nil
	t.next = head
	if head != nil {
		head.prev = t
	}
	w.slots[slot] = t
	t.linked = true
	w.count++
}

func (w *Wheel) unlinkLocked(t *Timer) {
	if t.prev != nil {
		t.prev.next = t.next
	} else {
		w.slots[t.slot] = t.next
	}
	if t.next != nil {
		t.next.prev = t.prev
	}
	t.next, t.prev = nil, nil
	t.slot = -1
	t.linked = false
	w.count--
}

// run sleeps a tick at a time while timers are pending and parks when the
// wheel is empty; a Schedule on an idle wheel kicks it awake.
func (w *Wheel) run() {
	defer w.wg.Done()
	sleep := time.NewTimer(w.tick)
	defer sleep.Stop()
	for {
		w.mu.Lock()
		idle := w.count == 0
		if idle {
			// Keep the cursor current while idle so a future Schedule's
			// next-tick clamp stays tight.
			if tk := int64(w.now() / w.tick); tk > w.lastTick {
				w.lastTick = tk
			}
		}
		w.mu.Unlock()
		if idle {
			select {
			case <-w.kick:
			case <-w.stopCh:
				return
			}
			continue
		}
		sleep.Reset(w.tick)
		select {
		case <-sleep.C:
		case <-w.kick:
			// A timer landed on a previously idle wheel (or raced the park
			// check); advance now — it may already be due.
			if !sleep.Stop() {
				<-sleep.C
			}
		case <-w.stopCh:
			return
		}
		w.Advance(w.now())
	}
}

// Advance fires every timer whose deadline is ≤ now. The wheel goroutine
// calls it once per tick; tests may drive an un-started wheel through it
// directly. Fns run outside the wheel lock.
func (w *Wheel) Advance(now time.Duration) {
	nowTick := int64(now / w.tick)
	var fired, firedTail *Timer
	w.mu.Lock()
	if w.count > 0 && nowTick > w.lastTick {
		from, to := w.lastTick+1, nowTick
		if to-from >= int64(len(w.slots)) {
			// A full lap (or more) passed: one sweep of every slot sees all
			// candidates, so skip the redundant wraps.
			from = to - int64(len(w.slots)) + 1
		}
		for tk := from; tk <= to; tk++ {
			t := w.slots[tk&w.mask]
			for t != nil {
				next := t.next
				if t.deadline <= now {
					w.unlinkLocked(t)
					// Chain fired timers through their (now free) next
					// pointers — no allocation — appending at the tail so
					// they run in tick (deadline) order.
					if firedTail != nil {
						firedTail.next = t
					} else {
						fired = t
					}
					firedTail = t
				}
				t = next
			}
		}
	}
	if nowTick > w.lastTick {
		w.lastTick = nowTick
	}
	w.mu.Unlock()
	for fired != nil {
		t := fired
		fired = t.next
		t.next = nil
		if w.onFire != nil {
			w.onFire(now - t.deadline)
		}
		t.Fn()
	}
}
