package pipeline

import (
	"time"

	"odr/internal/memmodel"
	"odr/internal/powermodel"
	"odr/internal/sim"
)

// GroupConfig describes a server-consolidation run: several sessions
// co-located on one cloud server, time-sharing its GPU and encode cores and
// contending in DRAM. This extends the paper's single-session evaluation to
// the resource-efficiency question its introduction motivates: how many
// cloud-gaming sessions fit on a server at QoS under each regulation policy?
type GroupConfig struct {
	// Sessions are the per-session pipeline configurations (each with its
	// own seed; typically the same benchmark/policy).
	Sessions []Config
	// GPUCapacity is the number of full GPUs available (1.0 = one GPU
	// time-shared across sessions).
	GPUCapacity float64
	// CPUCores is the number of cores available to the copy/encode/logic
	// work of all sessions together.
	CPUCores float64
	// MemConfig/PowerConfig configure the shared server models.
	MemConfig   memmodel.Config
	PowerConfig powermodel.Config
}

// GroupResult carries the per-session results plus server-level accounting.
type GroupResult struct {
	Per []*Result
	// ServerPowerWatts is the whole server's average wall power.
	ServerPowerWatts float64
	// ServerEnergyJoules is the total energy over the measured span.
	ServerEnergyJoules float64
	// GPULoad and CPULoad are the average demanded load (in GPUs / cores).
	GPULoad float64
	CPULoad float64
}

// RunGroup executes the co-located sessions in a single simulation with
// shared DRAM, GPU and CPU capacity, and returns per-session results plus
// server-level power.
func RunGroup(gc GroupConfig) *GroupResult {
	if len(gc.Sessions) == 0 {
		return &GroupResult{}
	}
	if gc.GPUCapacity <= 0 {
		gc.GPUCapacity = 1
	}
	if gc.CPUCores <= 0 {
		gc.CPUCores = 4
	}
	env := sim.NewEnv()
	states := make([]*pipelineState, len(gc.Sessions))
	for i, cfg := range gc.Sessions {
		states[i] = build(cfg, env)
		states[i].spawnStages()
	}
	if gc.MemConfig.IPCPeak == 0 {
		gc.MemConfig.IPCPeak = gc.Sessions[0].Workload.CPUIPC
	}
	mem := memmodel.New(gc.MemConfig)
	power := powermodel.New(gc.PowerConfig)

	var gpuLoadSum, cpuLoadSum float64
	loadSamples := 0

	env.Spawn("group-monitor", func(p *sim.Proc) {
		const win = 100 * time.Millisecond
		const gapEvery = 5
		type prev struct {
			rendered, encoded       int64
			gpuBusy, cpuBusy        time.Duration
			gpuDemand, cpuDemand    time.Duration
			gapRendered, gapDisplay int64
		}
		last := make([]prev, len(states))
		tick := 0
		for {
			p.Sleep(win)
			warm := false
			for _, st := range states {
				if !st.collecting && p.Now() >= st.cfg.Warmup {
					st.collecting = true
					st.startBytes = st.link.SentBytes()
					warm = true
				}
			}
			_ = warm
			// Aggregate activity and load across sessions, plus the
			// demand-weighted GPU power intensity for mixed-benchmark
			// groups. Busy time (which
			// includes the time-sharing stretch) drives the oversubscription
			// factor — this is the physical discipline: the sum of raw GPU
			// seconds delivered per second can never exceed the capacity.
			// Demand (raw service time) is reported as utilization.
			var act memmodel.Activity
			var gpuBusy, cpuBusy float64
			var gpuLoad, cpuLoad float64
			var intensityWeight, intensitySum float64
			for i, st := range states {
				rD := st.rendered - last[i].rendered
				eD := st.encoded - last[i].encoded
				last[i].rendered, last[i].encoded = st.rendered, st.encoded
				act.RenderFPS += float64(rD) / win.Seconds()
				act.CopyFPS += float64(eD) / win.Seconds()
				act.EncodeFPS += float64(eD) / win.Seconds()
				if st.cfg.RawFrameBytes > act.RawFrameBytes {
					act.RawFrameBytes = st.cfg.RawFrameBytes
				}
				gB := st.gpuBusy - last[i].gpuBusy
				cB := st.cpuBusy - last[i].cpuBusy
				last[i].gpuBusy, last[i].cpuBusy = st.gpuBusy, st.cpuBusy
				gpuBusy += gB.Seconds() / win.Seconds()
				cpuBusy += cB.Seconds() / win.Seconds()
				gD := st.gpuDemand - last[i].gpuDemand
				cD := st.cpuDemand - last[i].cpuDemand
				last[i].gpuDemand, last[i].cpuDemand = st.gpuDemand, st.cpuDemand
				gpuLoad += gD.Seconds() / win.Seconds()
				cpuLoad += cD.Seconds() / win.Seconds()
				intensitySum += gD.Seconds() * st.cfg.Workload.GPUShare
				intensityWeight += gD.Seconds()
			}
			snap := mem.Update(act)
			// Time-sharing: when busy time exceeds capacity, every session's
			// service times stretch by the oversubscription factor until the
			// delivered (raw) work fits the capacity.
			extGPU := gpuBusy / gc.GPUCapacity
			if extGPU < 1 {
				extGPU = 1
			}
			extCPU := cpuBusy / gc.CPUCores
			if extCPU < 1 {
				extCPU = 1
			}
			anyCollecting := false
			for _, st := range states {
				s := snap
				if st.cfg.DisableContention {
					s = st.mem.Current()
				}
				st.memSnap = s
				st.extGPU = extGPU
				st.extCPU = extCPU
				if st.collecting {
					anyCollecting = true
					st.memMiss.Add(s.MissRate)
					st.memRead.Add(float64(s.ReadTime) / float64(time.Nanosecond))
					st.memIPC.Add(s.IPC)
				}
			}
			if anyCollecting {
				intensity := states[0].cfg.Workload.GPUShare
				if intensityWeight > 0 {
					intensity = intensitySum / intensityWeight
				}
				power.Accumulate(powermodel.Usage{
					CPUUtil:      clamp01(cpuLoad / gc.CPUCores),
					GPUUtil:      clamp01(gpuLoad / gc.GPUCapacity),
					GPUIntensity: intensity,
					TrafficGBs:   snap.TrafficGBs,
				}, win.Seconds())
				gpuLoadSum += gpuLoad
				cpuLoadSum += cpuLoad
				loadSamples++
			}
			tick++
			if tick%gapEvery == 0 {
				span := win.Seconds() * gapEvery
				for i, st := range states {
					renderFPS := float64(st.rendered-last[i].gapRendered) / span
					clientFPS := float64(st.displayed-last[i].gapDisplay) / span
					last[i].gapRendered, last[i].gapDisplay = st.rendered, st.displayed
					st.policy.OnWindow(renderFPS, clientFPS)
					if st.collecting {
						st.gap.AddWindow(renderFPS, clientFPS)
					}
				}
			}
		}
	})

	total := states[0].cfg.Warmup + states[0].cfg.Duration
	env.Run(total)
	for _, st := range states {
		st.policy.Close()
	}
	env.Shutdown()

	out := &GroupResult{
		ServerPowerWatts:   power.AverageWatts(),
		ServerEnergyJoules: power.EnergyJoules(),
	}
	for _, st := range states {
		out.Per = append(out.Per, st.result(total))
	}
	if loadSamples > 0 {
		out.GPULoad = gpuLoadSum / float64(loadSamples)
		out.CPULoad = cpuLoadSum / float64(loadSamples)
	}
	return out
}
