package pipeline

import (
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/memmodel"
	"odr/internal/obs"
	"odr/internal/powermodel"
	"odr/internal/sim"
	"odr/internal/simrt"
)

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func scaleDur(d time.Duration, f float64) time.Duration {
	return time.Duration(float64(d) * f)
}

// rendererProc is the 3D application plus GPU (Fig. 2 step 3). The policy's
// RenderGate supplies the regulation delay (none, interval, RVS feedback, or
// ODR's Mul-Buf1 wait); pending inputs are combined into the next frame.
func (st *pipelineState) rendererProc(p *sim.Proc) {
	w := simrt.NewWaiter(p)
	var seq uint64
	for {
		st.policy.RenderGate(w)
		costs := st.sampler.NextFrame()
		seq++
		f := &frame.Frame{
			Seq:        seq,
			Complexity: costs.Complexity,
			Bytes:      costs.Bytes,
			CostRender: costs.Render,
			CostCopy:   costs.Copy,
			CostEncode: costs.Encode,
			CostDecode: costs.Decode,
		}
		inputs := st.carried
		st.carried = nil
		inputs = append(inputs, st.inputs.ConsumePending()...)
		core.Tag(f, inputs)
		if f.Priority {
			st.priority++
		}
		f.RenderStart = p.Now()
		rt := scaleDur(costs.Render, st.memSnap.GPUFactor*st.extGPU)
		p.Sleep(rt)
		f.RenderEnd = p.Now()
		st.gpuBusy += rt
		st.gpuDemand += scaleDur(costs.Render, st.memSnap.GPUFactor)
		// Game-logic CPU work runs alongside the GPU each frame.
		st.cpuBusy += scaleDur(costs.Render, 0.35)
		st.cpuDemand += scaleDur(costs.Render, 0.35)
		st.rendered++
		st.tr.Span(obs.TrackRender, "render", f.Seq, f.RenderStart, f.RenderEnd)
		if f.Priority {
			st.tr.Instant(obs.TrackRender, "priority-frame", f.Seq, f.RenderStart)
			st.ins.Priority.Inc()
		}
		st.ins.Rendered.Inc()
		st.ins.Render.ObserveDuration(rt)
		if st.collecting {
			st.renderCounter.Tick(p.Now())
			st.renderTimes.Add(msf(rt))
		}
		st.policy.SubmitRendered(w, f)
	}
}

// proxyProc is the server proxy: framebuffer copy (step 4) and video encode
// (step 5). CPU-side service times are scaled by the DRAM-contention factor,
// which is how excessive rendering slows the very steps that bound client
// FPS (§4.3).
func (st *pipelineState) proxyProc(p *sim.Proc) {
	w := simrt.NewWaiter(p)
	for {
		f := st.policy.AcquireForEncode(w)
		if f == nil {
			return
		}
		start := p.Now()
		ct := scaleDur(f.CostCopy, st.memSnap.CPUFactor*st.extCPU)
		p.Sleep(ct)
		f.CopyEnd = p.Now()
		f.EncodeStart = p.Now()
		et := scaleDur(f.CostEncode, st.memSnap.CPUFactor*st.extCPU)
		p.Sleep(et)
		f.EncodeEnd = p.Now()
		st.cpuBusy += ct + et
		st.cpuDemand += scaleDur(f.CostCopy+f.CostEncode, st.memSnap.CPUFactor)
		st.encoded++
		st.tr.Span(obs.TrackProxy, "copy", f.Seq, start, f.CopyEnd)
		st.tr.Span(obs.TrackProxy, "encode", f.Seq, f.EncodeStart, f.EncodeEnd)
		st.ins.Encoded.Inc()
		st.ins.Copy.ObserveDuration(ct)
		st.ins.Encode.ObserveDuration(et)
		if st.collecting {
			st.encodeCounter.Tick(p.Now())
			st.encodeTimes.Add(msf(et))
		}
		st.policy.SubmitEncoded(w, f, start)
	}
}

// networkProc serializes encoded frames onto the path (step 6): bandwidth-
// limited transmission followed by propagation to the client.
func (st *pipelineState) networkProc(p *sim.Proc) {
	w := simrt.NewWaiter(p)
	for {
		f := st.policy.AcquireForSend(w)
		if f == nil {
			return
		}
		txStart := p.Now()
		tx := st.link.TxTime(f.Bytes, st.policy.SendBacklog())
		p.Sleep(tx)
		f.SendEnd = p.Now()
		st.policy.DoneSend(f)
		prop := st.link.PropDelay()
		st.tr.Span(obs.TrackNetwork, "tx", f.Seq, txStart, f.SendEnd)
		st.ins.Tx.ObserveDuration(tx + prop)
		if st.collecting {
			st.transTimes.Add(msf(tx + prop))
		}
		fc := f
		st.env.After(prop, func() { st.deliver.PutDrop(fc) })
	}
}

// clientProc decodes (step 7) and displays frames, measures client FPS and
// motion-to-photon latency, and (for RVS) generates the vblank feedback.
func (st *pipelineState) clientProc(p *sim.Proc) {
	for {
		f := st.deliver.Get(p)
		arrive := p.Now()
		p.Sleep(f.CostDecode)
		f.DecodeEnd = p.Now()
		st.tr.Span(obs.TrackClient, "decode", f.Seq, arrive, f.DecodeEnd)
		st.ins.Decode.ObserveDuration(f.DecodeEnd - arrive)
		display, shown := st.policy.DisplayTime(f, f.DecodeEnd)
		if !shown {
			continue
		}
		// Variable-refresh display (FreeSync/G-Sync): the panel refreshes
		// when the frame arrives, as long as the inter-refresh time stays
		// above the panel's minimum (1/VRRMaxHz). Faster arrivals wait for
		// the window to open; there is no tearing and no vblank rounding.
		if st.cfg.VRRMaxHz > 0 {
			minGap := time.Duration(float64(time.Second) / st.cfg.VRRMaxHz)
			if earliest := st.lastDisplay + minGap; display < earliest {
				display = earliest
			}
		}
		f.DecodeEnd = display
		st.displayed++
		st.tr.Instant(obs.TrackClient, "display", f.Seq, display)
		st.ins.Displayed.Inc()
		for _, s := range f.Inputs {
			st.ins.MtP.ObserveDuration(display - s.Issued)
		}
		if st.collecting {
			st.clientCounter.Tick(display)
			if st.lastDisplay > 0 {
				st.interDisplay.Add(msf(display - st.lastDisplay))
			}
			for _, s := range f.Inputs {
				st.mtp.Record(display - s.Issued)
			}
			if len(st.frameTrace) < st.cfg.CollectFrames {
				st.frameTrace = append(st.frameTrace, *f)
			}
		}
		st.lastDisplay = display
	}
}

// inputProc models the user: Poisson-arriving inputs issued at the client
// and delivered to the server proxy after the uplink propagation delay.
func (st *pipelineState) inputProc(p *sim.Proc) {
	for {
		p.Sleep(st.sampler.NextInputGap())
		id := st.sampler.NextInputID()
		issued := p.Now()
		st.env.After(st.link.PropDelay(), func() {
			st.inputs.OnInput(id, issued)
			st.tr.Instant(obs.TrackInput, "input", uint64(id), st.dom.Now())
			st.ins.Inputs.Inc()
		})
	}
}

// monitorProc samples activity every 100 ms: it drives the DRAM-contention
// and power models and, on 500 ms boundaries, computes the FPS gap and feeds
// adaptive policies their rate observations.
func (st *pipelineState) monitorProc(p *sim.Proc) {
	const win = 100 * time.Millisecond
	const gapEvery = 5 // 500 ms
	var lastRendered, lastEncoded int64
	var lastGPU, lastCPU time.Duration
	var gapRendered, gapDisplayed int64
	tick := 0
	for {
		p.Sleep(win)
		if !st.collecting && p.Now() >= st.cfg.Warmup {
			st.collecting = true
			st.startBytes = st.link.SentBytes()
		}
		rD := st.rendered - lastRendered
		eD := st.encoded - lastEncoded
		lastRendered, lastEncoded = st.rendered, st.encoded
		act := memmodel.Activity{
			RenderFPS:     float64(rD) / win.Seconds(),
			CopyFPS:       float64(eD) / win.Seconds(),
			EncodeFPS:     float64(eD) / win.Seconds(),
			RawFrameBytes: st.cfg.RawFrameBytes,
		}
		if !st.cfg.DisableContention {
			st.memSnap = st.mem.Update(act)
		}
		gpuD := st.gpuBusy - lastGPU
		cpuD := st.cpuBusy - lastCPU
		lastGPU, lastCPU = st.gpuBusy, st.cpuBusy
		if st.collecting {
			st.memMiss.Add(st.memSnap.MissRate)
			st.memRead.Add(float64(st.memSnap.ReadTime) / float64(time.Nanosecond))
			st.memIPC.Add(st.memSnap.IPC)
			st.power.Accumulate(powermodel.Usage{
				CPUUtil:      clamp01(cpuD.Seconds() / win.Seconds()),
				GPUUtil:      clamp01(gpuD.Seconds() / win.Seconds()),
				GPUIntensity: st.cfg.Workload.GPUShare,
				TrafficGBs:   st.memSnap.TrafficGBs,
			}, win.Seconds())
		}
		tick++
		if tick%gapEvery == 0 {
			span := win.Seconds() * gapEvery
			renderFPS := float64(st.rendered-gapRendered) / span
			clientFPS := float64(st.displayed-gapDisplayed) / span
			gapRendered, gapDisplayed = st.rendered, st.displayed
			st.policy.OnWindow(renderFPS, clientFPS)
			st.ins.RenderFPS.Set(renderFPS)
			st.ins.ClientFPS.Set(clientFPS)
			st.ins.FPSGap.Set(renderFPS - clientFPS)
			if st.collecting {
				st.gap.AddWindow(renderFPS, clientFPS)
			}
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
