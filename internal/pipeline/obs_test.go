package pipeline_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"odr/internal/obs"
	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
)

func odrFactory(fps float64) pipeline.PolicyFactory {
	return func(ctx *regulator.Ctx) regulator.Policy {
		return regulator.NewODR(ctx, regulator.ODROptions{TargetFPS: fps})
	}
}

// TestTimelineChromeTrace runs the ODR pipeline with tracing attached and
// parses the Chrome trace-event export the way chrome://tracing would: it
// must contain render/copy/encode/tx/decode spans, display instants, and
// at least one MulBuf-drop and one PriorityFrame instant.
func TestTimelineChromeTrace(t *testing.T) {
	tr := obs.NewTracer(1 << 16)
	b := pictor.IM
	r := pipeline.Run(pipeline.Config{
		Workload: b.Params(),
		Scale:    pictor.Scale(pictor.PrivateCloud, pictor.R720p),
		Net:      pictor.Network(pictor.PrivateCloud),
		Policy:   odrFactory(0),
		Duration: 10 * time.Second,
		Seed:     1,
		Trace:    tr,
	})
	if r.FramesRendered == 0 {
		t.Fatal("no frames rendered")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	spans := map[string]int{}
	instants := map[string]int{}
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			spans[ev.Name]++
			if ev.Dur < 0 {
				t.Fatalf("span %q has negative duration %v", ev.Name, ev.Dur)
			}
		case "i":
			instants[ev.Name]++
		}
	}
	for _, want := range []string{"render", "copy", "encode", "tx", "decode"} {
		if spans[want] == 0 {
			t.Errorf("no %q spans in trace (spans: %v)", want, spans)
		}
	}
	for _, want := range []string{"display", "input", "mulbuf-drop", "priority-frame"} {
		if instants[want] == 0 {
			t.Errorf("no %q instants in trace (instants: %v)", want, instants)
		}
	}
}

// TestTimelinePacerSpans checks that a TargetFPS > 0 run records the
// pacer's requested delays as spans on the pacer track.
func TestTimelinePacerSpans(t *testing.T) {
	tr := obs.NewTracer(1 << 16)
	b := pictor.IM
	pipeline.Run(pipeline.Config{
		Workload: b.Params(),
		Scale:    pictor.Scale(pictor.PrivateCloud, pictor.R720p),
		Net:      pictor.Network(pictor.PrivateCloud),
		Policy:   odrFactory(30), // well under the IM render rate: must pace
		Duration: 5 * time.Second,
		Seed:     1,
		Trace:    tr,
	})
	var paces int
	for _, ev := range tr.Events() {
		if ev.Track == obs.TrackPacer && ev.Name == "pace" && ev.Phase == obs.PhaseSpan {
			paces++
			if ev.Dur <= 0 {
				t.Fatalf("pace span with non-positive duration: %+v", ev)
			}
		}
	}
	if paces == 0 {
		t.Fatal("no pace spans recorded at 30 FPS target")
	}
}

// TestPipelineMetricsRegistry checks the live registry agrees with the
// exact post-run result on the event counters.
func TestPipelineMetricsRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	b := pictor.IM
	r := pipeline.Run(pipeline.Config{
		Workload: b.Params(),
		Scale:    pictor.Scale(pictor.PrivateCloud, pictor.R720p),
		Net:      pictor.Network(pictor.PrivateCloud),
		Policy:   odrFactory(0),
		Duration: 5 * time.Second,
		Seed:     1,
		Metrics:  reg,
	})
	if got := reg.Counter("frames_rendered").Value(); got != r.FramesRendered {
		t.Errorf("frames_rendered counter = %d, result = %d", got, r.FramesRendered)
	}
	if got := reg.Counter("frames_displayed").Value(); got != r.FramesDisplayed {
		t.Errorf("frames_displayed counter = %d, result = %d", got, r.FramesDisplayed)
	}
	if got := reg.Counter("frames_dropped").Value(); got != r.FramesDropped {
		t.Errorf("frames_dropped counter = %d, result = %d", got, r.FramesDropped)
	}
	if got := reg.Counter("priority_frames").Value(); got != r.PriorityFrames {
		t.Errorf("priority_frames counter = %d, result = %d", got, r.PriorityFrames)
	}
	if reg.Histogram("render_us").Count() == 0 {
		t.Error("render_us histogram empty")
	}
	if reg.Histogram("mtp_us").Count() == 0 {
		t.Error("mtp_us histogram empty")
	}
	if reg.Gauge("client_fps").Value() <= 0 {
		t.Error("client_fps gauge never set")
	}
}

// TestTracingDoesNotChangeResults guards the zero-interference property:
// an attached tracer must not alter the simulation outcome.
func TestTracingDoesNotChangeResults(t *testing.T) {
	run := func(tr *obs.Tracer) *pipeline.Result {
		b := pictor.IM
		return pipeline.Run(pipeline.Config{
			Workload: b.Params(),
			Scale:    pictor.Scale(pictor.PrivateCloud, pictor.R720p),
			Net:      pictor.Network(pictor.PrivateCloud),
			Policy:   odrFactory(60),
			Duration: 5 * time.Second,
			Seed:     7,
			Trace:    tr,
		})
	}
	plain := run(nil)
	traced := run(obs.NewTracer(1 << 16))
	if plain.FramesRendered != traced.FramesRendered ||
		plain.FramesDisplayed != traced.FramesDisplayed ||
		plain.FramesDropped != traced.FramesDropped ||
		plain.ClientFPS != traced.ClientFPS {
		t.Fatalf("tracing changed the run: plain=%+v traced=%+v", plain, traced)
	}
}
