package pipeline

import (
	"testing"
	"time"

	"odr/internal/pictor"
)

func groupSessions(k int, pol PolicyFactory, dur time.Duration) []Config {
	var out []Config
	for i := 0; i < k; i++ {
		cfg := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, pol, int64(100+i*17))
		cfg.Duration = dur
		out = append(out, cfg)
	}
	return out
}

func TestRunGroupEmptyIsSafe(t *testing.T) {
	r := RunGroup(GroupConfig{})
	if len(r.Per) != 0 || r.ServerPowerWatts != 0 {
		t.Fatalf("empty group returned %+v", r)
	}
}

func TestRunGroupSingleMatchesShape(t *testing.T) {
	gr := RunGroup(GroupConfig{
		Sessions:    groupSessions(1, odr(60), 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    4,
	})
	if len(gr.Per) != 1 {
		t.Fatalf("sessions = %d", len(gr.Per))
	}
	r := gr.Per[0]
	if r.ClientFPS < 58 || r.ClientFPS > 66 {
		t.Fatalf("single-session ODR60 in group = %.1f FPS", r.ClientFPS)
	}
	if gr.ServerPowerWatts <= 0 {
		t.Fatal("no server power accounted")
	}
	if gr.GPULoad <= 0.1 || gr.GPULoad > 1 {
		t.Fatalf("GPU load = %.2f, want ~0.33", gr.GPULoad)
	}
}

func TestRunGroupGPUTimeSharing(t *testing.T) {
	// Five 60FPS sessions demand ~1.65 GPUs; on one GPU each session's
	// delivered FPS must drop to roughly its fair share, and the delivered
	// raw GPU work must not exceed capacity.
	gr := RunGroup(GroupConfig{
		Sessions:    groupSessions(5, odr(60), 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    8,
	})
	if gr.GPULoad > 1.05 {
		t.Fatalf("delivered GPU work %.2f exceeds capacity", gr.GPULoad)
	}
	for i, r := range gr.Per {
		if r.ClientFPS > 50 {
			t.Fatalf("session %d got %.1f FPS: time-sharing not enforced", i, r.ClientFPS)
		}
		if r.ClientFPS < 25 {
			t.Fatalf("session %d starved at %.1f FPS: sharing not fair", i, r.ClientFPS)
		}
	}
}

func TestRunGroupFitsWithinCapacity(t *testing.T) {
	// Two 60FPS sessions need ~0.66 GPU: both must meet the target.
	gr := RunGroup(GroupConfig{
		Sessions:    groupSessions(2, odr(60), 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    4,
	})
	for i, r := range gr.Per {
		if r.ClientFPS < 58 {
			t.Fatalf("session %d = %.1f FPS despite fitting capacity", i, r.ClientFPS)
		}
	}
}

func TestRunGroupNoRegAbsorbedByCoLocation(t *testing.T) {
	// With three co-located NoReg sessions the GPU is fully consumed, so
	// each session's rendering is throttled by its neighbors — but each
	// still pays its own latency premium versus ODR at the same occupancy.
	nr := RunGroup(GroupConfig{
		Sessions:    groupSessions(3, noReg, 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    4,
	})
	od := RunGroup(GroupConfig{
		Sessions:    groupSessions(3, odr(60), 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    4,
	})
	var nrLat, odLat float64
	for i := range nr.Per {
		nrLat += nr.Per[i].MtP.Mean() / 3
		odLat += od.Per[i].MtP.Mean() / 3
	}
	if odLat >= nrLat {
		t.Fatalf("ODR latency %.1f >= NoReg %.1f at equal occupancy", odLat, nrLat)
	}
	// NoReg's per-session render rate must be throttled near its share.
	for i, r := range nr.Per {
		if r.RenderFPS > 95 {
			t.Fatalf("NoReg session %d renders at %.1f FPS on a 1/3 GPU share", i, r.RenderFPS)
		}
	}
}

func TestRunGroupPartialLoadPowerSavings(t *testing.T) {
	nr := RunGroup(GroupConfig{
		Sessions:    groupSessions(1, noReg, 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    4,
	})
	od := RunGroup(GroupConfig{
		Sessions:    groupSessions(1, odr(60), 15*time.Second),
		GPUCapacity: 1,
		CPUCores:    4,
	})
	if od.ServerPowerWatts >= nr.ServerPowerWatts*0.85 {
		t.Fatalf("ODR server power %.1fW not well below NoReg %.1fW at partial load",
			od.ServerPowerWatts, nr.ServerPowerWatts)
	}
}

func TestVRRDisplayPacing(t *testing.T) {
	// With a 48-144Hz VRR panel, inter-display gaps are floored at ~6.9ms
	// and tearing is impossible (VRR flag set).
	cfg := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(0), 4)
	cfg.Duration = 15 * time.Second
	cfg.VRRMinHz, cfg.VRRMaxHz = 48, 144
	r := Run(cfg)
	if !r.VRR {
		t.Fatal("VRR flag not set")
	}
	minGapMs := 1000.0/144 - 0.01
	if r.InterDisplay.Min() < minGapMs {
		t.Fatalf("inter-display min %.2fms below the 144Hz floor %.2fms", r.InterDisplay.Min(), minGapMs)
	}
	// Pacing to the panel window must not meaningfully change client FPS
	// (ODRMax at ~95 FPS is inside 48-144).
	if r.ClientFPS < 80 {
		t.Fatalf("VRR pacing destroyed throughput: %.1f FPS", r.ClientFPS)
	}
}

func TestVRRReducesDisplayJitter(t *testing.T) {
	base := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(0), 4)
	base.Duration = 15 * time.Second
	fixed := Run(base)
	vrr := base
	vrr.VRRMinHz, vrr.VRRMaxHz = 48, 144
	paced := Run(vrr)
	if paced.InterDisplay.CoV() > fixed.InterDisplay.CoV()+0.02 {
		t.Fatalf("VRR CoV %.3f worse than fixed %.3f", paced.InterDisplay.CoV(), fixed.InterDisplay.CoV())
	}
}

func TestVRRMinHzFieldAccepted(t *testing.T) {
	// VRRMinHz is panel metadata (LFC floor); setting it alone must not
	// enable pacing.
	cfg := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(0), 4)
	cfg.Duration = 5 * time.Second
	cfg.VRRMinHz = 48 // no MaxHz: VRR off
	r := Run(cfg)
	if r.VRR {
		t.Fatal("VRR flag set without VRRMaxHz")
	}
}
