// Package pipeline composes the substrates into the full cloud-3D pipeline
// of the paper's Fig. 2 and runs it in the discrete-event simulator:
//
//	client input ──uplink──▶ [3D app / renderer] ─▶ [server proxy: copy+encode]
//	     ▲                                                      │
//	     └── display ◀─ decode ◀──downlink◀── [network: tx queue]
//
// Each stage is a simulation process; the chosen regulation Policy supplies
// the buffering and gating between the stages. A monitor process feeds the
// DRAM-contention model (whose CPU/GPU slowdowns feed back into stage
// service times) and the power model, and collects the windowed statistics
// that the paper reports: FPS per 200 ms window, FPS gaps, motion-to-photon
// latency, memory behaviour and wall power.
package pipeline

import (
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/memmodel"
	"odr/internal/metrics"
	"odr/internal/netsim"
	"odr/internal/obs"
	"odr/internal/powermodel"
	"odr/internal/regulator"
	"odr/internal/sim"
	"odr/internal/simrt"
	"odr/internal/workload"
)

// PolicyFactory builds the regulation policy once the pipeline has created
// the simulation context.
type PolicyFactory func(*regulator.Ctx) regulator.Policy

// Config describes one simulated run.
type Config struct {
	// Label tags the run in results (defaults to the policy name).
	Label string
	// Workload is the benchmark model and Scale the platform/resolution
	// scaling.
	Workload workload.Params
	Scale    workload.Scale
	// Source, when non-nil, overrides the stochastic sampler as the
	// frame-cost supplier (e.g. a workload.TraceSampler replaying a
	// recorded trace). Workload is still consulted for GPUShare/CPUIPC.
	Source workload.Source
	// Net is the network path model.
	Net netsim.Params
	// Policy builds the regulation policy.
	Policy PolicyFactory
	// Duration is the measured run length; Warmup is simulated first and
	// excluded from all statistics.
	Duration time.Duration
	Warmup   time.Duration
	// Seed makes the run reproducible.
	Seed int64
	// RawFrameBytes is the uncompressed frame size (pixels × 4); it drives
	// the DRAM traffic model. Zero defaults to 720p (1280×720×4).
	RawFrameBytes int
	// RefreshHz is the client display refresh rate used for tearing
	// accounting (default 60).
	RefreshHz float64
	// MemConfig and PowerConfig override model constants (zero = defaults,
	// with IPCPeak taken from the workload's CPUIPC).
	MemConfig   memmodel.Config
	PowerConfig powermodel.Config
	// DisableContention freezes the DRAM model at its uncontended point
	// (ablation: isolates the §6.3 FPS gain that comes from the
	// contention feedback).
	DisableContention bool
	// CollectFrames, when positive, stores copies of the first N displayed
	// frames (after warmup) in Result.FrameTrace for timeline plots
	// (Fig. 4b, Fig. 5).
	CollectFrames int
	// VRRMinHz/VRRMaxHz, when set, give the client a variable-refresh-rate
	// display (FreeSync/G-Sync): frames are displayed on arrival inside the
	// [1/max, 1/min] window, removing tearing without RVS's vblank waits.
	// This is the client-side optimization §5.2 leaves as future work.
	VRRMinHz float64
	VRRMaxHz float64
	// Trace, when non-nil, records every frame's lifecycle against the
	// virtual clock: render/copy/encode/tx/decode spans, input arrivals,
	// display instants, and the ODR events (mulbuf-drop, priority-frame,
	// pace). Export with Trace.WriteChromeTrace for a Fig. 5-style
	// Perfetto timeline. Nil disables tracing at nil-check cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives live O(1) telemetry (the
	// obs.FrameInstruments vocabulary) alongside the exact post-run
	// statistics in Result. Nil disables it at nil-check cost.
	Metrics *obs.Registry
}

func (c *Config) applyDefaults() {
	if c.Duration == 0 {
		c.Duration = 60 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = 2 * time.Second
	}
	if c.RawFrameBytes == 0 {
		c.RawFrameBytes = int(1280 * 720 * 4 * c.Scale.Pixels)
		if c.RawFrameBytes == 0 {
			c.RawFrameBytes = 1280 * 720 * 4
		}
	}
	if c.RefreshHz == 0 {
		c.RefreshHz = 60
	}
	if c.MemConfig.IPCPeak == 0 {
		c.MemConfig.IPCPeak = c.Workload.CPUIPC
	}
}

// Result carries everything the experiments need from one run.
type Result struct {
	Label     string
	Benchmark string

	// Long-run average rates (frames/second).
	RenderFPS float64
	EncodeFPS float64
	ClientFPS float64

	// Windowed (200 ms) rate distributions, for box plots and tails.
	ClientRates metrics.Dist
	RenderRates metrics.Dist

	// FPS gap (render − client) over 500 ms windows.
	GapMean float64
	GapMax  float64

	// Motion-to-photon latency (ms).
	MtP metrics.Dist

	// Per-step processing-time distributions (ms), for Fig. 4.
	RenderTimes metrics.Dist
	EncodeTimes metrics.Dist
	TransTimes  metrics.Dist

	// Inter-display gap distribution (ms) for stutter/tearing analysis.
	InterDisplay metrics.Dist

	// Memory behaviour (time-weighted window averages).
	MissRate   float64
	ReadTimeNs float64
	IPC        float64

	// Power (W, run average) and energy (J).
	PowerWatts   float64
	EnergyJoules float64

	// Frame accounting.
	FramesRendered  int64
	FramesDisplayed int64
	FramesDropped   int64
	PriorityFrames  int64

	// Network.
	BandwidthMbps float64
	MaxQueueBytes int

	// VSynced reports whether the client displayed on vblanks (RVS).
	VSynced bool
	// VRR reports whether the client used a variable-refresh display.
	VRR bool

	// FrameTrace holds the first Config.CollectFrames displayed frames.
	FrameTrace []frame.Frame
}

// pipelineState is the mutable state shared by the stage processes.
type pipelineState struct {
	cfg     Config
	env     *sim.Env
	dom     *simrt.Domain
	sampler workload.Source
	link    *netsim.Link
	policy  regulator.Policy
	inputs  *core.InputBox
	mem     *memmodel.Model
	power   *powermodel.Model

	memSnap memmodel.Snapshot

	deliver *sim.Queue[*frame.Frame]

	// carried holds input stamps whose frames were dropped; they attach to
	// the next rendered frame (the first later frame that reaches the
	// display answers those inputs).
	carried []frame.InputStamp

	// Cumulative busy-time accounting for utilization windows. Busy is
	// wall time consumed (stretched by time-sharing); demand is the raw
	// service time required at current DRAM contention, used by RunGroup
	// to compute oversubscription without the stretch feeding back.
	gpuBusy   time.Duration
	cpuBusy   time.Duration
	gpuDemand time.Duration
	cpuDemand time.Duration

	// Counters (monotone; the monitor takes deltas).
	rendered  int64
	encoded   int64
	displayed int64
	dropped   int64
	priority  int64

	collecting bool // true once warmup has passed

	// extGPU/extCPU are slowdowns imposed by co-located sessions (set by
	// the group monitor in RunGroup; 1.0 in single-session runs).
	extGPU float64
	extCPU float64

	// Instruments (guarded by collecting).
	renderCounter *metrics.RateCounter
	encodeCounter *metrics.RateCounter
	clientCounter *metrics.RateCounter
	gap           metrics.GapStat
	mtp           metrics.LatencyRecorder
	renderTimes   metrics.Dist
	encodeTimes   metrics.Dist
	transTimes    metrics.Dist
	interDisplay  metrics.Dist
	lastDisplay   time.Duration

	memMiss metrics.Dist
	memRead metrics.Dist
	memIPC  metrics.Dist

	frameTrace []frame.Frame

	startBytes int64 // link bytes at collection start

	// Observability (nil-safe: disabled tracer/registry cost a nil check).
	tr  *obs.Tracer
	ins obs.FrameInstruments
}

// sourceFor picks the configured Source or builds the stochastic sampler.
func sourceFor(cfg Config) workload.Source {
	if cfg.Source != nil {
		return cfg.Source
	}
	return workload.NewSampler(cfg.Workload, cfg.Scale, cfg.Seed)
}

// build constructs a pipeline state inside env without spawning processes.
func build(cfg Config, env *sim.Env) *pipelineState {
	cfg.applyDefaults()
	dom := simrt.NewDomain(env)
	st := &pipelineState{
		cfg:           cfg,
		env:           env,
		dom:           dom,
		sampler:       sourceFor(cfg),
		link:          netsim.NewLink(cfg.Net, cfg.Seed+1),
		inputs:        core.NewInputBox(dom),
		mem:           memmodel.New(cfg.MemConfig),
		power:         powermodel.New(cfg.PowerConfig),
		deliver:       sim.NewQueue[*frame.Frame](env, 0),
		renderCounter: metrics.NewRateCounter(200 * time.Millisecond),
		encodeCounter: metrics.NewRateCounter(200 * time.Millisecond),
		clientCounter: metrics.NewRateCounter(200 * time.Millisecond),
		extGPU:        1,
		extCPU:        1,
		tr:            cfg.Trace,
		ins:           obs.NewFrameInstruments(cfg.Metrics),
	}
	st.memSnap = st.mem.Current()

	ctx := &regulator.Ctx{
		Env:    env,
		Dom:    dom,
		Link:   st.link,
		Inputs: st.inputs,
		Buffer: cfg.Net.BufferBytes,
		OnDrop: st.onDrop,
	}
	st.policy = cfg.Policy(ctx)
	// Pacer-delay spans: the regulator's pacer reports every requested
	// sleep; [end, end+d) is exactly when the encode stage idles for it.
	if st.tr != nil {
		if pp, ok := st.policy.(interface{ Pacer() *core.Pacer }); ok {
			tr := st.tr
			pp.Pacer().OnDelay = func(end, d time.Duration) {
				tr.Span(obs.TrackPacer, "pace", 0, end, end+d)
			}
		}
	}
	return st
}

// spawnStages starts the five pipeline stage processes (not the monitor).
func (st *pipelineState) spawnStages() {
	st.env.Spawn("renderer", st.rendererProc)
	st.env.Spawn("proxy", st.proxyProc)
	st.env.Spawn("network", st.networkProc)
	st.env.Spawn("client", st.clientProc)
	st.env.Spawn("input", st.inputProc)
}

// Run executes one configured simulation and returns its result.
func Run(cfg Config) *Result {
	env := sim.NewEnv()
	st := build(cfg, env)
	st.spawnStages()
	env.Spawn("monitor", st.monitorProc)

	total := st.cfg.Warmup + st.cfg.Duration
	env.Run(total)
	st.policy.Close()
	env.Shutdown()

	return st.result(total)
}

// onDrop records a dropped frame and carries its inputs forward.
func (st *pipelineState) onDrop(f *frame.Frame) {
	st.dropped++
	st.ins.Dropped.Inc()
	st.tr.Instant(obs.TrackRender, "mulbuf-drop", f.Seq, st.dom.Now())
	if len(f.Inputs) > 0 {
		st.carried = append(st.carried, f.Inputs...)
	}
}

func (st *pipelineState) result(end time.Duration) *Result {
	st.renderCounter.Flush(end)
	st.encodeCounter.Flush(end)
	st.clientCounter.Flush(end)
	span := st.cfg.Duration
	r := &Result{
		Label:           st.cfg.Label,
		Benchmark:       st.cfg.Workload.Name,
		RenderFPS:       float64(st.renderCounter.Total()) / span.Seconds(),
		EncodeFPS:       float64(st.encodeCounter.Total()) / span.Seconds(),
		ClientFPS:       float64(st.clientCounter.Total()) / span.Seconds(),
		ClientRates:     *st.clientCounter.Rates(),
		RenderRates:     *st.renderCounter.Rates(),
		GapMean:         st.gap.Mean(),
		GapMax:          st.gap.Max(),
		MtP:             *st.mtp.Dist(),
		RenderTimes:     st.renderTimes,
		EncodeTimes:     st.encodeTimes,
		TransTimes:      st.transTimes,
		InterDisplay:    st.interDisplay,
		MissRate:        st.memMiss.Mean(),
		ReadTimeNs:      st.memRead.Mean(),
		IPC:             st.memIPC.Mean(),
		PowerWatts:      st.power.AverageWatts(),
		EnergyJoules:    st.power.EnergyJoules(),
		FramesRendered:  st.rendered,
		FramesDisplayed: st.displayed,
		FramesDropped:   st.dropped,
		PriorityFrames:  st.priority,
		BandwidthMbps:   float64(st.link.SentBytes()-st.startBytes) * 8 / 1e6 / span.Seconds(),
		FrameTrace:      st.frameTrace,
	}
	if r.Label == "" {
		r.Label = st.policy.Name()
	}
	if _, ok := st.policy.(*regulator.RVS); ok {
		r.VSynced = true
	}
	if b, ok := st.policy.(regulator.MaxBacklogger); ok {
		r.MaxQueueBytes = b.MaxBacklogBytes()
	}
	if st.cfg.VRRMaxHz > 0 {
		r.VRR = true
	}
	return r
}
