package pipeline

import (
	"testing"
	"time"

	"odr/internal/pictor"
	"odr/internal/workload"
)

// TestTraceDrivenRun drives the pipeline from a recorded trace instead of
// the stochastic model and checks the replay is deterministic and behaves
// like the recording's rates.
func TestTraceDrivenRun(t *testing.T) {
	// Record a synthetic trace: constant 5ms renders and 10ms encodes at
	// ~36KB/frame — an encode-bound 100FPS pipeline.
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	var rows []workload.Costs
	for i := 0; i < 500; i++ {
		rows = append(rows, workload.Costs{
			Render: ms(5), Copy: ms(1), Encode: ms(10), Decode: ms(3),
			Bytes: 36 << 10, Complexity: 1,
		})
	}
	src, err := workload.NewTraceSampler(rows, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(0), 1)
	cfg.Duration = 20 * time.Second
	cfg.Source = src
	cfg.DisableContention = true
	r := Run(cfg)
	// Deterministic trace: ODRMax must settle at the encode-bound rate of
	// 1000/11ms ≈ 91 FPS.
	if r.ClientFPS < 85 || r.ClientFPS > 95 {
		t.Fatalf("trace-driven ODRMax = %.1f FPS, want ~91", r.ClientFPS)
	}
	// Render times in the trace are constant: the measured distribution
	// must be degenerate.
	if spread := r.RenderTimes.Max() - r.RenderTimes.Min(); spread > 0.01 {
		t.Fatalf("render-time spread %.3fms from a constant trace", spread)
	}
}

func TestTraceDrivenDeterminism(t *testing.T) {
	mk := func() Config {
		src, err := workload.NewTraceSampler(workload.Record(
			workload.NewSampler(pictor.IM.Params(), workload.RefScale, 3), 400), 3, 9)
		if err != nil {
			t.Fatal(err)
		}
		cfg := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(60), 1)
		cfg.Duration = 10 * time.Second
		cfg.Source = src
		return cfg
	}
	a, b := Run(mk()), Run(mk())
	if a.ClientFPS != b.ClientFPS || a.MtP.Mean() != b.MtP.Mean() {
		t.Fatal("trace-driven runs diverged with identical traces")
	}
}
