package pipeline

import (
	"testing"
	"time"

	"odr/internal/pictor"
	"odr/internal/regulator"
)

// stdConfig builds a run config for a benchmark/platform/resolution.
func stdConfig(b pictor.Benchmark, plat pictor.Platform, res pictor.Resolution, pol PolicyFactory, seed int64) Config {
	return Config{
		Workload: b.Params(),
		Scale:    pictor.Scale(plat, res),
		Net:      pictor.Network(plat),
		Policy:   pol,
		Duration: 30 * time.Second,
		Warmup:   2 * time.Second,
		Seed:     seed,
	}
}

func noReg(ctx *regulator.Ctx) regulator.Policy { return regulator.NewNoReg(ctx) }

func odr(fps float64) PolicyFactory {
	return func(ctx *regulator.Ctx) regulator.Policy {
		return regulator.NewODR(ctx, regulator.ODROptions{TargetFPS: fps})
	}
}

func TestNoRegHasLargeFPSGap(t *testing.T) {
	r := Run(stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, noReg, 1))
	if r.RenderFPS < 120 {
		t.Fatalf("NoReg render FPS = %.1f, want >120 (unthrottled)", r.RenderFPS)
	}
	if r.GapMean < 30 {
		t.Fatalf("NoReg mean FPS gap = %.1f, want >30", r.GapMean)
	}
	if r.ClientFPS < 60 {
		t.Fatalf("NoReg client FPS = %.1f, want >60", r.ClientFPS)
	}
	if r.FramesDropped == 0 {
		t.Fatal("NoReg must drop excess frames")
	}
}

func TestODR60MeetsTargetAndClosesGap(t *testing.T) {
	r := Run(stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(60), 1))
	if r.ClientFPS < 59 || r.ClientFPS > 66 {
		t.Fatalf("ODR60 client FPS = %.1f, want ~60", r.ClientFPS)
	}
	if r.GapMean > 6 {
		t.Fatalf("ODR60 mean gap = %.1f, want < 6", r.GapMean)
	}
	if r.RenderFPS > 70 {
		t.Fatalf("ODR60 render FPS = %.1f: excessive rendering not removed", r.RenderFPS)
	}
}

func TestODRMaxBeatsNoRegLatency(t *testing.T) {
	nr := Run(stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, noReg, 1))
	om := Run(stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, odr(0), 1))
	if om.MtP.Mean() >= nr.MtP.Mean() {
		t.Fatalf("ODRMax MtP %.1fms not below NoReg %.1fms", om.MtP.Mean(), nr.MtP.Mean())
	}
	if om.GapMean > 6 {
		t.Fatalf("ODRMax gap = %.1f, want < 6", om.GapMean)
	}
	if om.ClientFPS < nr.ClientFPS*0.97 {
		t.Fatalf("ODRMax client FPS %.1f fell well below NoReg %.1f", om.ClientFPS, nr.ClientFPS)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := stdConfig(pictor.RE, pictor.PrivateCloud, pictor.R720p, odr(60), 42)
	cfg.Duration = 10 * time.Second
	a := Run(cfg)
	b := Run(cfg)
	if a.ClientFPS != b.ClientFPS || a.MtP.Mean() != b.MtP.Mean() ||
		a.FramesRendered != b.FramesRendered || a.PowerWatts != b.PowerWatts {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestSeedChangesRun(t *testing.T) {
	cfgA := stdConfig(pictor.RE, pictor.PrivateCloud, pictor.R720p, noReg, 1)
	cfgA.Duration = 10 * time.Second
	cfgB := cfgA
	cfgB.Seed = 2
	a, b := Run(cfgA), Run(cfgB)
	if a.FramesRendered == b.FramesRendered && a.MtP.Mean() == b.MtP.Mean() {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestCalibrationProbe prints the key §4/§6 numbers for manual calibration.
// Run with: go test ./internal/pipeline -run Calibration -v
func TestCalibrationProbe(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	show := func(name string, plat pictor.Platform, res pictor.Resolution, pol PolicyFactory) {
		cfg := stdConfig(pictor.IM, plat, res, pol, 7)
		r := Run(cfg)
		t.Logf("%-10s %s/%s: render=%.0f encode=%.0f client=%.0f gap=%.1f/%.1f mtp=%.0f/%.0fms p99=%.0f drops=%d pow=%.0fW ipc=%.2f miss=%.0f%% read=%.0fns bw=%.1fMbps pri=%d",
			name, plat, res, r.RenderFPS, r.EncodeFPS, r.ClientFPS, r.GapMean, r.GapMax,
			r.MtP.Mean(), r.MtP.Percentile(50), r.MtP.Percentile(99),
			r.FramesDropped, r.PowerWatts, r.IPC, r.MissRate*100, r.ReadTimeNs, r.BandwidthMbps, r.PriorityFrames)
	}
	intv := func(fps float64) PolicyFactory {
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewInterval(ctx, fps) }
	}
	rvs := func(hz float64) PolicyFactory {
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewRVS(ctx, hz, 0) }
	}
	for _, plat := range []pictor.Platform{pictor.PrivateCloud, pictor.GoogleGCE} {
		show("NoReg", plat, pictor.R720p, noReg)
		show("Int60", plat, pictor.R720p, intv(60))
		show("IntMax", plat, pictor.R720p, intv(0))
		show("RVS60", plat, pictor.R720p, rvs(60))
		show("RVSMax", plat, pictor.R720p, rvs(240))
		show("ODR60", plat, pictor.R720p, odr(60))
		show("ODRMax", plat, pictor.R720p, odr(0))
	}
}

func TestMaxQueueBytesDiagnostic(t *testing.T) {
	// NoReg on the congested GCE path must show a deep send-queue
	// high-water mark; ODR's Mul-Buf2 keeps it at zero.
	nr := Run(stdConfig(pictor.IM, pictor.GoogleGCE, pictor.R720p, noReg, 2))
	if nr.MaxQueueBytes < pictor.Network(pictor.GoogleGCE).BufferBytes/2 {
		t.Fatalf("NoReg GCE max queue = %d bytes, want deep congestion", nr.MaxQueueBytes)
	}
	od := Run(stdConfig(pictor.IM, pictor.GoogleGCE, pictor.R720p, odr(60), 2))
	if od.MaxQueueBytes != 0 {
		t.Fatalf("ODR max queue = %d, want 0 (Mul-Buf2)", od.MaxQueueBytes)
	}
}

func TestODRVariantLatencyOrdering(t *testing.T) {
	// Priority frames must buy ODRMax a latency advantage over its noPri
	// variant at matched throughput, on the same seed.
	mk := func(opts regulator.ODROptions) *Result {
		cfg := stdConfig(pictor.IM, pictor.PrivateCloud, pictor.R720p, func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, opts)
		}, 11)
		return Run(cfg)
	}
	withPri := mk(regulator.ODROptions{})
	noPri := mk(regulator.ODROptions{DisablePriority: true})
	if withPri.MtP.Mean() >= noPri.MtP.Mean() {
		t.Fatalf("PriorityFrame did not reduce MtP: %.1f vs %.1f", withPri.MtP.Mean(), noPri.MtP.Mean())
	}
	if withPri.ClientFPS < noPri.ClientFPS*0.95 {
		t.Fatalf("PriorityFrame cost too much FPS: %.1f vs %.1f", withPri.ClientFPS, noPri.ClientFPS)
	}
	// PriorityFrames counts input-triggered frames for every variant (the
	// tag is semantic, not policy-dependent); the noPri variant must simply
	// not *drop* obsolete frames for them.
	if noPri.PriorityFrames == 0 {
		t.Fatal("input-triggered frames were not tagged")
	}
	if noPri.FramesDropped != 0 {
		t.Fatalf("noPri ODR dropped %d frames", noPri.FramesDropped)
	}
}
