package powermodel

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestSessionMeterComponents(t *testing.T) {
	m := NewSessionMeter(Config{CPUMaxWatts: 100, GPUMaxWatts: 200}, 1)
	m.AddRender(time.Second)  // 200 W * 1 s
	m.AddEncode(time.Second)  // 100 W * 1 s
	m.AddSend(0, time.Second) // 20 W * 1 s (txCPUShare of 100 W)
	s := m.Totals()
	if math.Abs(s.RenderJ-200) > 1e-3 || math.Abs(s.EncodeJ-100) > 1e-3 || math.Abs(s.NetworkJ-20) > 1e-3 {
		t.Fatalf("split = %+v", s)
	}
	if math.Abs(s.TotalJ()-320) > 1e-2 {
		t.Fatalf("total = %v", s.TotalJ())
	}
}

func TestSessionMeterPerByteEnergy(t *testing.T) {
	m := NewSessionMeter(Config{}, 0)
	// 1 MB at 30 nJ/byte = 30 mJ, no CPU-busy component.
	m.AddSend(1_000_000, 0)
	s := m.Totals()
	if math.Abs(s.NetworkJ-0.030) > 1e-6 {
		t.Fatalf("NetworkJ = %v, want 0.030", s.NetworkJ)
	}
	if s.RenderJ != 0 || s.EncodeJ != 0 {
		t.Fatalf("unrelated components moved: %+v", s)
	}
}

// TestSessionMeterIntensityCubic pins the cubic GPU-intensity knob shared
// with Model: halving intensity cuts render watts 8x.
func TestSessionMeterIntensityCubic(t *testing.T) {
	full := NewSessionMeter(Config{GPUMaxWatts: 320}, 1.0)
	half := NewSessionMeter(Config{GPUMaxWatts: 320}, 0.5)
	full.AddRender(time.Second)
	half.AddRender(time.Second)
	f, h := full.Totals().RenderJ, half.Totals().RenderJ
	if math.Abs(f-320) > 1e-3 {
		t.Fatalf("full intensity = %v J", f)
	}
	if math.Abs(f/h-8) > 0.01 {
		t.Fatalf("full/half = %v, want 8 (cubic)", f/h)
	}
}

func TestSessionMeterDefaultsAndClamp(t *testing.T) {
	def := DefaultConfig()
	m := NewSessionMeter(Config{}, 2.0) // intensity clamps to 1
	m.AddRender(time.Second)
	if got := m.Totals().RenderJ; math.Abs(got-def.GPUMaxWatts) > 1e-3 {
		t.Fatalf("RenderJ = %v, want default GPUMaxWatts %v", got, def.GPUMaxWatts)
	}
	m2 := NewSessionMeter(Config{}, 0)
	m2.AddRender(time.Second)
	if got := m2.Totals().RenderJ; got != 0 {
		t.Fatalf("zero intensity should bill no render energy, got %v", got)
	}
}

func TestSessionMeterIgnoresNonPositive(t *testing.T) {
	m := NewSessionMeter(Config{}, 1)
	m.AddRender(-time.Second)
	m.AddEncode(0)
	m.AddSend(0, -time.Millisecond)
	m.AddSend(-10, 0)
	if s := m.Totals(); s.TotalJ() != 0 {
		t.Fatalf("non-positive inputs billed energy: %+v", s)
	}
}

func TestSessionMeterNilSafe(t *testing.T) {
	var m *SessionMeter
	m.AddRender(time.Second)
	m.AddEncode(time.Second)
	m.AddSend(100, time.Second)
	if s := m.Totals(); s != (EnergySplit{}) {
		t.Fatalf("nil meter = %+v", s)
	}
}

// TestSessionMeterConcurrent exercises the lock-free contract: the three
// pipeline loops bill concurrently and the sum must come out exact.
func TestSessionMeterConcurrent(t *testing.T) {
	m := NewSessionMeter(Config{CPUMaxWatts: 100, GPUMaxWatts: 100}, 1)
	var wg sync.WaitGroup
	const n = 1000
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				switch w {
				case 0:
					m.AddRender(time.Millisecond)
				case 1:
					m.AddEncode(time.Millisecond)
				case 2:
					m.AddSend(1000, 0)
				}
			}
		}(w)
	}
	wg.Wait()
	s := m.Totals()
	wantRender := 100 * 0.001 * n // watts * seconds * n
	if math.Abs(s.RenderJ-wantRender) > 1e-6 || math.Abs(s.EncodeJ-wantRender) > 1e-6 {
		t.Fatalf("split = %+v, want render/encode %v", s, wantRender)
	}
	wantNet := float64(n) * 1000 * 30 / 1e9 // n sends * 1000 B * 30 nJ
	if math.Abs(s.NetworkJ-wantNet) > 1e-6 {
		t.Fatalf("NetworkJ = %v, want %v", s.NetworkJ, wantNet)
	}
}
