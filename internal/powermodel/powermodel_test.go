package powermodel

import (
	"testing"
	"testing/quick"
)

func TestIdlePower(t *testing.T) {
	m := New(Config{})
	w := m.Watts(Usage{})
	if w != DefaultConfig().IdleWatts {
		t.Fatalf("idle = %.1fW, want %.1f", w, DefaultConfig().IdleWatts)
	}
}

func TestMonotoneInUtilization(t *testing.T) {
	m := New(Config{})
	low := m.Watts(Usage{CPUUtil: 0.2, GPUUtil: 0.2, GPUIntensity: 0.6, TrafficGBs: 0.5})
	high := m.Watts(Usage{CPUUtil: 0.9, GPUUtil: 0.9, GPUIntensity: 0.6, TrafficGBs: 2})
	if high <= low {
		t.Fatalf("power not monotone: %.1f <= %.1f", high, low)
	}
}

func TestGPUActivityFloor(t *testing.T) {
	// A GPU doing any rendering clocks up: power at 5% util should be well
	// above a linear extrapolation.
	m := New(Config{})
	base := m.Watts(Usage{GPUIntensity: 0.7})
	at5 := m.Watts(Usage{GPUUtil: 0.05, GPUIntensity: 0.7})
	at100 := m.Watts(Usage{GPUUtil: 1.0, GPUIntensity: 0.7})
	if at5-base < (at100-base)*0.2 {
		t.Fatalf("no activity floor: 5%% util adds %.1fW of %.1fW swing", at5-base, at100-base)
	}
	idleGPU := m.Watts(Usage{GPUUtil: 0.01, GPUIntensity: 0.7})
	if idleGPU != base {
		t.Fatalf("sub-2%% GPU util should not engage the floor: %.1f != %.1f", idleGPU, base)
	}
}

func TestGPUIntensityCubicSpread(t *testing.T) {
	// IMHOTEP (0.72) must swing far more GPU watts than 0 A.D. (0.40) —
	// that is what makes its 264W -> 145W drop possible (§6.5).
	m := New(Config{})
	itp := m.Watts(Usage{GPUUtil: 1, GPUIntensity: 0.72})
	zad := m.Watts(Usage{GPUUtil: 1, GPUIntensity: 0.40})
	idle := m.Watts(Usage{})
	if (itp-idle)/(zad-idle) < 3 {
		t.Fatalf("intensity spread too small: ITP %.1fW vs 0AD %.1fW over idle", itp-idle, zad-idle)
	}
}

func TestCalibrationAnchorITP(t *testing.T) {
	// IMHOTEP unregulated: GPU and CPU both saturated -> ~264W.
	m := New(Config{})
	w := m.Watts(Usage{CPUUtil: 1, GPUUtil: 1, GPUIntensity: 0.72, TrafficGBs: 2.5})
	if w < 240 || w > 290 {
		t.Fatalf("ITP NoReg power = %.1fW, want ~264", w)
	}
}

func TestAccumulateAndAverage(t *testing.T) {
	m := New(Config{})
	m.Accumulate(Usage{CPUUtil: 1}, 10)
	m.Accumulate(Usage{}, 10)
	avg := m.AverageWatts()
	wantAvg := (m.Watts(Usage{CPUUtil: 1}) + m.Watts(Usage{})) / 2
	if avg != wantAvg {
		t.Fatalf("AverageWatts = %.2f, want %.2f", avg, wantAvg)
	}
	if m.EnergyJoules() != wantAvg*20 {
		t.Fatalf("EnergyJoules = %.1f", m.EnergyJoules())
	}
}

func TestAccumulateIgnoresNonPositiveSpans(t *testing.T) {
	m := New(Config{})
	m.Accumulate(Usage{CPUUtil: 1}, 0)
	m.Accumulate(Usage{CPUUtil: 1}, -5)
	if m.AverageWatts() != 0 || m.EnergyJoules() != 0 {
		t.Fatal("non-positive spans must be ignored")
	}
}

func TestUtilizationClamped(t *testing.T) {
	m := New(Config{})
	over := m.Watts(Usage{CPUUtil: 5, GPUUtil: 7, GPUIntensity: 3, TrafficGBs: 100})
	atMax := m.Watts(Usage{CPUUtil: 1, GPUUtil: 1, GPUIntensity: 1, TrafficGBs: 2.5})
	if over != atMax {
		t.Fatalf("out-of-range usage not clamped: %.1f != %.1f", over, atMax)
	}
}

// Property: power is bounded between idle and the physical maximum.
func TestPowerBoundsProperty(t *testing.T) {
	m := New(Config{})
	maxW := m.Watts(Usage{CPUUtil: 1, GPUUtil: 1, GPUIntensity: 1, TrafficGBs: 100})
	f := func(cpu, gpu, intensity, traffic float64) bool {
		u := Usage{CPUUtil: abs(cpu), GPUUtil: abs(gpu), GPUIntensity: abs(intensity), TrafficGBs: abs(traffic)}
		w := m.Watts(u)
		return w >= DefaultConfig().IdleWatts-1e-9 && w <= maxW+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
