package powermodel

import (
	"sync/atomic"
	"time"
)

// Per-byte transmit energy for the network component: NIC, DMA and
// protocol-stack cost per byte moved, in the 10-50 nJ/byte range measured
// for server NICs; 30 nJ/byte sits mid-range. The CPU share of a blocked
// send is billed separately from busy time.
const nanojoulesPerByte = 30

// txCPUShare scales the CPU package swing attributed to time the sender
// spends inside a write: the core is mostly waiting on the NIC, not
// executing, so only a fraction of the package swing is billed.
const txCPUShare = 0.2

// SessionMeter attributes estimated energy to one streaming session,
// split into the render, encode and network components the paper's
// consolidation analysis distinguishes. It is the live-path counterpart
// of Model (which integrates whole-node utilization in the simulator):
// instead of utilization windows, it bills marginal watts against the
// busy time each pipeline step actually measured.
//
// Accounting is in microjoules on atomics, so the three pipeline loops
// (render, encode, send) can bill concurrently without locks and a
// metrics flush can read totals from any goroutine.
type SessionMeter struct {
	renderW float64 // marginal render watts while the GPU is busy
	encodeW float64 // marginal encode watts while a core is busy
	txW     float64 // marginal CPU watts while blocked in a send

	renderUJ  atomic.Int64
	encodeUJ  atomic.Int64
	networkUJ atomic.Int64
}

// NewSessionMeter returns a meter for one session. cfg zero-fields pick
// the calibrated defaults; gpuIntensity is the workload's 0..1 GPU power
// intensity (the same knob Model applies cubically — a UI stream swings
// far fewer watts per busy-second than a VR benchmark).
func NewSessionMeter(cfg Config, gpuIntensity float64) *SessionMeter {
	def := DefaultConfig()
	if cfg.CPUMaxWatts == 0 {
		cfg.CPUMaxWatts = def.CPUMaxWatts
	}
	if cfg.GPUMaxWatts == 0 {
		cfg.GPUMaxWatts = def.GPUMaxWatts
	}
	i := clamp01(gpuIntensity)
	return &SessionMeter{
		renderW: cfg.GPUMaxWatts * i * i * i,
		encodeW: cfg.CPUMaxWatts,
		txW:     cfg.CPUMaxWatts * txCPUShare,
	}
}

// addUJ converts busy seconds at watts into microjoules.
func addUJ(acc *atomic.Int64, watts float64, busy time.Duration) {
	if busy <= 0 {
		return
	}
	acc.Add(int64(watts * busy.Seconds() * 1e6))
}

// AddRender bills GPU-busy render time.
func (m *SessionMeter) AddRender(busy time.Duration) {
	if m == nil {
		return
	}
	addUJ(&m.renderUJ, m.renderW, busy)
}

// AddEncode bills CPU-busy encode (and framebuffer copy) time.
func (m *SessionMeter) AddEncode(busy time.Duration) {
	if m == nil {
		return
	}
	addUJ(&m.encodeUJ, m.encodeW, busy)
}

// AddSend bills one transmitted frame: per-byte NIC/DMA energy plus the
// CPU share of the time the sender was inside the write.
func (m *SessionMeter) AddSend(bytes int, busy time.Duration) {
	if m == nil {
		return
	}
	uj := int64(bytes) * nanojoulesPerByte / 1e3
	if busy > 0 {
		uj += int64(m.txW * busy.Seconds() * 1e6)
	}
	if uj > 0 {
		m.networkUJ.Add(uj)
	}
}

// EnergySplit is a meter's cumulative per-component energy in joules.
type EnergySplit struct {
	RenderJ  float64
	EncodeJ  float64
	NetworkJ float64
}

// TotalJ returns the summed components.
func (e EnergySplit) TotalJ() float64 { return e.RenderJ + e.EncodeJ + e.NetworkJ }

// Totals reads the cumulative split (safe from any goroutine).
func (m *SessionMeter) Totals() EnergySplit {
	if m == nil {
		return EnergySplit{}
	}
	return EnergySplit{
		RenderJ:  float64(m.renderUJ.Load()) / 1e6,
		EncodeJ:  float64(m.encodeUJ.Load()) / 1e6,
		NetworkJ: float64(m.networkUJ.Load()) / 1e6,
	}
}
