// Package powermodel is the analytic stand-in for the paper's wall-power
// measurements (§6.5, Fig. 13, taken with a Klein Tools CL110 clamp meter on
// the private-cloud server). Wall power is modeled from the utilizations the
// simulator measures directly:
//
//	P = idle + Ucpu·Pcpu + Pgpu(benchmark)·(base + dyn·Ugpu) + DRAM term
//
// The GPU term has a high activity floor (clocks stay boosted while a 3D
// context is active) and a benchmark-dependent magnitude (GPU-heavy VR like
// IMHOTEP swings far more watts per busy-cycle than an RTS): this is what
// compresses the NoReg→ODRMax saving to the paper's ~8 % while ODR60 saves
// ~22 %.
//
// Calibration anchors (720p private cloud): NoReg fleet average ≈ 199 W,
// ODRMax ≈ 183 W, ODR60 ≈ 155 W; IMHOTEP 264 W unregulated, 145 W under
// ODR60.
package powermodel

// Config holds the server's power constants (defaults model the i7-7820x +
// GTX 1080Ti testbed).
type Config struct {
	IdleWatts   float64 // platform idle (fans, PSU losses, board)
	CPUMaxWatts float64 // CPU package swing from idle to full load
	GPUMaxWatts float64 // GPU swing coefficient (scaled by intensity³)
	DRAMWatts   float64 // DRAM swing at saturation traffic
}

// DefaultConfig returns the calibrated constants.
func DefaultConfig() Config {
	return Config{
		IdleWatts:   62,
		CPUMaxWatts: 60,
		GPUMaxWatts: 340,
		DRAMWatts:   13,
	}
}

// Usage summarizes one window's resource utilization.
type Usage struct {
	CPUUtil      float64 // 0..1: busy fraction of the CPU-side pipeline (app logic, copy, encode)
	GPUUtil      float64 // 0..1: busy fraction of the GPU (render)
	GPUIntensity float64 // 0..1: benchmark's GPU power intensity (workload GPUShare)
	TrafficGBs   float64 // DRAM traffic from the memory model
}

// Model computes wall power from utilization.
type Model struct {
	cfg Config

	// Accumulated energy for averaging.
	energyJ float64
	seconds float64
}

// New returns a model with cfg (zero-valued fields replaced by defaults).
func New(cfg Config) *Model {
	def := DefaultConfig()
	if cfg.IdleWatts == 0 {
		cfg.IdleWatts = def.IdleWatts
	}
	if cfg.CPUMaxWatts == 0 {
		cfg.CPUMaxWatts = def.CPUMaxWatts
	}
	if cfg.GPUMaxWatts == 0 {
		cfg.GPUMaxWatts = def.GPUMaxWatts
	}
	if cfg.DRAMWatts == 0 {
		cfg.DRAMWatts = def.DRAMWatts
	}
	return &Model{cfg: cfg}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Watts returns the instantaneous wall power for u.
func (m *Model) Watts(u Usage) float64 {
	c := m.cfg
	cpu := clamp01(u.CPUUtil) * c.CPUMaxWatts
	// GPU swing: intensity³ captures how much of the board's power budget
	// the benchmark's shaders actually engage; the 0.25 floor models
	// boosted clocks while any rendering is happening.
	intensity := clamp01(u.GPUIntensity)
	gpuSwing := c.GPUMaxWatts * intensity * intensity * intensity
	gpu := 0.0
	if u.GPUUtil > 0.02 {
		gpu = gpuSwing * (0.25 + 0.75*clamp01(u.GPUUtil))
	}
	dram := clamp01(u.TrafficGBs/2.5) * c.DRAMWatts
	return c.IdleWatts + cpu + gpu + dram
}

// Accumulate integrates one window of length seconds at usage u.
func (m *Model) Accumulate(u Usage, seconds float64) {
	if seconds <= 0 {
		return
	}
	m.energyJ += m.Watts(u) * seconds
	m.seconds += seconds
}

// AverageWatts returns the run's average wall power.
func (m *Model) AverageWatts() float64 {
	if m.seconds == 0 {
		return 0
	}
	return m.energyJ / m.seconds
}

// EnergyJoules returns the total accumulated energy.
func (m *Model) EnergyJoules() float64 { return m.energyJ }
