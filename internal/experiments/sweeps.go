package experiments

import (
	"fmt"

	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
	"odr/internal/sched"
)

// SweepRow is one point of a sensitivity sweep.
type SweepRow struct {
	X         float64 // swept parameter value
	ClientFPS float64
	GapMean   float64
	MtPMeanMs float64
	MtPP99Ms  float64
	Priority  int64
}

// SweepAPM validates the §5.3 design assumption behind PriorityFrame: "a
// normal user typically only produces fewer than 250 actions per minute …
// this frame dropping will not significantly increase the FPS gaps". The
// sweep raises the input rate from casual play to far beyond professional
// APM and measures ODR60's FPS gap and latency. The paper's regime (≤ 5
// inputs/s ≈ 300 APM) must show a small gap; the sweep shows where the
// assumption would break.
func SweepAPM(o Options) []SweepRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	var rows []SweepRow
	fmt.Fprintln(o.Out, "Sweep: user input rate vs ODR60 QoS (InMind, 720p private)")
	rates := []float64{1, 2, 3.6, 5, 8, 12, 20}
	cells := make([]sched.Cell, len(rates))
	for i, aps := range rates {
		wl := pictor.IM.Params()
		wl.InputRate = aps
		cells[i] = sched.Cell{
			PolicyKey: policyKey(ODRGoal, g.Resolution),
			Config: pipeline.Config{
				Label:    "ODR60",
				Workload: wl,
				Scale:    pictor.Scale(g.Platform, g.Resolution),
				Net:      pictor.Network(g.Platform),
				Policy:   factory(ODRGoal, g.Resolution),
				Duration: o.Duration,
				Seed:     seedFor(o.Seed, pictor.IM, g, PolicyID(fmt.Sprintf("apm%.0f", aps*60))),
			},
		}
	}
	for i, r := range o.Runner.Run(cells) {
		aps := rates[i]
		row := SweepRow{
			X:         aps,
			ClientFPS: r.ClientFPS,
			GapMean:   r.GapMean,
			MtPMeanMs: r.MtP.Mean(),
			MtPP99Ms:  r.MtP.Percentile(99),
			Priority:  r.PriorityFrames,
		}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  %5.1f inputs/s (%4.0f APM): client %5.1f FPS  gap %5.1f  MtP %5.1f ms  priority frames %d\n",
			aps, aps*60, row.ClientFPS, row.GapMean, row.MtPMeanMs, row.Priority)
	}
	return rows
}

// SweepBandwidth finds the minimum path bandwidth at which ODR60 still
// meets the 60 FPS / 100 ms envelope on a GCE-like path, and shows the
// congestion cliff NoReg falls off at every point below its offered load.
func SweepBandwidth(o Options) map[string][]SweepRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.GoogleGCE, Resolution: pictor.R720p}
	out := make(map[string][]SweepRow)
	fmt.Fprintln(o.Out, "Sweep: path bandwidth vs QoS (InMind, 720p GCE-like path)")
	bandwidths := []float64{10, 14, 18, 22, 26, 34, 50}
	for _, id := range []PolicyID{NoReg, ODRGoal, "ODRAuto60"} {
		var pol pipeline.PolicyFactory
		lbl, key := "ODRAuto60", "ODRAuto@60/20"
		if id == "ODRAuto60" {
			pol = func(ctx *regulator.Ctx) regulator.Policy {
				return regulator.NewODRAuto(ctx, 60, 20)
			}
		} else {
			pol = factory(id, g.Resolution)
			lbl = label(id, g.Resolution)
			key = policyKey(id, g.Resolution)
		}
		cells := make([]sched.Cell, len(bandwidths))
		for i, mbps := range bandwidths {
			net := pictor.Network(g.Platform)
			net.Bandwidth = mbps * 1e6 / 8
			cells[i] = sched.Cell{
				PolicyKey: key,
				Config: pipeline.Config{
					Label:    lbl,
					Workload: pictor.IM.Params(),
					Scale:    pictor.Scale(g.Platform, g.Resolution),
					Net:      net,
					Policy:   pol,
					Duration: o.Duration,
					Seed:     seedFor(o.Seed, pictor.IM, g, PolicyID(fmt.Sprintf("%s-bw%.0f", id, mbps))),
				},
			}
		}
		var rows []SweepRow
		for i, r := range o.Runner.Run(cells) {
			mbps := bandwidths[i]
			row := SweepRow{
				X:         mbps,
				ClientFPS: r.ClientFPS,
				GapMean:   r.GapMean,
				MtPMeanMs: r.MtP.Mean(),
				MtPP99Ms:  r.MtP.Percentile(99),
			}
			rows = append(rows, row)
			fmt.Fprintf(o.Out, "  %-9s %5.0f Mbps: client %5.1f FPS  MtP %8.1f ms (p99 %8.1f)\n",
				lbl, mbps, row.ClientFPS, row.MtPMeanMs, row.MtPP99Ms)
		}
		out[lbl] = rows
	}
	return out
}

// SweepRVScc reproduces the paper's observation that RVS's cc low-pass
// filter must be tuned per setup (§5.4): client FPS and latency as cc
// varies on a 60 Hz display.
func SweepRVScc(o Options) []SweepRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	var rows []SweepRow
	fmt.Fprintln(o.Out, "Sweep: RVS cc filter vs QoS (InMind, 720p private, 60Hz client)")
	ccs := []float64{0.05, 0.15, 0.25, 0.5, 0.75, 1.0}
	cells := make([]sched.Cell, len(ccs))
	for i, cc := range ccs {
		ccv := cc
		cells[i] = sched.Cell{
			PolicyKey: rvsKey(60, ccv),
			Config: pipeline.Config{
				Label:    "RVS60",
				Workload: pictor.IM.Params(),
				Scale:    pictor.Scale(g.Platform, g.Resolution),
				Net:      pictor.Network(g.Platform),
				Policy: func(ctx *regulator.Ctx) regulator.Policy {
					return regulator.NewRVS(ctx, 60, ccv)
				},
				Duration: o.Duration,
				Seed:     seedFor(o.Seed, pictor.IM, g, PolicyID(fmt.Sprintf("cc%.2f", cc))),
			},
		}
	}
	for i, r := range o.Runner.Run(cells) {
		cc := ccs[i]
		row := SweepRow{
			X:         cc,
			ClientFPS: r.ClientFPS,
			GapMean:   r.GapMean,
			MtPMeanMs: r.MtP.Mean(),
			MtPP99Ms:  r.MtP.Percentile(99),
		}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  cc=%.2f: client %5.1f FPS  gap %5.1f  MtP %5.1f ms\n",
			cc, row.ClientFPS, row.GapMean, row.MtPMeanMs)
	}
	return rows
}
