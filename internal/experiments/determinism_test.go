package experiments

import (
	"bytes"
	"testing"
	"time"

	"odr/internal/sched"
)

// The scheduler's contract: worker count and cache state may change wall
// time, never results. These tests pin byte-identical output for the full
// Table 2 matrix plus a sweep — the mix of prefetched matrix cells and
// directly batched sweep cells.

// renderTable2AndSweep runs the full Table 2 (every benchmark × platform
// group × policy) and the RVS cc sweep with the given runner, returning the
// printed output.
func renderTable2AndSweep(t *testing.T, runner *sched.Runner) string {
	t.Helper()
	var buf bytes.Buffer
	o := Options{Duration: 3 * time.Second, Seed: 7, Out: &buf, Runner: runner}
	m := NewMatrix(o)
	m.Prefetch()
	Table2(m)
	SweepRVScc(o)
	return buf.String()
}

func TestParallelRunIsByteIdenticalToSequential(t *testing.T) {
	seq := renderTable2AndSweep(t, sched.New(sched.Options{Workers: 1}))
	par := renderTable2AndSweep(t, sched.New(sched.Options{Workers: 8}))
	if seq != par {
		t.Fatalf("parallel output differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
}

func TestWarmCacheRunIsAllHitsAndIdentical(t *testing.T) {
	dir := t.TempDir()
	run := func() (string, *sched.Runner) {
		cache, err := sched.OpenCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		r := sched.New(sched.Options{Cache: cache})
		return renderTable2AndSweep(t, r), r
	}
	cold, r1 := run()
	run1, hits1, _ := r1.Stats()
	if run1 == 0 || hits1 != 0 {
		t.Fatalf("cold run: %d cells run, %d hits", run1, hits1)
	}
	warm, r2 := run()
	run2, hits2, misses2 := r2.Stats()
	if run2 != 0 || misses2 != 0 {
		t.Fatalf("warm run recomputed: %d cells run, %d misses (%d hits)", run2, misses2, hits2)
	}
	if hits2 != run1+hits1 || hits2 == 0 {
		t.Fatalf("warm run hits = %d, want %d", hits2, run1)
	}
	if cold != warm {
		t.Fatalf("warm-cache output differs from cold run:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}
}
