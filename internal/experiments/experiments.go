// Package experiments regenerates every table and figure of the paper's
// evaluation (§4 and §6) from the pipeline simulator. Each experiment has a
// function that runs the required configurations, prints the same rows or
// series the paper reports, and returns the numbers in a structured form so
// tests and benchmarks can assert on them.
//
// The experiment inventory, with the paper artifact each reproduces, is in
// DESIGN.md; measured-vs-paper values are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"time"

	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
	"odr/internal/sched"
)

// Options tunes experiment runs. The zero value gives the defaults used for
// EXPERIMENTS.md (60 s per configuration, seed 1).
type Options struct {
	// Duration is the measured simulation length per run.
	Duration time.Duration
	// Seed is the base RNG seed; per-run seeds derive from it.
	Seed int64
	// Out receives the human-readable report; nil discards it.
	Out io.Writer
	// Runner executes the pipeline cells of every experiment. Nil defaults
	// to a work-stealing runner over all CPUs with no persistent cache.
	// Cells carry per-cell seeds, so results — and therefore the printed
	// report — are identical at any worker count.
	Runner *sched.Runner
}

func (o Options) withDefaults() Options {
	if o.Duration == 0 {
		o.Duration = 60 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	if o.Runner == nil {
		o.Runner = sched.New(sched.Options{})
	}
	return o
}

// PolicyID names a regulation configuration the way the paper labels it.
type PolicyID string

// The configuration labels used across Table 2 and Figures 3-15.
const (
	NoReg       PolicyID = "NoReg"
	IntMax      PolicyID = "IntMax"
	RVSMax      PolicyID = "RVSMax"
	ODRMax      PolicyID = "ODRMax"
	ODRMaxNoPri PolicyID = "ODRMax-noPri"
	IntGoal     PolicyID = "Int60/30"
	RVSGoal     PolicyID = "RVS60/30"
	ODRGoal     PolicyID = "ODR60/30"
)

// label resolves a PolicyID to the concrete label for a resolution
// (Int60/30 becomes Int60 at 720p and Int30 at 1080p).
func label(id PolicyID, res pictor.Resolution) string {
	goal := fmt.Sprintf("%d", int(res.TargetFPS()))
	switch id {
	case IntGoal:
		return "Int" + goal
	case RVSGoal:
		return "RVS" + goal
	case ODRGoal:
		return "ODR" + goal
	default:
		return string(id)
	}
}

// factory builds the pipeline policy factory for a PolicyID under a
// resolution's QoS goal.
func factory(id PolicyID, res pictor.Resolution) pipeline.PolicyFactory {
	goal := res.TargetFPS()
	switch id {
	case NoReg:
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewNoReg(ctx) }
	case IntMax:
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewInterval(ctx, 0) }
	case RVSMax:
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewRVS(ctx, 240, 0) }
	case ODRMax:
		return func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, regulator.ODROptions{})
		}
	case ODRMaxNoPri:
		return func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, regulator.ODROptions{DisablePriority: true})
		}
	case IntGoal:
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewInterval(ctx, goal) }
	case RVSGoal:
		return func(ctx *regulator.Ctx) regulator.Policy { return regulator.NewRVS(ctx, goal, 0) }
	case ODRGoal:
		return func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, regulator.ODROptions{TargetFPS: goal})
		}
	}
	panic("experiments: unknown policy " + string(id))
}

// EvalPolicies is the seven-configuration set of Figures 9-13 (§6.1: no
// regulation plus three regulators under each of the two QoS goals).
var EvalPolicies = []PolicyID{NoReg, IntMax, RVSMax, ODRMax, IntGoal, RVSGoal, ODRGoal}

// Table2Policies adds the PriorityFrame-ablated ODR row of Table 2.
var Table2Policies = []PolicyID{NoReg, IntMax, RVSMax, ODRMaxNoPri, ODRMax, IntGoal, RVSGoal, ODRGoal}

// seedFor derives a deterministic per-run seed.
func seedFor(base int64, b pictor.Benchmark, g pictor.PlatformGroup, id PolicyID) int64 {
	h := base
	mix := func(s string) {
		for _, c := range s {
			h = h*1099511628211 + int64(c)
		}
	}
	mix(string(b))
	mix(g.String())
	mix(string(id))
	if h < 0 {
		h = -h
	}
	return h | 1
}

// policyKey canonically names the concrete policy factory(id, res) builds,
// for content addressing in the result cache. Keys are canonical — the
// same underlying policy gets the same key however an experiment reaches
// it — so identical cells submitted by different experiments (e.g. the
// matrix and an ablation baseline) share one cache entry.
func policyKey(id PolicyID, res pictor.Resolution) string {
	goal := res.TargetFPS()
	switch id {
	case NoReg:
		return "NoReg"
	case IntMax:
		return "Int@0"
	case RVSMax:
		return rvsKey(240, 0)
	case ODRMax:
		return odrKey(regulator.ODROptions{})
	case ODRMaxNoPri:
		return odrKey(regulator.ODROptions{DisablePriority: true})
	case IntGoal:
		return fmt.Sprintf("Int@%g", goal)
	case RVSGoal:
		return rvsKey(goal, 0)
	case ODRGoal:
		return odrKey(regulator.ODROptions{TargetFPS: goal})
	}
	return "?" + string(id)
}

// odrKey names an ODR variant by its options.
func odrKey(opts regulator.ODROptions) string {
	key := fmt.Sprintf("ODR@%g", opts.TargetFPS)
	if opts.DisablePriority {
		key += "+noPri"
	}
	if opts.DisableMulBuf2 {
		key += "+noBuf2"
	}
	if opts.DelayOnly {
		key += "+delayOnly"
	}
	return key
}

// rvsKey names an RVS variant by its refresh rate and filter constant.
func rvsKey(refreshHz, cc float64) string {
	return fmt.Sprintf("RVS@%g/cc%g", refreshHz, cc)
}

// cellFor builds the schedulable cell for one (benchmark, group, policy)
// coordinate of the evaluation matrix.
func cellFor(o Options, b pictor.Benchmark, g pictor.PlatformGroup, id PolicyID) sched.Cell {
	return sched.Cell{
		PolicyKey: policyKey(id, g.Resolution),
		Config: pipeline.Config{
			Label:    label(id, g.Resolution),
			Workload: b.Params(),
			Scale:    pictor.Scale(g.Platform, g.Resolution),
			Net:      pictor.Network(g.Platform),
			Policy:   factory(id, g.Resolution),
			Duration: o.Duration,
			Seed:     seedFor(o.Seed, b, g, id),
		},
	}
}

// runOne executes one (benchmark, group, policy) cell.
func runOne(o Options, b pictor.Benchmark, g pictor.PlatformGroup, id PolicyID) *pipeline.Result {
	return o.Runner.RunOne(cellFor(o, b, g, id))
}

// mean returns the arithmetic mean of xs (0 when empty).
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
