package experiments

import (
	"testing"
	"time"
)

func TestSweepAPMValidatesPaperAssumption(t *testing.T) {
	rows := SweepAPM(testOptions())
	var atPaperRegime, atExtreme *SweepRow
	for i := range rows {
		if rows[i].X == 5 {
			atPaperRegime = &rows[i]
		}
		if rows[i].X == 20 {
			atExtreme = &rows[i]
		}
	}
	if atPaperRegime == nil || atExtreme == nil {
		t.Fatal("sweep points missing")
	}
	// §5.3: within the human APM regime PriorityFrame keeps the gap small.
	if atPaperRegime.GapMean > 5 {
		t.Errorf("gap at 300 APM = %.1f, want <= ~4 (paper: priority frames do not significantly increase gaps)", atPaperRegime.GapMean)
	}
	// Beyond human rates the gap grows: the assumption is load-bearing.
	if atExtreme.GapMean <= atPaperRegime.GapMean {
		t.Errorf("gap at 1200 APM (%.1f) not above 300 APM (%.1f)", atExtreme.GapMean, atPaperRegime.GapMean)
	}
	// Latency stays flat throughout (priority frames always jump the queue).
	for _, r := range rows {
		if r.MtPMeanMs > 45 {
			t.Errorf("MtP at %.1f inputs/s = %.1fms, want flat ~30", r.X, r.MtPMeanMs)
		}
	}
}

func TestSweepBandwidthCliffs(t *testing.T) {
	out := SweepBandwidth(testOptions())
	noreg, odr := out["NoReg"], out["ODR60"]
	if len(noreg) == 0 || len(odr) == 0 {
		t.Fatal("missing sweep series")
	}
	// At 22 Mbps (just below NoReg's offered load): NoReg collapses into
	// seconds; ODR stays interactive.
	for i := range noreg {
		if noreg[i].X == 22 {
			if noreg[i].MtPMeanMs < 500 {
				t.Errorf("NoReg at 22 Mbps MtP = %.0fms, want congestion collapse", noreg[i].MtPMeanMs)
			}
			if odr[i].MtPMeanMs > 120 {
				t.Errorf("ODR60 at 22 Mbps MtP = %.0fms, want interactive", odr[i].MtPMeanMs)
			}
			if odr[i].ClientFPS < 58 {
				t.Errorf("ODR60 at 22 Mbps FPS = %.1f, want ~60", odr[i].ClientFPS)
			}
		}
		// With ample bandwidth NoReg recovers (no congestion to cause).
		if noreg[i].X == 50 && noreg[i].MtPMeanMs > 200 {
			t.Errorf("NoReg at 50 Mbps MtP = %.0fms, want recovered", noreg[i].MtPMeanMs)
		}
	}
	// ODR degrades gracefully below its target's bandwidth needs: latency
	// stays bounded even when FPS cannot be met.
	for _, r := range odr {
		if r.MtPMeanMs > 250 {
			t.Errorf("ODR60 at %.0f Mbps MtP = %.0fms: backpressure failed", r.X, r.MtPMeanMs)
		}
	}
}

func TestSweepRVSccTension(t *testing.T) {
	rows := SweepRVScc(testOptions())
	first, last := rows[0], rows[len(rows)-1]
	// Stronger filtering trades FPS away.
	if last.ClientFPS >= first.ClientFPS {
		t.Errorf("cc=%.2f FPS %.1f not below cc=%.2f FPS %.1f", last.X, last.ClientFPS, first.X, first.ClientFPS)
	}
	// The gap stays closed across the whole range (RVS always removes it).
	for _, r := range rows {
		if r.GapMean > 3 {
			t.Errorf("cc=%.2f gap = %.1f, want ~0", r.X, r.GapMean)
		}
	}
}

func TestSummaryCISeedStability(t *testing.T) {
	o := testOptions()
	o.Duration = 8 * time.Second
	res := SummaryCI(o, 3)
	if res.Seeds != 3 || res.NoRegGap.N != 3 {
		t.Fatalf("seed count wrong: %+v", res)
	}
	// The headline separations must dwarf the seed noise.
	if res.NoRegGap.Mean-res.ODRGap.Mean < 10*(res.NoRegGap.Stddev+res.ODRGap.Stddev+1) {
		t.Errorf("gap separation not robust to seeds: %v vs %v", res.NoRegGap, res.ODRGap)
	}
	if res.NoRegLatMs.Mean < res.ODRMaxLatMs.Mean*3 {
		t.Errorf("latency separation not robust: %v vs %v", res.NoRegLatMs, res.ODRMaxLatMs)
	}
	if res.GoalAttainPct.Stddev > 3 {
		t.Errorf("goal attainment unstable across seeds: %v", res.GoalAttainPct)
	}
}
