package experiments

import (
	"fmt"

	"odr/internal/metrics"
	"odr/internal/pictor"
	"odr/internal/sched"
)

// cellsFor builds the matrix cells for one benchmark/group across ids.
func cellsFor(o Options, b pictor.Benchmark, g pictor.PlatformGroup, ids []PolicyID) []sched.Cell {
	cells := make([]sched.Cell, len(ids))
	for i, id := range ids {
		cells[i] = cellFor(o, b, g, id)
	}
	return cells
}

// Fig1Result holds Figure 1: cloud vs client FPS for Red Eclipse and InMind
// under no regulation — the excessive-rendering motivation.
type Fig1Result struct {
	Benchmarks []string
	CloudFPS   []float64
	ClientFPS  []float64
}

// Fig1 reproduces Figure 1 (720p private cloud, NoReg).
func Fig1(o Options) Fig1Result {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	var res Fig1Result
	fmt.Fprintln(o.Out, "Figure 1: excessive frame rendering causes large FPS gaps (NoReg, 720p private)")
	benches := []pictor.Benchmark{pictor.RE, pictor.IM}
	cells := make([]sched.Cell, len(benches))
	for i, b := range benches {
		cells[i] = cellFor(o, b, g, NoReg)
	}
	for i, r := range o.Runner.Run(cells) {
		b := benches[i]
		res.Benchmarks = append(res.Benchmarks, string(b))
		res.CloudFPS = append(res.CloudFPS, r.RenderFPS)
		res.ClientFPS = append(res.ClientFPS, r.ClientFPS)
		fmt.Fprintf(o.Out, "  %-12s cloud FPS %6.1f   client FPS %6.1f   gap %6.1f\n",
			b, r.RenderFPS, r.ClientFPS, r.RenderFPS-r.ClientFPS)
	}
	return res
}

// Fig3Row is one configuration of Figure 3.
type Fig3Row struct {
	Config    string
	RenderFPS float64
	EncodeFPS float64
	DecodeFPS float64
}

// Fig3 reproduces Figure 3: InMind's render/encode/decode FPS under NoReg,
// Int60, IntMax, RVS60 and RVSMax (720p private cloud).
func Fig3(o Options) []Fig3Row {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	fmt.Fprintln(o.Out, "Figure 3: InMind render/encode/decode FPS under §4 regulations (720p private)")
	var rows []Fig3Row
	ids := []PolicyID{NoReg, IntGoal, IntMax, RVSGoal, RVSMax}
	for _, r := range o.Runner.Run(cellsFor(o, pictor.IM, g, ids)) {
		row := Fig3Row{Config: r.Label, RenderFPS: r.RenderFPS, EncodeFPS: r.EncodeFPS, DecodeFPS: r.ClientFPS}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  %-8s render %6.1f  encode %6.1f  decode %6.1f\n",
			row.Config, row.RenderFPS, row.EncodeFPS, row.DecodeFPS)
	}
	return rows
}

// Fig4Result holds Figure 4: the CDFs (a) and a per-frame trace (b) of
// InMind's render, encode and transmission times.
type Fig4Result struct {
	RenderCDFx, RenderCDFy []float64
	EncodeCDFx, EncodeCDFy []float64
	TransCDFx, TransCDFy   []float64
	// Fraction of frames completing within the 16.6 ms interval, the
	// §4.1 observation (paper: 80-90 %).
	RenderUnder16, EncodeUnder16 float64
	// Trace of ~100 consecutive frames (ms).
	TraceRender, TraceEncode, TraceTrans []float64
}

// Fig4 reproduces Figure 4 (InMind, NoReg, 720p private cloud).
func Fig4(o Options) Fig4Result {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	cell := cellFor(o, pictor.IM, g, NoReg)
	cell.Config.CollectFrames = 100
	r := o.Runner.RunOne(cell)
	var res Fig4Result
	res.RenderCDFx, res.RenderCDFy = r.RenderTimes.CDF()
	res.EncodeCDFx, res.EncodeCDFy = r.EncodeTimes.CDF()
	res.TransCDFx, res.TransCDFy = r.TransTimes.CDF()
	res.RenderUnder16 = r.RenderTimes.FractionBelow(16.6)
	res.EncodeUnder16 = r.EncodeTimes.FractionBelow(16.6)
	for _, f := range r.FrameTrace {
		res.TraceRender = append(res.TraceRender, msf(f.RenderEnd-f.RenderStart))
		res.TraceEncode = append(res.TraceEncode, msf(f.EncodeEnd-f.EncodeStart))
		res.TraceTrans = append(res.TraceTrans, msf(f.SendEnd-f.EncodeEnd))
	}
	fmt.Fprintln(o.Out, "Figure 4: InMind processing-time variation (NoReg, 720p private)")
	fmt.Fprintf(o.Out, "  render: p50 %5.1fms p90 %5.1fms p99 %5.1fms  under-16.6ms %4.1f%%\n",
		r.RenderTimes.Percentile(50), r.RenderTimes.Percentile(90), r.RenderTimes.Percentile(99), res.RenderUnder16*100)
	fmt.Fprintf(o.Out, "  encode: p50 %5.1fms p90 %5.1fms p99 %5.1fms  under-16.6ms %4.1f%%\n",
		r.EncodeTimes.Percentile(50), r.EncodeTimes.Percentile(90), r.EncodeTimes.Percentile(99), res.EncodeUnder16*100)
	fmt.Fprintf(o.Out, "  trans:  p50 %5.1fms p90 %5.1fms p99 %5.1fms\n",
		r.TransTimes.Percentile(50), r.TransTimes.Percentile(90), r.TransTimes.Percentile(99))
	fmt.Fprintf(o.Out, "  trace collected for %d frames\n", len(res.TraceRender))
	return res
}

// Fig5Row is one frame of a Figure 5-style pipeline timeline.
type Fig5Row struct {
	Seq                    uint64
	RenderStart, RenderEnd float64 // ms from trace start
	EncodeStart, EncodeEnd float64
	SendEnd, DecodeEnd     float64
	Priority               bool
}

// Fig5 reproduces the Figure 5 pipeline timelines: the first frames of
// InMind under Int60, RVS60 and ODR60, showing how each scheme schedules
// render/encode/decode. (Figure 5a's "ideal pipeline" corresponds to the
// ODR rows when no spike occurs.)
func Fig5(o Options) map[string][]Fig5Row {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	out := make(map[string][]Fig5Row)
	fmt.Fprintln(o.Out, "Figure 5: pipeline timelines (InMind, 720p private, first 8 displayed frames)")
	cells := cellsFor(o, pictor.IM, g, []PolicyID{IntGoal, RVSGoal, ODRGoal})
	for i := range cells {
		cells[i].Config.CollectFrames = 8
	}
	for _, r := range o.Runner.Run(cells) {
		var rows []Fig5Row
		var t0 float64
		for i, f := range r.FrameTrace {
			if i == 0 {
				t0 = msf(f.RenderStart)
			}
			rows = append(rows, Fig5Row{
				Seq:         f.Seq,
				RenderStart: msf(f.RenderStart) - t0,
				RenderEnd:   msf(f.RenderEnd) - t0,
				EncodeStart: msf(f.EncodeStart) - t0,
				EncodeEnd:   msf(f.EncodeEnd) - t0,
				SendEnd:     msf(f.SendEnd) - t0,
				DecodeEnd:   msf(f.DecodeEnd) - t0,
				Priority:    f.Priority,
			})
		}
		out[r.Label] = rows
		fmt.Fprintf(o.Out, "  %s:\n", r.Label)
		for _, row := range rows {
			fmt.Fprintf(o.Out, "    frame %4d  render %7.1f-%7.1f  encode %7.1f-%7.1f  decoded %7.1f%s\n",
				row.Seq, row.RenderStart, row.RenderEnd, row.EncodeStart, row.EncodeEnd, row.DecodeEnd,
				priMark(row.Priority))
		}
	}
	return out
}

func priMark(p bool) string {
	if p {
		return "  [priority]"
	}
	return ""
}

// Fig6Row is one configuration of Figure 6.
type Fig6Row struct {
	Config string
	MeanMs float64
	P99Ms  float64
}

// Fig6 reproduces Figure 6: InMind's MtP latency under the §4
// configurations (720p private cloud).
func Fig6(o Options) []Fig6Row {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	fmt.Fprintln(o.Out, "Figure 6: InMind MtP latency under §4 regulations (720p private)")
	var rows []Fig6Row
	ids := []PolicyID{NoReg, IntGoal, IntMax, RVSGoal, RVSMax}
	for _, r := range o.Runner.Run(cellsFor(o, pictor.IM, g, ids)) {
		row := Fig6Row{Config: r.Label, MeanMs: r.MtP.Mean(), P99Ms: r.MtP.Percentile(99)}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  %-8s mean %6.1fms  p99 %6.1fms\n", row.Config, row.MeanMs, row.P99Ms)
	}
	return rows
}

// Fig7Row is one configuration of Figure 7.
type Fig7Row struct {
	Config     string
	MissRate   float64
	ReadTimeNs float64
	IPC        float64
}

// Fig7 reproduces Figure 7: InMind's DRAM row-buffer miss rate, read access
// time and IPC under the §4 configurations (720p private cloud).
func Fig7(o Options) []Fig7Row {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	fmt.Fprintln(o.Out, "Figure 7: InMind DRAM efficiency under §4 regulations (720p private)")
	var rows []Fig7Row
	ids := []PolicyID{NoReg, IntGoal, IntMax, RVSGoal, RVSMax}
	for _, r := range o.Runner.Run(cellsFor(o, pictor.IM, g, ids)) {
		row := Fig7Row{Config: r.Label, MissRate: r.MissRate, ReadTimeNs: r.ReadTimeNs, IPC: r.IPC}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  %-8s miss %5.1f%%  read %5.1fns  IPC %5.2f\n",
			row.Config, row.MissRate*100, row.ReadTimeNs, row.IPC)
	}
	return rows
}

func msf(d interface{ Nanoseconds() int64 }) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// boxOf converts a metrics box for reporting.
func boxOf(d *metrics.Dist) metrics.Box { return d.Box() }
