package experiments

import (
	"os"
	"path/filepath"

	"odr/internal/pictor"
	"odr/internal/trace"
)

// WriteCSVArtifacts regenerates the matrix-backed artifacts (Table 2,
// Figures 9-13) and writes them as plot-ready CSV files into dir:
//
//	table2.csv   group,config,avg_gap,max_gap,max_gap_benchmark
//	fig9.csv     group,config,client_fps,mtp_ms
//	fig10.csv    group,benchmark,config,p1,p25,mean,p75,p99   (client FPS)
//	fig11.csv    same columns (MtP latency ms)
//	fig12.csv    benchmark,config,ipc,miss_rate,read_ns
//	fig13.csv    benchmark,config,watts
//
// It returns the files written.
func WriteCSVArtifacts(m *Matrix, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	save := func(name string, t *trace.Table) error {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := t.WriteCSV(f); err != nil {
			return err
		}
		written = append(written, path)
		return nil
	}

	t2 := trace.NewTable("group", "config", "avg_gap", "max_gap", "max_gap_benchmark")
	for _, g := range Table2(m) {
		for _, id := range Table2Policies {
			if err := t2.AddRow(g.Group, string(id), g.AvgGap[id], g.MaxGap[id], g.MaxGapB[id]); err != nil {
				return written, err
			}
		}
	}
	if err := save("table2.csv", t2); err != nil {
		return written, err
	}

	f9 := Fig9(m)
	t9 := trace.NewTable("group", "config", "client_fps", "mtp_ms")
	for i, g := range f9.Groups {
		for _, id := range EvalPolicies {
			if err := t9.AddRow(g, string(id), f9.ClientFPS[id][i], f9.LatencyMs[id][i]); err != nil {
				return written, err
			}
		}
	}
	if err := save("fig9.csv", t9); err != nil {
		return written, err
	}

	boxTable := func(cells map[string][]BoxCell) (*trace.Table, error) {
		t := trace.NewTable("group", "benchmark", "config", "p1", "p25", "mean", "p75", "p99")
		for _, g := range fig10Groups {
			for _, c := range cells[g.String()] {
				b := c.Box
				if err := t.AddRow(g.String(), c.Benchmark, c.Config, b.P1, b.P25, b.Mean, b.P75, b.P99); err != nil {
					return nil, err
				}
			}
		}
		return t, nil
	}
	t10, err := boxTable(Fig10(m))
	if err != nil {
		return written, err
	}
	if err := save("fig10.csv", t10); err != nil {
		return written, err
	}
	t11, err := boxTable(Fig11(m))
	if err != nil {
		return written, err
	}
	if err := save("fig11.csv", t11); err != nil {
		return written, err
	}

	t12 := trace.NewTable("benchmark", "config", "ipc", "miss_rate", "read_ns")
	for _, r := range Fig12(m) {
		if err := t12.AddRow(r.Benchmark, r.Config, r.IPC, r.MissRate, r.ReadTimeNs); err != nil {
			return written, err
		}
	}
	if err := save("fig12.csv", t12); err != nil {
		return written, err
	}

	t13 := trace.NewTable("benchmark", "config", "watts")
	for _, r := range Fig13(m) {
		if err := t13.AddRow(r.Benchmark, r.Config, r.Watts); err != nil {
			return written, err
		}
	}
	if err := save("fig13.csv", t13); err != nil {
		return written, err
	}
	return written, nil
}

// expectedCSVRows sanity-checks an artifact directory (used by tests).
func expectedCSVRows() map[string]int {
	groups := len(fig10Groups)
	benches := len(pictor.Benchmarks)
	return map[string]int{
		"table2.csv": 3 * len(Table2Policies),
		"fig9.csv":   5 * len(EvalPolicies),
		"fig10.csv":  groups * benches * len(EvalPolicies),
		"fig11.csv":  groups * benches * len(EvalPolicies),
		"fig12.csv":  (benches + 1) * len(EvalPolicies),
		"fig13.csv":  (benches + 1) * len(EvalPolicies),
	}
}
