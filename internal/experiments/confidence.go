package experiments

import (
	"fmt"
	"math"
)

// CIStat is a mean with its spread over independent seeds.
type CIStat struct {
	Mean   float64
	Stddev float64
	N      int
}

// String formats the stat as "mean ± stddev".
func (c CIStat) String() string { return fmt.Sprintf("%.1f ± %.1f", c.Mean, c.Stddev) }

// ciOf reduces per-seed samples.
func ciOf(samples []float64) CIStat {
	n := len(samples)
	if n == 0 {
		return CIStat{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(ss / float64(n-1))
	}
	return CIStat{Mean: mean, Stddev: sd, N: n}
}

// SummaryCIResult carries the headline §6.6 metrics with seed spread.
type SummaryCIResult struct {
	Seeds         int
	NoRegGap      CIStat
	ODRGap        CIStat
	ODRMaxFPS     CIStat
	NoRegFPS      CIStat
	ODRMaxLatMs   CIStat
	NoRegLatMs    CIStat
	PowerDropPct  CIStat
	ReadDropPct   CIStat
	GoalAttainPct CIStat
}

// SummaryCI runs the §6.6 summary over several independent seeds and
// reports mean ± stddev for the headline metrics — the reproducibility
// rigor the single-seed tables omit. The workload, input timing, network
// jitter and QoE panel all re-randomize per seed.
func SummaryCI(o Options, seeds int) SummaryCIResult {
	o = o.withDefaults()
	if seeds <= 0 {
		seeds = 5
	}
	var noRegGap, odrGap, odrFPS, noRegFPS, odrLat, noRegLat, powerDrop, readDrop, attain []float64
	for i := 0; i < seeds; i++ {
		so := o
		so.Seed = o.Seed + int64(i)*7919
		so.Out = nil
		so = so.withDefaults()
		m := NewMatrix(so)
		m.Prefetch()
		s := Summary(m)
		noRegGap = append(noRegGap, s.NoRegAvgGap)
		odrGap = append(odrGap, s.ODRAvgGap)
		odrFPS = append(odrFPS, s.ODRMaxFPS)
		noRegFPS = append(noRegFPS, s.NoRegFPS)
		odrLat = append(odrLat, s.ODRMaxLat)
		noRegLat = append(noRegLat, s.NoRegLat)
		powerDrop = append(powerDrop, 100*s.PowerDrop)
		readDrop = append(readDrop, 100*s.ReadTimeDrop)
		attain = append(attain, 100*s.ODRGoalFPSvsTarget)
	}
	res := SummaryCIResult{
		Seeds:         seeds,
		NoRegGap:      ciOf(noRegGap),
		ODRGap:        ciOf(odrGap),
		ODRMaxFPS:     ciOf(odrFPS),
		NoRegFPS:      ciOf(noRegFPS),
		ODRMaxLatMs:   ciOf(odrLat),
		NoRegLatMs:    ciOf(noRegLat),
		PowerDropPct:  ciOf(powerDrop),
		ReadDropPct:   ciOf(readDrop),
		GoalAttainPct: ciOf(attain),
	}
	fmt.Fprintf(o.Out, "Seed sensitivity (%d independent seeds, %v each):\n", seeds, o.Duration)
	fmt.Fprintf(o.Out, "  FPS gap:          NoReg %s -> ODR %s\n", res.NoRegGap, res.ODRGap)
	fmt.Fprintf(o.Out, "  client FPS:       ODRMax %s vs NoReg %s\n", res.ODRMaxFPS, res.NoRegFPS)
	fmt.Fprintf(o.Out, "  MtP latency (ms): ODRMax %s vs NoReg %s\n", res.ODRMaxLatMs, res.NoRegLatMs)
	fmt.Fprintf(o.Out, "  power saving %%:   %s   read-time saving %%: %s\n", res.PowerDropPct, res.ReadDropPct)
	fmt.Fprintf(o.Out, "  goal attainment:  %s %% of target\n", res.GoalAttainPct)
	return res
}
