package experiments

import (
	"fmt"
	"sync"

	"odr/internal/metrics"
	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/sched"
)

// Matrix lazily runs and caches the full evaluation matrix: 6 benchmarks ×
// 4 platform groups × 8 configurations (§6.1's 28 configurations per
// benchmark, plus the ODRMax-noPri row of Table 2). Experiments that share
// cells (Table 2, Figures 9-13) reuse one Matrix.
//
// Cells are deterministic and independent, so Prefetch runs them all
// through the options' scheduler; Get itself stays single-threaded
// (experiments call it from one goroutine).
type Matrix struct {
	o     Options
	mu    sync.Mutex
	cells map[string]*pipeline.Result
}

// NewMatrix returns an empty matrix over o.
func NewMatrix(o Options) *Matrix {
	return &Matrix{o: o.withDefaults(), cells: make(map[string]*pipeline.Result)}
}

// Options returns the matrix's options.
func (m *Matrix) Options() Options { return m.o }

// Get runs (or returns the cached run of) one cell.
func (m *Matrix) Get(b pictor.Benchmark, g pictor.PlatformGroup, id PolicyID) *pipeline.Result {
	key := string(b) + "/" + g.String() + "/" + string(id)
	m.mu.Lock()
	if r, ok := m.cells[key]; ok {
		m.mu.Unlock()
		return r
	}
	m.mu.Unlock()
	r := runOne(m.o, b, g, id)
	m.mu.Lock()
	m.cells[key] = r
	m.mu.Unlock()
	return r
}

// Prefetch runs every cell of the full matrix through the options'
// scheduler so that subsequent experiments hit only memory. Each cell is
// an independent deterministic simulation with its own derived seed, so
// the results are identical to sequential execution at any worker count.
func (m *Matrix) Prefetch() {
	var keys []string
	var cells []sched.Cell
	for _, g := range pictor.Groups {
		for _, b := range pictor.Benchmarks {
			for _, id := range Table2Policies {
				keys = append(keys, string(b)+"/"+g.String()+"/"+string(id))
				cells = append(cells, cellFor(m.o, b, g, id))
			}
		}
	}
	results := m.o.Runner.Run(cells)
	m.mu.Lock()
	for i, key := range keys {
		m.cells[key] = results[i]
	}
	m.mu.Unlock()
}

// groupMean averages a metric over the six benchmarks for one group/policy.
func (m *Matrix) groupMean(g pictor.PlatformGroup, id PolicyID, f func(*pipeline.Result) float64) float64 {
	var vals []float64
	for _, b := range pictor.Benchmarks {
		vals = append(vals, f(m.Get(b, g, id)))
	}
	return mean(vals)
}

// Table2Group holds one platform group's column of Table 2.
type Table2Group struct {
	Group   string
	AvgGap  map[PolicyID]float64
	MaxGap  map[PolicyID]float64
	MaxGapB map[PolicyID]string // benchmark with the largest gap
}

// Table2 reproduces Table 2: average and maximum FPS gaps per configuration
// for the three platform groups the paper prints (720p private, 720p GCE,
// 1080p GCE).
func Table2(m *Matrix) []Table2Group {
	o := m.o
	groups := []pictor.PlatformGroup{
		{Platform: pictor.PrivateCloud, Resolution: pictor.R720p},
		{Platform: pictor.GoogleGCE, Resolution: pictor.R720p},
		{Platform: pictor.GoogleGCE, Resolution: pictor.R1080p},
	}
	fmt.Fprintln(o.Out, "Table 2: Average/Max FPS gaps per configuration (benchmark with largest gap)")
	var out []Table2Group
	for _, g := range groups {
		tg := Table2Group{
			Group:   g.String(),
			AvgGap:  make(map[PolicyID]float64),
			MaxGap:  make(map[PolicyID]float64),
			MaxGapB: make(map[PolicyID]string),
		}
		fmt.Fprintf(o.Out, "  %s:\n", g)
		for _, id := range Table2Policies {
			var avgs []float64
			maxGap, maxB := 0.0, ""
			for _, b := range pictor.Benchmarks {
				r := m.Get(b, g, id)
				avgs = append(avgs, r.GapMean)
				if r.GapMax > maxGap {
					maxGap, maxB = r.GapMax, string(b)
				}
			}
			tg.AvgGap[id] = mean(avgs)
			tg.MaxGap[id] = maxGap
			tg.MaxGapB[id] = maxB
			fmt.Fprintf(o.Out, "    %-14s %7.1f / %7.1f  (%s)\n", label(id, g.Resolution), tg.AvgGap[id], maxGap, maxB)
		}
		out = append(out, tg)
	}
	return out
}

// Fig9Result holds Figure 9: per-group and overall average client FPS (a)
// and MtP latency (b) for all ten configuration labels.
type Fig9Result struct {
	Groups    []string
	ClientFPS map[PolicyID][]float64 // indexed like Groups; last entry overall
	LatencyMs map[PolicyID][]float64
}

// Fig9 reproduces Figures 9a and 9b over all four platform groups plus the
// overall average.
func Fig9(m *Matrix) Fig9Result {
	o := m.o
	res := Fig9Result{
		ClientFPS: make(map[PolicyID][]float64),
		LatencyMs: make(map[PolicyID][]float64),
	}
	for _, g := range pictor.Groups {
		res.Groups = append(res.Groups, g.String())
	}
	res.Groups = append(res.Groups, "OverallAvg")
	fmt.Fprintln(o.Out, "Figure 9a/9b: average client FPS and MtP latency")
	for _, id := range EvalPolicies {
		var fpsRow, latRow []float64
		for _, g := range pictor.Groups {
			fpsRow = append(fpsRow, m.groupMean(g, id, func(r *pipeline.Result) float64 { return r.ClientFPS }))
			latRow = append(latRow, m.groupMean(g, id, func(r *pipeline.Result) float64 { return r.MtP.Mean() }))
		}
		fpsRow = append(fpsRow, mean(fpsRow))
		latRow = append(latRow, mean(latRow))
		res.ClientFPS[id] = fpsRow
		res.LatencyMs[id] = latRow
	}
	for i, gname := range res.Groups {
		fmt.Fprintf(o.Out, "  %s:\n", gname)
		for _, id := range EvalPolicies {
			resn := pictor.R720p
			if i == 2 || i == 3 {
				resn = pictor.R1080p
			}
			fmt.Fprintf(o.Out, "    %-8s client FPS %7.1f   MtP %9.1f ms\n",
				label(id, resn), res.ClientFPS[id][i], res.LatencyMs[id][i])
		}
	}
	return res
}

// BoxCell is one benchmark × configuration box-plot entry.
type BoxCell struct {
	Benchmark string
	Config    string
	Box       metrics.Box
}

// fig10Groups are the three groups plotted in Figures 10 and 11.
var fig10Groups = []pictor.PlatformGroup{
	{Platform: pictor.PrivateCloud, Resolution: pictor.R720p},
	{Platform: pictor.GoogleGCE, Resolution: pictor.R720p},
	{Platform: pictor.GoogleGCE, Resolution: pictor.R1080p},
}

// Fig10 reproduces Figure 10: per-benchmark client-FPS distributions
// (1/25/mean/75/99 %ile over 200 ms windows) for the seven evaluation
// configurations in each of the three plotted groups.
func Fig10(m *Matrix) map[string][]BoxCell {
	o := m.o
	out := make(map[string][]BoxCell)
	fmt.Fprintln(o.Out, "Figure 10: client FPS distributions (p1/p25/mean/p75/p99)")
	for _, g := range fig10Groups {
		var cells []BoxCell
		fmt.Fprintf(o.Out, "  %s:\n", g)
		for _, b := range pictor.Benchmarks {
			for _, id := range EvalPolicies {
				r := m.Get(b, g, id)
				cells = append(cells, BoxCell{Benchmark: string(b), Config: r.Label, Box: r.ClientRates.Box()})
				fmt.Fprintf(o.Out, "    %-4s %-8s %s\n", b, r.Label, r.ClientRates.Box())
			}
		}
		out[g.String()] = cells
	}
	return out
}

// Fig11 reproduces Figure 11: per-benchmark MtP latency distributions for
// the same matrix as Figure 10.
func Fig11(m *Matrix) map[string][]BoxCell {
	o := m.o
	out := make(map[string][]BoxCell)
	fmt.Fprintln(o.Out, "Figure 11: MtP latency distributions in ms (p1/p25/mean/p75/p99)")
	for _, g := range fig10Groups {
		var cells []BoxCell
		fmt.Fprintf(o.Out, "  %s:\n", g)
		for _, b := range pictor.Benchmarks {
			for _, id := range EvalPolicies {
				r := m.Get(b, g, id)
				cells = append(cells, BoxCell{Benchmark: string(b), Config: r.Label, Box: r.MtP.Box()})
				fmt.Fprintf(o.Out, "    %-4s %-8s %s\n", b, r.Label, r.MtP.Box())
			}
		}
		out[g.String()] = cells
	}
	return out
}

// Fig12Row is one benchmark × configuration memory-efficiency entry
// (720p private cloud, Figure 12).
type Fig12Row struct {
	Benchmark  string
	Config     string
	IPC        float64
	MissRate   float64
	ReadTimeNs float64
}

// Fig12 reproduces Figure 12: per-benchmark IPC, DRAM row-buffer miss rate
// and DRAM read access time for the 720p private-cloud evaluation, plus the
// fleet averages the text quotes.
func Fig12(m *Matrix) []Fig12Row {
	o := m.o
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	policies := []PolicyID{NoReg, IntMax, RVSMax, ODRMax, IntGoal, RVSGoal, ODRGoal}
	var rows []Fig12Row
	fmt.Fprintln(o.Out, "Figure 12: memory efficiency (720p private cloud)")
	for _, b := range append(append([]pictor.Benchmark{}, pictor.Benchmarks...), "AVG") {
		for _, id := range policies {
			var row Fig12Row
			if b == "AVG" {
				row = Fig12Row{
					Benchmark:  "AVG",
					Config:     label(id, g.Resolution),
					IPC:        m.groupMean(g, id, func(r *pipeline.Result) float64 { return r.IPC }),
					MissRate:   m.groupMean(g, id, func(r *pipeline.Result) float64 { return r.MissRate }),
					ReadTimeNs: m.groupMean(g, id, func(r *pipeline.Result) float64 { return r.ReadTimeNs }),
				}
			} else {
				r := m.Get(b, g, id)
				row = Fig12Row{Benchmark: string(b), Config: r.Label, IPC: r.IPC, MissRate: r.MissRate, ReadTimeNs: r.ReadTimeNs}
			}
			rows = append(rows, row)
			fmt.Fprintf(o.Out, "  %-4s %-8s IPC %5.2f  miss %5.1f%%  read %5.1fns\n",
				row.Benchmark, row.Config, row.IPC, row.MissRate*100, row.ReadTimeNs)
		}
	}
	return rows
}

// Fig13Row is one benchmark × configuration power entry (Figure 13).
type Fig13Row struct {
	Benchmark string
	Config    string
	Watts     float64
}

// Fig13 reproduces Figure 13: per-benchmark wall power for the 720p
// private-cloud evaluation, plus the fleet average.
func Fig13(m *Matrix) []Fig13Row {
	o := m.o
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	policies := []PolicyID{NoReg, IntMax, RVSMax, ODRMax, IntGoal, RVSGoal, ODRGoal}
	var rows []Fig13Row
	fmt.Fprintln(o.Out, "Figure 13: power usage (720p private cloud)")
	for _, b := range append(append([]pictor.Benchmark{}, pictor.Benchmarks...), "AVG") {
		for _, id := range policies {
			var row Fig13Row
			if b == "AVG" {
				row = Fig13Row{
					Benchmark: "AVG",
					Config:    label(id, g.Resolution),
					Watts:     m.groupMean(g, id, func(r *pipeline.Result) float64 { return r.PowerWatts }),
				}
			} else {
				r := m.Get(b, g, id)
				row = Fig13Row{Benchmark: string(b), Config: r.Label, Watts: r.PowerWatts}
			}
			rows = append(rows, row)
			fmt.Fprintf(o.Out, "  %-4s %-8s %6.1f W\n", row.Benchmark, row.Config, row.Watts)
		}
	}
	return rows
}
