package experiments

import (
	"strings"
	"testing"
	"time"

	"odr/internal/pictor"
	"odr/internal/sched"
)

// testOptions keeps test wall time low; 15 simulated seconds are enough for
// the qualitative assertions (EXPERIMENTS.md uses 60 s runs).
func testOptions() Options {
	return Options{Duration: 15 * time.Second, Seed: 1}
}

func TestFig1ShowsGaps(t *testing.T) {
	r := Fig1(testOptions())
	if len(r.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %v", r.Benchmarks)
	}
	for i, b := range r.Benchmarks {
		if gap := r.CloudFPS[i] - r.ClientFPS[i]; gap < 40 {
			t.Errorf("%s: gap %.1f, want large", b, gap)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	rows := Fig3(testOptions())
	byName := map[string]Fig3Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	noreg, int60, intMax, rvs60, rvsMax := byName["NoReg"], byName["Int60"], byName["IntMax"], byName["RVS60"], byName["RVSMax"]
	// NoReg renders far above its encode rate; decode tracks encode.
	if noreg.RenderFPS < noreg.EncodeFPS+50 {
		t.Errorf("NoReg render %.0f vs encode %.0f: no excessive rendering", noreg.RenderFPS, noreg.EncodeFPS)
	}
	// Int60 misses the 60FPS target from below (§4.1).
	if int60.DecodeFPS >= 60 || int60.DecodeFPS < 48 {
		t.Errorf("Int60 decode FPS = %.1f, want in [48,60)", int60.DecodeFPS)
	}
	// IntMax lands well below NoReg's achievable client FPS.
	if intMax.DecodeFPS > noreg.DecodeFPS*0.7 {
		t.Errorf("IntMax decode FPS = %.1f vs NoReg %.1f: ratchet too weak", intMax.DecodeFPS, noreg.DecodeFPS)
	}
	// RVS60 stays below the 60Hz refresh; RVSMax below NoReg.
	if rvs60.DecodeFPS >= 60 {
		t.Errorf("RVS60 decode FPS = %.1f, want < 60", rvs60.DecodeFPS)
	}
	if rvsMax.DecodeFPS >= noreg.DecodeFPS {
		t.Errorf("RVSMax decode FPS = %.1f >= NoReg %.1f", rvsMax.DecodeFPS, noreg.DecodeFPS)
	}
}

func TestFig4HeavyTailShape(t *testing.T) {
	r := Fig4(testOptions())
	// §4.1: "about 80% - 90% of the frames' processing time is less than
	// 16.6 ms" for the slower steps; renders are faster still.
	if r.EncodeUnder16 < 0.70 || r.EncodeUnder16 > 0.99 {
		t.Errorf("encode under-16.6ms fraction = %.2f", r.EncodeUnder16)
	}
	if r.RenderUnder16 < 0.85 {
		t.Errorf("render under-16.6ms fraction = %.2f", r.RenderUnder16)
	}
	if len(r.TraceRender) < 90 {
		t.Errorf("trace has %d frames, want ~100", len(r.TraceRender))
	}
	if len(r.RenderCDFx) == 0 || len(r.EncodeCDFx) == 0 || len(r.TransCDFx) == 0 {
		t.Error("missing CDFs")
	}
}

func TestFig5TimelinesWellFormed(t *testing.T) {
	rows := Fig5(testOptions())
	if len(rows) != 3 {
		t.Fatalf("schemes = %d", len(rows))
	}
	for scheme, frames := range rows {
		if len(frames) == 0 {
			t.Errorf("%s: empty timeline", scheme)
			continue
		}
		for _, fr := range frames {
			if !(fr.RenderStart <= fr.RenderEnd && fr.RenderEnd <= fr.EncodeStart &&
				fr.EncodeStart <= fr.EncodeEnd && fr.EncodeEnd <= fr.DecodeEnd) {
				t.Errorf("%s: out-of-order timeline %+v", scheme, fr)
			}
		}
	}
}

func TestFig6LatencyOrdering(t *testing.T) {
	rows := Fig6(testOptions())
	byName := map[string]Fig6Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	// §4.2: the existing regulations inject delays that raise MtP latency
	// above NoReg.
	if byName["IntMax"].MeanMs <= byName["NoReg"].MeanMs {
		t.Errorf("IntMax MtP %.1f <= NoReg %.1f", byName["IntMax"].MeanMs, byName["NoReg"].MeanMs)
	}
	if byName["Int60"].MeanMs <= byName["NoReg"].MeanMs {
		t.Errorf("Int60 MtP %.1f <= NoReg %.1f", byName["Int60"].MeanMs, byName["NoReg"].MeanMs)
	}
}

func TestFig7MemoryOrdering(t *testing.T) {
	rows := Fig7(testOptions())
	byName := map[string]Fig7Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	nr, i60 := byName["NoReg"], byName["Int60"]
	if i60.MissRate >= nr.MissRate {
		t.Errorf("Int60 miss %.2f >= NoReg %.2f", i60.MissRate, nr.MissRate)
	}
	if i60.ReadTimeNs >= nr.ReadTimeNs {
		t.Errorf("Int60 read %.1f >= NoReg %.1f", i60.ReadTimeNs, nr.ReadTimeNs)
	}
	if i60.IPC <= nr.IPC {
		t.Errorf("Int60 IPC %.2f <= NoReg %.2f", i60.IPC, nr.IPC)
	}
}

// TestMatrixExperiments covers Table 2 and Figures 9-15 from one shared
// matrix (they are the expensive ones).
func TestMatrixExperiments(t *testing.T) {
	m := NewMatrix(testOptions())

	t.Run("Table2", func(t *testing.T) {
		groups := Table2(m)
		if len(groups) != 3 {
			t.Fatalf("groups = %d", len(groups))
		}
		for _, g := range groups {
			if g.AvgGap[NoReg] < 30 {
				t.Errorf("%s: NoReg gap %.1f too small", g.Group, g.AvgGap[NoReg])
			}
			for _, id := range []PolicyID{ODRMax, ODRGoal, ODRMaxNoPri} {
				if g.AvgGap[id] > 8 {
					t.Errorf("%s: %s gap %.1f, want < 8", g.Group, id, g.AvgGap[id])
				}
			}
			// Table 2's observation: PriorityFrame costs only a small
			// extra gap.
			if g.AvgGap[ODRMax]-g.AvgGap[ODRMaxNoPri] > 6 {
				t.Errorf("%s: PriorityFrame gap cost %.1f too large", g.Group, g.AvgGap[ODRMax]-g.AvgGap[ODRMaxNoPri])
			}
		}
	})

	t.Run("Fig9", func(t *testing.T) {
		r := Fig9(m)
		last := len(r.Groups) - 1
		if r.Groups[last] != "OverallAvg" {
			t.Fatalf("last group = %s", r.Groups[last])
		}
		// §6.6: ODRMax beats IntMax and RVSMax on overall client FPS...
		if r.ClientFPS[ODRMax][last] <= r.ClientFPS[IntMax][last] ||
			r.ClientFPS[ODRMax][last] <= r.ClientFPS[RVSMax][last] {
			t.Errorf("ODRMax FPS %.1f not above IntMax %.1f / RVSMax %.1f",
				r.ClientFPS[ODRMax][last], r.ClientFPS[IntMax][last], r.ClientFPS[RVSMax][last])
		}
		// ...and on overall MtP latency, by a lot against NoReg (>92%).
		if r.LatencyMs[ODRMax][last] > r.LatencyMs[NoReg][last]*0.15 {
			t.Errorf("ODRMax MtP %.1f not >85%% below NoReg %.1f",
				r.LatencyMs[ODRMax][last], r.LatencyMs[NoReg][last])
		}
		// ODR meets the fixed goals.
		got720 := r.ClientFPS[ODRGoal][0] // Priv720p
		if got720 < 59 || got720 > 68 {
			t.Errorf("ODR60 Priv720p FPS = %.1f", got720)
		}
		// NoReg on GCE shows the seconds-scale congestion latency.
		if r.LatencyMs[NoReg][1] < 800 {
			t.Errorf("NoReg GCE720p MtP = %.1fms, want seconds-scale", r.LatencyMs[NoReg][1])
		}
	})

	t.Run("Fig10", func(t *testing.T) {
		cells := Fig10(m)
		if len(cells) != 3 {
			t.Fatalf("groups = %d", len(cells))
		}
		for g, list := range cells {
			if len(list) != len(pictor.Benchmarks)*len(EvalPolicies) {
				t.Errorf("%s: %d cells", g, len(list))
			}
			for _, c := range list {
				b := c.Box
				if !(b.P1 <= b.P25 && b.P25 <= b.P75 && b.P75 <= b.P99) {
					t.Errorf("%s %s/%s: malformed box %+v", g, c.Benchmark, c.Config, b)
				}
			}
		}
	})

	t.Run("Fig11", func(t *testing.T) {
		cells := Fig11(m)
		for _, list := range cells {
			for _, c := range list {
				if c.Box.Mean < 0 {
					t.Errorf("negative latency: %+v", c)
				}
			}
		}
	})

	t.Run("Fig12", func(t *testing.T) {
		rows := Fig12(m)
		avg := map[string]Fig12Row{}
		for _, r := range rows {
			if r.Benchmark == "AVG" {
				avg[r.Config] = r
			}
		}
		if avg["ODR60"].IPC <= avg["NoReg"].IPC {
			t.Errorf("ODR60 avg IPC %.2f <= NoReg %.2f", avg["ODR60"].IPC, avg["NoReg"].IPC)
		}
		if avg["ODR60"].ReadTimeNs >= avg["NoReg"].ReadTimeNs {
			t.Errorf("ODR60 read %.1f >= NoReg %.1f", avg["ODR60"].ReadTimeNs, avg["NoReg"].ReadTimeNs)
		}
	})

	t.Run("Fig13", func(t *testing.T) {
		rows := Fig13(m)
		byKey := map[string]float64{}
		for _, r := range rows {
			byKey[r.Benchmark+"/"+r.Config] = r.Watts
		}
		if byKey["AVG/ODR60"] >= byKey["AVG/NoReg"] {
			t.Errorf("ODR60 avg power %.1f >= NoReg %.1f", byKey["AVG/ODR60"], byKey["AVG/NoReg"])
		}
		// §6.5: IMHOTEP has the largest unregulated power and the largest
		// ODR60 saving.
		if byKey["ITP/NoReg"] < byKey["AVG/NoReg"] {
			t.Errorf("ITP NoReg %.1fW below fleet average", byKey["ITP/NoReg"])
		}
		if save := 1 - byKey["ITP/ODR60"]/byKey["ITP/NoReg"]; save < 0.25 {
			t.Errorf("ITP ODR60 saving = %.0f%%, want large", save*100)
		}
	})

	t.Run("UserStudy", func(t *testing.T) {
		rows := UserStudy(m)
		ratings := map[string]float64{}
		for _, r := range rows {
			ratings[r.Config] = r.Result.MeanRating
			total := r.Result.Lags.Yes + r.Result.Lags.Maybe + r.Result.Lags.No
			if total != 30 {
				t.Errorf("%s: %d verdicts", r.Config, total)
			}
		}
		if ratings["ODRMax"] <= ratings["NoReg"] {
			t.Errorf("ODRMax rating %.1f <= NoReg %.1f", ratings["ODRMax"], ratings["NoReg"])
		}
		// ODRMax rates at least as well as the baselines (strictly better
		// over the full EXPERIMENTS.md durations; short test runs can tie).
		if ratings["ODRMax"] < ratings["IntMax"]-0.5 || ratings["ODRMax"] < ratings["RVSMax"]-0.5 {
			t.Errorf("ODRMax %.1f below IntMax %.1f / RVSMax %.1f",
				ratings["ODRMax"], ratings["IntMax"], ratings["RVSMax"])
		}
		if ratings["ODR30"] <= ratings["Int30"] || ratings["ODR30"] <= ratings["RVS30"] {
			t.Errorf("ODR30 %.1f not above Int30 %.1f / RVS30 %.1f",
				ratings["ODR30"], ratings["Int30"], ratings["RVS30"])
		}
	})

	t.Run("Summary", func(t *testing.T) {
		s := Summary(m)
		if s.ODRAvgGap > 8 || s.NoRegAvgGap < 60 {
			t.Errorf("gap summary: ODR %.1f, NoReg %.1f", s.ODRAvgGap, s.NoRegAvgGap)
		}
		if s.ODRGoalFPSvsTarget < 0.98 || s.ODRGoalFPSvsTarget > 1.10 {
			t.Errorf("ODR goal attainment = %.3f", s.ODRGoalFPSvsTarget)
		}
		if s.ODRMaxFPS <= s.IntMaxFPS || s.ODRMaxFPS <= s.RVSMaxFPS {
			t.Errorf("ODRMax FPS %.1f not the best", s.ODRMaxFPS)
		}
		if s.IPCGain <= 0 || s.ReadTimeDrop <= 0 || s.PowerDrop <= 0 {
			t.Errorf("efficiency gains not positive: %+v", s)
		}
	})
}

func TestAblationDirections(t *testing.T) {
	o := testOptions()
	t.Run("MulBuf2", func(t *testing.T) {
		rows := AblationMulBuf2(o)
		if rows[1].MtPMeanMs < rows[0].MtPMeanMs*5 {
			t.Errorf("removing Mul-Buf2 did not blow up latency: %.1f vs %.1f",
				rows[1].MtPMeanMs, rows[0].MtPMeanMs)
		}
	})
	t.Run("Acceleration", func(t *testing.T) {
		rows := AblationAcceleration(o)
		if rows[1].ClientFPS >= rows[0].ClientFPS {
			t.Errorf("delay-only FPS %.1f >= accelerating %.1f", rows[1].ClientFPS, rows[0].ClientFPS)
		}
	})
	t.Run("Priority", func(t *testing.T) {
		rows := AblationPriority(o)
		if rows[1].MtPMeanMs <= rows[0].MtPMeanMs {
			t.Errorf("noPri MtP %.1f <= priority %.1f", rows[1].MtPMeanMs, rows[0].MtPMeanMs)
		}
	})
	t.Run("Contention", func(t *testing.T) {
		rows := AblationContention(o)
		var odr, odrNC, nr, nrNC AblationRow
		for _, r := range rows {
			switch r.Variant {
			case "ODRMax":
				odr = r
			case "ODRMax-noContention":
				odrNC = r
			case "NoReg":
				nr = r
			case "NoReg-noContention":
				nrNC = r
			}
		}
		// With contention, ODRMax beats NoReg; without it, it cannot.
		if odr.ClientFPS <= nr.ClientFPS {
			t.Errorf("with contention: ODRMax %.1f <= NoReg %.1f", odr.ClientFPS, nr.ClientFPS)
		}
		if odrNC.ClientFPS > nrNC.ClientFPS {
			t.Errorf("without contention: ODRMax %.1f > NoReg %.1f (should not beat it)",
				odrNC.ClientFPS, nrNC.ClientFPS)
		}
	})
}

func TestReportWriting(t *testing.T) {
	var sb strings.Builder
	o := Options{Duration: 5 * time.Second, Seed: 1, Out: &sb}
	Fig1(o)
	if !strings.Contains(sb.String(), "Figure 1") {
		t.Fatalf("report missing header: %q", sb.String())
	}
}

func TestMatrixCaches(t *testing.T) {
	m := NewMatrix(Options{Duration: 5 * time.Second, Seed: 1})
	g := pictor.Groups[0]
	a := m.Get(pictor.IM, g, NoReg)
	b := m.Get(pictor.IM, g, NoReg)
	if a != b {
		t.Fatal("matrix did not cache the cell")
	}
}

func TestSeedForDistinguishesCells(t *testing.T) {
	g := pictor.Groups[0]
	a := seedFor(1, pictor.IM, g, NoReg)
	b := seedFor(1, pictor.RE, g, NoReg)
	c := seedFor(1, pictor.IM, g, ODRMax)
	if a == b || a == c {
		t.Fatal("seeds collide across cells")
	}
	if a != seedFor(1, pictor.IM, g, NoReg) {
		t.Fatal("seedFor not deterministic")
	}
}

func TestLabelResolution(t *testing.T) {
	if label(IntGoal, pictor.R720p) != "Int60" || label(IntGoal, pictor.R1080p) != "Int30" {
		t.Fatal("Int goal labels wrong")
	}
	if label(ODRMaxNoPri, pictor.R720p) != "ODRMax-noPri" {
		t.Fatal("noPri label wrong")
	}
}

func TestPrefetchMatchesSequential(t *testing.T) {
	o := Options{Duration: 5 * time.Second, Seed: 1}
	seq := NewMatrix(o)
	par := NewMatrix(Options{Duration: 5 * time.Second, Seed: 1, Runner: sched.New(sched.Options{Workers: 4})})
	par.Prefetch()
	g := pictor.Groups[1]
	for _, id := range []PolicyID{NoReg, ODRGoal} {
		a := seq.Get(pictor.IM, g, id)
		b := par.Get(pictor.IM, g, id)
		if a.ClientFPS != b.ClientFPS || a.MtP.Mean() != b.MtP.Mean() {
			t.Fatalf("%s: prefetched cell differs: %.3f/%.3f vs %.3f/%.3f",
				id, a.ClientFPS, a.MtP.Mean(), b.ClientFPS, b.MtP.Mean())
		}
	}
}
