package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestVRRStudyShapes(t *testing.T) {
	rows := VRRStudy(testOptions())
	byName := map[string]VRRRow{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	fixed, vrr := byName["ODRMax+fixed60Hz"], byName["ODRMax+VRR"]
	// VRR keeps the throughput...
	if vrr.ClientFPS < fixed.ClientFPS*0.95 {
		t.Errorf("VRR lost throughput: %.1f vs %.1f", vrr.ClientFPS, fixed.ClientFPS)
	}
	// ...and without latency cost...
	if vrr.MtPMeanMs > fixed.MtPMeanMs*1.2 {
		t.Errorf("VRR latency %.1f >> fixed %.1f", vrr.MtPMeanMs, fixed.MtPMeanMs)
	}
	// ...while eliminating tearing, which the 94FPS-on-60Hz fixed display
	// suffers badly.
	if fixed.Tearing < 0.2 {
		t.Errorf("fixed display tearing %.2f, expected substantial", fixed.Tearing)
	}
	if vrr.Tearing > 0.05 {
		t.Errorf("VRR tearing %.2f, expected ~0", vrr.Tearing)
	}
	if vrr.Rating <= fixed.Rating {
		t.Errorf("VRR rating %.1f not above fixed %.1f", vrr.Rating, fixed.Rating)
	}
}

func TestConsolidationShapes(t *testing.T) {
	rows := Consolidation(testOptions())
	type key struct {
		policy   string
		sessions int
	}
	byKey := map[key]ConsolidationRow{}
	for _, r := range rows {
		byKey[key{r.Policy, r.Sessions}] = r
	}
	// Physical discipline: delivered GPU work never exceeds the capacity.
	for _, r := range rows {
		if r.GPULoad > 1.08 {
			t.Errorf("%s x%d: GPU load %.2f exceeds 1 GPU", r.Policy, r.Sessions, r.GPULoad)
		}
	}
	// ODR is cheaper at partial occupancy...
	if odr1, nr1 := byKey[key{"ODR60", 1}], byKey[key{"NoReg", 1}]; odr1.ServerWatts >= nr1.ServerWatts*0.85 {
		t.Errorf("ODR x1 power %.1f not well below NoReg %.1f", odr1.ServerWatts, nr1.ServerWatts)
	}
	// ...and lower-latency at every occupancy.
	for k := 1; k <= 4; k++ {
		odr, nr := byKey[key{"ODR60", k}], byKey[key{"NoReg", k}]
		if odr.MeanMtPMs >= nr.MeanMtPMs {
			t.Errorf("x%d: ODR MtP %.1f >= NoReg %.1f", k, odr.MeanMtPMs, nr.MeanMtPMs)
		}
	}
	// Both policies saturate the same GPU: neither supports 6 sessions.
	if byKey[key{"ODR60", 6}].QoSMet > 0 || byKey[key{"NoReg", 6}].QoSMet > 0 {
		t.Error("six IM sessions cannot fit one GPU at 60FPS")
	}
	// And both fit two comfortably.
	if byKey[key{"ODR60", 2}].QoSMet != 2 {
		t.Errorf("ODR x2 QoS met = %d", byKey[key{"ODR60", 2}].QoSMet)
	}
}

func TestWriteCSVArtifacts(t *testing.T) {
	m := NewMatrix(Options{Duration: 5 * 1e9, Seed: 1})
	dir := t.TempDir()
	files, err := WriteCSVArtifacts(m, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := expectedCSVRows()
	if len(files) != len(want) {
		t.Fatalf("wrote %d files, want %d", len(files), len(want))
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		rows := strings.Count(string(data), "\n") - 1 // minus header
		name := filepath.Base(f)
		if rows != want[name] {
			t.Errorf("%s: %d rows, want %d", name, rows, want[name])
		}
	}
}

func TestFidelityAnchors(t *testing.T) {
	// Shorter runs than the EXPERIMENTS.md reference add noise; allow two
	// marginal anchors to wobble but no more.
	m := NewMatrix(testOptions())
	rows := Fidelity(m)
	if len(rows) < 30 {
		t.Fatalf("only %d anchors", len(rows))
	}
	var missed []string
	for _, r := range rows {
		if !r.OK {
			missed = append(missed, r.Name)
		}
	}
	if len(missed) > 2 {
		t.Fatalf("%d paper anchors out of tolerance: %v", len(missed), missed)
	}
}

func TestConsolidationMixShapes(t *testing.T) {
	rows := ConsolidationMix(testOptions())
	byPolicy := map[string]MixRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	nr, od := byPolicy["NoReg"], byPolicy["ODR60"]
	// The mix fits the GPU: ODR meets QoS for everyone.
	if !od.HeavyQoS || od.LightQoS != od.LightN {
		t.Fatalf("ODR mixed group missed QoS: %+v", od)
	}
	// NoReg's sessions pay a latency premium at equal occupancy.
	if nr.HeavyMtP <= od.HeavyMtP && nr.LightMtP <= od.LightMtP {
		t.Fatalf("NoReg latency premium missing: ITP %.1f vs %.1f, STK %.1f vs %.1f",
			nr.HeavyMtP, od.HeavyMtP, nr.LightMtP, od.LightMtP)
	}
}
