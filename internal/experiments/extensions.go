package experiments

import (
	"fmt"

	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/qoe"
	"odr/internal/sched"
)

// These experiments go beyond the paper's evaluation, covering its stated
// future work (§5.2: client-side optimizations such as FreeSync/G-Sync
// displays) and the resource-efficiency question the introduction motivates
// (how many sessions fit on one cloud server at QoS).

// VRRRow is one configuration of the variable-refresh-rate client study.
type VRRRow struct {
	Config       string
	ClientFPS    float64
	MtPMeanMs    float64
	StutterIndex float64
	Tearing      float64
	Rating       float64
}

// VRRStudy evaluates the §5.2 future-work claim: ODR generates enough
// frames at the target rate but they arrive at varying times; a
// FreeSync/G-Sync client (here 48-144 Hz) displays them on arrival with no
// tearing, so user experience improves without any server-side change.
// Compared against the same stream on a fixed 60 Hz unsynchronized display
// and on an RVS-style vsynced display.
func VRRStudy(o Options) []VRRRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	panel := qoe.NewPanel(30, o.Seed+78)
	cell := func(id PolicyID, vrr bool, name string) sched.Cell {
		c := cellFor(o, pictor.IM, g, id)
		c.Config.Label = name
		if vrr {
			c.Config.VRRMinHz, c.Config.VRRMaxHz = 48, 144
		}
		return c
	}
	cells := []sched.Cell{
		cell(ODRGoal, false, "ODR60+fixed60Hz"),
		cell(ODRGoal, true, "ODR60+VRR"),
		cell(ODRMax, false, "ODRMax+fixed60Hz"),
		cell(ODRMax, true, "ODRMax+VRR"),
		cell(RVSGoal, false, "RVS60+vsync60Hz"),
	}
	// The simulations run through the scheduler; the panel evaluations stay
	// in submission order afterwards, so the panel's RNG consumption — and
	// therefore every rating — matches a sequential run exactly.
	var rows []VRRRow
	for _, r := range o.Runner.Run(cells) {
		inter := &r.InterDisplay
		stutter := qoe.StutterIndexFrom(inter.Mean(), inter.Stddev(), inter.Percentile(50), inter.Percentile(99))
		obs := qoe.Observation{
			MeanFPS:      r.ClientFPS,
			TailFPS:      r.ClientRates.Percentile(1),
			MeanLatency:  r.MtP.Mean(),
			TailLatency:  r.MtP.Percentile(99),
			StutterIndex: stutter,
			DisplayRate:  r.ClientFPS,
			RefreshHz:    60,
			VSynced:      r.VSynced || r.VRR, // VRR panels never tear
		}
		rows = append(rows, VRRRow{
			Config:       r.Label,
			ClientFPS:    r.ClientFPS,
			MtPMeanMs:    r.MtP.Mean(),
			StutterIndex: stutter,
			Tearing:      obs.TearingExposure(),
			Rating:       panel.Evaluate(obs).MeanRating,
		})
	}
	fmt.Fprintln(o.Out, "Extension: variable-refresh-rate client (InMind, 720p private)")
	for _, r := range rows {
		fmt.Fprintf(o.Out, "  %-18s client %6.1f FPS  MtP %6.1f ms  stutter %.2f  tearing %.2f  rating %4.1f\n",
			r.Config, r.ClientFPS, r.MtPMeanMs, r.StutterIndex, r.Tearing, r.Rating)
	}
	return rows
}

// ConsolidationRow is one (policy, session-count) cell of the
// server-consolidation study.
type ConsolidationRow struct {
	Policy       string
	Sessions     int
	QoSMet       int // sessions with FPS >= 95% of target and MtP <= 100ms
	MeanFPS      float64
	MeanMtPMs    float64
	ServerWatts  float64
	WattsPerGood float64 // server power per QoS-meeting session
	GPULoad      float64
}

// Consolidation answers the resource-efficiency question behind the paper's
// motivation: how many 60 FPS cloud-gaming sessions fit on one server (one
// GPU, four encode cores) under each policy?
//
// The result is instructive in both directions. The GPU's raw throughput
// caps both policies at the same session count — once the GPU is
// time-shared, a co-located session's demand simply absorbs NoReg's
// excessive rendering, so consolidation is itself a (crude) form of FPS
// regulation. What co-location does NOT fix is the per-session cost of
// NoReg: every session keeps the queueing latency of its excess frames
// (~30 % higher MtP at every occupancy), and at partial occupancy the
// server burns 14-31 % more power rendering frames nobody sees. ODR
// delivers the same sessions-per-server with lower latency everywhere and
// pays for resources only in proportion to delivered frames.
func Consolidation(o Options) []ConsolidationRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	const targetFPS = 60.0
	fmt.Fprintln(o.Out, "Extension: server consolidation (InMind sessions, 1 GPU + 4 encode cores, QoS = 57 FPS & 100 ms)")
	type combo struct {
		id PolicyID
		k  int
	}
	var combos []combo
	for _, id := range []PolicyID{NoReg, ODRGoal} {
		for _, k := range []int{1, 2, 3, 4, 5, 6} {
			combos = append(combos, combo{id, k})
		}
	}
	// Group simulations are whole-server runs, not cacheable cells, but each
	// combo is still an independent deterministic simulation: Map runs them
	// across the runner's workers and returns them in combo order.
	groups := sched.Map(o.Runner.Workers(), len(combos), func(ci int) *pipeline.GroupResult {
		id, k := combos[ci].id, combos[ci].k
		var sessions []pipeline.Config
		for i := 0; i < k; i++ {
			sessions = append(sessions, pipeline.Config{
				Label:    label(id, g.Resolution),
				Workload: pictor.IM.Params(),
				Scale:    pictor.Scale(g.Platform, g.Resolution),
				Net:      pictor.Network(g.Platform),
				Policy:   factory(id, g.Resolution),
				Duration: o.Duration,
				Seed:     seedFor(o.Seed+int64(i)*31, pictor.IM, g, id),
			})
		}
		return pipeline.RunGroup(pipeline.GroupConfig{
			Sessions:    sessions,
			GPUCapacity: 1,
			CPUCores:    4,
		})
	})
	var rows []ConsolidationRow
	for ci, gr := range groups {
		id, k := combos[ci].id, combos[ci].k
		row := ConsolidationRow{
			Policy:      label(id, g.Resolution),
			Sessions:    k,
			ServerWatts: gr.ServerPowerWatts,
			GPULoad:     gr.GPULoad,
		}
		for _, r := range gr.Per {
			row.MeanFPS += r.ClientFPS / float64(k)
			row.MeanMtPMs += r.MtP.Mean() / float64(k)
			if r.ClientFPS >= targetFPS*0.95 && r.MtP.Mean() <= 100 {
				row.QoSMet++
			}
		}
		if row.QoSMet > 0 {
			row.WattsPerGood = row.ServerWatts / float64(row.QoSMet)
		}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  %-6s x%d: QoS-met %d/%d  mean %5.1f FPS  MtP %6.1f ms  server %5.1f W  (%.0f W/session at QoS)  GPU load %.2f\n",
			row.Policy, k, row.QoSMet, k, row.MeanFPS, row.MeanMtPMs, row.ServerWatts, row.WattsPerGood, row.GPULoad)
	}
	return rows
}

// MixRow is one heterogeneous-consolidation cell.
type MixRow struct {
	Policy   string
	Heavy    string // the GPU-heavy session's benchmark
	HeavyFPS float64
	HeavyMtP float64
	LightFPS float64 // mean over the light sessions
	LightMtP float64
	ServerW  float64
	HeavyQoS bool
	LightQoS int
	LightN   int
}

// ConsolidationMix co-locates one GPU-heavy VR session (IMHOTEP) with two
// light racing sessions (SuperTuxKart) on one server — a mix that fits the
// GPU at 60 FPS each — and asks what each policy costs the neighbors.
// Capacity-wise the policies tie (time-sharing absorbs NoReg's excess), but
// every NoReg session pays its own queueing-latency premium.
func ConsolidationMix(o Options) []MixRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	const lightN = 2
	var rows []MixRow
	fmt.Fprintln(o.Out, "Extension: heterogeneous consolidation (1x IMHOTEP + 2x SuperTuxKart, 1 GPU + 4 cores)")
	ids := []PolicyID{NoReg, ODRGoal}
	groups := sched.Map(o.Runner.Workers(), len(ids), func(ci int) *pipeline.GroupResult {
		id := ids[ci]
		sessions := []pipeline.Config{{
			Label:    label(id, g.Resolution),
			Workload: pictor.ITP.Params(),
			Scale:    pictor.Scale(g.Platform, g.Resolution),
			Net:      pictor.Network(g.Platform),
			Policy:   factory(id, g.Resolution),
			Duration: o.Duration,
			Seed:     seedFor(o.Seed, pictor.ITP, g, id),
		}}
		for i := 0; i < lightN; i++ {
			sessions = append(sessions, pipeline.Config{
				Label:    label(id, g.Resolution),
				Workload: pictor.STK.Params(),
				Scale:    pictor.Scale(g.Platform, g.Resolution),
				Net:      pictor.Network(g.Platform),
				Policy:   factory(id, g.Resolution),
				Duration: o.Duration,
				Seed:     seedFor(o.Seed+int64(i)*31, pictor.STK, g, id),
			})
		}
		return pipeline.RunGroup(pipeline.GroupConfig{Sessions: sessions, GPUCapacity: 1, CPUCores: 4})
	})
	for ci, gr := range groups {
		id := ids[ci]
		row := MixRow{
			Policy:  label(id, g.Resolution),
			Heavy:   string(pictor.ITP),
			ServerW: gr.ServerPowerWatts,
			LightN:  lightN,
		}
		heavy := gr.Per[0]
		row.HeavyFPS = heavy.ClientFPS
		row.HeavyMtP = heavy.MtP.Mean()
		row.HeavyQoS = heavy.ClientFPS >= 57 && heavy.MtP.Mean() <= 100
		for _, r := range gr.Per[1:] {
			row.LightFPS += r.ClientFPS / lightN
			row.LightMtP += r.MtP.Mean() / lightN
			if r.ClientFPS >= 57 && r.MtP.Mean() <= 100 {
				row.LightQoS++
			}
		}
		rows = append(rows, row)
		fmt.Fprintf(o.Out, "  %-6s ITP %5.1f FPS / %5.1f ms (QoS %v)   STK mean %5.1f FPS / %5.1f ms (QoS %d/%d)   server %5.1f W\n",
			row.Policy, row.HeavyFPS, row.HeavyMtP, row.HeavyQoS, row.LightFPS, row.LightMtP, row.LightQoS, lightN, row.ServerW)
	}
	return rows
}
