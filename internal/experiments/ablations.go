package experiments

import (
	"fmt"
	"time"

	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/regulator"
	"odr/internal/sched"
)

// AblationRow is one variant of an ablation study.
type AblationRow struct {
	Variant   string
	ClientFPS float64
	TailFPS   float64 // 1 %ile of 200 ms windows
	GapMean   float64
	MtPMeanMs float64
	MtPP99Ms  float64
	Drops     int64
}

func ablRow(r *pipeline.Result, variant string) AblationRow {
	return AblationRow{
		Variant:   variant,
		ClientFPS: r.ClientFPS,
		TailFPS:   r.ClientRates.Percentile(1),
		GapMean:   r.GapMean,
		MtPMeanMs: r.MtP.Mean(),
		MtPP99Ms:  r.MtP.Percentile(99),
		Drops:     r.FramesDropped,
	}
}

// runAblation executes one ablation's variant cells through the scheduler
// and reduces them to rows in submission order.
func runAblation(o Options, cells []sched.Cell) []AblationRow {
	results := o.Runner.Run(cells)
	rows := make([]AblationRow, len(results))
	for i, r := range results {
		rows[i] = ablRow(r, cells[i].Config.Label)
	}
	return rows
}

func odrVariantCell(o Options, b pictor.Benchmark, g pictor.PlatformGroup, opts regulator.ODROptions, variant string, extra func(*pipeline.Config)) sched.Cell {
	cfg := pipeline.Config{
		Label:    variant,
		Workload: b.Params(),
		Scale:    pictor.Scale(g.Platform, g.Resolution),
		Net:      pictor.Network(g.Platform),
		Policy: func(ctx *regulator.Ctx) regulator.Policy {
			return regulator.NewODR(ctx, opts)
		},
		Duration: o.Duration,
		Seed:     seedFor(o.Seed, b, g, PolicyID(variant)),
	}
	if extra != nil {
		extra(&cfg)
	}
	return sched.Cell{PolicyKey: odrKey(opts), Config: cfg}
}

// AblationMulBuf2 isolates design choice 1 (DESIGN.md §5): Mul-Buf2's
// backpressure versus an unbounded tail-drop send queue, on the GCE path
// where the queue is the latency bomb.
func AblationMulBuf2(o Options) []AblationRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.GoogleGCE, Resolution: pictor.R720p}
	rows := runAblation(o, []sched.Cell{
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{}, "ODRMax", nil),
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{DisableMulBuf2: true}, "ODRMax-noBuf2", nil),
	})
	printAblation(o, "Ablation: Mul-Buf2 backpressure (InMind, 720p GCE)", rows)
	return rows
}

// AblationAcceleration isolates design choice 2: Algorithm 1's acceleration
// (negative acc_delay carry-over) versus delay-only pacing, under the 60 FPS
// goal where the difference decides whether the target is met.
func AblationAcceleration(o Options) []AblationRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	rows := runAblation(o, []sched.Cell{
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{TargetFPS: 60}, "ODR60", nil),
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{TargetFPS: 60, DelayOnly: true}, "ODR60-delayOnly", nil),
	})
	printAblation(o, "Ablation: pacer acceleration vs delay-only (InMind, 720p private)", rows)
	return rows
}

// AblationPriority isolates design choice 3: PriorityFrame's effect on MtP
// latency (and its negligible cost in FPS gap — Table 2's ODRMax-noPri row).
func AblationPriority(o Options) []AblationRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	rows := runAblation(o, []sched.Cell{
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{}, "ODRMax", nil),
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{DisablePriority: true}, "ODRMax-noPri", nil),
	})
	printAblation(o, "Ablation: PriorityFrame (InMind, 720p private)", rows)
	return rows
}

// AblationRVSFeedback isolates design choice 4: how much of RVS's FPS loss
// is the network feedback path versus the filter itself, by running RVS
// against a hypothetical zero-RTT path for its feedback while the frames
// still traverse the real path. Implemented by comparing RVS on the GCE
// path (25 ms RTT) against RVS on an otherwise-identical path with
// negligible RTT.
func AblationRVSFeedback(o Options) []AblationRow {
	o = o.withDefaults()
	cell := func(rtt time.Duration, cc float64, variant string) sched.Cell {
		net := pictor.Network(pictor.GoogleGCE)
		net.RTT = rtt
		return sched.Cell{
			PolicyKey: rvsKey(60, cc),
			Config: pipeline.Config{
				Label:    variant,
				Workload: pictor.IM.Params(),
				Scale:    pictor.Scale(pictor.GoogleGCE, pictor.R720p),
				Net:      net,
				Policy: func(ctx *regulator.Ctx) regulator.Policy {
					return regulator.NewRVS(ctx, 60, cc)
				},
				Duration: o.Duration,
				Seed:     o.Seed + 13,
			},
		}
	}
	rows := runAblation(o, []sched.Cell{
		cell(25*time.Millisecond, 0, "RVS60-rtt25ms"),
		cell(time.Millisecond, 0, "RVS60-rtt1ms"),
		cell(25*time.Millisecond, 0.05, "RVS60-cc0.05"),
		cell(25*time.Millisecond, 1.0, "RVS60-cc1.0"),
	})
	printAblation(o, "Ablation: RVS feedback path length and filter strength (InMind, GCE-like path)", rows)
	return rows
}

// AblationContention isolates the DRAM-contention feedback behind ODRMax's
// client-FPS gain (§6.3): with the contention model frozen, ODRMax can only
// match NoReg, never beat it.
func AblationContention(o Options) []AblationRow {
	o = o.withDefaults()
	g := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	freeze := func(c *pipeline.Config) { c.DisableContention = true }
	cells := []sched.Cell{
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{}, "ODRMax", nil),
		odrVariantCell(o, pictor.IM, g, regulator.ODROptions{}, "ODRMax-noContention", freeze),
	}
	// NoReg reference points with and without contention.
	for _, frozen := range []bool{false, true} {
		c := cellFor(o, pictor.IM, g, NoReg)
		if frozen {
			c.Config.DisableContention = true
			c.Config.Label = "NoReg-noContention"
		}
		cells = append(cells, c)
	}
	rows := runAblation(o, cells)
	printAblation(o, "Ablation: DRAM-contention feedback (InMind, 720p private)", rows)
	return rows
}

func printAblation(o Options, title string, rows []AblationRow) {
	fmt.Fprintln(o.Out, title)
	for _, r := range rows {
		fmt.Fprintf(o.Out, "  %-20s client %6.1f FPS (p1 %5.1f)  gap %6.1f  MtP %8.1f ms (p99 %8.1f)  drops %d\n",
			r.Variant, r.ClientFPS, r.TailFPS, r.GapMean, r.MtPMeanMs, r.MtPP99Ms, r.Drops)
	}
}
