package experiments

import (
	"fmt"

	"odr/internal/pictor"
	"odr/internal/pipeline"
	"odr/internal/qoe"
)

// UserStudyRow is one configuration of Figures 14 and 15.
type UserStudyRow struct {
	Config string
	Result qoe.StudyResult
}

// userStudyPolicies mirrors §6.7: local execution plus NoReg and the three
// regulators under both QoS goals, at 1080p on GCE with a 60 Hz client
// display.
var userStudyPolicies = []PolicyID{NoReg, IntMax, RVSMax, ODRMax, IntGoal, RVSGoal, ODRGoal}

// observationOf converts a pipeline result into the QoE panel's input.
func observationOf(r *pipeline.Result) qoe.Observation {
	inter := &r.InterDisplay
	stutter := qoe.StutterIndexFrom(inter.Mean(), inter.Stddev(), inter.Percentile(50), inter.Percentile(99))
	return qoe.Observation{
		MeanFPS:      r.ClientFPS,
		TailFPS:      r.ClientRates.Percentile(1),
		MeanLatency:  r.MtP.Mean(),
		TailLatency:  r.MtP.Percentile(99),
		StutterIndex: stutter,
		DisplayRate:  r.ClientFPS,
		RefreshHz:    60,
		VSynced:      r.VSynced,
	}
}

// UserStudy reproduces Figures 14 and 15: the §6.7 panel (a 30-participant
// model; see package qoe) rates NonCloud plus the seven cloud
// configurations at 1080p on GCE and reports lag/stutter/tearing verdicts.
// As in the paper, each participant plays one randomly-assigned benchmark
// under every configuration.
func UserStudy(m *Matrix) []UserStudyRow {
	o := m.o
	g := pictor.PlatformGroup{Platform: pictor.GoogleGCE, Resolution: pictor.R1080p}
	panel := qoe.NewPanel(30, o.Seed+77)
	// Deterministic benchmark assignment, one per participant.
	assign := make([]pictor.Benchmark, panel.Size())
	for i := range assign {
		assign[i] = pictor.Benchmarks[(i*7+int(o.Seed))%len(pictor.Benchmarks)]
	}
	fmt.Fprintln(o.Out, "Figures 14/15: user-experience panel (modeled 30-participant study, 1080p GCE)")
	rows := []UserStudyRow{{Config: "NonCloud", Result: panel.Evaluate(qoe.NonCloud())}}
	for _, id := range userStudyPolicies {
		obs := make([]qoe.Observation, panel.Size())
		var label string
		for i, b := range assign {
			r := m.Get(b, g, id)
			obs[i] = observationOf(r)
			label = r.Label
		}
		rows = append(rows, UserStudyRow{Config: label, Result: panel.EvaluateAssigned(obs)})
	}
	for _, row := range rows {
		res := row.Result
		fmt.Fprintf(o.Out, "  %-8s rating %4.1f   lags Y/M/N %2d/%2d/%2d   stutter %2d/%2d/%2d   tearing %2d/%2d/%2d\n",
			row.Config, res.MeanRating,
			res.Lags.Yes, res.Lags.Maybe, res.Lags.No,
			res.Stutters.Yes, res.Stutters.Maybe, res.Stutters.No,
			res.Tearing.Yes, res.Tearing.Maybe, res.Tearing.No)
	}
	return rows
}

// SummaryResult carries the §6.6 overall averages used in the abstract and
// evaluation summary.
type SummaryResult struct {
	// FPS gap overall (all benchmarks, all 28 configurations).
	ODRAvgGap, ODRMaxGap float64
	NoRegAvgGap          float64
	// Client FPS overall averages.
	ODRMaxFPS, NoRegFPS, IntMaxFPS, RVSMaxFPS float64
	ODRGoalFPSvsTarget                        float64 // ODR60/30 mean over target (1.0 = exactly met)
	// MtP latency overall averages (ms).
	ODRMaxLat, NoRegLat, IntMaxLat, RVSMaxLat float64
	// Efficiency (720p private cloud, ODR average over Max+60 vs NoReg).
	IPCGain, MissRateDrop, ReadTimeDrop, PowerDrop float64
}

// Summary reproduces the §6.6 evaluation summary / abstract numbers.
func Summary(m *Matrix) SummaryResult {
	o := m.o
	var s SummaryResult
	odrIDs := []PolicyID{ODRMax, ODRGoal}
	var odrGaps, noregGaps []float64
	var odrTargets []float64
	for _, g := range pictor.Groups {
		for _, b := range pictor.Benchmarks {
			for _, id := range odrIDs {
				r := m.Get(b, g, id)
				odrGaps = append(odrGaps, r.GapMean)
				if r.GapMax > s.ODRMaxGap {
					s.ODRMaxGap = r.GapMax
				}
				if id == ODRGoal {
					odrTargets = append(odrTargets, r.ClientFPS/g.Resolution.TargetFPS())
				}
			}
			noregGaps = append(noregGaps, m.Get(b, g, NoReg).GapMean)
		}
	}
	s.ODRAvgGap = mean(odrGaps)
	s.NoRegAvgGap = mean(noregGaps)
	s.ODRGoalFPSvsTarget = mean(odrTargets)

	overall := func(id PolicyID, f func(*pipeline.Result) float64) float64 {
		var rows []float64
		for _, g := range pictor.Groups {
			rows = append(rows, m.groupMean(g, id, f))
		}
		return mean(rows)
	}
	fps := func(r *pipeline.Result) float64 { return r.ClientFPS }
	lat := func(r *pipeline.Result) float64 { return r.MtP.Mean() }
	s.ODRMaxFPS = overall(ODRMax, fps)
	s.NoRegFPS = overall(NoReg, fps)
	s.IntMaxFPS = overall(IntMax, fps)
	s.RVSMaxFPS = overall(RVSMax, fps)
	s.ODRMaxLat = overall(ODRMax, lat)
	s.NoRegLat = overall(NoReg, lat)
	s.IntMaxLat = overall(IntMax, lat)
	s.RVSMaxLat = overall(RVSMax, lat)

	// Efficiency on the 720p private cloud, ODR (Max and 60) vs NoReg.
	gp := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	gm := func(id PolicyID, f func(*pipeline.Result) float64) float64 { return m.groupMean(gp, id, f) }
	ipc := func(r *pipeline.Result) float64 { return r.IPC }
	miss := func(r *pipeline.Result) float64 { return r.MissRate }
	read := func(r *pipeline.Result) float64 { return r.ReadTimeNs }
	pow := func(r *pipeline.Result) float64 { return r.PowerWatts }
	odrIPC := (gm(ODRMax, ipc) + gm(ODRGoal, ipc)) / 2
	odrMiss := (gm(ODRMax, miss) + gm(ODRGoal, miss)) / 2
	odrRead := (gm(ODRMax, read) + gm(ODRGoal, read)) / 2
	odrPow := (gm(ODRMax, pow) + gm(ODRGoal, pow)) / 2
	s.IPCGain = odrIPC/gm(NoReg, ipc) - 1
	s.MissRateDrop = 1 - odrMiss/gm(NoReg, miss)
	s.ReadTimeDrop = 1 - odrRead/gm(NoReg, read)
	s.PowerDrop = 1 - odrPow/gm(NoReg, pow)

	fmt.Fprintln(o.Out, "Section 6.6 summary (overall averages):")
	fmt.Fprintf(o.Out, "  FPS gap: NoReg %.1f -> ODR %.1f (max %.1f)\n", s.NoRegAvgGap, s.ODRAvgGap, s.ODRMaxGap)
	fmt.Fprintf(o.Out, "  client FPS: ODRMax %.1f vs NoReg %.1f (%+.1f%%), IntMax %.1f, RVSMax %.1f\n",
		s.ODRMaxFPS, s.NoRegFPS, 100*(s.ODRMaxFPS/s.NoRegFPS-1), s.IntMaxFPS, s.RVSMaxFPS)
	fmt.Fprintf(o.Out, "  ODR fixed-goal FPS vs target: %.3f of target\n", s.ODRGoalFPSvsTarget)
	fmt.Fprintf(o.Out, "  MtP: ODRMax %.1fms vs NoReg %.1fms (%.1f%% faster), IntMax %.1f, RVSMax %.1f\n",
		s.ODRMaxLat, s.NoRegLat, 100*(1-s.ODRMaxLat/s.NoRegLat), s.IntMaxLat, s.RVSMaxLat)
	fmt.Fprintf(o.Out, "  efficiency vs NoReg (720p priv): IPC %+.1f%%, miss rate -%.1f%%, read time -%.1f%%, power -%.1f%%\n",
		100*s.IPCGain, 100*s.MissRateDrop, 100*s.ReadTimeDrop, 100*s.PowerDrop)
	return s
}
