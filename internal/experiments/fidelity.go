package experiments

import (
	"fmt"
	"math"

	"odr/internal/pictor"
	"odr/internal/pipeline"
)

// FidelityRow is one paper-anchor check: the value the paper reports, the
// value this reproduction measures, and whether the measurement lands
// inside the declared tolerance band.
type FidelityRow struct {
	Name      string
	Paper     float64
	Measured  float64
	Tolerance float64 // relative band, e.g. 0.25 = ±25 %
	OK        bool
}

// Fidelity runs the executable version of EXPERIMENTS.md: every headline
// paper number with a declared tolerance, measured fresh and checked. The
// tolerances encode "shape fidelity" — tight (10-25 %) where the simulator
// is calibrated directly, loose (50 %+) where only the direction and order
// of magnitude are claimed.
func Fidelity(m *Matrix) []FidelityRow {
	o := m.o
	g720 := pictor.PlatformGroup{Platform: pictor.PrivateCloud, Resolution: pictor.R720p}
	gce720 := pictor.PlatformGroup{Platform: pictor.GoogleGCE, Resolution: pictor.R720p}

	var rows []FidelityRow
	add := func(name string, paper, measured, tol float64) {
		ok := paper != 0 && math.Abs(measured-paper)/math.Abs(paper) <= tol
		rows = append(rows, FidelityRow{Name: name, Paper: paper, Measured: measured, Tolerance: tol, OK: ok})
	}

	// §4.1 / Fig. 3 — InMind under the analysis configurations.
	im := func(id PolicyID) *pipeline.Result { return m.Get(pictor.IM, g720, id) }
	add("Fig3 IM NoReg render FPS", 189, im(NoReg).RenderFPS, 0.15)
	add("Fig3 IM NoReg client FPS", 93, im(NoReg).ClientFPS, 0.10)
	add("Fig3 IM NoReg render-encode gap", 96, im(NoReg).RenderFPS-im(NoReg).EncodeFPS, 0.20)
	add("Fig3 IM Int60 client FPS", 53, im(IntGoal).ClientFPS, 0.10)
	add("Fig3 IM IntMax client FPS", 46, im(IntMax).ClientFPS, 0.20)
	add("Fig3 IM RVS60 client FPS", 54, im(RVSGoal).ClientFPS, 0.25)
	add("Fig3 IM RVSMax client FPS", 76, im(RVSMax).ClientFPS, 0.15)

	// §4.2 / Fig. 6 — latency inflation of the §4 regulators.
	add("Fig6 IM NoReg MtP ms", 41.6, im(NoReg).MtP.Mean(), 0.25)
	add("Fig6 IM IntMax MtP ms", 66.3, im(IntMax).MtP.Mean(), 0.50)

	// §4.3 / Fig. 7 — DRAM behaviour.
	add("Fig7 IM NoReg miss rate %", 75, im(NoReg).MissRate*100, 0.10)
	add("Fig7 IM NoReg read ns", 68, im(NoReg).ReadTimeNs, 0.15)
	add("Fig7 IM Int60 read ns", 47, im(IntGoal).ReadTimeNs, 0.25)

	// Table 2 — gaps.
	t2 := Table2(m)
	add("Table2 720pPriv NoReg avg gap", 60.7, t2[0].AvgGap[NoReg], 0.60)
	add("Table2 720pGCE NoReg avg gap", 154.7, t2[1].AvgGap[NoReg], 0.30)
	add("Table2 1080pGCE NoReg avg gap", 140.6, t2[2].AvgGap[NoReg], 0.50)

	// Figure 9 / §6.6 — QoS.
	s := Summary(m)
	add("S6.6 overall NoReg->ODR gap ratio", 99.1/2.6, s.NoRegAvgGap/s.ODRAvgGap, 0.50)
	add("S6.6 ODRMax FPS gain over NoReg %", 5.5, 100*(s.ODRMaxFPS/s.NoRegFPS-1), 0.80)
	add("S6.6 ODRMax FPS gain over IntMax %", 62.5, 100*(s.ODRMaxFPS/s.IntMaxFPS-1), 0.30)
	add("S6.6 ODRMax FPS gain over RVSMax %", 32.8, 100*(s.ODRMaxFPS/s.RVSMaxFPS-1), 0.40)
	add("S6.6 ODR MtP reduction vs NoReg %", 93.6, 100*(1-s.ODRMaxLat/s.NoRegLat), 0.10)
	add("S6.6 ODR goal attainment", 1.0, s.ODRGoalFPSvsTarget, 0.05)
	add("Fig9b NoReg GCE720p MtP ms", 3210, m.groupMean(gce720, NoReg, func(r *pipeline.Result) float64 { return r.MtP.Mean() }), 0.50)
	add("Fig9b ODR60 GCE720p MtP ms (<77)", 73, m.groupMean(gce720, ODRGoal, func(r *pipeline.Result) float64 { return r.MtP.Mean() }), 0.20)

	// §6.5 — efficiency.
	add("S6.6 IPC gain %", 14.4, 100*s.IPCGain, 0.30)
	add("S6.6 miss-rate drop %", 11, 100*s.MissRateDrop, 0.30)
	add("S6.6 read-time drop %", 19, 100*s.ReadTimeDrop, 0.20)
	add("S6.6 power drop %", 16, 100*s.PowerDrop, 0.50)
	add("Fig13 fleet NoReg watts", 198.7, m.groupMean(g720, NoReg, func(r *pipeline.Result) float64 { return r.PowerWatts }), 0.10)
	add("Fig13 ITP NoReg watts", 264.1, m.Get(pictor.ITP, g720, NoReg).PowerWatts, 0.10)
	add("Fig13 ITP ODR60 watts", 145.2, m.Get(pictor.ITP, g720, ODRGoal).PowerWatts, 0.20)

	// §6.7 — user study ordering anchors.
	study := UserStudy(m)
	ratings := map[string]float64{}
	for _, r := range study {
		ratings[r.Config] = r.Result.MeanRating
	}
	add("Fig14 NonCloud rating", 8.03, ratings["NonCloud"], 0.10)
	add("Fig14 ODRMax rating", 8.0, ratings["ODRMax"], 0.15)
	add("Fig14 NoReg rating", 3.1, ratings["NoReg"], 0.40)

	passed := 0
	for _, r := range rows {
		if r.OK {
			passed++
		}
	}
	fmt.Fprintf(o.Out, "Fidelity: %d/%d paper anchors within tolerance\n", passed, len(rows))
	for _, r := range rows {
		mark := "ok  "
		if !r.OK {
			mark = "MISS"
		}
		fmt.Fprintf(o.Out, "  [%s] %-38s paper %9.1f  measured %9.1f  (±%.0f%%)\n",
			mark, r.Name, r.Paper, r.Measured, r.Tolerance*100)
	}
	return rows
}
