package codec

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"testing"
)

// tcContent builds deterministic, compressible pseudo-tile content.
func tcContent(seed byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed * byte(i>>4)
	}
	return b
}

// cachePut drives content through the doorkeeper until it is admitted, the
// way the encode path does: Lookup miss, then Insert.
func cachePut(t *testing.T, c *TileCache, content []byte) []byte {
	t.Helper()
	payload := rleAppend(nil, content)
	crc := crc32.Checksum(payload, castagnoli)
	for i := 0; i < 2; i++ {
		if p, gotCRC, ok := c.Lookup(content); ok {
			if gotCRC != crc || !bytes.Equal(p, payload) {
				t.Fatalf("cache returned wrong payload for content")
			}
			return p
		}
		if canon := c.Insert(content, payload, crc); canon != nil {
			return canon
		}
	}
	t.Fatalf("content not admitted after two sightings")
	return nil
}

func TestTileCacheLookupInsertDoorkeeper(t *testing.T) {
	c := NewTileCache(1 << 20)
	content := tcContent(3, 4096)
	payload := rleAppend(nil, content)
	crc := crc32.Checksum(payload, castagnoli)

	if _, _, ok := c.Lookup(content); ok {
		t.Fatal("empty cache reported a hit")
	}
	if canon := c.Insert(content, payload, crc); canon != nil {
		t.Fatal("doorkeeper admitted content on first sighting")
	}
	if _, _, ok := c.Lookup(content); ok {
		t.Fatal("hit after a rejected insert")
	}
	canon := c.Insert(content, payload, crc)
	if canon == nil {
		t.Fatal("doorkeeper rejected content on second sighting")
	}
	if &canon[0] == &payload[0] {
		t.Fatal("cache retained the caller's payload slice instead of copying")
	}
	got, gotCRC, ok := c.Lookup(content)
	if !ok || gotCRC != crc || !bytes.Equal(got, payload) {
		t.Fatalf("lookup after admission: ok=%v crc=%d want %d", ok, gotCRC, crc)
	}
	if &got[0] != &canon[0] {
		t.Fatal("lookup returned a copy, not the canonical cached payload")
	}
	hits, misses, evs := c.Stats()
	if hits != 1 || misses != 2 || evs != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1 hit, 2 misses, 0 evictions", hits, misses, evs)
	}
}

func TestTileCacheEvictionLRU(t *testing.T) {
	// Budget sized for only a couple of entries per shard; admitting many
	// distinct contents must evict the least-recently-used, not grow.
	const entry = 8 << 10
	c := NewTileCache(tcShards * (2*entry + 2*tcEntryOverhead + 64))
	var contents [][]byte
	for i := 0; i < 64; i++ {
		cont := tcContent(byte(i+1), entry/2)
		cont[0] = byte(i) // distinct
		contents = append(contents, cont)
		cachePut(t, c, cont)
	}
	if _, _, evs := c.Stats(); evs == 0 {
		t.Fatal("64 admissions into a 2-entries-per-shard budget evicted nothing")
	}
	if n := c.Len(); n >= 64 {
		t.Fatalf("cache holds %d entries, want bounded well below 64", n)
	}
	// The most recent insert must still be resident.
	last := contents[len(contents)-1]
	if _, _, ok := c.Lookup(last); !ok {
		t.Fatal("most recently admitted entry was evicted")
	}
}

// TestTileCachePoisoning forces every content onto one hash bucket and
// proves a hit requires full-content equality: same hash, different pixels
// must miss (then coexist on the chain), never serve the other's payload.
func TestTileCachePoisoning(t *testing.T) {
	orig := tileCacheHash
	tileCacheHash = func([]byte) uint64 { return 0xDEAD }
	defer func() { tileCacheHash = orig }()

	c := NewTileCache(1 << 20)
	a := tcContent(5, 2048)
	b := tcContent(9, 2048) // same geometry, same (forced) hash, different pixels
	pa := cachePut(t, c, a)

	if _, _, ok := c.Lookup(b); ok {
		t.Fatal("poisoning: colliding content reported a hit without matching bytes")
	}
	pb := cachePut(t, c, b)
	if bytes.Equal(pa, pb) {
		t.Fatal("distinct contents produced one payload")
	}
	gotA, crcA, okA := c.Lookup(a)
	gotB, crcB, okB := c.Lookup(b)
	if !okA || !okB {
		t.Fatal("chained colliding entries must both hit")
	}
	if !bytes.Equal(gotA, rleAppend(nil, a)) || !bytes.Equal(gotB, rleAppend(nil, b)) {
		t.Fatal("chain walk returned the wrong entry's payload")
	}
	if crcA != crc32.Checksum(gotA, castagnoli) || crcB != crc32.Checksum(gotB, castagnoli) {
		t.Fatal("cached CRC does not match cached payload")
	}
	// Shorter content with the same hash: length check alone must reject.
	short := a[:1024]
	if _, _, ok := c.Lookup(short); ok {
		t.Fatal("prefix content hit a longer entry")
	}
}

// TestEncodeCacheByteIdentity pins the cache-key soundness argument at the
// bitstream level: encoders with no cache, a private cache, and one shared
// (pre-populated by a sibling encoder) cache must emit identical bytes,
// with and without keyframe striping.
func TestEncodeCacheByteIdentity(t *testing.T) {
	const w, h = 96, 80
	frames := animatedFrames(w, h, 6)
	for _, stripe := range []bool{false, true} {
		opts := func(cache *TileCache) Options {
			return Options{QuantShift: 2, KeyInterval: 4, StripeKeyframes: stripe, Cache: cache}
		}
		shared := NewTileCache(0)
		plain := NewEncoder(w, h, opts(nil))
		private := NewEncoder(w, h, opts(NewTileCache(0)))
		warm := NewEncoder(w, h, opts(shared))
		second := NewEncoder(w, h, opts(shared))
		// Loop the sequence so cached payloads are actually reused.
		for pass := 0; pass < 3; pass++ {
			for fi, f := range frames {
				want, err := plain.Encode(f)
				if err != nil {
					t.Fatal(err)
				}
				for name, enc := range map[string]*Encoder{"private": private, "warm": warm, "shared": second} {
					got, err := enc.Encode(f)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("stripe=%v pass %d frame %d: %s-cache bitstream differs from cache-less", stripe, pass, fi, name)
					}
				}
			}
		}
		if hits, misses, _ := shared.Stats(); hits == 0 {
			t.Fatalf("stripe=%v: shared cache never hit (misses=%d); sharing is not happening", stripe, misses)
		}
	}
}

// TestCacheConservation pins the accounting contract the soak invariant
// relies on: every payload tile of every frame and every tile of every
// splice does exactly one cache lookup, so hits+misses == dirty tiles +
// splice tiles.
func TestCacheConservation(t *testing.T) {
	const w, h = 64, 64
	cache := NewTileCache(0)
	enc := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: 4, StripeKeyframes: true, Cache: cache})
	frames := animatedFrames(w, h, 8)

	var wantLookups int64
	for pass := 0; pass < 4; pass++ {
		for _, f := range frames {
			if _, err := enc.Encode(f); err != nil {
				t.Fatal(err)
			}
			_, dirty := enc.TileStats()
			wantLookups += int64(dirty)
			if pass > 0 { // splice a joiner key and a catch-up delta per frame
				if _, err := enc.AppendSplice(nil, 0); err != nil {
					t.Fatal(err)
				}
				wantLookups += int64(enc.LastSpliceTiles())
				if _, err := enc.AppendSplice(nil, enc.Frames()-3); err != nil {
					t.Fatal(err)
				}
				wantLookups += int64(enc.LastSpliceTiles())
			}
		}
	}
	hits, misses, _ := cache.Stats()
	if hits+misses != wantLookups {
		t.Fatalf("cache hits+misses = %d+%d = %d, want exactly %d (dirty + splice tiles)",
			hits, misses, hits+misses, wantLookups)
	}
	if hits == 0 {
		t.Fatal("looped content produced zero cache hits")
	}
}

// TestTileNanosIsACopy pins the satellite fix: the returned slice must not
// alias encoder state reused by the next frame.
func TestTileNanosIsACopy(t *testing.T) {
	const w, h = 64, 64
	enc := NewEncoder(w, h, Options{QuantShift: 2})
	frames := animatedFrames(w, h, 4)
	if _, err := enc.Encode(frames[0]); err != nil {
		t.Fatal(err)
	}
	first := enc.TileNanos()
	snapshot := append([]int64(nil), first...)
	if _, err := enc.Encode(frames[1]); err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != snapshot[i] {
			t.Fatalf("TileNanos()[%d] changed from %d to %d after the next Encode: slice aliases encoder state",
				i, snapshot[i], first[i])
		}
	}
	scratch := make([]int64, 0, 8)
	got := enc.TileNanosAppend(scratch[:0])
	if len(got) != len(first) {
		t.Fatalf("TileNanosAppend returned %d samples, want %d", len(got), len(first))
	}
}

func TestTileCacheNilSafe(t *testing.T) {
	var c *TileCache
	if _, _, ok := c.Lookup([]byte{1}); ok {
		t.Fatal("nil cache hit")
	}
	if p := c.Insert([]byte{1}, []byte{2}, 3); p != nil {
		t.Fatal("nil cache admitted")
	}
	if h, m, e := c.Stats(); h != 0 || m != 0 || e != 0 {
		t.Fatal("nil cache has stats")
	}
	if c.Len() != 0 {
		t.Fatal("nil cache has entries")
	}
}

func TestHashContentSpreads(t *testing.T) {
	// Not a quality suite — just pin that near-identical tile contents do
	// not collapse onto one bucket chain (which would turn the cache into a
	// linear scan) and that the hash is deterministic. CRC32 is linear, so
	// same-length single-bit variants can never collide.
	seen := make(map[uint64]string)
	for i := 0; i < 256; i++ {
		b := tcContent(7, 512)
		b[i] ^= 0x01
		h := hashContent(b)
		if h != hashContent(b) {
			t.Fatal("hashContent is not deterministic")
		}
		key := fmt.Sprintf("flip %d", i)
		if prev, dup := seen[h]; dup {
			t.Fatalf("single-bit variants %q and %q collide", prev, key)
		}
		seen[h] = key
	}
}
