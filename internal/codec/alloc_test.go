package codec

import "testing"

// The frame hot path must not allocate in steady state: EncodeAppend writes
// into a caller-recycled buffer and the encoder's scratches, and Decode
// reuses the decoder's two persistent buffers. These tests pin that down so
// a regression fails loudly instead of showing up as GC pressure in the
// streaming stack.

func TestEncodeAppendSteadyStateAllocs(t *testing.T) {
	for _, bands := range []bool{false, true} {
		const w, h = 320, 180
		frames := animatedFrames(w, h, 8)
		enc := NewEncoder(w, h, Options{QuantShift: 2, Bands: bands})
		buf := make([]byte, 0, 2*w*h*4)
		var err error
		// Warm up the encoder scratches (first frames grow them).
		for _, f := range frames {
			if buf, err = enc.EncodeAppend(buf[:0], f); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			if buf, err = enc.EncodeAppend(buf[:0], frames[i%len(frames)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if allocs > 0 {
			t.Errorf("bands=%v: EncodeAppend allocates %.1f objects/frame in steady state, want 0", bands, allocs)
		}
	}
}

// TestPrePassSteadyStateAllocs pins the dirty-tile prediction fast path:
// a static frame is classified clean by the read-only pre-pass and encodes
// header+directory only, with zero allocations and zero pool dispatch.
func TestPrePassSteadyStateAllocs(t *testing.T) {
	const w, h = 320, 180
	static := animatedFrames(w, h, 1)[0]
	enc := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: 1 << 30})
	buf := make([]byte, 0, 2*w*h*4)
	var err error
	for i := 0; i < 3; i++ {
		if buf, err = enc.EncodeAppend(buf[:0], static); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if buf, err = enc.EncodeAppend(buf[:0], static); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("pre-pass encode allocates %.1f objects/frame on static content, want 0", allocs)
	}
	if tiles, dirty := enc.TileStats(); dirty != 0 || tiles == 0 {
		t.Errorf("static frame reported %d/%d dirty tiles, want 0 dirty", dirty, tiles)
	}
}

// TestCacheHitSteadyStateAllocs pins the cache-hit path: with striping on
// static content, every coded tile is a stripe refresh served from the
// cache — lookup, LRU touch and payload aliasing must all be free.
func TestCacheHitSteadyStateAllocs(t *testing.T) {
	const w, h, keyInt = 320, 64, 4 // 4 tiles: one stripe refresh per frame
	static := animatedFrames(w, h, 1)[0]
	cache := NewTileCache(0)
	enc := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: keyInt, StripeKeyframes: true, Cache: cache})
	buf := make([]byte, 0, 2*w*h*4)
	var err error
	// Three stripe cycles: sighting, admission, first hit for every tile.
	for i := 0; i < 3*keyInt+1; i++ {
		if buf, err = enc.EncodeAppend(buf[:0], static); err != nil {
			t.Fatal(err)
		}
	}
	h0, _, _ := cache.Stats()
	allocs := testing.AllocsPerRun(200, func() {
		if buf, err = enc.EncodeAppend(buf[:0], static); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("cache-hit encode allocates %.1f objects/frame, want 0", allocs)
	}
	h1, m1, _ := cache.Stats()
	if h1 <= h0 {
		t.Fatalf("steady state produced no cache hits (hits %d -> %d, misses %d)", h0, h1, m1)
	}
}

func TestDecodeSteadyStateAllocs(t *testing.T) {
	for _, bands := range []bool{false, true} {
		const w, h = 320, 180
		frames := animatedFrames(w, h, 8)
		enc := NewEncoder(w, h, Options{QuantShift: 2, Bands: bands})
		var streams [][]byte
		for _, f := range frames {
			bs, err := enc.Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			streams = append(streams, bs)
		}
		dec := NewDecoder()
		for _, bs := range streams {
			if _, err := dec.Decode(bs); err != nil {
				t.Fatal(err)
			}
		}
		i := 0
		allocs := testing.AllocsPerRun(200, func() {
			if _, err := dec.Decode(streams[i%len(streams)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
		if allocs > 0 {
			t.Errorf("bands=%v: Decode allocates %.1f objects/frame in steady state, want 0", bands, allocs)
		}
	}
}

func benchEncodeAppend(b *testing.B, w, h int) {
	frames := animatedFrames(w, h, 32)
	enc := NewEncoder(w, h, Options{QuantShift: 2})
	buf := make([]byte, 0, 2*w*h*4)
	var err error
	for _, f := range frames {
		if buf, err = enc.EncodeAppend(buf[:0], f); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(w * h * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = enc.EncodeAppend(buf[:0], frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(enc.Bytes())/float64(enc.Frames())/1024, "KB/frame")
}

func BenchmarkEncodeAppend360p(b *testing.B) { benchEncodeAppend(b, 640, 360) }
func BenchmarkEncodeAppend720p(b *testing.B) { benchEncodeAppend(b, 1280, 720) }
