package codec

// TileCache: a content-addressed cache of encoded tile payloads, shared
// across frames, encoders and hub lanes.
//
// The key insight that makes sharing sound is that a tile payload is a pure
// function of the bytes being coded: payload = RLE(content) and
// crc = CRC32C(payload) depend on nothing but the content byte string — not
// on the encoder, the frame index, the worker count, or whether the bytes
// are a key tile, a stripe-intra tile, a splice cut or a delta image. One
// cache therefore serves every payload producer in this package, and a hit
// can never change what goes on the wire: it returns exactly the bytes a
// fresh RLE pass would have produced. Tile geometry does not need to be
// part of the key explicitly — two tiles of different geometry have
// different content lengths and so can never compare equal.
//
// Hash collisions are survived, not assumed away: entries with the same
// 64-bit hash chain, and every lookup re-verifies the full content bytes
// (length + memcmp) before declaring a hit. A poisoned or colliding entry
// can cost a chain walk, never wrong pixels (TestTileCachePoisoning pins
// this with a deliberately constant hash).
//
// Admission is gated by a per-shard doorkeeper: a hash is only admitted on
// its second sighting. Never-repeating content (noise, one-shot deltas)
// then costs one hash probe and one uint64 store per miss — no copy, no
// allocation, no eviction churn — while genuinely recurring content is
// admitted one frame late and hits forever after.
//
// The cache is safe for concurrent use: 8 shards keyed by the low hash
// bits, each with its own mutex, map, LRU list and doorkeeper, so parallel
// tile workers rarely contend. Returned payload slices are immutable
// cache-owned memory — callers alias them into bitstreams and artifacts
// without copying, and eviction only drops the cache's reference (aliased
// payloads stay alive until their frames retire).

import (
	"bytes"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

const (
	tcShards = 8
	// tcDoorSlots is the per-shard doorkeeper size. Slots hold the last
	// hash seen at that index; a second sighting admits. 512 slots x 8
	// shards track 4096 recent hashes in 32 KiB.
	tcDoorSlots = 512
	// tcEntryOverhead approximates the per-entry bookkeeping bytes charged
	// against the byte budget on top of content+payload.
	tcEntryOverhead = 96
	// DefaultTileCacheBytes is the byte budget NewTileCache(0) applies —
	// enough for the full quantized content plus payloads of several 4K
	// frames worth of distinct tiles.
	DefaultTileCacheBytes = 128 << 20
)

// tileCacheHash hashes tile content for cache addressing. Package-level so
// tests can force collisions and prove the full-content verification on hit.
var tileCacheHash = hashContent

// hashContent addresses tile content with CRC32-Castagnoli, which is a
// single hardware instruction per word on amd64/arm64 — an order of
// magnitude faster over tile-sized inputs than any scalar software mix,
// which matters because never-repeating content (noise) pays exactly one
// hash pass per miss and nothing else. 32 bits of state are plenty for
// bucket addressing: every hit re-verifies the full content bytes, so a
// collision costs a chain walk, never wrong payload bytes. The length goes
// in the high half so different tile geometries never share a chain.
func hashContent(b []byte) uint64 {
	return uint64(len(b))<<32 | uint64(crc32.Checksum(b, castagnoli))
}

// tcEntry is one cached payload. content is the verification key (a copy of
// the coded bytes), payload the RLE coding and crc its CRC32-Castagnoli.
type tcEntry struct {
	hash    uint64
	content []byte
	payload []byte
	crc     uint32

	hnext      *tcEntry // same-hash chain
	lruP, lruN *tcEntry // doubly-linked LRU, head = most recent
}

// tcShard is one lock stripe: hash chain map + LRU + doorkeeper + budget.
type tcShard struct {
	mu     sync.Mutex
	m      map[uint64]*tcEntry
	head   *tcEntry
	tail   *tcEntry
	bytes  int64
	budget int64
	door   [tcDoorSlots]uint64
}

// TileCache is a bounded, sharded, content-addressed payload cache. The
// zero value is not usable; construct with NewTileCache. A nil *TileCache
// is valid everywhere and behaves as an always-miss, never-admit cache.
type TileCache struct {
	shards [tcShards]tcShard

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// NewTileCache returns a cache bounded to roughly maxBytes of content +
// payload memory (0 = DefaultTileCacheBytes).
func NewTileCache(maxBytes int64) *TileCache {
	if maxBytes <= 0 {
		maxBytes = DefaultTileCacheBytes
	}
	c := &TileCache{}
	per := maxBytes / tcShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64]*tcEntry)
		c.shards[i].budget = per
	}
	return c
}

// Lookup returns the cached payload and CRC for content, verifying the full
// content bytes before declaring a hit. Every call counts exactly one hit
// or one miss, which is the accounting contract the soak conservation
// invariant checks (hits + misses == payload tiles coded + splice tiles
// cut). Nil-safe; allocation-free.
func (c *TileCache) Lookup(content []byte) (payload []byte, crc uint32, ok bool) {
	if c == nil {
		return nil, 0, false
	}
	return c.lookupHashed(tileCacheHash(content), content)
}

// lookupHashed is Lookup with the content hash already computed, so a
// miss-then-Insert sequence hashes the content exactly once (the hash pass
// is the dominant miss cost on never-repeating content). Callers must pass
// h == tileCacheHash(content) and a non-nil receiver.
func (c *TileCache) lookupHashed(h uint64, content []byte) (payload []byte, crc uint32, ok bool) {
	sh := &c.shards[h&(tcShards-1)]
	sh.mu.Lock()
	for e := sh.m[h]; e != nil; e = e.hnext {
		if len(e.content) == len(content) && bytes.Equal(e.content, content) {
			sh.moveFrontLocked(e)
			sh.mu.Unlock()
			c.hits.Add(1)
			return e.payload, e.crc, true
		}
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	return nil, 0, false
}

// Insert offers (content, payload, crc) after a Lookup miss. It returns the
// canonical cache-owned payload when the entry was admitted (possibly one
// another worker raced in first), or nil when the doorkeeper rejected the
// first sighting — the caller then keeps using its own scratch payload.
// Content and payload are copied on admission; the caller's slices are
// never retained. Nil-safe.
func (c *TileCache) Insert(content, payload []byte, crc uint32) []byte {
	if c == nil {
		return nil
	}
	return c.insertHashed(tileCacheHash(content), content, payload, crc)
}

// insertHashed is Insert with the content hash already computed (paired
// with lookupHashed; same contract).
func (c *TileCache) insertHashed(h uint64, content, payload []byte, crc uint32) []byte {
	sh := &c.shards[h&(tcShards-1)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// A concurrent worker coding the same content may have admitted it
	// between our Lookup and this Insert; dedupe under the lock.
	for e := sh.m[h]; e != nil; e = e.hnext {
		if len(e.content) == len(content) && bytes.Equal(e.content, content) {
			sh.moveFrontLocked(e)
			return e.payload
		}
	}
	// Two-slot doorkeeper probe: a hash is remembered in two independently
	// addressed slots and admitted when either still holds it. With one
	// slot, two recurring hashes sharing it evict each other's first
	// sighting forever and neither is ever admitted — a once-per-stripe-
	// cycle miss per victim tile that shows up as a p99 spike on otherwise
	// fully-cached content. Starvation now needs a collision in both slots.
	s1 := &sh.door[(h>>3)%tcDoorSlots]
	s2 := &sh.door[(h>>17)%tcDoorSlots]
	if *s1 != h && *s2 != h {
		*s1, *s2 = h, h // first sighting: remember, do not admit
		return nil
	}
	e := &tcEntry{
		hash:    h,
		content: append([]byte(nil), content...),
		payload: append([]byte(nil), payload...),
		crc:     crc,
		hnext:   sh.m[h],
	}
	sh.m[h] = e
	sh.pushFrontLocked(e)
	sh.bytes += int64(len(e.content)+len(e.payload)) + tcEntryOverhead
	for sh.bytes > sh.budget && sh.tail != nil && sh.tail != e {
		c.evictions.Add(1)
		sh.evictLocked(sh.tail)
	}
	return e.payload
}

// Stats returns the lifetime hit, miss and eviction counts.
func (c *TileCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// Len returns the number of cached entries (test and debug surface).
func (c *TileCache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for _, e := range sh.m {
			for ; e != nil; e = e.hnext {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// pushFrontLocked links e at the LRU head.
func (sh *tcShard) pushFrontLocked(e *tcEntry) {
	e.lruP = nil
	e.lruN = sh.head
	if sh.head != nil {
		sh.head.lruP = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveFrontLocked refreshes e's LRU position.
func (sh *tcShard) moveFrontLocked(e *tcEntry) {
	if sh.head == e {
		return
	}
	if e.lruP != nil {
		e.lruP.lruN = e.lruN
	}
	if e.lruN != nil {
		e.lruN.lruP = e.lruP
	}
	if sh.tail == e {
		sh.tail = e.lruP
	}
	sh.pushFrontLocked(e)
}

// evictLocked unlinks e from the LRU, the hash chain and the budget.
// Payload memory aliased into in-flight bitstreams stays alive until those
// frames drop their references; the cache only forgets its own.
func (sh *tcShard) evictLocked(e *tcEntry) {
	if e.lruP != nil {
		e.lruP.lruN = e.lruN
	} else {
		sh.head = e.lruN
	}
	if e.lruN != nil {
		e.lruN.lruP = e.lruP
	} else {
		sh.tail = e.lruP
	}
	e.lruP, e.lruN = nil, nil
	if head := sh.m[e.hash]; head == e {
		if e.hnext != nil {
			sh.m[e.hash] = e.hnext
		} else {
			delete(sh.m, e.hash)
		}
	} else {
		for p := head; p != nil; p = p.hnext {
			if p.hnext == e {
				p.hnext = e.hnext
				break
			}
		}
	}
	e.hnext = nil
	sh.bytes -= int64(len(e.content)+len(e.payload)) + tcEntryOverhead
}
