package codec

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"odr/internal/wpool"
)

// roundTripV2 pushes n frames of a seeded sequence through a v2 encoder and
// a fresh decoder, checking pixel equality against the quantized source.
func roundTripV2(t *testing.T, w, h int, opts Options, n int) {
	t.Helper()
	enc := NewEncoder(w, h, opts)
	dec := NewDecoder()
	for i := int64(0); i < int64(n); i++ {
		pix := genFrame(w, h, i)
		bs, err := enc.Encode(pix)
		if err != nil {
			t.Fatalf("%dx%d frame %d: encode: %v", w, h, i, err)
		}
		got, err := dec.Decode(bs)
		if err != nil {
			t.Fatalf("%dx%d frame %d: decode: %v", w, h, i, err)
		}
		if !bytes.Equal(got, quantized(pix, opts.QuantShift)) {
			t.Fatalf("%dx%d frame %d: pixel mismatch", w, h, i)
		}
	}
}

func TestV2TileEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		w, h int
		opts Options
	}{
		{"1x1", 1, 1, Options{}},
		{"one row", 64, 1, Options{}},
		{"height not divisible", 8, 40, Options{}},
		{"odd tile rows", 8, 12, Options{TileRows: 5}},
		{"tile taller than frame", 8, 8, Options{TileRows: 64}},
		{"quantized", 16, 40, Options{QuantShift: 3, KeyInterval: 4}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { roundTripV2(t, c.w, c.h, c.opts, 6) })
	}
}

func TestV2DirtyAccounting(t *testing.T) {
	const w, h = 8, 48 // 3 tiles of 16 rows
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	pix := genFrame(w, h, 1)
	if _, err := enc.Encode(pix); err != nil {
		t.Fatal(err)
	}
	if tiles, dirty := enc.TileStats(); tiles != 3 || dirty != 3 {
		t.Fatalf("keyframe stats = %d/%d, want 3/3 (keys are all-dirty)", dirty, tiles)
	}
	if len(enc.TileNanos()) != 3 {
		t.Fatalf("TileNanos has %d entries, want 3", len(enc.TileNanos()))
	}

	// Identical frame: every tile clean, and the frame is just headers.
	bs, err := enc.Encode(pix)
	if err != nil {
		t.Fatal(err)
	}
	if _, dirty := enc.TileStats(); dirty != 0 {
		t.Fatalf("static delta has %d dirty tiles, want 0", dirty)
	}
	if want := hdr2Len + 3*dirEntryLen; len(bs) != want {
		t.Fatalf("all-clean frame is %d bytes, want %d", len(bs), want)
	}

	// Touch one pixel in the last (short would be h%16, here full) tile.
	pix2 := append([]byte(nil), pix...)
	s, _ := tileRange(w, h, DefaultTileRows, 2)
	pix2[s] ^= 0xFF
	if _, err := enc.Encode(pix2); err != nil {
		t.Fatal(err)
	}
	if _, dirty := enc.TileStats(); dirty != 1 {
		t.Fatalf("single-tile change marked %d tiles dirty, want 1", dirty)
	}
}

// TestV2SerialParallelByteIdentical pins the determinism contract: the v2
// bitstream must be byte-for-byte identical no matter how many workers
// encode the tiles or which pool they run on.
func TestV2SerialParallelByteIdentical(t *testing.T) {
	p := wpool.New(4)
	defer p.Close()
	const w, h = 320, 200
	frames := animatedFrames(w, h, 12)
	base := Options{QuantShift: 2, KeyInterval: 5}
	mk := func(workers int, pool *wpool.Pool) *Encoder {
		o := base
		o.Workers, o.Pool = workers, pool
		return NewEncoder(w, h, o)
	}
	serial := mk(1, nil)
	variants := map[string]*Encoder{
		"two workers":       mk(2, p),
		"full private pool": mk(0, p),
		"full default pool": mk(0, nil),
	}
	for i, f := range frames {
		want, err := serial.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		for name, enc := range variants {
			got, err := enc.Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame %d: %s bitstream differs from serial (%d vs %d bytes)", i, name, len(got), len(want))
			}
		}
	}
}

// TestV1V2PixelIdentical runs the same source frames through the v1 flat
// coder, the v1 band coder, and the v2 tile coder: all three must
// reconstruct the same pixels.
func TestV1V2PixelIdentical(t *testing.T) {
	const w, h = 64, 52
	frames := animatedFrames(w, h, 10)
	opts := func(o Options) Options { o.QuantShift, o.KeyInterval = 2, 4; return o }
	encs := map[string]*Encoder{
		"v1":       NewEncoder(w, h, opts(Options{Version: 1})),
		"v1 bands": NewEncoder(w, h, opts(Options{Bands: true})),
		"v2":       NewEncoder(w, h, opts(Options{})),
	}
	decs := map[string]*Decoder{"v1": NewDecoder(), "v1 bands": NewDecoder(), "v2": NewDecoder()}
	for i, f := range frames {
		var ref []byte
		for _, name := range []string{"v1", "v1 bands", "v2"} {
			bs, err := encs[name].Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			pix, err := decs[name].Decode(bs)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = append([]byte(nil), pix...)
			} else if !bytes.Equal(pix, ref) {
				t.Fatalf("frame %d: %s pixels differ from v1", i, name)
			}
		}
	}
}

func TestV2ParallelDecodeMatchesSerial(t *testing.T) {
	p := wpool.New(4)
	defer p.Close()
	const w, h = 320, 200
	enc := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: 5})
	serial, parallel := NewDecoder(), NewDecoder()
	parallel.SetPool(p, 0)
	for i, f := range animatedFrames(w, h, 12) {
		bs, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		a, err := serial.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("frame %d: parallel decode differs from serial", i)
		}
	}
}

// v2dir returns the payload byte ranges of each tile of a v2 frame.
func v2dir(t *testing.T, bs []byte) [][2]int {
	t.Helper()
	nt := int(binary.LittleEndian.Uint16(bs[14:]))
	off := hdr2Len + nt*dirEntryLen
	spans := make([][2]int, nt)
	for i := 0; i < nt; i++ {
		plen := int(binary.LittleEndian.Uint32(bs[hdr2Len+i*dirEntryLen+1:]))
		spans[i] = [2]int{off, off + plen}
		off += plen
	}
	return spans
}

// TestV2PartialDecodeOnTileCorruption pins the CRC-localization contract: a
// flipped payload byte loses exactly its own tile — intact tiles of the
// same frame still apply, the corrupt tile keeps its previous content, and
// the error is a *TileError matching ErrTileCRC.
func TestV2PartialDecodeOnTileCorruption(t *testing.T) {
	const w, h = 8, 40 // tiles: rows 0-15, 16-31, 32-39
	enc := NewEncoder(w, h, Options{QuantShift: 0, KeyInterval: 100})
	dec := NewDecoder()

	keyPix := genFrame(w, h, 1)
	keyBS, err := enc.Encode(keyPix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(keyBS); err != nil {
		t.Fatal(err)
	}

	// Change one pixel each in tile 0 and tile 2; corrupt tile 0's payload.
	next := append([]byte(nil), keyPix...)
	s0, _ := tileRange(w, h, DefaultTileRows, 0)
	s2, _ := tileRange(w, h, DefaultTileRows, 2)
	next[s0] ^= 0x55
	next[s2] ^= 0x55
	bs, err := enc.Encode(next)
	if err != nil {
		t.Fatal(err)
	}
	spans := v2dir(t, bs)
	bs[spans[0][0]] ^= 0xFF

	pix, err := dec.Decode(bs)
	var te *TileError
	if !errors.As(err, &te) || !errors.Is(err, ErrTileCRC) {
		t.Fatalf("err = %v, want *TileError matching ErrTileCRC", err)
	}
	if len(te.Tiles) != 1 || te.Tiles[0] != 0 {
		t.Fatalf("corrupt tiles = %v, want [0]", te.Tiles)
	}
	if pix == nil {
		t.Fatal("partial decode returned no pixels")
	}
	_, e0 := tileRange(w, h, DefaultTileRows, 0)
	if !bytes.Equal(pix[s0:e0], keyPix[s0:e0]) {
		t.Error("corrupt tile 0 did not keep its previous content")
	}
	_, e2 := tileRange(w, h, DefaultTileRows, 2)
	if !bytes.Equal(pix[s2:e2], next[s2:e2]) {
		t.Error("intact tile 2 was not applied")
	}

	// A later keyframe resynchronizes fully.
	enc.ForceKeyframe()
	bs2, err := enc.Encode(next)
	if err != nil {
		t.Fatal(err)
	}
	pix2, err := dec.Decode(bs2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pix2, next) {
		t.Fatal("keyframe after tile corruption did not resync")
	}
}

// TestV2HostileHeaders feeds crafted v2 bitstreams to the decoder: every
// malformed header or directory must fail cleanly with the right sentinel,
// without panicking and without disturbing decoder state.
func TestV2HostileHeaders(t *testing.T) {
	const w, h = 8, 40
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	valid, err := enc.Encode(genFrame(w, h, 1))
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), valid...))
	}
	cases := []struct {
		name string
		bs   []byte
		want error
	}{
		{"short header", valid[:10], ErrTruncated},
		{"bad version", mut(func(b []byte) []byte { b[1] = 9; return b }), ErrVersion},
		{"bad frame type", mut(func(b []byte) []byte { b[2] = 9; return b }), ErrCorrupt},
		{"zero width", mut(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[4:], 0); return b }), ErrDimensions},
		{"huge height", mut(func(b []byte) []byte { binary.LittleEndian.PutUint32(b[8:], maxDim+1); return b }), ErrDimensions},
		{"zero tile rows", mut(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[12:], 0); return b }), ErrCorrupt},
		{"tile count mismatch", mut(func(b []byte) []byte { binary.LittleEndian.PutUint16(b[14:], 4); return b }), ErrCorrupt},
		{"truncated directory", valid[:hdr2Len+5], ErrTruncated},
		{"huge payload length", mut(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[hdr2Len+1:], 0xFFFFFFFF)
			return b
		}), ErrTruncated},
		{"unknown tile flag", mut(func(b []byte) []byte { b[hdr2Len] |= 0x02; return b }), ErrCorrupt},
		{"clean tile in keyframe", mut(func(b []byte) []byte {
			// Drop tile 0's dirty flag and splice its payload out so the
			// lengths stay consistent — clean key tiles are still illegal.
			spans := v2dir(t, b)
			b[hdr2Len] = 0
			binary.LittleEndian.PutUint32(b[hdr2Len+1:], 0)
			return append(b[:spans[0][0]], b[spans[0][1]:]...)
		}), ErrCorrupt},
		{"trailing junk", mut(func(b []byte) []byte { return append(b, 0xAA) }), ErrCorrupt},
	}
	dec := NewDecoder()
	for _, c := range cases {
		if _, err := dec.Decode(c.bs); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
		// Decoder state must survive a rejected frame.
		if _, err := dec.Decode(valid); err != nil {
			t.Errorf("%s: valid frame rejected after hostile one: %v", c.name, err)
		}
	}
}

// TestV2HostileTilePayload hides a hostile RLE stream behind a valid CRC:
// the declared run lengths exceed the tile, so the tile must fail its
// bounds checks (satellite of the rleDecodeInto hardening) and surface as
// a TileError rather than a panic or out-of-bounds write.
func TestV2HostileTilePayload(t *testing.T) {
	const w, h = 8, 16 // single tile
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	valid, err := enc.Encode(genFrame(w, h, 1))
	if err != nil {
		t.Fatal(err)
	}
	hostile := [][]byte{
		// Zero run of 2^64-1 bytes: must not memset beyond the tile.
		{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		// Literal run of 2^63 bytes: must not wrap negative and copy.
		{0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		// Unterminated uvarint.
		{0x00, 0x80},
		// Unknown token.
		{0x02, 0x04},
	}
	for i, payload := range hostile {
		bs := append([]byte(nil), valid[:hdr2Len]...)
		bs = append(bs, tileFlagDirty)
		var ent [8]byte
		binary.LittleEndian.PutUint32(ent[0:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(ent[4:], crc32.Checksum(payload, castagnoli))
		bs = append(bs, ent[:]...)
		bs = append(bs, payload...)
		dec := NewDecoder()
		_, err := dec.Decode(bs)
		if !errors.Is(err, ErrTileCRC) {
			t.Errorf("hostile payload %d: err = %v, want a TileError", i, err)
		}
	}
}
