package codec

import (
	"bytes"
	"encoding/binary"
)

// Word-wide (SWAR) kernels for the frame hot path. The codec's inner loops
// — quantization, temporal delta, delta application, and zero-run scanning
// — are all independent per byte, so they run eight lanes at a time in a
// uint64 with the classic carry-isolation tricks (Hacker's Delight §2-18).
// binary.LittleEndian loads compile to single unaligned MOVs on the
// platforms we care about, so this stays portable safe Go.
//
// Every kernel is paired with a byte-at-a-time tail (and a differential
// test in wide_test.go pinning kernel == byte loop), and the RLE scanners
// preserve the exact token boundaries of the original byte-loop coder, so
// swapping the kernels in changes no bitstream.

const (
	swarLo uint64 = 0x0101010101010101 // low bit of every byte lane
	swarHi uint64 = 0x8080808080808080 // high bit of every byte lane

	// minZeroRun is the zero-run length worth breaking a literal run for:
	// a zero token costs >= 2 bytes, so runs of 4+ compress.
	minZeroRun = 4
)

// hasZeroByte reports whether any byte lane of v is zero.
func hasZeroByte(v uint64) bool {
	return (v-swarLo)&^v&swarHi != 0
}

// subBytes returns the lane-wise byte subtraction a-b (mod 256), with
// borrows confined to their lanes.
func subBytes(a, b uint64) uint64 {
	return ((a | swarHi) - (b &^ swarHi)) ^ ((a ^ ^b) & swarHi)
}

// addBytes returns the lane-wise byte addition a+b (mod 256), with carries
// confined to their lanes.
func addBytes(a, b uint64) uint64 {
	return ((a &^ swarHi) + (b &^ swarHi)) ^ ((a ^ b) & swarHi)
}

// deltaInto computes dst[i] = a[i] - b[i] byte-wise. len(dst) == len(a) ==
// len(b) is the caller's contract.
func deltaInto(dst, a, b []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(a[i:])
		y := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], subBytes(x, y))
	}
	for ; i < n; i++ {
		dst[i] = a[i] - b[i]
	}
}

// addInto computes dst[i] += src[i] byte-wise (delta application).
func addInto(dst, src []byte) {
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(dst[i:])
		y := binary.LittleEndian.Uint64(src[i:])
		binary.LittleEndian.PutUint64(dst[i:], addBytes(x, y))
	}
	for ; i < n; i++ {
		dst[i] += src[i]
	}
}

// maskInto computes dst[i] = src[i] & mask byte-wise (quantization).
func maskInto(dst, src []byte, mask byte) {
	m := uint64(mask) * swarLo
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(src[i:])&m)
	}
	for ; i < n; i++ {
		dst[i] = src[i] & mask
	}
}

// maskSubInto computes dst[i] = (a[i] & mask) - b[i] byte-wise: quantization
// fused into the temporal delta, so a changed tile shipping as a delta never
// materializes its quantized content — the reference catches up afterwards
// by applying the delta (addInto), which reproduces the quantized bytes
// exactly (mod-256 arithmetic).
func maskSubInto(dst, a, b []byte, mask byte) {
	m := uint64(mask) * swarLo
	n := len(dst)
	i := 0
	for ; i+8 <= n; i += 8 {
		x := binary.LittleEndian.Uint64(a[i:]) & m
		y := binary.LittleEndian.Uint64(b[i:])
		binary.LittleEndian.PutUint64(dst[i:], subBytes(x, y))
	}
	for ; i < n; i++ {
		dst[i] = a[i]&mask - b[i]
	}
}

// maskedEqual reports whether a, masked byte-wise with mask, equals ref.
// ref is expected to be pre-masked (a quantized reference frame), so the
// comparison fuses quantization into the equality probe: the dirty-tile
// pre-pass classifies a tile without materializing its quantized content.
// The scan is read-only and exits on the first differing word, so dynamic
// content costs a few bytes, not a tile.
func maskedEqual(a, ref []byte, mask byte) bool {
	if mask == 0xFF {
		// No quantization: plain memory equality, which the runtime
		// vectorizes far wider than any scalar loop.
		return bytes.Equal(a, ref)
	}
	m := uint64(mask) * swarLo
	n := len(a)
	i := 0
	// Four independent compares per iteration: the loads have no
	// cross-iteration dependency, so they pipeline, and the combined OR
	// fails the whole 32-byte block with one branch.
	for ; i+32 <= n; i += 32 {
		x0 := binary.LittleEndian.Uint64(a[i:])&m ^ binary.LittleEndian.Uint64(ref[i:])
		x1 := binary.LittleEndian.Uint64(a[i+8:])&m ^ binary.LittleEndian.Uint64(ref[i+8:])
		x2 := binary.LittleEndian.Uint64(a[i+16:])&m ^ binary.LittleEndian.Uint64(ref[i+16:])
		x3 := binary.LittleEndian.Uint64(a[i+24:])&m ^ binary.LittleEndian.Uint64(ref[i+24:])
		if x0|x1|x2|x3 != 0 {
			return false
		}
	}
	for ; i+8 <= n; i += 8 {
		if binary.LittleEndian.Uint64(a[i:])&m != binary.LittleEndian.Uint64(ref[i:]) {
			return false
		}
	}
	for ; i < n; i++ {
		if a[i]&mask != ref[i] {
			return false
		}
	}
	return true
}

// zeroRunEnd returns the index of the first non-zero byte at or after i
// (len(data) if the run reaches the end), skipping eight bytes per probe
// through the body of the run.
func zeroRunEnd(data []byte, i int) int {
	for i+8 <= len(data) && binary.LittleEndian.Uint64(data[i:]) == 0 {
		i += 8
	}
	for i < len(data) && data[i] == 0 {
		i++
	}
	return i
}

// literalRunEnd returns where the literal run starting at i ends: at the
// first zero of the next zero-run of minZeroRun+ bytes, or at len(data).
// Words with no zero byte are skipped eight at a time; the byte-stepping
// fallback keeps the exact run-boundary semantics of the original scanner.
func literalRunEnd(data []byte, i int) int {
	zeros := 0
	for i < len(data) {
		if zeros == 0 && i+8 <= len(data) {
			if w := binary.LittleEndian.Uint64(data[i:]); !hasZeroByte(w) {
				i += 8
				continue
			}
		}
		if data[i] == 0 {
			zeros++
			if zeros >= minZeroRun {
				return i - (zeros - 1)
			}
		} else {
			zeros = 0
		}
		i++
	}
	return len(data)
}
