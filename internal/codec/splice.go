package codec

// Bitstream splicing: cutting a per-session resync frame out of a shared
// encoder's state without disturbing that encoder's delta chain.
//
// A hub that encodes once and fans out to N viewers has a problem the
// per-session-encoder design never had: a late joiner (or a viewer whose
// delta chain broke) needs absolute content, but forcing a keyframe on the
// shared encoder would cost every healthy viewer a full-frame payload.
// AppendSplice solves it with the v2 per-tile directory — the encoder knows,
// per tile, the last encode whose content moved (tileChangedAt), so it can
// emit a frame containing absolute ("intra") payloads for exactly the tiles
// the session is missing and zero-byte clean entries for the rest:
//
//   - parent == 0: a full key frame cut from e.prev. Decodable with no prior
//     state; what a late joiner gets.
//   - parent > 0: a delta frame whose changed-since-parent tiles carry the
//     dirty|intra flags with absolute content. A session that last displayed
//     encode index `parent` decodes it into exactly the shared encoder's
//     current reconstruction; unchanged tiles are byte-identical on both
//     sides already (deltas are byte-exact), so they ship as clean.
//
// Either way the session lands on e.prev — the same reconstruction every
// verbatim subscriber holds — so the shared stream's next delta applies
// cleanly and the splice never forks the chain.
//
// Intra payloads are memoized per tile (spliceRLE/spliceCRC, valid while the
// tile hasn't changed since it was cut), so a churn of joiners against a
// mostly-static scene re-uses one RLE pass per tile instead of paying
// O(joiners × frame) encode work.
//
// Concurrency: AppendSplice reads e.prev/tileChangedAt and writes the
// memo slices; callers must serialize it against EncodeAppend and against
// other AppendSplice calls (the hub holds one mutex per shared encoder).

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// ErrNoSpliceState is returned by AppendSplice before the encoder has
// encoded its first frame (there is no reconstruction to cut tiles from).
var ErrNoSpliceState = errors.New("codec: splice before first encoded frame")

// errSpliceVersion marks AppendSplice on a v1 encoder (no tile directory).
var errSpliceVersion = errors.New("codec: splice requires the v2 tile bitstream")

// AppendSplice appends a resync frame for a session whose reconstruction is
// the shared stream at encode index parent (a past Frames() value), or a
// full key frame when parent <= 0. The spliced frame brings the session to
// the encoder's current reconstruction without touching the encoder's own
// key/delta cadence. The encoder's streaming counters (Frames, Bytes) are
// not advanced: a splice is a per-session repair, not a shared-stream frame.
func (e *Encoder) AppendSplice(dst []byte, parent int64) ([]byte, error) {
	if e.version != 2 {
		return nil, errSpliceVersion
	}
	if e.prev == nil || e.frames == 0 {
		return nil, ErrNoSpliceState
	}
	nt := tileCount(e.h, e.tileRows)
	e.ensureTileState(nt)
	isKey := parent <= 0

	var hdr [hdr2Len]byte
	hdr[0] = magic2
	hdr[1] = version2
	if isKey {
		hdr[2] = frameKey
	} else {
		hdr[2] = frameDelta
	}
	hdr[3] = byte(e.opts.QuantShift)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(e.w))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(e.h))
	binary.LittleEndian.PutUint16(hdr[12:], uint16(e.tileRows))
	binary.LittleEndian.PutUint16(hdr[14:], uint16(nt))
	out := append(dst, hdr[:]...)

	included := 0
	var ent [dirEntryLen]byte
	for i := 0; i < nt; i++ {
		ent = [dirEntryLen]byte{}
		if isKey || e.tileChangedAt[i] > parent {
			e.ensureIntraTile(i)
			included++
			ent[0] = tileFlagDirty
			if !isKey {
				ent[0] |= tileFlagIntra
			}
			binary.LittleEndian.PutUint32(ent[1:], uint32(len(e.spliceRLE[i])))
			binary.LittleEndian.PutUint32(ent[5:], e.spliceCRC[i])
		}
		out = append(out, ent[:]...)
	}
	for i := 0; i < nt; i++ {
		if isKey || e.tileChangedAt[i] > parent {
			out = append(out, e.spliceRLE[i]...)
		}
	}
	e.lastSpliceTiles = included
	return out, nil
}

// LastSpliceTiles returns how many tiles the most recent AppendSplice
// included (payload-carrying entries). With a cache configured, each of
// them did exactly one cache lookup — the accounting hubs publish for the
// soak's cache conservation invariant. Read under the caller's encoder
// lock, like AppendSplice itself.
func (e *Encoder) LastSpliceTiles() int { return e.lastSpliceTiles }

// ensureIntraTile refreshes tile i's intra payload cut from e.prev. With a
// content-addressed cache the payload is looked up (and admitted) there —
// a churn of joiners against tiles the frame path already coded absolute
// (keys, stripe refreshes) shares those payload bytes outright, across
// every lane and session on the cache. Without a cache the per-encoder
// memo (spliceAt vs tileChangedAt) keeps the old one-RLE-pass-per-change
// behavior.
func (e *Encoder) ensureIntraTile(i int) {
	if c := e.opts.Cache; c != nil {
		s, end := tileRange(e.w, e.h, e.tileRows, i)
		content := e.prev[s:end]
		h := tileCacheHash(content)
		if payload, crc, ok := c.lookupHashed(h, content); ok {
			e.spliceRLE[i], e.spliceCRC[i] = payload, crc
			return
		}
		p := rleAppend(e.spliceScratch[i][:0], content)
		e.spliceScratch[i] = p
		crc := crc32.Checksum(p, castagnoli)
		if canon := c.insertHashed(h, content, p, crc); canon != nil {
			p = canon
		}
		e.spliceRLE[i], e.spliceCRC[i] = p, crc
		return
	}
	if e.spliceAt[i] > 0 && e.spliceAt[i] >= e.tileChangedAt[i] {
		return
	}
	s, end := tileRange(e.w, e.h, e.tileRows, i)
	e.spliceRLE[i] = rleAppend(e.spliceRLE[i][:0], e.prev[s:end])
	e.spliceCRC[i] = crc32.Checksum(e.spliceRLE[i], castagnoli)
	e.spliceAt[i] = e.frames
}
