package codec

import "bytes"

// Dirty-tile prediction: a cheap, read-only pre-pass that decides — before
// any coding work is dispatched — which tiles of the incoming frame need an
// encoder at all. The per-tile scans fan across the same worker pool as the
// encode itself; the work list is assembled serially afterwards in tile
// order, so prediction parallelism can never reorder the bitstream.
//
// The v2 encoder used to discover cleanliness mid-encode: quantize the whole
// frame into a fresh buffer, fan every tile out to the pool, and have each
// tile worker compare its quantized slice against the reference before
// (maybe) coding. That costs two full-frame passes (quantize write +
// compare) plus a task dispatch per tile even when nothing changed.
//
// The pre-pass replaces all of that with one fused read-only sweep:
// maskedEqual (wide.go) compares the raw pixels, masked on the fly with the
// quantization mask, directly against the persistent quantized reference.
// Static tiles are classified clean without ever being quantized, copied or
// dispatched; dynamic tiles exit the comparison on the first differing word
// and land on the work list. Only work-list tiles reach the pool, and only
// they quantize (per tile, into per-tile scratch) and update the reference.
//
// A raw-reference shortcut makes the static case cheaper still: prevRaw
// holds, for every tile with tileRawOK set, unquantized pixels whose
// quantization equals prev — so bytes.Equal(pix[t], prevRaw[t]) alone
// proves the tile clean. Raw equality is a plain memcmp — which the
// runtime vectorizes far wider than any scalar masked compare — so a fully
// static frame costs one SIMD sweep; maskedEqual only runs for tiles whose
// raw bytes moved (and still classifies sub-quantum noise as clean). The
// raw reference is maintained lazily, on the clean path only: a tile that
// codes just drops its tileRawOK bit and the next clean classification
// re-establishes it, so constantly-changing content never pays a raw copy.
//
// The same pass selects the temporal keyframe stripe: with
// Options.StripeKeyframes set, delta frame number c intra-refreshes the
// tiles whose index ≡ c (mod KeyInterval), so every tile is re-anchored as
// absolute content once per KeyInterval frames and the periodic full
// keyframe — the p99 encode-time spike — disappears from the cadence
// entirely (the first frame, and any ForceKeyframe, still key-frames).

// predictTiles classifies every tile of e.curPix and rebuilds e.workList
// with the tiles that need coding: content-dirty tiles, this frame's
// keyframe stripe, and all tiles on a key frame. Classification fans across
// the worker pool — per tile it is a read-only scan plus tile-indexed
// output slots, the same disjointness argument as the encode Map — and the
// work list is then assembled serially in ascending tile order, so the
// bitstream stays byte-identical at every worker count.
func (e *Encoder) predictTiles(nt int, isKey bool) {
	e.workList = e.workList[:0]
	if isKey {
		for i := 0; i < nt; i++ {
			e.tileChanged[i] = true
			e.tileRawOK[i] = false
			e.tileIntra[i] = false
			e.workList = append(e.workList, i)
		}
		return
	}
	e.curPhase = -1
	if e.opts.StripeKeyframes {
		e.curPhase = e.count % e.opts.KeyInterval
	}
	e.group.Map(e.opts.Workers, nt, e.predTask)
	for i := 0; i < nt; i++ {
		if e.tileChanged[i] || e.tileIntra[i] {
			e.workList = append(e.workList, i)
		}
	}
}

// predictTile classifies one tile of a delta frame. Clean skipped tiles have
// their outputs zeroed here so the assembly loop reads consistent state
// without touching the pool again.
func (e *Encoder) predictTile(i int) {
	s, end := tileRange(e.w, e.h, e.tileRows, i)
	pix := e.curPix[s:end]
	changed := false
	if !e.tileRawOK[i] || !bytes.Equal(pix, e.prevRaw[s:end]) {
		if maskedEqual(pix, e.prev[s:end], 0xFF<<e.opts.QuantShift) {
			// Clean, but the raw reference is stale (the tile coded
			// recently, or raw bytes moved sub-quantum). Refresh it so the
			// next frame's fast path sees these pixels as baseline.
			copy(e.prevRaw[s:end], pix)
			e.tileRawOK[i] = true
		} else {
			changed = true
			e.tileRawOK[i] = false
		}
	}
	striped := e.curPhase >= 0 && i%e.opts.KeyInterval == e.curPhase
	e.tileChanged[i] = changed
	e.tileIntra[i] = striped
	if !changed && !striped {
		e.tileDirty[i] = false
		e.tilePayload[i] = nil
		e.tileCRC[i] = 0
		e.tileNanos[i] = 0
	}
}
