package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBandsRoundTrip(t *testing.T) {
	const w, h = 32, 40 // 2.5 bands
	enc := NewEncoder(w, h, Options{QuantShift: 2, Bands: true})
	dec := NewDecoder()
	for i := int64(0); i < 8; i++ {
		pix := genFrame(w, h, i)
		bs, err := enc.Encode(pix)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, quantized(pix, 2)) {
			t.Fatalf("frame %d: band round trip mismatch", i)
		}
	}
}

func TestBandsPartialChangeRoundTrip(t *testing.T) {
	const w, h = 16, 64
	enc := NewEncoder(w, h, Options{QuantShift: 0, Bands: true})
	dec := NewDecoder()
	base := genFrame(w, h, 1)
	bs, err := enc.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(bs); err != nil {
		t.Fatal(err)
	}
	// Change only rows 20-23 (band 1 of 4).
	mod := append([]byte(nil), base...)
	for i := 20 * w * 4; i < 24*w*4; i++ {
		mod[i] ^= 0xFF
	}
	bs, err = enc.Encode(mod)
	if err != nil {
		t.Fatal(err)
	}
	if bs[1] != frameBands {
		t.Fatalf("frame type = %d, want bands", bs[1])
	}
	got, err := dec.Decode(bs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, mod) {
		t.Fatal("partial-change round trip mismatch")
	}
}

func TestBandsStaticFrameIsTiny(t *testing.T) {
	const w, h = 64, 64
	enc := NewEncoder(w, h, Options{QuantShift: 2, Bands: true})
	pix := genFrame(w, h, 3)
	if _, err := enc.Encode(pix); err != nil {
		t.Fatal(err)
	}
	bs, err := enc.Encode(pix)
	if err != nil {
		t.Fatal(err)
	}
	// Header + band header only: no band changed.
	if len(bs) > headerLen+8 {
		t.Fatalf("static band frame is %d bytes", len(bs))
	}
}

func TestBandsSmallerOrSimilarToDelta(t *testing.T) {
	// Partially-changing content: bands must not be much larger than plain
	// delta coding (a few bytes of band headers).
	const w, h = 64, 128
	plain := NewEncoder(w, h, Options{QuantShift: 2})
	banded := NewEncoder(w, h, Options{QuantShift: 2, Bands: true})
	rng := rand.New(rand.NewSource(5))
	base := genFrame(w, h, 5)
	cur := append([]byte(nil), base...)
	_, _ = plain.Encode(cur)
	_, _ = banded.Encode(cur)
	var plainBytes, bandBytes int
	for f := 0; f < 10; f++ {
		// Mutate one random 8-row region.
		y := rng.Intn(h - 8)
		for i := y * w * 4; i < (y+8)*w*4; i++ {
			cur[i] = byte(rng.Intn(256))
		}
		pb, err := plain.Encode(cur)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := banded.Encode(cur)
		if err != nil {
			t.Fatal(err)
		}
		plainBytes += len(pb)
		bandBytes += len(bb)
	}
	if float64(bandBytes) > float64(plainBytes)*1.1 {
		t.Fatalf("band coding inflated size: %d vs %d", bandBytes, plainBytes)
	}
}

func TestBandsDecodeErrors(t *testing.T) {
	const w, h = 16, 32
	enc := NewEncoder(w, h, Options{Bands: true})
	dec := NewDecoder()
	key, _ := enc.Encode(genFrame(w, h, 1))
	if _, err := dec.Decode(key); err != nil {
		t.Fatal(err)
	}
	bandFrame, _ := enc.Encode(genFrame(w, h, 2))
	if bandFrame[1] != frameBands {
		t.Fatalf("expected band frame")
	}
	// Truncations and corruptions must error, not panic.
	for cut := headerLen; cut < len(bandFrame); cut += 7 {
		if _, err := dec.Decode(bandFrame[:cut]); err == nil {
			// Re-sync the decoder state for the next attempt.
			t.Fatalf("truncated band frame at %d accepted", cut)
		}
	}
	// Band frame before a keyframe.
	fresh := NewDecoder()
	if _, err := fresh.Decode(bandFrame); err != ErrNoKeyframe {
		t.Fatalf("err = %v, want ErrNoKeyframe", err)
	}
}

// Property: band round trips reconstruct the quantized source for random
// frame sequences and sizes.
func TestBandsRoundTripProperty(t *testing.T) {
	f := func(seeds []int64, wsel, hsel uint8) bool {
		w := 4 + int(wsel%5)*4 // 4..20
		h := 8 + int(hsel%7)*8 // 8..56 (spans partial bands)
		enc := NewEncoder(w, h, Options{QuantShift: 1, Bands: true, KeyInterval: 5})
		dec := NewDecoder()
		if len(seeds) > 12 {
			seeds = seeds[:12]
		}
		for _, seed := range seeds {
			pix := genFrame(w, h, seed)
			bs, err := enc.Encode(pix)
			if err != nil {
				return false
			}
			got, err := dec.Decode(bs)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, quantized(pix, 1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEncodeBandsStatic shows the win band mode exists for: mostly
// static frames with a small moving region.
func BenchmarkEncodeBandsStatic(b *testing.B) {
	benchEncodeMode(b, true)
}

func BenchmarkEncodePlainStatic(b *testing.B) {
	benchEncodeMode(b, false)
}

func benchEncodeMode(b *testing.B, bands bool) {
	const w, h = 640, 360
	enc := NewEncoder(w, h, Options{QuantShift: 2, Bands: bands, KeyInterval: 1 << 30})
	base := genFrame(w, h, 1)
	if _, err := enc.Encode(base); err != nil {
		b.Fatal(err)
	}
	cur := append([]byte(nil), base...)
	rng := rand.New(rand.NewSource(2))
	b.SetBytes(int64(len(cur)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A 16-row sliver moves each frame; the rest is static.
		y := (i * 16) % (h - 16)
		for j := y * w * 4; j < (y+16)*w*4; j++ {
			cur[j] = byte(rng.Intn(256))
		}
		if _, err := enc.Encode(cur); err != nil {
			b.Fatal(err)
		}
	}
}
