package codec

// The v2 bitstream: the frame is split into fixed-height tile rows, each an
// independent encode/decode unit. Tiles generalize bands.go — an unchanged
// tile is skipped with a directory flag — and add what the flat v1 stream
// cannot express: a per-tile offset table (so tiles encode and decode
// concurrently), and a per-tile CRC32 (so corruption localizes to a tile
// instead of killing the frame).
//
// Layout (all integers little-endian):
//
//	byte 0:       magic 0xD4
//	byte 1:       version (2)
//	byte 2:       frame type (0 = key, 1 = delta)
//	byte 3:       quantization shift (0-7)
//	bytes 4-7:    width  (uint32)
//	bytes 8-11:   height (uint32)
//	bytes 12-13:  tile height in pixel rows (uint16)
//	bytes 14-15:  tile count (uint16; must equal ceil(height/tileRows))
//	then per tile, 9 bytes of directory:
//	    byte 0:     flags (bit 0 = dirty; bit 1 = intra; clean tiles carry
//	                no payload)
//	    bytes 1-4:  payload length (uint32)
//	    bytes 5-8:  CRC32-Castagnoli of the payload
//	then the tile payloads, concatenated in tile order.
//
// Each payload is the RLE coding (codec.go tokens) of the tile's quantized
// content (key frames) or of its byte-wise delta against the previous
// frame (delta frames). Key frames mark every tile dirty.
//
// The intra flag (splice.go) marks a dirty tile of a *delta* frame whose
// payload is absolute content rather than a delta: the decoder copies it
// into place instead of adding it. Spliced frames use it to repair exactly
// the tiles a session's reconstruction is missing while every other tile
// ships as a zero-byte clean entry. Intra is illegal on clean tiles and on
// key frames (whose tiles are all absolute already).
//
// Determinism: workers encode tiles into per-tile scratch buffers and the
// assembly loop concatenates them in fixed tile order, so the bitstream is
// byte-identical whether one worker or sixteen ran the tiles — the pinned
// TestV2SerialParallelByteIdentical guards this.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

const (
	magic2   = 0xD4
	version2 = 2

	hdr2Len     = 16
	dirEntryLen = 9

	// DefaultTileRows is the tile height used when Options.TileRows is
	// zero; exported so accounting invariants (tiles per frame =
	// ceil(h/DefaultTileRows)) can be checked from outside the package.
	DefaultTileRows = 16
	maxTileCount    = 1<<16 - 1

	tileFlagDirty = 0x01
	tileFlagIntra = 0x02
)

// castagnoli is the per-tile CRC polynomial (hardware-accelerated on
// amd64/arm64, unlike IEEE on some targets).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrTileCRC marks a v2 frame that carried one or more corrupt tile
// payloads. The frame still decodes partially (intact tiles update, corrupt
// tiles keep their previous content); match with errors.Is.
var ErrTileCRC = errors.New("codec: tile payload failed its checksum")

// TileError lists the corrupt tiles of a partially-decoded v2 frame, in
// ascending tile order. errors.Is(err, ErrTileCRC) matches it.
type TileError struct{ Tiles []int }

// Error implements error.
func (e *TileError) Error() string {
	return fmt.Sprintf("codec: %d corrupt tile(s) %v", len(e.Tiles), e.Tiles)
}

// Unwrap makes errors.Is(err, ErrTileCRC) match.
func (e *TileError) Unwrap() error { return ErrTileCRC }

// tileCount returns the number of tileRows-high tiles covering height h.
func tileCount(h, rows int) int { return (h + rows - 1) / rows }

// tileRange returns the byte range of tile i in a w×h RGBA frame split
// into rows-high tiles (the last tile may be short).
func tileRange(w, h, rows, i int) (start, end int) {
	rowBytes := w * 4
	start = i * rows * rowBytes
	end = start + rows*rowBytes
	if max := h * rowBytes; end > max {
		end = max
	}
	return start, end
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

// ensureTileState sizes the per-tile scratch slices once; the tile count is
// fixed per encoder, so steady-state frames find them allocated.
func (e *Encoder) ensureTileState(nt int) {
	if len(e.tilePayload) == nt {
		return
	}
	e.tilePayload = make([][]byte, nt)
	e.tileScratch = make([][]byte, nt)
	e.tileQ = make([][]byte, nt)
	e.tileDelta = make([][]byte, nt)
	e.tileCRC = make([]uint32, nt)
	e.tileDirty = make([]bool, nt)
	e.tileChanged = make([]bool, nt)
	e.tileRawOK = make([]bool, nt)
	e.tileIntra = make([]bool, nt)
	e.tileNanos = make([]int64, nt)
	e.workList = make([]int, 0, nt)
	e.tileChangedAt = make([]int64, nt)
	e.spliceRLE = make([][]byte, nt)
	e.spliceScratch = make([][]byte, nt)
	e.spliceCRC = make([]uint32, nt)
	e.spliceAt = make([]int64, nt)
}

// encodeTile codes work-list slot k — one tile the pre-pass selected — into
// the tile's own output slots. It runs concurrently with other tiles: the
// only shared input it reads is its own disjoint slice of e.curPix/e.prev,
// and all outputs are tile-indexed, so the tile regions never race.
func (e *Encoder) encodeTile(k int) {
	start := time.Now()
	i := e.workList[k]
	s, end := tileRange(e.w, e.h, e.tileRows, i)
	if e.tileChanged[i] && !e.curKey && !e.tileIntra[i] {
		// Changed tile shipping as a delta — the hot case. The fused kernel
		// computes quantize(pix) - prev in one pass without materializing
		// the quantized content, then the reference is re-quantized in
		// place from the raw pixels (prev = pix & mask — the same bytes a
		// materialized content copy would have landed; tile ranges are
		// disjoint so concurrent workers never overlap). prevRaw is NOT
		// refreshed here — the pre-pass dropped tileRawOK for this tile and
		// rebuilds the raw reference the next time it classifies clean.
		d := grow(e.tileDelta[i], end-s)
		e.tileDelta[i] = d
		maskSubInto(d, e.curPix[s:end], e.prev[s:end], 0xFF<<e.opts.QuantShift)
		e.codeTilePayload(i, d)
		if e.opts.QuantShift == 0 {
			copy(e.prev[s:end], e.curPix[s:end])
		} else {
			maskInto(e.prev[s:end], e.curPix[s:end], 0xFF<<e.opts.QuantShift)
		}
		e.tileDirty[i] = true
		e.tileNanos[i] = time.Since(start).Nanoseconds()
		return
	}
	// Absolute-content cases: every tile of a key frame, and this frame's
	// keyframe stripe (changed or not).
	var content []byte
	if e.tileChanged[i] {
		q := grow(e.tileQ[i], end-s)
		e.tileQ[i] = q
		if e.opts.QuantShift == 0 {
			copy(q, e.curPix[s:end])
		} else {
			maskInto(q, e.curPix[s:end], 0xFF<<e.opts.QuantShift)
		}
		content = q
	} else {
		// Stripe refresh of an unchanged tile: the reference already holds
		// exactly its quantized content — no quantization work at all.
		content = e.prev[s:end]
	}
	e.codeTilePayload(i, content)
	e.tileDirty[i] = true
	if e.tileChanged[i] {
		// Fold the tile into the persistent reference; tile ranges are
		// disjoint, so concurrent workers never overlap.
		copy(e.prev[s:end], content)
	}
	e.tileNanos[i] = time.Since(start).Nanoseconds()
}

// codeTilePayload produces tile i's RLE payload and CRC for src, through
// the content-addressed cache when one is configured. On a hit the payload
// aliases immutable cache memory (never the tile's scratch), so one encoded
// payload is shared across frames, encoders and hub lanes without copying;
// a miss codes into the tile-owned scratch and offers the result for
// admission. Cached or fresh, the bytes are identical — payload and CRC are
// pure functions of src (see cache.go).
func (e *Encoder) codeTilePayload(i int, src []byte) {
	c := e.opts.Cache
	var h uint64
	if c != nil {
		h = tileCacheHash(src)
		if payload, crc, ok := c.lookupHashed(h, src); ok {
			e.tilePayload[i], e.tileCRC[i] = payload, crc
			return
		}
	}
	p := rleAppend(e.tileScratch[i][:0], src)
	e.tileScratch[i] = p
	crc := crc32.Checksum(p, castagnoli)
	if c != nil {
		if canon := c.insertHashed(h, src, p, crc); canon != nil {
			p = canon
		}
	}
	e.tilePayload[i], e.tileCRC[i] = p, crc
}

// encodeTiles appends one v2 frame to dst: predict which tiles need work,
// fan only those across the worker pool, then assemble header + directory +
// payloads in fixed tile order.
func (e *Encoder) encodeTiles(dst, pix []byte) ([]byte, error) {
	nt := tileCount(e.h, e.tileRows)
	if nt > maxTileCount {
		return nil, fmt.Errorf("codec: %d tiles exceed the format limit %d", nt, maxTileCount)
	}
	e.ensureTileState(nt)
	if e.prev == nil {
		e.prev = make([]byte, e.FrameSize())
	}
	if e.prevRaw == nil {
		e.prevRaw = make([]byte, e.FrameSize())
	}
	isKey := !e.refValid || (!e.opts.StripeKeyframes && e.count%e.opts.KeyInterval == 0)
	e.curPix, e.curKey = pix, isKey
	e.predictTiles(nt, isKey)
	e.count++
	e.group.Map(e.opts.Workers, len(e.workList), e.encTask)
	e.curPix = nil

	base := len(dst)
	var hdr [hdr2Len]byte
	hdr[0] = magic2
	hdr[1] = version2
	if isKey {
		hdr[2] = frameKey
	} else {
		hdr[2] = frameDelta
	}
	hdr[3] = byte(e.opts.QuantShift)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(e.w))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(e.h))
	binary.LittleEndian.PutUint16(hdr[12:], uint16(e.tileRows))
	binary.LittleEndian.PutUint16(hdr[14:], uint16(nt))
	out := append(dst, hdr[:]...)

	dirty := 0
	encIdx := e.frames + 1
	var ent [dirEntryLen]byte
	for i := 0; i < nt; i++ {
		ent[0] = 0
		if e.tileDirty[i] {
			ent[0] = tileFlagDirty
			if !isKey && e.tileIntra[i] {
				ent[0] |= tileFlagIntra
			}
			dirty++
		}
		if e.tileChanged[i] {
			// Key frames mark every tile changed whether its content moved
			// or not, so this is conservative there — a later splice may
			// intra-code a tile that did not really change, which costs
			// bytes, never pixels. Stripe refreshes of unchanged tiles do
			// NOT advance the clock: their content is what it was, so
			// splices stay minimal.
			e.tileChangedAt[i] = encIdx
		}
		binary.LittleEndian.PutUint32(ent[1:], uint32(len(e.tilePayload[i])))
		binary.LittleEndian.PutUint32(ent[5:], e.tileCRC[i])
		out = append(out, ent[:]...)
	}
	for i := 0; i < nt; i++ {
		out = append(out, e.tilePayload[i]...)
	}

	e.lastTiles, e.lastDirty = nt, dirty
	e.refValid = true
	e.frames++
	e.bytes += int64(len(out) - base)
	return out, nil
}

// TileStats reports the tile accounting of the last encoded frame: how many
// tiles the frame had and how many were dirty (coded). Both are zero for
// v1 encoders and before the first frame.
func (e *Encoder) TileStats() (tiles, dirty int) { return e.lastTiles, e.lastDirty }

// TileNanos returns the per-tile encode durations (nanoseconds, tile order)
// of the last encoded frame, in a freshly allocated slice the caller owns;
// it is empty for v1 encoders. Tiles the pre-pass skipped report 0.
// Hot paths that sample every frame should use TileNanosAppend instead.
func (e *Encoder) TileNanos() []int64 {
	return append([]int64(nil), e.tileNanos[:e.lastTiles]...)
}

// TileNanosAppend appends the last frame's per-tile encode durations to dst
// and returns the extended slice, so per-frame samplers can reuse one
// buffer instead of allocating. Like all last-frame accessors it must be
// called before the next Encode on this encoder (under the same lock that
// serializes encoding).
func (e *Encoder) TileNanosAppend(dst []int64) []int64 {
	return append(dst, e.tileNanos[:e.lastTiles]...)
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

// ensureTileState sizes the decoder's per-tile directory scratches.
func (d *Decoder) ensureTileState(nt int) {
	if len(d.tileOff) == nt {
		return
	}
	d.tileOff = make([]int, nt)
	d.tileLen = make([]int, nt)
	d.tileCRC = make([]uint32, nt)
	d.tileGood = make([]bool, nt)
	d.tileIntra = make([]bool, nt)
	d.tileErr = make([]error, nt)
}

// decodeTile validates and applies one tile of the in-flight v2 frame. It
// runs concurrently with other tiles: tile regions are disjoint, shared
// inputs read-only, and the per-tile error slot carries the outcome.
func (d *Decoder) decodeTile(i int) {
	s, end := tileRange(d.curW, d.curH, d.curRows, i)
	dst := d.scratch[s:end]
	if !d.tileGood[i] { // clean tile of a delta frame: nothing to apply
		d.tileErr[i] = nil
		return
	}
	seg := d.curBS[d.tileOff[i] : d.tileOff[i]+d.tileLen[i]]
	keepOld := func() {
		// A corrupt tile of a key frame keeps its previous content in the
		// new frame buffer (zeros when there is no previous frame); a
		// corrupt delta tile simply is not applied.
		if d.curKeyF {
			if d.cur != nil {
				copy(dst, d.cur[s:end])
			} else {
				clear(dst)
			}
		}
	}
	if crc32.Checksum(seg, castagnoli) != d.tileCRC[i] {
		d.tileErr[i] = ErrTileCRC
		keepOld()
		return
	}
	if err := rleDecodeInto(dst, seg); err != nil {
		d.tileErr[i] = err
		keepOld()
		return
	}
	d.tileErr[i] = nil
	if !d.curKeyF {
		if d.tileIntra[i] {
			// Intra tile of a delta frame: absolute content replaces the
			// tile instead of adding to it (spliced resync frames).
			copy(d.cur[s:end], dst)
		} else {
			addInto(d.cur[s:end], dst)
		}
	}
}

// decodeTiles decodes one v2 frame. Intact tiles apply even when some
// tiles are corrupt; see Decode's contract.
func (d *Decoder) decodeTiles(bs []byte) ([]byte, error) {
	if len(bs) < hdr2Len {
		return nil, ErrTruncated
	}
	if bs[1] != version2 {
		return nil, ErrVersion
	}
	ftype := bs[2]
	if ftype != frameKey && ftype != frameDelta {
		return nil, ErrCorrupt
	}
	isKey := ftype == frameKey
	w := int(binary.LittleEndian.Uint32(bs[4:]))
	h := int(binary.LittleEndian.Uint32(bs[8:]))
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
		return nil, ErrDimensions
	}
	rows := int(binary.LittleEndian.Uint16(bs[12:]))
	nt := int(binary.LittleEndian.Uint16(bs[14:]))
	if rows <= 0 || nt != tileCount(h, rows) {
		return nil, ErrCorrupt
	}
	if d.cur != nil && (d.w != w || d.h != h) {
		return nil, ErrDimensions
	}
	if !isKey && d.cur == nil {
		return nil, ErrNoKeyframe
	}

	// Walk the directory before touching any payload byte: offsets are
	// prefix sums of the declared lengths, every length is bounded by the
	// bytes actually present, and the payloads must exactly exhaust the
	// frame — no gaps, no trailing junk.
	dirEnd := hdr2Len + nt*dirEntryLen
	if len(bs) < dirEnd {
		return nil, ErrTruncated
	}
	d.ensureTileState(nt)
	off := dirEnd
	for i := 0; i < nt; i++ {
		ent := bs[hdr2Len+i*dirEntryLen:]
		flags := ent[0]
		if flags&^(tileFlagDirty|tileFlagIntra) != 0 {
			return nil, ErrCorrupt
		}
		plen := int(binary.LittleEndian.Uint32(ent[1:]))
		dirtyTile := flags&tileFlagDirty != 0
		intraTile := flags&tileFlagIntra != 0
		if !dirtyTile && (plen != 0 || isKey) {
			// Clean tiles carry no payload, and key frames have no clean
			// tiles — every tile of a keyframe is self-contained content.
			return nil, ErrCorrupt
		}
		if intraTile && (!dirtyTile || isKey) {
			// Intra marks absolute content inside a delta frame; it is
			// meaningless on a clean tile and redundant-therefore-illegal
			// on a key frame.
			return nil, ErrCorrupt
		}
		if plen > len(bs)-off {
			return nil, ErrTruncated
		}
		d.tileOff[i], d.tileLen[i] = off, plen
		d.tileCRC[i] = binary.LittleEndian.Uint32(ent[5:])
		d.tileGood[i] = dirtyTile
		d.tileIntra[i] = intraTile
		off += plen
	}
	if off != len(bs) {
		return nil, ErrCorrupt
	}

	size := w * h * 4
	d.scratch = grow(d.scratch, size)
	d.curBS, d.curKeyF, d.curW, d.curH, d.curRows = bs, isKey, w, h, rows
	if d.group != nil {
		if d.decTask == nil {
			d.decTask = d.decodeTile
		}
		d.group.Map(d.workers, nt, d.decTask)
	} else {
		for i := 0; i < nt; i++ {
			d.decodeTile(i)
		}
	}
	d.curBS = nil

	if isKey {
		d.w, d.h = w, h
		d.cur, d.scratch = d.scratch, d.cur
	}
	d.badTiles = d.badTiles[:0]
	for i := 0; i < nt; i++ {
		if d.tileErr[i] != nil {
			d.badTiles = append(d.badTiles, i)
		}
	}
	if len(d.badTiles) > 0 {
		return d.cur, &TileError{Tiles: append([]int(nil), d.badTiles...)}
	}
	return d.cur, nil
}
