package codec

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bitstreams to the decoder: it must never
// panic, and valid prefixes must not be silently misdecoded into frames of
// the wrong size.
func FuzzDecode(f *testing.F) {
	enc := NewEncoder(8, 8, Options{QuantShift: 2})
	for i := int64(0); i < 3; i++ {
		bs, err := enc.Encode(genFrame(8, 8, i))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bs)
	}
	bandEnc := NewEncoder(8, 32, Options{Bands: true})
	for i := int64(0); i < 3; i++ {
		bs, err := bandEnc.Encode(genFrame(8, 32, i))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bs)
	}
	f.Add([]byte{magic, frameDelta, 0, 8, 0, 0, 0, 8, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder()
		pix, err := dec.Decode(data)
		if err == nil {
			w, h := dec.Size()
			if len(pix) != w*h*4 {
				t.Fatalf("decoded %d bytes for %dx%d", len(pix), w, h)
			}
		}
	})
}

// FuzzRLERoundTrip checks the entropy coder against arbitrary inputs.
func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xAB}, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		enc := rleAppend(nil, data)
		dec, err := rleDecode(enc, len(data))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
	})
}
