package codec

import (
	"bytes"
	"hash/crc32"
	"testing"
)

// FuzzDecode feeds arbitrary bitstreams to the decoder: it must never
// panic, and valid prefixes must not be silently misdecoded into frames of
// the wrong size.
func FuzzDecode(f *testing.F) {
	enc := NewEncoder(8, 8, Options{QuantShift: 2})
	for i := int64(0); i < 3; i++ {
		bs, err := enc.Encode(genFrame(8, 8, i))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bs)
	}
	bandEnc := NewEncoder(8, 32, Options{Bands: true})
	for i := int64(0); i < 3; i++ {
		bs, err := bandEnc.Encode(genFrame(8, 32, i))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bs)
	}
	tileEnc := NewEncoder(8, 40, Options{Version: 2})
	for i := int64(0); i < 3; i++ {
		bs, err := tileEnc.Encode(genFrame(8, 40, i))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bs)
	}
	f.Add([]byte{magic, frameDelta, 0, 8, 0, 0, 0, 8, 0, 0, 0})
	f.Add([]byte{magic2, version2, frameKey, 0, 8, 0, 0, 0, 8, 0, 0, 0, 16, 0, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder()
		pix, err := dec.Decode(data)
		if err == nil {
			w, h := dec.Size()
			if len(pix) != w*h*4 {
				t.Fatalf("decoded %d bytes for %dx%d", len(pix), w, h)
			}
		}
	})
}

// FuzzV2RoundTrip drives the v2 tile codec over fuzzer-chosen geometries
// and content: the decode must reconstruct the quantized source exactly,
// and the v1 coder fed the same frames must reconstruct the same pixels.
func FuzzV2RoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(4), uint8(16), uint8(0))
	f.Add([]byte{1, 2, 3, 0, 0, 0, 0, 9}, uint8(1), uint8(1), uint8(1), uint8(2))
	f.Add(bytes.Repeat([]byte{0xAB, 0x00}, 40), uint8(8), uint8(40), uint8(5), uint8(7))
	f.Add([]byte{0xFF}, uint8(16), uint8(3), uint8(2), uint8(3))
	f.Fuzz(func(t *testing.T, data []byte, wb, hb, rowsB, shiftB uint8) {
		w, h := 1+int(wb)%16, 1+int(hb)%40
		rows, shift := 1+int(rowsB)%24, uint(shiftB)%8
		pix := func(mut byte) []byte {
			p := make([]byte, w*h*4)
			for i := range p {
				if len(data) > 0 {
					p[i] = data[i%len(data)]
				}
				p[i] += mut * byte(i)
			}
			return p
		}
		v2 := NewEncoder(w, h, Options{QuantShift: shift, TileRows: rows, KeyInterval: 2, Workers: 1})
		v1 := NewEncoder(w, h, Options{QuantShift: shift, Version: 1, KeyInterval: 2})
		d2, d1 := NewDecoder(), NewDecoder()
		for mut := byte(0); mut < 3; mut++ {
			p := pix(mut)
			bs2, err := v2.Encode(p)
			if err != nil {
				t.Fatal(err)
			}
			got, err := d2.Decode(bs2)
			if err != nil {
				t.Fatalf("v2 decode: %v", err)
			}
			want := quantized(p, shift)
			if !bytes.Equal(got, want) {
				t.Fatal("v2 round trip differs from quantized source")
			}
			bs1, err := v1.Encode(p)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := d1.Decode(bs1)
			if err != nil {
				t.Fatalf("v1 decode: %v", err)
			}
			if !bytes.Equal(got, ref) {
				t.Fatal("v2 pixels differ from v1")
			}
		}
	})
}

// FuzzRLERoundTrip checks the entropy coder against arbitrary inputs.
func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 1, 2, 3})
	f.Add(bytes.Repeat([]byte{0xAB}, 300))
	f.Fuzz(func(t *testing.T, data []byte) {
		enc := rleAppend(nil, data)
		dec, err := rleDecode(enc, len(data))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(dec, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzTileCache drives a deliberately tiny cache through fuzzer-chosen
// hit/miss/evict interleavings and holds it to its two contracts: a hit
// returns exactly RLE(content) with a matching CRC (never another entry's
// payload), and the hit/miss counters account for every lookup. The seeds
// cover repeat-until-admitted (hit), distinct contents (miss), and enough
// distinct admissions to force evictions on the small budget.
func FuzzTileCache(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1})                                  // repeats: admit then hit
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})                      // all distinct: misses
	f.Add([]byte{1, 1, 2, 2, 1, 3, 3, 2, 1, 4, 4, 3, 2, 1})    // interleaved reuse
	f.Add(bytes.Repeat([]byte{9, 9, 8, 8, 7, 7, 6, 6, 5}, 40)) // churn: evictions
	f.Fuzz(func(t *testing.T, script []byte) {
		cache := NewTileCache(tcShards * 4096) // a few entries per shard
		lookups := int64(0)
		for _, op := range script {
			// Each script byte selects one of 16 synthetic tile contents;
			// the high bit varies the geometry so length mismatches are
			// exercised alongside content mismatches.
			n := 256
			if op&0x80 != 0 {
				n = 512
			}
			content := make([]byte, n)
			for i := range content {
				content[i] = (op & 0x0F) * byte(i>>3)
			}
			want := rleAppend(nil, content)
			wantCRC := crc32.Checksum(want, castagnoli)
			payload, crc, ok := cache.Lookup(content)
			lookups++
			if ok {
				if crc != wantCRC || !bytes.Equal(payload, want) {
					t.Fatalf("op %#x: hit returned wrong payload/CRC", op)
				}
			} else {
				if canon := cache.Insert(content, want, wantCRC); canon != nil && !bytes.Equal(canon, want) {
					t.Fatalf("op %#x: canonical payload differs from inserted", op)
				}
			}
		}
		hits, misses, evictions := cache.Stats()
		if hits+misses != lookups {
			t.Fatalf("stats leak: %d hits + %d misses != %d lookups", hits, misses, lookups)
		}
		if evictions < 0 || hits < 0 || misses < 0 {
			t.Fatal("negative counter")
		}
	})
}
