package codec

import (
	"bytes"
	"math/rand"
	"testing"
)

// The SWAR kernels must agree with the obvious byte loops on every input.
// These differential tests sweep random buffers across the interesting
// lengths (0, sub-word, word-aligned, word+tail) so both the 8-byte body
// and the byte tail of every kernel are exercised.

func randBuf(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

var kernelLens = []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 255}

func TestSubAddBytesAllLanePairs(t *testing.T) {
	// Every (a,b) byte pair in one lane, with noise in the neighbors to
	// catch cross-lane carry/borrow leaks.
	rng := rand.New(rand.NewSource(1))
	for a := 0; a < 256; a += 3 {
		for b := 0; b < 256; b += 3 {
			noise := rng.Uint64()
			lane := uint(8 * rng.Intn(8))
			x := noise&^(uint64(0xFF)<<lane) | uint64(a)<<lane
			y := ^noise&^(uint64(0xFF)<<lane) | uint64(b)<<lane
			sub := subBytes(x, y)
			add := addBytes(x, y)
			for l := uint(0); l < 64; l += 8 {
				xa, yb := byte(x>>l), byte(y>>l)
				if got, want := byte(sub>>l), xa-yb; got != want {
					t.Fatalf("subBytes lane %d: %#x-%#x = %#x, want %#x", l/8, xa, yb, got, want)
				}
				if got, want := byte(add>>l), xa+yb; got != want {
					t.Fatalf("addBytes lane %d: %#x+%#x = %#x, want %#x", l/8, xa, yb, got, want)
				}
			}
		}
	}
}

func TestHasZeroByte(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		v := rng.Uint64()
		if i%4 == 0 { // force a zero lane in a quarter of the probes
			v &^= uint64(0xFF) << (8 * uint(rng.Intn(8)))
		}
		want := false
		for l := uint(0); l < 64; l += 8 {
			if byte(v>>l) == 0 {
				want = true
			}
		}
		if got := hasZeroByte(v); got != want {
			t.Fatalf("hasZeroByte(%#x) = %v, want %v", v, got, want)
		}
	}
}

func TestDeltaAddMaskMatchByteLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range kernelLens {
		a, b := randBuf(rng, n), randBuf(rng, n)

		got := make([]byte, n)
		deltaInto(got, a, b)
		want := make([]byte, n)
		for i := range want {
			want[i] = a[i] - b[i]
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("deltaInto mismatch at len %d", n)
		}

		// addInto inverts deltaInto: b + (a-b) == a.
		sum := append([]byte(nil), b...)
		addInto(sum, got)
		if !bytes.Equal(sum, a) {
			t.Fatalf("addInto does not invert deltaInto at len %d", n)
		}

		for _, mask := range []byte{0x00, 0x80, 0xFC, 0xFF} {
			got := make([]byte, n)
			maskInto(got, a, mask)
			for i := range got {
				if got[i] != a[i]&mask {
					t.Fatalf("maskInto mask %#x len %d: byte %d = %#x, want %#x", mask, n, i, got[i], a[i]&mask)
				}
			}

			// maskSubInto fuses maskInto + deltaInto, and applying its delta
			// to the reference must land exactly on the quantized content.
			fused := make([]byte, n)
			maskSubInto(fused, a, b, mask)
			for i := range fused {
				if fused[i] != a[i]&mask-b[i] {
					t.Fatalf("maskSubInto mask %#x len %d: byte %d = %#x, want %#x", mask, n, i, fused[i], a[i]&mask-b[i])
				}
			}
			ref := append([]byte(nil), b...)
			addInto(ref, fused)
			maskInto(got, a, mask)
			if !bytes.Equal(ref, got) {
				t.Fatalf("addInto(b, maskSubInto(a,b)) != maskInto(a) at mask %#x len %d", mask, n)
			}
		}
	}
}

func TestMaskedEqualByteLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range kernelLens {
		for _, mask := range []byte{0x00, 0x80, 0xF0, 0xFC, 0xFF} {
			a := randBuf(rng, n)
			ref := make([]byte, n)
			maskInto(ref, a, mask)
			if !maskedEqual(a, ref, mask) {
				t.Fatalf("mask %#x len %d: raw pixels do not match their own quantized form", mask, n)
			}
			// Flip one masked-visible bit: must report unequal, at every
			// position (body words and the byte tail both).
			if mask == 0 {
				continue // everything quantizes to zero; nothing is visible
			}
			bit := mask & -mask // lowest set bit survives quantization
			for i := 0; i < n; i++ {
				ref[i] ^= bit
				if maskedEqual(a, ref, mask) {
					t.Fatalf("mask %#x len %d: flip at %d not detected", mask, n, i)
				}
				ref[i] ^= bit
			}
			// Bits below the mask in a must be invisible.
			if inv := ^mask; inv != 0 {
				b := append([]byte(nil), a...)
				for i := range b {
					b[i] ^= inv & byte(rng.Intn(256))
				}
				if !maskedEqual(b, ref, mask) {
					t.Fatalf("mask %#x len %d: sub-quantum noise broke equality", mask, n)
				}
			}
		}
	}
}

// Reference byte-loop run scanners, as rleAppend used before the word-wide
// versions. The kernels must preserve these token boundaries exactly —
// that is what keeps the new bitstream byte-identical to the old one.
func refZeroRunEnd(data []byte, i int) int {
	for i < len(data) && data[i] == 0 {
		i++
	}
	return i
}

func refLiteralRunEnd(data []byte, i int) int {
	zeros := 0
	for i < len(data) {
		if data[i] == 0 {
			zeros++
			if zeros >= minZeroRun {
				return i - (zeros - 1)
			}
		} else {
			zeros = 0
		}
		i++
	}
	return len(data)
}

func TestRunScannersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		for i := range data {
			// Heavily zero-biased so runs of every length appear.
			if rng.Intn(3) > 0 {
				data[i] = 0
			} else {
				data[i] = byte(1 + rng.Intn(255))
			}
		}
		for i := 0; i <= n; i++ {
			if i < n && data[i] == 0 {
				if got, want := zeroRunEnd(data, i), refZeroRunEnd(data, i); got != want {
					t.Fatalf("zeroRunEnd(%v, %d) = %d, want %d", data, i, got, want)
				}
			}
			if got, want := literalRunEnd(data, i), refLiteralRunEnd(data, i); got != want {
				t.Fatalf("literalRunEnd(%v, %d) = %d, want %d", data, i, got, want)
			}
		}
	}
}
