package codec

import (
	"fmt"
	"math/rand"
	"testing"
)

// animatedFrames returns n frames of w×h with partial inter-frame change,
// approximating game content (static background + moving regions).
func animatedFrames(w, h, n int) [][]byte {
	rng := rand.New(rand.NewSource(1))
	base := make([]byte, w*h*4)
	for i := range base {
		base[i] = byte(rng.Intn(256))
	}
	frames := make([][]byte, n)
	for f := 0; f < n; f++ {
		fr := make([]byte, len(base))
		copy(fr, base)
		// Mutate a moving 10% band of the frame.
		start := (f * len(fr) / n) % len(fr)
		end := start + len(fr)/10
		if end > len(fr) {
			end = len(fr)
		}
		for i := start; i < end; i++ {
			fr[i] = byte(rng.Intn(256))
		}
		frames[f] = fr
	}
	return frames
}

func benchEncode(b *testing.B, w, h int) {
	frames := animatedFrames(w, h, 32)
	enc := NewEncoder(w, h, Options{QuantShift: 2})
	b.SetBytes(int64(w * h * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Encode(frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(enc.Bytes())/float64(enc.Frames())/1024, "KB/frame")
}

func BenchmarkEncode360p(b *testing.B) { benchEncode(b, 640, 360) }
func BenchmarkEncode720p(b *testing.B) { benchEncode(b, 1280, 720) }

// benchEncodeStriped runs the hub's v2 configuration — dirty-tile
// prediction, keyframe striping and the content-addressed tile cache — over
// scrolling content, the profile the codec round-2 work optimizes.
func benchEncodeStriped(b *testing.B, w, h int) {
	frames := animatedFrames(w, h, 8)
	enc := NewEncoder(w, h, Options{
		QuantShift: 2, StripeKeyframes: true, Cache: NewTileCache(0),
	})
	buf := make([]byte, 0, w*h)
	var err error
	for i := 0; i < 3*len(frames); i++ { // warm scratches, reference, cache
		if buf, err = enc.EncodeAppend(buf[:0], frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(w * h * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = enc.EncodeAppend(buf[:0], frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeStriped720p(b *testing.B)  { benchEncodeStriped(b, 1280, 720) }
func BenchmarkEncodeStriped1080p(b *testing.B) { benchEncodeStriped(b, 1920, 1080) }

func BenchmarkDecode360p(b *testing.B) {
	const w, h = 640, 360
	frames := animatedFrames(w, h, 32)
	enc := NewEncoder(w, h, Options{QuantShift: 2})
	var streams [][]byte
	for _, f := range frames {
		bs, err := enc.Encode(f)
		if err != nil {
			b.Fatal(err)
		}
		streams = append(streams, bs)
	}
	dec := NewDecoder()
	b.SetBytes(int64(w * h * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Decode(streams[i%len(streams)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRLEWorstCase(b *testing.B) {
	// Alternating bytes defeat run-length coding: the compression floor.
	data := make([]byte, 1<<16)
	for i := range data {
		data[i] = byte(i % 2 * 255)
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		out := rleAppend(nil, data)
		if i == 0 {
			b.ReportMetric(float64(len(out))/float64(len(data)), "expansion")
		}
	}
}

func ExampleEncoder() {
	enc := NewEncoder(2, 2, Options{QuantShift: 0})
	dec := NewDecoder()
	frame := []byte{
		255, 0, 0, 255, 0, 255, 0, 255,
		0, 0, 255, 255, 255, 255, 255, 255,
	}
	bs, _ := enc.Encode(frame)
	out, _ := dec.Decode(bs)
	fmt.Println(len(out), out[0], out[4])
	// Output: 16 255 0
}
