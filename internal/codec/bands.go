package codec

import (
	"bytes"
	"encoding/binary"
)

// Band-mode delta coding: the frame is split into horizontal bands of
// bandRows rows; bands whose quantized content is identical to the previous
// frame are skipped entirely — the encoder never delta-codes or entropy-
// codes them. For the mostly-static content cloud UIs and many game scenes
// produce, this removes most of the encode work; for fully-dynamic content
// it degrades gracefully to whole-frame coding with a few bytes of band
// headers.
//
// Bitstream (frame type 2): uvarint bandRows, uvarint changed-band count,
// then per changed band: uvarint band index, uvarint payload length, RLE
// payload of the band's byte-wise delta.

// bandRows is the height of one band in pixel rows.
const bandRows = 16

// frameBands is the frame type for band-coded delta frames.
const frameBands = 2

// bandCount returns the number of bands for height h.
func bandCount(h int) int { return (h + bandRows - 1) / bandRows }

// bandRange returns the byte range of band i in a w×h RGBA frame.
func bandRange(w, h, i int) (start, end int) {
	rowBytes := w * 4
	start = i * bandRows * rowBytes
	end = start + bandRows*rowBytes
	if max := h * rowBytes; end > max {
		end = max
	}
	return start, end
}

// encodeBands appends a band-coded delta of q against prev to out.
func encodeBands(out, q, prev []byte, w, h int) []byte {
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	nBands := bandCount(h)
	var changed []int
	for i := 0; i < nBands; i++ {
		s, e := bandRange(w, h, i)
		if !bytes.Equal(q[s:e], prev[s:e]) {
			changed = append(changed, i)
		}
	}
	put(uint64(bandRows))
	put(uint64(len(changed)))
	delta := make([]byte, 0, bandRows*w*4)
	for _, i := range changed {
		s, e := bandRange(w, h, i)
		delta = delta[:e-s]
		for j := range delta {
			delta[j] = q[s+j] - prev[s+j]
		}
		payload := rleAppend(nil, delta)
		put(uint64(i))
		put(uint64(len(payload)))
		out = append(out, payload...)
	}
	return out
}

// decodeBands applies a band-coded delta payload to cur (w×h RGBA).
func decodeBands(payload, cur []byte, w, h int) error {
	i := 0
	next := func() (uint64, error) {
		v, used := binary.Uvarint(payload[i:])
		if used <= 0 {
			return 0, ErrCorrupt
		}
		i += used
		return v, nil
	}
	rows, err := next()
	if err != nil {
		return err
	}
	if rows != bandRows {
		// Future-proofing: only the fixed band height is produced today.
		return ErrCorrupt
	}
	n, err := next()
	if err != nil {
		return err
	}
	nBands := bandCount(h)
	for k := uint64(0); k < n; k++ {
		idx, err := next()
		if err != nil {
			return err
		}
		if int(idx) >= nBands {
			return ErrCorrupt
		}
		plen, err := next()
		if err != nil {
			return err
		}
		if i+int(plen) > len(payload) {
			return ErrTruncated
		}
		s, e := bandRange(w, h, int(idx))
		delta, err := rleDecode(payload[i:i+int(plen)], e-s)
		if err != nil {
			return err
		}
		i += int(plen)
		for j := range delta {
			cur[s+j] += delta[j]
		}
	}
	if i != len(payload) {
		return ErrCorrupt
	}
	return nil
}
