package codec

import (
	"bytes"
	"encoding/binary"
)

// Band-mode delta coding: the frame is split into horizontal bands of
// bandRows rows; bands whose quantized content is identical to the previous
// frame are skipped entirely — the encoder never delta-codes or entropy-
// codes them. For the mostly-static content cloud UIs and many game scenes
// produce, this removes most of the encode work; for fully-dynamic content
// it degrades gracefully to whole-frame coding with a few bytes of band
// headers.
//
// Bitstream (frame type 2): uvarint bandRows, uvarint changed-band count,
// then per changed band: uvarint band index, uvarint payload length, RLE
// payload of the band's byte-wise delta.

// bandRows is the height of one band in pixel rows.
const bandRows = 16

// frameBands is the frame type for band-coded delta frames.
const frameBands = 2

// bandCount returns the number of bands for height h.
func bandCount(h int) int { return (h + bandRows - 1) / bandRows }

// bandRange returns the byte range of band i in a w×h RGBA frame.
func bandRange(w, h, i int) (start, end int) {
	rowBytes := w * 4
	start = i * bandRows * rowBytes
	end = start + bandRows*rowBytes
	if max := h * rowBytes; end > max {
		end = max
	}
	return start, end
}

// appendBands appends a band-coded delta of q against prev to out, reusing
// the encoder's band scratch buffers.
func (e *Encoder) appendBands(out, q, prev []byte) []byte {
	w, h := e.w, e.h
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(scratch[:], v)
		out = append(out, scratch[:n]...)
	}
	nBands := bandCount(h)
	changed := e.bandIdx[:0]
	for i := 0; i < nBands; i++ {
		s, end := bandRange(w, h, i)
		if !bytes.Equal(q[s:end], prev[s:end]) {
			changed = append(changed, i)
		}
	}
	e.bandIdx = changed
	put(uint64(bandRows))
	put(uint64(len(changed)))
	for _, i := range changed {
		s, end := bandRange(w, h, i)
		delta := grow(e.delta, end-s)
		deltaInto(delta, q[s:end], prev[s:end])
		e.delta = delta
		payload := rleAppend(e.bandRLE[:0], delta)
		e.bandRLE = payload[:0]
		put(uint64(i))
		put(uint64(len(payload)))
		out = append(out, payload...)
	}
	return out
}

// applyBands applies a band-coded delta payload to d.cur (w×h RGBA),
// expanding each band's RLE into the decoder's scratch buffer.
func (d *Decoder) applyBands(payload []byte, w, h int) error {
	i := 0
	next := func() (uint64, error) {
		v, used := binary.Uvarint(payload[i:])
		if used <= 0 {
			return 0, ErrCorrupt
		}
		i += used
		return v, nil
	}
	rows, err := next()
	if err != nil {
		return err
	}
	if rows != bandRows {
		// Future-proofing: only the fixed band height is produced today.
		return ErrCorrupt
	}
	n, err := next()
	if err != nil {
		return err
	}
	nBands := bandCount(h)
	for k := uint64(0); k < n; k++ {
		idx, err := next()
		if err != nil {
			return err
		}
		if idx >= uint64(nBands) {
			return ErrCorrupt
		}
		plen, err := next()
		if err != nil {
			return err
		}
		// Compare while still a uint64: a crafted plen near 2^64 must not
		// wrap to a negative int and slip past the slice bounds below.
		if plen > uint64(len(payload)-i) {
			return ErrTruncated
		}
		s, e := bandRange(w, h, int(idx))
		d.scratch = grow(d.scratch, e-s)
		if err := rleDecodeInto(d.scratch, payload[i:i+int(plen)]); err != nil {
			return err
		}
		i += int(plen)
		addInto(d.cur[s:e], d.scratch)
	}
	if i != len(payload) {
		return ErrCorrupt
	}
	return nil
}
