package codec

import (
	"bytes"
	"testing"
)

// frameIntraTiles parses a v2 bitstream's directory and returns which tiles
// carry the intra flag (and whether the frame is a key frame).
func frameIntraTiles(t *testing.T, bs []byte) (intra []int, isKey bool) {
	t.Helper()
	if len(bs) < hdr2Len || bs[0] != magic2 {
		t.Fatalf("not a v2 bitstream")
	}
	isKey = bs[2] == frameKey
	nt := int(uint16(bs[14]) | uint16(bs[15])<<8)
	for i := 0; i < nt; i++ {
		flags := bs[hdr2Len+i*dirEntryLen]
		if flags&tileFlagIntra != 0 {
			intra = append(intra, i)
		}
	}
	return intra, isKey
}

// TestStripedStreamPixelIdentity is the striping contract: with
// StripeKeyframes set the stream decodes to exactly the pixels the plain
// keyframed stream decodes to, only the first frame is a key frame, and
// every tile is intra-refreshed at least once per KeyInterval frames.
func TestStripedStreamPixelIdentity(t *testing.T) {
	const w, h, keyInt = 96, 96, 4 // 6 tiles, stripes wrap across the interval
	frames := animatedFrames(w, h, 13)
	plain := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: keyInt})
	striped := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: keyInt, StripeKeyframes: true})
	decPlain, decStriped := NewDecoder(), NewDecoder()
	nt := tileCount(h, DefaultTileRows)

	refreshed := make(map[int]int) // tile -> count of intra refreshes
	for fi, f := range frames {
		wantBS, err := plain.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		gotBS, err := striped.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		intra, isKey := frameIntraTiles(t, gotBS)
		if isKey != (fi == 0) {
			t.Fatalf("frame %d: striped stream key=%v, want key only on frame 0", fi, isKey)
		}
		if fi > 0 {
			phase := fi % keyInt
			for _, i := range intra {
				if i%keyInt != phase {
					t.Fatalf("frame %d (phase %d): tile %d intra-coded outside its stripe", fi, phase, i)
				}
				refreshed[i]++
			}
		}
		want, err := decPlain.Decode(wantBS)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decStriped.Decode(gotBS)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: striped pixels differ from keyframed pixels", fi)
		}
	}
	// 12 delta frames at interval 4 = 3 full stripe cycles: every tile must
	// have been re-anchored at least once (changed tiles ride their stripe
	// too, as absolute content).
	for i := 0; i < nt; i++ {
		if refreshed[i] == 0 {
			t.Fatalf("tile %d was never intra-refreshed across %d frames (interval %d)", i, len(frames), keyInt)
		}
	}
}

// TestStripedSpliceResync pins that splices keep working with striping on:
// a viewer that stalled at encode index p is caught up by a spliced delta
// and lands on the shared reconstruction.
func TestStripedSpliceResync(t *testing.T) {
	const w, h = 96, 96
	cache := NewTileCache(0)
	enc := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: 4, StripeKeyframes: true, Cache: cache})
	frames := animatedFrames(w, h, 9)

	viewer := NewDecoder()
	shared := NewDecoder()
	var parent int64
	var lastShared []byte
	for fi, f := range frames {
		bs, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		lastShared, err = shared.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		if fi < 3 { // viewer follows the verbatim chain, then stalls
			if _, err := viewer.Decode(bs); err != nil {
				t.Fatal(err)
			}
			parent = enc.Frames()
		}
	}
	splice, err := enc.AppendSplice(nil, parent)
	if err != nil {
		t.Fatal(err)
	}
	got, err := viewer.Decode(splice)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, lastShared) {
		t.Fatal("spliced catch-up did not land the stalled viewer on the shared reconstruction")
	}
	// A late joiner splices a full key from the same cache-backed state.
	keyBS, err := enc.AppendSplice(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	joiner := NewDecoder()
	jp, err := joiner.Decode(keyBS)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jp, lastShared) {
		t.Fatal("spliced keyframe did not reproduce the shared reconstruction")
	}
}

// TestStripedWorkerByteIdentity extends the determinism pin to the new
// machinery: striping + a shared cache must stay byte-identical across
// worker counts (cached payloads are position-independent bytes).
func TestStripedWorkerByteIdentity(t *testing.T) {
	const w, h = 128, 112
	frames := animatedFrames(w, h, 6)
	cache := NewTileCache(0)
	mk := func(workers int) *Encoder {
		return NewEncoder(w, h, Options{
			QuantShift: 2, KeyInterval: 3, StripeKeyframes: true,
			Cache: cache, Workers: workers,
		})
	}
	serial, par4, par16 := mk(1), mk(4), mk(16)
	for pass := 0; pass < 2; pass++ {
		for fi, f := range frames {
			want, err := serial.Encode(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, enc := range []*Encoder{par4, par16} {
				got, err := enc.Encode(f)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("pass %d frame %d: parallel striped bitstream differs from serial", pass, fi)
				}
			}
		}
	}
}

// TestStripedForceKeyframe pins that ForceKeyframe still yields a full key
// under striping and the stream recovers its delta cadence after it.
func TestStripedForceKeyframe(t *testing.T) {
	const w, h = 64, 64
	enc := NewEncoder(w, h, Options{QuantShift: 2, KeyInterval: 4, StripeKeyframes: true})
	frames := animatedFrames(w, h, 6)
	dec := NewDecoder()
	for _, f := range frames[:3] {
		bs, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(bs); err != nil {
			t.Fatal(err)
		}
	}
	enc.ForceKeyframe()
	fresh := NewDecoder() // keyframe must decode with no prior state
	for fi, f := range frames[3:] {
		bs, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		if key := IsKeyframe(bs); key != (fi == 0) {
			t.Fatalf("post-ForceKeyframe frame %d: key=%v, want key only first", fi, key)
		}
		want, err := dec.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := fresh.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("fresh decoder diverged from continuing decoder after forced key")
		}
	}
}
