package codec

import (
	"encoding/binary"
	"errors"
	"testing"
)

// genSpliceFrames builds a deterministic sequence of w×h frames with a
// moving dirty region over a static background, so most tiles stay clean
// between consecutive frames (the shape splicing exploits).
func genSpliceFrames(w, h, n int) [][]byte {
	base := genFrame(w, h, 7)
	frames := make([][]byte, n)
	for f := 0; f < n; f++ {
		fr := append([]byte(nil), base...)
		// One moving tile-row's worth of churn per frame.
		rowBytes := w * 4
		start := ((f * 3) % h) * rowBytes
		end := start + rowBytes
		for i := start; i < end && i < len(fr); i++ {
			fr[i] = byte(i*31 + f*17)
		}
		frames[f] = fr
	}
	return frames
}

// TestSpliceKeyMatchesSharedState: a key splice cut after N shared encodes
// must decode, from nothing, to exactly the pixels a verbatim subscriber
// reconstructed — at lossless and lossy quantization.
func TestSpliceKeyMatchesSharedState(t *testing.T) {
	const w, h = 32, 48
	for _, shift := range []uint{0, 2} {
		enc := NewEncoder(w, h, Options{QuantShift: shift})
		verbatim := NewDecoder()
		var want []byte
		for _, fr := range genSpliceFrames(w, h, 9) {
			bs, err := enc.Encode(fr)
			if err != nil {
				t.Fatal(err)
			}
			if want, err = verbatim.Decode(bs); err != nil {
				t.Fatal(err)
			}
		}
		spliced, err := enc.AppendSplice(nil, 0)
		if err != nil {
			t.Fatalf("shift %d: AppendSplice: %v", shift, err)
		}
		if !IsKeyframe(spliced) {
			t.Fatalf("shift %d: key splice is not a keyframe", shift)
		}
		joiner := NewDecoder()
		got, err := joiner.Decode(spliced)
		if err != nil {
			t.Fatalf("shift %d: decode spliced key: %v", shift, err)
		}
		if !bytesEqual(got, want) {
			t.Fatalf("shift %d: spliced key pixels differ from the shared reconstruction", shift)
		}
	}
}

// TestSpliceDeltaBridgesGap: a session that stopped consuming at encode
// index k and resumes via a spliced delta must land byte-identical on the
// shared reconstruction, and the shared stream's next verbatim delta must
// then apply cleanly on top of the splice.
func TestSpliceDeltaBridgesGap(t *testing.T) {
	const w, h = 32, 64
	frames := genSpliceFrames(w, h, 12)
	for _, shift := range []uint{0, 2} {
		enc := NewEncoder(w, h, Options{QuantShift: shift})
		verbatim := NewDecoder()
		laggard := NewDecoder()
		// Verbatim follows everything; the laggard stops after frame 4 and
		// misses the rest. The final source frame is held back so the chain
		// can be continued past the splice below.
		const gapAt = 5
		var want []byte
		for i, fr := range frames[:len(frames)-1] {
			bs, err := enc.Encode(fr)
			if err != nil {
				t.Fatal(err)
			}
			if want, err = verbatim.Decode(bs); err != nil {
				t.Fatal(err)
			}
			if i < gapAt {
				if _, err := laggard.Decode(bs); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Bridge the gap: laggard's state is encode index gapAt.
		spliced, err := enc.AppendSplice(nil, int64(gapAt))
		if err != nil {
			t.Fatalf("shift %d: AppendSplice: %v", shift, err)
		}
		if IsKeyframe(spliced) {
			t.Fatalf("shift %d: gap splice should be a delta frame", shift)
		}
		got, err := laggard.Decode(spliced)
		if err != nil {
			t.Fatalf("shift %d: decode spliced delta: %v", shift, err)
		}
		if !bytesEqual(got, want) {
			t.Fatalf("shift %d: spliced delta did not land on the shared reconstruction", shift)
		}
		// The chain continues: the next shared frame is encoded against the
		// same reconstruction the splice produced.
		last, err := enc.Encode(frames[len(frames)-1])
		if err != nil {
			t.Fatal(err)
		}
		want, err = verbatim.Decode(last)
		if err != nil {
			t.Fatal(err)
		}
		got, err = laggard.Decode(last)
		if err != nil {
			t.Fatalf("shift %d: verbatim delta after splice: %v", shift, err)
		}
		if !bytesEqual(got, want) {
			t.Fatalf("shift %d: post-splice verbatim delta diverged", shift)
		}
	}
}

// TestSpliceUpToDateIsAllClean: splicing against the current encode index
// produces a valid all-clean delta that changes nothing.
func TestSpliceUpToDateIsAllClean(t *testing.T) {
	const w, h = 16, 32
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	dec := NewDecoder()
	var want []byte
	for _, fr := range genSpliceFrames(w, h, 4) {
		bs, err := enc.Encode(fr)
		if err != nil {
			t.Fatal(err)
		}
		if want, err = dec.Decode(bs); err != nil {
			t.Fatal(err)
		}
	}
	spliced, err := enc.AppendSplice(nil, enc.Frames())
	if err != nil {
		t.Fatal(err)
	}
	wantLen := hdr2Len + tileCount(h, DefaultTileRows)*dirEntryLen
	if len(spliced) != wantLen {
		t.Fatalf("all-clean splice is %d bytes, want %d (header+directory only)", len(spliced), wantLen)
	}
	got, err := dec.Decode(spliced)
	if err != nil {
		t.Fatalf("decode all-clean splice: %v", err)
	}
	if !bytesEqual(got, want) {
		t.Fatal("all-clean splice changed pixels")
	}
}

// TestSpliceMemoReuse: splicing the same static state twice must reuse the
// memoized intra payloads — byte-identical output, no re-cut.
func TestSpliceMemoReuse(t *testing.T) {
	const w, h = 16, 48
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	for _, fr := range genSpliceFrames(w, h, 3) {
		if _, err := enc.Encode(fr); err != nil {
			t.Fatal(err)
		}
	}
	a, err := enc.AppendSplice(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	a = append([]byte(nil), a...)
	b, err := enc.AppendSplice(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytesEqual(a, b) {
		t.Fatal("repeated key splices of static state differ")
	}
}

// TestSpliceErrors pins the refusal paths: no state yet, and v1 encoders.
func TestSpliceErrors(t *testing.T) {
	enc := NewEncoder(8, 8, Options{})
	if _, err := enc.AppendSplice(nil, 0); !errors.Is(err, ErrNoSpliceState) {
		t.Fatalf("pre-state splice err = %v, want ErrNoSpliceState", err)
	}
	v1 := NewEncoder(8, 8, Options{Version: 1})
	if _, err := v1.Encode(genFrame(8, 8, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := v1.AppendSplice(nil, 0); err == nil {
		t.Fatal("v1 splice did not error")
	}
}

// TestSpliceHostileIntraFlags: the decoder must reject intra on clean tiles
// and on key frames, and still reject unknown flag bits above intra.
func TestSpliceHostileIntraFlags(t *testing.T) {
	const w, h = 8, 40
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	frames := genSpliceFrames(w, h, 3)
	key, err := enc.Encode(frames[0])
	if err != nil {
		t.Fatal(err)
	}
	delta, err := enc.Encode(frames[0]) // identical content: all-clean delta
	if err != nil {
		t.Fatal(err)
	}
	mut := func(src []byte, f func(b []byte)) []byte {
		b := append([]byte(nil), src...)
		f(b)
		return b
	}
	cases := []struct {
		name string
		bs   []byte
	}{
		{"intra on key frame tile", mut(key, func(b []byte) { b[hdr2Len] |= tileFlagIntra })},
		{"intra on clean delta tile", mut(delta, func(b []byte) { b[hdr2Len] = tileFlagIntra })},
		{"unknown flag bit", mut(key, func(b []byte) { b[hdr2Len] |= 0x04 })},
	}
	for _, c := range cases {
		dec := NewDecoder()
		if _, err := dec.Decode(key); err != nil {
			t.Fatal(err)
		}
		if _, err := dec.Decode(c.bs); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", c.name, err)
		}
	}
}

// bytesEqual avoids pulling bytes.Equal into every assertion site with its
// nil-vs-empty caveat: both sides here are always non-nil frames.
func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSpliceDirectoryShape sanity-checks the spliced delta's directory: the
// changed tiles carry dirty|intra, the rest are zero entries.
func TestSpliceDirectoryShape(t *testing.T) {
	const w, h = 8, 64 // 4 tiles
	enc := NewEncoder(w, h, Options{QuantShift: 0})
	frames := genSpliceFrames(w, h, 2)
	if _, err := enc.Encode(frames[0]); err != nil {
		t.Fatal(err)
	}
	parent := enc.Frames()
	// Change only tile 2's rows.
	fr := append([]byte(nil), frames[0]...)
	rowBytes := w * 4
	for i := 2 * DefaultTileRows * rowBytes; i < 3*DefaultTileRows*rowBytes; i++ {
		fr[i] ^= 0x55
	}
	if _, err := enc.Encode(fr); err != nil {
		t.Fatal(err)
	}
	spliced, err := enc.AppendSplice(nil, parent)
	if err != nil {
		t.Fatal(err)
	}
	nt := tileCount(h, DefaultTileRows)
	for i := 0; i < nt; i++ {
		flags := spliced[hdr2Len+i*dirEntryLen]
		plen := binary.LittleEndian.Uint32(spliced[hdr2Len+i*dirEntryLen+1:])
		if i == 2 {
			if flags != tileFlagDirty|tileFlagIntra || plen == 0 {
				t.Fatalf("changed tile %d: flags %#x len %d, want dirty|intra with payload", i, flags, plen)
			}
		} else if flags != 0 || plen != 0 {
			t.Fatalf("unchanged tile %d: flags %#x len %d, want clean zero entry", i, flags, plen)
		}
	}
}
