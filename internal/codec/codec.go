// Package codec implements the video-style frame codec used by the
// real-time streaming stack: temporal delta against the previous frame,
// quantization, and run-length entropy coding. It stands in for the
// VirtualGL/TurboVNC video streaming the paper builds on — what matters to
// FPS regulation is that encoding takes real, content-dependent time and
// that static scene regions compress away (which is why the paper's streams
// fit in 15–60 Mbps).
//
// Bitstream layout (all integers little-endian):
//
//	byte 0:     magic 0xD3
//	byte 1:     frame type (0 = key, 1 = delta)
//	byte 2:     quantization shift (0-7)
//	bytes 3-6:  width (uint32)
//	bytes 7-10: height (uint32)
//	bytes 11+:  RLE payload
//
// RLE payload tokens:
//
//	0x00 <uvarint n>            — n zero bytes
//	0x01 <uvarint n> <n bytes>  — n literal bytes
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
)

const (
	magic     = 0xD3
	headerLen = 11

	frameKey   = 0
	frameDelta = 1
)

// Errors returned by the decoder.
var (
	ErrBadMagic   = errors.New("codec: bad magic byte")
	ErrTruncated  = errors.New("codec: truncated bitstream")
	ErrDimensions = errors.New("codec: frame dimensions mismatch")
	ErrNoKeyframe = errors.New("codec: delta frame before any keyframe")
	ErrCorrupt    = errors.New("codec: corrupt payload")
)

// Options configures an Encoder.
type Options struct {
	// QuantShift drops the low bits of each sample before coding
	// (0 = lossless, higher = smaller and lossier). Default 2.
	QuantShift uint
	// KeyInterval forces a keyframe every N frames (default 120; the
	// first frame is always a keyframe).
	KeyInterval int
	// Bands enables band-skip delta coding: unchanged 16-row bands are
	// skipped without any coding work, cutting encode time on mostly-
	// static content (see bands.go).
	Bands bool
}

// Encoder compresses a stream of same-sized RGBA frames.
type Encoder struct {
	w, h  int
	opts  Options
	prev  []byte // previous *quantized* frame
	count int

	frames int64
	bytes  int64
}

// NewEncoder returns an encoder for w×h RGBA frames.
func NewEncoder(w, h int, opts Options) *Encoder {
	if opts.QuantShift > 7 {
		opts.QuantShift = 7
	}
	if opts.KeyInterval <= 0 {
		opts.KeyInterval = 120
	}
	return &Encoder{w: w, h: h, opts: opts}
}

// FrameSize returns the raw frame size in bytes.
func (e *Encoder) FrameSize() int { return e.w * e.h * 4 }

// Frames returns the number of frames encoded.
func (e *Encoder) Frames() int64 { return e.frames }

// Bytes returns the total encoded output size.
func (e *Encoder) Bytes() int64 { return e.bytes }

// Encode compresses pix (len must be w*h*4) and returns the bitstream.
func (e *Encoder) Encode(pix []byte) ([]byte, error) {
	if len(pix) != e.FrameSize() {
		return nil, fmt.Errorf("codec: frame is %d bytes, want %d", len(pix), e.FrameSize())
	}
	q := quantize(pix, e.opts.QuantShift)
	isKey := e.prev == nil || e.count%e.opts.KeyInterval == 0
	e.count++

	out := make([]byte, headerLen, headerLen+len(q)/8)
	out[0] = magic
	out[2] = byte(e.opts.QuantShift)
	binary.LittleEndian.PutUint32(out[3:], uint32(e.w))
	binary.LittleEndian.PutUint32(out[7:], uint32(e.h))

	switch {
	case isKey:
		out[1] = frameKey
		out = rleAppend(out, q)
	case e.opts.Bands:
		out[1] = frameBands
		out = encodeBands(out, q, e.prev, e.w, e.h)
	default:
		out[1] = frameDelta
		delta := make([]byte, len(q))
		for i := range q {
			delta[i] = q[i] - e.prev[i]
		}
		out = rleAppend(out, delta)
	}
	e.prev = q
	e.frames++
	e.bytes += int64(len(out))
	return out, nil
}

// ForceKeyframe makes the next frame a keyframe (e.g. after a client joins).
func (e *Encoder) ForceKeyframe() { e.count = 0; e.prev = nil }

// QuantShift returns the current quantization shift.
func (e *Encoder) QuantShift() uint { return e.opts.QuantShift }

// SetQuantShift changes the quantization at a frame boundary (adaptive
// quality). Raising it coarsens and shrinks subsequent frames; the next
// delta stays decodable because deltas are byte-exact against whatever the
// previous frame reconstructed to.
func (e *Encoder) SetQuantShift(s uint) {
	if s > 7 {
		s = 7
	}
	e.opts.QuantShift = s
}

// Decoder decompresses a stream produced by Encoder.
type Decoder struct {
	w, h int
	cur  []byte
}

// NewDecoder returns a decoder; dimensions are learned from the first frame.
func NewDecoder() *Decoder { return &Decoder{} }

// Decode decompresses one bitstream frame and returns the reconstructed
// RGBA pixels. The returned slice is owned by the decoder and valid until
// the next Decode.
func (d *Decoder) Decode(bs []byte) ([]byte, error) {
	if len(bs) < headerLen {
		return nil, ErrTruncated
	}
	if bs[0] != magic {
		return nil, ErrBadMagic
	}
	ftype := bs[1]
	w := int(binary.LittleEndian.Uint32(bs[3:]))
	h := int(binary.LittleEndian.Uint32(bs[7:]))
	if w <= 0 || h <= 0 || w > 1<<15 || h > 1<<15 {
		return nil, ErrDimensions
	}
	size := w * h * 4
	if d.cur != nil && (d.w != w || d.h != h) {
		return nil, ErrDimensions
	}
	switch ftype {
	case frameKey:
		payload, err := rleDecode(bs[headerLen:], size)
		if err != nil {
			return nil, err
		}
		d.w, d.h = w, h
		d.cur = payload
	case frameDelta:
		if d.cur == nil {
			return nil, ErrNoKeyframe
		}
		payload, err := rleDecode(bs[headerLen:], size)
		if err != nil {
			return nil, err
		}
		for i := range d.cur {
			d.cur[i] += payload[i]
		}
	case frameBands:
		if d.cur == nil {
			return nil, ErrNoKeyframe
		}
		if err := decodeBands(bs[headerLen:], d.cur, w, h); err != nil {
			return nil, err
		}
	default:
		return nil, ErrCorrupt
	}
	return d.cur, nil
}

// Size returns the current frame dimensions (0,0 before the first frame).
func (d *Decoder) Size() (w, h int) { return d.w, d.h }

// quantize returns pix with the low QuantShift bits cleared.
func quantize(pix []byte, shift uint) []byte {
	out := make([]byte, len(pix))
	if shift == 0 {
		copy(out, pix)
		return out
	}
	mask := byte(0xFF) << shift
	for i, v := range pix {
		out[i] = v & mask
	}
	return out
}

// rleAppend appends the RLE coding of data to dst and returns dst.
func rleAppend(dst, data []byte) []byte {
	var scratch [binary.MaxVarintLen64]byte
	i := 0
	for i < len(data) {
		if data[i] == 0 {
			j := i
			for j < len(data) && data[j] == 0 {
				j++
			}
			dst = append(dst, 0x00)
			n := binary.PutUvarint(scratch[:], uint64(j-i))
			dst = append(dst, scratch[:n]...)
			i = j
			continue
		}
		// Literal run: extend until we hit a zero run long enough to be
		// worth a token (>= 4 zeros).
		j := i
		zeros := 0
		for j < len(data) {
			if data[j] == 0 {
				zeros++
				if zeros >= 4 {
					j -= zeros - 1
					break
				}
			} else {
				zeros = 0
			}
			j++
		}
		if j > len(data) {
			j = len(data)
		}
		dst = append(dst, 0x01)
		n := binary.PutUvarint(scratch[:], uint64(j-i))
		dst = append(dst, scratch[:n]...)
		dst = append(dst, data[i:j]...)
		i = j
	}
	return dst
}

// rleDecode expands an RLE payload into exactly size bytes.
func rleDecode(payload []byte, size int) ([]byte, error) {
	out := make([]byte, 0, size)
	i := 0
	for i < len(payload) {
		tok := payload[i]
		i++
		n, used := binary.Uvarint(payload[i:])
		if used <= 0 {
			return nil, ErrCorrupt
		}
		i += used
		if n > uint64(size-len(out)) {
			return nil, ErrCorrupt
		}
		switch tok {
		case 0x00:
			out = append(out, make([]byte, n)...)
		case 0x01:
			if i+int(n) > len(payload) {
				return nil, ErrTruncated
			}
			out = append(out, payload[i:i+int(n)]...)
			i += int(n)
		default:
			return nil, ErrCorrupt
		}
	}
	if len(out) != size {
		return nil, ErrTruncated
	}
	return out, nil
}
