// Package codec implements the video-style frame codec used by the
// real-time streaming stack: temporal delta against the previous frame,
// quantization, and run-length entropy coding. It stands in for the
// VirtualGL/TurboVNC video streaming the paper builds on — what matters to
// FPS regulation is that encoding takes real, content-dependent time and
// that static scene regions compress away (which is why the paper's streams
// fit in 15–60 Mbps).
//
// Bitstream layout (all integers little-endian):
//
//	byte 0:     magic 0xD3
//	byte 1:     frame type (0 = key, 1 = delta)
//	byte 2:     quantization shift (0-7)
//	bytes 3-6:  width (uint32)
//	bytes 7-10: height (uint32)
//	bytes 11+:  RLE payload
//
// RLE payload tokens:
//
//	0x00 <uvarint n>            — n zero bytes
//	0x01 <uvarint n> <n bytes>  — n literal bytes
//
// The layout above is the v1 bitstream. The v2 bitstream (magic 0xD4, see
// tile.go) splits the frame into independent tile rows with a per-tile
// offset table, dirty-skip flags and per-tile CRCs, and is what encoders
// produce by default; this decoder accepts both.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"

	"odr/internal/wpool"
)

const (
	magic     = 0xD3
	headerLen = 11

	frameKey   = 0
	frameDelta = 1

	// maxDim bounds the decoded frame dimensions. The paper's workloads top
	// out at 4K; 8192 leaves headroom while capping the allocation a hostile
	// header can demand at 8192x8192x4 before any payload byte is validated.
	maxDim = 8192
)

// Errors returned by the decoder.
var (
	ErrBadMagic   = errors.New("codec: bad magic byte")
	ErrTruncated  = errors.New("codec: truncated bitstream")
	ErrDimensions = errors.New("codec: frame dimensions mismatch")
	ErrNoKeyframe = errors.New("codec: delta frame before any keyframe")
	ErrCorrupt    = errors.New("codec: corrupt payload")
	ErrVersion    = errors.New("codec: unsupported bitstream version")
)

// Options configures an Encoder.
type Options struct {
	// QuantShift drops the low bits of each sample before coding
	// (0 = lossless, higher = smaller and lossier). Default 2.
	QuantShift uint
	// KeyInterval forces a keyframe every N frames (default 120; the
	// first frame is always a keyframe).
	KeyInterval int
	// Bands enables band-skip delta coding: unchanged 16-row bands are
	// skipped without any coding work, cutting encode time on mostly-
	// static content (see bands.go). Bands is a v1 mechanism; selecting it
	// without an explicit Version pins the encoder to the v1 bitstream
	// (the v2 tile path subsumes band skipping).
	Bands bool
	// Version selects the bitstream generation: 2 (the default) emits the
	// tiled v2 bitstream, 1 the legacy v1 byte-stream. Zero means 2 unless
	// Bands is set.
	Version int
	// TileRows is the tile height in pixel rows for the v2 bitstream
	// (default 16). Every tile is an independent encode/decode unit.
	TileRows int
	// Workers caps how many pool workers encode tiles of one frame
	// concurrently (0 = the pool's full width, 1 = serial in the calling
	// goroutine). The bitstream is byte-identical at any setting.
	Workers int
	// Pool overrides the worker pool tiles are encoded on (nil = the
	// process-wide wpool.Default()).
	Pool *wpool.Pool
	// Cache, when non-nil, memoizes encoded tile payloads content-addressed
	// across frames, encoders and splices (v2 only; see cache.go). Sharing
	// one cache between encoders is safe and changes no bitstream byte —
	// payloads are pure functions of the coded content.
	Cache *TileCache
	// StripeKeyframes replaces the periodic full keyframe with temporal
	// striping (v2 only): each delta frame intra-refreshes the tile stripe
	// whose index matches the frame number mod KeyInterval, so every tile
	// is re-anchored once per KeyInterval frames and per-frame encode time
	// stays flat instead of spiking KeyInterval-periodically. The first
	// frame (and any ForceKeyframe) still emits a full key.
	StripeKeyframes bool
}

// BitstreamVersion returns the bitstream generation these options resolve
// to (1 or 2), applying the same defaulting NewEncoder applies.
func (o Options) BitstreamVersion() int { return o.version() }

// version resolves the effective bitstream version for the options.
func (o Options) version() int {
	switch o.Version {
	case 1, 2:
		return o.Version
	default:
		if o.Bands {
			return 1
		}
		return 2
	}
}

// Encoder compresses a stream of same-sized RGBA frames.
//
// The encoder holds all working buffers it needs between frames, so the
// steady-state hot path allocates only when the caller's destination slice
// must grow: quantization and the previous-frame reference swap between two
// persistent buffers, the delta image lives in a reusable scratch, and band
// coding reuses its index/payload scratches.
type Encoder struct {
	w, h    int
	opts    Options
	version int
	prev    []byte // previous *quantized* frame
	count   int

	qbuf    []byte // quantization target; swaps with prev each frame
	delta   []byte // delta-image scratch
	bandIdx []int  // changed-band index scratch
	bandRLE []byte // per-band RLE payload scratch

	// v2 tile state (see tile.go, predict.go): per-tile scratches persist
	// across frames, and the wpool.Group embeds the submission bookkeeping,
	// so the parallel path allocates nothing in steady state either. For
	// v2, prev is a persistent quantized reference that dirty tiles fold
	// into in place — it is never swapped or re-quantized whole.
	tileRows    int
	group       *wpool.Group
	encTask     func(int)
	predTask    func(int)
	refValid    bool     // prev holds a decodable reference (v2)
	prevRaw     []byte   // raw pixels behind prev, per tile (see predict.go)
	tileRawOK   []bool   // prevRaw[tile] is a valid raw reference
	tilePayload [][]byte // per-tile payload refs: tileScratch[i] or cache memory
	tileScratch [][]byte // per-tile encoder-owned RLE scratch
	tileQ       [][]byte // per-tile quantization scratch
	tileDelta   [][]byte // per-tile delta scratch
	tileCRC     []uint32
	tileDirty   []bool // tile carries a payload this frame
	tileChanged []bool // tile content differs from the reference
	tileIntra   []bool // tile is this frame's keyframe stripe
	tileNanos   []int64
	workList    []int // tiles the pre-pass sent to the pool, ascending
	lastTiles   int
	lastDirty   int
	curPix      []byte // per-frame task input, set before the tile Maps
	curKey      bool
	curPhase    int // this delta frame's stripe phase, -1 when not striping

	// Splice state (splice.go): tileChangedAt[i] is the encode index
	// (Frames() value) of the last frame whose tile i was dirty, and the
	// splice* slices memoize intra-coded tile payloads cut from e.prev so
	// repeated splices of a static tile cost one RLE pass, not N.
	tileChangedAt []int64
	spliceRLE     [][]byte // per-tile intra payload refs: spliceScratch[i], memo, or cache
	spliceScratch [][]byte // per-tile encoder-owned splice RLE scratch (cache path)
	spliceCRC     []uint32
	spliceAt      []int64
	// lastSpliceTiles is the tile count of the most recent AppendSplice
	// (read under the caller's encoder lock; feeds cache conservation
	// accounting).
	lastSpliceTiles int

	frames int64
	bytes  int64
}

// NewEncoder returns an encoder for w×h RGBA frames.
func NewEncoder(w, h int, opts Options) *Encoder {
	if opts.QuantShift > 7 {
		opts.QuantShift = 7
	}
	if opts.KeyInterval <= 0 {
		opts.KeyInterval = 120
	}
	e := &Encoder{w: w, h: h, opts: opts, version: opts.version()}
	if e.version == 2 {
		e.tileRows = opts.TileRows
		if e.tileRows <= 0 {
			e.tileRows = DefaultTileRows
		}
		e.group = wpool.NewGroup(opts.Pool)
		e.encTask = e.encodeTile
		e.predTask = e.predictTile
	}
	return e
}

// FrameSize returns the raw frame size in bytes.
func (e *Encoder) FrameSize() int { return e.w * e.h * 4 }

// Frames returns the number of frames encoded.
func (e *Encoder) Frames() int64 { return e.frames }

// Bytes returns the total encoded output size.
func (e *Encoder) Bytes() int64 { return e.bytes }

// Encode compresses pix (len must be w*h*4) and returns the bitstream in a
// freshly allocated slice. Callers that recycle payload buffers should use
// EncodeAppend instead.
func (e *Encoder) Encode(pix []byte) ([]byte, error) {
	return e.EncodeAppend(make([]byte, 0, headerLen+len(pix)/8), pix)
}

// EncodeAppend compresses pix (len must be w*h*4), appends the bitstream to
// dst, and returns the extended slice. When dst has enough capacity the
// encode allocates nothing.
func (e *Encoder) EncodeAppend(dst, pix []byte) ([]byte, error) {
	if len(pix) != e.FrameSize() {
		return nil, fmt.Errorf("codec: frame is %d bytes, want %d", len(pix), e.FrameSize())
	}
	if e.version == 2 {
		return e.encodeTiles(dst, pix)
	}
	q := e.quantizeInto(pix)
	isKey := e.prev == nil || e.count%e.opts.KeyInterval == 0
	e.count++

	base := len(dst)
	var hdr [headerLen]byte
	out := append(dst, hdr[:]...)
	out[base] = magic
	out[base+2] = byte(e.opts.QuantShift)
	binary.LittleEndian.PutUint32(out[base+3:], uint32(e.w))
	binary.LittleEndian.PutUint32(out[base+7:], uint32(e.h))

	switch {
	case isKey:
		out[base+1] = frameKey
		out = rleAppend(out, q)
	case e.opts.Bands:
		out[base+1] = frameBands
		out = e.appendBands(out, q, e.prev)
	default:
		out[base+1] = frameDelta
		delta := grow(e.delta, len(q))
		deltaInto(delta, q, e.prev)
		e.delta = delta
		out = rleAppend(out, delta)
	}
	// q lives in e.qbuf; keep it as the new reference frame and let the old
	// reference become the next quantization target.
	e.prev, e.qbuf = q, e.prev
	e.frames++
	e.bytes += int64(len(out) - base)
	return out, nil
}

// quantizeInto quantizes pix into the encoder's reusable buffer.
func (e *Encoder) quantizeInto(pix []byte) []byte {
	out := grow(e.qbuf, len(pix))
	e.qbuf = out
	if e.opts.QuantShift == 0 {
		copy(out, pix)
		return out
	}
	maskInto(out, pix, 0xFF<<e.opts.QuantShift)
	return out
}

// ForceKeyframe makes the next frame a keyframe (e.g. after a client joins).
// For v2 the reference buffer is kept (the key frame overwrites every tile
// anyway); only its validity is dropped.
func (e *Encoder) ForceKeyframe() {
	e.count = 0
	e.refValid = false
	if e.version != 2 {
		e.prev = nil
	}
}

// QuantShift returns the current quantization shift.
func (e *Encoder) QuantShift() uint { return e.opts.QuantShift }

// SetQuantShift changes the quantization at a frame boundary (adaptive
// quality). Raising it coarsens and shrinks subsequent frames; the next
// delta stays decodable because deltas are byte-exact against whatever the
// previous frame reconstructed to.
func (e *Encoder) SetQuantShift(s uint) {
	if s > 7 {
		s = 7
	}
	e.opts.QuantShift = s
}

// Decoder decompresses a stream produced by Encoder. It accepts both the
// v1 and the tiled v2 bitstream, switching on the magic byte per frame.
type Decoder struct {
	w, h    int
	cur     []byte
	scratch []byte // RLE expansion target; swaps with cur on keyframes

	// v2 tile state (tile.go): parsed directory scratches plus the
	// optional decode pool (nil = serial decoding).
	group     *wpool.Group
	workers   int
	tileOff   []int
	tileLen   []int
	tileCRC   []uint32
	tileGood  []bool
	tileIntra []bool
	tileErr   []error
	decTask  func(int)
	// per-frame decode task inputs
	curBS      []byte
	curKeyF    bool
	curW, curH int
	curRows    int
	badTiles   []int
}

// NewDecoder returns a decoder; dimensions are learned from the first frame.
func NewDecoder() *Decoder { return &Decoder{} }

// SetPool enables tile-parallel decoding of v2 frames on p (nil = the
// shared wpool.Default()), with at most workers concurrent tiles (0 = the
// pool's full width). The decoded pixels are identical at any setting;
// the default, without SetPool, is serial decoding.
func (d *Decoder) SetPool(p *wpool.Pool, workers int) {
	d.group = wpool.NewGroup(p)
	d.workers = workers
}

// IsKeyframe reports whether the bitstream is a self-contained keyframe —
// decodable with no prior state. Transports use it to tag the delta chain:
// a resyncing client skips frames until one of these arrives. Both
// bitstream versions are recognized.
func IsKeyframe(bs []byte) bool {
	if len(bs) >= 2 && bs[0] == magic && bs[1] == frameKey {
		return true
	}
	return len(bs) >= 3 && bs[0] == magic2 && bs[1] == version2 && bs[2] == frameKey
}

// Decode decompresses one bitstream frame and returns the reconstructed
// RGBA pixels. The returned slice is owned by the decoder and valid until
// the next Decode. Steady-state decoding allocates nothing.
//
// A v2 frame whose bitstream carries corrupt tiles decodes partially: the
// intact tiles are applied, the corrupt ones keep their previous content,
// and Decode returns the pixels alongside a *TileError (matchable with
// errors.Is(err, ErrTileCRC)) so the caller can resync instead of
// discarding the whole frame.
func (d *Decoder) Decode(bs []byte) ([]byte, error) {
	if len(bs) >= 1 && bs[0] == magic2 {
		return d.decodeTiles(bs)
	}
	if len(bs) < headerLen {
		return nil, ErrTruncated
	}
	if bs[0] != magic {
		return nil, ErrBadMagic
	}
	ftype := bs[1]
	w := int(binary.LittleEndian.Uint32(bs[3:]))
	h := int(binary.LittleEndian.Uint32(bs[7:]))
	if w <= 0 || h <= 0 || w > maxDim || h > maxDim {
		return nil, ErrDimensions
	}
	size := w * h * 4
	if d.cur != nil && (d.w != w || d.h != h) {
		return nil, ErrDimensions
	}
	switch ftype {
	case frameKey:
		d.scratch = grow(d.scratch, size)
		if err := rleDecodeInto(d.scratch, bs[headerLen:]); err != nil {
			return nil, err
		}
		d.w, d.h = w, h
		d.cur, d.scratch = d.scratch, d.cur
	case frameDelta:
		if d.cur == nil {
			return nil, ErrNoKeyframe
		}
		d.scratch = grow(d.scratch, size)
		if err := rleDecodeInto(d.scratch, bs[headerLen:]); err != nil {
			return nil, err
		}
		addInto(d.cur, d.scratch)
	case frameBands:
		if d.cur == nil {
			return nil, ErrNoKeyframe
		}
		if err := d.applyBands(bs[headerLen:], w, h); err != nil {
			return nil, err
		}
	default:
		return nil, ErrCorrupt
	}
	return d.cur, nil
}

// Size returns the current frame dimensions (0,0 before the first frame).
func (d *Decoder) Size() (w, h int) { return d.w, d.h }

// grow returns b resized to n bytes, reusing its backing array when the
// capacity allows and allocating once otherwise.
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// quantize returns pix with the low QuantShift bits cleared.
func quantize(pix []byte, shift uint) []byte {
	out := make([]byte, len(pix))
	if shift == 0 {
		copy(out, pix)
		return out
	}
	mask := byte(0xFF) << shift
	for i, v := range pix {
		out[i] = v & mask
	}
	return out
}

// rleAppend appends the RLE coding of data to dst and returns dst. The
// run scanners walk the data a word at a time (wide.go) but keep the
// exact token boundaries of the original byte-loop coder: zero runs are
// taken whole, and literal runs break at the first zero run of
// minZeroRun+ bytes.
func rleAppend(dst, data []byte) []byte {
	var scratch [binary.MaxVarintLen64]byte
	i := 0
	for i < len(data) {
		var j int
		if data[i] == 0 {
			j = zeroRunEnd(data, i)
			dst = append(dst, 0x00)
			n := binary.PutUvarint(scratch[:], uint64(j-i))
			dst = append(dst, scratch[:n]...)
			i = j
			continue
		}
		j = literalRunEnd(data, i)
		dst = append(dst, 0x01)
		n := binary.PutUvarint(scratch[:], uint64(j-i))
		dst = append(dst, scratch[:n]...)
		dst = append(dst, data[i:j]...)
		i = j
	}
	return dst
}

// rleDecode expands an RLE payload into exactly size bytes.
func rleDecode(payload []byte, size int) ([]byte, error) {
	out := make([]byte, size)
	if err := rleDecodeInto(out, payload); err != nil {
		return nil, err
	}
	return out, nil
}

// rleDecodeInto expands an RLE payload into exactly len(dst) bytes without
// allocating: zero runs clear the destination range in place (dst is reused
// across frames, so stale bytes must be overwritten) and literal runs copy.
//
// Hostile-input hardening: every run length is bounded against the space
// remaining in dst *before* the cursor advances or a byte is written, while
// still a uint64 — a crafted uvarint near 2^64 can neither drive a huge
// memset nor wrap to a negative int and bypass the slice bounds.
func rleDecodeInto(dst, payload []byte) error {
	o := 0
	i := 0
	for i < len(payload) {
		tok := payload[i]
		i++
		n, used := binary.Uvarint(payload[i:])
		if used <= 0 {
			return ErrCorrupt
		}
		i += used
		if n > uint64(len(dst)-o) {
			return ErrCorrupt
		}
		switch tok {
		case 0x00:
			clear(dst[o : o+int(n)])
			o += int(n)
		case 0x01:
			if n > uint64(len(payload)-i) {
				return ErrTruncated
			}
			copy(dst[o:], payload[i:i+int(n)])
			o += int(n)
			i += int(n)
		default:
			return ErrCorrupt
		}
	}
	if o != len(dst) {
		return ErrTruncated
	}
	return nil
}
