package codec

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func genFrame(w, h int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	pix := make([]byte, w*h*4)
	for i := range pix {
		pix[i] = byte(rng.Intn(256))
	}
	return pix
}

func quantized(pix []byte, shift uint) []byte {
	out := make([]byte, len(pix))
	mask := byte(0xFF) << shift
	for i, v := range pix {
		out[i] = v & mask
	}
	return out
}

func TestRoundTripLossless(t *testing.T) {
	enc := NewEncoder(16, 8, Options{QuantShift: 0})
	dec := NewDecoder()
	for i := int64(0); i < 5; i++ {
		pix := genFrame(16, 8, i)
		bs, err := enc.Encode(pix)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pix) {
			t.Fatalf("frame %d: lossless round trip mismatch", i)
		}
	}
}

func TestRoundTripQuantized(t *testing.T) {
	const shift = 3
	enc := NewEncoder(8, 8, Options{QuantShift: shift})
	dec := NewDecoder()
	for i := int64(0); i < 10; i++ {
		pix := genFrame(8, 8, i)
		bs, err := enc.Encode(pix)
		if err != nil {
			t.Fatal(err)
		}
		got, err := dec.Decode(bs)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, quantized(pix, shift)) {
			t.Fatalf("frame %d: quantized round trip mismatch", i)
		}
	}
}

func TestStaticSceneCompressesAway(t *testing.T) {
	enc := NewEncoder(64, 64, Options{QuantShift: 2})
	pix := genFrame(64, 64, 1)
	first, err := enc.Encode(pix)
	if err != nil {
		t.Fatal(err)
	}
	second, err := enc.Encode(pix) // identical frame -> all-zero delta
	if err != nil {
		t.Fatal(err)
	}
	if len(second) > len(first)/50 {
		t.Fatalf("static delta frame is %d bytes (key %d); expected tiny", len(second), len(first))
	}
}

// frameType returns the frame-type byte of a bitstream regardless of its
// version (v1 keeps it at byte 1, v2 at byte 2 behind the version byte).
func frameType(bs []byte) byte {
	if bs[0] == magic2 {
		return bs[2]
	}
	return bs[1]
}

func TestKeyframeInterval(t *testing.T) {
	enc := NewEncoder(4, 4, Options{KeyInterval: 3, QuantShift: 0})
	var types []byte
	for i := int64(0); i < 7; i++ {
		bs, err := enc.Encode(genFrame(4, 4, i))
		if err != nil {
			t.Fatal(err)
		}
		types = append(types, frameType(bs))
	}
	want := []byte{frameKey, frameDelta, frameDelta, frameKey, frameDelta, frameDelta, frameKey}
	if !bytes.Equal(types, want) {
		t.Fatalf("frame types = %v, want %v", types, want)
	}
}

func TestForceKeyframe(t *testing.T) {
	enc := NewEncoder(4, 4, Options{})
	if _, err := enc.Encode(genFrame(4, 4, 1)); err != nil {
		t.Fatal(err)
	}
	enc.ForceKeyframe()
	bs, err := enc.Encode(genFrame(4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	if frameType(bs) != frameKey {
		t.Fatal("ForceKeyframe did not produce a keyframe")
	}
}

func TestDecoderStartsMidStreamFails(t *testing.T) {
	enc := NewEncoder(4, 4, Options{})
	if _, err := enc.Encode(genFrame(4, 4, 1)); err != nil {
		t.Fatal(err)
	}
	delta, err := enc.Encode(genFrame(4, 4, 2))
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	if _, err := dec.Decode(delta); err != ErrNoKeyframe {
		t.Fatalf("err = %v, want ErrNoKeyframe", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	enc := NewEncoder(4, 4, Options{})
	bs, err := enc.Encode(genFrame(4, 4, 1))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		bs   []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", bs[:5], ErrTruncated},
		{"badmagic", append([]byte{0x00}, bs[1:]...), ErrBadMagic},
		{"truncated payload", bs[:len(bs)-3], nil}, // any error is fine
	}
	for _, c := range cases {
		dec := NewDecoder()
		_, err := dec.Decode(c.bs)
		if err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if c.want != nil && err != c.want {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestDimensionChangeRejected(t *testing.T) {
	encA := NewEncoder(4, 4, Options{})
	encB := NewEncoder(8, 8, Options{})
	dec := NewDecoder()
	bsA, _ := encA.Encode(genFrame(4, 4, 1))
	bsB, _ := encB.Encode(genFrame(8, 8, 2))
	if _, err := dec.Decode(bsA); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(bsB); err != ErrDimensions {
		t.Fatalf("err = %v, want ErrDimensions", err)
	}
}

func TestEncodeWrongSizeRejected(t *testing.T) {
	enc := NewEncoder(4, 4, Options{})
	if _, err := enc.Encode(make([]byte, 7)); err == nil {
		t.Fatal("expected size error")
	}
}

func TestStatsAccumulate(t *testing.T) {
	enc := NewEncoder(4, 4, Options{})
	total := 0
	for i := int64(0); i < 3; i++ {
		bs, err := enc.Encode(genFrame(4, 4, i))
		if err != nil {
			t.Fatal(err)
		}
		total += len(bs)
	}
	if enc.Frames() != 3 || enc.Bytes() != int64(total) {
		t.Fatalf("stats = %d frames / %d bytes, want 3 / %d", enc.Frames(), enc.Bytes(), total)
	}
}

// Property: RLE round-trips arbitrary byte strings.
func TestRLERoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		encoded := rleAppend(nil, data)
		decoded, err := rleDecode(encoded, len(data))
		if err != nil {
			return false
		}
		return bytes.Equal(decoded, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary input, and a full
// encode/decode round trip over random frame sequences reconstructs the
// quantized source.
func TestStreamRoundTripProperty(t *testing.T) {
	f := func(seeds []int64, shift uint8) bool {
		s := uint(shift % 8)
		enc := NewEncoder(8, 4, Options{QuantShift: s, KeyInterval: 4})
		dec := NewDecoder()
		if len(seeds) > 12 {
			seeds = seeds[:12]
		}
		for _, seed := range seeds {
			pix := genFrame(8, 4, seed)
			bs, err := enc.Encode(pix)
			if err != nil {
				return false
			}
			got, err := dec.Decode(bs)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, quantized(pix, s)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeFuzzNoPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dec := NewDecoder()
	for i := 0; i < 2000; i++ {
		n := rng.Intn(64)
		junk := make([]byte, n)
		for j := range junk {
			junk[j] = byte(rng.Intn(256))
		}
		// Must not panic; errors are expected.
		_, _ = dec.Decode(junk)
	}
}
