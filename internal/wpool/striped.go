package wpool

import (
	"sync"
	"sync/atomic"
)

// Striped is a fixed pool of workers, each owning one serial queue (a
// stripe). Items submitted to the same stripe are handled by the same worker
// in submission order — per-stripe ordering with no locking in the handler —
// while distinct stripes run concurrently. The hub's sender engine pins each
// viewer session to a stripe so per-connection writes stay ordered while the
// worker count stays O(GOMAXPROCS) instead of O(sessions).
//
// Each worker drains its whole queue in one swap and hands the batch to the
// handler in a single call: the batch is the pool's coalescing unit (the hub
// flushes every ready session in it back-to-back).
type Striped[T any] struct {
	workers []stripedQueue[T]
	handler func(worker int, batch []T)
	queued  atomic.Int64
	closed  atomic.Bool
	wg      sync.WaitGroup
}

type stripedQueue[T any] struct {
	mu       sync.Mutex
	q        []T
	spare    []T // recycled batch slice; nil while the worker is using it
	sleeping bool
	wake     chan struct{}
}

// NewStriped starts n workers (minimum 1) delivering batches to handler.
// handler runs on the worker goroutine; worker is the stripe index.
func NewStriped[T any](n int, handler func(worker int, batch []T)) *Striped[T] {
	if n < 1 {
		n = 1
	}
	p := &Striped[T]{
		workers: make([]stripedQueue[T], n),
		handler: handler,
	}
	for i := range p.workers {
		p.workers[i].wake = make(chan struct{}, 1)
	}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.run(i)
	}
	return p
}

// Workers returns the stripe count.
func (p *Striped[T]) Workers() int { return len(p.workers) }

// QueueLen returns the number of submitted items not yet handed to a
// handler; a live gauge of sender backlog.
func (p *Striped[T]) QueueLen() int { return int(p.queued.Load()) }

// Submit enqueues v on stripe (mod worker count) and wakes its worker. It
// returns false — dropping v — once Close has begun; items racing Close may
// also be dropped silently, so callers must not Submit work they cannot
// afford to lose after initiating shutdown.
func (p *Striped[T]) Submit(stripe int, v T) bool {
	if p.closed.Load() {
		return false
	}
	if stripe < 0 {
		stripe = -stripe
	}
	w := &p.workers[stripe%len(p.workers)]
	w.mu.Lock()
	w.q = append(w.q, v)
	wasSleeping := w.sleeping
	w.mu.Unlock()
	p.queued.Add(1)
	if wasSleeping {
		select {
		case w.wake <- struct{}{}:
		default:
		}
	}
	return true
}

// Close stops accepting submissions, lets every worker drain what is already
// queued, and waits for them to exit.
func (p *Striped[T]) Close() {
	if !p.closed.CompareAndSwap(false, true) {
		p.wg.Wait()
		return
	}
	for i := range p.workers {
		select {
		case p.workers[i].wake <- struct{}{}:
		default:
		}
	}
	p.wg.Wait()
}

func (p *Striped[T]) run(i int) {
	defer p.wg.Done()
	w := &p.workers[i]
	for {
		w.mu.Lock()
		for len(w.q) == 0 {
			if p.closed.Load() {
				w.mu.Unlock()
				return
			}
			w.sleeping = true
			w.mu.Unlock()
			<-w.wake
			w.mu.Lock()
			w.sleeping = false
		}
		batch := w.q
		if w.spare != nil {
			w.q = w.spare[:0]
			w.spare = nil
		} else {
			w.q = nil
		}
		w.mu.Unlock()
		p.queued.Add(-int64(len(batch)))
		p.handler(i, batch)
		// Recycle the batch slice (clearing stale references) so the
		// steady-state submit path stops allocating.
		clear(batch)
		w.mu.Lock()
		if w.spare == nil {
			w.spare = batch[:0]
		}
		w.mu.Unlock()
	}
}
