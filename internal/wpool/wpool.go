// Package wpool is the process-wide persistent worker pool shared by the
// tile-parallel frame codec and the experiment scheduler. It exists because
// both hot paths fan small index-addressed batches (tiles of a frame,
// cells of an experiment grid) across cores many times per second: spawning
// goroutines per batch would churn the scheduler and show up as allocation
// noise on paths the repo pins at zero allocs.
//
// The pool holds GOMAXPROCS-1 helper goroutines that park on a channel.
// A Map submission wakes up to limit-1 of them; the submitting goroutine
// always participates too, so completion never depends on helper
// availability — a fully busy pool just means the submitter does the work
// itself (and nested Maps degrade to inline loops instead of deadlocking).
//
// Determinism: Map(fn) runs fn(i) exactly once for every index, and callers
// write results to index-addressed slots, so the output of a Map is
// byte-identical whether zero or all helpers join. Which goroutine runs
// which index is the only thing that varies.
//
// The shared Default pool is created at package init, before any test or
// soak harness snapshots its goroutine-leak baseline, so its helpers are
// part of every baseline rather than a "leak".
package wpool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of persistent helper goroutines. The zero value is
// unusable; use New or Default.
type Pool struct {
	helpers int
	jobs    chan *job
}

// job is one Map submission: an atomic index dispenser plus join/close
// bookkeeping. Helpers that pick the job off the channel claim indices
// until none remain or a participant panicked.
type job struct {
	fn   func(int)
	n    int64
	next atomic.Int64

	// First panic wins; the others stop claiming indices.
	panicked atomic.Bool
	panicMu  sync.Mutex
	panicSet bool
	panicVal any

	// mu serializes helper join against submitter close, so wg.Wait cannot
	// miss a late joiner.
	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

// run claims and executes indices until the job is exhausted (or a
// participant panicked). A panic in fn is recorded and re-raised by the
// submitter after every participant has stopped.
func (j *job) run() {
	defer func() {
		if p := recover(); p != nil {
			j.panicMu.Lock()
			if !j.panicSet {
				j.panicSet, j.panicVal = true, p
			}
			j.panicMu.Unlock()
			j.panicked.Store(true)
		}
	}()
	for !j.panicked.Load() {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.fn(int(i))
	}
}

// New returns a pool that runs batches across up to workers goroutines
// (workers-1 persistent helpers plus the submitter). workers <= 1 yields a
// helperless pool whose Maps run inline. Close releases the helpers; the
// Default pool is never closed.
func New(workers int) *Pool {
	helpers := workers - 1
	if helpers < 0 {
		helpers = 0
	}
	p := &Pool{helpers: helpers, jobs: make(chan *job, helpers)}
	for i := 0; i < helpers; i++ {
		go p.helper()
	}
	return p
}

// helper parks on the job channel and joins whatever work arrives. A job
// that closed before the helper got to it is skipped — its submitter
// already finished it.
func (p *Pool) helper() {
	for j := range p.jobs {
		j.mu.Lock()
		if j.closed {
			j.mu.Unlock()
			continue
		}
		j.wg.Add(1)
		j.mu.Unlock()
		j.run()
		j.wg.Done()
	}
}

// Close stops the helpers once their queued jobs finish. Only for
// privately-owned pools (tests, benchmarks); Map must not be in flight.
func (p *Pool) Close() { close(p.jobs) }

// Workers returns the maximum parallelism of the pool (helpers + the
// submitting goroutine).
func (p *Pool) Workers() int { return p.helpers + 1 }

// Map runs fn(i) exactly once for every i in [0, n), across at most limit
// goroutines (0 = the pool's full width). It returns when all indices have
// completed; a panic in fn propagates to the caller after every
// participant has stopped. The limit caps how many helpers are woken for
// this call; because callers write to index-addressed slots, results are
// identical at any limit.
func (p *Pool) Map(limit, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	if limit <= 0 || limit > p.helpers+1 {
		limit = p.helpers + 1
	}
	if limit > n {
		limit = n
	}
	if limit == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	j := &job{fn: fn, n: int64(n)}
	p.submit(j, limit)
}

// submit wakes helpers for j, participates, then closes the job and waits
// for joined helpers before re-raising any panic.
func (p *Pool) submit(j *job, limit int) {
	notify := limit - 1
wake:
	for i := 0; i < notify; i++ {
		select {
		case p.jobs <- j:
		default:
			// Every helper is busy (or its wakeup slot already full); the
			// submitter will absorb the remaining work itself.
			break wake
		}
	}
	j.run()
	j.mu.Lock()
	j.closed = true
	j.mu.Unlock()
	j.wg.Wait()
	if j.panicSet {
		panic(j.panicVal)
	}
}

// Group is a reusable Map handle: it embeds the job bookkeeping so a caller
// that Maps repeatedly (an encoder, once per frame) allocates nothing in
// steady state. A Group serializes its own Maps — one at a time.
type Group struct {
	p *Pool
	j job
}

// NewGroup returns a Group over p (nil p = the Default pool).
func NewGroup(p *Pool) *Group {
	if p == nil {
		p = Default()
	}
	return &Group{p: p}
}

// Pool returns the pool the group submits to.
func (g *Group) Pool() *Pool { return g.p }

// Map is Pool.Map without the per-call job allocation. Not safe for
// concurrent calls on the same Group.
func (g *Group) Map(limit, n int, fn func(int)) {
	if n <= 0 {
		return
	}
	p := g.p
	if limit <= 0 || limit > p.helpers+1 {
		limit = p.helpers + 1
	}
	if limit > n {
		limit = n
	}
	if limit == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Reset under mu: a helper holding a stale pointer to this job (from a
	// previous Map's wakeup) serializes against the reset and then either
	// joins this run (fine — it is current again) or sees it closed.
	j := &g.j
	j.mu.Lock()
	j.fn, j.n = fn, int64(n)
	j.next.Store(0)
	j.panicked.Store(false)
	j.panicSet, j.panicVal = false, nil
	j.closed = false
	j.mu.Unlock()
	p.submit(j, limit)
}

// defaultPool is created at package init so every goroutine-leak baseline
// in the repo includes its helpers.
var defaultPool = New(runtime.GOMAXPROCS(0))

// Default returns the shared process-wide pool, sized to GOMAXPROCS at
// startup.
func Default() *Pool { return defaultPool }
