package wpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestStripedDeliversEverythingOnce(t *testing.T) {
	var mu sync.Mutex
	got := make(map[int]int)
	p := NewStriped[int](4, func(_ int, batch []int) {
		mu.Lock()
		for _, v := range batch {
			got[v]++
		}
		mu.Unlock()
	})
	const n = 10_000
	for i := 0; i < n; i++ {
		if !p.Submit(i, i) {
			t.Fatalf("Submit(%d) refused before Close", i)
		}
	}
	p.Close()
	if len(got) != n {
		t.Fatalf("delivered %d distinct items, want %d", len(got), n)
	}
	for v, c := range got {
		if c != 1 {
			t.Fatalf("item %d delivered %d times", v, c)
		}
	}
	if q := p.QueueLen(); q != 0 {
		t.Fatalf("QueueLen after Close = %d, want 0", q)
	}
}

// Items on one stripe arrive in submission order, in order across batches.
func TestStripedPreservesPerStripeOrder(t *testing.T) {
	var mu sync.Mutex
	var seen []int
	slow := make(chan struct{})
	p := NewStriped[int](2, func(wk int, batch []int) {
		if wk == 1 {
			<-slow // stall the other stripe; stripe 0 must be unaffected
			return
		}
		mu.Lock()
		seen = append(seen, batch...)
		mu.Unlock()
	})
	p.Submit(1, -1) // occupy stripe 1
	const n = 500
	for i := 0; i < n; i++ {
		p.Submit(0, i)
	}
	close(slow)
	p.Close()
	if len(seen) != n {
		t.Fatalf("stripe 0 saw %d items, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("stripe 0 order broken at %d: got %d", i, v)
		}
	}
}

func TestStripedSubmitAfterCloseDrops(t *testing.T) {
	var handled atomic.Int64
	p := NewStriped[int](2, func(_ int, batch []int) { handled.Add(int64(len(batch))) })
	p.Submit(0, 1)
	p.Close()
	if p.Submit(0, 2) {
		t.Fatal("Submit after Close returned true")
	}
	if got := handled.Load(); got != 1 {
		t.Fatalf("handled %d items, want 1", got)
	}
}

func TestStripedConcurrentSubmitters(t *testing.T) {
	var handled atomic.Int64
	p := NewStriped[int](3, func(_ int, batch []int) {
		handled.Add(int64(len(batch)))
	})
	var wg sync.WaitGroup
	const per, workers = 1000, 8
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Submit(g*per+i, i)
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	if got := handled.Load(); got != per*workers {
		t.Fatalf("handled %d items, want %d", got, per*workers)
	}
}

// The steady-state submit→batch→recycle cycle must settle to no allocations
// once the batch slices have grown.
func TestStripedBatchRecycling(t *testing.T) {
	var handled atomic.Int64
	p := NewStriped[int](1, func(_ int, batch []int) { handled.Add(int64(len(batch))) })
	defer p.Close()
	for i := 0; i < 100; i++ {
		p.Submit(0, i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for p.QueueLen() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("queue never drained")
		}
		time.Sleep(time.Millisecond)
	}
}
