package wpool

import (
	"sync/atomic"
	"testing"

	"odr/internal/testutil"
)

func TestMapRunsEveryIndexOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		counts := make([]int32, n)
		p.Map(0, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

func TestMapIndexAddressedResultsMatchSequential(t *testing.T) {
	p := New(8)
	defer p.Close()
	const n = 512
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	got := make([]int, n)
	p.Map(0, n, func(i int) { got[i] = i * i })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestMapConcurrencyBoundedByPoolWidth(t *testing.T) {
	p := New(3)
	defer p.Close()
	var cur, peak atomic.Int32
	p.Map(0, 64, func(i int) {
		c := cur.Add(1)
		for {
			m := peak.Load()
			if c <= m || peak.CompareAndSwap(m, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j * j // hold the slot briefly so overlap is observable
		}
		cur.Add(-1)
	})
	if got := peak.Load(); got > 3 {
		t.Fatalf("peak concurrency %d exceeds pool width 3", got)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	p := New(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.Map(0, 100, func(i int) {
		if i == 37 {
			panic("boom")
		}
	})
	t.Fatal("Map returned without panicking")
}

func TestNestedMapDoesNotDeadlock(t *testing.T) {
	p := New(2)
	defer p.Close()
	var total atomic.Int64
	p.Map(0, 8, func(i int) {
		p.Map(0, 8, func(j int) { total.Add(1) })
	})
	if total.Load() != 64 {
		t.Fatalf("nested maps ran %d inner calls, want 64", total.Load())
	}
}

func TestGroupReuse(t *testing.T) {
	p := New(4)
	defer p.Close()
	g := NewGroup(p)
	for round := 0; round < 50; round++ {
		counts := make([]int32, 33)
		g.Map(0, len(counts), func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("round %d: index %d ran %d times", round, i, c)
			}
		}
	}
}

var sink atomic.Int64

func groupTask(i int) { sink.Add(int64(i)) }

func TestGroupSteadyStateAllocs(t *testing.T) {
	p := New(4)
	defer p.Close()
	g := NewGroup(p)
	g.Map(0, 16, groupTask) // warm up
	allocs := testing.AllocsPerRun(100, func() { g.Map(0, 16, groupTask) })
	if allocs > 0 {
		t.Errorf("Group.Map allocates %.1f objects/call in steady state, want 0", allocs)
	}
}

func TestCloseReleasesHelpers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	p := New(8)
	p.Map(0, 100, func(i int) {})
	p.Close()
}

func TestDefaultPoolExists(t *testing.T) {
	var n atomic.Int32
	Default().Map(0, 10, func(i int) { n.Add(1) })
	if n.Load() != 10 {
		t.Fatalf("default pool ran %d of 10 indices", n.Load())
	}
}
