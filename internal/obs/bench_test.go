package obs_test

import (
	"testing"
	"time"

	"odr/internal/obs"
)

// BenchmarkTracerDisabled measures the disabled (nil-tracer) fast path,
// which is what every instrumented hot path pays when tracing is off.
func BenchmarkTracerDisabled(b *testing.B) {
	var tr *obs.Tracer
	for i := 0; i < b.N; i++ {
		tr.Span(obs.TrackRender, "render", uint64(i), 0, time.Millisecond)
	}
}

// BenchmarkTracerSpan measures the enabled recording path: one atomic add
// plus a slot write.
func BenchmarkTracerSpan(b *testing.B) {
	tr := obs.NewTracer(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Span(obs.TrackRender, "render", uint64(i), 0, time.Millisecond)
	}
}

// BenchmarkHistogramObserve measures the O(1) record path that replaces
// sort-heavy Dist on hot paths.
func BenchmarkHistogramObserve(b *testing.B) {
	r := obs.NewRegistry()
	h := r.Histogram("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i&1023) + 1)
	}
}

// BenchmarkHistogramObserveDisabled measures the nil-histogram fast path.
func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var r *obs.Registry
	h := r.Histogram("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
