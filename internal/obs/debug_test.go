package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"odr/internal/obs"
)

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, body
}

func TestServeDebugEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("frames_rendered").Add(42)
	d, err := obs.ServeDebug("127.0.0.1:0", func() any { return reg.Snapshot() })
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	base := "http://" + d.Addr()

	code, body := get(t, base+"/debug/odr")
	if code != http.StatusOK {
		t.Fatalf("/debug/odr status = %d", code)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/odr is not JSON: %v\n%s", err, body)
	}
	if snap["frames_rendered"] != float64(42) {
		t.Fatalf("/debug/odr snapshot = %v", snap)
	}

	if code, _ := get(t, base+"/debug/pprof/"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status = %d", code)
	}
	if code, _ := get(t, base+"/debug/pprof/goroutine?debug=1"); code != http.StatusOK {
		t.Fatalf("/debug/pprof/goroutine status = %d", code)
	}
	code, body = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
}

func TestServeDebugNilSnapshot(t *testing.T) {
	d, err := obs.ServeDebug("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	code, body := get(t, "http://"+d.Addr()+"/debug/odr")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var v map[string]any
	if err := json.Unmarshal(body, &v); err != nil || len(v) != 0 {
		t.Fatalf("body = %s", body)
	}
}
