package scrape

import (
	"bytes"
	"testing"
)

// FuzzParse drives arbitrary documents through the parser. Inputs that
// parse must canonicalize to a fixed point: Write -> Parse -> Write is
// byte-identical — the property the soak harness and odrtop rely on when
// they re-read what a server (or a previous scrape) emitted.
func FuzzParse(f *testing.F) {
	f.Add([]byte(doc))
	f.Add([]byte("m 1\n"))
	f.Add([]byte("# HELP m help text\n# TYPE m counter\nm 1 123\n"))
	f.Add([]byte("m{a=\"x\\\\y\\\"z\\nw\"} +Inf\n"))
	f.Add([]byte("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 0\nh_sum 0\nh_count 0\n"))
	f.Add([]byte("m{ a = \"1\" , } 2.5e-3 -7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseBytes(data)
		if err != nil {
			return // rejected input: nothing to round-trip
		}
		var once bytes.Buffer
		if err := s.Write(&once); err != nil {
			t.Fatalf("Write of parsed document failed: %v", err)
		}
		s2, err := ParseBytes(once.Bytes())
		if err != nil {
			t.Fatalf("re-parsing our own output %q: %v", once.String(), err)
		}
		var twice bytes.Buffer
		if err := s2.Write(&twice); err != nil {
			t.Fatalf("second Write failed: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("canonical form not a fixed point:\nin:    %q\nonce:  %q\ntwice: %q",
				data, once.String(), twice.String())
		}
	})
}
