// Package scrape parses the Prometheus text exposition format back into
// typed samples — the read side of internal/obs's /metrics surface. It
// exists so the soak harness (cmd/odrsoak) can assert metric-predicate
// invariants against a live server, cmd/odrtop can render dashboards from
// any /metrics URL, and tests can differential-check the JSON and
// Prometheus views of one registry.
//
// Re-encoding is canonical and matches internal/obs's encoder exactly:
// for any document produced by obs.WritePrometheus, Parse followed by
// Write is byte-identical (pinned by tests and a fuzz target).
package scrape

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"odr/internal/obs"
)

// Label is one name="value" pair.
type Label struct {
	Name  string
	Value string
}

// Sample is one exposition line: a (possibly suffixed) sample name, its
// label set in document order, and the value. Histogram families appear
// as their constituent _bucket/_sum/_count samples.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
	// Timestamp (milliseconds) when the line carried one.
	Timestamp    int64
	HasTimestamp bool
}

// Label returns the value of the named label ("" when absent).
func (s *Sample) Label(name string) string {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// Family groups the samples of one metric family, in document order.
type Family struct {
	Name    string
	Help    string
	Type    string // counter, gauge, histogram, summary, untyped
	hasType bool
	hasHelp bool
	Samples []Sample
}

// Scrape is one parsed exposition document.
type Scrape struct {
	Families []Family // document order
	byName   map[string]int
	types    map[string]string // family name -> final declared TYPE
}

// familyFor strips a histogram/summary sample suffix to find the family a
// sample belongs to. Attribution consults the document's final TYPE
// declarations (collected in a first pass), not the families declared so
// far — so it cannot depend on whether a TYPE line precedes or follows its
// samples, and canonical re-encoding is a true fixed point.
func (s *Scrape) familyFor(sample string) string {
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sample, suffix)
		if !ok {
			continue
		}
		if t := s.types[base]; t == "histogram" || t == "summary" {
			return base
		}
	}
	return sample
}

// family returns (creating if needed) the family entry for name.
func (s *Scrape) family(name string) *Family {
	if i, ok := s.byName[name]; ok {
		return &s.Families[i]
	}
	s.Families = append(s.Families, Family{Name: name, Type: "untyped"})
	s.byName[name] = len(s.Families) - 1
	return &s.Families[len(s.Families)-1]
}

// Parse reads one exposition document.
func Parse(r io.Reader) (*Scrape, error) {
	s := &Scrape{byName: make(map[string]int), types: make(map[string]string)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("scrape: %w", err)
	}
	// Pass 1: record the final TYPE of every family so sample attribution
	// (familyFor) is independent of declaration order.
	for _, line := range lines {
		rest, ok := strings.CutPrefix(line, "#")
		if !ok {
			continue
		}
		rest = strings.TrimPrefix(rest, " ")
		if kw, rest, _ := strings.Cut(rest, " "); kw == "TYPE" {
			if name, typ, _ := strings.Cut(rest, " "); name != "" {
				s.types[name] = typ
			}
		}
	}
	// Pass 2: build families and samples in document order.
	for lineNo, line := range lines {
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := s.parseComment(line); err != nil {
				return nil, fmt.Errorf("scrape: line %d: %w", lineNo+1, err)
			}
			continue
		}
		if err := s.parseSample(line); err != nil {
			return nil, fmt.Errorf("scrape: line %d: %w", lineNo+1, err)
		}
	}
	return s, nil
}

// ParseBytes parses an in-memory document.
func ParseBytes(b []byte) (*Scrape, error) { return Parse(strings.NewReader(string(b))) }

// parseComment handles # HELP and # TYPE; other comments are ignored.
func (s *Scrape) parseComment(line string) error {
	rest := strings.TrimPrefix(line, "#")
	rest = strings.TrimPrefix(rest, " ")
	keyword, rest, _ := strings.Cut(rest, " ")
	switch keyword {
	case "HELP":
		name, help, _ := strings.Cut(rest, " ")
		if name == "" {
			return fmt.Errorf("HELP without a metric name")
		}
		f := s.family(name)
		f.Help, f.hasHelp = help, true
	case "TYPE":
		name, typ, _ := strings.Cut(rest, " ")
		if name == "" {
			return fmt.Errorf("TYPE without a metric name")
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown TYPE %q for %q", typ, name)
		}
		f := s.family(name)
		f.Type, f.hasType = typ, true
	}
	return nil
}

// validSampleName reports whether name is a legal metric name.
func validSampleName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// parseSample handles one sample line: name[{labels}] value [timestamp].
func (s *Scrape) parseSample(line string) error {
	name := line
	rest := ""
	if i := strings.IndexAny(line, "{ "); i >= 0 {
		name, rest = line[:i], line[i:]
	}
	if !validSampleName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	var labels []Label
	if strings.HasPrefix(rest, "{") {
		var err error
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return fmt.Errorf("sample %q: %w", name, err)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("sample %q: want 'value [timestamp]', got %q", name, strings.TrimSpace(rest))
	}
	value, err := parseValue(fields[0])
	if err != nil {
		return fmt.Errorf("sample %q: bad value %q", name, fields[0])
	}
	sample := Sample{Name: name, Labels: labels, Value: value}
	if len(fields) == 2 {
		ts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return fmt.Errorf("sample %q: bad timestamp %q", name, fields[1])
		}
		sample.Timestamp, sample.HasTimestamp = ts, true
	}
	f := s.family(s.familyFor(name))
	f.Samples = append(f.Samples, sample)
	return nil
}

// parseValue accepts Go float syntax plus the Prometheus Inf spellings.
func parseValue(tok string) (float64, error) {
	switch tok {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN", "nan":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(tok, 64)
}

// parseLabels consumes `name="value",...}` and returns the remainder of
// the line after the closing brace.
func parseLabels(rest string) ([]Label, string, error) {
	var labels []Label
	for {
		rest = strings.TrimLeft(rest, " \t")
		if rest == "" {
			return nil, "", fmt.Errorf("unterminated label block")
		}
		if rest[0] == '}' {
			return labels, rest[1:], nil
		}
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(rest[:eq])
		if name == "" || !validSampleName(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		rest = strings.TrimLeft(rest[eq+1:], " \t")
		if !strings.HasPrefix(rest, `"`) {
			return nil, "", fmt.Errorf("label %q value not quoted", name)
		}
		value, remainder, err := parseQuoted(rest[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", name, err)
		}
		labels = append(labels, Label{Name: name, Value: value})
		rest = strings.TrimLeft(remainder, " \t")
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote.
func parseQuoted(rest string) (string, string, error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				// Unknown escape: keep both bytes, like Prometheus does.
				b.WriteByte('\\')
				b.WriteByte(rest[i])
			}
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// Write re-encodes the document canonically: families and samples in
// stored order, values through the same formatter as internal/obs's
// encoder. Parse(obs.WritePrometheus output) -> Write is byte-identical.
func (s *Scrape) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := range s.Families {
		f := &s.Families[i]
		if f.hasHelp {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, f.Help)
		}
		if f.hasType {
			fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		}
		for _, sm := range f.Samples {
			bw.WriteString(sm.Name)
			if len(sm.Labels) > 0 {
				bw.WriteByte('{')
				for j, l := range sm.Labels {
					if j > 0 {
						bw.WriteByte(',')
					}
					bw.WriteString(l.Name)
					bw.WriteString(`="`)
					bw.WriteString(obs.EscapeLabelValue(l.Value))
					bw.WriteByte('"')
				}
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(obs.FormatValue(sm.Value))
			if sm.HasTimestamp {
				bw.WriteByte(' ')
				bw.WriteString(strconv.FormatInt(sm.Timestamp, 10))
			}
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// Family returns the named family, or nil.
func (s *Scrape) Family(name string) *Family {
	if i, ok := s.byName[name]; ok {
		return &s.Families[i]
	}
	return nil
}

// matches reports whether the sample carries every label in want.
func matches(sm *Sample, want []Label) bool {
	for _, l := range want {
		if sm.Label(l.Name) != l.Value {
			return false
		}
	}
	return true
}

// Value returns the value of the unlabeled (or first matching) sample
// named name. For labeled lookups pass the wanted labels.
func (s *Scrape) Value(name string, want ...Label) (float64, bool) {
	f := s.Family(s.familyFor(name))
	if f == nil {
		return 0, false
	}
	for i := range f.Samples {
		if f.Samples[i].Name == name && matches(&f.Samples[i], want) {
			return f.Samples[i].Value, true
		}
	}
	return 0, false
}

// Number is Value with a 0 default — for predicate arithmetic where a
// missing series should read as zero.
func (s *Scrape) Number(name string, want ...Label) float64 {
	v, _ := s.Value(name, want...)
	return v
}

// Series returns every sample named exactly name (across label sets).
func (s *Scrape) Series(name string) []Sample {
	f := s.Family(s.familyFor(name))
	if f == nil {
		return nil
	}
	var out []Sample
	for _, sm := range f.Samples {
		if sm.Name == name {
			out = append(out, sm)
		}
	}
	return out
}

// SeriesCount returns how many label sets the named sample has — the
// cardinality probe the soak invariants use.
func (s *Scrape) SeriesCount(name string) int { return len(s.Series(name)) }

// LabelValues returns the distinct values of the named label across the
// samples named name, sorted.
func (s *Scrape) LabelValues(name, label string) []string {
	seen := make(map[string]bool)
	for _, sm := range s.Series(name) {
		if v := sm.Label(label); v != "" && !seen[v] {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Quantile estimates the q-quantile of the histogram family name from its
// cumulative _bucket samples (optionally restricted to the label set
// want), using the same geometric-midpoint rule as obs.Histogram — so a
// scraped estimate agrees with the server's own.
func (s *Scrape) Quantile(name string, q float64, want ...Label) (float64, bool) {
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, sm := range s.Series(name + "_bucket") {
		if !matches(&sm, want) {
			continue
		}
		leStr := sm.Label("le")
		le, err := parseValue(leStr)
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, cum: sm.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum
	if total == 0 {
		return 0, true
	}
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	prev := 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if math.IsInf(b.le, 1) || b.le <= 0 {
				return math.Max(prev, 0), true
			}
			// Bucket spans (prev, le]; return its geometric midpoint like
			// obs.Histogram.Quantile (log2 buckets, sqrt2 midpoint).
			lo := math.Max(prev, 1)
			return math.Min(lo*math.Sqrt2, b.le), true
		}
		prev = b.le
	}
	return prev, true
}
