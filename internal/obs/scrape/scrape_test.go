package scrape

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"odr/internal/obs"
)

const doc = `# HELP odr_frames_encoded_total Frames encoded.
# TYPE odr_frames_encoded_total counter
odr_frames_encoded_total 894
# TYPE odr_session_fps gauge
odr_session_fps{session="s1"} 59.8
odr_session_fps{session="s2"} 30
# TYPE odr_encode_us histogram
odr_encode_us_bucket{le="1"} 1
odr_encode_us_bucket{le="255"} 5
odr_encode_us_bucket{le="+Inf"} 6
odr_encode_us_sum 1000
odr_encode_us_count 6
`

func mustParse(t *testing.T, s string) *Scrape {
	t.Helper()
	p, err := ParseBytes([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseBasics(t *testing.T) {
	s := mustParse(t, doc)
	if v, ok := s.Value("odr_frames_encoded_total"); !ok || v != 894 {
		t.Fatalf("counter = %v,%v", v, ok)
	}
	f := s.Family("odr_frames_encoded_total")
	if f == nil || f.Type != "counter" || f.Help != "Frames encoded." {
		t.Fatalf("family = %+v", f)
	}
	if v := s.Number("odr_session_fps", Label{Name: "session", Value: "s2"}); v != 30 {
		t.Fatalf("labeled gauge = %v", v)
	}
	if v := s.Number("odr_session_fps", Label{Name: "session", Value: "nope"}); v != 0 {
		t.Fatalf("missing series should read 0, got %v", v)
	}
	if got := s.SeriesCount("odr_session_fps"); got != 2 {
		t.Fatalf("SeriesCount = %d", got)
	}
	if got := s.LabelValues("odr_session_fps", "session"); len(got) != 2 || got[0] != "s1" || got[1] != "s2" {
		t.Fatalf("LabelValues = %v", got)
	}
}

// TestHistogramSamplesJoinFamily pins that _bucket/_sum/_count samples land
// in their histogram family, not in families of their own.
func TestHistogramSamplesJoinFamily(t *testing.T) {
	s := mustParse(t, doc)
	f := s.Family("odr_encode_us")
	if f == nil || f.Type != "histogram" {
		t.Fatalf("family = %+v", f)
	}
	if len(f.Samples) != 5 {
		t.Fatalf("samples = %d, want 5 (_bucket x3, _sum, _count)", len(f.Samples))
	}
	if s.Family("odr_encode_us_bucket") != nil {
		t.Fatal("_bucket must not become its own family")
	}
	if v := s.Number("odr_encode_us_count"); v != 6 {
		t.Fatalf("count sample = %v", v)
	}
}

func TestParseEscapesAndTimestamps(t *testing.T) {
	s := mustParse(t, `m{l="a\"b\\c\nd"} 1 1700000000000`+"\n")
	sm := s.Series("m")
	if len(sm) != 1 {
		t.Fatalf("series = %v", sm)
	}
	if got := sm[0].Label("l"); got != "a\"b\\c\nd" {
		t.Fatalf("unescaped label = %q", got)
	}
	if !sm[0].HasTimestamp || sm[0].Timestamp != 1700000000000 {
		t.Fatalf("timestamp = %+v", sm[0])
	}
}

func TestParseSpecialValues(t *testing.T) {
	s := mustParse(t, "a +Inf\nb -Inf\nc NaN\nd 2.5e3\n")
	if v := s.Number("a"); !math.IsInf(v, 1) {
		t.Fatalf("a = %v", v)
	}
	if v := s.Number("b"); !math.IsInf(v, -1) {
		t.Fatalf("b = %v", v)
	}
	if v, _ := s.Value("c"); !math.IsNaN(v) {
		t.Fatalf("c = %v", v)
	}
	if v := s.Number("d"); v != 2500 {
		t.Fatalf("d = %v", v)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"1leading_digit 3\n",
		"name{unterminated=\"x\" 3\n",
		"name{l=unquoted} 3\n",
		"name{l=\"dangling\\\n",
		"name notanumber\n",
		"name 1 2 3\n",
		"# TYPE m sometype\n",
	} {
		if _, err := ParseBytes([]byte(bad)); err == nil {
			t.Errorf("ParseBytes(%q) accepted garbage", bad)
		}
	}
}

// TestQuantileMatchesServer pins that the scraped-quantile estimator
// reproduces obs.Histogram.Quantile from the exported buckets (modulo the
// min/max clamp the server applies with information the scrape lacks).
func TestQuantileMatchesServer(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("odr_q_us")
	for _, v := range []int64{100, 200, 300, 1000, 5000, 9000} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := obs.WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	s := mustParse(t, b.String())
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got, ok := s.Quantile("odr_q_us", q)
		if !ok {
			t.Fatalf("Quantile(%v) missing", q)
		}
		want := h.Quantile(q)
		// Same bucket, same geometric midpoint — but the server clamps to
		// the true min/max, which the exposition doesn't carry. Both land
		// in the same log2 bucket, so they agree within a factor of 2.
		if got < want/2 || got > want*2 {
			t.Errorf("Quantile(%v) = %v, server says %v", q, got, want)
		}
	}
	if _, ok := s.Quantile("odr_missing_us", 0.5); ok {
		t.Error("Quantile of a missing family should report !ok")
	}
}

// TestRoundTripByteIdentical is the core contract: for any document the
// obs encoder produces, Parse followed by Write reproduces it exactly.
func TestRoundTripByteIdentical(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("odr_frames_encoded_total").Add(894)
	r.SetHelp("odr_frames_encoded_total", "Frames encoded.")
	r.Gauge("odr_dirty_tile_ratio").Set(0.375)
	h := r.Histogram("odr_encode_us")
	for _, v := range []int64{0, 1, 3, 900, 4096, 1 << 40} {
		h.Observe(v)
	}
	r.CounterVec("odr_sessions_started_total", "Sessions.", "policy", "codec_version").With2("ODR", "2").Add(3)
	r.GaugeVec("odr_session_fps", "FPS.", "session").With1(`we"ird\la
bel`).Set(59.8)
	r.HistogramVec("odr_tx_us", "Send.", "session").With1("s1").Observe(250)

	var first bytes.Buffer
	if err := obs.WritePrometheus(&first, r); err != nil {
		t.Fatal(err)
	}
	s, err := ParseBytes(first.Bytes())
	if err != nil {
		t.Fatalf("parsing our own exposition: %v", err)
	}
	var second bytes.Buffer
	if err := s.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip not byte-identical:\n--- encoded ---\n%s\n--- re-encoded ---\n%s",
			first.String(), second.String())
	}
}

// TestWriteIsFixedPoint pins idempotence for foreign documents too: once
// canonicalized by Write, another Parse+Write changes nothing.
func TestWriteIsFixedPoint(t *testing.T) {
	// Deliberately non-canonical spacing and an ignored comment.
	in := "# a freeform comment\nm{ a = \"1\" , b = \"2\" } 3.50 7\nn 2\n"
	s := mustParse(t, in)
	var once bytes.Buffer
	if err := s.Write(&once); err != nil {
		t.Fatal(err)
	}
	s2 := mustParse(t, once.String())
	var twice bytes.Buffer
	if err := s2.Write(&twice); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(once.Bytes(), twice.Bytes()) {
		t.Fatalf("Write not a fixed point:\n%q\nvs\n%q", once.String(), twice.String())
	}
	if !strings.Contains(once.String(), `m{a="1",b="2"} 3.5 7`) {
		t.Fatalf("canonicalization unexpected: %q", once.String())
	}
}

// TestDifferentialJSONVsProm pins that the two export surfaces of one
// registry agree: every canonical instrument in the JSON snapshot appears
// in the Prometheus exposition with the same value (histograms compare
// their count and sum; alias keys are JSON-only by design).
func TestDifferentialJSONVsProm(t *testing.T) {
	r := obs.NewRegistry()
	r.Alias("frames_encoded", "odr_frames_encoded_total")
	r.Counter("frames_encoded").Add(894) // via the legacy alias
	r.Gauge("odr_dirty_tile_ratio").Set(0.375)
	h := r.Histogram("odr_encode_us")
	for _, v := range []int64{3, 700, 900, 4096} {
		h.Observe(v)
	}
	r.CounterVec("odr_sessions_started_total", "s", "policy", "codec_version").With2("ODR", "2").Add(3)
	r.GaugeVec("odr_session_fps", "f", "session").With1("s1").Set(59.8)
	r.HistogramVec("odr_tx_us", "t", "session").With1("s1").Observe(250)

	var b bytes.Buffer
	if err := obs.WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	s := mustParse(t, b.String())

	// Index every scraped sample under the same name{l="v"} key shape the
	// JSON snapshot uses for vector series.
	scraped := make(map[string]float64)
	for _, f := range s.Families {
		for _, sm := range f.Samples {
			key := sm.Name
			if len(sm.Labels) > 0 {
				key += "{"
				for i, l := range sm.Labels {
					if i > 0 {
						key += ","
					}
					key += l.Name + `="` + obs.EscapeLabelValue(l.Value) + `"`
				}
				key += "}"
			}
			scraped[key] = sm.Value
		}
	}

	aliases := r.AliasNames()
	snap := r.Snapshot()
	checked := 0
	for name, v := range snap {
		if _, isAlias := aliases[name]; isAlias {
			if _, leaked := scraped[name]; leaked {
				t.Errorf("alias %q leaked onto the Prometheus surface", name)
			}
			continue
		}
		switch v := v.(type) {
		case int64:
			if got, ok := scraped[name]; !ok || got != float64(v) {
				t.Errorf("%s: JSON %d vs prom %v (present=%v)", name, v, got, ok)
			}
		case float64:
			if got, ok := scraped[name]; !ok || got != v {
				t.Errorf("%s: JSON %v vs prom %v (present=%v)", name, v, got, ok)
			}
		case obs.HistogramSnapshot:
			// name may itself be a series key name{labels}: splice the
			// histogram suffix onto the bare name.
			base, labels := name, ""
			if i := strings.IndexByte(name, '{'); i >= 0 {
				base, labels = name[:i], name[i:]
			}
			if got := scraped[base+"_count"+labels]; got != float64(v.Count) {
				t.Errorf("%s count: JSON %d vs prom %v", name, v.Count, got)
			}
			if got := scraped[base+"_sum"+labels]; got != float64(v.Sum) {
				t.Errorf("%s sum: JSON %d vs prom %v", name, v.Sum, got)
			}
		default:
			t.Errorf("%s: unexpected snapshot type %T", name, v)
		}
		checked++
	}
	if checked < 6 {
		t.Fatalf("differential covered only %d instruments", checked)
	}
}
