package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"odr/internal/obs"
)

func TestTracerSpanAndInstant(t *testing.T) {
	tr := obs.NewTracer(16)
	tr.Span(obs.TrackRender, "render", 1, 10*time.Millisecond, 15*time.Millisecond)
	tr.Instant(obs.TrackRender, "priority-frame", 2, 20*time.Millisecond)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "render" || evs[0].Phase != obs.PhaseSpan {
		t.Fatalf("first event = %+v, want render span", evs[0])
	}
	if evs[0].Dur != 5*time.Millisecond {
		t.Fatalf("span dur = %v, want 5ms", evs[0].Dur)
	}
	if evs[1].Name != "priority-frame" || evs[1].Phase != obs.PhaseInstant || evs[1].Seq != 2 {
		t.Fatalf("second event = %+v, want priority instant seq 2", evs[1])
	}
}

func TestTracerNilIsNoop(t *testing.T) {
	var tr *obs.Tracer
	tr.Span(obs.TrackRender, "render", 1, 0, time.Millisecond)
	tr.Instant(obs.TrackInput, "input", 0, 0)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v, want nil", got)
	}
	if tr.Recorded() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer reports recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil tracer export: %v", err)
	}
}

func TestTracerWrapKeepsNewest(t *testing.T) {
	tr := obs.NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Instant(obs.TrackClient, "display", uint64(i+1), time.Duration(i)*time.Millisecond)
	}
	if tr.Recorded() != 10 {
		t.Fatalf("recorded = %d, want 10", tr.Recorded())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(7 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (newest retained)", i, ev.Seq, want)
		}
	}
}

func TestTracerEventsSortedByTime(t *testing.T) {
	tr := obs.NewTracer(16)
	tr.Instant(obs.TrackClient, "late", 1, 30*time.Millisecond)
	tr.Instant(obs.TrackRender, "early", 2, 10*time.Millisecond)
	tr.Instant(obs.TrackProxy, "middle", 3, 20*time.Millisecond)
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order: %v", evs)
		}
	}
	if evs[0].Name != "early" || evs[2].Name != "late" {
		t.Fatalf("unexpected order: %v", evs)
	}
}

func TestTracerConcurrentWriters(t *testing.T) {
	tr := obs.NewTracer(1 << 12)
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Span(obs.Track(w%3), "span", uint64(i), time.Duration(i), time.Duration(i+1))
			}
		}(w)
	}
	wg.Wait()
	if tr.Recorded() != writers*perWriter {
		t.Fatalf("recorded = %d, want %d", tr.Recorded(), writers*perWriter)
	}
	if got := len(tr.Events()); got != writers*perWriter {
		t.Fatalf("retained = %d, want %d", got, writers*perWriter)
	}
}

// TestWriteChromeTrace parses the JSON export the way a trace viewer
// would and checks the event shapes.
func TestWriteChromeTrace(t *testing.T) {
	tr := obs.NewTracer(64)
	tr.Span(obs.TrackRender, "render", 7, 2*time.Millisecond, 5*time.Millisecond)
	tr.Instant(obs.TrackRender, "mulbuf-drop", 8, 6*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var sawSpan, sawInstant bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "render" && ev.Ph == "X":
			sawSpan = true
			if ev.TS != 2000 || ev.Dur != 3000 {
				t.Fatalf("render span ts=%v dur=%v, want 2000/3000 µs", ev.TS, ev.Dur)
			}
			if ev.Args["seq"] != float64(7) {
				t.Fatalf("render span args = %v", ev.Args)
			}
		case ev.Name == "mulbuf-drop" && ev.Ph == "i":
			sawInstant = true
		}
	}
	if !sawSpan || !sawInstant {
		t.Fatalf("missing span (%v) or instant (%v) in export", sawSpan, sawInstant)
	}
}

func TestTracerWriteCSV(t *testing.T) {
	tr := obs.NewTracer(16)
	tr.Span(obs.TrackProxy, "encode", 3, time.Millisecond, 2*time.Millisecond)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d, want header + 1 row:\n%s", len(lines), buf.String())
	}
	if lines[0] != "track,phase,name,seq,ts_ms,dur_ms" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "proxy,span,encode,3,1,1" {
		t.Fatalf("row = %q", lines[1])
	}
}
