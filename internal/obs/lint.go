package obs

import (
	"fmt"
	"regexp"
	"strings"
)

// Naming convention: odr_<subsystem>_<noun>_<unit> for product metrics,
// obs_ for the telemetry system's self-metrics. Counters end in _total;
// histograms end in an explicit unit. go_-prefixed runtime families are
// appended at scrape time and never live in a registry.
var (
	nameRE  = regexp.MustCompile(`^(odr|obs)_[a-z0-9]+(_[a-z0-9]+)*$`)
	labelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// histUnits are the unit suffixes a histogram name must end with.
var histUnits = []string{"_us", "_ms", "_seconds", "_bytes", "_joules", "_ratio"}

// Lint checks every family registered in r against the naming
// convention: names match the odr_/obs_ regex, counters end in _total,
// histograms end in a unit suffix, label names are well-formed, and no
// two families share a help string (copy-paste drift makes /metrics
// lie). Aliases are exempt — they exist precisely to keep legacy names
// alive for one release. It returns one error per violation.
func Lint(r *Registry) []error {
	if r == nil {
		return nil
	}
	var errs []error
	bad := func(format string, args ...any) { errs = append(errs, fmt.Errorf(format, args...)) }
	checkName := func(name, kind string) {
		if !nameRE.MatchString(name) {
			bad("%s %q does not match convention %s", kind, name, nameRE)
		}
		if (kind == "counter" || kind == "counter vector") && !strings.HasSuffix(name, "_total") {
			bad("%s %q must end in _total", kind, name)
		}
		if kind == "histogram" || kind == "histogram vector" {
			ok := false
			for _, u := range histUnits {
				if strings.HasSuffix(name, u) {
					ok = true
					break
				}
			}
			if !ok {
				bad("%s %q must end in a unit suffix (one of %v)", kind, name, histUnits)
			}
		}
	}
	checkLabels := func(name string, labels []string) {
		for _, l := range labels {
			if !labelRE.MatchString(l) {
				bad("family %q label %q does not match %s", name, l, labelRE)
			}
		}
	}

	r.mu.Lock()
	helpOwner := make(map[string]string)
	names := make(map[string]string)
	add := func(name, kind string) {
		checkName(name, kind)
		names[name] = kind
	}
	for name := range r.counters {
		add(name, "counter")
	}
	for name := range r.gauges {
		add(name, "gauge")
	}
	for name := range r.histograms {
		add(name, "histogram")
	}
	for name, v := range r.counterVecs {
		add(name, "counter vector")
		checkLabels(name, v.Labels())
	}
	for name, v := range r.gaugeVecs {
		add(name, "gauge vector")
		checkLabels(name, v.Labels())
	}
	for name, v := range r.histVecs {
		add(name, "histogram vector")
		checkLabels(name, v.Labels())
	}
	for name, help := range r.help {
		if help == "" {
			continue
		}
		if _, live := names[name]; !live {
			continue
		}
		if prev, dup := helpOwner[help]; dup {
			first, second := prev, name
			if second < first {
				first, second = second, first
			}
			bad("families %q and %q share the help string %q", first, second, help)
		} else {
			helpOwner[help] = name
		}
	}
	for legacy, canon := range r.aliases {
		if legacy == canon {
			bad("alias %q points at itself", legacy)
		}
		if _, isAlias := r.aliases[canon]; isAlias {
			bad("alias %q chains to alias %q", legacy, canon)
		}
	}
	r.mu.Unlock()
	return errs
}

// MustLint panics on the first lint violation — the startup guard wired
// into odrserver so a misnamed instrument never ships a release.
func MustLint(r *Registry) {
	if errs := Lint(r); len(errs) > 0 {
		panic(fmt.Sprintf("obs: registry lint failed: %v", errs[0]))
	}
}
