package obs

import (
	"bytes"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
)

// populated builds a registry exercising every instrument kind, including
// labeled vectors and a label value that needs escaping.
func populated() *Registry {
	r := NewRegistry()
	r.Counter("odr_frames_encoded_total").Add(894)
	r.SetHelp("odr_frames_encoded_total", "Frames encoded.")
	r.Gauge("odr_dirty_tile_ratio").Set(0.375)
	h := r.Histogram("odr_encode_us")
	for _, v := range []int64{0, 1, 2, 3, 700, 900, 4096} {
		h.Observe(v)
	}
	r.CounterVec("odr_sessions_started_total", "Sessions by policy.", "policy", "codec_version").
		With2("ODR", "2").Add(3)
	r.GaugeVec("odr_session_fps", "Delivered FPS.", "session").With1("s1").Set(59.8)
	r.GaugeVec("odr_session_fps", "", "session").With1(`we"ird\la
bel`).Set(1)
	r.HistogramVec("odr_tx_us", "Send time.", "session").With1("s1").Observe(250)
	return r
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:           "0",
		894:         "894",
		-3:          "-3",
		0.375:       "0.375",
		1 << 53:     "9007199254740992",
		math.Inf(1): "+Inf",
	}
	for in, want := range cases {
		if got := FormatValue(in); got != want {
			t.Errorf("FormatValue(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatValue(math.NaN()); got != "NaN" {
		t.Errorf("FormatValue(NaN) = %q", got)
	}
}

func TestWritePrometheusShape(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b, populated()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE odr_frames_encoded_total counter",
		"# HELP odr_frames_encoded_total Frames encoded.",
		"odr_frames_encoded_total 894",
		"odr_dirty_tile_ratio 0.375",
		"# TYPE odr_encode_us histogram",
		`odr_encode_us_bucket{le="0"} 1`,
		`odr_encode_us_bucket{le="+Inf"} 7`,
		"odr_encode_us_sum 5702",
		"odr_encode_us_count 7",
		`odr_sessions_started_total{policy="ODR",codec_version="2"} 3`,
		`odr_session_fps{session="s1"} 59.8`,
		`odr_session_fps{session="we\"ird\\la\nbel"} 1`,
		`odr_tx_us_bucket{session="s1",le="255"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	// Families must come out sorted by name.
	var last string
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(line)[2]
		if name < last {
			t.Fatalf("families not sorted: %q after %q", name, last)
		}
		last = name
	}
}

// TestHistogramBucketsCumulative pins the le-bound mapping of the log2
// buckets: bucket i covers [2^(i-1), 2^i), so its inclusive bound is
// 2^i - 1, and the cumulative counts are non-decreasing up to +Inf.
func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("odr_test_us")
	h.Observe(1) // bucket 1, le="1"
	h.Observe(2) // bucket 2, le="3"
	h.Observe(3) // bucket 2
	h.Observe(8) // bucket 4, le="15"
	var b bytes.Buffer
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`odr_test_us_bucket{le="1"} 1`,
		`odr_test_us_bucket{le="3"} 3`,
		`odr_test_us_bucket{le="7"} 3`,
		`odr_test_us_bucket{le="15"} 4`,
		`odr_test_us_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="31"`) {
		t.Errorf("trailing empty buckets should collapse into +Inf\n%s", out)
	}
}

func TestPromHandlerServesRuntimeFamilies(t *testing.T) {
	rec := httptest.NewRecorder()
	PromHandler(populated()).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, PromContentType)
	}
	out := rec.Body.String()
	for _, want := range []string{"odr_build_info{", "go_goroutines ", "go_memstats_heap_alloc_bytes "} {
		if !strings.Contains(out, want) {
			t.Errorf("handler output missing %q", want)
		}
	}
}

// TestAliasesStayOffPromSurface pins that legacy alias names are a JSON
// compatibility shim only: /metrics exports canonical names.
func TestAliasesStayOffPromSurface(t *testing.T) {
	r := NewRegistry()
	r.Alias("frames_encoded", "odr_frames_encoded_total")
	r.Counter("frames_encoded").Add(5) // resolves to the canonical name

	snap := r.Snapshot()
	if snap["frames_encoded"] != int64(5) || snap["odr_frames_encoded_total"] != int64(5) {
		t.Fatalf("JSON snapshot should carry both names: %v", snap)
	}

	var b bytes.Buffer
	if err := WritePrometheus(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "odr_frames_encoded_total 5") {
		t.Errorf("canonical name missing from exposition\n%s", out)
	}
	if strings.Contains(out, "\nframes_encoded ") || strings.HasPrefix(out, "frames_encoded ") {
		t.Errorf("legacy alias leaked onto the Prometheus surface\n%s", out)
	}
}
