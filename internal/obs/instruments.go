package obs

// Canonical registry names follow odr_<subsystem>_<noun>_<unit>
// (counters additionally end in _total, Prometheus-style). The pre-PR-6
// free-form snake_case names survive as aliases for one release so that
// existing /debug/odr consumers keep working; see Registry.Alias.
const (
	NameFramesRendered  = "odr_frames_rendered_total"
	NameFramesEncoded   = "odr_frames_encoded_total"
	NameFramesDisplayed = "odr_frames_displayed_total"
	NameFramesDropped   = "odr_frames_dropped_total"
	NameFramesPriority  = "odr_frames_priority_total"
	NameInputs          = "odr_inputs_received_total"
	NameTilesCoded      = "odr_tiles_coded_total"
	NameTilesDirty      = "odr_tiles_dirty_total"
	NameSessionsEvicted = "odr_sessions_evicted_total"

	NameRenderUs     = "odr_render_us"
	NameCopyUs       = "odr_copy_us"
	NameEncodeUs     = "odr_encode_us"
	NameTileEncodeUs = "odr_tile_encode_us"
	NameTxUs         = "odr_tx_us"
	NameDecodeUs     = "odr_decode_us"
	NameMtPUs        = "odr_mtp_us"

	NameRenderFPS  = "odr_render_fps"
	NameClientFPS  = "odr_client_fps"
	NameFPSGap     = "odr_fps_gap"
	NameDirtyRatio = "odr_dirty_tile_ratio"
)

// frameAliases maps each legacy (pre-convention) name to its canonical
// replacement.
var frameAliases = map[string]string{
	"frames_rendered":  NameFramesRendered,
	"frames_encoded":   NameFramesEncoded,
	"frames_displayed": NameFramesDisplayed,
	"frames_dropped":   NameFramesDropped,
	"priority_frames":  NameFramesPriority,
	"inputs":           NameInputs,
	"tiles_coded":      NameTilesCoded,
	"tiles_dirty":      NameTilesDirty,
	"sessions_evicted": NameSessionsEvicted,
	"render_us":        NameRenderUs,
	"copy_us":          NameCopyUs,
	"encode_us":        NameEncodeUs,
	"tile_encode_us":   NameTileEncodeUs,
	"tx_us":            NameTxUs,
	"decode_us":        NameDecodeUs,
	"mtp_us":           NameMtPUs,
	"render_fps":       NameRenderFPS,
	"client_fps":       NameClientFPS,
	"fps_gap":          NameFPSGap,
	"dirty_tile_ratio": NameDirtyRatio,
}

// frameHelp is the # HELP text per canonical family.
var frameHelp = map[string]string{
	NameFramesRendered:  "Frames rendered by the 3D application.",
	NameFramesEncoded:   "Frames encoded by the server proxy.",
	NameFramesDisplayed: "Frames displayed (sent to the client, server side).",
	NameFramesDropped:   "Frames dropped by latest-wins buffers or tail drop.",
	NameFramesPriority:  "PriorityFrame promotions (input-triggered renders).",
	NameInputs:          "User inputs received.",
	NameTilesCoded:      "Tiles emitted by the v2 tile codec (dirty or clean).",
	NameTilesDirty:      "Tiles that carried an encoded payload.",
	NameSessionsEvicted: "Sessions cut for blowing a read or write deadline.",
	NameRenderUs:        "Render step service time, microseconds.",
	NameCopyUs:          "Framebuffer copy service time, microseconds.",
	NameEncodeUs:        "Encode step service time, microseconds.",
	NameTileEncodeUs:    "Per-tile slice of the encode step, microseconds.",
	NameTxUs:            "Network transmit service time, microseconds.",
	NameDecodeUs:        "Client decode service time, microseconds.",
	NameMtPUs:           "Motion-to-photon latency, microseconds.",
	NameRenderFPS:       "Render rate over the last monitoring window.",
	NameClientFPS:       "Client display rate over the last monitoring window.",
	NameFPSGap:          "Render FPS minus client FPS (excessive rendering).",
	NameDirtyRatio:      "Dirty/total tile ratio of the last encoded frame.",
}

// FrameInstruments bundles the registry instruments the frame pipeline
// records, under one shared naming vocabulary, so the simulator and the
// real-time stream stack export identical /debug/odr snapshots. All
// fields are nil when built from a nil registry, which makes every record
// a no-op.
type FrameInstruments struct {
	// Counters (events since start).
	Rendered  *Counter // odr_frames_rendered_total
	Encoded   *Counter // odr_frames_encoded_total
	Displayed *Counter // odr_frames_displayed_total (sent, for the server side)
	Dropped   *Counter // odr_frames_dropped_total (MulBuf / latest-wins / tail drops)
	Priority  *Counter // odr_frames_priority_total (PriorityFrame promotions)
	Inputs    *Counter // odr_inputs_received_total

	// Tile codec counters (v2 bitstream; see internal/codec/tile.go).
	TilesCoded *Counter // odr_tiles_coded_total (tiles of every encoded frame)
	TilesDirty *Counter // odr_tiles_dirty_total (tiles that actually carried a payload)

	// Histograms of per-step service time, in microseconds.
	Render     *Histogram // odr_render_us
	Copy       *Histogram // odr_copy_us
	Encode     *Histogram // odr_encode_us
	TileEncode *Histogram // odr_tile_encode_us (per-tile slice of odr_encode_us)
	Tx         *Histogram // odr_tx_us
	Decode     *Histogram // odr_decode_us
	MtP        *Histogram // odr_mtp_us (motion-to-photon)

	// Gauges refreshed per monitoring window.
	RenderFPS  *Gauge // odr_render_fps
	ClientFPS  *Gauge // odr_client_fps
	FPSGap     *Gauge // odr_fps_gap
	DirtyRatio *Gauge // odr_dirty_tile_ratio
}

// NewFrameInstruments resolves the standard instrument set in r (nil r
// yields all-nil, no-op instruments), registering the legacy-name aliases
// and help text as a side effect.
func NewFrameInstruments(r *Registry) FrameInstruments {
	for legacy, canon := range frameAliases {
		r.Alias(legacy, canon)
	}
	ins := FrameInstruments{
		Rendered:   r.Counter(NameFramesRendered),
		Encoded:    r.Counter(NameFramesEncoded),
		Displayed:  r.Counter(NameFramesDisplayed),
		Dropped:    r.Counter(NameFramesDropped),
		Priority:   r.Counter(NameFramesPriority),
		Inputs:     r.Counter(NameInputs),
		TilesCoded: r.Counter(NameTilesCoded),
		TilesDirty: r.Counter(NameTilesDirty),
		Render:     r.Histogram(NameRenderUs),
		Copy:       r.Histogram(NameCopyUs),
		Encode:     r.Histogram(NameEncodeUs),
		TileEncode: r.Histogram(NameTileEncodeUs),
		Tx:         r.Histogram(NameTxUs),
		Decode:     r.Histogram(NameDecodeUs),
		MtP:        r.Histogram(NameMtPUs),
		RenderFPS:  r.Gauge(NameRenderFPS),
		ClientFPS:  r.Gauge(NameClientFPS),
		FPSGap:     r.Gauge(NameFPSGap),
		DirtyRatio: r.Gauge(NameDirtyRatio),
	}
	for name, help := range frameHelp {
		r.SetHelp(name, help)
	}
	return ins
}
