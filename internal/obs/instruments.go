package obs

// FrameInstruments bundles the registry instruments the frame pipeline
// records, under one shared naming vocabulary, so the simulator and the
// real-time stream stack export identical /debug/odr snapshots. All
// fields are nil when built from a nil registry, which makes every record
// a no-op.
type FrameInstruments struct {
	// Counters (events since start).
	Rendered  *Counter // frames_rendered
	Encoded   *Counter // frames_encoded
	Displayed *Counter // frames_displayed (sent, for the server side)
	Dropped   *Counter // frames_dropped (MulBuf / latest-wins / tail drops)
	Priority  *Counter // priority_frames (PriorityFrame promotions)
	Inputs    *Counter // inputs received

	// Tile codec counters (v2 bitstream; see internal/codec/tile.go).
	TilesCoded *Counter // tiles_coded (tiles of every encoded frame)
	TilesDirty *Counter // tiles_dirty (tiles that actually carried a payload)

	// Histograms of per-step service time, in microseconds.
	Render     *Histogram // render_us
	Copy       *Histogram // copy_us
	Encode     *Histogram // encode_us
	TileEncode *Histogram // tile_encode_us (per-tile slice of encode_us)
	Tx         *Histogram // tx_us
	Decode     *Histogram // decode_us
	MtP        *Histogram // mtp_us (motion-to-photon)

	// Gauges refreshed per monitoring window.
	RenderFPS  *Gauge // render_fps
	ClientFPS  *Gauge // client_fps
	FPSGap     *Gauge // fps_gap
	DirtyRatio *Gauge // dirty_tile_ratio (dirty/total of the last frame)
}

// NewFrameInstruments resolves the standard instrument set in r (nil r
// yields all-nil, no-op instruments).
func NewFrameInstruments(r *Registry) FrameInstruments {
	return FrameInstruments{
		Rendered:   r.Counter("frames_rendered"),
		Encoded:    r.Counter("frames_encoded"),
		Displayed:  r.Counter("frames_displayed"),
		Dropped:    r.Counter("frames_dropped"),
		Priority:   r.Counter("priority_frames"),
		Inputs:     r.Counter("inputs"),
		TilesCoded: r.Counter("tiles_coded"),
		TilesDirty: r.Counter("tiles_dirty"),
		Render:     r.Histogram("render_us"),
		Copy:       r.Histogram("copy_us"),
		Encode:     r.Histogram("encode_us"),
		TileEncode: r.Histogram("tile_encode_us"),
		Tx:         r.Histogram("tx_us"),
		Decode:     r.Histogram("decode_us"),
		MtP:        r.Histogram("mtp_us"),
		RenderFPS:  r.Gauge("render_fps"),
		ClientFPS:  r.Gauge("client_fps"),
		FPSGap:     r.Gauge("fps_gap"),
		DirtyRatio: r.Gauge("dirty_tile_ratio"),
	}
}
