package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// MaxLabels is the most label dimensions a vector instrument supports.
// Three is enough for every series this system exports (session, policy,
// component) while keeping the lookup key a fixed-size array — a map key
// that needs no allocation to build on the hot path.
const MaxLabels = 3

// DefaultMaxLabelSets bounds the per-vector cardinality: once a vector
// holds this many live label sets, registering another evicts the least
// recently used one and increments the obs_dropped_label_sets_total
// self-metric. Sessions churn (every reconnect mints a new session id), so
// without a bound a long-lived server would leak one series per session
// ever seen.
const DefaultMaxLabelSets = 256

// DroppedLabelSetsName is the self-metric counting label-set evictions
// across all vectors of a registry.
const DroppedLabelSetsName = "obs_dropped_label_sets_total"

// labelKey is a vector's lookup key: the label values padded with empty
// strings to MaxLabels. A fixed-size array keys the map without allocating.
type labelKey [MaxLabels]string

// vecEntry pairs one label set's instrument with its LRU stamp.
type vecEntry[I any] struct {
	inst *I
	vals labelKey
	use  atomic.Int64
}

// Vec is a family of instruments of one name distinguished by label
// values — the labeled counterpart of a single Counter/Gauge/Histogram.
// Lookup (With/With1/...) takes a read lock and is allocation-free for
// label sets that already exist; hot paths should resolve the instrument
// once per session and record through the returned handle lock-free.
// Cardinality is bounded: see DefaultMaxLabelSets. A nil *Vec is valid and
// returns nil instruments, whose methods are no-ops.
type Vec[I any] struct {
	name    string
	help    string
	labels  []string
	newInst func() *I
	maxSets int
	dropped *Counter // registry-wide obs_dropped_label_sets_total
	clock   atomic.Int64
	mu      sync.RWMutex
	m       map[labelKey]*vecEntry[I]
}

// CounterVec, GaugeVec and HistogramVec are the concrete vector kinds.
type (
	CounterVec   = Vec[Counter]
	GaugeVec     = Vec[Gauge]
	HistogramVec = Vec[Histogram]
)

// newVec builds a vector (registry-internal).
func newVec[I any](name, help string, labels []string, maxSets int, dropped *Counter, newInst func() *I) *Vec[I] {
	if maxSets <= 0 {
		maxSets = DefaultMaxLabelSets
	}
	if len(labels) > MaxLabels {
		labels = labels[:MaxLabels]
	}
	return &Vec[I]{
		name:    name,
		help:    help,
		labels:  labels,
		newInst: newInst,
		maxSets: maxSets,
		dropped: dropped,
		m:       make(map[labelKey]*vecEntry[I]),
	}
}

// Name returns the family name ("" for nil).
func (v *Vec[I]) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// Labels returns the label names (nil for a nil vec).
func (v *Vec[I]) Labels() []string {
	if v == nil {
		return nil
	}
	return v.labels
}

// Len returns the number of live label sets.
func (v *Vec[I]) Len() int {
	if v == nil {
		return 0
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.m)
}

// With1 resolves the instrument for a one-label set. The fast path (label
// set already registered) is a read-locked map lookup plus an atomic LRU
// touch: zero allocations.
func (v *Vec[I]) With1(a string) *I { return v.with(labelKey{a}) }

// With2 resolves a two-label set.
func (v *Vec[I]) With2(a, b string) *I { return v.with(labelKey{a, b}) }

// With3 resolves a three-label set.
func (v *Vec[I]) With3(a, b, c string) *I { return v.with(labelKey{a, b, c}) }

// With resolves the instrument for the given label values (padded or
// truncated to the vector's label names). Prefer With1/With2/With3 on hot
// paths — the variadic slice may allocate.
func (v *Vec[I]) With(vals ...string) *I {
	var k labelKey
	copy(k[:], vals)
	return v.with(k)
}

func (v *Vec[I]) with(k labelKey) *I {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	if e := v.m[k]; e != nil {
		e.use.Store(v.clock.Add(1))
		v.mu.RUnlock()
		return e.inst
	}
	v.mu.RUnlock()

	v.mu.Lock()
	defer v.mu.Unlock()
	if e := v.m[k]; e != nil { // lost the race to another creator
		e.use.Store(v.clock.Add(1))
		return e.inst
	}
	if len(v.m) >= v.maxSets {
		v.evictLRU()
	}
	e := &vecEntry[I]{inst: v.newInst(), vals: k}
	e.use.Store(v.clock.Add(1))
	v.m[k] = e
	return e.inst
}

// evictLRU removes the least recently used label set (write lock held).
// The evicted instrument keeps working for holders of its handle; it just
// stops being exported. Every eviction is a cardinality overflow and
// counts against obs_dropped_label_sets_total.
func (v *Vec[I]) evictLRU() {
	var victim labelKey
	var found bool
	min := int64(1<<63 - 1)
	for k, e := range v.m {
		if u := e.use.Load(); u < min {
			min, victim, found = u, k, true
		}
	}
	if found {
		delete(v.m, victim)
		v.dropped.Inc()
	}
}

// Delete removes one label set (e.g. on session detach), freeing its
// series without counting a cardinality drop. It reports whether the set
// existed.
func (v *Vec[I]) Delete(vals ...string) bool {
	if v == nil {
		return false
	}
	var k labelKey
	copy(k[:], vals)
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.m[k]; !ok {
		return false
	}
	delete(v.m, k)
	return true
}

// VecSeries is one exported (label set, instrument) pair.
type VecSeries[I any] struct {
	Values []string // label values, aligned with Vec.Labels()
	Inst   *I
}

// Series returns the live label sets sorted by label values, for export.
func (v *Vec[I]) Series() []VecSeries[I] {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	out := make([]VecSeries[I], 0, len(v.m))
	for _, e := range v.m {
		vals := make([]string, len(v.labels))
		copy(vals, e.vals[:])
		out = append(out, VecSeries[I]{Values: vals, Inst: e.inst})
	}
	v.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Values, out[j].Values
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out
}
