package obs

import (
	"fmt"
	"runtime"
	"testing"
)

func TestVecResolvesSameInstrument(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("odr_test_total", "t", "session")
	a := v.With1("s1")
	b := v.With1("s1")
	if a != b {
		t.Fatal("same label set must resolve to the same instrument")
	}
	a.Add(2)
	b.Inc()
	if got := v.With1("s1").Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if v.With1("s2") == a {
		t.Fatal("distinct label sets must get distinct instruments")
	}
}

func TestVecKindsIndependent(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("odr_test_ratio", "t", "session").With1("s1")
	g.Set(0.5)
	h := r.HistogramVec("odr_test_us", "t", "session").With1("s1")
	h.Observe(7)
	if g.Value() != 0.5 || h.Count() != 1 {
		t.Fatalf("gauge=%v histCount=%d", g.Value(), h.Count())
	}
}

// TestVecCardinalityBound drives 10k unique session labels through a vec
// and pins the bound: live series never exceed DefaultMaxLabelSets, every
// overflow increments obs_dropped_label_sets_total, and the handles that
// were evicted keep working (writes just stop being exported).
func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("odr_session_fps", "t", "session")
	const churn = 10_000
	first := v.With1("s0")
	for i := 0; i < churn; i++ {
		v.With1(fmt.Sprintf("s%d", i)).Set(float64(i))
	}
	if got := v.Len(); got != DefaultMaxLabelSets {
		t.Fatalf("live label sets = %d, want %d", got, DefaultMaxLabelSets)
	}
	wantDropped := int64(churn - DefaultMaxLabelSets)
	if got := r.DroppedLabelSets().Value(); got != wantDropped {
		t.Fatalf("dropped = %d, want %d", got, wantDropped)
	}
	// The evicted handle stays safe to use.
	first.Set(42)
	// Export stays bounded too.
	if got := len(v.Series()); got != DefaultMaxLabelSets {
		t.Fatalf("exported series = %d, want %d", got, DefaultMaxLabelSets)
	}
}

func TestVecEvictsLeastRecentlyUsed(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("odr_test_total", "t", "session")
	for i := 0; i < DefaultMaxLabelSets; i++ {
		v.With1(fmt.Sprintf("s%d", i))
	}
	v.With1("s0") // refresh s0 so s1 is now the LRU
	v.With1("overflow")
	if v.Len() != DefaultMaxLabelSets {
		t.Fatalf("len = %d", v.Len())
	}
	for _, s := range v.Series() {
		if s.Values[0] == "s1" {
			t.Fatal("s1 should have been evicted as least recently used")
		}
	}
	if r.DroppedLabelSets().Value() != 1 {
		t.Fatalf("dropped = %d, want 1", r.DroppedLabelSets().Value())
	}
}

// TestVecDeleteIsNotADrop pins that the orderly Delete path (session
// detach) frees the series without counting a cardinality overflow.
func TestVecDeleteIsNotADrop(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("odr_session_fps", "t", "session")
	v.With1("s1").Set(60)
	if !v.Delete("s1") {
		t.Fatal("Delete should report the set existed")
	}
	if v.Delete("s1") {
		t.Fatal("second Delete should report absence")
	}
	if v.Len() != 0 {
		t.Fatalf("len = %d after delete", v.Len())
	}
	if got := r.DroppedLabelSets().Value(); got != 0 {
		t.Fatalf("Delete counted as a drop: %d", got)
	}
}

func TestNilVecIsNoop(t *testing.T) {
	var v *CounterVec
	if v.With1("x") != nil || v.Len() != 0 || v.Name() != "" || v.Labels() != nil || v.Series() != nil {
		t.Fatal("nil vec must be inert")
	}
	v.With1("x").Inc() // nil instrument: must not panic
	if v.Delete("x") {
		t.Fatal("nil vec Delete must report false")
	}
	var r *Registry
	if r.CounterVec("n", "h", "l") != nil || r.GaugeVec("n", "h", "l") != nil || r.HistogramVec("n", "h", "l") != nil {
		t.Fatal("nil registry must hand out nil vecs")
	}
}

// TestVecHotPathAllocs pins the zero-allocation contract of the labeled
// hot path: resolving an existing label set (With1/With2) and recording
// through the handle must not allocate.
func TestVecHotPathAllocs(t *testing.T) {
	if runtime.Compiler != "gc" {
		t.Skip("allocation accounting needs the gc compiler")
	}
	r := NewRegistry()
	cv := r.CounterVec("odr_test_total", "t", "tile_outcome")
	gv := r.GaugeVec("odr_test_ratio", "t", "session", "component")
	cv.With1("dirty")
	gv.With2("s1", "render")

	if n := testing.AllocsPerRun(1000, func() { cv.With1("dirty").Inc() }); n != 0 {
		t.Errorf("CounterVec.With1+Inc allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { gv.With2("s1", "render").Set(1) }); n != 0 {
		t.Errorf("GaugeVec.With2+Set allocates %.1f/op, want 0", n)
	}
	h := r.Histogram("odr_test_us")
	if n := testing.AllocsPerRun(1000, func() { h.Observe(17) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}
