package obs

import (
	"strings"
	"testing"
)

func lintErrs(t *testing.T, r *Registry, wantSubstr string) {
	t.Helper()
	errs := Lint(r)
	for _, err := range errs {
		if strings.Contains(err.Error(), wantSubstr) {
			return
		}
	}
	t.Errorf("Lint should flag %q, got %v", wantSubstr, errs)
}

func TestLintCleanRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("odr_frames_encoded_total")
	r.Gauge("odr_dirty_tile_ratio")
	r.Histogram("odr_encode_us")
	r.CounterVec("odr_tiles_outcome_total", "Tiles by outcome.", "tile_outcome")
	r.GaugeVec("odr_session_fps", "FPS.", "session")
	r.HistogramVec("odr_tx_seconds", "Send time.", "session")
	r.Alias("frames_encoded", "odr_frames_encoded_total")
	if errs := Lint(r); len(errs) != 0 {
		t.Fatalf("clean registry flagged: %v", errs)
	}
	MustLint(r) // must not panic
	if errs := Lint(nil); errs != nil {
		t.Fatalf("nil registry lint = %v", errs)
	}
}

func TestLintCatchesViolations(t *testing.T) {
	badName := NewRegistry()
	badName.Counter("FramesEncoded_total")
	lintErrs(t, badName, "does not match convention")

	badCounter := NewRegistry()
	badCounter.Counter("odr_frames_encoded")
	lintErrs(t, badCounter, "must end in _total")

	badHist := NewRegistry()
	badHist.Histogram("odr_encode_time")
	lintErrs(t, badHist, "unit suffix")

	badLabel := NewRegistry()
	badLabel.GaugeVec("odr_session_fps", "h", "Session-ID")
	lintErrs(t, badLabel, `label "Session-ID"`)

	dupHelp := NewRegistry()
	dupHelp.CounterVec("odr_a_total", "Same words.", "x")
	dupHelp.GaugeVec("odr_b_ratio", "Same words.", "x")
	lintErrs(t, dupHelp, "share the help string")

	chained := NewRegistry()
	chained.Alias("a", "b")
	chained.Alias("b", "odr_c_total")
	lintErrs(t, chained, "chains to alias")
}

func TestMustLintPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLint should panic on a violation")
		}
	}()
	r := NewRegistry()
	r.Counter("not a metric name")
	MustLint(r)
}
