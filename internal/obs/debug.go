package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional live-telemetry HTTP listener: it serves the
// standard Go debug surfaces (expvar at /debug/vars, pprof at
// /debug/pprof/) plus /debug/odr, a JSON snapshot assembled by the
// caller-supplied function (per-session FPS, gaps, drop counts, pacer
// state, ...), and — when built with a registry — /metrics in Prometheus
// text exposition format.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeDebug starts a debug listener on addr (":0" picks a free port) and
// serves until Close. snapshot is invoked per /debug/odr request; it may
// be nil, in which case /debug/odr serves an empty object. Without a
// registry there is no /metrics route; use ServeDebugRegistry for the
// full surface.
func ServeDebug(addr string, snapshot func() any) (*DebugServer, error) {
	return ServeDebugRegistry(addr, nil, snapshot)
}

// ServeDebugRegistry is ServeDebug plus the Prometheus surface: when reg
// is non-nil, /metrics serves the registry's canonical instruments (plus
// Go runtime stats and odr_build_info) in text exposition format — the
// single metrics surface soaks, dashboards (cmd/odrtop) and CI regression
// gates scrape.
func ServeDebugRegistry(addr string, reg *Registry, snapshot func() any) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/odr", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var v any = map[string]any{}
		if snapshot != nil {
			v = snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	})
	if reg != nil {
		mux.Handle("/metrics", PromHandler(reg))
	}
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = d.srv.Serve(ln) }()
	return d, nil
}

// Addr returns the listener's address (useful with ":0").
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener and closes idle connections.
func (d *DebugServer) Close() error { return d.srv.Close() }
