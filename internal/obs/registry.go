package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// valid and ignores writes (the disabled fast path).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically settable float64 value. A nil *Gauge is valid
// and ignores writes.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log2 buckets: enough for the full range of
// a uint64 value plus a dedicated <=0 bucket.
const histBuckets = 65

// newHistogram returns a ready histogram (min starts at the sentinel so
// the first observation always wins the CAS).
func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Histogram is a log2-bucketed histogram of non-negative values with O(1)
// lock-free Observe — the hot-path replacement for metrics.Dist, whose
// percentile queries sort every sample. Values are recorded in an
// arbitrary integer unit chosen by the caller (ObserveDuration uses
// microseconds); bucket i (i >= 1) covers [2^(i-1), 2^i), and bucket 0
// holds values <= 0. A nil *Histogram is valid and ignores writes.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	min     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value in O(1): one bucket increment plus the
// count/sum/min/max updates, no sorting, no allocation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveDuration records d in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(int64(d / time.Microsecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observed value (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) from the
// bucket counts: the geometric midpoint of the bucket holding the q-th
// observation, clamped to the observed min/max. The estimate is within a
// factor of sqrt(2) of the true value, which is plenty for live
// dashboards; exact percentiles stay with metrics.Dist offline.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			var est float64
			if i == 0 {
				est = 0
			} else {
				lo := math.Exp2(float64(i - 1))
				est = lo * math.Sqrt2 // geometric midpoint of [2^(i-1), 2^i)
			}
			if mn := float64(h.Min()); est < mn {
				est = mn
			}
			if mx := float64(h.Max()); est > mx {
				est = mx
			}
			return est
		}
	}
	return float64(h.Max())
}

// Buckets returns a copy of the raw log2 bucket counts: index 0 holds
// values <= 0, index i >= 1 holds [2^(i-1), 2^i). The copy is not an
// atomic snapshot across buckets — fine for export, not for invariants
// against concurrent writers.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	if h == nil {
		return out
	}
	for i := range out {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// HistogramSnapshot is the exported view of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns the current summary.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Registry is a named collection of counters, gauges, histograms and
// their labeled vector counterparts. Instrument lookup (Counter/Gauge/
// Histogram/...Vec) takes the registry lock and is meant for setup time;
// the returned instruments are then recorded to lock-free on hot paths.
// A nil *Registry is valid: it returns nil instruments, whose methods are
// no-ops.
//
// Names follow the odr_<subsystem>_<noun>_<unit> convention (see Lint);
// legacy names registered via Alias keep resolving and keep appearing in
// JSON snapshots, so /debug/odr consumers survive one release of renames.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram

	counterVecs map[string]*CounterVec
	gaugeVecs   map[string]*GaugeVec
	histVecs    map[string]*HistogramVec

	help    map[string]string // family name -> help text
	aliases map[string]string // legacy name -> canonical name

	// dropped is the registry-wide obs_dropped_label_sets_total
	// self-metric, shared by every vector for cardinality-overflow
	// eviction accounting.
	dropped *Counter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		histograms:  make(map[string]*Histogram),
		counterVecs: make(map[string]*CounterVec),
		gaugeVecs:   make(map[string]*GaugeVec),
		histVecs:    make(map[string]*HistogramVec),
		help:        make(map[string]string),
		aliases:     make(map[string]string),
	}
	r.dropped = &Counter{}
	r.counters[DroppedLabelSetsName] = r.dropped
	r.help[DroppedLabelSetsName] = "Label sets evicted from vector instruments after hitting the cardinality bound."
	return r
}

// resolve maps a legacy alias to its canonical name (lock held).
func (r *Registry) resolve(name string) string {
	if canon, ok := r.aliases[name]; ok {
		return canon
	}
	return name
}

// Alias declares legacy as an alternate name for canonical: instrument
// lookups under legacy resolve to the canonical instrument, and JSON
// snapshots carry both keys with the same value. The Prometheus surface
// exports canonical names only.
func (r *Registry) Alias(legacy, canonical string) {
	if r == nil || legacy == canonical {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.aliases[legacy] = canonical
}

// SetHelp attaches help text to a family name; the Prometheus encoder
// emits it as the # HELP line.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[r.resolve(name)] = help
}

// Help returns the help text for name ("" when unset).
func (r *Registry) Help(name string) string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[r.resolve(name)]
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.resolve(name)
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.resolve(name)
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.resolve(name)
	h := r.histograms[name]
	if h == nil {
		h = newHistogram()
		r.histograms[name] = h
	}
	return h
}

// CounterVec returns the named labeled counter family, creating it on
// first use with the given label names (at most MaxLabels; later lookups
// ignore the labels argument).
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.resolve(name)
	v := r.counterVecs[name]
	if v == nil {
		v = newVec(name, help, labels, 0, r.dropped, func() *Counter { return &Counter{} })
		r.counterVecs[name] = v
		if help != "" {
			r.help[name] = help
		}
	}
	return v
}

// GaugeVec returns the named labeled gauge family, creating it on first
// use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.resolve(name)
	v := r.gaugeVecs[name]
	if v == nil {
		v = newVec(name, help, labels, 0, r.dropped, func() *Gauge { return &Gauge{} })
		r.gaugeVecs[name] = v
		if help != "" {
			r.help[name] = help
		}
	}
	return v
}

// HistogramVec returns the named labeled histogram family, creating it on
// first use.
func (r *Registry) HistogramVec(name, help string, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name = r.resolve(name)
	v := r.histVecs[name]
	if v == nil {
		v = newVec(name, help, labels, 0, r.dropped, newHistogram)
		r.histVecs[name] = v
		if help != "" {
			r.help[name] = help
		}
	}
	return v
}

// DroppedLabelSets returns the cardinality-overflow self-metric.
func (r *Registry) DroppedLabelSets() *Counter {
	if r == nil {
		return nil
	}
	return r.dropped
}

// seriesKey renders a labeled series as name{l1="v1",l2="v2"} for JSON
// snapshots — the same shape the Prometheus surface exports.
func seriesKey(name string, labels, values []string) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// Snapshot returns a point-in-time copy of every instrument, keyed by
// name. Counter and gauge values appear directly; histograms appear as
// HistogramSnapshot; vector series appear under name{label="value"} keys.
// Legacy aliases appear alongside their canonical names with the same
// value.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		out[name] = h.Snapshot()
	}
	for name, v := range r.counterVecs {
		for _, s := range v.Series() {
			out[seriesKey(name, v.Labels(), s.Values)] = s.Inst.Value()
		}
	}
	for name, v := range r.gaugeVecs {
		for _, s := range v.Series() {
			out[seriesKey(name, v.Labels(), s.Values)] = s.Inst.Value()
		}
	}
	for name, v := range r.histVecs {
		for _, s := range v.Series() {
			out[seriesKey(name, v.Labels(), s.Values)] = s.Inst.Snapshot()
		}
	}
	for legacy, canon := range r.aliases {
		if v, ok := out[canon]; ok {
			out[legacy] = v
		}
	}
	return out
}

// AliasNames returns the registered legacy->canonical alias map.
func (r *Registry) AliasNames() map[string]string {
	out := make(map[string]string)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.aliases {
		out[k] = v
	}
	return out
}

// Names returns all instrument names, sorted.
func (r *Registry) Names() []string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON (keys sorted).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteSummary writes a line-per-instrument plain-text summary sorted by
// name — the diff-friendly form the odrserver SIGINT handler logs. It
// reuses the same sorted export path as the Prometheus encoder, so two
// runs of the same build list instruments in the same order. Alias names
// are skipped: the summary speaks canonical names only.
func (r *Registry) WriteSummary(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	aliases := r.AliasNames()
	names := make([]string, 0, len(snap))
	for n := range snap {
		if _, isAlias := aliases[n]; isAlias {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var err error
		switch v := snap[n].(type) {
		case HistogramSnapshot:
			_, err = fmt.Fprintf(w, "%s count=%d sum=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%d\n",
				n, v.Count, v.Sum, v.Mean, v.P50, v.P95, v.P99, v.Max)
		case float64:
			_, err = fmt.Fprintf(w, "%s %s\n", n, FormatValue(v))
		case int64:
			_, err = fmt.Fprintf(w, "%s %d\n", n, v)
		default:
			_, err = fmt.Fprintf(w, "%s %v\n", n, v)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
