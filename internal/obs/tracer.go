// Package obs is the observability layer shared by the discrete-event
// simulator and the real-time streaming stack: a frame-lifecycle span
// tracer, a registry of cheap atomic metrics, and live HTTP debug
// endpoints.
//
// The design goal is near-zero cost when disabled: every recording entry
// point is a method on a possibly-nil receiver, so a disabled tracer or
// registry compiles down to a nil check on the hot path. When enabled,
// the tracer stores fixed-size events in a pre-allocated ring claimed
// with one atomic add (no locks, no allocation per event), and the
// registry's instruments are single atomic operations.
//
// Both runtimes share the same event vocabulary, so a simulated run and a
// live TCP stream export the same artifact: Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing) that renders the paper's
// Fig. 5 pipeline timelines, or the repo's usual CSV tables.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"odr/internal/trace"
)

// Track is the timeline row an event belongs to — one per pipeline stage,
// mirroring Fig. 2 of the paper.
type Track uint8

// The pipeline tracks, in Fig. 2 order.
const (
	TrackInput Track = iota
	TrackRender
	TrackProxy
	TrackNetwork
	TrackClient
	TrackPacer
	numTracks
)

// String implements fmt.Stringer.
func (t Track) String() string {
	switch t {
	case TrackInput:
		return "input"
	case TrackRender:
		return "render"
	case TrackProxy:
		return "proxy"
	case TrackNetwork:
		return "network"
	case TrackClient:
		return "client"
	case TrackPacer:
		return "pacer"
	}
	return fmt.Sprintf("track%d", uint8(t))
}

// Phase distinguishes span events (with a duration) from instant events.
type Phase uint8

// The event phases (a subset of the Chrome trace-event phases).
const (
	PhaseSpan    Phase = iota // a complete event, "X"
	PhaseInstant              // an instant event, "i"
)

// Event is one recorded trace event. Span events cover [TS, TS+Dur);
// instant events mark the moment TS.
type Event struct {
	// Name identifies the step ("render", "encode", "mulbuf-drop", ...).
	Name string
	// TS is the event time as an offset from the run start (virtual time
	// in the simulator, wall time in the stream stack).
	TS time.Duration
	// Dur is the span length (0 for instants).
	Dur time.Duration
	// Seq is the frame sequence number the event belongs to (0 if none).
	Seq uint64
	// Track is the timeline row.
	Track Track
	// Phase is the event kind.
	Phase Phase
}

// slot is one ring entry. ticket is 0 while empty and claim+1 once the
// event has been fully written; the release/acquire pair on ticket
// publishes the event fields to readers.
type slot struct {
	ticket atomic.Uint64
	ev     Event
}

// Tracer records frame-lifecycle events into a fixed-size ring. A nil
// *Tracer is valid and records nothing (the disabled fast path). Writers
// never block and never allocate; when the ring wraps, the oldest events
// are overwritten and counted as dropped.
//
// Export (Events, WriteChromeTrace, WriteCSV) is intended to run after the
// traced run has quiesced; an export raced with a wrapping writer may
// miss or skip the events being overwritten, but never blocks recording.
type Tracer struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// DefaultTracerEvents is the ring capacity used when NewTracer is given a
// non-positive size: at five spans per frame it holds ~100 s of a 120 FPS
// pipeline.
const DefaultTracerEvents = 1 << 16

// NewTracer returns a tracer whose ring holds at least capacity events
// (rounded up to a power of two; <=0 selects DefaultTracerEvents).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerEvents
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Enabled reports whether events will be recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// record claims a slot and publishes ev into it.
func (t *Tracer) record(ev Event) {
	claim := t.next.Add(1) - 1
	s := &t.slots[claim&t.mask]
	s.ev = ev
	s.ticket.Store(claim + 1)
}

// Span records a complete event covering [start, end) on track. Nil
// tracers record nothing.
func (t *Tracer) Span(track Track, name string, seq uint64, start, end time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, TS: start, Dur: end - start, Seq: seq, Track: track, Phase: PhaseSpan})
}

// Instant records a moment event at ts on track. Nil tracers record
// nothing.
func (t *Tracer) Instant(track Track, name string, seq uint64, ts time.Duration) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, TS: ts, Seq: seq, Track: track, Phase: PhaseInstant})
}

// Recorded returns the total number of events recorded since creation,
// including any that have since been overwritten.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	n := t.next.Load()
	if c := uint64(len(t.slots)); n > c {
		return n - c
	}
	return 0
}

// Events returns the retained events sorted by time (ties broken by track
// then name for determinism).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := t.next.Load()
	lo := uint64(0)
	if c := uint64(len(t.slots)); n > c {
		lo = n - c
	}
	out := make([]Event, 0, n-lo)
	for claim := lo; claim < n; claim++ {
		s := &t.slots[claim&t.mask]
		if s.ticket.Load() != claim+1 {
			continue // being overwritten by a still-running writer
		}
		out = append(out, s.ev)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		if out[i].Track != out[j].Track {
			return out[i].Track < out[j].Track
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// chromeEvent is the trace-event JSON shape understood by Perfetto and
// chrome://tracing.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the retained events as Chrome trace-event JSON.
// Open the file in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// the Fig. 5-style per-stage frame timeline.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	evs := t.Events()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(evs)+int(numTracks))}
	// Name the rows: one metadata event per track.
	for tr := Track(0); tr < numTracks; tr++ {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: int(tr) + 1,
			Args: map[string]any{"name": fmt.Sprintf("%d-%s", tr, tr)},
		})
	}
	usec := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.Name, PID: 1, TID: int(ev.Track) + 1, TS: usec(ev.TS),
		}
		if ev.Seq != 0 {
			ce.Args = map[string]any{"seq": ev.Seq}
		}
		switch ev.Phase {
		case PhaseSpan:
			ce.Ph = "X"
			d := usec(ev.Dur)
			ce.Dur = &d
		case PhaseInstant:
			ce.Ph = "i"
			ce.S = "t" // thread-scoped tick mark
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteCSV writes the retained events as a CSV table (track, phase, name,
// seq, ts_ms, dur_ms), compatible with the repo's other trace exports.
func (t *Tracer) WriteCSV(w io.Writer) error {
	tb := trace.NewTable("track", "phase", "name", "seq", "ts_ms", "dur_ms")
	msf := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	for _, ev := range t.Events() {
		phase := "span"
		if ev.Phase == PhaseInstant {
			phase = "instant"
		}
		if err := tb.AddRow(ev.Track.String(), phase, ev.Name, int64(ev.Seq), msf(ev.TS), msf(ev.Dur)); err != nil {
			return err
		}
	}
	return tb.WriteCSV(w)
}
