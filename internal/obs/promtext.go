package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// This file is the dependency-free Prometheus text-exposition (version
// 0.0.4) encoder for a Registry: counters and gauges map 1:1, the log2
// histograms map to cumulative _bucket/_sum/_count series, and vector
// instruments map to labeled series. The output is canonical — families
// sorted by name, series sorted by label values, one fixed value
// formatting — so encode -> parse (internal/obs/scrape) -> encode is
// byte-identical, which the round-trip tests pin.

// PromContentType is the Content-Type of the /metrics response.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// FormatValue renders a sample value canonically: integral values within
// the float64-exact range print as integers, everything else in Go 'g'
// form; ±Inf and NaN use the Prometheus spellings.
func FormatValue(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) <= 1<<53 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// EscapeLabelValue is the exported escaping helper (shared with the
// scrape re-encoder).
func EscapeLabelValue(v string) string { return escapeLabelValue(v) }

// promFamily is one family ready to encode.
type promFamily struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	rows []promRow
}

// promRow is one sample line: an optional label block and a value, or a
// pre-rendered histogram block.
type promRow struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // rendered `a="b",c="d"` (no braces), "" for none
	value  float64
}

// renderLabels joins label names/values into the canonical block.
func renderLabels(names, values []string) string {
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// histRows renders one histogram as cumulative bucket/sum/count rows.
// Bucket i of the log2 histogram covers [2^(i-1), 2^i) over integer
// observations, so its inclusive upper bound is 2^i - 1; bucket 0 holds
// values <= 0 and exports as le="0". Trailing all-zero buckets collapse
// into le="+Inf".
func histRows(h *Histogram, baseLabels string) []promRow {
	buckets := h.Buckets()
	top := 0
	for i, c := range buckets {
		if c != 0 {
			top = i
		}
	}
	rows := make([]promRow, 0, top+4)
	var cum int64
	bucketLabel := func(le string) string {
		if baseLabels == "" {
			return `le="` + le + `"`
		}
		return baseLabels + `,le="` + le + `"`
	}
	if h.Count() > 0 {
		for i := 0; i <= top; i++ {
			cum += buckets[i]
			var le string
			if i == 0 {
				le = "0"
			} else if i == 64 {
				le = strconv.FormatUint(math.MaxUint64, 10)
			} else {
				le = strconv.FormatUint(1<<uint(i)-1, 10)
			}
			rows = append(rows, promRow{suffix: "_bucket", labels: bucketLabel(le), value: float64(cum)})
		}
	}
	rows = append(rows,
		promRow{suffix: "_bucket", labels: bucketLabel("+Inf"), value: float64(h.Count())},
		promRow{suffix: "_sum", labels: baseLabels, value: float64(h.Sum())},
		promRow{suffix: "_count", labels: baseLabels, value: float64(h.Count())},
	)
	return rows
}

// collectFamilies snapshots r into encode-ready families (sorted).
func collectFamilies(r *Registry) []promFamily {
	if r == nil {
		return nil
	}
	var fams []promFamily
	r.mu.Lock()
	for name, c := range r.counters {
		fams = append(fams, promFamily{name: name, help: r.help[name], typ: "counter",
			rows: []promRow{{value: float64(c.Value())}}})
	}
	for name, g := range r.gauges {
		fams = append(fams, promFamily{name: name, help: r.help[name], typ: "gauge",
			rows: []promRow{{value: g.Value()}}})
	}
	for name, h := range r.histograms {
		fams = append(fams, promFamily{name: name, help: r.help[name], typ: "histogram",
			rows: histRows(h, "")})
	}
	for name, v := range r.counterVecs {
		fam := promFamily{name: name, help: r.help[name], typ: "counter"}
		for _, s := range v.Series() {
			fam.rows = append(fam.rows, promRow{labels: renderLabels(v.Labels(), s.Values), value: float64(s.Inst.Value())})
		}
		if len(fam.rows) > 0 {
			fams = append(fams, fam)
		}
	}
	for name, v := range r.gaugeVecs {
		fam := promFamily{name: name, help: r.help[name], typ: "gauge"}
		for _, s := range v.Series() {
			fam.rows = append(fam.rows, promRow{labels: renderLabels(v.Labels(), s.Values), value: s.Inst.Value()})
		}
		if len(fam.rows) > 0 {
			fams = append(fams, fam)
		}
	}
	for name, v := range r.histVecs {
		fam := promFamily{name: name, help: r.help[name], typ: "histogram"}
		for _, s := range v.Series() {
			fam.rows = append(fam.rows, histRows(s.Inst, renderLabels(v.Labels(), s.Values))...)
		}
		if len(fam.rows) > 0 {
			fams = append(fams, fam)
		}
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// runtimeFamilies reports the Go runtime and build-identity families the
// /metrics endpoint appends: goroutine count, key memstats, GC cycles and
// odr_build_info.
func runtimeFamilies() []promFamily {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return []promFamily{
		{name: "go_gc_cycles_total", help: "Completed GC cycles.", typ: "counter",
			rows: []promRow{{value: float64(ms.NumGC)}}},
		{name: "go_goroutines", help: "Live goroutines.", typ: "gauge",
			rows: []promRow{{value: float64(runtime.NumGoroutine())}}},
		{name: "go_memstats_alloc_bytes_total", help: "Cumulative bytes allocated on the heap.", typ: "counter",
			rows: []promRow{{value: float64(ms.TotalAlloc)}}},
		{name: "go_memstats_heap_alloc_bytes", help: "Heap bytes allocated and in use.", typ: "gauge",
			rows: []promRow{{value: float64(ms.HeapAlloc)}}},
		{name: "go_memstats_heap_objects", help: "Allocated heap objects.", typ: "gauge",
			rows: []promRow{{value: float64(ms.HeapObjects)}}},
		{name: "go_memstats_sys_bytes", help: "Bytes obtained from the OS.", typ: "gauge",
			rows: []promRow{{value: float64(ms.Sys)}}},
		{name: "odr_build_info", help: "Build identity (value is always 1).", typ: "gauge",
			rows: []promRow{{labels: renderLabels(
				[]string{"go_version", "goarch", "goos"},
				[]string{runtime.Version(), runtime.GOARCH, runtime.GOOS}), value: 1}}},
	}
}

// writeFamilies encodes families (already sorted) to w.
func writeFamilies(w io.Writer, fams []promFamily) error {
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(strings.ReplaceAll(f.help, "\n", " "))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.typ)
		bw.WriteByte('\n')
		for _, row := range f.rows {
			bw.WriteString(f.name)
			bw.WriteString(row.suffix)
			if row.labels != "" {
				bw.WriteByte('{')
				bw.WriteString(row.labels)
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(FormatValue(row.value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// WritePrometheus encodes every instrument of r (canonical names only —
// aliases are a JSON-surface compatibility shim) in the Prometheus text
// exposition format.
func WritePrometheus(w io.Writer, r *Registry) error {
	return writeFamilies(w, collectFamilies(r))
}

// WritePrometheusWith is WritePrometheus plus, when runtimeStats is set,
// the Go runtime and odr_build_info families — what the /metrics endpoint
// serves.
func WritePrometheusWith(w io.Writer, r *Registry, runtimeStats bool) error {
	fams := collectFamilies(r)
	if runtimeStats {
		fams = append(fams, runtimeFamilies()...)
		sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	}
	return writeFamilies(w, fams)
}

// PromHandler returns the /metrics HTTP handler for r.
func PromHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", PromContentType)
		_ = WritePrometheusWith(w, r, true)
	})
}
