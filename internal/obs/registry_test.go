package obs_test

import (
	"bytes"
	"encoding/json"
	"math"
	"sync"
	"testing"
	"time"

	"odr/internal/obs"
)

func TestCounterAndGauge(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("frames_rendered")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("frames_rendered") != c {
		t.Fatal("get-or-create returned a different counter")
	}
	g := r.Gauge("fps")
	g.Set(59.7)
	if g.Value() != 59.7 {
		t.Fatalf("gauge = %v, want 59.7", g.Value())
	}
}

func TestNilRegistryIsNoop(t *testing.T) {
	var r *obs.Registry
	c := r.Counter("x")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil counter recorded")
	}
	g := r.Gauge("y")
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge recorded")
	}
	h := r.Histogram("z")
	h.Observe(10)
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded")
	}
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
}

func TestHistogramBasics(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("lat_us")
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 1106 {
		t.Fatalf("sum = %d, want 1106", h.Sum())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d, want 1/1000", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-221.2) > 1e-9 {
		t.Fatalf("mean = %v, want 221.2", m)
	}
	// The p99 observation is 1000, in bucket [512, 1024); the estimate is
	// the bucket's geometric midpoint, within a factor of sqrt(2) of truth.
	if p := h.Quantile(0.99); p < 512 || p > 1024 {
		t.Fatalf("p99 = %v, want within [512, 1024]", p)
	}
	// The median of {1,2,3,100,1000} is 3; the log-bucket estimate must be
	// within a factor of sqrt(2) of the bucket bounds around it.
	if p := h.Quantile(0.5); p < 2 || p > 4 {
		t.Fatalf("p50 = %v, want within [2,4]", p)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("h")
	h.Observe(0)
	h.Observe(-5)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if h.Min() != -5 {
		t.Fatalf("min = %d, want -5", h.Min())
	}
	// Non-positive values share bucket 0; the estimate is clamped into the
	// observed [min, max] range.
	if p := h.Quantile(0.5); p < -5 || p > 0 {
		t.Fatalf("p50 = %v, want within [-5, 0]", p)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("d")
	h.ObserveDuration(3 * time.Millisecond)
	if h.Sum() != 3000 {
		t.Fatalf("sum = %d µs, want 3000", h.Sum())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("c")
	const workers = 8
	const per = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= per; i++ {
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 1 || h.Max() != per {
		t.Fatalf("min/max = %d/%d, want 1/%d", h.Min(), h.Max(), per)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("frames").Add(10)
	r.Gauge("fps").Set(60)
	r.Histogram("render_us").Observe(5000)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if snap["frames"] != float64(10) || snap["fps"] != float64(60) {
		t.Fatalf("snapshot = %v", snap)
	}
	hist, ok := snap["render_us"].(map[string]any)
	if !ok || hist["count"] != float64(1) {
		t.Fatalf("histogram snapshot = %v", snap["render_us"])
	}
	// The self-metric obs_dropped_label_sets_total is always registered.
	names := r.Names()
	want := []string{"fps", "frames", obs.DroppedLabelSetsName, "render_us"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}
