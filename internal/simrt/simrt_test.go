package simrt

import (
	"testing"
	"time"

	"odr/internal/sim"
)

func TestDomainTracksEnvClock(t *testing.T) {
	env := sim.NewEnv()
	dom := NewDomain(env)
	env.After(50*time.Millisecond, func() {
		if dom.Now() != 50*time.Millisecond {
			t.Errorf("Now = %v", dom.Now())
		}
	})
	env.RunAll()
	if dom.Env() != env {
		t.Fatal("Env() accessor broken")
	}
}

func TestCondBridgesToSignal(t *testing.T) {
	env := sim.NewEnv()
	dom := NewDomain(env)
	c := dom.NewCond()
	var woke time.Duration
	env.Spawn("waiter", func(p *sim.Proc) {
		w := NewWaiter(p)
		dom.Locker().Lock() // no-op, but exercises the interface contract
		w.Wait(c)
		dom.Locker().Unlock()
		woke = p.Now()
	})
	env.After(30*time.Millisecond, func() { c.Broadcast() })
	env.RunAll()
	env.Shutdown()
	if woke != 30*time.Millisecond {
		t.Fatalf("woke at %v", woke)
	}
}

func TestWaiterTimeout(t *testing.T) {
	env := sim.NewEnv()
	dom := NewDomain(env)
	c := dom.NewCond()
	var signaled bool
	env.Spawn("waiter", func(p *sim.Proc) {
		w := NewWaiter(p)
		signaled = w.WaitTimeout(c, 10*time.Millisecond)
	})
	env.RunAll()
	env.Shutdown()
	if signaled {
		t.Fatal("timeout misreported as signal")
	}
	if env.Now() != 10*time.Millisecond {
		t.Fatalf("clock at %v", env.Now())
	}
}

func TestWaiterSleep(t *testing.T) {
	env := sim.NewEnv()
	var woke time.Duration
	env.Spawn("sleeper", func(p *sim.Proc) {
		w := NewWaiter(p)
		w.Sleep(25 * time.Millisecond)
		woke = p.Now()
	})
	env.RunAll()
	env.Shutdown()
	if woke != 25*time.Millisecond {
		t.Fatalf("woke at %v", woke)
	}
}
