// Package simrt adapts the discrete-event simulation kernel (package sim) to
// the core.Domain/core.Waiter runtime abstraction, so the ODR components in
// package core run unmodified on virtual time.
package simrt

import (
	"sync"
	"time"

	"odr/internal/core"
	"odr/internal/sim"
)

// Domain is a core.Domain backed by a simulation environment. The kernel is
// single-threaded, so the domain lock is a no-op.
type Domain struct {
	env *sim.Env
}

// NewDomain wraps env as a core.Domain.
func NewDomain(env *sim.Env) *Domain { return &Domain{env: env} }

// Now implements core.Domain.
func (d *Domain) Now() time.Duration { return d.env.Now() }

// NewCond implements core.Domain; conds are simulation signals.
func (d *Domain) NewCond() core.Cond { return simCond{sig: sim.NewSignal(d.env)} }

// Locker implements core.Domain with a no-op lock.
func (d *Domain) Locker() sync.Locker { return core.NopLocker{} }

// Env returns the wrapped environment.
func (d *Domain) Env() *sim.Env { return d.env }

type simCond struct{ sig *sim.Signal }

func (c simCond) Broadcast() { c.sig.Broadcast() }

// Waiter is a core.Waiter bound to one simulation process. Each pipeline
// stage creates its own Waiter at the top of its process function.
type Waiter struct {
	proc *sim.Proc
}

// NewWaiter wraps p as a core.Waiter.
func NewWaiter(p *sim.Proc) *Waiter { return &Waiter{proc: p} }

// Sleep implements core.Waiter.
func (w *Waiter) Sleep(d time.Duration) { w.proc.Sleep(d) }

// Wait implements core.Waiter.
func (w *Waiter) Wait(c core.Cond) { w.proc.Wait(c.(simCond).sig) }

// WaitTimeout implements core.Waiter.
func (w *Waiter) WaitTimeout(c core.Cond, d time.Duration) bool {
	return w.proc.WaitTimeout(c.(simCond).sig, d)
}

// Compile-time interface checks.
var (
	_ core.Domain = (*Domain)(nil)
	_ core.Waiter = (*Waiter)(nil)
)
