// Package memmodel is the analytic stand-in for the paper's hardware PMU
// measurements (§4.3, §6.5): it maps the pipeline's concurrent
// memory-intensive activity (frame rendering, copying, encoding — each
// moving megabytes per frame) to a DRAM row-buffer miss rate, a DRAM read
// access time, and an achieved IPC.
//
// Mechanism reproduced: the processing steps run pipelined in their own
// threads, so higher frame rates raise the probability that several steps
// access DRAM simultaneously; simultaneous access causes row-buffer
// conflicts, which lengthen reads and depress IPC (§6.5). Lower IPC in turn
// slows the CPU-side steps (copy, encode) — the feedback that lets ODR's
// regulation *increase* client FPS by 5.5 % over NoReg (§6.3).
//
// Calibration anchors (paper values, InMind / 720p private cloud averages):
// NoReg miss rate ≈ 75 %, read ≈ 68 ns, regulated miss ≈ 66 %, read ≈ 47 ns;
// fleet-average IPC 0.66 (NoReg) → 0.71 (ODRMax) → 0.80 (ODR60).
package memmodel

import (
	"math"
	"time"
)

// Config holds the model's hardware-ish constants. Zero fields take the
// defaults in DefaultConfig (Skylake-X-era DDR4, matching the i7-7820x
// testbed).
type Config struct {
	// IPCPeak is the benchmark's uncontended instructions-per-cycle.
	IPCPeak float64
	// HitTime is the DRAM read time when the row buffer hits.
	HitTimeNs float64
	// MissPenalty is the added read time on a row-buffer miss (precharge +
	// activate), before queueing.
	MissPenaltyNs float64
	// BaseMissRate is the row-buffer miss rate with a single active stream.
	BaseMissRate float64
	// MaxMissRate bounds the miss rate under full contention.
	MaxMissRate float64
	// SaturationGBs is the activity level (GB/s of frame traffic) at which
	// contention saturates.
	SaturationGBs float64
	// MemSensitivity scales how strongly read latency depresses IPC.
	MemSensitivity float64
	// SlowdownRefNs is the read latency at which the CPU slowdown factor
	// is 1.0 (the workload medians are calibrated at regulated-pipeline
	// contention, so the reference sits at that operating point).
	SlowdownRefNs float64
	// SlowdownGain scales how strongly reads beyond the reference slow
	// the CPU-side pipeline steps.
	SlowdownGain float64
}

// DefaultConfig returns the calibrated constants.
func DefaultConfig() Config {
	return Config{
		IPCPeak:        0.80,
		HitTimeNs:      22,
		MissPenaltyNs:  42,
		BaseMissRate:   0.45,
		MaxMissRate:    0.93,
		SaturationGBs:  2.2,
		MemSensitivity: 0.55,
		SlowdownRefNs:  53,
		SlowdownGain:   0.40,
	}
}

// Activity summarizes one observation window of pipeline behaviour.
type Activity struct {
	// Rates of the memory-intensive steps, frames/second.
	RenderFPS float64
	CopyFPS   float64
	EncodeFPS float64
	// RawFrameBytes is the uncompressed frame size (pixels × 4).
	RawFrameBytes int
}

// TrafficGBs returns the modeled DRAM traffic of the window in GB/s.
// Rendering writes the framebuffer (and reads textures), copying reads and
// writes it, encoding reads it (and writes the much smaller bitstream).
func (a Activity) TrafficGBs() float64 {
	per := float64(a.RawFrameBytes) / 1e9
	return per * (1.6*a.RenderFPS + 2.0*a.CopyFPS + 1.3*a.EncodeFPS)
}

// Snapshot is the model's output for one window.
type Snapshot struct {
	MissRate   float64       // row-buffer miss rate, 0..1
	ReadTime   time.Duration // average DRAM read access time
	IPC        float64       // achieved instructions per cycle
	CPUFactor  float64       // CPU-step slowdown multiplier (>= 1)
	GPUFactor  float64       // GPU-step slowdown multiplier (>= 1)
	TrafficGBs float64       // modeled DRAM traffic
}

// Model maps windowed activity to DRAM behaviour. It keeps an exponentially
// weighted view so single windows do not cause discontinuities, mirroring
// how real row-buffer locality reacts over tens of milliseconds.
type Model struct {
	cfg    Config
	ewma   float64 // smoothed traffic GB/s
	inited bool
	last   Snapshot
}

// New returns a model with cfg (zero-valued fields replaced by defaults).
func New(cfg Config) *Model {
	def := DefaultConfig()
	if cfg.IPCPeak == 0 {
		cfg.IPCPeak = def.IPCPeak
	}
	if cfg.HitTimeNs == 0 {
		cfg.HitTimeNs = def.HitTimeNs
	}
	if cfg.MissPenaltyNs == 0 {
		cfg.MissPenaltyNs = def.MissPenaltyNs
	}
	if cfg.BaseMissRate == 0 {
		cfg.BaseMissRate = def.BaseMissRate
	}
	if cfg.MaxMissRate == 0 {
		cfg.MaxMissRate = def.MaxMissRate
	}
	if cfg.SaturationGBs == 0 {
		cfg.SaturationGBs = def.SaturationGBs
	}
	if cfg.MemSensitivity == 0 {
		cfg.MemSensitivity = def.MemSensitivity
	}
	if cfg.SlowdownRefNs == 0 {
		cfg.SlowdownRefNs = def.SlowdownRefNs
	}
	if cfg.SlowdownGain == 0 {
		cfg.SlowdownGain = def.SlowdownGain
	}
	m := &Model{cfg: cfg}
	m.last = m.compute(0)
	return m
}

// Update ingests one window's activity and returns the new snapshot.
func (m *Model) Update(a Activity) Snapshot {
	t := a.TrafficGBs()
	if !m.inited {
		m.ewma = t
		m.inited = true
	} else {
		m.ewma = 0.7*m.ewma + 0.3*t
	}
	m.last = m.compute(m.ewma)
	return m.last
}

// Current returns the latest snapshot.
func (m *Model) Current() Snapshot { return m.last }

func (m *Model) compute(trafficGBs float64) Snapshot {
	c := m.cfg
	// Contention index in [0, 1): probability-like measure of overlapping
	// streams, saturating with traffic.
	idx := 1 - math.Exp(-trafficGBs/c.SaturationGBs)
	miss := c.BaseMissRate + (c.MaxMissRate-c.BaseMissRate)*idx
	// Read time: hit/miss mix plus a queueing term that grows sharply with
	// contention (bank conflicts queue behind one another).
	queueNs := 70 * idx * idx * idx
	readNs := c.HitTimeNs + miss*c.MissPenaltyNs + queueNs
	// IPC: a simple memory-stall CPI model anchored at ~50 ns reads.
	const ipcRefNs = 50.0
	ipc := c.IPCPeak / (1 + c.MemSensitivity*math.Max(0, readNs-ipcRefNs)/ipcRefNs)
	if ipc > c.IPCPeak {
		ipc = c.IPCPeak
	}
	// CPU-side pipeline slowdown, referenced to the regulated operating
	// point (service-time medians are calibrated there).
	cpuFactor := 1 + c.SlowdownGain*math.Max(0, readNs-c.SlowdownRefNs)/c.SlowdownRefNs
	// GPU work has its own memory but shares the PCIe/host path for copies;
	// it feels a fraction of the contention.
	gpuFactor := 1 + 0.15*(cpuFactor-1)
	return Snapshot{
		MissRate:   miss,
		ReadTime:   time.Duration(readNs * float64(time.Nanosecond)),
		IPC:        ipc,
		CPUFactor:  cpuFactor,
		GPUFactor:  gpuFactor,
		TrafficGBs: trafficGBs,
	}
}
