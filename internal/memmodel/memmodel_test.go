package memmodel

import (
	"testing"
	"testing/quick"
)

func act(renderFPS, encodeFPS float64) Activity {
	return Activity{
		RenderFPS:     renderFPS,
		CopyFPS:       encodeFPS,
		EncodeFPS:     encodeFPS,
		RawFrameBytes: 1280 * 720 * 4,
	}
}

func TestMonotoneInActivity(t *testing.T) {
	low := New(Config{})
	high := New(Config{})
	var sLow, sHigh Snapshot
	for i := 0; i < 50; i++ { // let the EWMA settle
		sLow = low.Update(act(60, 60))
		sHigh = high.Update(act(190, 93))
	}
	if sHigh.MissRate <= sLow.MissRate {
		t.Fatalf("miss rate not monotone: %.3f <= %.3f", sHigh.MissRate, sLow.MissRate)
	}
	if sHigh.ReadTime <= sLow.ReadTime {
		t.Fatalf("read time not monotone: %v <= %v", sHigh.ReadTime, sLow.ReadTime)
	}
	if sHigh.IPC >= sLow.IPC {
		t.Fatalf("IPC not anti-monotone: %.3f >= %.3f", sHigh.IPC, sLow.IPC)
	}
	if sHigh.CPUFactor <= sLow.CPUFactor {
		t.Fatalf("CPU factor not monotone: %.3f <= %.3f", sHigh.CPUFactor, sLow.CPUFactor)
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// The paper's InMind anchors (§4.3): unregulated ~190/93 FPS gives
	// ~75% miss rate and ~68ns reads; regulated 60 FPS drops both.
	m := New(Config{IPCPeak: 0.62})
	var noreg Snapshot
	for i := 0; i < 60; i++ {
		noreg = m.Update(act(190, 93))
	}
	if noreg.MissRate < 0.65 || noreg.MissRate > 0.85 {
		t.Fatalf("NoReg miss rate = %.2f, want ~0.75", noreg.MissRate)
	}
	readNs := float64(noreg.ReadTime.Nanoseconds())
	if readNs < 60 || readNs > 85 {
		t.Fatalf("NoReg read time = %.1fns, want ~70", readNs)
	}

	m2 := New(Config{IPCPeak: 0.62})
	var reg Snapshot
	for i := 0; i < 60; i++ {
		reg = m2.Update(act(62, 60))
	}
	if reg.MissRate >= noreg.MissRate-0.05 {
		t.Fatalf("regulated miss %.2f not clearly below NoReg %.2f", reg.MissRate, noreg.MissRate)
	}
	ratio := float64(reg.ReadTime) / float64(noreg.ReadTime)
	if ratio > 0.88 {
		t.Fatalf("regulated/NoReg read-time ratio = %.2f, want <= ~0.85 (paper: 47/68)", ratio)
	}
}

func TestCPUFactorReferencedAtRegulatedPoint(t *testing.T) {
	m := New(Config{})
	var s Snapshot
	for i := 0; i < 60; i++ {
		s = m.Update(act(62, 60))
	}
	if s.CPUFactor < 1.0 || s.CPUFactor > 1.12 {
		t.Fatalf("regulated CPU factor = %.3f, want ~1.0", s.CPUFactor)
	}
}

func TestGPUFactorDampedVsCPU(t *testing.T) {
	m := New(Config{})
	var s Snapshot
	for i := 0; i < 60; i++ {
		s = m.Update(act(200, 95))
	}
	if s.GPUFactor <= 1.0 {
		t.Fatal("GPU factor should exceed 1 under contention")
	}
	if (s.GPUFactor - 1) >= (s.CPUFactor-1)*0.5 {
		t.Fatalf("GPU factor %.3f not damped relative to CPU factor %.3f", s.GPUFactor, s.CPUFactor)
	}
}

func TestEWMASmoothsSpikes(t *testing.T) {
	m := New(Config{})
	for i := 0; i < 50; i++ {
		m.Update(act(60, 60))
	}
	base := m.Current().MissRate
	spike := m.Update(act(400, 200)).MissRate
	var settled Snapshot
	for i := 0; i < 60; i++ {
		settled = m.Update(act(400, 200))
	}
	if spike >= settled.MissRate {
		t.Fatalf("single window jumped fully: %.3f >= %.3f", spike, settled.MissRate)
	}
	if spike <= base {
		t.Fatal("spike had no effect at all")
	}
}

func TestZeroActivity(t *testing.T) {
	m := New(Config{})
	s := m.Update(Activity{})
	if s.MissRate <= 0 || s.MissRate > 0.6 {
		t.Fatalf("idle miss rate = %.2f, want base level", s.MissRate)
	}
	if s.CPUFactor != 1 {
		t.Fatalf("idle CPU factor = %.3f, want 1", s.CPUFactor)
	}
	if s.IPC <= 0 {
		t.Fatal("idle IPC must be positive")
	}
}

func TestDefaultsApplied(t *testing.T) {
	m := New(Config{})
	def := DefaultConfig()
	if m.cfg.IPCPeak != def.IPCPeak || m.cfg.SaturationGBs != def.SaturationGBs {
		t.Fatalf("defaults not applied: %+v", m.cfg)
	}
	m2 := New(Config{IPCPeak: 0.9})
	if m2.cfg.IPCPeak != 0.9 {
		t.Fatal("explicit IPCPeak overridden")
	}
}

func TestTrafficModel(t *testing.T) {
	a := act(100, 50)
	got := a.TrafficGBs()
	per := float64(1280*720*4) / 1e9
	want := per * (1.6*100 + 2.0*50 + 1.3*50)
	if got != want {
		t.Fatalf("TrafficGBs = %v, want %v", got, want)
	}
}

// Property: outputs stay within physical bounds for arbitrary activity.
func TestSnapshotBoundsProperty(t *testing.T) {
	f := func(r, e uint16) bool {
		m := New(Config{})
		var s Snapshot
		for i := 0; i < 20; i++ {
			s = m.Update(act(float64(r%1000), float64(e%500)))
		}
		return s.MissRate >= 0 && s.MissRate <= 1 &&
			s.IPC > 0 && s.IPC <= m.cfg.IPCPeak+1e-9 &&
			s.CPUFactor >= 1 && s.GPUFactor >= 1 &&
			s.ReadTime > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
