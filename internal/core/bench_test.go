package core_test

import (
	"testing"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/realrt"
	"odr/internal/sim"
	"odr/internal/simrt"
)

// BenchmarkMultiBufferSimHandoff measures Put/Acquire/Release round trips on
// the simulation runtime.
func BenchmarkMultiBufferSimHandoff(b *testing.B) {
	env := sim.NewEnv()
	dom := simrt.NewDomain(env)
	mb := core.NewMultiBuffer(dom)
	f := &frame.Frame{}
	env.Spawn("producer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for i := 0; i < b.N; i++ {
			if !mb.Put(w, f) {
				return
			}
		}
	})
	done := 0
	env.Spawn("consumer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for done < b.N {
			if mb.Acquire(w) == nil {
				return
			}
			mb.Release()
			done++
		}
	})
	b.ResetTimer()
	env.RunAll()
	env.Shutdown()
	if done != b.N {
		b.Fatalf("done %d of %d", done, b.N)
	}
}

// BenchmarkMultiBufferRealHandoff measures the same round trip with real
// goroutines and the channel-cond runtime.
func BenchmarkMultiBufferRealHandoff(b *testing.B) {
	dom := realrt.NewDomain()
	mb := core.NewMultiBuffer(dom)
	f := &frame.Frame{}
	go func() {
		w := realrt.NewWaiter(dom)
		for i := 0; i < b.N; i++ {
			if !mb.Put(w, f) {
				return
			}
		}
	}()
	w := realrt.NewWaiter(dom)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mb.Acquire(w) == nil {
			b.Fatal("closed early")
		}
		mb.Release()
	}
	b.StopTimer()
	mb.Close()
}

// BenchmarkPacer measures the Algorithm 1 bookkeeping cost per frame.
func BenchmarkPacer(b *testing.B) {
	p := core.NewPacer(60)
	var now time.Duration
	for i := 0; i < b.N; i++ {
		start := now
		now += 9 * time.Millisecond
		now += p.PaceAfter(start, now)
	}
}

// BenchmarkInputBoxOnInput measures input observation cost (real runtime,
// as in the stream stack's input loop).
func BenchmarkInputBoxOnInput(b *testing.B) {
	dom := realrt.NewDomain()
	box := core.NewInputBox(dom)
	for i := 0; i < b.N; i++ {
		box.OnInput(frame.InputID(i+1), time.Duration(i))
		if i%8 == 7 {
			box.ConsumePending()
		}
	}
}
