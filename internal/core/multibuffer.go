package core

import (
	"odr/internal/frame"
)

// MultiBuffer is ODR's synchronization buffer between two pipeline stages
// (§5.1). It holds a front buffer (the frame the consumer works on) and a
// back buffer (the frame the producer fills next).
//
//   - The producer (Put) blocks while the back buffer is occupied — this is
//     how the 3D application "pauses its rendering until the buffers are
//     swapped".
//   - The consumer (Acquire) blocks while the front buffer is empty — this is
//     how the server proxy "pauses swapping to wait for it to be populated".
//   - The swap happens when the consumer releases the front buffer and the
//     back buffer is full (Release); the faster side therefore always waits
//     for the slower side, synchronizing the two stages' rates without any
//     timing feedback.
//
// PutPriority implements PriorityFrame's obsolete-frame dropping (§5.3): an
// input-triggered frame replaces any not-yet-consumed frames instead of
// waiting behind them.
type MultiBuffer struct {
	dom     Domain
	changed Cond

	front     *frame.Frame
	back      *frame.Frame
	consuming bool // front is currently held by the consumer
	closed    bool

	puts  int64
	drops int64

	// OnDrop, when non-nil, observes every PutPriority drop batch (n is
	// the number of obsolete frames discarded, at is the newest dropped
	// frame's sequence number). It is called with the domain lock held and
	// must not block or re-enter the buffer; the observability layer uses
	// it to emit MulBuf-drop events without polling Drops().
	OnDrop func(n int, at uint64)
}

// NewMultiBuffer returns an empty multi-buffer in the given domain.
func NewMultiBuffer(dom Domain) *MultiBuffer {
	return &MultiBuffer{dom: dom, changed: dom.NewCond()}
}

// promoteLocked moves the back buffer to the front when the front is free.
func (b *MultiBuffer) promoteLocked() {
	if b.front == nil && b.back != nil {
		b.front, b.back = b.back, nil
	}
}

// Put stores f into the back buffer, blocking the producer while the back
// buffer is occupied. It returns false if the buffer was closed while
// waiting.
func (b *MultiBuffer) Put(w Waiter, f *frame.Frame) bool {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for b.back != nil && !b.closed {
		w.Wait(b.changed)
	}
	if b.closed {
		return false
	}
	b.back = f
	b.puts++
	b.promoteLocked()
	b.changed.Broadcast()
	return true
}

// TryPut stores f if the back buffer is free, without blocking.
func (b *MultiBuffer) TryPut(f *frame.Frame) bool {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	if b.back != nil || b.closed {
		return false
	}
	b.back = f
	b.puts++
	b.promoteLocked()
	b.changed.Broadcast()
	return true
}

// PutPriority stores an input-triggered frame, dropping any frames that are
// buffered but not yet consumed (they are obsolete: they would be displayed
// before f, delaying it). It never blocks. It returns the dropped frames so
// the caller can account for them (e.g. carry their input stamps forward).
func (b *MultiBuffer) PutPriority(f *frame.Frame) []*frame.Frame {
	_, dropped := b.PutPriorityStored(f)
	return dropped
}

// PutPriorityStored is PutPriority with an explicit stored report: it returns
// whether f was accepted (false only when the buffer is closed) alongside the
// dropped frames. Callers that reference-count frame payloads need the
// distinction — PutPriority's nil result is ambiguous between "stored with no
// drops" and "buffer closed, frame discarded".
func (b *MultiBuffer) PutPriorityStored(f *frame.Frame) (stored bool, droppedFrames []*frame.Frame) {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	if b.closed {
		return false, nil
	}
	var dropped []*frame.Frame
	if b.back != nil {
		dropped = append(dropped, b.back)
		b.back = nil
	}
	if b.front != nil && !b.consuming {
		dropped = append(dropped, b.front)
		b.front = nil
	}
	if b.front == nil {
		b.front = f
	} else {
		b.back = f
	}
	b.puts++
	b.drops += int64(len(dropped))
	if b.OnDrop != nil && len(dropped) > 0 {
		b.OnDrop(len(dropped), dropped[len(dropped)-1].Seq)
	}
	b.changed.Broadcast()
	return true, dropped
}

// Acquire returns the front-buffer frame for processing, blocking the
// consumer while the front buffer is empty. The frame stays in the front
// buffer until Release; callers must pair every successful Acquire with a
// Release. Acquire returns nil if the buffer is closed.
func (b *MultiBuffer) Acquire(w Waiter) *frame.Frame {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for b.front == nil && !b.closed {
		w.Wait(b.changed)
	}
	if b.front == nil {
		return nil
	}
	b.consuming = true
	return b.front
}

// TryAcquire is Acquire without blocking.
func (b *MultiBuffer) TryAcquire() *frame.Frame {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	if b.front == nil {
		return nil
	}
	b.consuming = true
	return b.front
}

// Release marks the front-buffer frame as consumed and swaps the back buffer
// in (this is the "swap Mul-Buf" step of Algorithm 1). The producer, if
// blocked, is woken.
func (b *MultiBuffer) Release() {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	b.front = nil
	b.consuming = false
	b.promoteLocked()
	b.changed.Broadcast()
}

// Changed exposes the buffer's condition variable so that other components
// in the same domain (notably InputBox) can wake waiters: PriorityFrame
// cancels the renderer's buffer-swapping wait by broadcasting this cond when
// an input arrives.
func (b *MultiBuffer) Changed() Cond { return b.changed }

// WaitBackFree blocks until the back buffer is free (the renderer's
// "pause until the buffers are swapped", §5.1) or the buffer is closed.
// If interrupt is non-nil it is evaluated — with the domain lock held — at
// entry and after every wakeup; when it reports true, WaitBackFree returns
// false immediately (PriorityFrame canceling the rendering delay, §5.3).
// It returns true if the back buffer is free or the buffer closed.
func (b *MultiBuffer) WaitBackFree(w Waiter, interrupt func() bool) bool {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for b.back != nil && !b.closed {
		if interrupt != nil && interrupt() {
			return false
		}
		w.Wait(b.changed)
	}
	if interrupt != nil && interrupt() {
		return false
	}
	return true
}

// WaitBackFull blocks until the back buffer holds a frame (Algorithm 1 line
// 17, wait_for_Mul-Buf1_back_buf_full) or the buffer is closed. Note that
// with PriorityFrame a priority frame can land directly in the front buffer;
// WaitFrameReady covers that case and is what the ODR encode loop uses.
func (b *MultiBuffer) WaitBackFull(w Waiter) {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for b.back == nil && !b.closed {
		w.Wait(b.changed)
	}
}

// WaitFrameReady blocks until a frame is available in either buffer or the
// buffer is closed.
func (b *MultiBuffer) WaitFrameReady(w Waiter) {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for b.front == nil && b.back == nil && !b.closed {
		w.Wait(b.changed)
	}
}

// Close releases all waiters; subsequent Puts fail and Acquires return nil
// once drained.
func (b *MultiBuffer) Close() {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	b.closed = true
	b.changed.Broadcast()
}

// Closed reports whether Close has been called.
func (b *MultiBuffer) Closed() bool {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return b.closed
}

// Puts returns the number of frames stored (including priority puts).
func (b *MultiBuffer) Puts() int64 {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return b.puts
}

// Drops returns the number of obsolete frames dropped by PutPriority.
func (b *MultiBuffer) Drops() int64 {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return b.drops
}

// Occupancy returns how many frames are currently buffered (0, 1 or 2).
func (b *MultiBuffer) Occupancy() int {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	n := 0
	if b.front != nil {
		n++
	}
	if b.back != nil {
		n++
	}
	return n
}
