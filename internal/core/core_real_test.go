package core_test

import (
	"sync"
	"testing"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/realrt"
)

// These tests run the same core components on the real-time runtime with
// actual goroutines, validating the shared-code design (and, under -race,
// the locking discipline).

func TestMultiBufferRealTimeHandoff(t *testing.T) {
	dom := realrt.NewDomain()
	mb := core.NewMultiBuffer(dom)
	const n = 200
	var wg sync.WaitGroup
	wg.Add(2)
	var got []uint64
	go func() {
		defer wg.Done()
		w := realrt.NewWaiter(dom)
		for i := uint64(0); i < n; i++ {
			if !mb.Put(w, &frame.Frame{Seq: i}) {
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		w := realrt.NewWaiter(dom)
		for {
			f := mb.Acquire(w)
			if f == nil {
				return
			}
			got = append(got, f.Seq)
			mb.Release()
			if len(got) == n {
				return
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("real-time handoff deadlocked")
	}
	if len(got) != n {
		t.Fatalf("received %d frames, want %d", len(got), n)
	}
	for i := range got {
		if got[i] != uint64(i) {
			t.Fatalf("out of order at %d: %v", i, got[i])
		}
	}
}

func TestMultiBufferRealTimeCloseUnblocks(t *testing.T) {
	dom := realrt.NewDomain()
	mb := core.NewMultiBuffer(dom)
	done := make(chan struct{})
	go func() {
		w := realrt.NewWaiter(dom)
		if f := mb.Acquire(w); f != nil {
			t.Errorf("expected nil frame after close, got %+v", f)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	mb.Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire not unblocked by Close")
	}
}

func TestInputBoxRealTimeInterrupt(t *testing.T) {
	dom := realrt.NewDomain()
	box := core.NewInputBox(dom)
	result := make(chan bool, 1)
	go func() {
		w := realrt.NewWaiter(dom)
		result <- box.DelayInterruptible(w, 5*time.Second)
	}()
	time.Sleep(20 * time.Millisecond)
	box.OnInput(1, dom.Now())
	select {
	case interrupted := <-result:
		if !interrupted {
			t.Fatal("delay should have been interrupted by input")
		}
	case <-time.After(4 * time.Second):
		t.Fatal("DelayInterruptible did not return promptly after input")
	}
}

func TestInputBoxRealTimeTimeout(t *testing.T) {
	dom := realrt.NewDomain()
	box := core.NewInputBox(dom)
	w := realrt.NewWaiter(dom)
	start := time.Now()
	if box.DelayInterruptible(w, 30*time.Millisecond) {
		t.Fatal("no input was sent; delay should time out")
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("returned after %v, want >= ~30ms", elapsed)
	}
}

func TestMultiBufferRealTimePriorityConcurrent(t *testing.T) {
	dom := realrt.NewDomain()
	mb := core.NewMultiBuffer(dom)
	var wg sync.WaitGroup
	wg.Add(2)
	// Producer spamming refresh frames until the buffer closes.
	go func() {
		defer wg.Done()
		w := realrt.NewWaiter(dom)
		for i := uint64(0); ; i++ {
			if !mb.Put(w, &frame.Frame{Seq: i}) {
				return
			}
		}
	}()
	// Priority injector.
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			mb.PutPriority(&frame.Frame{Priority: true})
			time.Sleep(time.Millisecond)
		}
	}()
	// Consumer: run until it has seen 25 priority frames.
	var priorities int
	consumerDone := make(chan struct{})
	go func() {
		defer close(consumerDone)
		w := realrt.NewWaiter(dom)
		for priorities < 25 {
			f := mb.Acquire(w)
			if f == nil {
				return
			}
			if f.Priority {
				priorities++
			}
			mb.Release()
		}
	}()
	select {
	case <-consumerDone:
	case <-time.After(10 * time.Second):
		t.Fatal("concurrent priority test timed out")
	}
	mb.Close() // unblock the producer
	producersDone := make(chan struct{})
	go func() { wg.Wait(); close(producersDone) }()
	select {
	case <-producersDone:
	case <-time.After(5 * time.Second):
		t.Fatal("producers did not exit after Close")
	}
	if priorities < 25 {
		t.Fatalf("saw %d priority frames, want >= 25", priorities)
	}
}
