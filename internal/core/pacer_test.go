package core

import (
	"testing"
	"testing/quick"
	"time"
)

const ms = time.Millisecond

func TestPacerUnregulatedNeverDelays(t *testing.T) {
	p := NewPacer(0)
	for i := 0; i < 100; i++ {
		if d := p.PaceAfter(0, time.Duration(i)*ms); d != 0 {
			t.Fatalf("unregulated pacer requested delay %v", d)
		}
	}
	if p.Frames() != 100 {
		t.Fatalf("Frames = %d", p.Frames())
	}
}

func TestPacerFastFramesDelayedToInterval(t *testing.T) {
	p := NewPacer(60) // 16.67ms interval
	// A frame processed in 5ms must be followed by an ~11.67ms delay.
	d := p.PaceAfter(0, 5*ms)
	want := p.Interval() - 5*ms
	if d != want {
		t.Fatalf("delay = %v, want %v", d, want)
	}
	if p.AccDelay() != 0 {
		t.Fatalf("accDelay = %v, want 0 after sleep", p.AccDelay())
	}
}

func TestPacerSlowFrameAccumulatesDeficitThenAccelerates(t *testing.T) {
	p := NewPacer(60)
	iv := p.Interval()
	// Slow frame: 3 intervals long.
	if d := p.PaceAfter(0, 3*iv); d != 0 {
		t.Fatalf("slow frame must not be followed by delay, got %v", d)
	}
	if p.AccDelay() != -2*iv {
		t.Fatalf("accDelay = %v, want %v", p.AccDelay(), -2*iv)
	}
	// Two instant frames: still catching up, no delay.
	now := 3 * iv
	for i := 0; i < 2; i++ {
		if d := p.PaceAfter(now, now); d != 0 {
			t.Fatalf("catch-up frame %d delayed by %v", i, d)
		}
		// after each instant frame acc increases by iv
	}
	// Budget restored: next instant frame must be delayed a full interval.
	if d := p.PaceAfter(now, now); d != iv {
		t.Fatalf("post-catch-up delay = %v, want %v", d, iv)
	}
}

func TestPacerMeetsTargetOverWindow(t *testing.T) {
	// Simulate 1000 frames with processing time alternating 5ms and 25ms
	// (mean 15ms < 16.67ms interval): the wall time consumed (processing +
	// requested sleeps) must equal frames*interval within one interval.
	p := NewPacer(60)
	var now time.Duration
	n := 1000
	for i := 0; i < n; i++ {
		pt := 5 * ms
		if i%2 == 1 {
			pt = 25 * ms
		}
		start := now
		now += pt
		now += p.PaceAfter(start, now)
	}
	want := time.Duration(n) * p.Interval()
	diff := now - want
	if diff < -p.Interval() || diff > p.Interval() {
		t.Fatalf("elapsed %v, want %v ± one interval", now, want)
	}
}

func TestPacerDelayOnlyLosesTime(t *testing.T) {
	// Under delay-only (interval-based ablation), a slow frame's overrun is
	// never recovered: total elapsed exceeds frames*interval.
	p := NewPacer(60)
	p.SetDelayOnly(true)
	iv := p.Interval()
	var now time.Duration
	n := 100
	for i := 0; i < n; i++ {
		pt := 5 * ms
		if i%10 == 0 {
			pt = 3 * iv // periodic spike
		}
		start := now
		now += pt
		now += p.PaceAfter(start, now)
	}
	want := time.Duration(n) * iv
	if now <= want+10*iv {
		t.Fatalf("delay-only elapsed %v, expected well above %v", now, want)
	}
}

func TestPacerCreditBounded(t *testing.T) {
	p := NewPacer(60)
	// A 10-second stall must not accumulate more than ~1s of acceleration
	// credit.
	p.PaceAfter(0, 10*time.Second)
	if p.AccDelay() < -time.Second {
		t.Fatalf("accDelay = %v, want >= -1s", p.AccDelay())
	}
}

func TestPacerSetTargetFPS(t *testing.T) {
	p := NewPacer(0)
	p.SetTargetFPS(30)
	if p.Interval() != time.Second/30 {
		t.Fatalf("Interval = %v", p.Interval())
	}
	p.PaceAfter(0, time.Second) // build a deficit
	p.SetTargetFPS(60)
	if p.AccDelay() != 0 {
		t.Fatal("SetTargetFPS must reset the budget")
	}
	p.SetTargetFPS(0)
	if p.Interval() != 0 {
		t.Fatal("SetTargetFPS(0) must disable pacing")
	}
}

func TestPacerReset(t *testing.T) {
	p := NewPacer(60)
	p.PaceAfter(0, time.Second)
	if p.AccDelay() == 0 {
		t.Fatal("expected nonzero deficit")
	}
	p.Reset()
	if p.AccDelay() != 0 {
		t.Fatal("Reset must clear the budget")
	}
}

func TestPacerSkipFrameCountsFrame(t *testing.T) {
	p := NewPacer(60)
	p.SkipFrame()
	if p.Frames() != 1 {
		t.Fatalf("Frames = %d", p.Frames())
	}
	if p.AccDelay() != 0 {
		t.Fatalf("SkipFrame changed the budget: %v", p.AccDelay())
	}
}

// Property: the pacer never requests a negative delay, and after any
// sequence of frames the accumulated budget is within [-1s, 0].
func TestPacerInvariants(t *testing.T) {
	f := func(procTimesMs []uint16) bool {
		p := NewPacer(60)
		var now time.Duration
		for _, m := range procTimesMs {
			pt := time.Duration(m%200) * ms
			start := now
			now += pt
			d := p.PaceAfter(start, now)
			if d < 0 {
				return false
			}
			now += d
			if p.AccDelay() > 0 || p.AccDelay() < -time.Second {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with all frames faster than the interval, the pacer produces
// exactly one interval of wall time per frame.
func TestPacerExactRateProperty(t *testing.T) {
	f := func(procTimesMs []uint8) bool {
		p := NewPacer(100) // 10ms interval
		var now time.Duration
		n := 0
		for _, m := range procTimesMs {
			pt := time.Duration(m%10) * ms // always < interval
			start := now
			now += pt
			now += p.PaceAfter(start, now)
			n++
		}
		return now == time.Duration(n)*p.Interval()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
