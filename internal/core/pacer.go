package core

import "time"

// Pacer implements ODR's FPS regulator (Algorithm 1, §5.2). It tracks an
// accumulated delay budget:
//
//	acc_delay += interval - processing_time
//
// After each frame, if acc_delay is positive the caller should sleep for it
// (the stage is running ahead of the FPS target); if it is negative the
// deficit carries over and subsequent frames run back-to-back until the
// target rate is restored. This "acceleration" is the key difference from
// interval-based regulation, which can only delay and therefore loses frames
// permanently whenever a frame overruns its interval.
//
// A Pacer with TargetFPS 0 never requests a delay (the QoS goal "maximize
// FPS": ODRMax relies purely on multi-buffer backpressure).
//
// Pacer is not internally locked: in the simulator it runs single-threaded;
// in the stream stack it is owned by the single encoder goroutine.
type Pacer struct {
	interval  time.Duration
	accDelay  time.Duration
	delayOnly bool // ablation: clamp acc_delay at >= 0 (interval-based behaviour)
	maxCredit time.Duration

	frames int64
	slept  time.Duration

	// OnDelay, when non-nil, observes every positive pacing delay before
	// PaceAfterObserved returns it: end is the frame's processing end and d
	// the requested sleep. It runs on the pacing stage's thread of
	// execution and must not block; the observability layer uses it to emit
	// pacer-delay trace spans without the pacer knowing about tracing.
	// Plain PaceAfter ignores it.
	OnDelay func(end, d time.Duration)
}

// NewPacer returns a pacer targeting targetFPS (0 disables pacing).
func NewPacer(targetFPS float64) *Pacer {
	p := &Pacer{}
	if targetFPS > 0 {
		p.interval = time.Duration(float64(time.Second) / targetFPS)
		// Bound the acceleration credit to one second's worth of frames so
		// that a long stall does not cause an unbounded burst afterwards
		// (the paper's goal is meeting the target "for each small period").
		p.maxCredit = -time.Second
	}
	return p
}

// Interval returns the expected per-frame interval (0 when unregulated).
func (p *Pacer) Interval() time.Duration { return p.interval }

// SetDelayOnly switches the pacer to delay-only mode, the ablation that
// reproduces interval-based regulation's behaviour inside ODR's pipeline.
func (p *Pacer) SetDelayOnly(v bool) { p.delayOnly = v }

// PaceAfter records that a frame's processing spanned [start, end] and
// returns the delay the caller should apply before the next frame (lines
// 10-16 of Algorithm 1). The returned delay is zero while the stage is
// catching up.
func (p *Pacer) PaceAfter(start, end time.Duration) time.Duration {
	p.frames++
	if p.interval == 0 {
		return 0
	}
	procTime := end - start
	p.accDelay += p.interval - procTime
	if p.accDelay < p.maxCredit {
		p.accDelay = p.maxCredit
	}
	if p.delayOnly && p.accDelay < 0 {
		p.accDelay = 0
	}
	if p.accDelay > 0 {
		d := p.accDelay
		p.accDelay = 0
		p.slept += d
		return d
	}
	return 0
}

// PaceAfterObserved is PaceAfter plus the OnDelay observer hook. The
// regulation pipelines call this variant so that plain PaceAfter stays
// branch-free for callers that never attach observers.
func (p *Pacer) PaceAfterObserved(start, end time.Duration) time.Duration {
	d := p.PaceAfter(start, end)
	if d > 0 && p.OnDelay != nil {
		p.OnDelay(end, d)
	}
	return d
}

// SkipFrame consumes one interval from the budget without any processing
// having happened, used when a priority frame bypasses pacing so that the
// regulator does not later "catch up" for it.
func (p *Pacer) SkipFrame() {
	if p.interval == 0 {
		return
	}
	p.frames++
}

// AccDelay exposes the current budget for tests and introspection.
func (p *Pacer) AccDelay() time.Duration { return p.accDelay }

// Frames returns the number of frames paced.
func (p *Pacer) Frames() int64 { return p.frames }

// TotalSlept returns the cumulative requested delay.
func (p *Pacer) TotalSlept() time.Duration { return p.slept }

// Reset clears the accumulated budget (used at stream start or after a
// target change).
func (p *Pacer) Reset() { p.accDelay = 0 }

// SetTargetFPS changes the target at runtime (0 disables pacing).
func (p *Pacer) SetTargetFPS(fps float64) {
	if fps > 0 {
		p.interval = time.Duration(float64(time.Second) / fps)
		p.maxCredit = -time.Second
	} else {
		p.interval = 0
		p.maxCredit = 0
	}
	p.accDelay = 0
}
