package core

import (
	"time"

	"odr/internal/frame"
)

// InputStamp aliases frame.InputStamp: one pending user input awaiting a
// responding frame.
type InputStamp = frame.InputStamp

// InputBox implements the application-side half of PriorityFrame (§5.3): it
// observes user inputs (the paper intercepts XNextEvent), combines pending
// inputs the way the benchmarks' main loops do, and cancels the rendering
// delay so the input-triggered frame renders immediately.
//
// The renderer calls DelayInterruptible instead of a plain sleep: an input
// arriving during the delay wakes the renderer at once. Before rendering a
// frame it calls ConsumePending to tag the frame with all combined inputs.
type InputBox struct {
	dom     Domain
	arrived Cond

	pending []InputStamp
	total   int64

	// subscribers are additional conds broadcast on every input, letting
	// components in the same domain (e.g. a MultiBuffer the renderer is
	// blocked on) wake their waiters when an input arrives.
	subscribers []Cond
}

// NewInputBox returns an empty input box in the given domain.
func NewInputBox(dom Domain) *InputBox {
	return &InputBox{dom: dom, arrived: dom.NewCond()}
}

// OnInput records a user input and wakes any renderer blocked in
// DelayInterruptible. Safe to call from any goroutine in the real-time
// domain and from any kernel context in the simulation domain.
func (b *InputBox) OnInput(id frame.InputID, issued time.Duration) {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	b.pending = append(b.pending, InputStamp{ID: id, Issued: issued})
	b.total++
	b.arrived.Broadcast()
	for _, c := range b.subscribers {
		c.Broadcast()
	}
}

// Subscribe registers an additional cond (from the same domain) to be
// broadcast whenever an input arrives.
func (b *InputBox) Subscribe(c Cond) {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	b.subscribers = append(b.subscribers, c)
}

// PendingLocked reports whether any input is pending. The caller must
// already hold the domain lock (used as a WaitBackFree interrupt predicate).
func (b *InputBox) PendingLocked() bool { return len(b.pending) > 0 }

// HasPending reports whether any input awaits a responding frame.
func (b *InputBox) HasPending() bool {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return len(b.pending) > 0
}

// ConsumePending removes and returns all pending inputs (oldest first).
// The renderer combines them into the next frame, which responds to all of
// them (position/posture combining, §5.3).
func (b *InputBox) ConsumePending() []InputStamp {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	out := b.pending
	b.pending = nil
	return out
}

// Total returns the number of inputs ever observed.
func (b *InputBox) Total() int64 {
	mu := b.dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return b.total
}

// DelayInterruptible delays the renderer for d, returning early if an input
// arrives (or is already pending). It reports whether it was cut short by an
// input. A non-positive d returns immediately with the pending status.
func (b *InputBox) DelayInterruptible(w Waiter, d time.Duration) bool {
	mu := b.dom.Locker()
	mu.Lock()
	if len(b.pending) > 0 {
		mu.Unlock()
		return true
	}
	if d <= 0 {
		mu.Unlock()
		return false
	}
	deadline := b.dom.Now() + d
	for {
		remaining := deadline - b.dom.Now()
		if remaining <= 0 {
			mu.Unlock()
			return false
		}
		signaled := w.WaitTimeout(b.arrived, remaining)
		if signaled && len(b.pending) > 0 {
			mu.Unlock()
			return true
		}
		if !signaled {
			mu.Unlock()
			return false
		}
		// Spurious wake (input consumed by a racing check): loop.
	}
}

// Tag stamps f with the given combined inputs: the oldest input defines the
// frame's motion-to-photon reference, and the frame is marked as a priority
// frame.
func Tag(f *frame.Frame, inputs []InputStamp) {
	if len(inputs) == 0 {
		return
	}
	f.Input = inputs[0].ID
	f.InputTime = inputs[0].Issued
	f.Priority = true
	f.Inputs = append(f.Inputs, inputs...)
}
