// Package core implements the paper's contribution — OnDemand Rendering
// (ODR) — as three reusable components:
//
//   - MultiBuffer: the front/back frame buffers that synchronize adjacent
//     pipeline stages by swap-blocking (§5.1, Mul-Buf1 and Mul-Buf2).
//   - Pacer: the FPS regulator of Algorithm 1, which delays *and accelerates*
//     frame processing via an accumulated-delay budget (§5.2).
//   - InputBox: input observation, pending-input combining and the
//     interruptible render delay behind PriorityFrame (§5.3).
//
// All three are written against the small Domain/Waiter runtime abstraction
// below, so the identical code runs inside the deterministic discrete-event
// simulator (package pipeline, via package simrt) and inside the real-time
// streaming stack (package stream, via package realrt). This mirrors the
// paper's implementation strategy of hooking the same logic into
// glXSwapBuffers/XNextEvent regardless of the 3D application.
package core

import (
	"sync"
	"time"
)

// Cond is a broadcast condition variable. How Broadcast must be called is
// defined by the Domain that created it: with the real-time domain the
// caller must hold the domain lock; with the simulation domain any kernel
// context works (the lock is a no-op there).
type Cond interface {
	Broadcast()
}

// Domain supplies time and synchronization primitives for one shared-state
// domain (one pipeline). Components guard their state with Locker() and
// block on Conds created by NewCond.
type Domain interface {
	// Now returns the current time as an offset from the run's start.
	Now() time.Duration
	// NewCond creates a condition variable tied to this domain's lock.
	NewCond() Cond
	// Locker returns the domain lock. The simulation domain returns a
	// no-op locker (the kernel is single-threaded); the real-time domain
	// returns a real mutex shared by all components in the domain.
	Locker() sync.Locker
}

// Waiter is the per-thread-of-execution blocking handle: a simulation
// process or a real goroutine. Components receive the caller's Waiter on
// every blocking call.
type Waiter interface {
	// Sleep suspends the caller for d.
	Sleep(d time.Duration)
	// Wait blocks until c is broadcast. The caller must hold the domain
	// lock; Wait releases it while blocked and reacquires it before
	// returning.
	Wait(c Cond)
	// WaitTimeout is Wait with a deadline; it reports whether the cond
	// was broadcast (true) or the timeout expired (false).
	WaitTimeout(c Cond, d time.Duration) bool
}

// NopLocker is a sync.Locker that does nothing; used by single-threaded
// (simulation) domains.
type NopLocker struct{}

// Lock implements sync.Locker.
func (NopLocker) Lock() {}

// Unlock implements sync.Locker.
func (NopLocker) Unlock() {}
