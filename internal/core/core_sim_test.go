package core_test

import (
	"testing"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/sim"
	"odr/internal/simrt"
)

const ms = time.Millisecond

// newSim returns a fresh simulation environment and its core domain.
func newSim() (*sim.Env, *simrt.Domain) {
	env := sim.NewEnv()
	return env, simrt.NewDomain(env)
}

func TestMultiBufferProducerBlocksUntilRelease(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	var putTimes []time.Duration
	env.Spawn("producer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for i := uint64(1); i <= 3; i++ {
			mb.Put(w, &frame.Frame{Seq: i})
			putTimes = append(putTimes, p.Now())
		}
	})
	env.Spawn("consumer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for i := 0; i < 3; i++ {
			f := mb.Acquire(w)
			if f == nil {
				t.Error("nil frame")
				return
			}
			p.Sleep(10 * ms) // encode
			mb.Release()
		}
	})
	env.RunAll()
	env.Shutdown()
	// Put #1 at t=0 (front), #2 at t=0 (back). Put #3 must wait until the
	// consumer releases #1 at t=10ms and the back is promoted.
	if putTimes[0] != 0 || putTimes[1] != 0 {
		t.Fatalf("first puts at %v, want immediate", putTimes[:2])
	}
	if putTimes[2] != 10*ms {
		t.Fatalf("third put at %v, want 10ms", putTimes[2])
	}
}

func TestMultiBufferConsumerBlocksUntilPut(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	var acquiredAt time.Duration
	env.Spawn("consumer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		f := mb.Acquire(w)
		acquiredAt = p.Now()
		if f.Seq != 7 {
			t.Errorf("Seq = %d", f.Seq)
		}
		mb.Release()
	})
	env.Spawn("producer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		p.Sleep(25 * ms)
		mb.Put(w, &frame.Frame{Seq: 7})
	})
	env.RunAll()
	env.Shutdown()
	if acquiredAt != 25*ms {
		t.Fatalf("acquired at %v, want 25ms", acquiredAt)
	}
}

func TestMultiBufferRateSynchronization(t *testing.T) {
	// Fast producer (5ms/frame) + slow consumer (20ms/frame): after a run,
	// produced ~= consumed (+2 buffered) and zero frames dropped. This is
	// the §5.1 claim: the faster side naturally pauses for the slower one.
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	produced, consumed := 0, 0
	env.Spawn("producer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for {
			p.Sleep(5 * ms) // render
			if !mb.Put(w, &frame.Frame{}) {
				return
			}
			produced++
		}
	})
	env.Spawn("consumer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for {
			f := mb.Acquire(w)
			if f == nil {
				return
			}
			p.Sleep(20 * ms) // encode
			mb.Release()
			consumed++
		}
	})
	env.Run(2 * time.Second)
	env.Shutdown()
	// Consumer rate: 50/s => ~100 consumed in 2s.
	if consumed < 95 || consumed > 101 {
		t.Fatalf("consumed = %d, want ~100", consumed)
	}
	if produced-consumed > 2 {
		t.Fatalf("produced %d vs consumed %d: producer was not throttled", produced, consumed)
	}
	if mb.Drops() != 0 {
		t.Fatalf("drops = %d, want 0", mb.Drops())
	}
}

func TestMultiBufferPutPriorityDropsObsolete(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	env.Spawn("test", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		mb.Put(w, &frame.Frame{Seq: 1}) // front
		mb.Put(w, &frame.Frame{Seq: 2}) // back
		dropped := mb.PutPriority(&frame.Frame{Seq: 3, Priority: true})
		if len(dropped) != 2 {
			t.Errorf("dropped = %d frames, want 2 (both unconsumed frames)", len(dropped))
		}
		f := mb.Acquire(w)
		if f.Seq != 3 {
			t.Errorf("acquired Seq = %d, want priority frame 3", f.Seq)
		}
		mb.Release()
	})
	env.RunAll()
	env.Shutdown()
	if mb.Drops() != 2 {
		t.Fatalf("Drops = %d", mb.Drops())
	}
}

func TestMultiBufferPutPriorityPreservesConsumingFrame(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	env.Spawn("test", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		mb.Put(w, &frame.Frame{Seq: 1})
		got := mb.Acquire(w) // consumer working on Seq 1
		if got.Seq != 1 {
			t.Errorf("Seq = %d", got.Seq)
		}
		dropped := mb.PutPriority(&frame.Frame{Seq: 2, Priority: true})
		if len(dropped) != 0 {
			t.Errorf("dropped = %v, want none (frame being consumed is not obsolete)", dropped)
		}
		mb.Release()
		next := mb.Acquire(w)
		if next.Seq != 2 {
			t.Errorf("next Seq = %d, want 2", next.Seq)
		}
		mb.Release()
	})
	env.RunAll()
	env.Shutdown()
}

func TestMultiBufferCloseUnblocksEveryone(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	var consumerGotNil, producerFailed bool
	env.Spawn("consumer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		consumerGotNil = mb.Acquire(w) == nil
	})
	env.Spawn("producer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		mb.Put(w, &frame.Frame{Seq: 1})
		mb.Put(w, &frame.Frame{Seq: 2})
		producerFailed = !mb.Put(w, &frame.Frame{Seq: 3}) // blocks until close
	})
	env.After(50*ms, func() { mb.Close() })
	env.RunAll()
	env.Shutdown()
	if consumerGotNil {
		t.Fatal("consumer should have received frame 1, not nil")
	}
	if !producerFailed {
		t.Fatal("blocked producer should have failed on Close")
	}
	if !mb.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestMultiBufferAcquireNilAfterCloseAndDrain(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	var second *frame.Frame
	sentinel := &frame.Frame{Seq: 99}
	second = sentinel
	env.Spawn("test", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		mb.Put(w, &frame.Frame{Seq: 1})
		mb.Close()
		f := mb.Acquire(w)
		if f == nil || f.Seq != 1 {
			t.Error("frame buffered before Close must still drain")
		}
		mb.Release()
		second = mb.Acquire(w)
	})
	env.RunAll()
	env.Shutdown()
	if second != nil {
		t.Fatal("Acquire after close+drain must return nil")
	}
}

func TestMultiBufferTryVariants(t *testing.T) {
	env, dom := newSim()
	mb := core.NewMultiBuffer(dom)
	if mb.TryAcquire() != nil {
		t.Fatal("TryAcquire on empty buffer should return nil")
	}
	if !mb.TryPut(&frame.Frame{Seq: 1}) || !mb.TryPut(&frame.Frame{Seq: 2}) {
		t.Fatal("two TryPuts into an empty buffer should succeed")
	}
	if mb.TryPut(&frame.Frame{Seq: 3}) {
		t.Fatal("third TryPut should fail: back buffer occupied")
	}
	if f := mb.TryAcquire(); f == nil || f.Seq != 1 {
		t.Fatalf("TryAcquire = %+v", f)
	}
	if mb.Occupancy() != 2 {
		t.Fatalf("Occupancy = %d", mb.Occupancy())
	}
	env.Shutdown()
}

func TestInputBoxCombinesPendingInputs(t *testing.T) {
	env, dom := newSim()
	box := core.NewInputBox(dom)
	box.OnInput(1, 10*ms)
	box.OnInput(2, 20*ms)
	box.OnInput(3, 30*ms)
	if !box.HasPending() {
		t.Fatal("HasPending = false")
	}
	inputs := box.ConsumePending()
	if len(inputs) != 3 || inputs[0].ID != 1 || inputs[2].ID != 3 {
		t.Fatalf("ConsumePending = %+v", inputs)
	}
	if box.HasPending() {
		t.Fatal("pending not cleared")
	}
	if box.Total() != 3 {
		t.Fatalf("Total = %d", box.Total())
	}
	f := &frame.Frame{Seq: 1}
	core.Tag(f, inputs)
	if !f.Priority || f.Input != 1 || f.InputTime != 10*ms || len(f.Inputs) != 3 {
		t.Fatalf("Tag result: %+v", f)
	}
	env.Shutdown()
}

func TestTagNoInputsIsNoop(t *testing.T) {
	f := &frame.Frame{Seq: 5}
	core.Tag(f, nil)
	if f.Priority || f.Input != 0 || len(f.Inputs) != 0 {
		t.Fatalf("Tag(nil) modified frame: %+v", f)
	}
}

func TestInputBoxDelayInterruptedByInput(t *testing.T) {
	env, dom := newSim()
	box := core.NewInputBox(dom)
	var interrupted bool
	var at time.Duration
	env.Spawn("renderer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		interrupted = box.DelayInterruptible(w, 100*ms)
		at = p.Now()
	})
	env.After(30*ms, func() { box.OnInput(1, 30*ms) })
	env.RunAll()
	env.Shutdown()
	if !interrupted || at != 30*ms {
		t.Fatalf("interrupted=%v at=%v, want true at 30ms", interrupted, at)
	}
}

func TestInputBoxDelayExpiresWithoutInput(t *testing.T) {
	env, dom := newSim()
	box := core.NewInputBox(dom)
	var interrupted bool
	var at time.Duration
	env.Spawn("renderer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		interrupted = box.DelayInterruptible(w, 40*ms)
		at = p.Now()
	})
	env.RunAll()
	env.Shutdown()
	if interrupted || at != 40*ms {
		t.Fatalf("interrupted=%v at=%v, want false at 40ms", interrupted, at)
	}
}

func TestInputBoxDelayReturnsImmediatelyWhenPending(t *testing.T) {
	env, dom := newSim()
	box := core.NewInputBox(dom)
	box.OnInput(1, 0)
	var interrupted bool
	var at time.Duration
	env.Spawn("renderer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		interrupted = box.DelayInterruptible(w, 100*ms)
		at = p.Now()
	})
	env.RunAll()
	env.Shutdown()
	if !interrupted || at != 0 {
		t.Fatalf("interrupted=%v at=%v, want true at 0", interrupted, at)
	}
}

func TestInputBoxZeroDelay(t *testing.T) {
	env, dom := newSim()
	box := core.NewInputBox(dom)
	var got bool
	env.Spawn("renderer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		got = box.DelayInterruptible(w, 0)
	})
	env.RunAll()
	env.Shutdown()
	if got {
		t.Fatal("zero delay with no pending input should report false")
	}
}

func TestOdrEncodeLoopEndToEndSim(t *testing.T) {
	// Wire renderer -> MulBuf1 -> encoder(Pacer) -> MulBuf2 -> sender in
	// the simulator and check the encoder hits a 60FPS target while the
	// renderer could run at 200FPS.
	env, dom := newSim()
	buf1 := core.NewMultiBuffer(dom)
	buf2 := core.NewMultiBuffer(dom)
	pacer := core.NewPacer(60)
	encoded, sent := 0, 0
	env.Spawn("renderer", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for seq := uint64(0); ; seq++ {
			p.Sleep(5 * ms) // 200FPS-capable renderer
			if !buf1.Put(w, &frame.Frame{Seq: seq}) {
				return
			}
		}
	})
	env.Spawn("encoder", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for {
			f := buf1.Acquire(w)
			if f == nil {
				return
			}
			start := p.Now()
			p.Sleep(4 * ms) // encode time
			if !buf2.Put(w, f) {
				return
			}
			encoded++
			if d := pacer.PaceAfter(start, p.Now()); d > 0 {
				p.Sleep(d)
			}
			buf1.Release()
		}
	})
	env.Spawn("sender", func(p *sim.Proc) {
		w := simrt.NewWaiter(p)
		for {
			f := buf2.Acquire(w)
			if f == nil {
				return
			}
			p.Sleep(2 * ms) // transmit
			buf2.Release()
			sent++
		}
	})
	env.Run(5 * time.Second)
	env.Shutdown()
	// 60FPS for 5s => ~300 frames.
	if encoded < 295 || encoded > 305 {
		t.Fatalf("encoded = %d, want ~300 (60FPS target)", encoded)
	}
	if sent < encoded-2 {
		t.Fatalf("sent = %d, encoded = %d", sent, encoded)
	}
}
