package ansi

import (
	"strings"
	"testing"
)

func solidFrame(w, h int, r, g, b byte) []byte {
	pix := make([]byte, w*h*4)
	for i := 0; i < len(pix); i += 4 {
		pix[i], pix[i+1], pix[i+2], pix[i+3] = r, g, b, 255
	}
	return pix
}

func TestFrameShape(t *testing.T) {
	re := NewRenderer(32, 18, 16, 4)
	out := re.Frame(solidFrame(32, 18, 10, 20, 30))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want 4", len(lines))
	}
	if got := strings.Count(out, "▀"); got != 16*4 {
		t.Fatalf("blocks = %d, want 64", got)
	}
	if !strings.Contains(out, "38;2;10;20;30") {
		t.Fatalf("solid color missing from output")
	}
	if !strings.HasSuffix(lines[0], "\x1b[0m") {
		t.Fatal("rows must reset color")
	}
}

func TestFrameWrongSize(t *testing.T) {
	re := NewRenderer(32, 18, 16, 4)
	if re.Frame(make([]byte, 7)) != "" {
		t.Fatal("wrong-size frame should render empty")
	}
}

func TestFrameDistinguishesTopAndBottom(t *testing.T) {
	// Top half red, bottom half blue; a single text row must use different
	// fg (top) and bg (bottom) colors.
	const w, h = 8, 4
	pix := make([]byte, w*h*4)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := (y*w + x) * 4
			if y < h/2 {
				pix[i] = 255
			} else {
				pix[i+2] = 255
			}
			pix[i+3] = 255
		}
	}
	re := NewRenderer(w, h, 4, 1)
	out := re.Frame(pix)
	if !strings.Contains(out, "38;2;255;0;0") || !strings.Contains(out, "48;2;0;0;255") {
		t.Fatalf("top/bottom colors not separated: %q", out)
	}
}

func TestDefaultsAndHelpers(t *testing.T) {
	re := NewRenderer(16, 9, 0, 0)
	if re.cols != 80 || re.rows != 22 {
		t.Fatalf("defaults = %dx%d", re.cols, re.rows)
	}
	if Home() == "" || Clear() == "" {
		t.Fatal("helpers empty")
	}
}

func BenchmarkFrame(b *testing.B) {
	re := NewRenderer(320, 180, 80, 22)
	pix := solidFrame(320, 180, 100, 150, 200)
	b.SetBytes(int64(len(pix)))
	for i := 0; i < b.N; i++ {
		re.Frame(pix)
	}
}
