// Package ansi renders RGBA frames as ANSI terminal art using 24-bit color
// half-block characters (▀ with independent foreground/background colors
// packs two pixel rows per text row). It gives the streaming client a
// zero-dependency live view of the decoded video.
package ansi

import (
	"fmt"
	"strings"
)

// Renderer converts frames of a fixed source size to terminal art of a
// fixed character size, with simple box sampling.
type Renderer struct {
	srcW, srcH int
	cols, rows int
	b          strings.Builder
}

// NewRenderer returns a renderer mapping srcW×srcH RGBA frames onto
// cols×rows terminal cells (each cell shows 1×2 sampled pixels). cols/rows
// default to 80×22 when zero.
func NewRenderer(srcW, srcH, cols, rows int) *Renderer {
	if cols <= 0 {
		cols = 80
	}
	if rows <= 0 {
		rows = 22
	}
	return &Renderer{srcW: srcW, srcH: srcH, cols: cols, rows: rows}
}

// sample averages the RGBA pixels of the source rectangle.
func (r *Renderer) sample(pix []byte, x0, y0, x1, y1 int) (uint8, uint8, uint8) {
	if x1 <= x0 {
		x1 = x0 + 1
	}
	if y1 <= y0 {
		y1 = y0 + 1
	}
	var sr, sg, sb, n int
	for y := y0; y < y1 && y < r.srcH; y++ {
		row := y * r.srcW * 4
		for x := x0; x < x1 && x < r.srcW; x++ {
			i := row + x*4
			sr += int(pix[i])
			sg += int(pix[i+1])
			sb += int(pix[i+2])
			n++
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	return uint8(sr / n), uint8(sg / n), uint8(sb / n)
}

// Frame renders one RGBA frame (len must be srcW*srcH*4) to a string of
// ANSI-colored half blocks, terminated with a color reset.
func (r *Renderer) Frame(pix []byte) string {
	if len(pix) != r.srcW*r.srcH*4 {
		return ""
	}
	r.b.Reset()
	// Each text row covers two sampled pixel rows.
	for row := 0; row < r.rows; row++ {
		yTop0 := (row * 2) * r.srcH / (r.rows * 2)
		yTop1 := (row*2 + 1) * r.srcH / (r.rows * 2)
		yBot0 := yTop1
		yBot1 := (row*2 + 2) * r.srcH / (r.rows * 2)
		for col := 0; col < r.cols; col++ {
			x0 := col * r.srcW / r.cols
			x1 := (col + 1) * r.srcW / r.cols
			tr, tg, tb := r.sample(pix, x0, yTop0, x1, yTop1)
			br, bg, bb := r.sample(pix, x0, yBot0, x1, yBot1)
			fmt.Fprintf(&r.b, "\x1b[38;2;%d;%d;%dm\x1b[48;2;%d;%d;%dm▀", tr, tg, tb, br, bg, bb)
		}
		r.b.WriteString("\x1b[0m\n")
	}
	return r.b.String()
}

// Home returns the ANSI sequence that moves the cursor to the top-left so
// consecutive frames overdraw in place.
func Home() string { return "\x1b[H" }

// Clear returns the ANSI clear-screen sequence.
func Clear() string { return "\x1b[2J\x1b[H" }
