package regulator

import (
	"testing"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/netsim"
	"odr/internal/sim"
	"odr/internal/simrt"
)

const ms = time.Millisecond

type fixture struct {
	env     *sim.Env
	ctx     *Ctx
	dropped []*frame.Frame
}

func newFixture(netParams netsim.Params) *fixture {
	env := sim.NewEnv()
	dom := simrt.NewDomain(env)
	f := &fixture{env: env}
	f.ctx = &Ctx{
		Env:    env,
		Dom:    dom,
		Link:   netsim.NewLink(netParams, 1),
		Inputs: core.NewInputBox(dom),
		Buffer: 1 << 20,
		OnDrop: func(fr *frame.Frame) { f.dropped = append(f.dropped, fr) },
	}
	return f
}

func defaultNet() netsim.Params {
	return netsim.Params{RTT: 2 * ms, Jitter: 0.05, Bandwidth: 100e6 / 8, BufferBytes: 1 << 20}
}

func TestMailboxLatestWins(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewNoReg(f.ctx)
	var got *frame.Frame
	f.env.Spawn("producer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		p.SubmitRendered(w, &frame.Frame{Seq: 1})
		p.SubmitRendered(w, &frame.Frame{Seq: 2})
		p.SubmitRendered(w, &frame.Frame{Seq: 3})
	})
	f.env.Spawn("consumer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		pr.Sleep(ms)
		got = p.AcquireForEncode(w)
	})
	f.env.RunAll()
	f.env.Shutdown()
	if got == nil || got.Seq != 3 {
		t.Fatalf("got %+v, want latest frame (Seq 3)", got)
	}
	if len(f.dropped) != 2 {
		t.Fatalf("dropped %d frames, want 2", len(f.dropped))
	}
}

func TestNoRegNeverGates(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewNoReg(f.ctx)
	var gateTime time.Duration
	f.env.Spawn("renderer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		for i := 0; i < 100; i++ {
			p.RenderGate(w)
		}
		gateTime = pr.Now()
	})
	f.env.RunAll()
	f.env.Shutdown()
	if gateTime != 0 {
		t.Fatalf("NoReg gates consumed %v of virtual time", gateTime)
	}
}

func TestIntervalGateAlignsToGrid(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewInterval(f.ctx, 100) // 10ms grid
	var starts []time.Duration
	f.env.Spawn("renderer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		for i := 0; i < 5; i++ {
			p.RenderGate(w)
			starts = append(starts, pr.Now())
			pr.Sleep(3 * ms) // render faster than the interval
		}
	})
	f.env.RunAll()
	f.env.Shutdown()
	for i, s := range starts {
		if s%(10*ms) != 0 {
			t.Fatalf("render %d started off-grid at %v", i, s)
		}
	}
}

func TestIntervalOverrunSkipsGridSlots(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewInterval(f.ctx, 100)
	var starts []time.Duration
	f.env.Spawn("renderer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		p.RenderGate(w)
		starts = append(starts, pr.Now())
		pr.Sleep(25 * ms) // overruns 2.5 intervals
		p.RenderGate(w)
		starts = append(starts, pr.Now())
	})
	f.env.RunAll()
	f.env.Shutdown()
	// The first render starts on the first grid slot (10ms). Its 25ms
	// render runs to 35ms, so the 20ms and 30ms slots are lost forever
	// (the §4.1 pathology) and the next start is 40ms.
	if starts[0] != 10*ms {
		t.Fatalf("first start = %v, want 10ms", starts[0])
	}
	if starts[1] != 40*ms {
		t.Fatalf("post-overrun start = %v, want 40ms", starts[1])
	}
}

func TestIntMaxRatchetsDownNeverUp(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewInterval(f.ctx, 0)
	if !p.adaptive {
		t.Fatal("IntMax should be adaptive")
	}
	p.OnWindow(100, 50) // gap of 50: slow down toward 50
	first := p.CurrentIntervalMs()
	if first < 19 || first > 22 {
		t.Fatalf("interval after first violation = %.1fms, want ~20.7", first)
	}
	p.OnWindow(52, 50) // gap below threshold: no change
	if p.CurrentIntervalMs() != first {
		t.Fatal("small gap should not adjust")
	}
	p.OnWindow(100, 80) // another violation: must not speed up
	if p.CurrentIntervalMs() < first {
		t.Fatal("IntMax sped up — it must only ratchet down")
	}
	for i := 0; i < 1000; i++ {
		p.OnWindow(100, 20)
	}
	if p.TargetFPS() < 10-1e-9 {
		t.Fatalf("ratchet went below the 10FPS floor: %.1f", p.TargetFPS())
	}
}

func TestIntervalProxyPollAddsLatency(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewInterval(f.ctx, 100) // 10ms grid
	var acquired time.Duration
	f.env.Spawn("producer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		pr.Sleep(12 * ms)
		p.SubmitRendered(w, &frame.Frame{Seq: 1})
	})
	f.env.Spawn("proxy", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		p.AcquireForEncode(w)
		acquired = pr.Now()
	})
	f.env.RunAll()
	f.env.Shutdown()
	// Frame ready at 12ms; the proxy grabs it at the next poll tick, 20ms.
	if acquired != 20*ms {
		t.Fatalf("acquired at %v, want 20ms (next poll tick)", acquired)
	}
}

func TestRVSDisplayOnVblankAndDrop(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewRVS(f.ctx, 60, 0.25)
	fr1 := &frame.Frame{Seq: 1}
	disp1, ok1 := p.DisplayTime(fr1, 20*ms)
	if !ok1 {
		t.Fatal("first frame dropped")
	}
	period := time.Second / 60
	if disp1 != 2*period { // next vblank after 20ms is 33.3ms
		t.Fatalf("display at %v, want %v", disp1, 2*period)
	}
	// A frame decoding within the same vblank window is dropped.
	if _, ok := p.DisplayTime(&frame.Frame{Seq: 2}, 21*ms); ok {
		t.Fatal("same-vblank frame should be dropped")
	}
	if len(f.dropped) != 1 {
		t.Fatalf("dropped = %d, want 1", len(f.dropped))
	}
	// The next vblank is free again.
	if _, ok := p.DisplayTime(&frame.Frame{Seq: 3}, 35*ms); !ok {
		t.Fatal("next-vblank frame should display")
	}
}

func TestRVSFeedbackDelaysRender(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewRVS(f.ctx, 60, 1.0)
	// Consume the priming tokens and stall the gate, then deliver display
	// feedback and check the gate resumes with the cc-scaled delay.
	var gateDone time.Duration
	f.env.Spawn("renderer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		// One more gate than the priming-token depth, so the last gate
		// must wait for real feedback.
		for i := 0; i < 5; i++ {
			p.RenderGate(w)
		}
		gateDone = pr.Now()
	})
	f.env.Spawn("client", func(pr *sim.Proc) {
		pr.Sleep(5 * ms)
		p.DisplayTime(&frame.Frame{Seq: 1}, pr.Now())
	})
	f.env.RunAll()
	f.env.Shutdown()
	if p.FeedbackSent() != 1 {
		t.Fatalf("feedback sent = %d", p.FeedbackSent())
	}
	if p.CurrentDelay() <= 0 {
		t.Fatal("feedback did not set a render delay")
	}
	if gateDone <= 5*ms {
		t.Fatalf("gate finished at %v: 4th render should wait for feedback", gateDone)
	}
}

func TestODRLabels(t *testing.T) {
	f := newFixture(defaultNet())
	cases := []struct {
		opts ODROptions
		want string
	}{
		{ODROptions{}, "ODRMax"},
		{ODROptions{TargetFPS: 60}, "ODR60"},
		{ODROptions{TargetFPS: 30}, "ODR30"},
		{ODROptions{DisablePriority: true}, "ODRMax-noPri"},
		{ODROptions{TargetFPS: 60, DelayOnly: true}, "ODR60-delayOnly"},
		{ODROptions{DisableMulBuf2: true}, "ODRMax-noBuf2"},
	}
	for _, c := range cases {
		if got := NewODR(f.ctx, c.opts).Name(); got != c.want {
			t.Errorf("label = %q, want %q", got, c.want)
		}
	}
	f.env.Shutdown()
}

func TestOtherLabels(t *testing.T) {
	f := newFixture(defaultNet())
	if NewNoReg(f.ctx).Name() != "NoReg" {
		t.Fatal("NoReg label")
	}
	if NewInterval(f.ctx, 60).Name() != "Int60" {
		t.Fatal("Int60 label")
	}
	if NewInterval(f.ctx, 0).Name() != "IntMax" {
		t.Fatal("IntMax label")
	}
	if NewRVS(f.ctx, 60, 0).Name() != "RVS60" {
		t.Fatal("RVS60 label")
	}
	if NewRVS(f.ctx, 240, 0).Name() != "RVSMax" {
		t.Fatal("RVSMax label")
	}
	f.env.Shutdown()
}

func TestODRPriorityFrameJumpsQueue(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewODR(f.ctx, ODROptions{TargetFPS: 60})
	var order []uint64
	f.env.Spawn("renderer", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		p.SubmitRendered(w, &frame.Frame{Seq: 1})
		pr.Sleep(2 * ms) // let the proxy start encoding frame 1
		p.SubmitRendered(w, &frame.Frame{Seq: 2})
		// An input-triggered frame arrives: it must replace Seq 2 (queued,
		// un-encoded) while frame 1, already being encoded, survives.
		p.SubmitRendered(w, &frame.Frame{Seq: 3, Priority: true})
	})
	f.env.Spawn("proxy", func(pr *sim.Proc) {
		w := simrt.NewWaiter(pr)
		pr.Sleep(ms)
		for i := 0; i < 2; i++ {
			fr := p.AcquireForEncode(w)
			if fr == nil {
				return
			}
			order = append(order, fr.Seq)
			pr.Sleep(2 * ms)
			p.SubmitEncoded(w, fr, pr.Now()-2*ms)
		}
	})
	f.env.Run(200 * ms)
	f.env.Shutdown()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("encode order = %v, want [1 3] (priority frame replaced 2)", order)
	}
	// Frame 2 is dropped un-encoded from Mul-Buf1; frame 1, encoded but
	// never transmitted (no network stage in this fixture), is dropped from
	// Mul-Buf2 when the priority frame replaces it there too.
	var seqs []uint64
	for _, d := range f.dropped {
		seqs = append(seqs, d.Seq)
	}
	if len(seqs) != 2 || seqs[0] != 2 || seqs[1] != 1 {
		t.Fatalf("dropped = %v, want [2 1]", seqs)
	}
}

func TestODRSendBacklogZeroWithMulBuf2(t *testing.T) {
	f := newFixture(defaultNet())
	p := NewODR(f.ctx, ODROptions{})
	if p.SendBacklog() != 0 {
		t.Fatal("Mul-Buf2 backlog must be 0")
	}
	f.env.Shutdown()
}

func TestSendBufTailDropsAndCounts(t *testing.T) {
	f := newFixture(netsim.Params{RTT: 2 * ms, Bandwidth: 1e6, BufferBytes: 100 << 10})
	f.ctx.Buffer = 100 << 10
	p := NewNoReg(f.ctx)
	var w core.Waiter
	f.env.Spawn("proxy", func(pr *sim.Proc) {
		w = simrt.NewWaiter(pr)
		for i := 0; i < 5; i++ {
			p.SubmitEncoded(w, &frame.Frame{Seq: uint64(i), Bytes: 30 << 10}, 0)
		}
	})
	f.env.RunAll()
	f.env.Shutdown()
	// 100KB buffer fits 3 x 30KB; 2 dropped.
	if len(f.dropped) != 2 {
		t.Fatalf("dropped %d, want 2", len(f.dropped))
	}
	if p.QueuedBytes() != 90<<10 {
		t.Fatalf("QueuedBytes = %d", p.QueuedBytes())
	}
}

func TestPoliciesCloseCleanly(t *testing.T) {
	f := newFixture(defaultNet())
	policies := []Policy{
		NewNoReg(f.ctx),
		NewInterval(f.ctx, 60),
		NewRVS(f.ctx, 60, 0),
		NewODR(f.ctx, ODROptions{TargetFPS: 60}),
	}
	var unblocked int
	for _, p := range policies {
		p := p
		f.env.Spawn("enc", func(pr *sim.Proc) {
			w := simrt.NewWaiter(pr)
			if p.AcquireForEncode(w) == nil {
				unblocked++
			}
		})
		f.env.Spawn("net", func(pr *sim.Proc) {
			w := simrt.NewWaiter(pr)
			if p.AcquireForSend(w) == nil {
				unblocked++
			}
		})
	}
	f.env.After(10*ms, func() {
		for _, p := range policies {
			p.Close()
		}
	})
	f.env.RunAll()
	f.env.Shutdown()
	if unblocked != len(policies)*2 {
		t.Fatalf("unblocked %d of %d stage waits", unblocked, len(policies)*2)
	}
}

func TestODRAutoStepsDownAndRecovers(t *testing.T) {
	f := newFixture(defaultNet())
	a := NewODRAuto(f.ctx, 60, 20)
	if a.Name() != "ODRAuto60" {
		t.Fatalf("label = %q", a.Name())
	}
	if a.Target() != 60 {
		t.Fatalf("initial target = %v", a.Target())
	}
	// Three windows well below target: step down.
	for i := 0; i < 3; i++ {
		a.OnWindow(60, 40)
	}
	if a.Target() >= 60 {
		t.Fatalf("target did not step down: %v", a.Target())
	}
	down := a.Target()
	// Ten windows at target: step back up.
	for i := 0; i < 10; i++ {
		a.OnWindow(down, down)
	}
	if a.Target() <= down {
		t.Fatalf("target did not recover: %v", a.Target())
	}
	// Sustained collapse bottoms out at the floor.
	for i := 0; i < 200; i++ {
		a.OnWindow(60, 5)
	}
	if a.Target() < 20-1e-9 {
		t.Fatalf("target fell below the floor: %v", a.Target())
	}
	// The pacer must track the controller.
	if got := float64(time.Second) / float64(a.Pacer().Interval()); got != a.Target() {
		t.Fatalf("pacer at %.1f FPS, controller at %.1f", got, a.Target())
	}
	f.env.Shutdown()
}

func TestODRAutoIgnoresEmptyWindows(t *testing.T) {
	f := newFixture(defaultNet())
	a := NewODRAuto(f.ctx, 60, 0)
	for i := 0; i < 10; i++ {
		a.OnWindow(0, 0)
	}
	if a.Target() != 60 {
		t.Fatalf("empty windows moved the target to %v", a.Target())
	}
	f.env.Shutdown()
}
