package regulator

import (
	"fmt"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
)

// ODROptions selects the ODR variant.
type ODROptions struct {
	// TargetFPS is the QoS goal; 0 means maximize FPS (ODRMax), in which
	// case the pacer never delays and multi-buffer backpressure alone
	// synchronizes the pipeline to its bottleneck rate.
	TargetFPS float64
	// DisablePriority turns PriorityFrame off (the Table 2 "ODRMax-noPri"
	// configuration).
	DisablePriority bool
	// DelayOnly clamps the pacer's budget at zero — the ablation that
	// keeps ODR's buffers but degrades Algorithm 1 to interval-based
	// delay-only behaviour.
	DelayOnly bool
	// DisableMulBuf2 replaces Mul-Buf2 with the push policies' tail-drop
	// send buffer — the ablation isolating the backpressure mechanism that
	// prevents network-queue congestion.
	DisableMulBuf2 bool
}

// ODR is OnDemand Rendering (§5): Mul-Buf1 between application and proxy,
// Mul-Buf2 between proxy and network, the Algorithm 1 pacer around the
// encode step, and PriorityFrame for input-triggered frames.
type ODR struct {
	ctx   *Ctx
	opts  ODROptions
	label string

	buf1  *core.MultiBuffer
	buf2  *core.MultiBuffer
	sb    *sendBuf // only with DisableMulBuf2
	pacer *core.Pacer
}

// NewODR returns an ODR policy with the given options.
func NewODR(ctx *Ctx, opts ODROptions) *ODR {
	o := &ODR{
		ctx:   ctx,
		opts:  opts,
		buf1:  core.NewMultiBuffer(ctx.Dom),
		buf2:  core.NewMultiBuffer(ctx.Dom),
		pacer: core.NewPacer(opts.TargetFPS),
	}
	if opts.DelayOnly {
		o.pacer.SetDelayOnly(true)
	}
	if opts.DisableMulBuf2 {
		o.sb = newSendBuf(ctx)
	}
	if opts.TargetFPS > 0 {
		o.label = fmt.Sprintf("ODR%d", int(opts.TargetFPS))
	} else {
		o.label = "ODRMax"
	}
	if opts.DisablePriority {
		o.label += "-noPri"
	}
	if opts.DelayOnly {
		o.label += "-delayOnly"
	}
	if opts.DisableMulBuf2 {
		o.label += "-noBuf2"
	}
	// PriorityFrame part 1: an input arrival must cancel the renderer's
	// buffer-swapping wait, so input broadcasts wake Mul-Buf1 waiters.
	if !opts.DisablePriority {
		ctx.Inputs.Subscribe(o.buf1.Changed())
	}
	return o
}

// Name implements Policy.
func (o *ODR) Name() string { return o.label }

// RenderGate implements Policy: the renderer's only delay is waiting for a
// free back buffer in Mul-Buf1; with PriorityFrame enabled a pending input
// cancels that wait and marks the next frame as a priority frame.
func (o *ODR) RenderGate(w core.Waiter) bool {
	if o.opts.DisablePriority {
		o.buf1.WaitBackFree(w, nil)
		return false
	}
	free := o.buf1.WaitBackFree(w, o.ctx.Inputs.PendingLocked)
	return !free
}

// SubmitRendered implements Policy: priority frames replace obsolete
// un-encoded frames; refresh frames use the ordinary blocking Put.
func (o *ODR) SubmitRendered(w core.Waiter, f *frame.Frame) {
	if f.Priority && !o.opts.DisablePriority {
		for _, d := range o.buf1.PutPriority(f) {
			o.ctx.drop(d)
		}
		return
	}
	o.buf1.Put(w, f)
}

// AcquireForEncode implements Policy.
func (o *ODR) AcquireForEncode(w core.Waiter) *frame.Frame {
	return o.buf1.Acquire(w)
}

// SubmitEncoded implements Policy: store to Mul-Buf2 (waiting for its swap —
// the backpressure that keeps the network queue at depth ≤ 2), apply the
// Algorithm 1 pacing, then swap Mul-Buf1. Priority frames skip the pacing
// sleep entirely ("encoding and network transmission without any delay").
func (o *ODR) SubmitEncoded(w core.Waiter, f *frame.Frame, encodeStart time.Duration) {
	if o.opts.DisableMulBuf2 {
		o.sb.push(f)
	} else if f.Priority && !o.opts.DisablePriority {
		for _, d := range o.buf2.PutPriority(f) {
			o.ctx.drop(d)
		}
	} else {
		o.buf2.Put(w, f)
	}
	if f.Priority && !o.opts.DisablePriority {
		o.pacer.SkipFrame()
	} else if d := o.pacer.PaceAfterObserved(encodeStart, o.ctx.Dom.Now()); d > 0 {
		w.Sleep(d)
	}
	o.buf1.Release()
}

// AcquireForSend implements Policy.
func (o *ODR) AcquireForSend(w core.Waiter) *frame.Frame {
	if o.opts.DisableMulBuf2 {
		return o.sb.pop(w)
	}
	return o.buf2.Acquire(w)
}

// DoneSend implements Policy: releasing Mul-Buf2 only after transmission
// completes extends the backpressure across the network's serialization
// time.
func (o *ODR) DoneSend(*frame.Frame) {
	if !o.opts.DisableMulBuf2 {
		o.buf2.Release()
	}
}

// DisplayTime implements Policy: immediate display.
func (o *ODR) DisplayTime(_ *frame.Frame, decodeEnd time.Duration) (time.Duration, bool) {
	return decodeEnd, true
}

// OnWindow implements Policy.
func (o *ODR) OnWindow(renderFPS, clientFPS float64) {}

// SendBacklog implements Policy: Mul-Buf2 holds at most one pending frame.
func (o *ODR) SendBacklog() int {
	if o.opts.DisableMulBuf2 {
		return o.sb.depthBytes()
	}
	return 0
}

// Pacer exposes the regulator state for tests and diagnostics.
func (o *ODR) Pacer() *core.Pacer { return o.pacer }

// BufferDrops returns the obsolete frames dropped by PriorityFrame.
func (o *ODR) BufferDrops() int64 { return o.buf1.Drops() + o.buf2.Drops() }

// Close implements Policy.
func (o *ODR) Close() {
	o.buf1.Close()
	o.buf2.Close()
	if o.sb != nil {
		o.sb.close()
	}
}

// MaxBacklogBytes implements MaxBacklogger: with Mul-Buf2 the backlog is at
// most one frame; the ablation's send buffer reports its high-water mark.
func (o *ODR) MaxBacklogBytes() int {
	if o.opts.DisableMulBuf2 {
		return o.sb.maxBytes()
	}
	return 0
}
