// Package regulator implements the FPS-regulation policies evaluated in the
// paper, for use inside the discrete-event pipeline simulator:
//
//   - NoReg: no regulation (§4.1) — rendering free-runs, excess frames drop.
//   - Interval: interval-based software regulation (§2, §4.1), in fixed-FPS
//     (Int30/Int60) and adaptive maximize-FPS (IntMax) flavours.
//   - RVS: Remote VSync (§2, §4.1) — vblank-slack feedback from the client
//     delays rendering, scaled by the cc low-pass filter.
//   - ODR: OnDemand Rendering (§5) — multi-buffering, the accelerate-or-delay
//     pacer of Algorithm 1, and PriorityFrame; with switches for the
//     ODRMax-noPri and ablation variants.
//
// A Policy supplies the hook points of the pipeline's stages. The stages
// call them in this order:
//
//	renderer: RenderGate -> (render) -> SubmitRendered
//	proxy:    AcquireForEncode -> (copy+encode) -> SubmitEncoded
//	network:  AcquireForSend -> (transmit) -> DoneSend
//	client:   (decode) -> DisplayTime
package regulator

import (
	"time"

	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/netsim"
	"odr/internal/sim"
	"odr/internal/simrt"
)

// Ctx gives policies access to the simulation environment and the shared
// input box (the pipeline owns both).
type Ctx struct {
	Env    *sim.Env
	Dom    *simrt.Domain
	Link   *netsim.Link         // used by RVS for the feedback path delay
	Inputs *core.InputBox       // server-side pending user inputs
	Buffer int                  // send-buffer capacity in bytes (push policies)
	OnDrop func(f *frame.Frame) // invoked whenever a frame is discarded
}

func (c *Ctx) drop(f *frame.Frame) {
	if c.OnDrop != nil {
		c.OnDrop(f)
	}
}

// Policy is one FPS-regulation strategy.
type Policy interface {
	// Name returns the configuration label ("NoReg", "ODR60", ...).
	Name() string

	// RenderGate blocks the renderer until it may render the next frame.
	// It reports whether the frame should be treated as a priority
	// (input-triggered) frame.
	RenderGate(w core.Waiter) (priority bool)

	// SubmitRendered hands a rendered frame toward the proxy. It may block
	// (ODR's Mul-Buf1) or drop an older frame (NoReg's latest-wins slot).
	SubmitRendered(w core.Waiter, f *frame.Frame)

	// AcquireForEncode blocks the proxy until a frame is ready; nil means
	// the pipeline is shutting down.
	AcquireForEncode(w core.Waiter) *frame.Frame

	// SubmitEncoded hands an encoded frame toward the network and applies
	// any post-encode pacing (ODR's Algorithm 1 sleep). encodeStart is
	// when the proxy began working on the frame.
	SubmitEncoded(w core.Waiter, f *frame.Frame, encodeStart time.Duration)

	// AcquireForSend blocks the network until a frame is ready to
	// transmit; nil means shutdown.
	AcquireForSend(w core.Waiter) *frame.Frame

	// DoneSend tells the policy the transmission completed (ODR releases
	// Mul-Buf2 here so its backpressure covers transmission time).
	DoneSend(f *frame.Frame)

	// DisplayTime maps a frame's decode-completion time to its display
	// time (RVS displays on the next vblank; others display immediately).
	// The second result is false if the client discards the frame (RVS
	// drops frames that lost their vblank slot).
	DisplayTime(f *frame.Frame, decodeEnd time.Duration) (time.Duration, bool)

	// OnWindow feeds windowed cloud-render and client FPS observations to
	// adaptive policies (IntMax).
	OnWindow(renderFPS, clientFPS float64)

	// SendBacklog reports the bytes queued ahead of the network stage.
	// A deep backlog means the transport is congested: the network model
	// charges extra serialization time for retransmissions and contention
	// (ODR's Mul-Buf2 keeps this at, at most, one frame).
	SendBacklog() int

	// Close releases all blocked stages.
	Close()
}

// mailbox is the latest-wins single-frame slot used by the push policies
// (NoReg, Interval, RVS) between renderer and proxy: a newer frame
// overwrites an un-encoded older one, which is exactly how excessive
// rendering turns into dropped frames and wasted work.
type mailbox struct {
	ctx    *Ctx
	cond   core.Cond
	f      *frame.Frame
	closed bool
}

func newMailbox(ctx *Ctx) *mailbox {
	return &mailbox{ctx: ctx, cond: ctx.Dom.NewCond()}
}

func (m *mailbox) putLatest(f *frame.Frame) {
	mu := m.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	if m.closed {
		return
	}
	if m.f != nil {
		m.ctx.drop(m.f)
	}
	m.f = f
	m.cond.Broadcast()
}

func (m *mailbox) take(w core.Waiter) *frame.Frame {
	mu := m.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for m.f == nil && !m.closed {
		w.Wait(m.cond)
	}
	f := m.f
	m.f = nil
	return f
}

func (m *mailbox) close() {
	mu := m.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// sendBuf is the byte-capacity tail-drop send buffer used by the push
// policies between proxy and network: the socket/bottleneck queue whose
// depth is the source of NoReg's congestion latency.
type sendBuf struct {
	ctx    *Ctx
	cond   core.Cond
	q      *netsim.ByteQueue[*frame.Frame]
	closed bool
}

func newSendBuf(ctx *Ctx) *sendBuf {
	capBytes := ctx.Buffer
	return &sendBuf{
		ctx:  ctx,
		cond: ctx.Dom.NewCond(),
		q:    netsim.NewByteQueue[*frame.Frame](capBytes),
	}
}

func (s *sendBuf) push(f *frame.Frame) {
	mu := s.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	if s.closed {
		return
	}
	if !s.q.Push(f, f.Bytes) {
		s.ctx.drop(f)
		return
	}
	s.cond.Broadcast()
}

func (s *sendBuf) pop(w core.Waiter) *frame.Frame {
	mu := s.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	for s.q.Len() == 0 && !s.closed {
		w.Wait(s.cond)
	}
	f, _ := s.q.Pop()
	return f
}

func (s *sendBuf) close() {
	mu := s.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	s.closed = true
	s.cond.Broadcast()
}

func (s *sendBuf) depthBytes() int {
	mu := s.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return s.q.Bytes()
}

func (s *sendBuf) maxBytes() int {
	mu := s.ctx.Dom.Locker()
	mu.Lock()
	defer mu.Unlock()
	return s.q.MaxBytes()
}

// MaxBacklogger is implemented by policies that buffer encoded frames ahead
// of the network; the pipeline reports the high-water mark as a congestion
// diagnostic.
type MaxBacklogger interface {
	MaxBacklogBytes() int
}
