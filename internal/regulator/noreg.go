package regulator

import (
	"time"

	"odr/internal/core"
	"odr/internal/frame"
)

// NoReg is the unregulated baseline (§4.1): the renderer free-runs, the
// proxy always encodes the newest rendered frame (older un-encoded frames
// are discarded), and encoded frames are pushed into the send buffer where
// they queue or tail-drop. This is the configuration whose FPS gap wastes
// power and whose send-queue buildup produces multi-second MtP latency on
// bandwidth-limited paths.
type NoReg struct {
	box *mailbox
	sb  *sendBuf
}

// NewNoReg returns the NoReg policy.
func NewNoReg(ctx *Ctx) *NoReg {
	return &NoReg{box: newMailbox(ctx), sb: newSendBuf(ctx)}
}

// Name implements Policy.
func (n *NoReg) Name() string { return "NoReg" }

// RenderGate implements Policy: no gating at all.
func (n *NoReg) RenderGate(core.Waiter) bool { return false }

// SubmitRendered implements Policy with latest-wins semantics.
func (n *NoReg) SubmitRendered(_ core.Waiter, f *frame.Frame) { n.box.putLatest(f) }

// AcquireForEncode implements Policy.
func (n *NoReg) AcquireForEncode(w core.Waiter) *frame.Frame { return n.box.take(w) }

// SubmitEncoded implements Policy: push to the send buffer, no pacing.
func (n *NoReg) SubmitEncoded(_ core.Waiter, f *frame.Frame, _ time.Duration) { n.sb.push(f) }

// AcquireForSend implements Policy.
func (n *NoReg) AcquireForSend(w core.Waiter) *frame.Frame { return n.sb.pop(w) }

// DoneSend implements Policy.
func (n *NoReg) DoneSend(*frame.Frame) {}

// DisplayTime implements Policy: display immediately on decode (no VSync,
// so tearing is possible).
func (n *NoReg) DisplayTime(_ *frame.Frame, decodeEnd time.Duration) (time.Duration, bool) {
	return decodeEnd, true
}

// OnWindow implements Policy.
func (n *NoReg) OnWindow(renderFPS, clientFPS float64) {}

// SendBacklog implements Policy.
func (n *NoReg) SendBacklog() int { return n.sb.depthBytes() }

// Close implements Policy.
func (n *NoReg) Close() {
	n.box.close()
	n.sb.close()
}

// QueuedBytes exposes the send-buffer depth (diagnostics: congestion).
func (n *NoReg) QueuedBytes() int { return n.sb.depthBytes() }

// MaxBacklogBytes implements MaxBacklogger.
func (n *NoReg) MaxBacklogBytes() int { return n.sb.maxBytes() }
