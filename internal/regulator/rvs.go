package regulator

import (
	"fmt"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
)

// RVS is Remote VSync [49] (§2, §4.1): VSync extended across the network.
// The client displays frames on its vblank boundaries; after each displayed
// frame it measures the slack between the end of decoding and the next
// vblank and sends it to the cloud. The cloud releases the next frame's
// rendering only when this remote vblank feedback arrives, additionally
// delaying it by cc × slack — cc being the empirically tuned low-pass filter
// that keeps the stale (one network trip old) slack from over-delaying
// rendering.
//
// Because every render waits for feedback that is a full one-way trip stale,
// and because processing-time variation keeps breaking the alignment, the
// achieved FPS sits measurably below the refresh rate (54 on a 60 Hz display
// for InMind, §4.1) and below the pipeline's capability in RVSMax mode
// (76 vs 93 on a 240 Hz display).
type RVS struct {
	ctx   *Ctx
	label string
	box   *mailbox
	sb    *sendBuf

	period time.Duration // vblank period = 1/refresh
	cc     float64

	// Server-side feedback state: tokens released by arriving feedback
	// messages and the latest slack-derived delay.
	tokens    int
	tokenCap  int
	delay     time.Duration
	tokenCond core.Cond
	closed    bool

	// Client-side display state.
	lastVblankUsed time.Duration

	feedbackSent int64
}

// NewRVS returns a Remote VSync policy for a client display with the given
// refresh rate. cc <= 0 selects the default 0.35.
func NewRVS(ctx *Ctx, refreshHz float64, cc float64) *RVS {
	label := fmt.Sprintf("RVS%d", int(refreshHz))
	if refreshHz >= 200 {
		// The paper maximizes FPS by pairing RVS with a 240 Hz display.
		label = "RVSMax"
	}
	if cc <= 0 {
		// The paper tunes the low-pass filter per setup (§5.4); these are
		// the values our calibration found for 60 Hz and high-refresh
		// displays respectively.
		if refreshHz >= 200 {
			cc = 1.0
		} else {
			cc = 0.25
		}
	}
	// Feedback pipelining depth: how many renders may be in flight per
	// un-acknowledged vblank. Deeper pipelining recovers faster from
	// slipped vblanks on ordinary displays; high-refresh displays issue
	// feedback often enough that depth 2 suffices (part of the per-setup
	// tuning the paper describes).
	cap := 4
	if refreshHz >= 200 {
		cap = 2
	}
	return &RVS{
		ctx:       ctx,
		label:     label,
		box:       newMailbox(ctx),
		sb:        newSendBuf(ctx),
		period:    time.Duration(float64(time.Second) / refreshHz),
		cc:        cc,
		tokens:    cap, // prime the pipeline: first frames render unguarded
		tokenCap:  cap,
		tokenCond: ctx.Dom.NewCond(),
	}
}

// Name implements Policy.
func (r *RVS) Name() string { return r.label }

// RenderGate implements Policy: wait for the remote vblank feedback token,
// then apply the cc-scaled slack delay. If no feedback arrives within three
// vblank periods (at least 50 ms — startup, loss, pipeline stall), rendering
// proceeds anyway — a liveness guard any real implementation needs.
func (r *RVS) RenderGate(w core.Waiter) bool {
	fallback := 3 * r.period
	if fallback < 50*time.Millisecond {
		fallback = 50 * time.Millisecond
	}
	mu := r.ctx.Dom.Locker()
	mu.Lock()
	deadline := r.ctx.Dom.Now() + fallback
	for r.tokens == 0 && !r.closed {
		remaining := deadline - r.ctx.Dom.Now()
		if remaining <= 0 {
			break
		}
		w.WaitTimeout(r.tokenCond, remaining)
	}
	if r.tokens > 0 {
		r.tokens--
	}
	d := r.delay
	mu.Unlock()
	if d > 0 {
		w.Sleep(d)
	}
	return false
}

// SubmitRendered implements Policy.
func (r *RVS) SubmitRendered(_ core.Waiter, f *frame.Frame) { r.box.putLatest(f) }

// AcquireForEncode implements Policy.
func (r *RVS) AcquireForEncode(w core.Waiter) *frame.Frame { return r.box.take(w) }

// SubmitEncoded implements Policy.
func (r *RVS) SubmitEncoded(_ core.Waiter, f *frame.Frame, _ time.Duration) { r.sb.push(f) }

// AcquireForSend implements Policy.
func (r *RVS) AcquireForSend(w core.Waiter) *frame.Frame { return r.sb.pop(w) }

// DoneSend implements Policy.
func (r *RVS) DoneSend(*frame.Frame) {}

// DisplayTime implements Policy: VSync display. The frame is shown at the
// next free vblank after its decode completes; if that slot was already
// claimed by a newer... (older frames decode in order, so "claimed" means a
// prior frame owns it), the frame is dropped. The displayed frame generates
// the feedback message: slack = vblank − decodeEnd travels back to the cloud
// over the network and releases the next render.
func (r *RVS) DisplayTime(f *frame.Frame, decodeEnd time.Duration) (time.Duration, bool) {
	n := decodeEnd / r.period
	vblank := (n + 1) * r.period
	if vblank <= r.lastVblankUsed {
		// This refresh already shows a frame; the extra frame is discarded
		// and no feedback is generated for it.
		r.ctx.drop(f)
		return 0, false
	}
	r.lastVblankUsed = vblank
	slack := vblank - decodeEnd
	d := time.Duration(r.cc * float64(slack))
	r.feedbackSent++
	r.ctx.Env.After(r.ctx.Link.PropDelay(), func() {
		mu := r.ctx.Dom.Locker()
		mu.Lock()
		r.delay = d
		if r.tokens < r.tokenCap {
			r.tokens++
		}
		r.tokenCond.Broadcast()
		mu.Unlock()
	})
	return vblank, true
}

// OnWindow implements Policy.
func (r *RVS) OnWindow(renderFPS, clientFPS float64) {}

// SendBacklog implements Policy.
func (r *RVS) SendBacklog() int { return r.sb.depthBytes() }

// FeedbackSent returns the number of feedback messages generated.
func (r *RVS) FeedbackSent() int64 { return r.feedbackSent }

// CurrentDelay exposes the feedback delay for diagnostics.
func (r *RVS) CurrentDelay() time.Duration { return r.delay }

// Close implements Policy.
func (r *RVS) Close() {
	mu := r.ctx.Dom.Locker()
	mu.Lock()
	r.closed = true
	r.tokenCond.Broadcast()
	mu.Unlock()
	r.box.close()
	r.sb.close()
}

// MaxBacklogBytes implements MaxBacklogger.
func (r *RVS) MaxBacklogBytes() int { return r.sb.maxBytes() }
