package regulator

import (
	"fmt"
	"math"
)

// ODRAuto extends ODR with automatic target selection — the knob the paper
// treats as orthogonal input ("prior research investigated the proper FPS
// target … they provide the FPS target for the regulation", §2). ODRAuto
// closes that loop: it starts at MaxTarget and, using the same windowed
// rate observations every policy receives, steps the pacer's target down
// when the client persistently cannot keep up (bandwidth or decode bound)
// and back up when there is headroom. Because ODR's multi-buffers already
// absorb transient mismatch, the controller only needs to track the slow
// trend, so a simple hysteresis step controller suffices.
type ODRAuto struct {
	*ODR
	maxTarget float64
	minTarget float64
	target    float64

	// Hysteresis state: consecutive windows below/at target.
	lowStreak  int
	highStreak int
}

// NewODRAuto returns an ODR policy that auto-selects its FPS target in
// [minTarget, maxTarget]. minTarget <= 0 defaults to 20.
func NewODRAuto(ctx *Ctx, maxTarget, minTarget float64) *ODRAuto {
	if minTarget <= 0 {
		minTarget = 20
	}
	if maxTarget < minTarget {
		maxTarget = minTarget
	}
	a := &ODRAuto{
		ODR:       NewODR(ctx, ODROptions{TargetFPS: maxTarget}),
		maxTarget: maxTarget,
		minTarget: minTarget,
		target:    maxTarget,
	}
	a.label = fmt.Sprintf("ODRAuto%d", int(maxTarget))
	return a
}

// Name implements Policy.
func (a *ODRAuto) Name() string { return a.label }

// Target returns the current FPS target.
func (a *ODRAuto) Target() float64 { return a.target }

// OnWindow implements Policy: step the target down after three consecutive
// windows more than 7% below it, and back up after ten consecutive windows
// within 3% of it (slow up, fast down — the asymmetry users actually
// prefer: a stable lower rate beats oscillation).
func (a *ODRAuto) OnWindow(renderFPS, clientFPS float64) {
	if clientFPS <= 0 {
		return
	}
	switch {
	case clientFPS < a.target*0.93:
		a.lowStreak++
		a.highStreak = 0
	case clientFPS >= a.target*0.97:
		a.highStreak++
		a.lowStreak = 0
	default:
		a.lowStreak = 0
		a.highStreak = 0
	}
	if a.lowStreak >= 3 {
		a.lowStreak = 0
		a.setTarget(math.Max(a.minTarget, a.target*0.85))
	}
	if a.highStreak >= 10 && a.target < a.maxTarget {
		a.highStreak = 0
		a.setTarget(math.Min(a.maxTarget, a.target*1.08))
	}
}

func (a *ODRAuto) setTarget(t float64) {
	if t == a.target {
		return
	}
	a.target = t
	a.pacer.SetTargetFPS(t)
}
