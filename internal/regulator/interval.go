package regulator

import (
	"fmt"
	"math"
	"time"

	"odr/internal/core"
	"odr/internal/frame"
)

// Interval is the interval-based software regulation of §2/§4.1: frame
// rendering is delayed so that each frame starts at the beginning of a
// regular interval (16.6 ms for a 60 FPS goal). It assumes frames fit in
// their interval; when one overruns, the lost time is never recovered, so
// the achieved FPS falls below the target (Fig. 5b).
//
// With TargetFPS == 0 it runs in IntMax mode (§4.1): it starts unthrottled
// and, whenever it observes an FPS gap, lengthens the interval to bring the
// rendering rate down to the client rate. Because a gap re-appears with
// every processing-time spike and the interval is never shortened again, the
// rate ratchets well below what the hardware could deliver.
type Interval struct {
	ctx    *Ctx
	label  string
	box    *mailbox
	sb     *sendBuf
	closed bool

	interval time.Duration // current render interval (0 = unthrottled)
	nextTick time.Duration

	adaptive bool
	// Adaptation parameters for IntMax.
	gapThreshold float64 // FPS gap considered "still there"
	slowdown     float64 // multiplicative interval increase per violation

	// nextPoll aligns the proxy's framebuffer grab to the regulation grid
	// (TurboVNC-style timer polling); this is one of the injected delays
	// that raise interval-based regulation's MtP latency (§4.2).
	nextPoll time.Duration
}

// NewInterval returns an interval-based policy. targetFPS == 0 selects
// IntMax (adaptive maximize-FPS) mode.
func NewInterval(ctx *Ctx, targetFPS float64) *Interval {
	iv := &Interval{
		ctx:          ctx,
		box:          newMailbox(ctx),
		sb:           newSendBuf(ctx),
		gapThreshold: 6,
		slowdown:     1.035,
	}
	if targetFPS > 0 {
		iv.interval = time.Duration(float64(time.Second) / targetFPS)
		iv.label = fmt.Sprintf("Int%d", int(targetFPS))
	} else {
		iv.adaptive = true
		iv.label = "IntMax"
	}
	return iv
}

// Name implements Policy.
func (iv *Interval) Name() string { return iv.label }

// RenderGate implements Policy: sleep until the next interval boundary.
func (iv *Interval) RenderGate(w core.Waiter) bool {
	if iv.interval <= 0 {
		return false
	}
	now := iv.ctx.Dom.Now()
	if iv.nextTick <= now {
		// Overrun: skip to the next boundary on the original grid; the
		// missed intervals are lost (this is the §4.1 pathology).
		intervals := (now-iv.nextTick)/iv.interval + 1
		iv.nextTick += intervals * iv.interval
	}
	w.Sleep(iv.nextTick - now)
	iv.nextTick += iv.interval
	return false
}

// SubmitRendered implements Policy (latest-wins, like all in-app delays).
func (iv *Interval) SubmitRendered(_ core.Waiter, f *frame.Frame) { iv.box.putLatest(f) }

// AcquireForEncode implements Policy: take the newest rendered frame, then
// hold it until the next proxy poll tick (the proxy's capture loop runs on
// the same fixed-interval timer discipline as the renderer).
func (iv *Interval) AcquireForEncode(w core.Waiter) *frame.Frame {
	f := iv.box.take(w)
	if f == nil || iv.interval <= 0 {
		return f
	}
	now := iv.ctx.Dom.Now()
	if iv.nextPoll <= now {
		intervals := (now-iv.nextPoll)/iv.interval + 1
		iv.nextPoll += intervals * iv.interval
	}
	w.Sleep(iv.nextPoll - now)
	iv.nextPoll += iv.interval
	return f
}

// SubmitEncoded implements Policy: push, no proxy-side pacing.
func (iv *Interval) SubmitEncoded(_ core.Waiter, f *frame.Frame, _ time.Duration) { iv.sb.push(f) }

// AcquireForSend implements Policy.
func (iv *Interval) AcquireForSend(w core.Waiter) *frame.Frame { return iv.sb.pop(w) }

// DoneSend implements Policy.
func (iv *Interval) DoneSend(*frame.Frame) {}

// DisplayTime implements Policy.
func (iv *Interval) DisplayTime(_ *frame.Frame, decodeEnd time.Duration) (time.Duration, bool) {
	return decodeEnd, true
}

// OnWindow implements Policy. In IntMax mode, a persistent FPS gap slows
// rendering down toward the client rate; the interval never shrinks again
// ("IntMax cannot re-adjust its rendering rate when a sudden increase of
// processing time passes", §4.1).
func (iv *Interval) OnWindow(renderFPS, clientFPS float64) {
	if !iv.adaptive || clientFPS <= 0 {
		return
	}
	gap := renderFPS - clientFPS
	if gap <= iv.gapThreshold {
		return
	}
	// Bring the rate down to the observed client rate, then a notch more
	// each time the gap persists.
	clientIv := time.Duration(float64(time.Second) / clientFPS)
	next := iv.interval
	if next < clientIv {
		next = clientIv
	}
	next = time.Duration(float64(next) * iv.slowdown)
	// Do not ratchet into absurdity (floor at 10 FPS).
	if next > time.Second/10 {
		next = time.Second / 10
	}
	if next > iv.interval {
		iv.interval = next
	}
}

// SendBacklog implements Policy.
func (iv *Interval) SendBacklog() int { return iv.sb.depthBytes() }

// CurrentIntervalMs exposes the adaptive interval for diagnostics.
func (iv *Interval) CurrentIntervalMs() float64 {
	return float64(iv.interval) / float64(time.Millisecond)
}

// TargetFPS returns the current effective FPS ceiling (∞ while unthrottled).
func (iv *Interval) TargetFPS() float64 {
	if iv.interval == 0 {
		return math.Inf(1)
	}
	return float64(time.Second) / float64(iv.interval)
}

// Close implements Policy.
func (iv *Interval) Close() {
	iv.box.close()
	iv.sb.close()
}

// MaxBacklogBytes implements MaxBacklogger.
func (iv *Interval) MaxBacklogBytes() int { return iv.sb.maxBytes() }
