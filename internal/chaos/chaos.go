package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error surfaced by operations cut by a Disconnect step.
var ErrInjected = errors.New("chaos: injected disconnect")

// Event is one fault firing, recorded in the order faults applied.
type Event struct {
	// Seq numbers the event within this Conn.
	Seq int
	// Kind is the fault that fired.
	Kind Kind
	// Off is the stream offset (write bytes, or read bytes for read-side
	// kinds) at which it fired.
	Off int64
	// Note carries the fault parameters ("dur=60ms", "pos=17", "rate=262144").
	Note string
}

// String renders the event as one log line.
func (e Event) String() string {
	if e.Note == "" {
		return fmt.Sprintf("%d %s off=%d", e.Seq, e.Kind, e.Off)
	}
	return fmt.Sprintf("%d %s off=%d %s", e.Seq, e.Kind, e.Off, e.Note)
}

// Conn wraps a net.Conn and applies a fault Schedule to its traffic. All
// fault decisions are driven by byte offsets and a seeded RNG, so the event
// log is a pure function of (schedule, seed, traffic). Faults that wait
// (stalls, latency, pacing, half-open reads) do sleep in real time, but the
// log never depends on the clock.
type Conn struct {
	inner net.Conn

	done      chan struct{}
	closeOnce sync.Once

	mu    sync.Mutex
	rng   *rand.Rand
	sched Schedule
	armed []Step // steps not yet fired, sorted by At
	base  int64  // loop shift added to every step's At

	writeOff, readOff int64
	latency           time.Duration
	rate              float64
	sendAt            time.Time // bandwidth pacing: when the bottleneck frees
	lossLeft          int
	corruptLeft       int
	halfOpen          bool
	disconnected      bool
	readDeadline      time.Time

	// Node-fault state (Crash, Partition, HeartbeatDelay).
	nodeHook    func()    // OnNodeFault; run (async) when Crash fires
	partForever bool      // permanent partition in effect
	partUntil   time.Time // healing partition in effect until this instant
	hbDelayLeft int       // writes still to delay by hbDelayDur
	hbDelayDur  time.Duration

	events []Event
}

// Wrap returns conn with the schedule applied to its traffic. seed drives
// the corruption-position RNG; the same (schedule, seed, traffic) triple
// yields the identical event log.
func Wrap(conn net.Conn, sched Schedule, seed int64) *Conn {
	c := &Conn{
		inner: conn,
		done:  make(chan struct{}),
		rng:   rand.New(rand.NewSource(seed)),
		sched: sched,
	}
	c.armed = append(c.armed, sched.Steps...)
	return c
}

// Schedule returns the schedule this conn runs under.
func (c *Conn) Schedule() Schedule { return c.sched }

// OnNodeFault registers fn to run when a Crash step fires. A cluster harness
// hooks process death here — hard-close the worker's listener and every live
// session. fn runs on its own goroutine so it may close conns (including this
// one) without deadlocking the write that fired the fault.
func (c *Conn) OnNodeFault(fn func()) {
	c.mu.Lock()
	c.nodeHook = fn
	c.mu.Unlock()
}

// partitionedLocked reports whether a partition is currently in effect;
// callers hold c.mu.
func (c *Conn) partitionedLocked() bool {
	return c.partForever || (!c.partUntil.IsZero() && time.Now().Before(c.partUntil))
}

// Events returns a copy of the fault event log so far.
func (c *Conn) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// EventLog renders the event log as newline-separated lines — the
// reproducibility artifact tests pin.
func (c *Conn) EventLog() string {
	evs := c.Events()
	lines := make([]string, len(evs))
	for i, e := range evs {
		lines[i] = e.String()
	}
	return strings.Join(lines, "\n")
}

// recordLocked appends an event; callers hold c.mu.
func (c *Conn) recordLocked(kind Kind, off int64, note string) {
	c.events = append(c.events, Event{Seq: len(c.events), Kind: kind, Off: off, Note: note})
}

// writeEffects is what one Write must apply, decided under the lock.
type writeEffects struct {
	stall      time.Duration
	latency    time.Duration
	paceUntil  time.Time
	drop       bool
	corruptPos int // -1 = no corruption
	disconnect bool
	crash      bool // disconnect was a Crash: run the node-fault hook too
}

// fireLocked fires every armed step of the given side whose shifted offset
// has been reached, re-arming the schedule when it loops.
func (c *Conn) fireLocked(readSide bool, off int64, stall *time.Duration, eff *writeEffects) {
	for {
		rest := c.armed[:0]
		for _, st := range c.armed {
			if st.Kind.readSide() != readSide || c.base+st.At > off {
				rest = append(rest, st)
				continue
			}
			switch st.Kind {
			case Latency:
				c.latency = st.Dur
				c.recordLocked(st.Kind, off, fmt.Sprintf("dur=%s", st.Dur))
			case Bandwidth:
				c.rate = st.Rate
				c.recordLocked(st.Kind, off, fmt.Sprintf("rate=%d", int64(st.Rate)))
			case Loss:
				c.lossLeft += st.Count
				c.recordLocked(st.Kind, off, fmt.Sprintf("n=%d", st.Count))
			case Corrupt:
				c.corruptLeft += st.Count
				c.recordLocked(st.Kind, off, fmt.Sprintf("n=%d", st.Count))
			case StallRead:
				if stall != nil {
					*stall += st.Dur
				}
				c.recordLocked(st.Kind, off, fmt.Sprintf("dur=%s", st.Dur))
			case StallWrite:
				if eff != nil {
					eff.stall += st.Dur
				}
				c.recordLocked(st.Kind, off, fmt.Sprintf("dur=%s", st.Dur))
			case Disconnect:
				if eff != nil {
					eff.disconnect = true
				}
				c.recordLocked(st.Kind, off, "")
			case HalfOpen:
				c.halfOpen = true
				c.recordLocked(st.Kind, off, "")
			case Crash:
				if eff != nil {
					eff.disconnect = true
					eff.crash = true
				}
				c.recordLocked(st.Kind, off, "")
			case Partition:
				if st.Dur > 0 {
					c.partUntil = time.Now().Add(st.Dur)
					c.recordLocked(st.Kind, off, fmt.Sprintf("dur=%s", st.Dur))
				} else {
					c.partForever = true
					c.recordLocked(st.Kind, off, "")
				}
			case HeartbeatDelay:
				c.hbDelayLeft += st.Count
				c.hbDelayDur = st.Dur
				c.recordLocked(st.Kind, off, fmt.Sprintf("dur=%s n=%d", st.Dur, st.Count))
			}
		}
		c.armed = rest
		if len(c.armed) == 0 && c.sched.Loop > 0 && len(c.sched.Steps) > 0 {
			c.base += c.sched.Loop
			c.armed = append(c.armed[:0], c.sched.Steps...)
			// Re-armed steps may already be due (a large transfer can cross
			// several loop periods at once); fire them in the same call.
			for _, st := range c.armed {
				if st.Kind.readSide() == readSide && c.base+st.At <= off {
					goto again
				}
			}
		}
		return
	again:
	}
}

// sleep waits d, returning early with an error when the conn closes.
func (c *Conn) sleep(d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.done:
		return net.ErrClosed
	}
}

// Write implements net.Conn: the scheduled write-side faults apply, then the
// bytes (possibly corrupted) reach the underlying conn — unless they were
// lost or the link disconnected.
func (c *Conn) Write(p []byte) (int, error) {
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	c.mu.Lock()
	if c.disconnected {
		c.mu.Unlock()
		return 0, ErrInjected
	}
	eff := writeEffects{corruptPos: -1}
	c.fireLocked(false, c.writeOff, nil, &eff)
	c.writeOff += int64(len(p))
	var hook func()
	if eff.crash {
		hook = c.nodeHook
	}
	if eff.disconnect {
		c.disconnected = true
	} else if c.partitionedLocked() {
		// Blackholed: the write "succeeds" locally, nothing crosses.
		eff.drop = true
	} else if c.lossLeft > 0 {
		c.lossLeft--
		eff.drop = true
	} else {
		if c.hbDelayLeft > 0 {
			c.hbDelayLeft--
			eff.stall += c.hbDelayDur
		}
		if c.corruptLeft > 0 && len(p) > 0 {
			c.corruptLeft--
			eff.corruptPos = c.rng.Intn(len(p))
			c.recordLocked(Corrupt, c.writeOff-int64(len(p)), fmt.Sprintf("pos=%d", eff.corruptPos))
		}
		eff.latency = c.latency
		if c.rate > 0 {
			// Serialize at the bottleneck, exactly like the Throttle this
			// absorbs: each write occupies the link for len/rate.
			tx := time.Duration(float64(len(p)) / c.rate * float64(time.Second))
			now := time.Now()
			if c.sendAt.Before(now) {
				c.sendAt = now
			}
			c.sendAt = c.sendAt.Add(tx)
			eff.paceUntil = c.sendAt
		}
	}
	c.mu.Unlock()

	switch {
	case eff.disconnect:
		if hook != nil {
			go hook()
		}
		c.inner.Close()
		return 0, ErrInjected
	case eff.drop:
		// Burst loss: the write "succeeds" but nothing crosses the link.
		return len(p), nil
	}
	if err := c.sleep(eff.stall); err != nil {
		return 0, err
	}
	if err := c.sleep(eff.latency); err != nil {
		return 0, err
	}
	if !eff.paceUntil.IsZero() {
		if err := c.sleep(time.Until(eff.paceUntil)); err != nil {
			return 0, err
		}
	}
	if eff.corruptPos >= 0 {
		corrupted := make([]byte, len(p))
		copy(corrupted, p)
		corrupted[eff.corruptPos] ^= 0xFF
		p = corrupted
	}
	return c.inner.Write(p)
}

// Read implements net.Conn with read-side faults: stalls delay delivery and
// a half-open partition blocks until the read deadline (if any) or Close.
func (c *Conn) Read(p []byte) (int, error) {
	select {
	case <-c.done:
		return 0, net.ErrClosed
	default:
	}
	c.mu.Lock()
	var stall time.Duration
	c.fireLocked(true, c.readOff, &stall, nil)
	halfOpen := c.halfOpen
	deadline := c.readDeadline
	partForever := c.partForever
	partUntil := c.partUntil
	c.mu.Unlock()

	if stall > 0 {
		if !deadline.IsZero() && time.Now().Add(stall).After(deadline) {
			if err := c.sleep(time.Until(deadline)); err != nil {
				return 0, err
			}
			return 0, os.ErrDeadlineExceeded
		}
		if err := c.sleep(stall); err != nil {
			return 0, err
		}
	}
	if halfOpen || partForever {
		// The peer's bytes never arrive: block until the deadline or Close.
		if deadline.IsZero() {
			<-c.done
			return 0, net.ErrClosed
		}
		if err := c.sleep(time.Until(deadline)); err != nil {
			return 0, err
		}
		return 0, os.ErrDeadlineExceeded
	}
	if !partUntil.IsZero() && time.Now().Before(partUntil) {
		// A healing partition: nothing is delivered until it heals, the
		// deadline fires, or the conn closes.
		if !deadline.IsZero() && deadline.Before(partUntil) {
			if err := c.sleep(time.Until(deadline)); err != nil {
				return 0, err
			}
			return 0, os.ErrDeadlineExceeded
		}
		if err := c.sleep(time.Until(partUntil)); err != nil {
			return 0, err
		}
	}
	n, err := c.inner.Read(p)
	c.mu.Lock()
	c.readOff += int64(n)
	c.mu.Unlock()
	return n, err
}

// Close releases any blocked fault waits and closes the underlying conn.
func (c *Conn) Close() error {
	c.closeOnce.Do(func() { close(c.done) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetDeadline(t)
}

// SetReadDeadline implements net.Conn; the deadline also bounds half-open
// and stalled reads, so deadline-based liveness checks still fire under
// partitions.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDeadline = t
	c.mu.Unlock()
	return c.inner.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	return c.inner.SetWriteDeadline(t)
}
