package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"odr/internal/testutil"
)

// drainPair returns a wrapped pipe whose peer end is continuously drained
// into sink (nil = discard), plus a cleanup.
func drainPair(t *testing.T, sched Schedule, seed int64, sink *bytes.Buffer) (*Conn, func()) {
	t.Helper()
	sc, cc := net.Pipe()
	fc := Wrap(sc, sched, seed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64<<10)
		for {
			n, err := cc.Read(buf)
			if sink != nil && n > 0 {
				sink.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	cleanup := func() {
		fc.Close()
		cc.Close()
		<-done
	}
	return fc, cleanup
}

// TestEventLogPinned drives a fixed byte stream through a fixed schedule and
// pins the exact fault event log: same schedule + seed + traffic must always
// produce this sequence. The corruption position comes from the seeded RNG,
// mirrored here the same way the implementation draws it.
func TestEventLogPinned(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const seed = 42
	sched := MustParse("latency@0:1ms,loss@100x2,corrupt@300,stallw@500:1ms,disc@900")
	fc, cleanup := drainPair(t, sched, seed, nil)
	defer cleanup()

	payload := make([]byte, 100)
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, err := fc.Write(payload); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr != ErrInjected {
		t.Fatalf("final write error = %v, want ErrInjected", lastErr)
	}
	pos := rand.New(rand.NewSource(seed)).Intn(100)
	want := strings.Join([]string{
		"0 latency off=0 dur=1ms",
		"1 loss off=100 n=2",
		"2 corrupt off=300 n=1",
		fmt.Sprintf("3 corrupt off=300 pos=%d", pos),
		"4 stallw off=500 dur=1ms",
		"5 disc off=900",
	}, "\n")
	if got := fc.EventLog(); got != want {
		t.Fatalf("event log mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEventLogReproducible runs the same schedule+seed+traffic twice and
// requires identical logs.
func TestEventLogReproducible(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() string {
		sched := MustParse("loss@64x1,corrupt@256x2,stallw@512:1ms,loop@512")
		fc, cleanup := drainPair(t, sched, 7, nil)
		defer cleanup()
		for i := 0; i < 20; i++ {
			if _, err := fc.Write(make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		return fc.EventLog()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same schedule+seed produced different logs:\n%s\n--- vs ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("no events recorded")
	}
}

func TestLossDropsWholeWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	// Drop the 2nd write (fires once 64 bytes have gone through).
	fc, cleanup := drainPair(t, MustParse("loss@64x1"), 1, &sink)
	for i := 0; i < 3; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 64)
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	cleanup()
	got := sink.String()
	want := strings.Repeat("a", 64) + strings.Repeat("c", 64)
	if got != want {
		t.Fatalf("delivered %q, want 2nd write dropped", got)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	fc, cleanup := drainPair(t, MustParse("corrupt@0"), 3, &sink)
	payload := bytes.Repeat([]byte{0x55}, 128)
	if _, err := fc.Write(payload); err != nil {
		t.Fatal(err)
	}
	cleanup()
	got := sink.Bytes()
	if len(got) != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	flipped := 0
	for _, b := range got {
		if b != 0x55 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", flipped)
	}
	// The caller's buffer must not be mutated.
	for _, b := range payload {
		if b != 0x55 {
			t.Fatal("corruption leaked into the caller's buffer")
		}
	}
}

func TestLoopReArms(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	// Drop one write at 64, re-arming every 128: writes 2, 4, 6 vanish.
	fc, cleanup := drainPair(t, MustParse("loss@64,loop@128"), 1, &sink)
	for i := 0; i < 6; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 64)
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	cleanup()
	got := sink.String()
	want := strings.Repeat("a", 64) + strings.Repeat("c", 64) + strings.Repeat("e", 64)
	if got != want {
		t.Fatalf("loop loss delivered %q", got)
	}
}

func TestDisconnectKillsBothEnds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("disc@0"), 1)
	defer fc.Close()
	readErr := make(chan error, 1)
	go func() {
		_, err := cc.Read(make([]byte, 1))
		readErr <- err
	}()
	if _, err := fc.Write([]byte("x")); err != ErrInjected {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	select {
	case err := <-readErr:
		if err != io.EOF && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("peer read error = %v, want EOF/closed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the disconnect")
	}
	if _, err := fc.Write([]byte("y")); err != ErrInjected {
		t.Fatalf("post-disconnect write error = %v, want ErrInjected", err)
	}
}

func TestHalfOpenRespectsReadDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("halfopen@0"), 1)
	defer fc.Close()
	if err := fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 16))
	if err != os.ErrDeadlineExceeded {
		t.Fatalf("half-open read error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("half-open read returned after %v, want ~50ms block", elapsed)
	}
}

func TestHalfOpenUnblocksOnClose(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("halfopen@0"), 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 16))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if err != net.ErrClosed {
			t.Fatalf("read error = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("half-open read never unblocked on Close")
	}
}

func TestBandwidthPacesWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fc, cleanup := drainPair(t, MustParse("bw@0:1048576"), 1, nil) // 1 MiB/s
	defer cleanup()
	const total = 256 << 10 // 0.25 MiB -> ~0.25s
	start := time.Now()
	payload := make([]byte, 32<<10)
	for sent := 0; sent < total; sent += len(payload) {
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond || elapsed > 600*time.Millisecond {
		t.Fatalf("0.25MiB at 1MiB/s took %v, want ~0.25s", elapsed)
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fc, cleanup := drainPair(t, MustParse("latency@0:40ms"), 1, nil)
	defer cleanup()
	start := time.Now()
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency write returned after %v, want >= ~40ms", elapsed)
	}
}

func TestStallInterruptedByClose(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("stallw@0:30s"), 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if err != net.ErrClosed {
			t.Fatalf("stalled write error = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write not interrupted by Close")
	}
}

// TestNodeFaultEventLogPinned drives fixed traffic through the node-level
// fault kinds and pins the exact event log, exactly like TestEventLogPinned
// does for the link-level kinds. Blackholed writes during a partition are
// deliberately not logged (their count would depend on wall-clock healing),
// so the log stays a pure function of (schedule, seed, traffic).
func TestNodeFaultEventLogPinned(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sched := MustParse("hbdelay@0:1msx2,mpart@200:50ms,crash@400")
	fc, cleanup := drainPair(t, sched, 1, nil)
	defer cleanup()

	payload := make([]byte, 100)
	var lastErr error
	for i := 0; i < 5; i++ {
		if _, err := fc.Write(payload); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr != ErrInjected {
		t.Fatalf("final write error = %v, want ErrInjected", lastErr)
	}
	want := strings.Join([]string{
		"0 hbdelay off=0 dur=1ms n=2",
		"1 mpart off=200 dur=50ms",
		"2 crash off=400",
	}, "\n")
	if got := fc.EventLog(); got != want {
		t.Fatalf("event log mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestCrashFiresNodeFaultHook: a crash step must run the OnNodeFault hook
// (asynchronously) and kill the conn like a disconnect.
func TestCrashFiresNodeFaultHook(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("crash@0"), 1)
	defer fc.Close()
	fired := make(chan struct{})
	fc.OnNodeFault(func() { close(fired) })
	if _, err := fc.Write([]byte("x")); err != ErrInjected {
		t.Fatalf("crash write error = %v, want ErrInjected", err)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnNodeFault hook never ran")
	}
	if _, err := fc.Write([]byte("y")); err != ErrInjected {
		t.Fatalf("post-crash write error = %v, want ErrInjected", err)
	}
}

// TestPartitionBlackholesWrites: from the firing offset until the partition
// heals, writes succeed locally but nothing crosses the link; after healing
// traffic flows again.
func TestPartitionBlackholesWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	fc, cleanup := drainPair(t, MustParse("mpart@64:80ms"), 1, &sink)
	a := bytes.Repeat([]byte{'a'}, 64)
	b := bytes.Repeat([]byte{'b'}, 64)
	c := bytes.Repeat([]byte{'c'}, 64)
	if _, err := fc.Write(a); err != nil { // delivered: partition not yet armed
		t.Fatal(err)
	}
	if _, err := fc.Write(b); err != nil { // fires the partition: blackholed
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond) // let it heal
	if _, err := fc.Write(c); err != nil {
		t.Fatal(err)
	}
	cleanup()
	got := sink.String()
	want := strings.Repeat("a", 64) + strings.Repeat("c", 64)
	if got != want {
		t.Fatalf("partition delivered %q, want the blackholed write dropped", got)
	}
}

// TestPartitionBlocksReadsUntilHeal: during a healing partition nothing is
// delivered to Read; once it heals the peer's bytes arrive.
func TestPartitionBlocksReadsUntilHeal(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("mpart@0:60ms"), 1)
	defer fc.Close()
	if _, err := fc.Write([]byte("x")); err != nil { // fires the partition
		t.Fatal(err)
	}
	go cc.Write([]byte("hello"))
	start := time.Now()
	buf := make([]byte, 16)
	n, err := fc.Read(buf)
	if err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
	if got := string(buf[:n]); got != "hello" {
		t.Fatalf("post-heal read delivered %q", got)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("read returned after %v, want ~60ms partition block", elapsed)
	}
}

// TestPermanentPartitionRespectsReadDeadline: a bare mpart never heals, so a
// deadline-bounded read must time out (the master's liveness check path).
func TestPermanentPartitionRespectsReadDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("mpart@0"), 1)
	defer fc.Close()
	if _, err := fc.Write([]byte("x")); err != nil { // fires the partition
		t.Fatal(err)
	}
	if err := fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 16))
	if err != os.ErrDeadlineExceeded {
		t.Fatalf("partitioned read error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("partitioned read returned after %v, want ~50ms block", elapsed)
	}
}

// TestHeartbeatDelayDelaysWrites: each of the next Count writes is delayed by
// Dur — the late-heartbeat fault on a control conn.
func TestHeartbeatDelayDelaysWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	fc, cleanup := drainPair(t, MustParse("hbdelay@0:40msx2"), 1, &sink)
	start := time.Now()
	if _, err := fc.Write([]byte("hb1")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("delayed heartbeat returned after %v, want >= ~40ms", elapsed)
	}
	if _, err := fc.Write([]byte("hb2")); err != nil {
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("hb3")); err != nil {
		t.Fatal(err)
	}
	cleanup()
	// All three heartbeats are delivered — delayed, never dropped.
	if got := sink.String(); got != "hb1hb2hb3" {
		t.Fatalf("delivered %q, want all heartbeats", got)
	}
}

// TestNodeFaultRoundTrip pins the String() rendering of the node-fault steps
// as a Parse fixed point.
func TestNodeFaultRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"crash@65536",
		"mpart@400",
		"mpart@400:250ms",
		"hbdelay@0:120ms",
		"hbdelay@0:120msx3",
	} {
		s, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Fatalf("round trip %q -> %q", spec, got)
		}
	}
	// A zero healing time renders as the permanent form — still a fixed point.
	s, err := Parse("mpart@5:0s")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "mpart@5" {
		t.Fatalf("mpart@5:0s rendered %q, want mpart@5", got)
	}
}

func TestNamedSchedulesParse(t *testing.T) {
	for _, name := range NamedSchedules() {
		s, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Named(%q).Name = %q", name, s.Name)
		}
		// Round-trip through the grammar.
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("reparse %q (%q): %v", name, s.String(), err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip %q: %q != %q", name, back.String(), s.String())
		}
	}
	if _, err := Named("no-such"); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"latency",         // missing offset
		"latency@x:1ms",   // bad offset
		"latency@0",       // missing duration
		"latency@0:zz",    // bad duration
		"bw@0",            // missing rate
		"bw@0:fast",       // bad rate
		"loss@0x0",        // zero count
		"disc@0:1ms",      // disc takes no parameter
		"disc@0x2",        // disc takes no count
		"loop@0",          // loop period must be positive
		"warp@0",          // unknown kind
		"latency@-5:1ms",  // negative offset
		"latency@0:1msx3", // latency takes no count
		"corrupt@0:1ms",   // corrupt takes no parameter
		"crash@0:1ms",     // crash takes no parameter
		"crash@0x2",       // crash takes no count
		"mpart@0x2",       // mpart takes no count
		"mpart@0:zz",      // bad healing duration
		"hbdelay@0",       // missing duration
		"hbdelay@0:-1ms",  // negative duration
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// FuzzParseSchedule: the schedule grammar must never panic, and accepted
// specs must survive a String() -> Parse round trip.
func FuzzParseSchedule(f *testing.F) {
	for _, spec := range namedSpecs {
		f.Add(spec)
	}
	f.Add("latency@0:5ms,bw@65536:262144,loss@100x3,corrupt@200,stallr@300:1ms,stallw@400:2ms,disc@500,halfopen@600,loop@1000")
	f.Add("loss@@0,")
	f.Add("crash@65536,mpart@400:250ms,hbdelay@0:120msx3")
	f.Add("mpart@0")
	f.Add("mpart@5:0s")
	f.Add("hbdelay@9:1h0m0sx2")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			return
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("String() of accepted spec rejected: %q -> %q: %v", spec, s.String(), err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip not stable: %q -> %q", s.String(), back.String())
		}
	})
}
