package chaos

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"odr/internal/testutil"
)

// drainPair returns a wrapped pipe whose peer end is continuously drained
// into sink (nil = discard), plus a cleanup.
func drainPair(t *testing.T, sched Schedule, seed int64, sink *bytes.Buffer) (*Conn, func()) {
	t.Helper()
	sc, cc := net.Pipe()
	fc := Wrap(sc, sched, seed)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 64<<10)
		for {
			n, err := cc.Read(buf)
			if sink != nil && n > 0 {
				sink.Write(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
	cleanup := func() {
		fc.Close()
		cc.Close()
		<-done
	}
	return fc, cleanup
}

// TestEventLogPinned drives a fixed byte stream through a fixed schedule and
// pins the exact fault event log: same schedule + seed + traffic must always
// produce this sequence. The corruption position comes from the seeded RNG,
// mirrored here the same way the implementation draws it.
func TestEventLogPinned(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const seed = 42
	sched := MustParse("latency@0:1ms,loss@100x2,corrupt@300,stallw@500:1ms,disc@900")
	fc, cleanup := drainPair(t, sched, seed, nil)
	defer cleanup()

	payload := make([]byte, 100)
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, err := fc.Write(payload); err != nil {
			lastErr = err
			break
		}
	}
	if lastErr != ErrInjected {
		t.Fatalf("final write error = %v, want ErrInjected", lastErr)
	}
	pos := rand.New(rand.NewSource(seed)).Intn(100)
	want := strings.Join([]string{
		"0 latency off=0 dur=1ms",
		"1 loss off=100 n=2",
		"2 corrupt off=300 n=1",
		fmt.Sprintf("3 corrupt off=300 pos=%d", pos),
		"4 stallw off=500 dur=1ms",
		"5 disc off=900",
	}, "\n")
	if got := fc.EventLog(); got != want {
		t.Fatalf("event log mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestEventLogReproducible runs the same schedule+seed+traffic twice and
// requires identical logs.
func TestEventLogReproducible(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() string {
		sched := MustParse("loss@64x1,corrupt@256x2,stallw@512:1ms,loop@512")
		fc, cleanup := drainPair(t, sched, 7, nil)
		defer cleanup()
		for i := 0; i < 20; i++ {
			if _, err := fc.Write(make([]byte, 64)); err != nil {
				t.Fatal(err)
			}
		}
		return fc.EventLog()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same schedule+seed produced different logs:\n%s\n--- vs ---\n%s", a, b)
	}
	if a == "" {
		t.Fatal("no events recorded")
	}
}

func TestLossDropsWholeWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	// Drop the 2nd write (fires once 64 bytes have gone through).
	fc, cleanup := drainPair(t, MustParse("loss@64x1"), 1, &sink)
	for i := 0; i < 3; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 64)
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	cleanup()
	got := sink.String()
	want := strings.Repeat("a", 64) + strings.Repeat("c", 64)
	if got != want {
		t.Fatalf("delivered %q, want 2nd write dropped", got)
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	fc, cleanup := drainPair(t, MustParse("corrupt@0"), 3, &sink)
	payload := bytes.Repeat([]byte{0x55}, 128)
	if _, err := fc.Write(payload); err != nil {
		t.Fatal(err)
	}
	cleanup()
	got := sink.Bytes()
	if len(got) != len(payload) {
		t.Fatalf("delivered %d bytes, want %d", len(got), len(payload))
	}
	flipped := 0
	for _, b := range got {
		if b != 0x55 {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", flipped)
	}
	// The caller's buffer must not be mutated.
	for _, b := range payload {
		if b != 0x55 {
			t.Fatal("corruption leaked into the caller's buffer")
		}
	}
}

func TestLoopReArms(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	var sink bytes.Buffer
	// Drop one write at 64, re-arming every 128: writes 2, 4, 6 vanish.
	fc, cleanup := drainPair(t, MustParse("loss@64,loop@128"), 1, &sink)
	for i := 0; i < 6; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 64)
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	cleanup()
	got := sink.String()
	want := strings.Repeat("a", 64) + strings.Repeat("c", 64) + strings.Repeat("e", 64)
	if got != want {
		t.Fatalf("loop loss delivered %q", got)
	}
}

func TestDisconnectKillsBothEnds(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("disc@0"), 1)
	defer fc.Close()
	readErr := make(chan error, 1)
	go func() {
		_, err := cc.Read(make([]byte, 1))
		readErr <- err
	}()
	if _, err := fc.Write([]byte("x")); err != ErrInjected {
		t.Fatalf("write error = %v, want ErrInjected", err)
	}
	select {
	case err := <-readErr:
		if err != io.EOF && !strings.Contains(err.Error(), "closed") {
			t.Fatalf("peer read error = %v, want EOF/closed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the disconnect")
	}
	if _, err := fc.Write([]byte("y")); err != ErrInjected {
		t.Fatalf("post-disconnect write error = %v, want ErrInjected", err)
	}
}

func TestHalfOpenRespectsReadDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("halfopen@0"), 1)
	defer fc.Close()
	if err := fc.SetReadDeadline(time.Now().Add(50 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := fc.Read(make([]byte, 16))
	if err != os.ErrDeadlineExceeded {
		t.Fatalf("half-open read error = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("half-open read returned after %v, want ~50ms block", elapsed)
	}
}

func TestHalfOpenUnblocksOnClose(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("halfopen@0"), 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 16))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if err != net.ErrClosed {
			t.Fatalf("read error = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("half-open read never unblocked on Close")
	}
}

func TestBandwidthPacesWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fc, cleanup := drainPair(t, MustParse("bw@0:1048576"), 1, nil) // 1 MiB/s
	defer cleanup()
	const total = 256 << 10 // 0.25 MiB -> ~0.25s
	start := time.Now()
	payload := make([]byte, 32<<10)
	for sent := 0; sent < total; sent += len(payload) {
		if _, err := fc.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond || elapsed > 600*time.Millisecond {
		t.Fatalf("0.25MiB at 1MiB/s took %v, want ~0.25s", elapsed)
	}
}

func TestLatencyDelaysWrites(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	fc, cleanup := drainPair(t, MustParse("latency@0:40ms"), 1, nil)
	defer cleanup()
	start := time.Now()
	if _, err := fc.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("latency write returned after %v, want >= ~40ms", elapsed)
	}
}

func TestStallInterruptedByClose(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	fc := Wrap(sc, MustParse("stallw@0:30s"), 1)
	errCh := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("x"))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errCh:
		if err != net.ErrClosed {
			t.Fatalf("stalled write error = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled write not interrupted by Close")
	}
}

func TestNamedSchedulesParse(t *testing.T) {
	for _, name := range NamedSchedules() {
		s, err := Named(name)
		if err != nil {
			t.Fatalf("Named(%q): %v", name, err)
		}
		if s.Name != name {
			t.Fatalf("Named(%q).Name = %q", name, s.Name)
		}
		// Round-trip through the grammar.
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("reparse %q (%q): %v", name, s.String(), err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip %q: %q != %q", name, back.String(), s.String())
		}
	}
	if _, err := Named("no-such"); err == nil {
		t.Fatal("unknown schedule accepted")
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"latency",            // missing offset
		"latency@x:1ms",      // bad offset
		"latency@0",          // missing duration
		"latency@0:zz",       // bad duration
		"bw@0",               // missing rate
		"bw@0:fast",          // bad rate
		"loss@0x0",           // zero count
		"disc@0:1ms",         // disc takes no parameter
		"disc@0x2",           // disc takes no count
		"loop@0",             // loop period must be positive
		"warp@0",             // unknown kind
		"latency@-5:1ms",     // negative offset
		"latency@0:1msx3",    // latency takes no count
		"corrupt@0:1ms",      // corrupt takes no parameter
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

// FuzzParseSchedule: the schedule grammar must never panic, and accepted
// specs must survive a String() -> Parse round trip.
func FuzzParseSchedule(f *testing.F) {
	for _, spec := range namedSpecs {
		f.Add(spec)
	}
	f.Add("latency@0:5ms,bw@65536:262144,loss@100x3,corrupt@200,stallr@300:1ms,stallw@400:2ms,disc@500,halfopen@600,loop@1000")
	f.Add("loss@@0,")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := Parse(spec)
		if err != nil {
			return
		}
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("String() of accepted spec rejected: %q -> %q: %v", spec, s.String(), err)
		}
		if back.String() != s.String() {
			t.Fatalf("round trip not stable: %q -> %q", s.String(), back.String())
		}
	})
}
