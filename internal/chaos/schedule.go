// Package chaos injects network faults into a net.Conn, deterministically.
//
// A Conn (see Wrap) applies a Schedule of faults — latency spikes, bandwidth
// collapse, burst loss, byte corruption, read/write stalls, mid-stream
// disconnects and half-open partitions — to the traffic that crosses it.
// Every fault fires at a byte offset of the transferred stream, never at a
// wall-clock instant, and all randomness (corruption positions) comes from a
// caller-provided seed, so the same schedule + seed + traffic always produces
// the identical fault event log (Conn.EventLog). That determinism is what
// lets the failure-matrix tests and the odrsoak harness assert exact
// behaviour instead of sampling flaky timing.
//
// Schedule grammar (Parse):
//
//	spec  := "" | step ("," step)*
//	step  := kind "@" offset [":" param] ["x" count]
//	kind  := latency | bw | loss | corrupt | stallr | stallw | disc | halfopen |
//	         crash | mpart | hbdelay | loop
//
// offset is the cumulative byte offset (writes for write-side kinds, reads
// for stallr/halfopen) at which the step arms. param is a Go duration for
// latency/stallr/stallw, and a bytes-per-second integer for bw (0 clears the
// shaping; likewise "latency@N:0s" clears an earlier latency). count (loss,
// corrupt) is how many subsequent writes are affected (default 1).
// "loop@N" is a pseudo-step: once every step has fired, the whole schedule
// re-arms shifted N bytes forward, turning a one-shot script into a
// recurring storm.
//
// Examples:
//
//	latency@0:5ms                    — 5ms added to every write from the start
//	bw@65536:262144                  — after 64 KiB, collapse to 256 KiB/s
//	loss@49152x2,corrupt@98304       — two writes dropped, then a byte flipped
//	stallw@32768:80ms,disc@147456    — a write stall, then a mid-stream cut
//	halfopen@65536                   — reads go dark after 64 KiB (writes live)
//
// Node-level faults (the cluster fault model) use the same grammar:
//
//	crash@65536                      — node crash: the conn's OnNodeFault hook
//	                                   fires (the harness hard-closes the
//	                                   worker's listener) and the conn dies
//	mpart@400                        — permanent partition: writes blackhole,
//	                                   reads go dark (master⇄worker split)
//	mpart@400:250ms                  — partition that heals after 250ms
//	hbdelay@0:120msx3                — the next 3 writes (heartbeats, on a
//	                                   control conn) are each delayed 120ms
package chaos

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the fault kinds a Step can inject.
type Kind uint8

// The fault kinds. Latency, Bandwidth, Loss, Corrupt, StallWrite and
// Disconnect act on the write side of the wrapped conn; StallRead and
// HalfOpen act on the read side.
const (
	// Latency adds Dur to every write from the step's offset on (Dur 0
	// clears it). This absorbs the propagation-delay half of the old
	// stream.Throttle wrapper.
	Latency Kind = iota
	// Bandwidth paces writes at Rate bytes/second from the step's offset on
	// (Rate 0 lifts the limit) — the serialization bottleneck of a shaped
	// path, with the same synchronous backpressure as stream.Throttle.
	Bandwidth
	// Loss silently swallows the next Count writes (burst loss).
	Loss
	// Corrupt flips one seeded-random byte in each of the next Count writes.
	Corrupt
	// StallRead blocks the next read for Dur.
	StallRead
	// StallWrite blocks the next write for Dur.
	StallWrite
	// Disconnect closes the underlying conn mid-stream; both ends see it.
	Disconnect
	// HalfOpen stops delivering reads (they block until deadline or close)
	// while writes keep succeeding — a half-open partition.
	HalfOpen
	// Crash is a node-level fault: when it fires, the conn's OnNodeFault
	// hook runs (a cluster harness uses it to hard-close the worker's
	// listener and every session — process death, no drain, no goodbye)
	// and the conn itself dies like Disconnect.
	Crash
	// Partition is a two-way partition from the firing offset on: writes
	// are silently blackholed and reads deliver nothing (blocking until
	// the read deadline, Close, or the partition healing). Dur > 0 heals
	// the partition after that long; Dur 0 is permanent. Wrapped around a
	// control-plane conn it is the master⇄worker split of the cluster
	// fault model; on a data conn it isolates one viewer.
	Partition
	// HeartbeatDelay delays each of the next Count writes by Dur. On a
	// control conn where each write is one heartbeat request this is the
	// late-heartbeat fault: Dur below the master's deadline must be
	// tolerated, Dur beyond it must trigger failover.
	HeartbeatDelay
)

var kindNames = map[Kind]string{
	Latency:        "latency",
	Bandwidth:      "bw",
	Loss:           "loss",
	Corrupt:        "corrupt",
	StallRead:      "stallr",
	StallWrite:     "stallw",
	Disconnect:     "disc",
	HalfOpen:       "halfopen",
	Crash:          "crash",
	Partition:      "mpart",
	HeartbeatDelay: "hbdelay",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// readSide reports whether the kind triggers on the read-byte offset.
func (k Kind) readSide() bool { return k == StallRead || k == HalfOpen }

// Step is one scheduled fault.
type Step struct {
	// Kind selects the fault.
	Kind Kind
	// At is the cumulative stream offset (bytes written, or read for
	// read-side kinds) at which the step fires.
	At int64
	// Dur parameterizes Latency, StallRead, StallWrite and HeartbeatDelay;
	// for Partition it is the healing time (0 = permanent).
	Dur time.Duration
	// Rate parameterizes Bandwidth (bytes/second; 0 = unlimited).
	Rate float64
	// Count is how many writes Loss/Corrupt/HeartbeatDelay affect
	// (default 1).
	Count int
}

// String renders the step in the schedule grammar.
func (s Step) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s@%d", s.Kind, s.At)
	switch s.Kind {
	case Latency, StallRead, StallWrite:
		fmt.Fprintf(&b, ":%s", s.Dur)
	case Bandwidth:
		fmt.Fprintf(&b, ":%d", int64(s.Rate))
	case Loss, Corrupt:
		if s.Count > 1 {
			fmt.Fprintf(&b, "x%d", s.Count)
		}
	case Partition:
		if s.Dur > 0 {
			fmt.Fprintf(&b, ":%s", s.Dur)
		}
	case HeartbeatDelay:
		fmt.Fprintf(&b, ":%s", s.Dur)
		if s.Count > 1 {
			fmt.Fprintf(&b, "x%d", s.Count)
		}
	}
	return b.String()
}

// Schedule is a scripted sequence of faults, applied by a Conn.
type Schedule struct {
	// Name labels the schedule in logs and reports.
	Name string
	// Steps fire in At order; see the package grammar.
	Steps []Step
	// Loop, when > 0, re-arms the whole schedule every Loop bytes once all
	// steps have fired.
	Loop int64
}

// String renders the schedule in the grammar accepted by Parse.
func (s Schedule) String() string {
	parts := make([]string, 0, len(s.Steps)+1)
	for _, st := range s.Steps {
		parts = append(parts, st.String())
	}
	if s.Loop > 0 {
		parts = append(parts, fmt.Sprintf("loop@%d", s.Loop))
	}
	return strings.Join(parts, ",")
}

// Parse builds a Schedule from the grammar described in the package comment.
// The empty spec is the fault-free schedule.
func Parse(spec string) (Schedule, error) {
	var s Schedule
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		kindStr, rest, ok := strings.Cut(tok, "@")
		if !ok {
			return s, fmt.Errorf("chaos: step %q: missing @offset", tok)
		}
		var count int
		if body, cnt, ok := strings.Cut(rest, "x"); ok {
			n, err := strconv.Atoi(cnt)
			if err != nil || n <= 0 {
				return s, fmt.Errorf("chaos: step %q: bad count %q", tok, cnt)
			}
			rest, count = body, n
		}
		offStr, param, hasParam := strings.Cut(rest, ":")
		off, err := strconv.ParseInt(offStr, 10, 64)
		if err != nil || off < 0 {
			return s, fmt.Errorf("chaos: step %q: bad offset %q", tok, offStr)
		}
		if kindStr == "loop" {
			if off <= 0 {
				return s, fmt.Errorf("chaos: step %q: loop period must be positive", tok)
			}
			s.Loop = off
			continue
		}
		var kind Kind
		found := false
		for k, n := range kindNames {
			if n == kindStr {
				kind, found = k, true
				break
			}
		}
		if !found {
			return s, fmt.Errorf("chaos: step %q: unknown kind %q", tok, kindStr)
		}
		step := Step{Kind: kind, At: off, Count: count}
		switch kind {
		case Latency, StallRead, StallWrite, HeartbeatDelay:
			if !hasParam {
				return s, fmt.Errorf("chaos: step %q: %s needs a duration", tok, kind)
			}
			d, err := time.ParseDuration(param)
			if err != nil || d < 0 {
				return s, fmt.Errorf("chaos: step %q: bad duration %q", tok, param)
			}
			step.Dur = d
		case Bandwidth:
			if !hasParam {
				return s, fmt.Errorf("chaos: step %q: bw needs a bytes/sec rate", tok)
			}
			r, err := strconv.ParseInt(param, 10, 64)
			if err != nil || r < 0 {
				return s, fmt.Errorf("chaos: step %q: bad rate %q", tok, param)
			}
			step.Rate = float64(r)
		case Partition:
			// The healing time is optional: a bare mpart is permanent.
			if hasParam {
				d, err := time.ParseDuration(param)
				if err != nil || d < 0 {
					return s, fmt.Errorf("chaos: step %q: bad duration %q", tok, param)
				}
				step.Dur = d
			}
		default:
			if hasParam {
				return s, fmt.Errorf("chaos: step %q: %s takes no parameter", tok, kind)
			}
		}
		counted := kind == Loss || kind == Corrupt || kind == HeartbeatDelay
		if step.Count == 0 && counted {
			step.Count = 1
		} else if count > 0 && !counted {
			return s, fmt.Errorf("chaos: step %q: %s takes no count", tok, kind)
		}
		s.Steps = append(s.Steps, step)
	}
	sort.SliceStable(s.Steps, func(i, j int) bool { return s.Steps[i].At < s.Steps[j].At })
	return s, nil
}

// MustParse is Parse, panicking on error; for statically-known specs.
func MustParse(spec string) Schedule {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

// namedSpecs are the stock schedules the soak harness and tests run under.
var namedSpecs = map[string]string{
	// clean: no faults — the control arm.
	"clean": "",
	// flaky: a little base latency, a write stall, then a mid-stream cut.
	// On a reconnecting client each fresh conn restarts the script, so the
	// session dies and resumes every ~144 KiB — sustained churn.
	"flaky": "latency@0:2ms,stallw@49152:60ms,disc@147456",
	// lossy: recurring burst loss and byte corruption every 96 KiB.
	"lossy": "loss@49152x2,corrupt@98304,loop@98304",
	// degraded: added latency, then the path collapses to 256 KiB/s.
	"degraded": "latency@0:15ms,bw@32768:262144",
	// partition: the read direction goes dark after 64 KiB (half-open).
	"partition": "halfopen@65536",
}

// Named returns one of the stock schedules: clean, flaky, lossy, degraded,
// partition.
func Named(name string) (Schedule, error) {
	spec, ok := namedSpecs[name]
	if !ok {
		return Schedule{}, fmt.Errorf("chaos: unknown schedule %q (have %s)", name, strings.Join(NamedSchedules(), ", "))
	}
	s, err := Parse(spec)
	if err != nil {
		return Schedule{}, err
	}
	s.Name = name
	return s, nil
}

// NamedSchedules lists the stock schedule names, sorted.
func NamedSchedules() []string {
	names := make([]string, 0, len(namedSpecs))
	for n := range namedSpecs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
