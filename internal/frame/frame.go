// Package frame defines the frame representation shared by the simulator and
// the real-time streaming stack: identity, input provenance (for
// motion-to-photon accounting and PriorityFrame), per-step timestamps and,
// for the real stack, pixel payloads.
package frame

import "time"

// InputID identifies a user input event. Zero means "no input": the frame
// was triggered by the application's internal refresh (§3 of the paper notes
// most frames are refresh frames).
type InputID uint64

// InputStamp records one user input: its id and the client-side time it was
// issued. When several inputs are pending at render time they are combined
// into one frame (§5.3), and the frame carries all of their stamps so that
// motion-to-photon latency can be accounted per input.
type InputStamp struct {
	ID     InputID
	Issued time.Duration
}

// Frame is one rendered frame traveling through the cloud-3D pipeline
// (Fig. 2 of the paper: render -> copy -> encode -> transmit -> decode).
type Frame struct {
	// Seq is the rendering sequence number, assigned by the renderer.
	Seq uint64

	// Input is the id of the user input this frame responds to, or 0 for
	// internal-refresh frames. When multiple inputs are pending they are
	// combined (§5.3) and Input holds the oldest pending input.
	Input InputID

	// InputTime is when that oldest input was issued by the user (client
	// clock), used for motion-to-photon accounting.
	InputTime time.Duration

	// Priority marks an input-triggered frame handled by PriorityFrame.
	Priority bool

	// Inputs holds all inputs combined into this frame (oldest first);
	// empty for refresh frames.
	Inputs []InputStamp

	// Timestamps of the processing steps, as offsets from run start.
	RenderStart time.Duration
	RenderEnd   time.Duration
	CopyEnd     time.Duration
	EncodeStart time.Duration
	EncodeEnd   time.Duration
	SendEnd     time.Duration
	DecodeEnd   time.Duration

	// Complexity is the scene-complexity factor in effect when the frame
	// was rendered (drives processing times and encoded size).
	Complexity float64

	// Bytes is the encoded size. The simulator fills it from the workload
	// model; the stream stack fills it from the actual codec output.
	Bytes int

	// Pixels is the raw RGBA payload; filled by the real-time streaming
	// stack only (the simulator models frames without content).
	Pixels []byte

	// Retire, when non-nil, is called exactly once by the frame's final
	// consumer when it is done with Pixels, letting producers recycle the
	// pixel buffer. A frame fanned out to several consumers carries a
	// reference-counted closure here.
	Retire func()

	// Encoded carries an already-encoded representation of the frame when a
	// shared encoder sits upstream of per-session buffers (the stream hub's
	// encode-once fan-out path); consumers that find it non-nil must not
	// touch Pixels. Typed as any to keep package frame free of codec
	// dependencies.
	Encoded any

	// Per-step service costs sampled by the workload model (before
	// contention scaling); filled by the simulator only.
	CostRender time.Duration
	CostCopy   time.Duration
	CostEncode time.Duration
	CostDecode time.Duration
}

// Latency returns the motion-to-photon latency for an input-triggered frame:
// time from the input being issued to the frame's decode completing. It
// returns 0 for refresh frames.
func (f *Frame) Latency() time.Duration {
	if f.Input == 0 {
		return 0
	}
	return f.DecodeEnd - f.InputTime
}

// PipelineTime returns the time the frame spent in the pipeline, from render
// start to decode end.
func (f *Frame) PipelineTime() time.Duration {
	return f.DecodeEnd - f.RenderStart
}
