package frame

import (
	"testing"
	"time"
)

func TestLatencyForInputFrame(t *testing.T) {
	f := &Frame{
		Input:     7,
		InputTime: 10 * time.Millisecond,
		DecodeEnd: 55 * time.Millisecond,
	}
	if got := f.Latency(); got != 45*time.Millisecond {
		t.Fatalf("Latency = %v, want 45ms", got)
	}
}

func TestLatencyZeroForRefreshFrame(t *testing.T) {
	f := &Frame{DecodeEnd: 100 * time.Millisecond}
	if f.Latency() != 0 {
		t.Fatal("refresh frame must report zero MtP latency")
	}
}

func TestPipelineTime(t *testing.T) {
	f := &Frame{RenderStart: 5 * time.Millisecond, DecodeEnd: 42 * time.Millisecond}
	if got := f.PipelineTime(); got != 37*time.Millisecond {
		t.Fatalf("PipelineTime = %v", got)
	}
}
