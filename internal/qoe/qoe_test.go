package qoe

import (
	"testing"
	"testing/quick"
)

func goodStream() Observation {
	return Observation{
		MeanFPS: 60, TailFPS: 55, MeanLatency: 40, TailLatency: 70,
		StutterIndex: 0.1, DisplayRate: 60, RefreshHz: 60,
	}
}

func TestPanelDeterministic(t *testing.T) {
	a := NewPanel(30, 7).Evaluate(goodStream())
	b := NewPanel(30, 7).Evaluate(goodStream())
	if a != b {
		t.Fatalf("same-seed panels diverged: %+v vs %+v", a, b)
	}
}

func TestPanelSize(t *testing.T) {
	if NewPanel(30, 1).Size() != 30 {
		t.Fatal("wrong panel size")
	}
}

func TestCountsSumToPanelSize(t *testing.T) {
	p := NewPanel(30, 3)
	r := p.Evaluate(goodStream())
	for _, c := range []Counts{r.Lags, r.Stutters, r.Tearing} {
		if c.Yes+c.Maybe+c.No != 30 {
			t.Fatalf("counts do not sum to 30: %+v", c)
		}
	}
}

func TestRatingOrdering(t *testing.T) {
	p := NewPanel(30, 5)
	good := p.Evaluate(NonCloud())
	laggy := p.Evaluate(Observation{
		MeanFPS: 55, TailFPS: 40, MeanLatency: 400, TailLatency: 900,
		StutterIndex: 0.2, DisplayRate: 55, RefreshHz: 60,
	})
	choppy := p.Evaluate(Observation{
		MeanFPS: 18, TailFPS: 5, MeanLatency: 60, TailLatency: 120,
		StutterIndex: 0.8, DisplayRate: 18, RefreshHz: 60,
	})
	if good.MeanRating <= laggy.MeanRating {
		t.Fatalf("laggy stream rated %.1f >= good %.1f", laggy.MeanRating, good.MeanRating)
	}
	if good.MeanRating <= choppy.MeanRating {
		t.Fatalf("choppy stream rated %.1f >= good %.1f", choppy.MeanRating, good.MeanRating)
	}
}

func TestLagVerdictsTrackLatency(t *testing.T) {
	p := NewPanel(30, 9)
	low := p.Evaluate(goodStream())
	high := goodStream()
	high.MeanLatency, high.TailLatency = 600, 1500
	worst := p.Evaluate(high)
	if worst.Lags.Yes <= low.Lags.Yes {
		t.Fatalf("600ms latency produced %d lag-yes vs %d at 40ms", worst.Lags.Yes, low.Lags.Yes)
	}
	if worst.Lags.Yes < 25 {
		t.Fatalf("seconds-scale latency should be near-universally noticed, got %d/30", worst.Lags.Yes)
	}
}

func TestTearingRequiresUnsyncedDisplay(t *testing.T) {
	o := goodStream()
	o.VSynced = true
	if e := o.TearingExposure(); e > 0.05 {
		t.Fatalf("vsynced exposure = %.2f", e)
	}
	o.VSynced = false
	o.DisplayRate, o.RefreshHz = 120, 60
	if e := o.TearingExposure(); e < 0.5 {
		t.Fatalf("2x-overdriven display exposure = %.2f, want high", e)
	}
}

func TestTearingDefaultsRefresh(t *testing.T) {
	o := goodStream()
	o.RefreshHz = 0
	o.DisplayRate = 90
	if e := o.TearingExposure(); e <= 0 {
		t.Fatalf("exposure = %v, want > 0 with implied 60Hz refresh", e)
	}
}

func TestNonCloudIsExcellent(t *testing.T) {
	r := NewPanel(30, 77).Evaluate(NonCloud())
	if r.MeanRating < 7.5 {
		t.Fatalf("NonCloud rating = %.1f, want ~8", r.MeanRating)
	}
	if r.Lags.No < 15 || r.Tearing.No < 15 {
		t.Fatalf("NonCloud verdicts too negative: %+v", r)
	}
}

func TestStutterIndexFrom(t *testing.T) {
	if idx := StutterIndexFrom(16.6, 1, 16.5, 20); idx > 0.15 {
		t.Fatalf("steady cadence stutter = %.2f, want near 0", idx)
	}
	if idx := StutterIndexFrom(16.6, 25, 10, 120); idx < 0.5 {
		t.Fatalf("wild cadence stutter = %.2f, want high", idx)
	}
	if idx := StutterIndexFrom(0, 0, 0, 0); idx != 1 {
		t.Fatalf("degenerate input = %.2f, want 1", idx)
	}
}

// Property: ratings stay in [1,10] and counts sum correctly for arbitrary
// observations.
func TestPanelBoundsProperty(t *testing.T) {
	p := NewPanel(30, 123)
	f := func(fps, lat, stutter float64) bool {
		o := Observation{
			MeanFPS:      clamp(fps, 0, 300),
			TailFPS:      clamp(fps/2, 0, 300),
			MeanLatency:  clamp(lat, 0, 20000),
			TailLatency:  clamp(lat*2, 0, 40000),
			StutterIndex: clamp(stutter, 0, 1),
			DisplayRate:  clamp(fps, 0, 300),
			RefreshHz:    60,
		}
		r := p.Evaluate(o)
		return r.MeanRating >= 1 && r.MeanRating <= 10 &&
			r.Lags.Yes+r.Lags.Maybe+r.Lags.No == 30
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func clamp(v, lo, hi float64) float64 {
	if v != v || v < lo { // NaN -> lo
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
