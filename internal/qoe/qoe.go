// Package qoe models the paper's 30-participant user study (§6.7) so that
// Figures 14 and 15 can be regenerated. It is explicitly a *model*, standing
// in for human subjects: each simulated participant has randomized
// sensitivities and judges a configuration from the objective stream
// qualities the simulator measures — delivered FPS (mean and tail), motion-
// to-photon latency, stutter (inter-frame-time instability) and tearing
// exposure (unsynchronized display updates).
//
// The functional forms follow the cloud-gaming QoE literature the paper
// cites [14, 88]: latency tolerances around 100 ms for action games, strong
// rating sensitivity to sub-30 FPS delivery, and stutter mattering more than
// raw average FPS.
package qoe

import (
	"math"
	"math/rand"
)

// Observation is the objective input to the panel, produced by the
// simulator (or taken from the paper's NonCloud reference).
type Observation struct {
	MeanFPS      float64 // delivered (displayed) FPS
	TailFPS      float64 // 1 %ile of 200 ms-windowed FPS
	MeanLatency  float64 // mean MtP latency, ms
	TailLatency  float64 // 99 %ile MtP latency, ms
	StutterIndex float64 // 0..1: instability of inter-display times
	DisplayRate  float64 // frames/s actually hitting the display
	RefreshHz    float64 // client display refresh
	VSynced      bool    // true if the client displays on vblank (RVS)
}

// TearingExposure estimates how often a visible tear occurs: zero when
// displays are vblank-synchronized; otherwise it grows with updates racing
// the scanout (display rate above refresh) and with arrival burstiness.
func (o Observation) TearingExposure() float64 {
	if o.VSynced {
		return 0.02 // cable/compositor artifacts only
	}
	refresh := o.RefreshHz
	if refresh <= 0 {
		refresh = 60
	}
	over := 0.0
	if o.DisplayRate > refresh {
		over = (o.DisplayRate - refresh) / refresh
	}
	e := 0.15*o.StutterIndex + 0.8*over
	return math.Min(1, e)
}

// Verdict is a participant's answer to "did you experience X?".
type Verdict int

// The three §6.7 answers.
const (
	Yes Verdict = iota
	Maybe
	No
)

// Counts tallies Yes/Maybe/No answers.
type Counts struct{ Yes, Maybe, No int }

// StudyResult aggregates one configuration's panel outcome, mirroring
// Fig. 14 (MeanRating) and Fig. 15 (the three Counts).
type StudyResult struct {
	MeanRating float64
	Lags       Counts
	Stutters   Counts
	Tearing    Counts
}

// participant holds one simulated user's sensitivities.
type participant struct {
	latTolerance float64 // ms at which lag becomes noticeable
	fpsDemand    float64 // FPS below which the user is bothered
	stutterSense float64 // multiplier on stutter annoyance
	tearSense    float64 // multiplier on tearing annoyance
	ratingOffset float64 // personal anchor shift
}

// Panel is a reproducible set of simulated participants.
type Panel struct {
	members []participant
	rng     *rand.Rand
}

// NewPanel creates n participants with randomized sensitivities drawn from
// seed.
func NewPanel(n int, seed int64) *Panel {
	rng := rand.New(rand.NewSource(seed))
	p := &Panel{rng: rng}
	for i := 0; i < n; i++ {
		p.members = append(p.members, participant{
			latTolerance: 80 + rng.Float64()*80, // 80-160 ms
			fpsDemand:    25 + rng.Float64()*35, // 25-60 FPS
			stutterSense: 0.6 + rng.Float64()*0.8,
			tearSense:    0.5 + rng.Float64()*1.0,
			ratingOffset: rng.NormFloat64() * 0.5,
		})
	}
	return p
}

// Size returns the number of participants.
func (p *Panel) Size() int { return len(p.members) }

// rate computes one participant's 1-10 rating for an observation.
func (m participant) rate(o Observation, tear float64) float64 {
	r := 8.6 + m.ratingOffset
	// Latency annoyance: grows once mean latency passes the personal
	// tolerance; tail latency counts at a discount.
	if o.MeanLatency > m.latTolerance*0.5 {
		r -= 1.3 * math.Log1p((o.MeanLatency-m.latTolerance*0.5)/m.latTolerance)
	}
	if o.TailLatency > 2*m.latTolerance {
		r -= 0.5 * math.Log1p(o.TailLatency/(2*m.latTolerance))
	}
	// FPS: penalty ramps below the personal demand, steeply below 30.
	if o.MeanFPS < m.fpsDemand {
		r -= (m.fpsDemand - o.MeanFPS) * 0.03
	}
	if o.MeanFPS < 30 {
		r -= (30 - o.MeanFPS) * 0.06
	}
	if o.TailFPS < m.fpsDemand*0.5 {
		r -= (m.fpsDemand*0.5 - o.TailFPS) * 0.03
	}
	// Stutter and tearing.
	r -= 1.8 * m.stutterSense * o.StutterIndex
	r -= 1.6 * m.tearSense * tear
	if r < 1 {
		r = 1
	}
	if r > 10 {
		r = 10
	}
	return r
}

// verdict converts an annoyance probability into Yes/Maybe/No with
// participant noise.
func (p *Panel) verdict(prob float64) Verdict {
	u := p.rng.Float64()
	switch {
	case u < prob:
		return Yes
	case u < prob+0.18: // uncertainty band
		return Maybe
	default:
		return No
	}
}

func addVerdict(c *Counts, v Verdict) {
	switch v {
	case Yes:
		c.Yes++
	case Maybe:
		c.Maybe++
	case No:
		c.No++
	}
}

// Evaluate runs the panel over one configuration's observation.
func (p *Panel) Evaluate(o Observation) StudyResult {
	obs := make([]Observation, len(p.members))
	for i := range obs {
		obs[i] = o
	}
	return p.EvaluateAssigned(obs)
}

// EvaluateAssigned runs the panel with a per-participant observation —
// §6.7's protocol, where each participant plays a randomly-picked benchmark
// under the configuration being rated. len(obs) must equal Size().
func (p *Panel) EvaluateAssigned(obs []Observation) StudyResult {
	var res StudyResult
	var sum float64
	for i, m := range p.members {
		o := obs[i%len(obs)]
		tear := o.TearingExposure()
		sum += m.rate(o, tear)

		lagProb := logistic((o.MeanLatency - m.latTolerance*1.3) / 45)
		// Very high tail latency makes lag reports near-certain.
		if o.TailLatency > 4*m.latTolerance {
			lagProb = math.Max(lagProb, 0.9)
		}
		addVerdict(&res.Lags, p.verdict(lagProb))

		stutterProb := math.Min(0.97, o.StutterIndex*1.2*m.stutterSense)
		if o.TailFPS < 15 {
			stutterProb = math.Max(stutterProb, 0.7)
		}
		addVerdict(&res.Stutters, p.verdict(stutterProb))

		tearProb := math.Min(0.95, tear*1.2*m.tearSense)
		addVerdict(&res.Tearing, p.verdict(tearProb))
	}
	res.MeanRating = sum / float64(len(p.members))
	return res
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// NonCloud returns the reference observation for local (non-cloud)
// execution: high FPS, ~20 ms input-to-photon latency, minimal stutter, a
// vsynced display.
func NonCloud() Observation {
	return Observation{
		MeanFPS:      60,
		TailFPS:      55,
		MeanLatency:  22,
		TailLatency:  40,
		StutterIndex: 0.05,
		DisplayRate:  60,
		RefreshHz:    60,
		VSynced:      true,
	}
}

// StutterIndexFrom derives the 0..1 stutter index from inter-display-time
// statistics: the coefficient of variation, saturating at 1, plus a term for
// long hitches (p99 over 3× the median).
func StutterIndexFrom(meanMs, stddevMs, medianMs, p99Ms float64) float64 {
	if meanMs <= 0 {
		return 1
	}
	cov := stddevMs / meanMs
	idx := 0.45 * math.Min(1.6, cov)
	if medianMs > 0 && p99Ms > 4*medianMs {
		idx += 0.25
	}
	return math.Min(1, idx)
}
