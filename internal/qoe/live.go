package qoe

import (
	"math"
	"sort"
	"time"
)

// liveRingSize bounds how many frame events a LiveWindow retains. At 240
// FPS a 2 s window needs 480 slots; 1024 covers every rate this system
// streams at with headroom. Power of two so the ring index is a mask.
const liveRingSize = 1024

// liveEvent is one delivered frame: when it was sent and, when the frame
// answered a user input, its motion-to-photon sample.
type liveEvent struct {
	at    time.Duration // session clock
	mtpUs int64         // 0 = no MtP sample on this frame
}

// LiveStats is one window's objective QoE summary — the live counterpart
// of the offline Observation the simulated user-study panel consumes.
type LiveStats struct {
	FPS       float64 // delivered frames per second over the window
	MeanMtPMs float64 // mean motion-to-photon latency, ms (0 when unsampled)
	P99MtPMs  float64 // tail motion-to-photon latency, ms
	Stutter   float64 // 0..1 inter-frame-time instability (StutterIndexFrom)
	Frames    int     // frames inside the window
}

// LiveWindow turns a stream of frame-delivery events into sliding-window
// QoE stats on the serving path. OnSend is O(1) and allocation-free (the
// hot-path half); Stats sorts into preallocated scratch (the ~1 Hz flush
// half). It is single-goroutine: the owner is the session's send loop.
type LiveWindow struct {
	window time.Duration
	ring   [liveRingSize]liveEvent
	head   int // next write position
	n      int // live events (<= liveRingSize)

	// scratch buffers reused across Stats calls so steady state stays
	// allocation-free.
	gaps []float64
	mtps []float64
}

// NewLiveWindow returns a window evaluator (window <= 0 picks 2s).
func NewLiveWindow(window time.Duration) *LiveWindow {
	if window <= 0 {
		window = 2 * time.Second
	}
	return &LiveWindow{
		window: window,
		gaps:   make([]float64, 0, liveRingSize),
		mtps:   make([]float64, 0, liveRingSize),
	}
}

// Window returns the configured window length.
func (w *LiveWindow) Window() time.Duration { return w.window }

// OnSend records one delivered frame at session-clock time at; mtpUs is
// the frame's motion-to-photon sample in microseconds (0 when the frame
// answered no input).
func (w *LiveWindow) OnSend(at time.Duration, mtpUs int64) {
	if w == nil {
		return
	}
	w.ring[w.head] = liveEvent{at: at, mtpUs: mtpUs}
	w.head = (w.head + 1) & (liveRingSize - 1)
	if w.n < liveRingSize {
		w.n++
	}
}

// Stats evaluates the window ending at now.
func (w *LiveWindow) Stats(now time.Duration) LiveStats {
	if w == nil {
		return LiveStats{}
	}
	cutoff := now - w.window
	w.gaps = w.gaps[:0]
	w.mtps = w.mtps[:0]
	var frames int
	var last time.Duration
	var haveLast bool
	// Walk oldest -> newest so inter-frame gaps come out in order.
	start := (w.head - w.n + liveRingSize) & (liveRingSize - 1)
	for i := 0; i < w.n; i++ {
		ev := w.ring[(start+i)&(liveRingSize-1)]
		if ev.at < cutoff {
			continue
		}
		frames++
		if haveLast {
			w.gaps = append(w.gaps, float64(ev.at-last)/float64(time.Millisecond))
		}
		last, haveLast = ev.at, true
		if ev.mtpUs > 0 {
			w.mtps = append(w.mtps, float64(ev.mtpUs)/1e3)
		}
	}
	st := LiveStats{Frames: frames}
	span := w.window
	if span > now {
		span = now // early in the session the window is still filling
	}
	if span > 0 {
		st.FPS = float64(frames) / span.Seconds()
	}
	if len(w.mtps) > 0 {
		sort.Float64s(w.mtps)
		var sum float64
		for _, v := range w.mtps {
			sum += v
		}
		st.MeanMtPMs = sum / float64(len(w.mtps))
		st.P99MtPMs = percentileSorted(w.mtps, 99)
	}
	if len(w.gaps) >= 2 {
		sort.Float64s(w.gaps)
		var sum float64
		for _, v := range w.gaps {
			sum += v
		}
		mean := sum / float64(len(w.gaps))
		var varsum float64
		for _, v := range w.gaps {
			d := v - mean
			varsum += d * d
		}
		std := math.Sqrt(varsum / float64(len(w.gaps)))
		median := percentileSorted(w.gaps, 50)
		p99 := percentileSorted(w.gaps, 99)
		st.Stutter = StutterIndexFrom(mean, std, median, p99)
	}
	return st
}

// percentileSorted reads the p-th percentile from an ascending slice.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
