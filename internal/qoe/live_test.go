package qoe

import (
	"testing"
	"time"
)

func TestLiveWindowSteadyRate(t *testing.T) {
	w := NewLiveWindow(0)
	if w.Window() != 2*time.Second {
		t.Fatalf("default window = %v", w.Window())
	}
	// 60 FPS for 3 s with a constant 20 ms MtP sample on every frame.
	const gap = time.Second / 60
	var at time.Duration
	for at = gap; at <= 3*time.Second; at += gap {
		w.OnSend(at, 20_000)
	}
	st := w.Stats(3 * time.Second)
	if st.FPS < 58 || st.FPS > 62 {
		t.Errorf("FPS = %v, want ~60", st.FPS)
	}
	if st.MeanMtPMs < 19.9 || st.MeanMtPMs > 20.1 {
		t.Errorf("MeanMtPMs = %v, want 20", st.MeanMtPMs)
	}
	if st.P99MtPMs < 19.9 || st.P99MtPMs > 20.1 {
		t.Errorf("P99MtPMs = %v, want 20", st.P99MtPMs)
	}
	if st.Stutter > 0.05 {
		t.Errorf("Stutter = %v for perfectly even pacing", st.Stutter)
	}
	if st.Frames < 118 || st.Frames > 121 {
		t.Errorf("Frames = %d, want ~120 in a 2s window", st.Frames)
	}
}

func TestLiveWindowSlidesOutOldFrames(t *testing.T) {
	w := NewLiveWindow(time.Second)
	w.OnSend(100*time.Millisecond, 5_000)
	st := w.Stats(5 * time.Second) // frame is 4.9s old: outside the window
	if st.Frames != 0 || st.FPS != 0 || st.MeanMtPMs != 0 {
		t.Fatalf("stale frame leaked into the window: %+v", st)
	}
}

func TestLiveWindowEarlySession(t *testing.T) {
	// 10 frames in the first 100 ms of a session: the window has not filled
	// yet, so FPS must divide by elapsed time, not the full window.
	w := NewLiveWindow(2 * time.Second)
	for i := 1; i <= 10; i++ {
		w.OnSend(time.Duration(i)*10*time.Millisecond, 0)
	}
	st := w.Stats(100 * time.Millisecond)
	if st.FPS < 90 || st.FPS > 110 {
		t.Errorf("early-session FPS = %v, want ~100", st.FPS)
	}
}

func TestLiveWindowUnevenPacingStutters(t *testing.T) {
	even := NewLiveWindow(2 * time.Second)
	uneven := NewLiveWindow(2 * time.Second)
	var at time.Duration
	for i := 0; i < 100; i++ {
		at += 16 * time.Millisecond
		even.OnSend(at, 0)
	}
	at = 0
	for i := 0; i < 100; i++ {
		// Alternate 2 ms / 100 ms gaps: same mean-ish rate, violent jitter.
		if i%2 == 0 {
			at += 2 * time.Millisecond
		} else {
			at += 100 * time.Millisecond
		}
		uneven.OnSend(at, 0)
	}
	se, su := even.Stats(at), uneven.Stats(at)
	if su.Stutter <= se.Stutter {
		t.Errorf("uneven stutter %v should exceed even stutter %v", su.Stutter, se.Stutter)
	}
}

func TestLiveWindowMtPOnlyFromSampledFrames(t *testing.T) {
	w := NewLiveWindow(2 * time.Second)
	w.OnSend(10*time.Millisecond, 0) // no input answered: no MtP sample
	w.OnSend(20*time.Millisecond, 30_000)
	w.OnSend(30*time.Millisecond, 0)
	st := w.Stats(40 * time.Millisecond)
	if st.Frames != 3 {
		t.Fatalf("Frames = %d", st.Frames)
	}
	if st.MeanMtPMs != 30 {
		t.Errorf("MeanMtPMs = %v, want 30 (only the sampled frame counts)", st.MeanMtPMs)
	}
}

func TestLiveWindowRingWraps(t *testing.T) {
	// Window longer than the ring span: capacity, not time, is the bound.
	w := NewLiveWindow(2 * time.Second)
	const gap = time.Millisecond
	var at time.Duration
	for i := 0; i < 3*liveRingSize; i++ {
		at += gap
		w.OnSend(at, 1_000)
	}
	st := w.Stats(at)
	if st.Frames != liveRingSize {
		t.Errorf("Frames = %d, want ring capacity %d (1ms gaps span 1.02s < 2s window)", st.Frames, liveRingSize)
	}
}

func TestLiveWindowStatsAllocFree(t *testing.T) {
	w := NewLiveWindow(time.Second)
	var at time.Duration
	for i := 0; i < 500; i++ {
		at += 2 * time.Millisecond
		w.OnSend(at, int64(i))
	}
	if n := testing.AllocsPerRun(100, func() {
		w.OnSend(at, 5)
		_ = w.Stats(at)
	}); n != 0 {
		t.Errorf("OnSend+Stats allocates %.1f/op, want 0", n)
	}
}

func TestLiveWindowNilSafe(t *testing.T) {
	var w *LiveWindow
	w.OnSend(time.Second, 1)
	if st := w.Stats(time.Second); st != (LiveStats{}) {
		t.Fatalf("nil window stats = %+v", st)
	}
}
