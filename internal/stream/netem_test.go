package stream

import (
	"net"
	"testing"
	"time"

	"odr/internal/testutil"
)

func tcpPair(t *testing.T) (server net.Conn, client net.Conn) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case sc := <-accepted:
		return sc, cc
	case <-time.After(5 * time.Second):
		t.Fatal("accept timed out")
		return nil, nil
	}
}

func TestThrottleBandwidth(t *testing.T) {
	sc, cc := tcpPair(t)
	defer sc.Close()
	defer cc.Close()
	shaped := Throttle(sc, ThrottleConfig{Bandwidth: 1 << 20}) // 1 MiB/s
	defer shaped.Close()
	go func() {
		buf := make([]byte, 64<<10)
		for {
			if _, err := cc.Read(buf); err != nil {
				return
			}
		}
	}()
	const total = 512 << 10 // 0.5 MiB -> ~0.5s at 1MiB/s
	start := time.Now()
	payload := make([]byte, 32<<10)
	for sent := 0; sent < total; sent += len(payload) {
		if _, err := shaped.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed < 350*time.Millisecond || elapsed > 900*time.Millisecond {
		t.Fatalf("0.5MiB at 1MiB/s took %v, want ~0.5s", elapsed)
	}
}

func TestThrottleDelay(t *testing.T) {
	sc, cc := tcpPair(t)
	defer sc.Close()
	defer cc.Close()
	shaped := Throttle(sc, ThrottleConfig{Delay: 80 * time.Millisecond})
	defer shaped.Close()
	start := time.Now()
	if _, err := shaped.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := cc.Read(buf); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 70*time.Millisecond {
		t.Fatalf("delivery after %v, want >= ~80ms", elapsed)
	}
}

// TestRealStackCongestionCollapse reproduces the paper's headline GCE
// result on the REAL stack: over a bandwidth-limited path, NoReg's
// motion-to-photon latency collapses into hundreds of milliseconds of
// queueing while ODR, at the same bandwidth, stays interactive.
func TestRealStackCongestionCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time congestion test")
	}
	run := func(policy PolicyKind) (mtp float64, drops int64) {
		sc, cc := tcpPair(t)
		// ~2 MB/s path; 64x36 frames quantized hard still exceed it under
		// unregulated encoding.
		shaped := Throttle(sc, ThrottleConfig{Bandwidth: 2 << 20, Delay: 10 * time.Millisecond})
		srv := NewServer(shaped, ServerConfig{
			Width: 96, Height: 54, Policy: policy, TargetFPS: 30,
			QueueFrames: 64,
		})
		cli := NewClient(cc)
		srvDone := make(chan error, 1)
		cliDone := make(chan error, 1)
		go func() { srvDone <- srv.Run() }()
		go func() { cliDone <- cli.Run() }()
		// Let the queue build, then measure input latency.
		time.Sleep(700 * time.Millisecond)
		for i := 0; i < 8; i++ {
			if _, err := cli.SendInput(); err != nil {
				break
			}
			time.Sleep(150 * time.Millisecond)
		}
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) && cli.Report().LatencySamples < 4 {
			time.Sleep(20 * time.Millisecond)
		}
		rep := cli.Report()
		st := srv.Stats().Snapshot()
		cli.Stop()
		srv.Stop()
		shaped.Close()
		<-srvDone
		<-cliDone
		if rep.LatencySamples < 4 {
			t.Fatalf("%v: only %d latency samples", policy, rep.LatencySamples)
		}
		return rep.MeanLatency, st.Dropped
	}
	noregMtP, noregDrops := run(NoRegulation)
	odrMtP, _ := run(ODRRegulation)
	t.Logf("real congestion: NoReg MtP %.0fms (drops %d) vs ODR MtP %.0fms", noregMtP, noregDrops, odrMtP)
	if noregMtP < odrMtP*2 {
		t.Fatalf("NoReg MtP %.0fms not well above ODR %.0fms on the saturated path", noregMtP, odrMtP)
	}
}

// TestAdaptiveQualityCoarsensUnderPressure: on a saturated path the server
// must raise its quantization shift (coarser, smaller frames); on a clear
// path it must stay at the configured base.
func TestAdaptiveQualityCoarsensUnderPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("real-time adaptation test")
	}
	run := func(bandwidth float64) uint {
		sc, cc := tcpPair(t)
		conn := net.Conn(sc)
		if bandwidth > 0 {
			conn = Throttle(sc, ThrottleConfig{Bandwidth: bandwidth})
		}
		srv := NewServer(conn, ServerConfig{
			Width: 96, Height: 54, Policy: ODRRegulation, TargetFPS: 60,
			AdaptiveQuality: true,
		})
		cli := NewClient(cc)
		go func() { _ = srv.Run() }()
		go func() { _ = cli.Run() }()
		time.Sleep(2 * time.Second)
		q := srv.CurrentQuantShift()
		cli.Stop()
		srv.Stop()
		conn.Close()
		cc.Close()
		return q
	}
	clear := run(0)
	squeezed := run(256 << 10) // 256 KB/s: far below the stream's needs
	t.Logf("quant shift: clear path %d, squeezed path %d", clear, squeezed)
	if clear != 0 {
		t.Fatalf("clear path coarsened to shift %d", clear)
	}
	if squeezed < 2 {
		t.Fatalf("squeezed path stayed at shift %d, want coarsened", squeezed)
	}
}
