package stream

import (
	"hash/crc32"
	"strconv"
	"sync"
	"sync/atomic"

	"odr/internal/codec"
	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/obs"
	"odr/internal/realrt"
)

// hubShards stripes each lane's session registry so attach/detach contend on
// 1/hubShards of the map and the fan-out path reads copy-on-write snapshots
// without taking any lock.
const hubShards = 8

// encArtifact is one shared encode fanned out to every session on a lane:
// the bitstream bytes, their CRC (computed once, reused in every viewer's
// frame header), and the chain coordinates a session needs to decide between
// forwarding the artifact verbatim and splicing a catch-up frame.
//
// Artifacts are reference-counted: the lane holds one reference while fanning
// out and each session buffer holds one per queued artifact. The final
// release returns the bitstream buffer to the lane's free list, keeping the
// steady-state fan-out path allocation-flat regardless of viewer count.
type encArtifact struct {
	lane *encLane

	seq       uint64 // shared frame sequence number
	parentSeq uint64 // seq this delta was encoded against; 0 for keyframes
	encIdx    int64  // encoder Frames() index of this encode
	key       bool

	bs  []byte
	crc uint32 // crc32.ChecksumIEEE(bs)

	renderNanos int64
	priority    bool

	refs atomic.Int32
}

// release drops one reference; the last one recycles the bitstream buffer.
func (a *encArtifact) release() {
	if a.refs.Add(-1) == 0 {
		a.lane.putBuf(a.bs)
	}
}

// laneShard is one stripe of a lane's session registry. The map is the
// source of truth (mutated under mu); snap is a copy-on-write slice the
// fan-out path reads lock-free.
type laneShard struct {
	mu   sync.Mutex
	m    map[uint32]*hubSession
	snap atomic.Pointer[[]*hubSession]
}

// rebuildLocked refreshes the lock-free snapshot after a map mutation.
func (sh *laneShard) rebuildLocked() {
	snap := make([]*hubSession, 0, len(sh.m))
	for _, s := range sh.m {
		snap = append(snap, s)
	}
	sh.snap.Store(&snap)
}

// encLane is one shared encoder serving every session at one resolution
// (downscale divisor). The hub's renderer offers each frame to every lane;
// the lane encodes it exactly once and fans the artifact out to its
// sessions' latest-wins buffers — encode work is O(frames), not
// O(sessions × frames).
type encLane struct {
	hub  *Hub
	div  int
	w, h int

	// dom is the lane's own wait domain (hub-epoch aligned) so the encode
	// loop's blocking never contends with the renderer or any session.
	dom *realrt.Domain
	buf *core.MultiBuffer // renderer → encode loop, latest-wins

	// encMu serializes the shared encoder between the lane's encode loop
	// (EncodeAppend) and sessions splicing catch-up frames (AppendSplice).
	encMu           sync.Mutex
	enc             *codec.Encoder
	lastSeq         uint64 // shared seq of the newest encode
	lastRenderNanos int64

	// carried holds input stamps of frames dropped before the shared encode
	// (renderer outran the encoder); the next encode answers them.
	carriedMu sync.Mutex
	carried   []frame.InputStamp

	scratch []byte // downsample target; encode-loop goroutine only

	// nanosScratch receives the per-tile encode timings each frame; copied
	// out of the encoder under encMu (the encoder's own slice is rewritten
	// by the next encode) and read by the encode loop only.
	nanosScratch []int64

	// free recycles retired artifact bitstream buffers.
	freeMu sync.Mutex
	free   [][]byte

	shards [hubShards]laneShard

	// Nil-safe labeled counters (label = downscale divisor).
	sharedEncodes *obs.Counter
	splicedKeys   *obs.Counter
	splicedDeltas *obs.Counter
	splicedTiles  *obs.Counter
}

// lane returns the shared-encoder lane for a downscale divisor, creating it
// on first use. It returns nil when the hub is stopping or draining — the
// caller refuses the attach — and never creates a lane after Drain has begun
// (Drain waits on laneWG; a late lane would strand it).
func (h *Hub) lane(div int) *encLane {
	if ls := h.lanes.Load(); ls != nil {
		for _, ln := range *ls {
			if ln.div == div {
				return ln
			}
		}
	}
	h.laneMu.Lock()
	defer h.laneMu.Unlock()
	select {
	case <-h.stopping:
		return nil
	case <-h.draining:
		return nil
	default:
	}
	cur := h.lanes.Load()
	if cur != nil {
		for _, ln := range *cur {
			if ln.div == div {
				return ln
			}
		}
	}
	w := h.cfg.Width / div
	hh := h.cfg.Height / div
	if w < 1 {
		w = 1
	}
	if hh < 1 {
		hh = 1
	}
	ln := &encLane{
		hub: h,
		div: div,
		w:   w,
		h:   hh,
		dom: realrt.NewDomainAt(h.epoch),
		enc: codec.NewEncoder(w, hh, h.cfg.Codec),
	}
	ln.buf = core.NewMultiBuffer(ln.dom)
	if ln.div > 1 {
		ln.scratch = make([]byte, w*hh*4)
	}
	for i := range ln.shards {
		ln.shards[i].m = make(map[uint32]*hubSession)
	}
	if reg := h.cfg.Metrics; reg != nil {
		v := registerLiveVecs(reg)
		lane := strconv.Itoa(div)
		ln.sharedEncodes = v.hubEncodes.With1(lane)
		ln.splicedKeys = v.hubSplicedKeys.With1(lane)
		ln.splicedDeltas = v.hubSplicedDeltas.With1(lane)
		ln.splicedTiles = v.hubSplicedTiles.With1(lane)
	}
	var next []*encLane
	if cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, ln)
	h.lanes.Store(&next)
	h.laneWG.Add(1)
	go func() {
		defer h.laneWG.Done()
		ln.run()
	}()
	return ln
}

// shard returns the registry stripe owning session id.
func (ln *encLane) shard(id uint32) *laneShard { return &ln.shards[id%hubShards] }

// getBuf takes a recycled bitstream buffer (or nil — EncodeAppend grows it).
func (ln *encLane) getBuf() []byte {
	ln.freeMu.Lock()
	defer ln.freeMu.Unlock()
	if n := len(ln.free); n > 0 {
		b := ln.free[n-1]
		ln.free = ln.free[:n-1]
		return b
	}
	return nil
}

// laneFreeCap bounds the artifact free list: enough for the artifacts in
// flight across a latest-wins fan-out (each session pins at most two), with
// drops retiring excess buffers to the GC instead of hoarding them.
const laneFreeCap = 8

func (ln *encLane) putBuf(b []byte) {
	if b == nil {
		return
	}
	ln.freeMu.Lock()
	if len(ln.free) < laneFreeCap {
		ln.free = append(ln.free, b[:0])
	}
	ln.freeMu.Unlock()
}

// offer hands a rendered frame to the lane's latest-wins buffer (renderer
// goroutine). Dropped frames retire immediately and their input stamps carry
// into the next encode.
func (ln *encLane) offer(f *frame.Frame) {
	stored, dropped := ln.buf.PutPriorityStored(f)
	for _, d := range dropped {
		ln.hub.tr.Instant(obs.TrackProxy, "mulbuf-drop", d.Seq, ln.hub.dom.Now())
		ln.hub.ins.Dropped.Inc()
		if len(d.Inputs) > 0 {
			ln.carriedMu.Lock()
			ln.carried = append(ln.carried, d.Inputs...)
			ln.carriedMu.Unlock()
		}
		if d.Retire != nil {
			d.Retire()
		}
	}
	if !stored {
		if f.Retire != nil {
			f.Retire()
		}
	}
}

// run is the lane's encode loop: acquire the latest rendered frame, encode
// it once, fan the artifact out to every session on the lane.
func (ln *encLane) run() {
	h := ln.hub
	w := realrt.NewWaiter(ln.dom)
	for {
		f := ln.buf.Acquire(w)
		if f == nil {
			return // lane buffer closed: hub stopping or drained
		}
		start := h.dom.Now()
		src := f.Pixels
		if ln.div > 1 {
			downsample(f.Pixels, h.cfg.Width, ln.scratch, ln.w, ln.h, ln.div)
			src = ln.scratch
		}
		buf := ln.getBuf()
		ln.encMu.Lock()
		bs, err := ln.enc.EncodeAppend(buf[:0], src)
		if err != nil {
			ln.encMu.Unlock()
			ln.buf.Release()
			if f.Retire != nil {
				f.Retire()
			}
			ln.fail()
			return
		}
		key := codec.IsKeyframe(bs)
		art := &encArtifact{
			lane:        ln,
			seq:         f.Seq,
			encIdx:      ln.enc.Frames(),
			key:         key,
			bs:          bs,
			crc:         crc32.ChecksumIEEE(bs),
			renderNanos: int64(f.RenderEnd),
			priority:    f.Priority,
		}
		if !key {
			art.parentSeq = ln.lastSeq
		}
		ln.lastSeq = f.Seq
		ln.lastRenderNanos = int64(f.RenderEnd)
		tiles, dirty := ln.enc.TileStats()
		// Copy the timings out while still holding encMu: the encoder's own
		// slice is rewritten by the next encode (or a concurrent splice).
		ln.nanosScratch = ln.enc.TileNanosAppend(ln.nanosScratch[:0])
		tileNanos := ln.nanosScratch
		ln.encMu.Unlock()
		h.publishCacheStats()
		encEnd := h.dom.Now()

		h.tr.Span(obs.TrackProxy, "encode", f.Seq, start, encEnd)
		h.ins.Encoded.Inc()
		h.ins.Encode.ObserveDuration(encEnd - start)
		ln.sharedEncodes.Inc()
		h.probe.onEncode(encEnd - start) // shared work bills the shared probe
		if tiles > 0 {
			h.ins.TilesCoded.Add(int64(tiles))
			h.ins.TilesDirty.Add(int64(dirty))
			h.ins.DirtyRatio.Set(float64(dirty) / float64(tiles))
			h.probe.onTiles(tiles, dirty)
			for _, ns := range tileNanos {
				h.ins.TileEncode.Observe(ns / 1e3)
			}
		}

		ln.carriedMu.Lock()
		stamps := append(ln.carried, f.Inputs...)
		ln.carried = nil
		ln.carriedMu.Unlock()

		ef := &frame.Frame{
			Seq:       art.seq,
			Priority:  art.priority,
			Inputs:    stamps,
			RenderEnd: f.RenderEnd,
			Bytes:     len(bs),
			Encoded:   art,
		}
		// The lane holds one reference while fanning out, so a fast session
		// cannot release the artifact to zero mid-broadcast.
		art.refs.Store(1)
		for i := range ln.shards {
			snapP := ln.shards[i].snap.Load()
			if snapP == nil {
				continue
			}
			for _, s := range *snapP {
				art.refs.Add(1)
				stored, dropped := s.buf.PutPriorityStored(ef)
				for _, d := range dropped {
					atomic.AddInt64(&s.dropped, 1)
					h.ins.Dropped.Inc()
					h.tr.Instant(obs.TrackProxy, "mulbuf-drop", d.Seq, h.dom.Now())
					if len(d.Inputs) > 0 {
						s.carriedMu.Lock()
						s.carried = append(s.carried, d.Inputs...)
						s.carriedMu.Unlock()
					}
					if da, ok := d.Encoded.(*encArtifact); ok {
						da.release()
					}
				}
				if stored {
					// Hand the session to a sender worker; a no-op when it
					// is already queued or waiting out a pacing delay.
					h.eng.kick(s)
				} else {
					art.refs.Add(-1)
				}
			}
		}
		ln.buf.Release()
		if f.Retire != nil {
			f.Retire()
		}
		art.release()
	}
}

// fail tears down every session on the lane after an encoder error; the
// shared encoder's state is unusable, so the lane retires rather than
// streaming wrong pixels.
func (ln *encLane) fail() {
	for i := range ln.shards {
		sh := &ln.shards[i]
		sh.mu.Lock()
		sessions := make([]*hubSession, 0, len(sh.m))
		for _, s := range sh.m {
			sessions = append(sessions, s)
		}
		sh.mu.Unlock()
		for _, s := range sessions {
			s.teardown(false)
		}
	}
}
