package stream

import (
	"bytes"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"odr/internal/chaos"
	"odr/internal/codec"
	"odr/internal/testutil"
)

// TestClientPartialDecodeOnTileCorruption exercises the interplay between
// the wire CRC and the per-tile CRCs: a bitstream corrupted *before* the
// frame header was stamped (server-side memory corruption, not wire noise)
// passes the outer checksum, so only the v2 tile CRC can catch it. The
// client must display the intact tiles, keep the previous content in the
// corrupt one, request a keyframe, and recover fully when it lands.
func TestClientPartialDecodeOnTileCorruption(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const w, h = 16, 40 // three 16-row tiles, the last short
	const rowBytes = w * 4
	tile0 := [2]int{0, 16 * rowBytes}
	tile2 := [2]int{32 * rowBytes, h * rowBytes}

	pixA := make([]byte, w*h*4)
	for i := range pixA {
		pixA[i] = byte(i*7 + 3)
	}
	pixB := append([]byte(nil), pixA...)
	for i := 0; i < 16; i++ { // touch tile 0 and tile 2; tile 1 stays clean
		pixB[tile0[0]+i]++
		pixB[tile2[0]+i]++
	}

	enc := codec.NewEncoder(w, h, codec.Options{QuantShift: 0, KeyInterval: 1 << 20})
	bs1, err := enc.Encode(pixA)
	if err != nil {
		t.Fatal(err)
	}
	bs2, err := enc.Encode(pixB)
	if err != nil {
		t.Fatal(err)
	}
	// The final byte of the bitstream belongs to the last dirty tile's
	// payload (tile 2). Flip it BEFORE stamping the frame header, so the
	// wire CRC is consistent with the already-corrupt bitstream.
	bs2[len(bs2)-1] ^= 0xFF

	sc, cc := net.Pipe()
	defer sc.Close()
	cli := NewClient(cc)
	type capture struct {
		seq uint64
		pix []byte
	}
	frames := make(chan capture, 4)
	cli.OnFrame(func(seq uint64, pix []byte) {
		frames <- capture{seq, append([]byte(nil), pix...)}
	})
	cliDone := make(chan error, 1)
	go func() { cliDone <- cli.Run() }()

	srvDone := make(chan error, 1)
	go func() {
		srvDone <- func() error {
			if err := writeMsg(sc, msgFrame, frameMsg(frameMeta{seq: 1}, bs1)); err != nil {
				return err
			}
			if err := writeMsg(sc, msgFrame, frameMsg(frameMeta{seq: 2, parentSeq: 1}, bs2)); err != nil {
				return err
			}
			typ, _, err := readMsg(sc, nil)
			if err != nil {
				return err
			}
			if typ != msgKeyReq {
				return fmt.Errorf("expected msgKeyReq after tile corruption, got type %d", typ)
			}
			enc.ForceKeyframe()
			key, err := enc.Encode(pixB)
			if err != nil {
				return err
			}
			if err := writeMsg(sc, msgFrame, frameMsg(frameMeta{seq: 3}, key)); err != nil {
				return err
			}
			return writeMsg(sc, msgBye, nil)
		}()
	}()

	select {
	case err := <-srvDone:
		if err != nil {
			t.Fatalf("mock server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mock server stuck")
	}
	select {
	case err := <-cliDone:
		if err != nil {
			t.Fatalf("client: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client stuck")
	}

	got := map[uint64][]byte{}
	for len(frames) > 0 {
		c := <-frames
		got[c.seq] = c.pix
	}
	partial, ok := got[2]
	if !ok {
		t.Fatal("the partially-decoded frame was never displayed")
	}
	if !bytes.Equal(partial[tile0[0]:tile0[1]], pixB[tile0[0]:tile0[1]]) {
		t.Error("intact tile 0 was not applied in the partial frame")
	}
	if !bytes.Equal(partial[tile2[0]:tile2[1]], pixA[tile2[0]:tile2[1]]) {
		t.Error("corrupt tile 2 did not keep its previous content")
	}
	if !bytes.Equal(got[3], pixB) {
		t.Error("post-resync keyframe did not restore pixel identity")
	}
	rep := cli.Report()
	if rep.Resyncs != 1 || rep.Frames != 3 {
		t.Fatalf("report = %+v, want 1 resync and 3 displayed frames", rep)
	}
}

// TestReconnectRejectsStaleDeltaChain cuts the first session with a chaos
// disconnect schedule mid-frame, then has the "server" continue its delta
// chain on the new connection — as a server that never noticed the
// reconnect would. The client must reject that first post-reconnect delta
// (fresh decoder, fresh chain state), resync via keyframe request, and
// never display the stale delta.
func TestReconnectRejectsStaleDeltaChain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const w, h = 16, 40
	pix := func(step byte) []byte {
		p := make([]byte, w*h*4)
		for i := range p {
			p[i] = byte(i)*3 + step*17
		}
		return p
	}
	pA, pB, pC := pix(0), pix(1), pix(2)
	enc := codec.NewEncoder(w, h, codec.Options{QuantShift: 0, KeyInterval: 1 << 20})
	mustEncode := func(p []byte) []byte {
		bs, err := enc.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		return bs
	}
	msg1 := frameMsg(frameMeta{seq: 1}, mustEncode(pA))               // key
	msg2 := frameMsg(frameMeta{seq: 2, parentSeq: 1}, mustEncode(pB)) // delta
	msg3 := frameMsg(frameMeta{seq: 3, parentSeq: 2}, mustEncode(pC)) // delta: the stale-chain frame

	// The disconnect lands exactly on the header write of the third frame:
	// session 1 delivers frames 1 and 2 whole, then dies mid-stream.
	disc := chaos.MustParse(fmt.Sprintf("disc@%d", 10+len(msg1)+len(msg2)))

	var sessionN atomic.Int32
	serverConns := make(chan net.Conn, 2)
	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		if sessionN.Add(1) == 1 {
			serverConns <- chaos.Wrap(sc, disc, 1)
		} else {
			serverConns <- sc
		}
		return cc, nil
	}
	cli := NewReconnectingClient(dial, ReconnectPolicy{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    10 * time.Millisecond,
		Seed:        1,
	})
	var seqs []uint64
	cli.OnFrame(func(seq uint64, pix []byte) { seqs = append(seqs, seq) })
	cliDone := make(chan error, 1)
	go func() { cliDone <- cli.Run() }()

	srvDone := make(chan error, 1)
	go func() {
		srvDone <- func() error {
			conn1 := <-serverConns
			if err := writeMsg(conn1, msgFrame, msg1); err != nil {
				return err
			}
			if err := writeMsg(conn1, msgFrame, msg2); err != nil {
				return err
			}
			if err := writeMsg(conn1, msgFrame, msg3); err == nil {
				return fmt.Errorf("expected the chaos disconnect to cut frame 3")
			}
			conn1.Close() // the cut link dies for the reader too

			conn2 := <-serverConns
			defer conn2.Close()
			// Continue the old delta chain as if nothing happened.
			if err := writeMsg(conn2, msgFrame, msg3); err != nil {
				return err
			}
			typ, _, err := readMsg(conn2, nil)
			if err != nil {
				return err
			}
			if typ != msgKeyReq {
				return fmt.Errorf("expected msgKeyReq for the stale delta, got type %d", typ)
			}
			enc.ForceKeyframe()
			key, err := enc.Encode(pC)
			if err != nil {
				return err
			}
			if err := writeMsg(conn2, msgFrame, frameMsg(frameMeta{seq: 4}, key)); err != nil {
				return err
			}
			return writeMsg(conn2, msgBye, nil)
		}()
	}()

	select {
	case err := <-srvDone:
		if err != nil {
			t.Fatalf("mock server: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mock server stuck")
	}
	select {
	case err := <-cliDone:
		if err != nil {
			t.Fatalf("client: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client stuck")
	}

	want := []uint64{1, 2, 4}
	if len(seqs) != len(want) {
		t.Fatalf("displayed seqs %v, want %v", seqs, want)
	}
	for i, s := range want {
		if seqs[i] != s {
			t.Fatalf("displayed seqs %v, want %v — the stale delta must never display", seqs, want)
		}
	}
	rep := cli.Report()
	if rep.Reconnects != 1 || rep.Resyncs != 1 {
		t.Fatalf("report = %+v, want 1 reconnect and 1 resync", rep)
	}
}
