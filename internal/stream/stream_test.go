package stream

import (
	"net"
	"sync"
	"testing"
	"time"

	"odr/internal/testutil"
)

// startPair wires a server and client over an in-process pipe and runs both.
func startPair(t *testing.T, cfg ServerConfig) (*Server, *Client, func()) {
	t.Helper()
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	srv := NewServer(sc, cfg)
	cli := NewClient(cc)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := srv.Run(); err != nil {
			t.Errorf("server: %v", err)
		}
	}()
	go func() {
		defer wg.Done()
		if err := cli.Run(); err != nil {
			t.Errorf("client: %v", err)
		}
	}()
	cleanup := func() {
		cli.Stop()
		srv.Stop()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("stream did not shut down")
		}
	}
	return srv, cli, cleanup
}

func waitFrames(t *testing.T, c *Client, n int64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if c.Report().Frames >= n {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("client received %d frames, want >= %d", c.Report().Frames, n)
}

func TestStreamODRDeliversFrames(t *testing.T) {
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 64, Height: 36, Policy: ODRRegulation, TargetFPS: 120,
	})
	defer cleanup()
	waitFrames(t, cli, 30, 10*time.Second)
	// The server bumps Sent after its pipe write returns, which can trail
	// the client's decode of that same frame by a beat — poll briefly.
	st := srv.Stats().Snapshot()
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		if st.Rendered >= 30 && st.Encoded >= 30 && st.Sent >= 30 {
			break
		}
		time.Sleep(5 * time.Millisecond)
		st = srv.Stats().Snapshot()
	}
	if st.Rendered < 30 || st.Encoded < 30 || st.Sent < 30 {
		t.Fatalf("server stats too low: %+v", st)
	}
	rep := cli.Report()
	if rep.Bytes == 0 || rep.Brightness == 0 {
		t.Fatalf("client did not decode real content: %+v", rep)
	}
}

func TestStreamODRMeetsTargetFPS(t *testing.T) {
	_, cli, cleanup := startPair(t, ServerConfig{
		Width: 48, Height: 27, Policy: ODRRegulation, TargetFPS: 60,
	})
	defer cleanup()
	// Collect ~1.5s of frames.
	waitFrames(t, cli, 80, 15*time.Second)
	rep := cli.Report()
	if rep.FPS < 48 || rep.FPS > 75 {
		t.Fatalf("ODR60 client FPS = %.1f, want ~60", rep.FPS)
	}
}

func TestStreamODRBackpressureLimitsRendering(t *testing.T) {
	// A slow client (tiny pipe + slow reads) must throttle an unregulated-
	// speed ODR renderer via the multi-buffers, with no drops.
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 64, Height: 36, Policy: ODRRegulation, TargetFPS: 0,
	})
	defer cleanup()
	waitFrames(t, cli, 50, 15*time.Second)
	st := srv.Stats().Snapshot()
	// ODR renders on demand: rendered can exceed sent only by the frames
	// buffered in the two multi-buffers (and any priority replacements).
	if st.Rendered > st.Sent+4 {
		t.Fatalf("ODR rendered %d but sent only %d: backpressure failed", st.Rendered, st.Sent)
	}
	if st.Dropped != 0 {
		t.Fatalf("ODR dropped %d frames without inputs", st.Dropped)
	}
}

func TestStreamNoRegRendersExcessively(t *testing.T) {
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 64, Height: 36, Policy: NoRegulation, QueueFrames: 4,
	})
	defer cleanup()
	waitFrames(t, cli, 30, 10*time.Second)
	// Give the renderer time to outrun the pipe.
	time.Sleep(300 * time.Millisecond)
	st := srv.Stats().Snapshot()
	if st.Rendered <= st.Sent {
		t.Fatalf("NoReg rendered %d <= sent %d: expected excessive rendering", st.Rendered, st.Sent)
	}
	if st.Dropped == 0 {
		t.Fatal("NoReg should drop frames (excess rendering)")
	}
}

func TestStreamInputLatencyAndPriority(t *testing.T) {
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 48, Height: 27, Policy: ODRRegulation, TargetFPS: 30,
	})
	defer cleanup()
	waitFrames(t, cli, 5, 10*time.Second)
	for i := 0; i < 5; i++ {
		if _, err := cli.SendInput(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && cli.Report().LatencySamples < 3 {
		time.Sleep(10 * time.Millisecond)
	}
	rep := cli.Report()
	if rep.LatencySamples < 3 {
		t.Fatalf("got %d latency samples, want >= 3", rep.LatencySamples)
	}
	if rep.MeanLatency <= 0 || rep.MeanLatency > 500 {
		t.Fatalf("MtP latency %.1fms implausible", rep.MeanLatency)
	}
	if st := srv.Stats().Snapshot(); st.Priority == 0 {
		t.Fatal("no priority frames produced")
	}
}

func TestStreamInputVisibleInPixels(t *testing.T) {
	// The frame responding to an input flashes brighter: verify causality
	// end-to-end through render -> encode -> network -> decode.
	srv, cli, cleanup := startPair(t, ServerConfig{
		Width: 48, Height: 27, Policy: ODRRegulation, TargetFPS: 30,
	})
	defer cleanup()
	waitFrames(t, cli, 5, 10*time.Second)
	base := cli.Report().Brightness
	if _, err := cli.SendInput(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var peak float64
	for time.Now().Before(deadline) {
		if b := cli.Report().Brightness; b > peak {
			peak = b
		}
		if peak > base+20 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if peak <= base+10 {
		t.Fatalf("input flash not visible: base %.1f, peak %.1f", base, peak)
	}
	_ = srv
}

func TestStreamOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	srvErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			srvErr <- err
			return
		}
		srv := NewServer(conn, ServerConfig{Width: 64, Height: 36, Policy: ODRRegulation, TargetFPS: 60})
		srvErr <- srv.Run()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cli := NewClient(conn)
	cliDone := make(chan error, 1)
	go func() { cliDone <- cli.Run() }()
	waitFrames(t, cli, 30, 15*time.Second)
	if _, err := cli.SendInput(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	cli.Stop()
	select {
	case err := <-cliDone:
		if err != nil {
			t.Fatalf("client: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client did not stop")
	}
	select {
	case err := <-srvErr:
		if err != nil {
			t.Fatalf("server: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop")
	}
}

func TestStreamIntervalRegulation(t *testing.T) {
	_, cli, cleanup := startPair(t, ServerConfig{
		Width: 48, Height: 27, Policy: IntervalRegulation, TargetFPS: 50,
	})
	defer cleanup()
	waitFrames(t, cli, 60, 15*time.Second)
	rep := cli.Report()
	// Interval regulation caps at the target but can lose intervals.
	if rep.FPS > 60 {
		t.Fatalf("Interval-50 client FPS = %.1f, want <= ~50", rep.FPS)
	}
}

func TestStreamOnFrameCallback(t *testing.T) {
	_, cli, cleanup := startPair(t, ServerConfig{
		Width: 32, Height: 18, Policy: ODRRegulation, TargetFPS: 60,
	})
	defer cleanup()
	var mu sync.Mutex
	var seqs []uint64
	cli.OnFrame(func(seq uint64, pix []byte) {
		mu.Lock()
		seqs = append(seqs, seq)
		mu.Unlock()
	})
	waitFrames(t, cli, 20, 10*time.Second)
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) == 0 {
		t.Fatal("OnFrame callback never invoked")
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("frame sequence not increasing: %v", seqs[max(0, i-2):i+1])
		}
	}
}

func TestGameRenderDeterministicShape(t *testing.T) {
	g := NewGame(16, 9)
	buf := make([]byte, g.FrameBytes())
	g.Render(buf)
	b1 := Brightness(buf)
	g.Render(buf)
	b2 := Brightness(buf)
	if b1 == 0 || b2 == 0 {
		t.Fatal("rendered frames are black")
	}
	g.OnInput()
	g.Render(buf)
	if b3 := Brightness(buf); b3 <= b2 {
		t.Fatalf("input flash did not brighten frame: %.1f <= %.1f", b3, b2)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
