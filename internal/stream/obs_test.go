package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"odr/internal/obs"
)

// TestHubObservability runs a traced, metered hub with a live debug server:
// a real client streams frames over a pipe while /debug/odr and /debug/pprof/
// are scraped from a loopback listener, and Stop must log a final summary.
func TestHubObservability(t *testing.T) {
	tr := obs.NewTracer(1 << 14)
	reg := obs.NewRegistry()
	var logMu sync.Mutex
	var logged []string
	h := NewHub(HubConfig{
		Width: 48, Height: 27, TargetFPS: 90,
		Trace:   tr,
		Metrics: reg,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	go h.Run()

	ds, err := obs.ServeDebug("127.0.0.1:0", func() any {
		return map[string]any{"hub": h.Snapshot(), "metrics": reg.Snapshot()}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()

	cli, _, clean := attachClient(t, h, 0)
	waitFrames(t, cli, 20, 10*time.Second)

	// Poke the game so the input path is traced too.
	if _, err := cli.SendInput(); err != nil {
		t.Fatalf("SendInput: %v", err)
	}
	waitFrames(t, cli, 25, 10*time.Second)

	get := func(path string) []byte {
		resp, err := http.Get("http://" + ds.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return body
	}

	var snap struct {
		Hub struct {
			Rendered int64            `json:"rendered"`
			Clients  []map[string]any `json:"clients"`
		} `json:"hub"`
		Metrics map[string]any `json:"metrics"`
	}
	if err := json.Unmarshal(get("/debug/odr"), &snap); err != nil {
		t.Fatalf("/debug/odr is not valid JSON: %v", err)
	}
	if snap.Hub.Rendered == 0 {
		t.Error("/debug/odr reports zero rendered frames")
	}
	if len(snap.Hub.Clients) != 1 {
		t.Errorf("/debug/odr reports %d clients, want 1", len(snap.Hub.Clients))
	}
	if _, ok := snap.Metrics["frames_rendered"]; !ok {
		t.Errorf("/debug/odr metrics missing frames_rendered: %v", snap.Metrics)
	}
	if !strings.Contains(string(get("/debug/pprof/goroutine?debug=1")), "goroutine") {
		t.Error("/debug/pprof/goroutine did not return a goroutine dump")
	}

	clean()
	h.Stop()

	logMu.Lock()
	defer logMu.Unlock()
	if len(logged) == 0 {
		t.Fatal("Stop did not log a final summary via Logf")
	}
	if !strings.Contains(logged[0], "rendered=") || !strings.Contains(logged[0], "sessions_served=") {
		t.Errorf("summary line missing counters: %q", logged[0])
	}

	// The tracer saw the whole lifecycle: render and encode spans, tx spans,
	// and the input instant from SendInput.
	seen := map[string]bool{}
	for _, ev := range tr.Events() {
		seen[ev.Name] = true
	}
	for _, want := range []string{"render", "encode", "tx", "input"} {
		if !seen[want] {
			t.Errorf("tracer never recorded %q events (saw %v)", want, seen)
		}
	}

	if reg.Counter("frames_rendered").Value() == 0 {
		t.Error("frames_rendered counter never incremented")
	}
	if reg.Histogram("encode_us").Count() == 0 {
		t.Error("encode_us histogram empty")
	}
}

// TestHubSnapshotTotalsSurviveDetach checks the lifetime totals: a session's
// counters must fold into the hub snapshot after it detaches.
func TestHubSnapshotTotalsSurviveDetach(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 48, Height: 27, TargetFPS: 120})
	defer stop()
	cli, stats, clean := attachClient(t, h, 0)
	waitFrames(t, cli, 10, 10*time.Second)
	clean()
	var st SessionStats
	select {
	case st = <-stats:
	case <-time.After(10 * time.Second):
		t.Fatal("detach callback never fired")
	}
	// Wait for the detach goroutine to fold totals in.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap := h.Snapshot()
		if snap["sessions_served"].(int64) == 1 && snap["sent"].(int64) == st.Sent {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("totals never reflected detached session: %+v vs %+v", snap, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHubObservabilityOffIsInert checks a hub without Trace/Metrics still
// streams (the nil fast paths) and Snapshot works standalone.
func TestHubObservabilityOffIsInert(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 48, Height: 27, TargetFPS: 90})
	defer stop()
	cli, _, clean := attachClient(t, h, 0)
	defer clean()
	waitFrames(t, cli, 10, 10*time.Second)
	snap := h.Snapshot()
	if snap["rendered"].(int64) == 0 {
		t.Fatal("no frames rendered with observability off")
	}
}
