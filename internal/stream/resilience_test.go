package stream

import (
	"errors"
	"net"
	"testing"
	"time"

	"odr/internal/chaos"
	"odr/internal/testutil"
)

// ---------------------------------------------------------------------------
// Reconnect, drain and eviction unit tests: the life-cycle edges the failure
// matrix exercises end-to-end, pinned down one behavior at a time.
// ---------------------------------------------------------------------------

// TestClientReconnectBudgetExhausted: when every dial fails, Run gives up
// after exactly MaxAttempts with the budget error wrapping the last failure.
func TestClientReconnectBudgetExhausted(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dialErr := errors.New("refused")
	dials := 0
	cli := NewReconnectingClient(func() (net.Conn, error) {
		dials++
		return nil, dialErr
	}, ReconnectPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond})
	err := cli.Run()
	if !errors.Is(err, dialErr) {
		t.Fatalf("Run = %v, want wrapped dial error", err)
	}
	if dials != 3 {
		t.Fatalf("dialed %d times, want 3", dials)
	}
}

// TestReconnectBackoffStopNoLeak: Stop during a long backoff sleep must end
// Run immediately — not after the delay elapses — and leave no timer
// goroutine, dial goroutine or connection behind.
func TestReconnectBackoffStopNoLeak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	dialed := make(chan struct{}, 16)
	cli := NewReconnectingClient(func() (net.Conn, error) {
		dialed <- struct{}{}
		return nil, errors.New("refused")
	}, ReconnectPolicy{
		MaxAttempts: 100,
		BaseDelay:   5 * time.Second, // Stop must win long before this elapses
		MaxDelay:    5 * time.Second,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- cli.Run() }()
	select {
	case <-dialed:
	case <-time.After(5 * time.Second):
		t.Fatal("client never dialed")
	}
	// The client is now inside (or entering) its 5s backoff sleep.
	start := time.Now()
	cli.Stop()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after Stop = %v, want nil", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Run did not return within 1s of Stop: backoff sleep ignored the stop")
	}
	if el := time.Since(start); el >= time.Second {
		t.Fatalf("Run took %v to observe Stop", el)
	}
}

// TestClientReconnectBudgetResetsOnProgress: a session that delivers frames
// resets the consecutive-failure budget, so a long-lived flaky stream
// survives far more deaths than MaxAttempts.
func TestClientReconnectBudgetResetsOnProgress(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go h.Run()
	defer h.Stop()

	// Every session dies after ~20 KiB of frames — enough for progress.
	sched := chaos.MustParse("disc@20000")
	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		h.Attach(chaos.Wrap(sc, sched, matrixSeed), 0, nil)
		return cc, nil
	}
	cli := NewReconnectingClient(dial, ReconnectPolicy{
		MaxAttempts: 2,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        matrixSeed,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- cli.Run() }()
	defer cli.Stop()

	// Surviving 3+ reconnects with MaxAttempts=2 proves the reset: without
	// it the third session death would exhaust the budget.
	deadline := time.Now().Add(15 * time.Second)
	for cli.Report().Reconnects < 3 {
		select {
		case err := <-runErr:
			t.Fatalf("client gave up after %d reconnects: %v", cli.Report().Reconnects, err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("stuck at %d reconnects", cli.Report().Reconnects)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli.Stop()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after Stop = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not stop")
	}
}

// TestServerDrainFlushesAndByes: Drain delivers a final frame and an orderly
// msgBye to a live client before the connection closes.
func TestServerDrainFlushesAndByes(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	srv := NewServer(sc, ServerConfig{Width: 32, Height: 18, Policy: ODRRegulation, TargetFPS: 240})
	cli := NewClient(cc)
	srvErr := make(chan error, 1)
	cliErr := make(chan error, 1)
	go func() { srvErr <- srv.Run() }()
	go func() { cliErr <- cli.Run() }()

	waitFrames(t, cli, 5, 10*time.Second)
	before := cli.Report().Frames
	if err := srv.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	// The client must exit via msgBye (nil), having seen the final frame.
	select {
	case err := <-cliErr:
		if err != nil {
			t.Fatalf("client Run = %v, want nil (orderly bye)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client never received the bye")
	}
	if after := cli.Report().Frames; after <= before {
		t.Errorf("no final frame delivered during drain: %d -> %d", before, after)
	}
	select {
	case <-srvErr:
	case <-time.After(10 * time.Second):
		t.Fatal("server loop did not exit")
	}
	cli.Stop()
}

// TestServerDrainTimeout: a client that never reads blocks the flush; Drain
// must give up after its timeout, stop the session, and report it.
func TestServerDrainTimeout(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	srv := NewServer(sc, ServerConfig{Width: 32, Height: 18, Policy: ODRRegulation, TargetFPS: 240})
	srvErr := make(chan error, 1)
	go func() { srvErr <- srv.Run() }()

	if err := srv.Drain(200 * time.Millisecond); !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Drain = %v, want ErrDrainTimeout", err)
	}
	select {
	case <-srvErr:
	case <-time.After(10 * time.Second):
		t.Fatal("server loop did not exit after drain timeout")
	}
}

// TestHubDrainByesAllClients: Drain flushes every attached session, each
// client exits via msgBye, and the hub ends with zero sessions.
func TestHubDrainByesAllClients(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go h.Run()
	defer h.Stop()

	const n = 3
	clients := make([]*Client, n)
	errs := make([]chan error, n)
	for i := range clients {
		sc, cc := net.Pipe()
		h.Attach(sc, 0, nil)
		clients[i] = NewClient(cc)
		errs[i] = make(chan error, 1)
		go func(c *Client, ch chan error) { ch <- c.Run() }(clients[i], errs[i])
	}
	for _, c := range clients {
		waitFrames(t, c, 5, 10*time.Second)
	}
	if err := h.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain = %v, want nil", err)
	}
	for i, ch := range errs {
		select {
		case err := <-ch:
			if err != nil {
				t.Errorf("client %d Run = %v, want nil (orderly bye)", i, err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("client %d never received the bye", i)
		}
	}
	if got := h.Clients(); got != 0 {
		t.Errorf("Clients after drain = %d, want 0", got)
	}
}

// TestHubAttachDuringDrainRefused: a connection attached to a draining or
// stopped hub is closed immediately and its detach callback fires with zero
// stats — never a silently dangling session.
func TestHubAttachDuringDrainRefused(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go h.Run()
	if err := h.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain = %v", err)
	}

	sc, cc := net.Pipe()
	detached := make(chan SessionStats, 1)
	h.Attach(sc, 0, func(s SessionStats) { detached <- s })
	select {
	case st := <-detached:
		if st.Sent != 0 {
			t.Errorf("refused session reported stats %+v", st)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("detach callback never fired for refused attach")
	}
	// The conn must be closed: a read on the peer end terminates.
	cc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := cc.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused conn still open")
	}
}

// TestThrottleCloseInterruptsForwarder: closing a throttled conn must unblock
// a paced write in progress and terminate the forwarder goroutine, even with
// chunks still queued behind a long propagation delay.
func TestThrottleCloseInterruptsForwarder(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	sc, cc := net.Pipe()
	defer cc.Close()
	// 1 KiB/s and 10s delay: the second write blocks in pacing, the first
	// sits in the forwarder waiting out the delay.
	tc := Throttle(sc, ThrottleConfig{Bandwidth: 1024, Delay: 10 * time.Second})
	if _, err := tc.Write(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	wrote := make(chan error, 1)
	go func() {
		_, err := tc.Write(make([]byte, 4096)) // ~4s of pacing
		wrote <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the write enter its pacing sleep
	if err := tc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wrote:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("paced write after Close = %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("paced write still blocked after Close")
	}
	// VerifyNoLeaks (cleanup) asserts the forwarder goroutine is gone well
	// before its 10s propagation delay would have elapsed.
}
