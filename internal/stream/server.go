package stream

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"odr/internal/codec"
	"odr/internal/core"
	"odr/internal/frame"
	"odr/internal/obs"
	"odr/internal/realrt"
)

// PolicyKind selects the server's FPS regulation strategy.
type PolicyKind int

// The regulation strategies of the real-time stack.
const (
	// NoRegulation renders as fast as possible; the newest frame wins and
	// encoded frames queue (deeply) toward the network.
	NoRegulation PolicyKind = iota
	// IntervalRegulation starts each render on a fixed interval grid.
	IntervalRegulation
	// ODRRegulation is OnDemand Rendering: Mul-Buf1/Mul-Buf2 backpressure,
	// the Algorithm 1 pacer, and PriorityFrame.
	ODRRegulation
)

// String implements fmt.Stringer.
func (k PolicyKind) String() string {
	switch k {
	case NoRegulation:
		return "NoReg"
	case IntervalRegulation:
		return "Interval"
	case ODRRegulation:
		return "ODR"
	}
	return "Unknown"
}

// ServerConfig configures Serve.
type ServerConfig struct {
	// Width and Height are the stream resolution (defaults 320×180).
	Width, Height int
	// Policy selects the regulation strategy.
	Policy PolicyKind
	// TargetFPS is the QoS goal for Interval and ODR (0 = maximize).
	TargetFPS float64
	// Codec configures the encoder.
	Codec codec.Options
	// RenderCost, when set, is sampled per frame to emulate a heavier GPU
	// (slept inside the render step).
	RenderCost func() time.Duration
	// QueueFrames is the send-queue depth for the push policies
	// (default 256, emulating deep socket buffers).
	QueueFrames int
	// AdaptiveQuality lets the server coarsen quantization when the
	// connection backpressures (sender blocked on writes) and restore it
	// when the path has headroom — bitrate adaptation in the spirit of the
	// §2-cited encoding-adaptation work, orthogonal to FPS regulation.
	AdaptiveQuality bool
	// WriteTimeout, when > 0, bounds each frame write: a client that cannot
	// drain its socket for this long is evicted (the session ends with an
	// eviction error) instead of stalling the stream forever. Frames already
	// queue latest-wins (drop-oldest), so eviction is the last resort after
	// dropping has failed to keep up. 0 disables the deadline.
	WriteTimeout time.Duration
	// ReadTimeout, when > 0, bounds each read on the input path; it doubles
	// as a liveness check that catches half-open connections (a peer that
	// vanished without closing). 0 disables it — an idle but healthy client
	// sends nothing, so only set this when inputs (or keepalives) flow.
	ReadTimeout time.Duration
	// Trace, when non-nil, records the frame lifecycle (render, copy,
	// encode, tx spans; input/display instants; mulbuf-drop and
	// priority-frame events) against this server's wall clock — the same
	// vocabulary as the simulator, exportable as a Perfetto timeline of a
	// real stream. Nil disables tracing at nil-check cost.
	Trace *obs.Tracer
	// Metrics, when non-nil, receives live counters and histograms under
	// the obs.FrameInstruments names (shared with the simulator), for the
	// -debug-addr /debug/odr endpoint. Nil disables it at nil-check cost.
	Metrics *obs.Registry
	// SessionLabel names this session in the labeled live series
	// (odr_session_fps{session=...} and friends). Empty picks "default".
	SessionLabel string
}

func (c *ServerConfig) applyDefaults() {
	if c.Width == 0 {
		c.Width = 320
	}
	if c.Height == 0 {
		c.Height = 180
	}
	if c.QueueFrames == 0 {
		c.QueueFrames = 256
	}
}

// ServerStats counts server-side events; all fields are atomics.
type ServerStats struct {
	Rendered int64
	Encoded  int64
	Sent     int64
	Dropped  int64
	Priority int64
	Inputs   int64
	KeyReqs  int64
	Evicted  int64
}

// snapshotInt64 reads one counter.
func load(v *int64) int64 { return atomic.LoadInt64(v) }

// Snapshot returns a copy of the counters.
func (s *ServerStats) Snapshot() ServerStats {
	return ServerStats{
		Rendered: load(&s.Rendered),
		Encoded:  load(&s.Encoded),
		Sent:     load(&s.Sent),
		Dropped:  load(&s.Dropped),
		Priority: load(&s.Priority),
		Inputs:   load(&s.Inputs),
		KeyReqs:  load(&s.KeyReqs),
		Evicted:  load(&s.Evicted),
	}
}

// Server streams the synthetic game to one client connection.
type Server struct {
	cfg   ServerConfig
	conn  net.Conn
	dom   *realrt.Domain
	game  *Game
	box   *core.InputBox
	buf1  *core.MultiBuffer
	buf2  *core.MultiBuffer // ODR only
	sendq chan *frame.Frame // push policies only
	pacer *core.Pacer
	enc   *codec.Encoder

	stats ServerStats

	stopOnce sync.Once
	stopping chan struct{}
	wg       sync.WaitGroup

	// Drain sequencing: Drain closes draining; the app loop renders one
	// final frame and retires; the pipeline flushes; the send loop writes
	// msgBye and closes drained on exit.
	drainOnce sync.Once
	draining  chan struct{}
	drained   chan struct{}

	// evictCtr counts slow-client evictions in the metrics registry
	// (nil-safe no-op without one).
	evictCtr *obs.Counter

	// wantKey is set by a client keyframe request (decoder resync after
	// joining mid-stream or recovering from loss) and consumed by the
	// encode loop.
	wantKey atomic.Bool

	// sendBlockedNs accumulates time the sender spent blocked in writes;
	// quantShift mirrors the encoder's current setting (adaptive quality).
	sendBlockedNs int64
	quantShift    int64

	// carried holds input stamps whose frames were dropped before being
	// sent; they attach to the next rendered frame so motion-to-photon
	// accounting survives latest-wins drops (same mechanism as the
	// simulator's pipeline).
	carriedMu sync.Mutex
	carried   []frame.InputStamp

	// pool recycles raw frame buffers between render and encode.
	pool sync.Pool
	// payloadFree recycles encoded frame payloads (frame header +
	// bitstream in one buffer) between the sender and the encoder. A
	// plain channel free list avoids sync.Pool's interface boxing on the
	// per-frame path; when it runs dry the encoder allocates.
	payloadFree chan []byte

	// Observability (nil-safe; see ServerConfig.Trace/Metrics).
	tr    *obs.Tracer
	ins   obs.FrameInstruments
	probe *sessionProbe
}

// NewServer prepares a server for conn; call Run to start streaming.
func NewServer(conn net.Conn, cfg ServerConfig) *Server {
	cfg.applyDefaults()
	if cfg.SessionLabel == "" {
		cfg.SessionLabel = "default"
	}
	dom := realrt.NewDomain()
	s := &Server{
		cfg:      cfg,
		conn:     conn,
		dom:      dom,
		game:     NewGame(cfg.Width, cfg.Height),
		box:      core.NewInputBox(dom),
		buf1:     core.NewMultiBuffer(dom),
		pacer:    core.NewPacer(cfg.TargetFPS),
		enc:      codec.NewEncoder(cfg.Width, cfg.Height, cfg.Codec),
		stopping: make(chan struct{}),
		draining: make(chan struct{}),
		drained:  make(chan struct{}),
		tr:       cfg.Trace,
		ins:      obs.NewFrameInstruments(cfg.Metrics),
		evictCtr: cfg.Metrics.Counter(obs.NameSessionsEvicted),
	}
	s.probe = newSessionProbe(cfg.Metrics, cfg.SessionLabel)
	recordSessionStart(cfg.Metrics, cfg.Policy.String(), cfg.Codec)
	s.game.ExtraCost = cfg.RenderCost
	s.quantShift = int64(cfg.Codec.QuantShift)
	size := s.game.FrameBytes()
	s.pool.New = func() any { return make([]byte, size) }
	s.payloadFree = make(chan []byte, 16)
	if cfg.Policy == ODRRegulation {
		s.buf2 = core.NewMultiBuffer(dom)
		// PriorityFrame: input arrivals cancel the Mul-Buf1 wait.
		s.box.Subscribe(s.buf1.Changed())
	} else {
		s.sendq = make(chan *frame.Frame, cfg.QueueFrames)
	}
	if s.tr != nil || cfg.Metrics != nil {
		// MulBuf drops and pacer delays surface through the core hooks so
		// the event stream matches the simulator's.
		onDrop := func(n int, at uint64) {
			s.tr.Instant(obs.TrackRender, "mulbuf-drop", at, s.dom.Now())
			s.ins.Dropped.Add(int64(n))
		}
		s.buf1.OnDrop = onDrop
		if s.buf2 != nil {
			s.buf2.OnDrop = onDrop
		}
		s.pacer.OnDelay = func(end, d time.Duration) {
			s.tr.Span(obs.TrackPacer, "pace", 0, end, end+d)
		}
	}
	return s
}

// Stats returns the server's counters (atomically readable while running).
func (s *Server) Stats() *ServerStats { return &s.stats }

// DebugSnapshot returns the /debug/odr JSON view of this session: the
// regulation configuration, the live counters and the MulBuf drop state.
// It is safe to call from any goroutine while the server is streaming.
func (s *Server) DebugSnapshot() map[string]any {
	st := s.stats.Snapshot()
	snap := map[string]any{
		"policy":            s.cfg.Policy.String(),
		"target_fps":        s.cfg.TargetFPS,
		"pacer_interval_ms": float64(s.pacer.Interval()) / float64(time.Millisecond),
		"rendered":          st.Rendered,
		"encoded":           st.Encoded,
		"sent":              st.Sent,
		"dropped":           st.Dropped,
		"priority":          st.Priority,
		"inputs":            st.Inputs,
		"key_requests":      st.KeyReqs,
		"quant_shift":       s.CurrentQuantShift(),
		"mulbuf1_drops":     s.buf1.Drops(),
	}
	if s.buf2 != nil {
		snap["mulbuf2_drops"] = s.buf2.Drops()
	}
	return snap
}

// Game exposes the synthetic application (for tests).
func (s *Server) Game() *Game { return s.game }

// Run streams until the connection closes or Stop is called. It returns the
// first connection error (io.EOF/closed-connection errors are normal
// shutdown and reported as nil).
func (s *Server) Run() error {
	errCh := make(chan error, 4)
	s.wg.Add(4)
	go s.appLoop()
	go s.encodeLoop(errCh)
	go s.sendLoop(errCh)
	go s.inputLoop(errCh)
	err := <-errCh
	s.Stop()
	s.wg.Wait()
	s.probe.close(s.dom.Now(), false)
	if err != nil && !isClosedErr(err) {
		return err
	}
	return nil
}

// Stop shuts the server down and closes the connection.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopping)
		s.buf1.Close()
		if s.buf2 != nil {
			s.buf2.Close()
		}
		s.conn.Close()
	})
}

func (s *Server) stopped() bool {
	select {
	case <-s.stopping:
		return true
	default:
		return false
	}
}

// ErrDrainTimeout is returned by Drain when the pipeline could not flush the
// final frame within the allotted time; the session is stopped regardless.
var ErrDrainTimeout = errors.New("stream: drain timed out")

// Drain ends the stream gracefully: the application renders one last frame,
// the pipeline flushes everything already queued, the client receives that
// final frame followed by an orderly msgBye, and only then does the
// connection close. It returns ErrDrainTimeout if the flush did not finish
// in time (slow or dead client); either way the server is stopped when Drain
// returns.
func (s *Server) Drain(timeout time.Duration) error {
	s.drainOnce.Do(func() { close(s.draining) })
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-s.drained:
		s.Stop()
		return nil
	case <-s.stopping:
		return nil
	case <-t.C:
		s.Stop()
		return ErrDrainTimeout
	}
}

func (s *Server) drainRequested() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// evict records a slow-client eviction and returns the error Run reports.
func (s *Server) evict(op string, err error) error {
	atomic.AddInt64(&s.stats.Evicted, 1)
	s.evictCtr.Inc()
	s.tr.Instant(obs.TrackNetwork, "evict", 0, s.dom.Now())
	return fmt.Errorf("stream: session evicted (%s stalled beyond deadline): %w", op, err)
}

// isTimeoutErr reports a deadline-exceeded I/O error.
func isTimeoutErr(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// appLoop is the 3D application: gate (per policy), consume inputs, render,
// submit.
func (s *Server) appLoop() {
	defer s.wg.Done()
	w := realrt.NewWaiter(s.dom)
	interval := time.Duration(0)
	if s.cfg.Policy == IntervalRegulation && s.cfg.TargetFPS > 0 {
		interval = time.Duration(float64(time.Second) / s.cfg.TargetFPS)
	}
	nextTick := s.dom.Now()
	var seq uint64
	for !s.stopped() {
		// Gate.
		switch s.cfg.Policy {
		case ODRRegulation:
			s.buf1.WaitBackFree(w, s.box.PendingLocked)
		case IntervalRegulation:
			if interval > 0 {
				now := s.dom.Now()
				if nextTick <= now {
					nextTick += ((now-nextTick)/interval + 1) * interval
				}
				w.Sleep(nextTick - now)
				nextTick += interval
			}
		}
		if s.stopped() {
			return
		}
		if s.drainRequested() {
			// Final frame: render once more, jump the queue (replacing
			// anything not yet encoding), then retire the producer. Closing
			// buf1 lets the encoder drain what's buffered and shut the
			// pipeline down stage by stage toward the msgBye.
			seq++
			s.renderFinalFrame(seq)
			s.buf1.Close()
			return
		}
		// Render.
		stamps := s.box.ConsumePending()
		for range stamps {
			s.game.OnInput()
		}
		stamps = append(s.takeCarried(), stamps...)
		pix := s.pool.Get().([]byte)
		start := s.dom.Now()
		s.game.Render(pix)
		seq++
		f := &frame.Frame{Seq: seq, Pixels: pix, RenderStart: start, RenderEnd: s.dom.Now()}
		core.Tag(f, stamps)
		s.tr.Span(obs.TrackRender, "render", f.Seq, f.RenderStart, f.RenderEnd)
		s.ins.Rendered.Inc()
		s.ins.Render.ObserveDuration(f.RenderEnd - f.RenderStart)
		s.probe.onRender(f.RenderEnd - f.RenderStart)
		if f.Priority {
			atomic.AddInt64(&s.stats.Priority, 1)
			s.tr.Instant(obs.TrackRender, "priority-frame", f.Seq, f.RenderStart)
			s.ins.Priority.Inc()
		}
		atomic.AddInt64(&s.stats.Rendered, 1)
		// Submit.
		if s.cfg.Policy == ODRRegulation && !f.Priority {
			s.buf1.Put(w, f)
			continue
		}
		// Priority frames and the push policies' latest-wins slot both use
		// PutPriority: replace anything not yet being encoded.
		for _, d := range s.buf1.PutPriority(f) {
			s.addCarried(d.Inputs)
			s.recycle(d)
			atomic.AddInt64(&s.stats.Dropped, 1)
		}
	}
}

// renderFinalFrame renders the drain frame and queues it ahead of any
// not-yet-encoding frame.
func (s *Server) renderFinalFrame(seq uint64) {
	stamps := s.box.ConsumePending()
	for range stamps {
		s.game.OnInput()
	}
	stamps = append(s.takeCarried(), stamps...)
	pix := s.pool.Get().([]byte)
	start := s.dom.Now()
	s.game.Render(pix)
	f := &frame.Frame{Seq: seq, Pixels: pix, RenderStart: start, RenderEnd: s.dom.Now()}
	core.Tag(f, stamps)
	s.tr.Span(obs.TrackRender, "render", f.Seq, f.RenderStart, f.RenderEnd)
	s.ins.Rendered.Inc()
	s.probe.onRender(f.RenderEnd - f.RenderStart)
	atomic.AddInt64(&s.stats.Rendered, 1)
	for _, d := range s.buf1.PutPriority(f) {
		s.addCarried(d.Inputs)
		s.recycle(d)
		atomic.AddInt64(&s.stats.Dropped, 1)
	}
}

// addCarried stores the input stamps of a dropped frame.
func (s *Server) addCarried(stamps []frame.InputStamp) {
	if len(stamps) == 0 {
		return
	}
	s.carriedMu.Lock()
	s.carried = append(s.carried, stamps...)
	s.carriedMu.Unlock()
}

// takeCarried drains the carried stamps.
func (s *Server) takeCarried() []frame.InputStamp {
	s.carriedMu.Lock()
	out := s.carried
	s.carried = nil
	s.carriedMu.Unlock()
	return out
}

// recycle returns a frame's raw buffer to the pool.
func (s *Server) recycle(f *frame.Frame) {
	if f.Pixels != nil && len(f.Pixels) == s.game.FrameBytes() {
		s.pool.Put(f.Pixels)
		f.Pixels = nil
	}
}

// getPayload returns a recycled payload buffer sized for the frame header,
// allocating a fresh one when the free list is empty.
func (s *Server) getPayload() []byte {
	select {
	case b := <-s.payloadFree:
		return b[:frameHeaderLen]
	default:
		return make([]byte, frameHeaderLen, frameHeaderLen+s.game.FrameBytes()/8)
	}
}

// putPayload returns an encoded payload to the free list (dropping it to the
// GC when the list is full) and clears the frame's reference to it.
func (s *Server) putPayload(f *frame.Frame) {
	b := f.Pixels
	f.Pixels = nil
	if b == nil {
		return
	}
	select {
	case s.payloadFree <- b:
	default:
	}
}

// adaptQuality adjusts the encoder's quantization from the sender's
// observed write-blocking: a saturated path coarsens, a clear path refines
// back toward the configured base. Called from the encode loop (the
// encoder's owner) roughly twice a second.
func (s *Server) adaptQuality(lastCheck *time.Time, blockedAt *int64) {
	const window = 500 * time.Millisecond
	if time.Since(*lastCheck) < window {
		return
	}
	blocked := atomic.LoadInt64(&s.sendBlockedNs)
	frac := float64(blocked-*blockedAt) / float64(window)
	*blockedAt = blocked
	*lastCheck = time.Now()
	q := atomic.LoadInt64(&s.quantShift)
	switch {
	case frac > 0.5 && q < 6:
		q++
	case frac < 0.1 && q > int64(s.cfg.Codec.QuantShift):
		q--
	default:
		return
	}
	atomic.StoreInt64(&s.quantShift, q)
	s.enc.SetQuantShift(uint(q))
}

// CurrentQuantShift reports the encoder's quantization (adaptive quality).
func (s *Server) CurrentQuantShift() uint {
	return uint(atomic.LoadInt64(&s.quantShift))
}

// encodeLoop is the server proxy: copy + encode + (for ODR) pace.
func (s *Server) encodeLoop(errCh chan<- error) {
	defer s.wg.Done()
	w := realrt.NewWaiter(s.dom)
	scratch := make([]byte, s.game.FrameBytes())
	lastCheck := time.Now()
	var blockedAt int64
	var lastEncoded uint64 // parent-chain tag: seq of the last encoded frame
	for {
		f := s.buf1.Acquire(w)
		if f == nil {
			// Producer retired (Stop or Drain): pass the shutdown down the
			// pipeline so the sender flushes everything already encoded —
			// the sender, not this loop, reports completion on errCh.
			if s.sendq != nil {
				close(s.sendq)
			} else {
				s.buf2.Close()
			}
			return
		}
		start := s.dom.Now()
		if s.cfg.AdaptiveQuality {
			s.adaptQuality(&lastCheck, &blockedAt)
		}
		if s.wantKey.Swap(false) {
			s.enc.ForceKeyframe()
		}
		// Step 4: the framebuffer copy is a real copy.
		copy(scratch, f.Pixels)
		s.recycle(f)
		f.CopyEnd = s.dom.Now()
		// Step 5: encode straight after a recycled frame-header prefix, so
		// the sender can write header+bitstream without assembling a new
		// payload per frame.
		payload, err := s.enc.EncodeAppend(s.getPayload(), scratch)
		if err != nil {
			errCh <- fmt.Errorf("stream: encode: %w", err)
			return
		}
		bs := payload[frameHeaderLen:]
		var parent uint64
		if !codec.IsKeyframe(bs) {
			parent = lastEncoded
		}
		lastEncoded = f.Seq
		putFrameHeader(payload, frameMeta{
			seq:         f.Seq,
			parentSeq:   parent,
			inputID:     uint64(f.Input),
			inputNanos:  int64(f.InputTime),
			renderNanos: int64(f.RenderEnd),
		}, bs)
		f.EncodeStart = f.CopyEnd
		f.EncodeEnd = s.dom.Now()
		f.Bytes = len(payload) - frameHeaderLen
		f.Pixels = payload // carries header+bitstream to the sender
		atomic.AddInt64(&s.stats.Encoded, 1)
		s.tr.Span(obs.TrackProxy, "copy", f.Seq, start, f.CopyEnd)
		s.tr.Span(obs.TrackProxy, "encode", f.Seq, f.EncodeStart, f.EncodeEnd)
		s.ins.Encoded.Inc()
		s.ins.Copy.ObserveDuration(f.CopyEnd - start)
		s.ins.Encode.ObserveDuration(f.EncodeEnd - f.EncodeStart)
		s.probe.onEncode(f.EncodeEnd - start)
		if tiles, dirty := s.enc.TileStats(); tiles > 0 {
			s.ins.TilesCoded.Add(int64(tiles))
			s.ins.TilesDirty.Add(int64(dirty))
			s.ins.DirtyRatio.Set(float64(dirty) / float64(tiles))
			s.probe.onTiles(tiles, dirty)
		}

		if s.cfg.Policy == ODRRegulation {
			if f.Priority {
				for _, d := range s.buf2.PutPriority(f) {
					s.addCarried(d.Inputs)
					s.putPayload(d)
					atomic.AddInt64(&s.stats.Dropped, 1)
				}
				s.pacer.SkipFrame()
			} else {
				if !s.buf2.Put(w, f) {
					errCh <- nil
					return
				}
				if d := s.pacer.PaceAfterObserved(start, s.dom.Now()); d > 0 {
					w.Sleep(d)
				}
			}
			s.buf1.Release()
			continue
		}
		s.buf1.Release()
		select {
		case s.sendq <- f:
		default:
			s.addCarried(f.Inputs)
			s.putPayload(f)
			atomic.AddInt64(&s.stats.Dropped, 1) // tail-drop: queue full
			s.tr.Instant(obs.TrackNetwork, "tail-drop", f.Seq, s.dom.Now())
			s.ins.Dropped.Inc()
		}
	}
}

// sendLoop transmits encoded frames. Each write runs under the configured
// WriteTimeout; a client that cannot drain the socket is evicted. When the
// queue ends because of a Drain, the flushed stream is sealed with msgBye.
func (s *Server) sendLoop(errCh chan<- error) {
	defer s.wg.Done()
	defer close(s.drained)
	w := realrt.NewWaiter(s.dom)
	send := func(f *frame.Frame) error {
		// f.Pixels already holds header+bitstream (built at encode time).
		start := time.Now()
		txStart := s.dom.Now()
		if s.cfg.WriteTimeout > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := writeMsg(s.conn, msgFrame, f.Pixels); err != nil {
			if isTimeoutErr(err) {
				return s.evict("frame write", err)
			}
			return err
		}
		atomic.AddInt64(&s.sendBlockedNs, int64(time.Since(start)))
		atomic.AddInt64(&s.stats.Sent, 1)
		txEnd := s.dom.Now()
		s.tr.Span(obs.TrackNetwork, "tx", f.Seq, txStart, txEnd)
		s.ins.Displayed.Inc()
		s.ins.Tx.ObserveDuration(txEnd - txStart)
		var mtpUs int64
		if f.Input != 0 {
			mtpUs = s.probe.mtpEstimate(txEnd)
			if mtpUs > 0 {
				s.ins.MtP.Observe(mtpUs)
			}
		}
		s.probe.onSend(txEnd, f.Bytes, txEnd-txStart, mtpUs)
		s.putPayload(f)
		return nil
	}
	finish := func() {
		if s.drainRequested() {
			if s.cfg.WriteTimeout > 0 {
				s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
			}
			writeMsg(s.conn, msgBye, nil)
		}
		errCh <- nil
	}
	if s.cfg.Policy == ODRRegulation {
		for {
			f := s.buf2.Acquire(w)
			if f == nil {
				finish()
				return
			}
			err := send(f)
			s.buf2.Release()
			if err != nil {
				errCh <- err
				return
			}
		}
	}
	for f := range s.sendq {
		if err := send(f); err != nil {
			errCh <- err
			return
		}
	}
	finish()
}

// inputLoop receives user inputs (step 2 of Fig. 2: the proxy captures the
// input and forwards it to the 3D application).
func (s *Server) inputLoop(errCh chan<- error) {
	defer s.wg.Done()
	var buf []byte
	for {
		if s.cfg.ReadTimeout > 0 {
			s.conn.SetReadDeadline(time.Now().Add(s.cfg.ReadTimeout))
		}
		typ, payload, err := readMsg(s.conn, buf)
		if err != nil {
			if isTimeoutErr(err) {
				err = s.evict("input read", err)
			}
			errCh <- err
			return
		}
		buf = payload[:cap(payload)]
		switch typ {
		case msgInput:
			id, nanos, err := parseInputMsg(payload)
			if err != nil {
				errCh <- err
				return
			}
			atomic.AddInt64(&s.stats.Inputs, 1)
			s.tr.Instant(obs.TrackInput, "input", id, s.dom.Now())
			s.ins.Inputs.Inc()
			s.probe.onInput(s.dom.Now())
			s.box.OnInput(frame.InputID(id), time.Duration(nanos))
		case msgKeyReq:
			atomic.AddInt64(&s.stats.KeyReqs, 1)
			s.wantKey.Store(true)
		case msgBye:
			errCh <- nil
			return
		default:
			errCh <- fmt.Errorf("stream: unexpected message type %d", typ)
			return
		}
	}
}

// isClosedErr reports whether err is an orderly-shutdown artifact.
func isClosedErr(err error) bool {
	if err == nil {
		return true
	}
	if errors.Is(err, net.ErrClosed) {
		return true
	}
	s := err.Error()
	return s == "EOF" || s == "io: read/write on closed pipe"
}
