package stream

import (
	"encoding/binary"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"odr/internal/obs"
	"odr/internal/timerwheel"
	"odr/internal/wpool"
)

// Session scheduling states (hubSession.sched). A session is parked when it
// has nothing to send, queued once it sits in (or is being processed by) the
// sender pool, and pacing while its ODR delay rides the timer wheel. The CAS
// transitions guarantee at most one pool entry per session: only parked→queued
// (a fan-out kick) and pacing→queued (its wheel timer firing) enqueue.
const (
	schedParked int32 = iota
	schedQueued
	schedPacing
)

const (
	// hubReaders is the size of the shared input-reader pool. Input traffic
	// is tiny (tens of bytes per event), so two readers cover thousands of
	// viewers; the failure matrix relies on a faulted session and its healthy
	// peer (consecutive ids) landing on different readers.
	hubReaders = 2
	// pollWindow is the per-session read deadline in polling mode
	// (ReadTimeout == 0). It must lie in the future: pipes and sockets never
	// transfer bytes on an already-expired deadline, so a zero-length window
	// would starve input delivery entirely.
	pollWindow = 200 * time.Microsecond
	// pollReadBufCap sizes each session's polling read buffer. Client→hub
	// messages are inputs (21 wire bytes), keyframe requests and byes (5), so
	// 1 KiB holds dozens of queued events.
	pollReadBufCap = 1024
	// pollMaxPayload bounds a client→hub payload in polling mode. The
	// largest legitimate payload is an input message (16 bytes); anything
	// claiming more is corruption or protocol abuse and ends the session,
	// exactly as the old per-session read loop did for unparseable traffic.
	pollMaxPayload = 512
)

// senderScratch is one sender worker's reusable send-path buffers: the splice
// payload, the private verbatim header, and the writev vector. Workers process
// sessions serially, so one scratch per worker replaces what used to be one
// payload buffer (plus header and iovec) per session.
type senderScratch struct {
	payload []byte
	head    [5 + frameHeaderLen]byte
	iovArr  [2][]byte
	iov     net.Buffers
}

// hubEngine is the hub's event-driven session engine. It replaces the old
// three-goroutines-per-viewer shape (sendLoop + inputLoop + reaper) with:
//
//   - a fixed sender worker pool (wpool.Striped) draining per-session
//     latest-wins buffers; each viewer is pinned to a stripe so its writes
//     stay ordered, and a worker flushes every ready session in its batch
//     back-to-back — the batch is the cross-session write-coalescing unit;
//   - one hashed timer wheel scheduling every session's ODR pacing deadline,
//     aligned to the hub epoch via the domain clock;
//   - a small shared reader pool polling session input paths.
//
// Total goroutines are O(GOMAXPROCS + lanes), independent of viewer count.
type hubEngine struct {
	h *Hub

	startMu sync.Mutex
	started bool
	stopped bool

	senders *wpool.Striped[*hubSession]
	wheel   *timerwheel.Wheel

	readers    [hubReaders]hubReader
	readerStop chan struct{}
	readerWG   sync.WaitGroup

	scratch []senderScratch

	// Coalescing accounting: a flush pass is one handler batch that sent at
	// least one frame; flushedFrames counts the frames those passes sent.
	flushPasses   atomic.Int64
	flushedFrames atomic.Int64

	// Nil-safe instruments (registered in NewHub when Metrics is set).
	queueGauge   *obs.Gauge
	lagGauge     *obs.Gauge
	coalescedCtr *obs.Counter
}

// hubReader is one stripe of the shared input-reader pool: a registry of the
// sessions it serves (sessions land on reader id%hubReaders) read through a
// copy-on-write snapshot, like the lanes' fan-out shards.
type hubReader struct {
	mu   sync.Mutex
	m    map[uint32]*hubSession
	snap atomic.Pointer[[]*hubSession]
	wake chan struct{}
}

func (r *hubReader) register(s *hubSession) {
	r.mu.Lock()
	r.m[s.id] = s
	r.rebuildLocked()
	r.mu.Unlock()
	select {
	case r.wake <- struct{}{}:
	default:
	}
}

func (r *hubReader) deregister(s *hubSession) {
	r.mu.Lock()
	if _, ok := r.m[s.id]; ok {
		delete(r.m, s.id)
		r.rebuildLocked()
	}
	r.mu.Unlock()
}

func (r *hubReader) rebuildLocked() {
	snap := make([]*hubSession, 0, len(r.m))
	for _, s := range r.m {
		snap = append(snap, s)
	}
	r.snap.Store(&snap)
}

// newHubEngine builds the engine without starting any goroutines; start runs
// lazily on the first attach so a hub that never serves viewers costs nothing.
func newHubEngine(h *Hub) *hubEngine {
	e := &hubEngine{h: h}
	for i := range e.readers {
		e.readers[i].m = make(map[uint32]*hubSession)
		e.readers[i].wake = make(chan struct{}, 1)
	}
	return e
}

// readerFor returns the reader stripe serving session id.
func (e *hubEngine) readerFor(id uint32) *hubReader {
	return &e.readers[id%hubReaders]
}

// start spins up the worker pool, the timer wheel and the reader pool once.
// It is a no-op after shutdown so an attach racing Stop cannot revive engine
// goroutines (the shard-lock stopping recheck refuses the session anyway).
func (e *hubEngine) start() {
	e.startMu.Lock()
	defer e.startMu.Unlock()
	if e.started || e.stopped {
		return
	}
	e.started = true
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		n = 2
	}
	e.scratch = make([]senderScratch, n)
	for i := range e.scratch {
		e.scratch[i].payload = make([]byte, frameHeaderLen, frameHeaderLen+4096)
	}
	e.senders = wpool.NewStriped[*hubSession](n, e.handleBatch)
	e.wheel = timerwheel.New(timerwheel.Config{
		Slots: 512,
		Tick:  time.Millisecond,
		Now:   e.h.dom.Now,
		OnFire: func(lag time.Duration) {
			e.lagGauge.Set(float64(lag.Microseconds()))
		},
	})
	e.readerStop = make(chan struct{})
	e.readerWG.Add(hubReaders)
	for i := range e.readers {
		go e.readLoop(&e.readers[i])
	}
}

// shutdown stops the engine: the sender pool drains every kicked session
// (Stop closes and kicks each one first, so unpaced sessions tear down inside
// Close), the wheel stops, stragglers — sessions parked in a pacing delay
// whose timers the wheel dropped — are torn down directly, and the readers
// exit. After shutdown every session has detached and its callback has fired.
func (e *hubEngine) shutdown() {
	e.startMu.Lock()
	e.stopped = true
	started := e.started
	e.startMu.Unlock()
	if !started {
		return
	}
	e.senders.Close()
	e.wheel.Stop()
	for _, s := range e.h.allSessions() {
		s.teardown(false)
	}
	close(e.readerStop)
	e.readerWG.Wait()
	e.queueGauge.Set(0)
}

// kick marks s ready and hands it to the sender pool; a no-op when the
// session is already queued or pacing (its timer will requeue it). Called by
// lane fan-out after storing an artifact, by Stop/Drain after closing a
// session's buffer, and on attach.
func (e *hubEngine) kick(s *hubSession) {
	if !s.sched.CompareAndSwap(schedParked, schedQueued) {
		return
	}
	if e.senders == nil || !e.senders.Submit(s.wk, s) {
		// Pool closed (or never started): the shutdown straggler sweep owns
		// this session now.
		s.sched.Store(schedParked)
		return
	}
	e.queueGauge.Set(float64(e.senders.QueueLen()))
}

// handleBatch is the sender pool handler: flush every ready session in the
// batch back-to-back. Two or more sessions flushed in one pass are coalesced —
// their socket writes ran on one worker wakeup instead of paying a goroutine
// switch each.
func (e *hubEngine) handleBatch(wk int, batch []*hubSession) {
	var frames int64
	flushed := 0
	for _, s := range batch {
		if n := e.process(wk, s); n > 0 {
			flushed++
			frames += n
		}
	}
	if frames > 0 {
		e.flushPasses.Add(1)
		e.flushedFrames.Add(frames)
		if flushed >= 2 {
			e.coalescedCtr.Add(frames)
		}
	}
	e.queueGauge.Set(float64(e.senders.QueueLen()))
}

// process runs one session's send pass and tears it down if the pass ended
// the session. Returns the number of frames sent.
func (e *hubEngine) process(wk int, s *hubSession) int64 {
	if s.detached.Load() {
		return 0
	}
	s.sendMu.Lock()
	frames, dead, evict := s.runSends(e, wk)
	s.sendMu.Unlock()
	if dead {
		s.teardown(evict)
	}
	return frames
}

// runSends drains this session's ready artifacts (sendMu held): send until
// the buffer is empty, a pacing delay arms, or the session dies. It returns
// dead=true when the session must tear down (buffer closed or send error) and
// evict=true when the death was a blown write deadline.
func (s *hubSession) runSends(e *hubEngine, wk int) (frames int64, dead, evict bool) {
	for {
		f := s.buf.TryAcquire()
		if f == nil {
			if s.buf.Closed() {
				// Drained after a close: a hub Drain flush ends with an
				// orderly bye, exactly like the old send loop.
				s.sealOnDrain()
				return frames, true, false
			}
			// Park, then re-check: an artifact stored (or a close issued)
			// between TryAcquire and the state change would have had its kick
			// swallowed while we still looked queued.
			s.sched.Store(schedParked)
			if s.buf.Occupancy() == 0 && !s.buf.Closed() {
				return frames, false, false
			}
			if !s.sched.CompareAndSwap(schedParked, schedQueued) {
				// A racing kick already requeued the session.
				return frames, false, false
			}
			continue
		}
		art := f.Encoded.(*encArtifact)
		sent, delay, err := s.sendArtifact(&e.scratch[wk], f, art)
		s.buf.Release()
		art.release()
		if err != nil {
			return frames, true, isTimeoutErr(err)
		}
		if sent {
			frames++
		}
		if delay > 0 {
			// ODR pacing: hand the delay to the wheel and yield the worker.
			// The timer's Fn requeues the session when the delay elapses.
			s.sched.Store(schedPacing)
			e.wheel.Schedule(&s.timer, delay)
			return frames, false, false
		}
	}
}

// teardown detaches the session exactly once: close the transport, cancel
// any pacing timer, remove it from its lane shard and reader, release queued
// artifacts, retire its metric series, fold its counters into the hub totals,
// and fire the detach callback. Callable from any goroutine (sender worker,
// reader, lane failure, Stop); callbacks must not block — they run inline.
func (s *hubSession) teardown(evict bool) {
	s.detachOnce.Do(func() {
		h := s.hub
		s.detached.Store(true)
		s.close()
		if evict {
			h.evictSession()
		}
		e := h.eng
		if e.wheel != nil {
			e.wheel.Cancel(&s.timer)
		}
		sh := s.lane.shard(s.id)
		sh.mu.Lock()
		delete(sh.m, s.id)
		sh.rebuildLocked()
		sh.mu.Unlock()
		e.readerFor(s.id).deregister(s)
		// Release artifacts still queued in the (now closed) buffer so their
		// bitstream buffers recycle. sendMu excludes a concurrent send pass.
		s.sendMu.Lock()
		for {
			f := s.buf.TryAcquire()
			if f == nil {
				break
			}
			if a, ok := f.Encoded.(*encArtifact); ok {
				a.release()
			}
			s.buf.Release()
		}
		s.probe.close(h.dom.Now(), true)
		s.sendMu.Unlock()
		sent := atomic.LoadInt64(&s.sent)
		droppedN := atomic.LoadInt64(&s.dropped)
		atomic.AddInt64(&h.served, 1)
		atomic.AddInt64(&h.totalSent, sent)
		atomic.AddInt64(&h.totalDropped, droppedN)
		if s.detachCb != nil {
			s.detachCb(SessionStats{Sent: sent, Dropped: droppedN})
		}
	})
}

// handleClientMsg dispatches one client→hub message; false ends the session
// (msgBye or an unparseable input), mirroring the old per-session input loop.
func (e *hubEngine) handleClientMsg(s *hubSession, typ byte, payload []byte) bool {
	h := e.h
	switch typ {
	case msgInput:
		id, nanos, err := parseInputMsg(payload)
		if err != nil {
			return false
		}
		atomic.AddInt64(&h.inputs, 1)
		h.tr.Instant(obs.TrackInput, "input", id, h.dom.Now())
		h.ins.Inputs.Inc()
		s.probe.onInput(h.dom.Now())
		h.box.OnInput(packInput(s.id, id), time.Duration(nanos))
	case msgKeyReq:
		// The lane encoder is shared; a per-viewer keyframe is spliced from
		// its state by the send path, so only flag the request.
		s.wantKey.Store(true)
	case msgBye:
		return false
	}
	return true
}

// readLoop serves one reader stripe. With ReadTimeout set, each session gets
// a full blocking readMsg per round (preserving the old eviction semantics:
// a session silent for ReadTimeout blows its deadline and is evicted — the
// config documents that a timeout is only meaningful when inputs flow, and a
// round's reads serialize on that same assumption). Without a timeout,
// sessions are polled with short future deadlines — a deadline already
// expired would never transfer bytes on a pipe or socket.
func (e *hubEngine) readLoop(r *hubReader) {
	defer e.readerWG.Done()
	rt := e.h.cfg.ReadTimeout
	for {
		select {
		case <-e.readerStop:
			return
		default:
		}
		var sessions []*hubSession
		if p := r.snap.Load(); p != nil {
			sessions = *p
		}
		if len(sessions) == 0 {
			select {
			case <-r.wake:
			case <-e.readerStop:
				return
			}
			continue
		}
		roundStart := time.Now()
		for _, s := range sessions {
			select {
			case <-e.readerStop:
				return
			default:
			}
			if s.detached.Load() {
				r.deregister(s)
				continue
			}
			if rt > 0 {
				s.readBlocking(e, rt)
			} else {
				s.readPoll(e)
			}
		}
		// Bound the idle polling rate without slowing active rounds.
		if d := time.Since(roundStart); d < time.Millisecond {
			time.Sleep(time.Millisecond - d)
		}
	}
}

// readBlocking performs one full message read under the configured
// ReadTimeout: identical semantics to the old per-session input loop — a
// deadline hit is an eviction, any other error a plain teardown.
func (s *hubSession) readBlocking(e *hubEngine, rt time.Duration) {
	s.conn.SetReadDeadline(s.hub.deadlineAfter(rt))
	typ, payload, err := readMsg(s.conn, s.rdbuf)
	if err != nil {
		s.teardown(isTimeoutErr(err))
		return
	}
	s.rdbuf = payload[:cap(payload)]
	if !e.handleClientMsg(s, typ, payload) {
		s.teardown(false)
	}
}

// readPoll drains whatever input bytes are available within a short window;
// timeouts are the steady state, never an eviction (ReadTimeout is 0 here).
func (s *hubSession) readPoll(e *hubEngine) {
	if s.rdbuf == nil {
		s.rdbuf = make([]byte, 0, pollReadBufCap)
	}
	s.conn.SetReadDeadline(s.hub.deadlineAfter(pollWindow))
	n, err := s.conn.Read(s.rdbuf[len(s.rdbuf):cap(s.rdbuf)])
	if n > 0 {
		s.rdbuf = s.rdbuf[:len(s.rdbuf)+n]
		if !s.drainPollBuf(e) {
			s.teardown(false)
			return
		}
	}
	if err != nil && !isTimeoutErr(err) {
		s.teardown(false)
	}
}

// drainPollBuf parses complete messages out of the polling buffer, shifting
// any trailing partial message to the front. False ends the session.
func (s *hubSession) drainPollBuf(e *hubEngine) bool {
	buf := s.rdbuf
	off := 0
	for len(buf)-off >= 5 {
		plen := int(binary.LittleEndian.Uint32(buf[off+1:]))
		if plen > pollMaxPayload {
			return false
		}
		if len(buf)-off < 5+plen {
			break
		}
		if !e.handleClientMsg(s, buf[off], buf[off+5:off+5+plen]) {
			return false
		}
		off += 5 + plen
	}
	if off > 0 {
		n := copy(buf, buf[off:])
		s.rdbuf = buf[:n]
	}
	return true
}

// SenderBatchStats reports the engine's coalescing accounting: how many
// flush passes sent at least one frame and how many frames they sent in
// total. frames/passes is the mean coalescing ratio the hub bench reports.
func (h *Hub) SenderBatchStats() (passes, frames int64) {
	return h.eng.flushPasses.Load(), h.eng.flushedFrames.Load()
}
