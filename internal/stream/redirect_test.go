package stream

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"odr/internal/testutil"
)

// ---------------------------------------------------------------------------
// Master-issued redirect semantics: a re-resolved dial resets the retry
// budget, and RedialOnBye turns a drain's goodbye into a re-placement instead
// of the end of the run. These are the client-side halves of cluster
// migration.
// ---------------------------------------------------------------------------

// redirConn marks a dialed conn as a master-issued redirect.
type redirConn struct {
	net.Conn
}

func (redirConn) Redirected() bool { return true }

// TestRedirectResetsRetryBudget is the regression test for the budget bug: a
// master-issued redirect must reset the consecutive-failure budget, because a
// successful re-placement is progress, not another failed retry. The dial
// sequence — two refused dials, then a redirected placement whose session
// dies before any frame — used to exhaust MaxAttempts=3 and end Run with the
// budget error; with the reset the client survives to the fourth dial and
// streams.
func TestRedirectResetsRetryBudget(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go h.Run()
	defer h.Stop()

	var dials atomic.Int32
	dial := func() (net.Conn, error) {
		switch dials.Add(1) {
		case 1, 2:
			return nil, errors.New("refused")
		case 3:
			// The re-placement: the master redirected us, but the new worker
			// dies before delivering a single frame.
			sc, cc := net.Pipe()
			sc.Close()
			return redirConn{cc}, nil
		default:
			sc, cc := net.Pipe()
			h.Attach(sc, 0, nil)
			return cc, nil
		}
	}
	cli := NewReconnectingClient(dial, ReconnectPolicy{
		MaxAttempts: 3,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- cli.Run() }()
	defer cli.Stop()

	deadline := time.Now().Add(15 * time.Second)
	for cli.Report().Frames < 5 {
		select {
		case err := <-runErr:
			t.Fatalf("client gave up: %v (the redirect burned the retry budget)", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("no frames after redirect; report %+v", cli.Report())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := cli.Report().Redirects; got != 1 {
		t.Errorf("Redirects = %d, want 1", got)
	}
	cli.Stop()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after Stop = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not stop")
	}
}

// TestRedialOnByeResumesAfterDrain: with RedialOnBye a drain's orderly bye
// sends the client back through its dial func — which re-resolves to the
// surviving hub — instead of ending Run. This is the client half of "drain,
// redirect, reconnect, keyreq" migration.
func TestRedialOnByeResumesAfterDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	h1 := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	h2 := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go h1.Run()
	go h2.Run()
	defer h1.Stop()
	defer h2.Stop()

	var drained atomic.Bool
	dial := func() (net.Conn, error) {
		sc, cc := net.Pipe()
		if drained.Load() {
			h2.Attach(sc, 0, nil)
		} else {
			h1.Attach(sc, 0, nil)
		}
		return cc, nil
	}
	cli := NewReconnectingClient(dial, ReconnectPolicy{
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Seed:        1,
		RedialOnBye: true,
	})
	runErr := make(chan error, 1)
	go func() { runErr <- cli.Run() }()
	defer cli.Stop()

	waitFrames(t, cli, 5, 10*time.Second)
	drained.Store(true)
	if err := h1.Drain(10 * time.Second); err != nil {
		t.Fatalf("Drain = %v", err)
	}

	// The bye must not have ended Run; the client redials onto h2 and keeps
	// decoding frames there.
	want := cli.Report().Frames + 5
	deadline := time.Now().Add(15 * time.Second)
	for {
		rep := cli.Report()
		if rep.Reconnects >= 1 && rep.Frames >= want {
			break
		}
		select {
		case err := <-runErr:
			t.Fatalf("Run ended on drain bye (err=%v), want redial onto the surviving hub", err)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("client never resumed on h2; report %+v", rep)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cli.Stop()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run after Stop = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("client did not stop")
	}
}
