package stream

import (
	"sync/atomic"
	"time"

	"odr/internal/codec"
	"odr/internal/obs"
	"odr/internal/powermodel"
	"odr/internal/qoe"
)

// Canonical names of the live per-session series. They join the
// obs.FrameInstruments names on the same registry, so one /metrics scrape
// carries both the aggregate pipeline counters and the labeled QoE/energy
// view the paper's evaluation reads per session.
const (
	// NameSessionFPS is the delivered frame rate over the live QoE window.
	NameSessionFPS = "odr_session_fps"
	// NameSessionMtPMs is the mean server-side motion-to-photon estimate.
	NameSessionMtPMs = "odr_session_mtp_ms"
	// NameSessionMtPP99Ms is the tail of the same estimate.
	NameSessionMtPP99Ms = "odr_session_mtp_p99_ms"
	// NameSessionSmoothness is 1−stutter over the window (1 = perfectly
	// even frame pacing).
	NameSessionSmoothness = "odr_session_smoothness"
	// NameSessionWatts is the session's estimated draw since the last flush.
	NameSessionWatts = "odr_session_watts"
	// NameSessionEnergy is cumulative estimated joules split by component
	// (render, encode, network).
	NameSessionEnergy = "odr_session_energy_joules"
	// NameTilesOutcome counts encoded tiles by outcome (dirty = coded,
	// clean = skipped by change detection).
	NameTilesOutcome = "odr_tiles_outcome_total"
	// NameSessionsStarted counts sessions by regulation policy and
	// bitstream generation.
	NameSessionsStarted = "odr_sessions_started_total"
	// NameHubSharedEncodes counts frames encoded once by a hub lane's shared
	// encoder and fanned out to every same-resolution viewer. With N viewers
	// it grows at the frame rate while frames_displayed grows at N× — the
	// encode-once invariant soak and CI assert.
	NameHubSharedEncodes = "odr_hub_shared_encodes_total"
	// NameHubSplicedKeyframes counts per-session keyframes spliced from a
	// shared encoder's state (late joiners and msgKeyReq resyncs).
	NameHubSplicedKeyframes = "odr_hub_spliced_keyframes_total"
	// NameHubSplicedDeltas counts per-session catch-up deltas spliced for
	// viewers whose verbatim chain skipped frames (latest-wins drops).
	NameHubSplicedDeltas = "odr_hub_spliced_deltas_total"
	// NameHubSplicedTiles counts the payload-carrying tiles of every spliced
	// frame (keys and deltas). Together with odr_tiles_outcome_total{dirty}
	// it closes the tile-cache conservation invariant: with a cache wired,
	// hits + misses == dirty tiles + spliced tiles, exactly.
	NameHubSplicedTiles = "odr_hub_spliced_tiles_total"
	// NameHubSenderQueueDepth gauges how many ready sessions sit queued for
	// the hub's sender worker pool: 0 means every flush pass drains faster
	// than fan-out feeds it; sustained depth means the pool is the
	// bottleneck.
	NameHubSenderQueueDepth = "odr_hub_sender_queue_depth"
	// NameHubTimerwheelLagUs gauges how late the hub's pacing timer wheel
	// fired its most recent deadline, in microseconds. ODR pacing delays ride
	// the wheel, so this is the scheduling error added on top of each
	// session's computed delay.
	NameHubTimerwheelLagUs = "odr_hub_timerwheel_lag_us"
	// NameHubCoalescedWrites counts frames flushed in sender passes that
	// drained two or more sessions back-to-back — writes whose syscall cost
	// amortized across a batch instead of paying one wakeup each.
	NameHubCoalescedWrites = "odr_hub_coalesced_writes_total"
	// NameCodecTileCacheHits counts encoded-tile cache lookups served from
	// the content-addressed cache (payload bytes reused, no RLE pass).
	NameCodecTileCacheHits = "odr_codec_tile_cache_hits_total"
	// NameCodecTileCacheMisses counts lookups that had to encode.
	NameCodecTileCacheMisses = "odr_codec_tile_cache_misses_total"
	// NameCodecTileCacheEvictions counts entries the LRU budget pushed out.
	NameCodecTileCacheEvictions = "odr_codec_tile_cache_evictions_total"
)

// sessionFlushInterval paces gauge publication: the send loop records every
// frame into the window, but series only move at this cadence so the flush
// cost (sorting the window) stays off the per-frame path.
const sessionFlushInterval = 500 * time.Millisecond

// defaultGPUIntensity is the workload GPU power intensity assumed for live
// sessions; the synthetic game sits mid-field between a UI stream and a VR
// benchmark (the simulator varies this per workload, the live path cannot).
const defaultGPUIntensity = 0.5

// codecVersionLabel names the bitstream generation for the codec_version
// label (mirrors codec.Options: 0 means the v2 default).
func codecVersionLabel(o codec.Options) string {
	if o.Version == 1 {
		return "1"
	}
	return "2"
}

// recordSessionStart counts one real client session by policy and codec
// generation (nil-safe).
func recordSessionStart(reg *obs.Registry, policy string, o codec.Options) {
	if reg == nil {
		return
	}
	registerLiveVecs(reg)
	reg.CounterVec(NameSessionsStarted, "", "policy", "codec_version").
		With2(policy, codecVersionLabel(o)).Inc()
}

// liveVecs bundles the labeled families of the live per-session surface.
type liveVecs struct {
	fps, mtp, mtpP99, smooth, watts, energy *obs.GaugeVec
	outcome                                 *obs.CounterVec

	// Hub fan-out families, labeled by lane (the downscale divisor).
	hubEncodes, hubSplicedKeys, hubSplicedDeltas, hubSplicedTiles *obs.CounterVec

	// Encoded-tile cache counters (unlabeled: one cache serves every lane).
	cacheHits, cacheMisses, cacheEvictions *obs.Counter

	// Sender-engine instruments (unlabeled: one engine per hub).
	senderQueueDepth *obs.Gauge
	timerwheelLag    *obs.Gauge
	coalescedWrites  *obs.Counter
}

// registerLiveVecs idempotently registers every live-session family in reg.
func registerLiveVecs(reg *obs.Registry) liveVecs {
	reg.CounterVec(NameSessionsStarted,
		"Streaming sessions started, by regulation policy and bitstream generation.",
		"policy", "codec_version")
	reg.SetHelp(NameCodecTileCacheHits,
		"Encoded-tile cache lookups served from the content-addressed cache.")
	reg.SetHelp(NameCodecTileCacheMisses,
		"Encoded-tile cache lookups that had to run the entropy coder.")
	reg.SetHelp(NameCodecTileCacheEvictions,
		"Encoded-tile cache entries evicted by the LRU byte budget.")
	reg.SetHelp(NameHubSenderQueueDepth,
		"Ready sessions queued for the hub's sender worker pool, awaiting a flush pass.")
	reg.SetHelp(NameHubTimerwheelLagUs,
		"Lag of the most recent pacing timer-wheel fire past its deadline, microseconds.")
	reg.SetHelp(NameHubCoalescedWrites,
		"Frames flushed in sender passes that drained two or more sessions back-to-back.")
	return liveVecs{
		cacheHits:        reg.Counter(NameCodecTileCacheHits),
		cacheMisses:      reg.Counter(NameCodecTileCacheMisses),
		cacheEvictions:   reg.Counter(NameCodecTileCacheEvictions),
		senderQueueDepth: reg.Gauge(NameHubSenderQueueDepth),
		timerwheelLag:    reg.Gauge(NameHubTimerwheelLagUs),
		coalescedWrites:  reg.Counter(NameHubCoalescedWrites),
		hubEncodes: reg.CounterVec(NameHubSharedEncodes,
			"Frames encoded once by a hub lane's shared encoder and fanned out to every viewer on the lane.", "lane"),
		hubSplicedKeys: reg.CounterVec(NameHubSplicedKeyframes,
			"Per-session keyframes spliced from a hub lane's shared encoder state (late joiners, keyframe requests).", "lane"),
		hubSplicedDeltas: reg.CounterVec(NameHubSplicedDeltas,
			"Per-session catch-up deltas spliced from a hub lane's shared encoder state after latest-wins drops.", "lane"),
		hubSplicedTiles: reg.CounterVec(NameHubSplicedTiles,
			"Payload-carrying tiles across all spliced frames (keys and catch-up deltas).", "lane"),
		fps: reg.GaugeVec(NameSessionFPS,
			"Delivered frames per second over the live QoE window.", "session"),
		mtp: reg.GaugeVec(NameSessionMtPMs,
			"Mean server-side motion-to-photon estimate over the window, ms (input arrival to frame tx-end; the client-clock MtP is measured client-side).", "session"),
		mtpP99: reg.GaugeVec(NameSessionMtPP99Ms,
			"p99 server-side motion-to-photon estimate over the window, ms.", "session"),
		smooth: reg.GaugeVec(NameSessionSmoothness,
			"Frame-pacing smoothness over the window (1 − stutter index; 1 = perfectly even).", "session"),
		watts: reg.GaugeVec(NameSessionWatts,
			"Estimated session power draw since the previous flush, watts.", "session"),
		energy: reg.GaugeVec(NameSessionEnergy,
			"Cumulative estimated session energy, joules, split by pipeline component.", "session", "component"),
		outcome: reg.CounterVec(NameTilesOutcome,
			"Tiles inspected by the encoder, by outcome (dirty = coded, clean = skipped unchanged).", "tile_outcome"),
	}
}

// RegisterLiveMetrics pre-registers the full live-session metric surface in
// reg without creating any series, so a startup lint (odrserver
// -metrics-lint, make metrics-check) can validate every family this package
// will ever export before the first client connects. Nil-safe.
func RegisterLiveMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	registerLiveVecs(reg)
}

// sessionProbe feeds one session's frame lifecycle into the live QoE window
// (internal/qoe) and the energy meter (internal/powermodel) and publishes
// the results as labeled gauges. The recording half (onRender/onEncode/
// onSend) is allocation-free; gauges move on the ~2 Hz flush.
//
// Ownership: onSend, maybeFlush and close belong to one goroutine (the
// session's send loop, or the renderer for a hub's shared probe). onRender,
// onEncode, onTiles and onInput may run on other loops — they only touch
// atomics and counter handles.
type sessionProbe struct {
	session string
	live    *qoe.LiveWindow
	meter   *powermodel.SessionMeter

	fps, mtp, mtpP99, smooth, watts *obs.Gauge
	energyRender                    *obs.Gauge
	energyEncode                    *obs.Gauge
	energyNetwork                   *obs.Gauge
	tilesDirty, tilesClean          *obs.Counter

	// vec handles kept for Delete on close (bounding series churn).
	fpsVec, mtpVec, mtpP99Vec, smoothVec, wattsVec, energyVec *obs.GaugeVec

	lastFlushAt time.Duration
	lastTotalJ  float64

	// lastInputAt is the session-clock arrival time of the most recent
	// client input (written by the input loop, read by the send loop for
	// the server-side MtP estimate).
	lastInputAt atomic.Int64
}

// newSessionProbe registers the live series for one session label. Returns
// nil (all methods no-ops) when reg is nil.
func newSessionProbe(reg *obs.Registry, session string) *sessionProbe {
	if reg == nil {
		return nil
	}
	v := registerLiveVecs(reg)
	p := &sessionProbe{
		session:   session,
		live:      qoe.NewLiveWindow(0),
		meter:     powermodel.NewSessionMeter(powermodel.Config{}, defaultGPUIntensity),
		fpsVec:    v.fps,
		mtpVec:    v.mtp,
		mtpP99Vec: v.mtpP99,
		smoothVec: v.smooth,
		wattsVec:  v.watts,
		energyVec: v.energy,
	}
	p.fps = v.fps.With1(session)
	p.mtp = v.mtp.With1(session)
	p.mtpP99 = v.mtpP99.With1(session)
	p.smooth = v.smooth.With1(session)
	p.watts = v.watts.With1(session)
	p.energyRender = v.energy.With2(session, "render")
	p.energyEncode = v.energy.With2(session, "encode")
	p.energyNetwork = v.energy.With2(session, "network")
	p.tilesDirty = v.outcome.With1("dirty")
	p.tilesClean = v.outcome.With1("clean")
	return p
}

// onRender bills GPU-busy render time.
func (p *sessionProbe) onRender(busy time.Duration) {
	if p == nil {
		return
	}
	p.meter.AddRender(busy)
}

// onEncode bills CPU-busy copy+encode time.
func (p *sessionProbe) onEncode(busy time.Duration) {
	if p == nil {
		return
	}
	p.meter.AddEncode(busy)
}

// onTiles counts one frame's tile outcomes.
func (p *sessionProbe) onTiles(tiles, dirty int) {
	if p == nil || tiles <= 0 {
		return
	}
	p.tilesDirty.Add(int64(dirty))
	p.tilesClean.Add(int64(tiles - dirty))
}

// onInput stamps a client input's arrival on the session clock.
func (p *sessionProbe) onInput(now time.Duration) {
	if p == nil {
		return
	}
	p.lastInputAt.Store(int64(now))
}

// mtpEstimate returns the server-side motion-to-photon estimate in
// microseconds for a frame that answered an input and finished transmitting
// at txEnd: the delta from the latest input arrival. It under-reports when
// a newer input arrived while the answering frame was in flight — it is a
// live approximation; the authoritative MtP is measured on the client clock.
func (p *sessionProbe) mtpEstimate(txEnd time.Duration) int64 {
	if p == nil {
		return 0
	}
	arr := p.lastInputAt.Load()
	if arr <= 0 || int64(txEnd) <= arr {
		return 0
	}
	return (int64(txEnd) - arr) / 1e3
}

// onSend records one delivered frame (send-loop goroutine only): network
// energy, the QoE window event, and a gauge flush when due.
func (p *sessionProbe) onSend(at time.Duration, bytes int, busy time.Duration, mtpUs int64) {
	if p == nil {
		return
	}
	p.meter.AddSend(bytes, busy)
	p.live.OnSend(at, mtpUs)
	p.maybeFlush(at)
}

// maybeFlush publishes the gauges when a flush interval has elapsed
// (owner goroutine only).
func (p *sessionProbe) maybeFlush(now time.Duration) {
	if p == nil || now-p.lastFlushAt < sessionFlushInterval {
		return
	}
	p.flush(now)
}

// flush publishes the window stats and energy split (owner goroutine only).
func (p *sessionProbe) flush(now time.Duration) {
	if p == nil {
		return
	}
	st := p.live.Stats(now)
	p.fps.Set(st.FPS)
	p.mtp.Set(st.MeanMtPMs)
	p.mtpP99.Set(st.P99MtPMs)
	smooth := 1 - st.Stutter
	if smooth < 0 {
		smooth = 0
	}
	p.smooth.Set(smooth)
	split := p.meter.Totals()
	p.energyRender.Set(split.RenderJ)
	p.energyEncode.Set(split.EncodeJ)
	p.energyNetwork.Set(split.NetworkJ)
	total := split.TotalJ()
	if dt := now - p.lastFlushAt; dt > 0 && p.lastFlushAt > 0 {
		p.watts.Set((total - p.lastTotalJ) / dt.Seconds())
	}
	p.lastFlushAt = now
	p.lastTotalJ = total
}

// EnergyTotals reads the probe's cumulative energy split.
func (p *sessionProbe) EnergyTotals() powermodel.EnergySplit {
	if p == nil {
		return powermodel.EnergySplit{}
	}
	return p.meter.Totals()
}

// close publishes a final flush; when deleteSeries is set it also retires
// the session's label sets so a churning hub does not accumulate one set of
// series per viewer ever attached (the LRU bound is the backstop, this is
// the orderly path). Counter series (tile outcomes, session starts) are
// unlabeled by session and stay.
func (p *sessionProbe) close(now time.Duration, deleteSeries bool) {
	if p == nil {
		return
	}
	p.flush(now)
	if !deleteSeries {
		return
	}
	p.fpsVec.Delete(p.session)
	p.mtpVec.Delete(p.session)
	p.mtpP99Vec.Delete(p.session)
	p.smoothVec.Delete(p.session)
	p.wattsVec.Delete(p.session)
	p.energyVec.Delete(p.session, "render")
	p.energyVec.Delete(p.session, "encode")
	p.energyVec.Delete(p.session, "network")
}
