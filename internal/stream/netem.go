package stream

import (
	"net"
	"sync"
	"time"
)

// ThrottleConfig shapes a connection like a wide-area path: limited
// bandwidth, added propagation delay, and bounded in-flight buffering. It
// lets the real-time stack reproduce the simulator's public-cloud
// conditions on a loopback connection — including the NoReg congestion
// collapse, for real.
type ThrottleConfig struct {
	// Bandwidth is the shaped rate in bytes/second (0 = unlimited).
	Bandwidth float64
	// Delay is the added one-way propagation delay.
	Delay time.Duration
	// BufferChunks bounds the number of in-flight write chunks between
	// the bottleneck and delivery (default 256). When full, writers block
	// — the TCP-buffer backpressure of a real path.
	BufferChunks int
}

// chunk is one paced write awaiting propagation.
type chunk struct {
	data      []byte
	deliverAt time.Time
}

// throttledConn shapes the write direction of the underlying conn:
// serialization at Bandwidth happens synchronously in Write (that is the
// bottleneck and its backpressure), then the bytes propagate for Delay in
// the background before being forwarded. Reads pass through — shape each
// direction by wrapping the writing endpoint.
type throttledConn struct {
	net.Conn
	cfg ThrottleConfig

	mu     sync.Mutex
	sendAt time.Time // when the bottleneck frees up

	forward  chan chunk
	done     chan struct{}
	closeOne sync.Once
	writeErr error
	errMu    sync.Mutex
}

// Throttle wraps conn so writes experience the configured bandwidth, delay
// and buffering.
func Throttle(conn net.Conn, cfg ThrottleConfig) net.Conn {
	if cfg.BufferChunks <= 0 {
		cfg.BufferChunks = 256
	}
	t := &throttledConn{
		Conn:    conn,
		cfg:     cfg,
		forward: make(chan chunk, cfg.BufferChunks),
		done:    make(chan struct{}),
	}
	go t.forwarder()
	return t
}

// sleepOrClosed waits d, returning false when Close happens first — so no
// forwarder or paced writer can outlive the conn inside a sleep.
func (t *throttledConn) sleepOrClosed(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return true
	case <-t.done:
		return false
	}
}

// forwarder delivers paced chunks after their propagation delay.
func (t *throttledConn) forwarder() {
	for {
		select {
		case c := <-t.forward:
			if !t.sleepOrClosed(time.Until(c.deliverAt)) {
				return
			}
			if _, err := t.Conn.Write(c.data); err != nil {
				t.errMu.Lock()
				if t.writeErr == nil {
					t.writeErr = err
				}
				t.errMu.Unlock()
			}
		case <-t.done:
			return
		}
	}
}

// Write implements net.Conn with pacing and delayed forwarding.
func (t *throttledConn) Write(p []byte) (int, error) {
	t.errMu.Lock()
	err := t.writeErr
	t.errMu.Unlock()
	if err != nil {
		return 0, err
	}
	// Serialize at the bottleneck: each write occupies the link for
	// len/bandwidth; the writer waits its turn, which is exactly the
	// backpressure a saturated path exerts.
	if t.cfg.Bandwidth > 0 {
		tx := time.Duration(float64(len(p)) / t.cfg.Bandwidth * float64(time.Second))
		t.mu.Lock()
		now := time.Now()
		if t.sendAt.Before(now) {
			t.sendAt = now
		}
		t.sendAt = t.sendAt.Add(tx)
		release := t.sendAt
		t.mu.Unlock()
		if !t.sleepOrClosed(time.Until(release)) {
			return 0, net.ErrClosed
		}
	}
	data := make([]byte, len(p))
	copy(data, p)
	select {
	case t.forward <- chunk{data: data, deliverAt: time.Now().Add(t.cfg.Delay)}:
		return len(p), nil
	case <-t.done:
		return 0, net.ErrClosed
	}
}

// Close stops the forwarder and closes the underlying conn.
func (t *throttledConn) Close() error {
	t.closeOne.Do(func() { close(t.done) })
	return t.Conn.Close()
}
