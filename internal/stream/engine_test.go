package stream

import (
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"odr/internal/core"
	"odr/internal/testutil"
)

// TestHubGoroutineBudgetIndependentOfSessions pins the engine's headline
// property: hub goroutines are O(worker pool), not O(sessions). The old
// per-session shape spent three goroutines per viewer (send loop, input
// loop, reaper), so 96 viewers cost ~288; the engine serves them all from a
// fixed sender pool, one timer wheel and a small reader pool. The harness
// itself owns exactly one discard goroutine per viewer, which is subtracted.
func TestHubGoroutineBudgetIndependentOfSessions(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const viewers = 96
	h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	go h.Run()
	defer h.Stop()

	before := runtime.NumGoroutine()
	conns := make([]net.Conn, 0, viewers)
	for i := 0; i < viewers; i++ {
		sc, cc := net.Pipe()
		conns = append(conns, cc)
		fps := 0.0
		if i%4 == 0 {
			fps = 30 // every 4th viewer paced: its delays ride the wheel
		}
		h.Attach(sc, fps, nil)
		// One harness goroutine per viewer drains the stream.
		go io.Copy(io.Discard, cc)
	}
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for h.Clients() != viewers || h.Snapshot()["sent"].(int64) < viewers {
		if time.Now().After(deadline) {
			t.Fatalf("hub never streamed to all %d viewers (clients=%d)", viewers, h.Clients())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Engine budget: sender workers (max(2, GOMAXPROCS)) + timer wheel +
	// readers + one lane encoder, plus generous slack for runtime/test
	// goroutines. Independent of viewer count; the old design's 3/viewer
	// would sit near 3×96 here.
	budget := runtime.GOMAXPROCS(0) + 1 + hubReaders + 1 + 24
	delta := runtime.NumGoroutine() - before - viewers
	if delta > budget {
		t.Fatalf("hub spends %d goroutines beyond the harness for %d viewers, want <= %d (O(pool), not O(sessions))",
			delta, viewers, budget)
	}
}

// TestHubStopTearsDownPacingStragglers covers the shutdown straggler sweep:
// sessions parked in a long pacing delay hold no pool entry when Stop drops
// the wheel's timers, so shutdown must detach them directly — every detach
// callback fires and no goroutine survives.
func TestHubStopTearsDownPacingStragglers(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const viewers = 8
	h := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 480})
	go h.Run()

	detached := make(chan SessionStats, viewers)
	conns := make([]net.Conn, 0, viewers)
	for i := 0; i < viewers; i++ {
		sc, cc := net.Pipe()
		conns = append(conns, cc)
		// 2 FPS: after each sent frame the session sits in a ~500ms wheel
		// delay, so a Stop almost certainly catches some mid-pacing.
		h.Attach(sc, 2, func(s SessionStats) { detached <- s })
		go io.Copy(io.Discard, cc)
	}
	deadline := time.Now().Add(10 * time.Second)
	for h.Snapshot()["sent"].(int64) < viewers {
		if time.Now().After(deadline) {
			t.Fatal("viewers never got their first frame")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.Stop()
	for i := 0; i < viewers; i++ {
		select {
		case <-detached:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d pacing sessions detached after Stop", i, viewers)
		}
	}
	if n := h.Clients(); n != 0 {
		t.Fatalf("Clients = %d after Stop", n)
	}
	for _, c := range conns {
		c.Close()
	}
}

// TestHubPacingDifferential pins the tentpole's bit-for-bit pacing claim:
// the engine's wheel-scheduled delays must be computed by exactly the same
// PaceAfterObserved arithmetic the old blocking send loop used. The hub's
// paceHook records every (start, end, delay) decision for one paced viewer;
// replaying the same observations through a fresh reference pacer must
// reproduce every delay exactly — any drift in call order, skipped frames,
// or credit accounting would diverge within a frame or two.
func TestHubPacingDifferential(t *testing.T) {
	const clientFPS = 60
	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 480})
	defer stop()

	type decision struct {
		id         uint32
		start, end time.Duration
		d          time.Duration
	}
	var mu sync.Mutex
	var got []decision
	h.paceHook = func(id uint32, start, end, d time.Duration) {
		mu.Lock()
		got = append(got, decision{id, start, end, d})
		mu.Unlock()
	}

	cli, _, clean := attachClient(t, h, clientFPS)
	waitFrames(t, cli, 40, 15*time.Second)
	clean()

	mu.Lock()
	defer mu.Unlock()
	if len(got) < 40 {
		t.Fatalf("paceHook saw %d decisions, want >= 40", len(got))
	}
	ref := core.NewPacer(clientFPS)
	var delayed int
	for i, dec := range got {
		want := ref.PaceAfterObserved(dec.start, dec.end)
		if dec.d != want {
			t.Fatalf("decision %d (start=%v end=%v): engine delay %v, reference pacer %v",
				i, dec.start, dec.end, dec.d, want)
		}
		if dec.d > 0 {
			delayed++
		}
	}
	if delayed == 0 {
		t.Fatal("a 60 FPS viewer on a 480 FPS hub never accumulated a pacing delay; differential test exercised nothing")
	}
}

// TestHubPacedViewerHeldToTarget proves the wheel actually enforces the
// delays it schedules: a viewer paced to 30 FPS on a much faster hub must
// receive close to 30 FPS, not the hub rate.
func TestHubPacedViewerHeldToTarget(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 480})
	defer stop()
	cli, _, clean := attachClient(t, h, 30)
	defer clean()
	waitFrames(t, cli, 30, 15*time.Second)
	if fps := cli.Report().FPS; fps > 40 {
		t.Fatalf("viewer paced at 30 FPS measured %.1f FPS: wheel pacing not applied", fps)
	}
}
