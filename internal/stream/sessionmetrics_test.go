package stream

import (
	"testing"
	"time"

	"odr/internal/codec"
	"odr/internal/obs"
)

func TestCodecVersionLabel(t *testing.T) {
	if got := codecVersionLabel(codec.Options{}); got != "2" {
		t.Errorf("default version label = %q, want 2", got)
	}
	if got := codecVersionLabel(codec.Options{Version: 1}); got != "1" {
		t.Errorf("v1 label = %q", got)
	}
	if got := codecVersionLabel(codec.Options{Version: 2}); got != "2" {
		t.Errorf("v2 label = %q", got)
	}
}

func TestRegisterLiveMetricsIsLintClean(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterLiveMetrics(reg)
	obs.NewFrameInstruments(reg)
	if errs := obs.Lint(reg); len(errs) != 0 {
		t.Fatalf("full metric surface fails lint: %v", errs)
	}
	RegisterLiveMetrics(nil) // nil-safe
}

func TestRecordSessionStart(t *testing.T) {
	reg := obs.NewRegistry()
	recordSessionStart(reg, "ODR", codec.Options{})
	recordSessionStart(reg, "ODR", codec.Options{})
	recordSessionStart(reg, "Hub", codec.Options{Version: 1})
	v := reg.CounterVec(NameSessionsStarted, "", "policy", "codec_version")
	if got := v.With2("ODR", "2").Value(); got != 2 {
		t.Errorf("ODR/2 starts = %d, want 2", got)
	}
	if got := v.With2("Hub", "1").Value(); got != 1 {
		t.Errorf("Hub/1 starts = %d, want 1", got)
	}
	recordSessionStart(nil, "ODR", codec.Options{}) // nil-safe
}

func TestSessionProbeLifecycle(t *testing.T) {
	reg := obs.NewRegistry()
	p := newSessionProbe(reg, "s1")
	now := time.Duration(0)

	// Simulate ~1 s of a 50 FPS session answering an input every frame.
	for i := 0; i < 50; i++ {
		now += 20 * time.Millisecond
		p.onRender(5 * time.Millisecond)
		p.onEncode(2 * time.Millisecond)
		p.onTiles(3, 2)
		p.onInput(now - 15*time.Millisecond)
		mtp := p.mtpEstimate(now)
		if mtp <= 0 {
			t.Fatalf("frame %d: mtpEstimate = %d", i, mtp)
		}
		p.onSend(now, 10_000, time.Millisecond, mtp)
	}
	p.close(now, false)

	fps := reg.GaugeVec(NameSessionFPS, "", "session").With1("s1").Value()
	if fps < 45 || fps > 55 {
		t.Errorf("fps gauge = %v, want ~50", fps)
	}
	mtp := reg.GaugeVec(NameSessionMtPMs, "", "session").With1("s1").Value()
	if mtp < 14 || mtp > 16 {
		t.Errorf("mtp gauge = %v ms, want ~15", mtp)
	}
	smooth := reg.GaugeVec(NameSessionSmoothness, "", "session").With1("s1").Value()
	if smooth < 0.9 || smooth > 1 {
		t.Errorf("smoothness = %v for even pacing", smooth)
	}
	ev := reg.GaugeVec(NameSessionEnergy, "", "session", "component")
	render := ev.With2("s1", "render").Value()
	encode := ev.With2("s1", "encode").Value()
	network := ev.With2("s1", "network").Value()
	if render <= 0 || encode <= 0 || network <= 0 {
		t.Errorf("energy split = %v/%v/%v, want all positive", render, encode, network)
	}
	// 50 frames x 5 ms GPU-busy at defaultGPUIntensity^3 * GPUMaxWatts.
	split := p.EnergyTotals()
	if split.RenderJ != render || split.EncodeJ != encode || split.NetworkJ != network {
		t.Errorf("EnergyTotals %+v disagrees with gauges %v/%v/%v", split, render, encode, network)
	}
	ov := reg.CounterVec(NameTilesOutcome, "", "tile_outcome")
	if d, c := ov.With1("dirty").Value(), ov.With1("clean").Value(); d != 100 || c != 50 {
		t.Errorf("tile outcomes = %d dirty / %d clean, want 100/50", d, c)
	}
}

// TestSessionProbeMtPEstimate pins the estimate semantics: no input seen
// means no sample, and a frame finishing before the input cannot sample.
func TestSessionProbeMtPEstimate(t *testing.T) {
	reg := obs.NewRegistry()
	p := newSessionProbe(reg, "s1")
	if got := p.mtpEstimate(time.Second); got != 0 {
		t.Errorf("estimate before any input = %d", got)
	}
	p.onInput(2 * time.Second)
	if got := p.mtpEstimate(time.Second); got != 0 {
		t.Errorf("tx-end before input arrival = %d", got)
	}
	if got := p.mtpEstimate(2*time.Second + 30*time.Millisecond); got != 30_000 {
		t.Errorf("estimate = %d us, want 30000", got)
	}
}

func TestSessionProbeCloseDeletesSeries(t *testing.T) {
	reg := obs.NewRegistry()
	p := newSessionProbe(reg, "h7")
	p.onSend(sessionFlushInterval+time.Millisecond, 1000, time.Millisecond, 0)

	fpsVec := reg.GaugeVec(NameSessionFPS, "", "session")
	if fpsVec.Len() != 1 {
		t.Fatalf("series before close = %d", fpsVec.Len())
	}
	p.close(time.Second, true)
	if fpsVec.Len() != 0 {
		t.Errorf("fps series survived close: %d", fpsVec.Len())
	}
	if got := reg.GaugeVec(NameSessionEnergy, "", "session", "component").Len(); got != 0 {
		t.Errorf("energy series survived close: %d", got)
	}
	if got := reg.DroppedLabelSets().Value(); got != 0 {
		t.Errorf("orderly close counted as cardinality drop: %d", got)
	}
}

func TestSessionProbeNilIsInert(t *testing.T) {
	p := newSessionProbe(nil, "s1")
	if p != nil {
		t.Fatal("nil registry should yield nil probe")
	}
	p.onRender(time.Millisecond)
	p.onEncode(time.Millisecond)
	p.onTiles(3, 1)
	p.onInput(time.Second)
	_ = p.mtpEstimate(2 * time.Second)
	p.onSend(time.Second, 100, time.Millisecond, 0)
	p.maybeFlush(time.Second)
	p.close(time.Second, true)
	if s := p.EnergyTotals(); s.TotalJ() != 0 {
		t.Fatalf("nil probe energy = %+v", s)
	}
}

// TestSessionProbeRecordingAllocFree pins the hot-path contract: recording
// a frame through the probe (the per-frame half, not the flush) must not
// allocate.
func TestSessionProbeRecordingAllocFree(t *testing.T) {
	reg := obs.NewRegistry()
	p := newSessionProbe(reg, "s1")
	at := time.Duration(0)
	if n := testing.AllocsPerRun(1000, func() {
		at += time.Millisecond // stay inside one flush interval per run
		p.onRender(time.Millisecond)
		p.onEncode(time.Millisecond)
		p.onTiles(3, 1)
		p.onInput(at)
		p.onSend(at, 1000, time.Microsecond, p.mtpEstimate(at))
	}); n > 0.1 {
		t.Errorf("probe recording allocates %.2f/op, want 0", n)
	}
}
