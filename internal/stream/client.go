package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"odr/internal/codec"
	"odr/internal/metrics"
)

// streamConn is the connection surface the client needs; *net.TCPConn,
// net.Pipe ends and the chaos wrapper all satisfy it.
type streamConn = interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}

// ReconnectPolicy bounds how a reconnecting client chases a flaky server:
// exponential backoff with jitter, a consecutive-failure budget, and an idle
// timeout that catches half-open connections (reads that would otherwise
// block forever on a peer that silently vanished).
type ReconnectPolicy struct {
	// MaxAttempts is the consecutive failed session budget before Run gives
	// up (default 5). The count resets whenever a session makes frame
	// progress, so a long-lived flaky stream never exhausts it.
	MaxAttempts int
	// BaseDelay is the first backoff delay (default 25ms); it doubles per
	// consecutive failure up to MaxDelay (default 1s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter spreads each delay by ±Jitter fraction (default 0.2) so a herd
	// of clients does not reconnect in lockstep.
	Jitter float64
	// IdleTimeout, when > 0, is the per-read deadline: a session that
	// receives nothing for this long is declared dead and redialed.
	IdleTimeout time.Duration
	// Seed drives the jitter RNG, keeping soak runs reproducible.
	Seed int64
	// RedialOnBye makes an orderly msgBye redial (through the dial func)
	// instead of ending Run. A cluster client sets it so a worker's drain —
	// which says goodbye to every session — sends the client back to the
	// master for re-placement rather than terminating it.
	RedialOnBye bool
}

// Redirector is implemented by connections whose dial was re-resolved to a
// different endpoint than the previous session's — a master-issued redirect.
// The reconnecting client treats a redirected dial as progress and resets its
// consecutive-failure budget: the control plane moved the session, so the
// failures that led here belong to the old placement, not the new one.
type Redirector interface {
	Redirected() bool
}

// withDefaults fills zero fields.
func (p ReconnectPolicy) withDefaults() ReconnectPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 25 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Client decodes and displays a stream, sends user inputs, and measures the
// client-side QoS: decode FPS and motion-to-photon latency (both ends of the
// measurement are on the client clock, so no clock synchronization is
// needed — the input timestamp travels to the server and comes back embedded
// in the responding frame).
//
// A client built with NewReconnectingClient additionally survives the
// network: when its session dies it redials with exponential backoff and
// resumes via the keyframe resync path, within the ReconnectPolicy budget.
type Client struct {
	dial func() (net.Conn, error) // nil for single-conn clients
	pol  ReconnectPolicy

	connMu sync.Mutex // guards the conn pointer only — never held across I/O
	conn   streamConn

	dec *codec.Decoder

	start time.Time

	nextInput uint64
	writeMu   sync.Mutex

	mu           sync.Mutex
	frames       int64
	bytes        int64
	latencies    metrics.Dist
	interDisplay metrics.Dist
	lastDisplay  time.Duration
	lastBright   float64
	resyncs      int64
	reconnects   int64
	redirects    int64
	firstFrame   time.Duration
	lastFrame    time.Duration
	onFrame      func(seq uint64, pix []byte)

	// Delta-chain state (receive goroutine only): lastSeq is the last frame
	// this client decoded, and pendingResync means a keyframe request is in
	// flight — non-keyframes are skipped (not decoded) until it lands.
	haveSeq       bool
	lastSeq       uint64
	pendingResync bool

	stopped  atomic.Bool
	stopCh   chan struct{}
	stopOnce sync.Once
}

// NewClient wraps a single connection to a stream server. When the
// connection dies the client stops; use NewReconnectingClient for a client
// that redials.
func NewClient(conn streamConn) *Client {
	return &Client{conn: conn, dec: codec.NewDecoder(), start: time.Now(), stopCh: make(chan struct{})}
}

// NewReconnectingClient returns a client that obtains connections from dial
// and, when a session dies mid-stream, redials under pol and resumes via the
// keyframe resync path. Run performs the initial dial.
func NewReconnectingClient(dial func() (net.Conn, error), pol ReconnectPolicy) *Client {
	return &Client{
		dial:   dial,
		pol:    pol.withDefaults(),
		dec:    codec.NewDecoder(),
		start:  time.Now(),
		stopCh: make(chan struct{}),
	}
}

// OnFrame installs a callback invoked (on the receive goroutine) with each
// decoded frame. The pixel slice is only valid during the call.
func (c *Client) OnFrame(fn func(seq uint64, pix []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onFrame = fn
}

// now returns the client-clock offset.
func (c *Client) now() time.Duration { return time.Since(c.start) }

// currentConn returns the active connection (nil before the first dial).
func (c *Client) currentConn() streamConn {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn
}

// setConn swaps the active connection.
func (c *Client) setConn(conn streamConn) {
	c.connMu.Lock()
	c.conn = conn
	c.connMu.Unlock()
}

var errNoConn = errors.New("stream: client not connected")

// sendKeyReq asks the server for a keyframe (decoder resync).
func (c *Client) sendKeyReq() error {
	conn := c.currentConn()
	if conn == nil {
		return errNoConn
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeMsg(conn, msgKeyReq, nil)
}

// SendInput sends one user input (step 1 of Fig. 2) and returns its id.
func (c *Client) SendInput() (uint64, error) {
	id := atomic.AddUint64(&c.nextInput, 1)
	payload := inputMsg(id, int64(c.now()))
	conn := c.currentConn()
	if conn == nil {
		return id, errNoConn
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return id, writeMsg(conn, msgInput, payload)
}

// beginResync starts (or continues) a keyframe resync: one keyframe request
// per outage, then skip frames until the keyframe arrives. Receive-goroutine
// only.
func (c *Client) beginResync() error {
	if c.pendingResync {
		return nil
	}
	c.pendingResync = true
	c.mu.Lock()
	c.resyncs++
	c.mu.Unlock()
	return c.sendKeyReq()
}

// errBye distinguishes an orderly msgBye shutdown from a dead session.
var errBye = errors.New("stream: bye")

// runSession receives, decodes and accounts frames on one connection. It
// returns errBye on orderly shutdown and the transport/protocol error
// otherwise.
func (c *Client) runSession(conn streamConn) error {
	deadliner, hasDeadline := conn.(interface{ SetReadDeadline(time.Time) error })
	var buf []byte
	for {
		if c.pol.IdleTimeout > 0 && hasDeadline {
			if err := deadliner.SetReadDeadline(time.Now().Add(c.pol.IdleTimeout)); err != nil {
				return err
			}
		}
		typ, payload, err := readMsg(conn, buf)
		if err != nil {
			return err
		}
		buf = payload[:cap(payload)]
		switch typ {
		case msgFrame:
			m, bs, err := parseFrameMsg(payload)
			if errors.Is(err, errFrameChecksum) {
				// Corrupt bitstream: never decode it — resync instead.
				if kerr := c.beginResync(); kerr != nil {
					return kerr
				}
				continue
			}
			if err != nil {
				return err
			}
			isKey := m.parentSeq == 0 && codec.IsKeyframe(bs)
			if c.pendingResync && !isKey {
				continue // waiting for the requested keyframe
			}
			if !isKey && (!c.haveSeq || m.parentSeq != c.lastSeq) {
				// Broken delta chain: a frame this delta builds on never
				// reached us (lost, or dropped server-side after encode).
				// Decoding it would show wrong pixels with no error.
				if kerr := c.beginResync(); kerr != nil {
					return kerr
				}
				continue
			}
			pix, err := c.dec.Decode(bs)
			if errors.Is(err, codec.ErrNoKeyframe) {
				// Joined mid-stream: ask for a keyframe and skip until it
				// arrives.
				if kerr := c.beginResync(); kerr != nil {
					return kerr
				}
				continue
			}
			partial := errors.Is(err, codec.ErrTileCRC)
			if err != nil && !partial {
				return err
			}
			if partial {
				// Corrupt tiles in an otherwise valid v2 frame: the intact
				// tiles were applied, so show what arrived — but the
				// reconstruction no longer matches the encoder, so treat the
				// delta chain as broken until a keyframe lands.
				c.haveSeq = false
				if isKey {
					// The awaited keyframe itself was damaged; ask again.
					c.pendingResync = false
				}
				if kerr := c.beginResync(); kerr != nil {
					return kerr
				}
			} else {
				c.haveSeq, c.lastSeq, c.pendingResync = true, m.seq, false
			}
			display := c.now()
			c.mu.Lock()
			c.frames++
			c.bytes += int64(len(bs))
			if c.firstFrame == 0 {
				c.firstFrame = display
			}
			c.lastFrame = display
			if c.lastDisplay > 0 {
				c.interDisplay.Add(float64(display-c.lastDisplay) / float64(time.Millisecond))
			}
			c.lastDisplay = display
			if m.inputID != 0 {
				c.latencies.Add(float64(display-time.Duration(m.inputNanos)) / float64(time.Millisecond))
			}
			c.lastBright = Brightness(pix)
			fn := c.onFrame
			c.mu.Unlock()
			if fn != nil {
				fn(m.seq, pix)
			}
		case msgBye:
			return errBye
		case msgInput, msgKeyReq:
			return fmt.Errorf("stream: unexpected client-bound message type %d", typ)
		default:
			return fmt.Errorf("stream: unknown message type %d", typ)
		}
	}
}

// Run receives, decodes and accounts frames until the stream ends. A nil
// return means orderly shutdown. A reconnecting client redials dead sessions
// under its policy; Run returns the last session error once MaxAttempts
// consecutive sessions fail without frame progress.
func (c *Client) Run() error {
	if c.dial == nil {
		err := c.runSession(c.currentConn())
		if errors.Is(err, errBye) || c.stopped.Load() || isClosedErr(err) {
			return nil
		}
		return err
	}
	rng := rand.New(rand.NewSource(c.pol.Seed))
	attempts, sessions := 0, 0
	for {
		if c.stopped.Load() {
			return nil
		}
		conn, err := c.dial()
		if err == nil {
			if r, ok := conn.(Redirector); ok && r.Redirected() {
				// A master-issued re-placement: the failures spent reaching it
				// belong to the old endpoint, so the budget starts over.
				attempts = 0
				c.mu.Lock()
				c.redirects++
				c.mu.Unlock()
			}
			c.setConn(conn)
			// Stop may have raced the dial: its conn.Close targeted whatever
			// currentConn held before the swap, which misses this one. After
			// the swap, either this load sees the stop flag (close here), or
			// the flag was set later and Stop's close runs after the swap and
			// hits the new conn — both orders leave it closed, so runSession
			// can never sit on a live stream past Stop.
			if c.stopped.Load() {
				conn.Close()
				return nil
			}
			if sessions > 0 {
				c.mu.Lock()
				c.reconnects++
				c.mu.Unlock()
			}
			sessions++
			// A fresh connection means fresh framing and a fresh decoder,
			// with the whole keyframe-chain state reset alongside it: the
			// first delta of the new session must be rejected and trigger a
			// resync, never matched against a stale lastSeq.
			c.dec = codec.NewDecoder()
			c.haveSeq, c.lastSeq, c.pendingResync = false, 0, false
			before := c.frameCount()
			err = c.runSession(conn)
			conn.Close()
			if c.stopped.Load() {
				return nil
			}
			if errors.Is(err, errBye) {
				if !c.pol.RedialOnBye {
					return nil
				}
				// A drain's goodbye: redial (the dial func re-resolves the
				// endpoint) instead of ending the run.
			}
			if c.frameCount() > before {
				attempts = 0 // the session made progress; reset the budget
			}
		}
		attempts++
		if attempts >= c.pol.MaxAttempts {
			return fmt.Errorf("stream: retry budget exhausted after %d attempts: %w", attempts, err)
		}
		delay := c.pol.BaseDelay << (attempts - 1)
		if delay > c.pol.MaxDelay || delay <= 0 {
			delay = c.pol.MaxDelay
		}
		delay += time.Duration((rng.Float64()*2 - 1) * c.pol.Jitter * float64(delay))
		// Stop/drain safety: the backoff sleep must not outlive Stop. stopCh
		// is closed exactly once (stopOnce), so this select wakes immediately
		// however the close interleaves with NewTimer, and the timer is
		// stopped on that path — a cancelled backoff leaves no timer, no
		// goroutine and no connection behind.
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-c.stopCh:
			t.Stop()
			return nil
		}
	}
}

// frameCount returns the frames decoded so far.
func (c *Client) frameCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames
}

// Stop closes the connection, ending Run (including a reconnect backoff
// sleep in progress).
func (c *Client) Stop() {
	c.stopped.Store(true)
	c.stopOnce.Do(func() { close(c.stopCh) })
	if conn := c.currentConn(); conn != nil {
		conn.Close()
	}
}

// Report summarizes the client-side measurements.
type Report struct {
	Frames         int64
	Bytes          int64
	FPS            float64 // frames over the active span
	MeanLatency    float64 // ms, motion-to-photon
	P99Latency     float64 // ms
	LatencySamples int
	MeanInterMs    float64
	Brightness     float64 // last frame's luminance
	Resyncs        int64   // keyframe resyncs (mid-stream joins, chain breaks, corruption)
	Reconnects     int64   // sessions redialed after a mid-stream death
	Redirects      int64   // dials the resolver re-placed onto a new endpoint
	RetryBudget    int     // consecutive-failure budget (0 for single-conn clients)
}

// Report returns the current measurements.
func (c *Client) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{
		Frames:         c.frames,
		Bytes:          c.bytes,
		MeanLatency:    c.latencies.Mean(),
		P99Latency:     c.latencies.Percentile(99),
		LatencySamples: c.latencies.N(),
		MeanInterMs:    c.interDisplay.Mean(),
		Brightness:     c.lastBright,
		Resyncs:        c.resyncs,
		Reconnects:     c.reconnects,
		Redirects:      c.redirects,
	}
	if c.dial != nil {
		r.RetryBudget = c.pol.MaxAttempts
	}
	if span := c.lastFrame - c.firstFrame; span > 0 && c.frames > 1 {
		r.FPS = float64(c.frames-1) / span.Seconds()
	}
	return r
}
