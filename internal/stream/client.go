package stream

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"odr/internal/codec"
	"odr/internal/metrics"
)

// Client decodes and displays a stream, sends user inputs, and measures the
// client-side QoS: decode FPS and motion-to-photon latency (both ends of the
// measurement are on the client clock, so no clock synchronization is
// needed — the input timestamp travels to the server and comes back embedded
// in the responding frame).
type Client struct {
	conn interface {
		Read([]byte) (int, error)
		Write([]byte) (int, error)
		Close() error
	}
	dec *codec.Decoder

	start time.Time

	nextInput uint64
	writeMu   sync.Mutex

	mu           sync.Mutex
	frames       int64
	bytes        int64
	latencies    metrics.Dist
	interDisplay metrics.Dist
	lastDisplay  time.Duration
	lastBright   float64
	resyncs      int64
	firstFrame   time.Duration
	lastFrame    time.Duration
	onFrame      func(seq uint64, pix []byte)

	stopped atomic.Bool
}

// NewClient wraps a connection to a stream server.
func NewClient(conn interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}) *Client {
	return &Client{conn: conn, dec: codec.NewDecoder(), start: time.Now()}
}

// OnFrame installs a callback invoked (on the receive goroutine) with each
// decoded frame. The pixel slice is only valid during the call.
func (c *Client) OnFrame(fn func(seq uint64, pix []byte)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onFrame = fn
}

// now returns the client-clock offset.
func (c *Client) now() time.Duration { return time.Since(c.start) }

// sendKeyReq asks the server for a keyframe (decoder resync).
func (c *Client) sendKeyReq() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return writeMsg(c.conn, msgKeyReq, nil)
}

// SendInput sends one user input (step 1 of Fig. 2) and returns its id.
func (c *Client) SendInput() (uint64, error) {
	id := atomic.AddUint64(&c.nextInput, 1)
	payload := inputMsg(id, int64(c.now()))
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return id, writeMsg(c.conn, msgInput, payload)
}

// Run receives, decodes and accounts frames until the stream ends. A nil
// return means orderly shutdown.
func (c *Client) Run() error {
	var buf []byte
	for {
		typ, payload, err := readMsg(c.conn, buf)
		if err != nil {
			if c.stopped.Load() || isClosedErr(err) {
				return nil
			}
			return err
		}
		buf = payload[:cap(payload)]
		switch typ {
		case msgFrame:
			seq, inputID, inputNanos, _, bs, err := parseFrameMsg(payload)
			if err != nil {
				return err
			}
			pix, err := c.dec.Decode(bs)
			if errors.Is(err, codec.ErrNoKeyframe) {
				// Joined mid-stream (or lost sync): ask for a keyframe and
				// skip frames until it arrives.
				c.mu.Lock()
				c.resyncs++
				c.mu.Unlock()
				if kerr := c.sendKeyReq(); kerr != nil {
					return kerr
				}
				continue
			}
			if err != nil {
				return err
			}
			display := c.now()
			c.mu.Lock()
			c.frames++
			c.bytes += int64(len(bs))
			if c.firstFrame == 0 {
				c.firstFrame = display
			}
			c.lastFrame = display
			if c.lastDisplay > 0 {
				c.interDisplay.Add(float64(display-c.lastDisplay) / float64(time.Millisecond))
			}
			c.lastDisplay = display
			if inputID != 0 {
				c.latencies.Add(float64(display-time.Duration(inputNanos)) / float64(time.Millisecond))
			}
			c.lastBright = Brightness(pix)
			fn := c.onFrame
			c.mu.Unlock()
			if fn != nil {
				fn(seq, pix)
			}
		case msgBye:
			return nil
		}
	}
}

// Stop closes the connection, ending Run.
func (c *Client) Stop() {
	c.stopped.Store(true)
	c.conn.Close()
}

// Report summarizes the client-side measurements.
type Report struct {
	Frames         int64
	Bytes          int64
	FPS            float64 // frames over the active span
	MeanLatency    float64 // ms, motion-to-photon
	P99Latency     float64 // ms
	LatencySamples int
	MeanInterMs    float64
	Brightness     float64 // last frame's luminance
	Resyncs        int64   // keyframe requests issued (mid-stream joins)
}

// Report returns the current measurements.
func (c *Client) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{
		Frames:         c.frames,
		Bytes:          c.bytes,
		MeanLatency:    c.latencies.Mean(),
		P99Latency:     c.latencies.Percentile(99),
		LatencySamples: c.latencies.N(),
		MeanInterMs:    c.interDisplay.Mean(),
		Brightness:     c.lastBright,
		Resyncs:        c.resyncs,
	}
	if span := c.lastFrame - c.firstFrame; span > 0 && c.frames > 1 {
		r.FPS = float64(c.frames-1) / span.Seconds()
	}
	return r
}
