package stream

import (
	"crypto/sha256"
	"errors"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"odr/internal/obs"
	"odr/internal/testutil"
)

// TestHubAttachStopRace is the regression for the attach/stop race: an
// Attach that passed the entry check while a concurrent Stop snapshotted the
// registry used to register a session Stop never closed, leaking its
// goroutines forever. Post-fix, every racing attach either lands in Stop's
// sweep or refuses itself — its detach callback fires either way, and the
// leak checker proves nothing survived.
func TestHubAttachStopRace(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	const attachers = 8
	for iter := 0; iter < 25; iter++ {
		h := NewHub(HubConfig{Width: 16, Height: 16, TargetFPS: 480})
		go h.Run()

		var conns [attachers]net.Conn
		detached := make(chan struct{}, attachers)
		var wg sync.WaitGroup
		for i := 0; i < attachers; i++ {
			sc, cc := net.Pipe()
			conns[i] = cc
			wg.Add(1)
			go func(sc net.Conn) {
				defer wg.Done()
				h.Attach(sc, 0, func(SessionStats) { detached <- struct{}{} })
			}(sc)
		}
		h.Stop()
		wg.Wait()
		for i := 0; i < attachers; i++ {
			select {
			case <-detached:
			case <-time.After(10 * time.Second):
				t.Fatalf("iter %d: session %d never detached after Stop", iter, i)
			}
		}
		for _, c := range conns {
			c.Close()
		}
	}
}

// TestHubInputAttributionHighSessionIDs is the regression for the packInput
// truncation bug: with the old 40-bit layout, session ids at and above 2^24
// overflowed the uint64 shift, so the responding frame was never attributed
// to the sender and its motion-to-photon sample was lost.
func TestHubInputAttributionHighSessionIDs(t *testing.T) {
	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 120})
	defer stop()
	// The next two attaches get ids 1<<24 and 1<<24 + 1.
	h.nextID.Store(1<<24 - 1)

	sender, _, cleanA := attachClient(t, h, 0)
	defer cleanA()
	bystander, _, cleanB := attachClient(t, h, 0)
	defer cleanB()
	waitFrames(t, sender, 3, 10*time.Second)
	waitFrames(t, bystander, 3, 10*time.Second)

	if _, err := sender.SendInput(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && sender.Report().LatencySamples == 0 {
		time.Sleep(5 * time.Millisecond)
	}
	if sender.Report().LatencySamples == 0 {
		t.Fatal("sender at session id 1<<24 never got its input echoed (MtP sample lost)")
	}
	if n := bystander.Report().LatencySamples; n != 0 {
		t.Fatalf("bystander at session id 1<<24+1 recorded %d latency samples, want 0", n)
	}
}

// TestHubSendErrorSealsWithByeOnDrain is the regression for the error path
// that skipped the drain bye: a session whose send path errors while the hub
// is draining must still seal with an orderly msgBye, exactly like the
// buffer-close path.
func TestHubSendErrorSealsWithByeOnDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	h := NewHub(HubConfig{Width: 16, Height: 16, TargetFPS: 480})
	go h.Run()
	defer h.Stop()

	sc, cc := net.Pipe()
	detached := make(chan struct{})
	h.Attach(sc, 0, func(SessionStats) { close(detached) })

	// Read one frame, then stop reading: the synchronous pipe blocks the
	// send loop mid-write while newer artifacts queue up behind it.
	cc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, _, err := readMsg(cc, nil)
	if err != nil || typ != msgFrame {
		t.Fatalf("first message: type %d err %v", typ, err)
	}
	time.Sleep(50 * time.Millisecond) // let artifacts pile up behind the stalled write

	// Every subsequent send attempt fails.
	errInjected := errors.New("injected send failure")
	hook := func(uint32) error { return errInjected }
	h.sendErr.Store(&hook)

	drainDone := make(chan error, 1)
	go func() { drainDone <- h.Drain(10 * time.Second) }()
	for !h.drainRequested() {
		time.Sleep(time.Millisecond)
	}

	// Resume reading: the blocked frame completes, the next artifact hits
	// the injected error, and the drain-aware teardown must write msgBye.
	sawBye := false
	var buf []byte
	for !sawBye {
		cc.SetReadDeadline(time.Now().Add(10 * time.Second))
		typ, payload, err := readMsg(cc, buf)
		if err != nil {
			t.Fatalf("connection ended before msgBye: %v", err)
		}
		buf = payload[:cap(payload)]
		if typ == msgBye {
			sawBye = true
		}
	}
	select {
	case <-detached:
	case <-time.After(10 * time.Second):
		t.Fatal("session never detached")
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	cc.Close()
}

// TestHubRenderBufferRecycling pins the render-path fix: pixel buffers
// recycle through the free list instead of being reallocated every frame.
func TestHubRenderBufferRecycling(t *testing.T) {
	h := NewHub(HubConfig{Width: 32, Height: 18})

	// The free list round-trips the identical backing array, alloc-free.
	b1 := h.pixGet()
	h.pixPut(b1)
	b2 := h.pixGet()
	if &b1[0] != &b2[0] {
		t.Fatal("pixGet after pixPut returned a different buffer")
	}
	h.pixPut(b2)
	if n := testing.AllocsPerRun(200, func() { h.pixPut(h.pixGet()) }); n != 0 {
		t.Fatalf("pixGet/pixPut allocates %.1f/op, want 0", n)
	}

	// End to end: a running renderer must not allocate a fresh frame buffer
	// per frame. The per-frame frame.Frame bookkeeping is far smaller than
	// one 32×18 RGBA buffer, so bytes-per-frame under FrameBytes proves the
	// pixel buffer recycled.
	h3 := NewHub(HubConfig{Width: 32, Height: 18, TargetFPS: 2000})
	go h3.Run()
	for h3.Rendered() < 20 { // warm up the free list
		time.Sleep(time.Millisecond)
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := h3.Rendered()
	for h3.Rendered() < start+200 {
		time.Sleep(time.Millisecond)
	}
	runtime.ReadMemStats(&after)
	frames := h3.Rendered() - start
	h3.Stop()
	perFrame := float64(after.TotalAlloc-before.TotalAlloc) / float64(frames)
	if limit := float64(h3.game.FrameBytes()); perFrame >= limit {
		t.Fatalf("render loop allocates %.0f B/frame, want < %.0f (pixel buffer not recycled)", perFrame, limit)
	}
}

// refRenders replays the deterministic shared game and returns the sha256 of
// each frame up to maxSeq (index seq-1): the per-session-encoder reference a
// fanned-out viewer's pixels must match byte for byte.
func refRenders(w, h int, maxSeq uint64) [][32]byte {
	g := NewGame(w, h)
	pix := make([]byte, g.FrameBytes())
	hashes := make([][32]byte, maxSeq)
	for i := uint64(0); i < maxSeq; i++ {
		g.Render(pix)
		hashes[i] = sha256.Sum256(pix)
	}
	return hashes
}

// TestHubSharedEncoderFanOut proves the tentpole end to end: N same-
// resolution viewers share one lane encoder (encode work grows with frames,
// not frames × viewers) and every viewer's decoded pixels are byte-identical
// to the per-session-encoder reference — including late joiners, whose first
// frame is spliced, not re-encoded.
func TestHubSharedEncoderFanOut(t *testing.T) {
	const clients = 6
	const wantFrames = 30
	reg := obs.NewRegistry()
	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 240, Metrics: reg})
	defer stop()

	var mu sync.Mutex
	got := make(map[uint64][32]byte) // seq → pixel hash, must agree across viewers
	var maxSeq uint64
	mismatch := false

	clis := make([]*Client, 0, clients)
	cleanups := make([]func(), 0, clients)
	for i := 0; i < clients; i++ {
		cli, _, clean := attachClient(t, h, 0)
		cli.OnFrame(func(seq uint64, pix []byte) {
			sum := sha256.Sum256(pix)
			mu.Lock()
			if prev, ok := got[seq]; ok && prev != sum {
				mismatch = true
			}
			got[seq] = sum
			if seq > maxSeq {
				maxSeq = seq
			}
			mu.Unlock()
		})
		clis = append(clis, cli)
		cleanups = append(cleanups, clean)
		// Stagger attaches so later viewers join mid-stream and exercise
		// the spliced-keyframe path.
		time.Sleep(10 * time.Millisecond)
	}
	for _, cli := range clis {
		waitFrames(t, cli, wantFrames, 15*time.Second)
	}
	var displayed int64
	for _, cli := range clis {
		displayed += cli.Report().Frames
	}
	for _, clean := range cleanups {
		clean()
	}
	h.Stop()

	// Encode-once: the shared encoder ran once per encoded frame, bounded
	// by what was rendered — while deliveries fanned out many times over.
	encodes := reg.CounterVec(NameHubSharedEncodes, "", "lane").With1("1").Value()
	rendered := h.Rendered()
	if encodes <= 0 || encodes > rendered {
		t.Fatalf("shared encodes = %d, rendered = %d; want 0 < encodes <= rendered", encodes, rendered)
	}
	if displayed < 2*encodes {
		t.Fatalf("displayed %d frames across %d clients for %d shared encodes; fan-out not shared", displayed, clients, encodes)
	}
	splicedKeys := reg.CounterVec(NameHubSplicedKeyframes, "", "lane").With1("1").Value()
	if splicedKeys <= 0 {
		t.Fatalf("spliced keyframes = %d, want > 0 (late joiners must splice, not force shared keys)", splicedKeys)
	}

	// Byte-identity: viewers agreed with each other and with the reference.
	mu.Lock()
	defer mu.Unlock()
	if mismatch {
		t.Fatal("two viewers decoded different pixels for the same frame seq")
	}
	if len(got) == 0 {
		t.Fatal("no frames hashed")
	}
	ref := refRenders(32, 18, maxSeq)
	for seq, sum := range got {
		if ref[seq-1] != sum {
			t.Fatalf("frame %d: decoded pixels differ from the per-session-encoder reference", seq)
		}
	}
}

// TestHubVectoredWritePathTCP streams over real TCP, the transport where
// verbatim sends use writev (net.Buffers) with no payload copy, and checks
// the wire protocol survives the batching intact.
func TestHubVectoredWritePathTCP(t *testing.T) {
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback TCP unavailable: %v", err)
	}
	defer lst.Close()

	h, stop := startHub(t, HubConfig{Width: 32, Height: 18, TargetFPS: 240})
	defer stop()

	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := lst.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	cc, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Skipf("loopback TCP dial failed: %v", err)
	}
	sc := <-accepted
	if !supportsVectoredWrites(sc) {
		t.Fatal("TCP conn not detected as vectored")
	}
	if supportsVectoredWrites(struct{ net.Conn }{sc}) {
		t.Fatal("wrapped conn wrongly detected as vectored")
	}

	h.Attach(sc, 0, nil)
	cli := NewClient(cc)
	done := make(chan error, 1)
	go func() { done <- cli.Run() }()
	waitFrames(t, cli, 30, 15*time.Second)
	if b := cli.Report().Brightness; b <= 0 {
		t.Fatalf("brightness = %v, want > 0", b)
	}
	cli.Stop()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("client did not stop")
	}
}

// TestDownsampleNonDivisible covers the box filter when the source dimension
// does not divide evenly: dst is the floor (320×180 at div=3 → 106×60) and
// every output pixel averages a full div×div block inside bounds.
func TestDownsampleNonDivisible(t *testing.T) {
	const srcW, srcH, div = 320, 180, 3
	dstW, dstH := srcW/div, srcH/div
	src := make([]byte, srcW*srcH*4)
	for i := range src {
		src[i] = byte(i*7 + i/13)
	}
	dst := make([]byte, dstW*dstH*4)
	downsample(src, srcW, dst, dstW, dstH, div)
	// Independent expectation: sum the block per channel, truncate.
	for _, p := range []struct{ x, y int }{{0, 0}, {dstW - 1, dstH - 1}, {dstW / 2, dstH / 3}} {
		for c := 0; c < 4; c++ {
			sum := 0
			for dy := 0; dy < div; dy++ {
				for dx := 0; dx < div; dx++ {
					sum += int(src[((p.y*div+dy)*srcW+(p.x*div+dx))*4+c])
				}
			}
			want := byte(sum / (div * div))
			if got := dst[(p.y*dstW+p.x)*4+c]; got != want {
				t.Fatalf("pixel (%d,%d) channel %d = %d, want %d", p.x, p.y, c, got, want)
			}
		}
	}
}

// TestDownsampleDivOne: at div=1 the filter is an exact copy.
func TestDownsampleDivOne(t *testing.T) {
	const w, h = 7, 5
	src := make([]byte, w*h*4)
	for i := range src {
		src[i] = byte(i * 11)
	}
	dst := make([]byte, len(src))
	downsample(src, w, dst, w, h, 1)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d: got %d, want %d", i, dst[i], src[i])
		}
	}
}

// TestDownsampleKnownAverage: a block of known values must average exactly,
// including the truncating division.
func TestDownsampleKnownAverage(t *testing.T) {
	// 2×2 source, div=2 → one output pixel. Channel 0 values 1,2,3,4
	// average to 10/4 = 2 (truncated).
	src := make([]byte, 2*2*4)
	for i, v := range []byte{1, 2, 3, 4} {
		src[i*4] = v
		src[i*4+1] = v * 10
		src[i*4+3] = 255
	}
	dst := make([]byte, 4)
	downsample(src, 2, dst, 1, 1, 2)
	if dst[0] != 2 {
		t.Fatalf("channel 0 = %d, want 2 (truncated mean of 1..4)", dst[0])
	}
	if dst[1] != 25 {
		t.Fatalf("channel 1 = %d, want 25", dst[1])
	}
	if dst[3] != 255 {
		t.Fatalf("alpha = %d, want 255", dst[3])
	}
}

// TestHubTileCacheConservation pins the accounting contract the soak's cache
// invariant scrapes: every payload tile of every shared encode and every
// tile of every spliced frame does exactly one cache lookup, and the hub
// publishes the cache's totals after each operation — so once the hub has
// stopped, hits + misses == dirty tiles + spliced tiles, exactly.
func TestHubTileCacheConservation(t *testing.T) {
	reg := obs.NewRegistry()
	h, stop := startHub(t, HubConfig{Width: 64, Height: 36, TargetFPS: 240, Metrics: reg})
	defer stop()

	const clients = 4
	cleanups := make([]func(), 0, clients)
	clis := make([]*Client, 0, clients)
	for i := 0; i < clients; i++ {
		cli, _, clean := attachClient(t, h, 0)
		clis = append(clis, cli)
		cleanups = append(cleanups, clean)
		// Stagger so late joiners splice keys mid-stream.
		time.Sleep(10 * time.Millisecond)
	}
	for _, cli := range clis {
		waitFrames(t, cli, 25, 15*time.Second)
	}
	for _, clean := range cleanups {
		clean()
	}
	h.Stop()

	hits := reg.Counter(NameCodecTileCacheHits).Value()
	misses := reg.Counter(NameCodecTileCacheMisses).Value()
	dirty := reg.CounterVec(NameTilesOutcome, "", "tile_outcome").With1("dirty").Value()
	spliced := reg.CounterVec(NameHubSplicedTiles, "", "lane").With1("1").Value()
	if hits+misses == 0 {
		t.Fatal("hub streamed with zero cache lookups; cache not wired to lanes")
	}
	if hits+misses != dirty+spliced {
		t.Fatalf("cache conservation broken: hits %d + misses %d = %d, want dirty %d + spliced %d = %d",
			hits, misses, hits+misses, dirty, spliced, dirty+spliced)
	}
	keys := reg.CounterVec(NameHubSplicedKeyframes, "", "lane").With1("1").Value()
	if keys > 0 && spliced == 0 {
		t.Fatal("spliced keyframes recorded but no spliced tiles counted")
	}
}
