// Package stream is the real-time implementation of the cloud-3D pipeline:
// a server proxy that renders a synthetic 3D application, encodes frames
// with the real codec and streams them over a net.Conn, and a client that
// decodes, displays and measures QoS — with the regulation policy (NoReg,
// Interval, or ODR) plugged in. The ODR components (MultiBuffer, Pacer,
// InputBox) are the same package core objects the simulator uses, running on
// the real-time runtime (package realrt).
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Message types on the wire.
const (
	msgFrame  byte = 1 // server -> client: encoded frame
	msgInput  byte = 2 // client -> server: user input event
	msgBye    byte = 3 // either direction: orderly shutdown
	msgKeyReq byte = 4 // client -> server: request a keyframe (decoder resync)
)

// maxPayload bounds a message payload (64 MiB) to fail fast on corruption.
const maxPayload = 64 << 20

// allocChunk caps how much readMsg allocates ahead of bytes actually
// arriving, so a corrupt length prefix cannot force a 64 MiB allocation.
const allocChunk = 64 << 10

// frameHeaderLen is seq(8) + parentSeq(8) + inputID(8) + inputNanos(8) +
// renderNanos(8) + crc32(4). parentSeq is the seq of the frame this delta
// was encoded against (0 for keyframes): a client that decodes frame N
// against anything but frame parentSeq would silently show wrong pixels, so
// a parent-chain mismatch — caused by a lost frame, or by the server
// dropping an already-encoded frame — triggers a keyframe resync instead.
// The CRC covers the bitstream, catching byte corruption that the codec
// would otherwise decode "validly" into wrong pixels.
const frameHeaderLen = 44

var (
	errPayloadTooLarge = errors.New("stream: payload exceeds limit")
	errFrameChecksum   = errors.New("stream: frame bitstream checksum mismatch")
)

// writeMsg writes one length-prefixed message: type(1) len(4) payload.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxPayload {
		return errPayloadTooLarge
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// A zero-length Write on a synchronous net.Pipe blocks until a
		// matching zero-length Read that never happens; skip it.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one message. buf is reused when large enough.
func readMsg(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := int(binary.LittleEndian.Uint32(hdr[1:]))
	if n > maxPayload {
		return 0, nil, fmt.Errorf("stream: message of %d bytes exceeds limit", n)
	}
	if cap(buf) >= n {
		payload = buf[:n]
		if _, err = io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
		return typ, payload, nil
	}
	// Grow in allocChunk steps, each funded by bytes that actually arrived,
	// so a forged length prefix costs its sender the data, not us the memory.
	payload = buf[:0]
	tmp := make([]byte, min(n, allocChunk))
	for remaining := n; remaining > 0; {
		c := min(remaining, allocChunk)
		if _, err = io.ReadFull(r, tmp[:c]); err != nil {
			return 0, nil, err
		}
		payload = append(payload, tmp[:c]...)
		remaining -= c
	}
	return typ, payload, nil
}

// frameMeta is the decoded frame message header.
type frameMeta struct {
	seq         uint64
	parentSeq   uint64 // seq the delta was encoded against; 0 for keyframes
	inputID     uint64
	inputNanos  int64
	renderNanos int64
}

// putFrameHeader fills the frameHeaderLen-byte frame message header in
// place, so hot paths can build header+bitstream in one recycled buffer.
// bitstream must be the payload that follows the header (for the CRC).
func putFrameHeader(dst []byte, m frameMeta, bitstream []byte) {
	putFrameHeaderCRC(dst, m, crc32.ChecksumIEEE(bitstream))
}

// putFrameHeaderCRC is putFrameHeader with a precomputed bitstream CRC, for
// fan-out paths that checksum a shared bitstream once and reuse it across
// every viewer's header.
func putFrameHeaderCRC(dst []byte, m frameMeta, crc uint32) {
	binary.LittleEndian.PutUint64(dst[0:], m.seq)
	binary.LittleEndian.PutUint64(dst[8:], m.parentSeq)
	binary.LittleEndian.PutUint64(dst[16:], m.inputID)
	binary.LittleEndian.PutUint64(dst[24:], uint64(m.inputNanos))
	binary.LittleEndian.PutUint64(dst[32:], uint64(m.renderNanos))
	binary.LittleEndian.PutUint32(dst[40:], crc)
}

// frameMsg encodes a frame message payload: header + bitstream.
func frameMsg(m frameMeta, bitstream []byte) []byte {
	out := make([]byte, frameHeaderLen+len(bitstream))
	copy(out[frameHeaderLen:], bitstream)
	putFrameHeader(out, m, out[frameHeaderLen:])
	return out
}

// parseFrameMsg splits a frame message payload, verifying the bitstream CRC
// (errFrameChecksum on mismatch — the client resyncs rather than decoding
// corrupt data into wrong pixels).
func parseFrameMsg(p []byte) (m frameMeta, bitstream []byte, err error) {
	if len(p) < frameHeaderLen {
		return frameMeta{}, nil, errors.New("stream: short frame message")
	}
	m.seq = binary.LittleEndian.Uint64(p[0:])
	m.parentSeq = binary.LittleEndian.Uint64(p[8:])
	m.inputID = binary.LittleEndian.Uint64(p[16:])
	m.inputNanos = int64(binary.LittleEndian.Uint64(p[24:]))
	m.renderNanos = int64(binary.LittleEndian.Uint64(p[32:]))
	bitstream = p[frameHeaderLen:]
	if crc32.ChecksumIEEE(bitstream) != binary.LittleEndian.Uint32(p[40:]) {
		return frameMeta{}, nil, errFrameChecksum
	}
	return m, bitstream, nil
}

// inputMsg encodes an input message payload: id(8) + clientNanos(8).
func inputMsg(id uint64, nanos int64) []byte {
	var out [16]byte
	binary.LittleEndian.PutUint64(out[0:], id)
	binary.LittleEndian.PutUint64(out[8:], uint64(nanos))
	return out[:]
}

// parseInputMsg splits an input message payload.
func parseInputMsg(p []byte) (id uint64, nanos int64, err error) {
	if len(p) < 16 {
		return 0, 0, errors.New("stream: short input message")
	}
	return binary.LittleEndian.Uint64(p[0:]), int64(binary.LittleEndian.Uint64(p[8:])), nil
}
