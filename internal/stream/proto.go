// Package stream is the real-time implementation of the cloud-3D pipeline:
// a server proxy that renders a synthetic 3D application, encodes frames
// with the real codec and streams them over a net.Conn, and a client that
// decodes, displays and measures QoS — with the regulation policy (NoReg,
// Interval, or ODR) plugged in. The ODR components (MultiBuffer, Pacer,
// InputBox) are the same package core objects the simulator uses, running on
// the real-time runtime (package realrt).
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Message types on the wire.
const (
	msgFrame  byte = 1 // server -> client: encoded frame
	msgInput  byte = 2 // client -> server: user input event
	msgBye    byte = 3 // either direction: orderly shutdown
	msgKeyReq byte = 4 // client -> server: request a keyframe (decoder resync)
)

// maxPayload bounds a message payload (64 MiB) to fail fast on corruption.
const maxPayload = 64 << 20

// frameHeaderLen is seq(8) + inputID(8) + inputNanos(8) + renderNanos(8).
const frameHeaderLen = 32

var errPayloadTooLarge = errors.New("stream: payload exceeds limit")

// writeMsg writes one length-prefixed message: type(1) len(4) payload.
func writeMsg(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxPayload {
		return errPayloadTooLarge
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		// A zero-length Write on a synchronous net.Pipe blocks until a
		// matching zero-length Read that never happens; skip it.
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readMsg reads one message. buf is reused when large enough.
func readMsg(r io.Reader, buf []byte) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxPayload {
		return 0, nil, fmt.Errorf("stream: message of %d bytes exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// putFrameHeader fills the frameHeaderLen-byte frame message header in
// place, so hot paths can build header+bitstream in one recycled buffer.
func putFrameHeader(dst []byte, seq, inputID uint64, inputNanos, renderNanos int64) {
	binary.LittleEndian.PutUint64(dst[0:], seq)
	binary.LittleEndian.PutUint64(dst[8:], inputID)
	binary.LittleEndian.PutUint64(dst[16:], uint64(inputNanos))
	binary.LittleEndian.PutUint64(dst[24:], uint64(renderNanos))
}

// frameMsg encodes a frame message payload: header + bitstream.
func frameMsg(seq, inputID uint64, inputNanos, renderNanos int64, bitstream []byte) []byte {
	out := make([]byte, frameHeaderLen+len(bitstream))
	putFrameHeader(out, seq, inputID, inputNanos, renderNanos)
	copy(out[frameHeaderLen:], bitstream)
	return out
}

// parseFrameMsg splits a frame message payload.
func parseFrameMsg(p []byte) (seq, inputID uint64, inputNanos, renderNanos int64, bitstream []byte, err error) {
	if len(p) < frameHeaderLen {
		return 0, 0, 0, 0, nil, errors.New("stream: short frame message")
	}
	seq = binary.LittleEndian.Uint64(p[0:])
	inputID = binary.LittleEndian.Uint64(p[8:])
	inputNanos = int64(binary.LittleEndian.Uint64(p[16:]))
	renderNanos = int64(binary.LittleEndian.Uint64(p[24:]))
	return seq, inputID, inputNanos, renderNanos, p[frameHeaderLen:], nil
}

// inputMsg encodes an input message payload: id(8) + clientNanos(8).
func inputMsg(id uint64, nanos int64) []byte {
	var out [16]byte
	binary.LittleEndian.PutUint64(out[0:], id)
	binary.LittleEndian.PutUint64(out[8:], uint64(nanos))
	return out[:]
}

// parseInputMsg splits an input message payload.
func parseInputMsg(p []byte) (id uint64, nanos int64, err error) {
	if len(p) < 16 {
		return 0, 0, errors.New("stream: short input message")
	}
	return binary.LittleEndian.Uint64(p[0:]), int64(binary.LittleEndian.Uint64(p[8:])), nil
}
